package cannikin

import (
	"fmt"
	"testing"
	"time"
)

// watchdog panics the process if the test runs past d: the live tests
// exercise concurrent machinery, and a regression that deadlocks must
// fail loudly instead of hanging the suite. Call the returned stop on
// success.
func watchdog(t *testing.T, d time.Duration) func() {
	t.Helper()
	timer := time.AfterFunc(d, func() {
		panic(fmt.Sprintf("%s exceeded its %v watchdog deadline", t.Name(), d))
	})
	return func() { timer.Stop() }
}

// TestTrainMLPLiveMatchesSim is the public-API differential test: the
// concurrent live backend must reproduce the sequential reference bit for
// bit — same weights, same losses, same GNS trajectory — including with
// unequal local batches (Eq. 9 weighting) and batch growth.
func TestTrainMLPLiveMatchesSim(t *testing.T) {
	defer watchdog(t, 5*time.Minute)()
	cases := []MLPConfig{
		{LocalBatches: []int{16, 16}, Samples: 512, Epochs: 3, Seed: 7},
		{LocalBatches: []int{48, 24, 12}, Samples: 1024, Epochs: 3, Seed: 7},
		{LocalBatches: []int{16, 8}, Samples: 300, Epochs: 3, Seed: 11}, // partial final batches
		{LocalBatches: []int{8, 4}, Samples: 240, Epochs: 4, Seed: 3,
			GrowthEpoch: 2, Scaler: "adascale"},
		{LocalBatches: []int{10, 5}, Samples: 300, Epochs: 2, Seed: 5,
			BucketBytes: 64 * 8}, // many small buckets
	}
	for _, base := range cases {
		sim, live := base, base
		sim.Backend = "sim"
		live.Backend = "live"
		rs, err := TrainMLP(sim)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := TrainMLP(live)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.FinalWeights) == 0 || len(rs.FinalWeights) != len(rl.FinalWeights) {
			t.Fatalf("%+v: weight lengths %d vs %d", base, len(rs.FinalWeights), len(rl.FinalWeights))
		}
		for i := range rs.FinalWeights {
			if rs.FinalWeights[i] != rl.FinalWeights[i] {
				t.Fatalf("%+v: weight %d: sim %v != live %v", base, i, rs.FinalWeights[i], rl.FinalWeights[i])
			}
		}
		for e := range rs.EpochLoss {
			if rs.EpochLoss[e] != rl.EpochLoss[e] || rs.NoiseEstimate[e] != rl.NoiseEstimate[e] {
				t.Fatalf("%+v: epoch %d trajectories differ", base, e)
			}
		}
		if rs.FinalAccuracy != rl.FinalAccuracy || rs.Steps != rl.Steps {
			t.Fatalf("%+v: sim (%v, %d) != live (%v, %d)", base,
				rs.FinalAccuracy, rs.Steps, rl.FinalAccuracy, rl.Steps)
		}
		if rs.Backend != "sim" || rl.Backend != "live" {
			t.Fatalf("backends reported %q / %q", rs.Backend, rl.Backend)
		}
		if rs.Profile != nil {
			t.Fatal("sim backend reported a profile")
		}
		if rl.Profile == nil {
			t.Fatal("live backend reported no profile")
		}
	}
}

// TestTrainMLPLiveDeterministic mirrors the chaos goldens for the live
// backend: same seed, same result, even though scheduling varies run to
// run.
func TestTrainMLPLiveDeterministic(t *testing.T) {
	defer watchdog(t, 5*time.Minute)()
	cfg := MLPConfig{
		LocalBatches: []int{16, 8, 4}, Samples: 600, Epochs: 3, Seed: 42,
		Backend: "live", BucketBytes: 128 * 8,
	}
	a, err := TrainMLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainMLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("FinalAccuracy %v != %v", a.FinalAccuracy, b.FinalAccuracy)
	}
	if len(a.BatchSchedule) != len(b.BatchSchedule) {
		t.Fatalf("BatchSchedule lengths differ")
	}
	for i := range a.BatchSchedule {
		if a.BatchSchedule[i] != b.BatchSchedule[i] {
			t.Fatalf("BatchSchedule[%d] %d != %d", i, a.BatchSchedule[i], b.BatchSchedule[i])
		}
	}
	for i := range a.FinalWeights {
		if a.FinalWeights[i] != b.FinalWeights[i] {
			t.Fatalf("weight %d differs between identical live runs", i)
		}
	}
	// The wall-clock profile is the one nondeterministic part; its
	// structural facts still hold.
	if a.Profile == nil || !a.Profile.OverlapObserved && a.Profile.Buckets > 1 {
		t.Fatalf("profile %+v", a.Profile)
	}
}

// TestTrainMLPLiveProfile checks the public profile summary carries the
// measured-then-fitted performance model.
func TestTrainMLPLiveProfile(t *testing.T) {
	defer watchdog(t, 5*time.Minute)()
	res, err := TrainMLP(MLPConfig{
		LocalBatches: []int{16, 8}, Samples: 300, Epochs: 4, Seed: 9,
		Hidden: []int{64}, Backend: "live", BucketBytes: 256 * 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p == nil {
		t.Fatal("no profile")
	}
	if p.Workers != 2 || p.Buckets < 2 {
		t.Fatalf("profile shape %+v", p)
	}
	if !p.OverlapObserved {
		t.Fatal("overlap not observed")
	}
	if !p.FitOK {
		t.Fatal("perfmodel fit failed on measured samples")
	}
	if p.Gamma <= 0 || p.Gamma > 1 || p.To < 0 || p.Tu < 0 || p.FitError < 0 {
		t.Fatalf("fitted constants %+v", p)
	}
	for w := 0; w < 2; w++ {
		if p.A[w] <= 0 || p.Backprop[w] <= 0 {
			t.Fatalf("non-positive mean phases %+v", p)
		}
	}
}

func TestTrainMLPBadBackend(t *testing.T) {
	if _, err := TrainMLP(MLPConfig{LocalBatches: []int{8}, Backend: "tpu"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
