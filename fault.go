package cannikin

import (
	"fmt"
	"time"

	"cannikin/internal/faultinject"
	"cannikin/internal/rng"
	"cannikin/internal/runtime"
)

// ErrNoSurvivors reports that a fault-tolerant live run evicted every
// worker: there was no cluster left to finish training on. Test with
// errors.Is.
var ErrNoSurvivors = runtime.ErrNoSurvivors

// Fault kinds for the live runtime's deterministic fault injection
// (MLPConfig.Fault). They extend the ChaosKind vocabulary: chaos kinds
// perturb the simulated cluster at epoch boundaries, fault kinds perturb
// the real goroutine runtime at step boundaries, and the two sets never
// collide, so both surface through ChaosEventRecord.
const (
	// FaultStallCompute stalls a worker's compute for Delay at the start of
	// each of Steps consecutive steps.
	FaultStallCompute = ChaosKind(faultinject.KindStallCompute)
	// FaultDelayMsg delays the worker's first ring send of the step.
	FaultDelayMsg = ChaosKind(faultinject.KindDelayMsg)
	// FaultDropMsg drops the first Count attempts of the worker's first ring
	// send of the step (each is retransmitted after a timeout).
	FaultDropMsg = ChaosKind(faultinject.KindDropMsg)
	// FaultKillWorker kills the worker at the step: it stops responding
	// permanently, as a crashed process would.
	FaultKillWorker = ChaosKind(faultinject.KindKillWorker)
)

// FaultEvent is one scheduled fault against a live training run.
type FaultEvent struct {
	// Step is the global training step at which the fault fires; Worker the
	// affected rank.
	Step, Worker int
	Kind         ChaosKind
	// Delay is the stall or message delay (FaultStallCompute, FaultDelayMsg).
	Delay time.Duration
	// Steps is how many consecutive steps a stall lasts (default 1).
	Steps int
	// Count is how many send attempts are dropped (default 1).
	Count int
}

// FaultConfig enables deterministic fault injection and fault tolerance
// for the live backend: every ring hop runs under a bounded retry
// deadline, a worker that cannot complete a step is evicted, and training
// resumes on the survivors from the last fully-reduced weights.
type FaultConfig struct {
	// Events are explicit scheduled faults.
	Events []FaultEvent
	// Churn, when positive, additionally generates a seeded random fault
	// schedule with that per-step probability (in (0, 1]). Generation is
	// deterministic in the job Seed.
	Churn float64
	// FirstStep and Horizon bound the generated events (defaults 1 and 32).
	FirstStep, Horizon int
	// Kill permits generated kill-worker events (at most one per schedule).
	Kill bool
	// HopTimeout and Retries tune per-hop failure detection; StepTimeout is
	// the driver's deadline for a whole step; StepRetries how often a failed
	// step is retried before an eviction. Zero values take the defaults.
	HopTimeout  time.Duration
	Retries     int
	StepTimeout time.Duration
	StepRetries int
	// Replan picks the survivor batch policy after an eviction: "keep"
	// (default — survivors keep their local batches) or "optperf" (re-solve
	// OptPerf over the survivor cluster from the live profile).
	Replan string
}

// lower converts the public config to the runtime's, generating the
// churn schedule deterministically from the seed.
func (c *FaultConfig) lower(workers int, seed uint64) (*runtime.FaultConfig, error) {
	var events []faultinject.Event
	for _, e := range c.Events {
		events = append(events, faultinject.Event{
			Step: e.Step, Worker: e.Worker, Kind: faultinject.Kind(e.Kind),
			Delay: e.Delay, Steps: e.Steps, Count: e.Count,
		})
	}
	if c.Churn > 0 {
		gen, err := faultinject.Generate(faultinject.Profile{
			Intensity: c.Churn,
			FirstStep: c.FirstStep,
			Horizon:   c.Horizon,
			Kill:      c.Kill,
		}, workers, rng.New(seed))
		if err != nil {
			return nil, fmt.Errorf("cannikin: %w", err)
		}
		events = append(events, gen.Events...)
	}
	var replan string
	switch c.Replan {
	case "", "keep":
		replan = runtime.ReplanKeep
	case "optperf":
		replan = runtime.ReplanOptPerf
	default:
		return nil, fmt.Errorf("cannikin: unknown replan policy %q", c.Replan)
	}
	out := &runtime.FaultConfig{
		Schedule:    faultinject.Schedule{Events: events},
		HopTimeout:  c.HopTimeout,
		Retries:     c.Retries,
		StepTimeout: c.StepTimeout,
		StepRetries: c.StepRetries,
		Replan:      replan,
	}
	if err := out.Schedule.Validate(workers); err != nil {
		return nil, fmt.Errorf("cannikin: %w", err)
	}
	return out, nil
}

// EvictionRecord is one coordinated worker eviction during a
// fault-tolerant live run. Worker indices are the run's original ranks.
type EvictionRecord struct {
	// Epoch and Step locate the failed step.
	Epoch, Step int
	// Workers are the evicted ranks; Reason says why.
	Workers []int
	Reason  string
	// Survivors are the remaining ranks; SurvivorBatches the local batches
	// they resumed with.
	Survivors       []int
	SurvivorBatches []int
	// Checkpoint is the flat weight vector training resumed from — resuming
	// a fresh run with InitWeights = Checkpoint on the survivor cluster
	// reproduces the post-eviction trajectory bitwise.
	Checkpoint []float64
	// Replanned reports that OptPerf re-planning chose the survivor batches.
	Replanned bool
}

// faultEventRecords converts one consumed runtime fault into public event
// records, one per fault aspect, sharing the chaos record type.
func faultEventRecords(f runtime.FaultRecord) []ChaosEventRecord {
	var out []ChaosEventRecord
	if f.Killed {
		out = append(out, ChaosEventRecord{Step: f.Step, Node: f.Worker, Kind: FaultKillWorker})
	}
	if f.Stall > 0 {
		out = append(out, ChaosEventRecord{Step: f.Step, Node: f.Worker, Kind: FaultStallCompute, Value: f.Stall.Seconds()})
	}
	if f.SendDelay > 0 {
		out = append(out, ChaosEventRecord{Step: f.Step, Node: f.Worker, Kind: FaultDelayMsg, Value: f.SendDelay.Seconds()})
	}
	if f.SendDrops > 0 {
		out = append(out, ChaosEventRecord{Step: f.Step, Node: f.Worker, Kind: FaultDropMsg, Value: float64(f.SendDrops)})
	}
	return out
}
