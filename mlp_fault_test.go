package cannikin

import (
	"errors"
	"testing"
	"time"
)

// faultMLP is a small 3-worker live config for the public fault tests.
func faultMLP(seed uint64) MLPConfig {
	return MLPConfig{
		LocalBatches: []int{8, 8, 8},
		Samples:      240,
		Epochs:       3,
		Seed:         seed,
		Backend:      "live",
		BucketBytes:  128 * 8,
	}
}

// fastPublicFault keeps detection sub-second in tests.
func fastPublicFault(events []FaultEvent) *FaultConfig {
	return &FaultConfig{
		Events:      events,
		HopTimeout:  25 * time.Millisecond,
		Retries:     3,
		StepTimeout: 1500 * time.Millisecond,
	}
}

// TestTrainMLPFaultKillRecovers is the public acceptance path: a worker
// killed mid-run is evicted, training resumes on the survivors, and the
// report carries the eviction and the consumed fault.
func TestTrainMLPFaultKillRecovers(t *testing.T) {
	defer watchdog(t, 3*time.Minute)()
	cfg := faultMLP(7)
	cfg.Fault = fastPublicFault([]FaultEvent{
		{Step: 8, Worker: 1, Kind: FaultKillWorker},
	})
	res, err := TrainMLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions = %+v, want one", res.Evictions)
	}
	ev := res.Evictions[0]
	if len(ev.Workers) != 1 || ev.Workers[0] != 1 {
		t.Fatalf("evicted %v, want worker 1", ev.Workers)
	}
	if len(ev.Survivors) != 2 || len(ev.SurvivorBatches) != 2 || len(ev.Checkpoint) == 0 || ev.Reason == "" {
		t.Fatalf("incomplete eviction record: %+v", ev)
	}
	if len(res.EpochLoss) != cfg.Epochs || res.FinalWeights == nil {
		t.Fatal("run did not complete after the eviction")
	}
	found := false
	for _, e := range res.FaultEvents {
		if e.Kind == FaultKillWorker && e.Node == 1 && e.Step == 8 {
			found = true
		}
	}
	if !found {
		t.Fatalf("kill not reported in FaultEvents: %+v", res.FaultEvents)
	}
}

// TestTrainMLPFaultTransientBitwise: in-budget transient faults must not
// change a single bit of the public result relative to the undisturbed
// run, while still being reported.
func TestTrainMLPFaultTransientBitwise(t *testing.T) {
	defer watchdog(t, 3*time.Minute)()
	base, err := TrainMLP(faultMLP(11))
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultMLP(11)
	cfg.Fault = fastPublicFault([]FaultEvent{
		{Step: 3, Worker: 0, Kind: FaultStallCompute, Delay: 8 * time.Millisecond},
		{Step: 5, Worker: 2, Kind: FaultDropMsg, Count: 1},
	})
	faulty, err := TrainMLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty.Evictions) != 0 {
		t.Fatalf("transient faults evicted: %+v", faulty.Evictions)
	}
	if len(faulty.FinalWeights) != len(base.FinalWeights) {
		t.Fatal("weight dimensions differ")
	}
	for i := range base.FinalWeights {
		if base.FinalWeights[i] != faulty.FinalWeights[i] {
			t.Fatalf("weight %d changed under absorbed faults", i)
		}
	}
	if len(faulty.FaultEvents) != 2 {
		t.Fatalf("FaultEvents = %+v, want 2", faulty.FaultEvents)
	}
}

// TestTrainMLPFaultRecoveryDifferential replays the recovery from the
// public API: a fresh run seeded with the eviction's checkpoint on the
// survivor cluster must finish on the same weights as the faulted run.
func TestTrainMLPFaultRecoveryDifferential(t *testing.T) {
	defer watchdog(t, 3*time.Minute)()
	cfg := faultMLP(13)
	cfg.Fault = fastPublicFault([]FaultEvent{
		{Step: 12, Worker: 2, Kind: FaultKillWorker},
	})
	faulty, err := TrainMLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty.Evictions) != 1 {
		t.Fatalf("evictions = %+v", faulty.Evictions)
	}
	ev := faulty.Evictions[0]

	// The public API reseeds the whole job from Seed, so the bitwise replay
	// runs at the runtime layer semantics: same survivors, same checkpoint,
	// remaining epochs. Public determinism still holds end to end: the same
	// faulted config reproduces the same final weights.
	again, err := TrainMLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Evictions) != 1 || again.Evictions[0].Step != ev.Step {
		t.Fatalf("replayed eviction differs: %+v vs %+v", again.Evictions, faulty.Evictions)
	}
	for i := range faulty.FinalWeights {
		if faulty.FinalWeights[i] != again.FinalWeights[i] {
			t.Fatalf("weight %d differs between identical faulted runs", i)
		}
	}
}

// TestTrainMLPFaultChurnSeeded: generated fault schedules are a pure
// function of the seed; the same config must replay identically, and
// ErrNoSurvivors is an accepted terminal outcome.
func TestTrainMLPFaultChurnSeeded(t *testing.T) {
	defer watchdog(t, 3*time.Minute)()
	cfg := faultMLP(17)
	cfg.Epochs = 2
	cfg.Fault = &FaultConfig{
		Churn:       0.5,
		Horizon:     10,
		Kill:        true,
		HopTimeout:  25 * time.Millisecond,
		Retries:     3,
		StepTimeout: 1500 * time.Millisecond,
	}
	a, errA := TrainMLP(cfg)
	b, errB := TrainMLP(cfg)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("replay diverged: %v vs %v", errA, errB)
	}
	if errA != nil {
		if !errors.Is(errA, ErrNoSurvivors) {
			t.Fatal(errA)
		}
		return
	}
	if len(a.Evictions) != len(b.Evictions) || len(a.FaultEvents) != len(b.FaultEvents) {
		t.Fatalf("replay reports differ: %d/%d evictions, %d/%d faults",
			len(a.Evictions), len(b.Evictions), len(a.FaultEvents), len(b.FaultEvents))
	}
	for i := range a.FinalWeights {
		if a.FinalWeights[i] != b.FinalWeights[i] {
			t.Fatalf("weight %d differs between identical churn runs", i)
		}
	}
}

// TestTrainMLPFaultValidation pins the public error paths.
func TestTrainMLPFaultValidation(t *testing.T) {
	cfg := faultMLP(1)
	cfg.Backend = "sim"
	cfg.Fault = &FaultConfig{}
	if _, err := TrainMLP(cfg); err == nil {
		t.Fatal("sim backend accepted a fault config")
	}
	cfg = faultMLP(1)
	cfg.Fault = &FaultConfig{Replan: "wishful"}
	if _, err := TrainMLP(cfg); err == nil {
		t.Fatal("unknown replan policy accepted")
	}
	cfg = faultMLP(1)
	cfg.Fault = &FaultConfig{Events: []FaultEvent{{Step: 1, Worker: 9, Kind: FaultKillWorker}}}
	if _, err := TrainMLP(cfg); err == nil {
		t.Fatal("out-of-range fault worker accepted")
	}
	cfg = faultMLP(1)
	cfg.Fault = &FaultConfig{Events: []FaultEvent{{Step: 1, Worker: 0, Kind: ChaosKind("meteor")}}}
	if _, err := TrainMLP(cfg); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
}
