package cannikin

import (
	"testing"
)

func TestTrainMLPHeterogeneousWorkersConverge(t *testing.T) {
	res, err := TrainMLP(MLPConfig{
		LocalBatches: []int{48, 24, 12, 4}, // strongly uneven shards
		Epochs:       12,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 4 || res.GlobalBatch != 88 {
		t.Fatalf("workers %d global %d", res.Workers, res.GlobalBatch)
	}
	if res.FinalAccuracy < 0.9 {
		t.Fatalf("final accuracy %v", res.FinalAccuracy)
	}
	// Loss decreases overall.
	if res.EpochLoss[len(res.EpochLoss)-1] >= res.EpochLoss[0] {
		t.Fatalf("loss did not decrease: %v -> %v", res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1])
	}
	// A real GNS estimate emerged.
	final := res.NoiseEstimate[len(res.NoiseEstimate)-1]
	if final <= 0 {
		t.Fatalf("no noise estimate: %v", final)
	}
}

func TestTrainMLPMatchesSingleWorker(t *testing.T) {
	// Equivalence check (Eq. 9): training with 3 uneven workers must track
	// a single worker consuming the same global batches. Exact equality is
	// not expected (data order differs slightly across loaders), but final
	// quality must match.
	multi, err := TrainMLP(MLPConfig{LocalBatches: []int{40, 20, 4}, Epochs: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	single, err := TrainMLP(MLPConfig{LocalBatches: []int{64}, Epochs: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if multi.FinalAccuracy < single.FinalAccuracy-0.05 {
		t.Fatalf("multi-worker %v far below single-worker %v", multi.FinalAccuracy, single.FinalAccuracy)
	}
}

func TestTrainMLPNaiveGNSAlsoRuns(t *testing.T) {
	res, err := TrainMLP(MLPConfig{LocalBatches: []int{16, 8}, Epochs: 3, Seed: 2, NaiveGNS: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps")
	}
}

func TestTrainMLPValidation(t *testing.T) {
	if _, err := TrainMLP(MLPConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := TrainMLP(MLPConfig{LocalBatches: []int{0}}); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := TrainMLP(MLPConfig{LocalBatches: []int{8}, Classes: 1}); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestTrainMLPDeterministic(t *testing.T) {
	run := func() float64 {
		res, err := TrainMLP(MLPConfig{LocalBatches: []int{24, 8}, Epochs: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res.EpochLoss[len(res.EpochLoss)-1]
	}
	if run() != run() {
		t.Fatal("TrainMLP not deterministic")
	}
}
