// Package runspec is the single parsed configuration behind the cannikin
// command-line tools. One Spec describes a run completely — simulated
// cluster or real MLP training, fault mini-DSL, chaos, and the transport
// wiring of a multi-process ring — and can come from flags, from a JSON
// file (-spec run.json), or both: flags set explicitly on the command line
// override the file, so `cannikin-worker -spec run.json -rank 2` launches
// rank 2 of a shared spec.
//
// The package is deliberately dependency-light (stdlib only): the cmds
// translate a Spec into the public cannikin API, not the other way around.
package runspec

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Fault is one scheduled fault event of the -fault mini-DSL
// ("kind:worker@step[:arg]"). Kind is one of "kill", "stall", "delay",
// "drop"; Delay carries the stall/delay duration and Count the drop count.
type Fault struct {
	Kind   string        `json:"kind"`
	Worker int           `json:"worker"`
	Step   int           `json:"step"`
	Delay  time.Duration `json:"delay,omitempty"`
	Count  int           `json:"count,omitempty"`
}

// JoinEntry is one scheduled worker hot-join of the -join mini-DSL
// ("epoch:batch[:replan]"): the cluster grows by one worker with the given
// local batch at that epoch boundary. Replan is "keep" (default, empty) or
// "optperf".
type JoinEntry struct {
	Epoch  int    `json:"epoch"`
	Batch  int    `json:"batch"`
	Replan string `json:"replan,omitempty"`
}

// Spec is the full run configuration. JSON field names double as the file
// format; zero values mean "use the default".
type Spec struct {
	// Simulated-cluster mode.
	Cluster  string   `json:"cluster,omitempty"`
	Models   []string `json:"models,omitempty"`
	Workload string   `json:"workload,omitempty"`
	System   string   `json:"system,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	Epochs   int      `json:"epochs,omitempty"`
	Batch    int      `json:"batch,omitempty"`
	Chaos    float64  `json:"chaos,omitempty"`
	Audit    string   `json:"audit,omitempty"`
	Progress bool     `json:"progress,omitempty"`
	CSV      bool     `json:"csv,omitempty"`

	// Real MLP training mode.
	MLP          bool    `json:"mlp,omitempty"`
	Backend      string  `json:"backend,omitempty"`
	CommMode     string  `json:"comm,omitempty"`
	MLPBatches   []int   `json:"mlp_batches,omitempty"`
	BucketBytes  int     `json:"bucket_bytes,omitempty"`
	KernelShards int     `json:"kernel_shards,omitempty"`
	Allreduce    string  `json:"allreduce,omitempty"`
	LinkAlpha    float64 `json:"link_alpha,omitempty"`
	LinkBeta     float64 `json:"link_beta,omitempty"`
	Faults       []Fault `json:"faults,omitempty"`
	FaultReplan  string  `json:"fault_replan,omitempty"`

	// Elastic membership (MLP mode). Joins schedules worker hot-joins at
	// epoch boundaries; the Autoscale* knobs enable the goodput-driven
	// autoscaler. Resume derives the run's randomness from the seed's
	// child stream with that label ("join-<n>" / "recovery-<n>"), and
	// CheckpointIn/CheckpointOut are the weight+velocity handoff files a
	// generational multi-process join uses between memberships.
	Joins           []JoinEntry `json:"joins,omitempty"`
	AutoscaleMax    int         `json:"autoscale_max,omitempty"`
	AutoscaleMin    int         `json:"autoscale_min,omitempty"`
	AutoscaleGrow   float64     `json:"autoscale_grow,omitempty"`
	AutoscaleShrink float64     `json:"autoscale_shrink,omitempty"`
	AutoscaleBatch  int         `json:"autoscale_batch,omitempty"`
	Resume          string      `json:"resume,omitempty"`
	CheckpointIn    string      `json:"checkpoint_in,omitempty"`
	CheckpointOut   string      `json:"checkpoint_out,omitempty"`

	// Ring transport wiring (MLP mode). Transport "chan" runs all workers
	// in one process over channels; "tcp" spans one OS process per rank.
	// Peers lists every rank's address (empty in coordinator mode: the
	// coordinator reserves localhost ports itself). Rank and Listen belong
	// to a single worker process; BatchDelay is a duration, "auto", or
	// empty (send immediately).
	Transport  string   `json:"transport,omitempty"`
	Rank       int      `json:"rank,omitempty"`
	Peers      []string `json:"peers,omitempty"`
	Listen     string   `json:"listen,omitempty"`
	BatchDelay string   `json:"batch_delay,omitempty"`
	Guard      bool     `json:"guard,omitempty"`
	WorkerBin  string   `json:"worker_bin,omitempty"`
}

// Default returns the Spec matching the historical flag defaults.
func Default() *Spec {
	return &Spec{
		Cluster:    "a",
		Workload:   "cifar10",
		System:     "cannikin",
		Seed:       1,
		Backend:    "sim",
		MLPBatches: []int{16, 8, 4},
		Transport:  TransportChan,
	}
}

// Transport names accepted by Spec.Transport.
const (
	TransportChan = "chan"
	TransportTCP  = "tcp"
)

// BatchAuto is the BatchDelay sentinel for adaptive send-side batching.
const BatchAuto = "auto"

// Load reads a Spec from a JSON file. Unknown fields are rejected, so a
// typo in a spec file fails loudly instead of silently running defaults.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runspec: %w", err)
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("runspec: %s: %w", path, err)
	}
	return s, nil
}

// Decode reads a Spec from JSON on r with exactly Load's semantics — the
// defaults as the base, unknown fields rejected — so an HTTP request body
// and a -spec file parse identically.
func Decode(r io.Reader) (*Spec, error) {
	s := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("decode spec: %w", err)
	}
	return s, nil
}

// Save writes the Spec as indented JSON — the coordinator uses it to hand
// one shared spec file to every worker process.
func (s *Spec) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("runspec: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ParseBatchDelay interprets a Spec.BatchDelay string: empty or "0" sends
// immediately, "auto" selects adaptive batching (returned as -1), anything
// else is a non-negative duration.
func ParseBatchDelay(s string) (time.Duration, error) {
	switch s {
	case "", "0":
		return 0, nil
	case BatchAuto:
		return -1, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("runspec: batch delay %q (want a duration, %q, or 0)", s, BatchAuto)
	}
	return d, nil
}

// ParseFaults parses the -fault mini-DSL: comma-separated events of the
// form "kind:worker@step[:arg]". The arg is a duration for stall/delay and
// a count for drop; kill takes none.
func ParseFaults(spec string) ([]Fault, error) {
	if spec == "" {
		return nil, nil
	}
	var out []Fault
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		kind, rest, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("bad fault %q: want kind:worker@step[:arg]", item)
		}
		target, arg, hasArg := strings.Cut(rest, ":")
		workerStr, stepStr, ok := strings.Cut(target, "@")
		if !ok {
			return nil, fmt.Errorf("bad fault %q: missing @step", item)
		}
		worker, err := strconv.Atoi(workerStr)
		if err != nil {
			return nil, fmt.Errorf("bad fault %q: worker %q", item, workerStr)
		}
		step, err := strconv.Atoi(stepStr)
		if err != nil {
			return nil, fmt.Errorf("bad fault %q: step %q", item, stepStr)
		}
		f := Fault{Kind: kind, Worker: worker, Step: step}
		switch kind {
		case "kill":
			if hasArg {
				return nil, fmt.Errorf("bad fault %q: kill takes no argument", item)
			}
		case "stall", "delay":
			if !hasArg {
				return nil, fmt.Errorf("bad fault %q: %s needs a duration argument", item, kind)
			}
			if f.Delay, err = time.ParseDuration(arg); err != nil || f.Delay <= 0 {
				return nil, fmt.Errorf("bad fault %q: duration %q", item, arg)
			}
		case "drop":
			f.Count = 1
			if hasArg {
				if f.Count, err = strconv.Atoi(arg); err != nil || f.Count < 1 {
					return nil, fmt.Errorf("bad fault %q: drop count %q", item, arg)
				}
			}
		default:
			return nil, fmt.Errorf("bad fault %q: unknown kind %q (want kill, stall, delay, drop)", item, kind)
		}
		out = append(out, f)
	}
	return out, nil
}

// FormatFaults renders events back into the canonical mini-DSL;
// ParseFaults(FormatFaults(fs)) round-trips exactly.
func FormatFaults(fs []Fault) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		s := fmt.Sprintf("%s:%d@%d", f.Kind, f.Worker, f.Step)
		switch f.Kind {
		case "stall", "delay":
			s += ":" + f.Delay.String()
		case "drop":
			if f.Count != 1 {
				s += ":" + strconv.Itoa(f.Count)
			}
		}
		parts[i] = s
	}
	return strings.Join(parts, ",")
}

// ParseJoins parses the -join mini-DSL: comma-separated hot-joins of the
// form "epoch:batch[:replan]", e.g. "1:8,3:4:optperf".
func ParseJoins(spec string) ([]JoinEntry, error) {
	if spec == "" {
		return nil, nil
	}
	var out []JoinEntry
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		parts := strings.Split(item, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad join %q: want epoch:batch[:replan]", item)
		}
		epoch, err := strconv.Atoi(parts[0])
		if err != nil || epoch < 1 {
			return nil, fmt.Errorf("bad join %q: epoch %q", item, parts[0])
		}
		batch, err := strconv.Atoi(parts[1])
		if err != nil || batch < 1 {
			return nil, fmt.Errorf("bad join %q: batch %q", item, parts[1])
		}
		j := JoinEntry{Epoch: epoch, Batch: batch}
		if len(parts) == 3 {
			switch parts[2] {
			case "keep", "optperf":
				j.Replan = parts[2]
			default:
				return nil, fmt.Errorf("bad join %q: replan %q (want keep or optperf)", item, parts[2])
			}
		}
		out = append(out, j)
	}
	return out, nil
}

// FormatJoins renders joins back into the canonical mini-DSL;
// ParseJoins(FormatJoins(js)) round-trips exactly.
func FormatJoins(js []JoinEntry) string {
	parts := make([]string, len(js))
	for i, j := range js {
		s := fmt.Sprintf("%d:%d", j.Epoch, j.Batch)
		if j.Replan != "" && j.Replan != "keep" {
			s += ":" + j.Replan
		}
		parts[i] = s
	}
	return strings.Join(parts, ",")
}

// Binding connects a FlagSet to a Spec: every flag writes into the bound
// Spec, and Resolve applies the flag-over-file precedence when -spec names
// a JSON file.
type Binding struct {
	fs       *flag.FlagSet
	flat     *Spec
	specPath string
	// override copies one explicitly-set flag's value from the flag-parsed
	// Spec onto the file-loaded Spec, keyed by flag name.
	override map[string]func(dst, src *Spec)
}

// Register installs the full Spec flag surface (plus -spec itself) on fs,
// returning the binding to Resolve after fs.Parse.
func Register(fs *flag.FlagSet) *Binding {
	s := Default()
	b := &Binding{fs: fs, flat: s, override: map[string]func(dst, src *Spec){}}
	fs.StringVar(&b.specPath, "spec", "", "JSON run-spec file; explicit flags override its fields")

	str := func(name string, p *string, usage string, cp func(dst, src *Spec)) {
		fs.StringVar(p, name, *p, usage)
		b.override[name] = cp
	}
	boolf := func(name string, p *bool, usage string, cp func(dst, src *Spec)) {
		fs.BoolVar(p, name, *p, usage)
		b.override[name] = cp
	}
	intf := func(name string, p *int, usage string, cp func(dst, src *Spec)) {
		fs.IntVar(p, name, *p, usage)
		b.override[name] = cp
	}

	str("cluster", &s.Cluster, `cluster preset: "a", "b", or "c"`,
		func(dst, src *Spec) { dst.Cluster = src.Cluster })
	fs.Var(&commaStrings{&s.Models}, "models", "comma-separated GPU models for a custom cluster (overrides -cluster)")
	b.override["models"] = func(dst, src *Spec) { dst.Models = src.Models }
	str("workload", &s.Workload, "workload name (see -list)",
		func(dst, src *Spec) { dst.Workload = src.Workload })
	str("system", &s.System, "training system: cannikin, adaptdl, lb-bsp, pytorch-ddp, hetpipe",
		func(dst, src *Spec) { dst.System = src.System })
	fs.Uint64Var(&s.Seed, "seed", s.Seed, "random seed")
	b.override["seed"] = func(dst, src *Spec) { dst.Seed = src.Seed }
	intf("epochs", &s.Epochs, "epoch cap (0 = run to convergence; MLP default 10)",
		func(dst, src *Spec) { dst.Epochs = src.Epochs })
	intf("batch", &s.Batch, "fixed total batch size (0 = adaptive/default)",
		func(dst, src *Spec) { dst.Batch = src.Batch })
	fs.Float64Var(&s.Chaos, "chaos", s.Chaos, "per-epoch probability of a random resource perturbation, in (0, 1]")
	b.override["chaos"] = func(dst, src *Spec) { dst.Chaos = src.Chaos }
	str("audit", &s.Audit, `verify OptPerf plans against the paper's optimality invariants: "advisory" or "strict"`,
		func(dst, src *Spec) { dst.Audit = src.Audit })
	boolf("progress", &s.Progress, "stream each epoch as it completes",
		func(dst, src *Spec) { dst.Progress = src.Progress })
	boolf("csv", &s.CSV, "emit the epoch trace as CSV",
		func(dst, src *Spec) { dst.CSV = src.CSV })

	boolf("mlp", &s.MLP, "train the real MLP across data-parallel workers instead of the simulated workload",
		func(dst, src *Spec) { dst.MLP = src.MLP })
	str("backend", &s.Backend, `MLP execution engine: "sim" (sequential reference) or "live" (concurrent workers, overlapped ring all-reduce, wall-clock profile)`,
		func(dst, src *Spec) { dst.Backend = src.Backend })
	str("comm", &s.CommMode, `live-backend comm layout: "auto" (default), "overlap" (comm goroutine per worker), or "merged" (single goroutine per worker); weights are identical in every mode`,
		func(dst, src *Spec) { dst.CommMode = src.CommMode })
	fs.Var(&commaInts{&s.MLPBatches}, "mlp-batches", "comma-separated per-worker local batch sizes for -mlp")
	b.override["mlp-batches"] = func(dst, src *Spec) { dst.MLPBatches = src.MLPBatches }
	intf("bucket-bytes", &s.BucketBytes, "gradient bucket cap in bytes for -mlp (0 = DDP's 25 MB default)",
		func(dst, src *Spec) { dst.BucketBytes = src.BucketBytes })
	intf("kernel-shards", &s.KernelShards, "matmul kernel parallelism for -mlp: shard each matmul across this many goroutines (0 = leave serial; results are bitwise identical at any value)",
		func(dst, src *Spec) { dst.KernelShards = src.KernelShards })
	str("allreduce", &s.Allreduce, `collective algorithm for -mlp gradient buckets: "ring" (default), "hd" (recursive halving-doubling), "pipeline" (chunk-pipelined ring), or "auto" (cost-model argmin per bucket)`,
		func(dst, src *Spec) { dst.Allreduce = src.Allreduce })
	fs.Float64Var(&s.LinkAlpha, "link-alpha", s.LinkAlpha, `fitted per-hop link latency in seconds pricing "-allreduce auto" (0 = calibrated size thresholds)`)
	b.override["link-alpha"] = func(dst, src *Spec) { dst.LinkAlpha = src.LinkAlpha }
	fs.Float64Var(&s.LinkBeta, "link-beta", s.LinkBeta, `fitted per-byte link cost in seconds pricing "-allreduce auto" (0 = calibrated size thresholds)`)
	b.override["link-beta"] = func(dst, src *Spec) { dst.LinkBeta = src.LinkBeta }
	fs.Var(&faultsValue{&s.Faults}, "fault", `inject deterministic faults into the live MLP run: comma-separated events "kind:worker@step[:arg]" with kinds kill, stall (arg = duration), delay (arg = duration), drop (arg = count), e.g. "stall:0@3:40ms,kill:1@8"`)
	b.override["fault"] = func(dst, src *Spec) { dst.Faults = src.Faults }
	str("fault-replan", &s.FaultReplan, `survivor batch policy after an eviction: "keep" (default) or "optperf"`,
		func(dst, src *Spec) { dst.FaultReplan = src.FaultReplan })

	fs.Var(&joinsValue{&s.Joins}, "join", `schedule worker hot-joins into the live MLP run: comma-separated "epoch:batch[:replan]" entries (replan: keep or optperf), e.g. "1:8,3:4:optperf"`)
	b.override["join"] = func(dst, src *Spec) { dst.Joins = src.Joins }
	intf("autoscale-max", &s.AutoscaleMax, "enable the goodput-driven autoscaler with this membership ceiling (0 = off)",
		func(dst, src *Spec) { dst.AutoscaleMax = src.AutoscaleMax })
	intf("autoscale-min", &s.AutoscaleMin, "autoscaler membership floor (0 = never shrink below the initial membership's minimum of 1)",
		func(dst, src *Spec) { dst.AutoscaleMin = src.AutoscaleMin })
	fs.Float64Var(&s.AutoscaleGrow, "autoscale-grow", s.AutoscaleGrow, "minimum fractional predicted-goodput gain before the autoscaler admits a worker (0 = default 0.05)")
	b.override["autoscale-grow"] = func(dst, src *Spec) { dst.AutoscaleGrow = src.AutoscaleGrow }
	fs.Float64Var(&s.AutoscaleShrink, "autoscale-shrink", s.AutoscaleShrink, "maximum fractional predicted-goodput loss at which the autoscaler evicts the slowest worker (0 = never shrink)")
	b.override["autoscale-shrink"] = func(dst, src *Spec) { dst.AutoscaleShrink = src.AutoscaleShrink }
	intf("autoscale-batch", &s.AutoscaleBatch, "local batch granted to autoscaler-admitted workers (0 = smallest incumbent batch)",
		func(dst, src *Spec) { dst.AutoscaleBatch = src.AutoscaleBatch })
	str("resume", &s.Resume, `derive the run's randomness from the seed's child stream with this label (e.g. "join-1"), matching an elastic run's post-join incarnation`,
		func(dst, src *Spec) { dst.Resume = src.Resume })
	str("checkpoint-in", &s.CheckpointIn, "load initial weights and optimizer velocity from this checkpoint file",
		func(dst, src *Spec) { dst.CheckpointIn = src.CheckpointIn })
	str("checkpoint-out", &s.CheckpointOut, "write final weights and optimizer velocity to this checkpoint file (rank 0 only under tcp)",
		func(dst, src *Spec) { dst.CheckpointOut = src.CheckpointOut })

	str("transport", &s.Transport, `ring transport for -mlp: "chan" (in-process) or "tcp" (one OS process per worker over real sockets)`,
		func(dst, src *Spec) { dst.Transport = src.Transport })
	intf("rank", &s.Rank, "this process's ring rank (worker mode)",
		func(dst, src *Spec) { dst.Rank = src.Rank })
	fs.Var(&commaStrings{&s.Peers}, "peers", "comma-separated host:port of every rank, in rank order (empty = coordinator reserves localhost ports)")
	b.override["peers"] = func(dst, src *Spec) { dst.Peers = src.Peers }
	str("listen", &s.Listen, "listen address override for this rank (default: peers[rank])",
		func(dst, src *Spec) { dst.Listen = src.Listen })
	str("batch-delay", &s.BatchDelay, `TCP send-side coalescing delay: a duration, "auto" (adaptive), or 0 (send immediately)`,
		func(dst, src *Spec) { dst.BatchDelay = src.BatchDelay })
	boolf("guard", &s.Guard, "run every ring hop under per-hop deadlines, so a stalled peer fails the run with blame",
		func(dst, src *Spec) { dst.Guard = src.Guard })
	str("worker-bin", &s.WorkerBin, "path to the cannikin-worker binary (coordinator mode; default: next to this binary, then $PATH)",
		func(dst, src *Spec) { dst.WorkerBin = src.WorkerBin })
	return b
}

// Resolve returns the final Spec after fs.Parse: the flag-built Spec when
// no -spec file was named, otherwise the file's Spec with every explicitly
// set flag copied over it.
func (b *Binding) Resolve() (*Spec, error) {
	if b.specPath == "" {
		return b.flat, nil
	}
	s, err := Load(b.specPath)
	if err != nil {
		return nil, err
	}
	b.fs.Visit(func(f *flag.Flag) {
		if cp := b.override[f.Name]; cp != nil {
			cp(s, b.flat)
		}
	})
	return s, nil
}

// commaInts is a flag.Value for "16,8,4"-style int lists.
type commaInts struct{ p *[]int }

func (v *commaInts) String() string {
	if v.p == nil || *v.p == nil {
		return ""
	}
	parts := make([]string, len(*v.p))
	for i, x := range *v.p {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func (v *commaInts) Set(s string) error {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		b, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || b < 1 {
			return fmt.Errorf("bad local batch %q in %q", p, s)
		}
		out = append(out, b)
	}
	*v.p = out
	return nil
}

// commaStrings is a flag.Value for comma-separated string lists.
type commaStrings struct{ p *[]string }

func (v *commaStrings) String() string {
	if v.p == nil || *v.p == nil {
		return ""
	}
	return strings.Join(*v.p, ",")
}

func (v *commaStrings) Set(s string) error {
	if s == "" {
		*v.p = nil
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	*v.p = parts
	return nil
}

// joinsValue is a flag.Value speaking the join mini-DSL.
type joinsValue struct{ p *[]JoinEntry }

func (v *joinsValue) String() string {
	if v.p == nil {
		return ""
	}
	return FormatJoins(*v.p)
}

func (v *joinsValue) Set(s string) error {
	js, err := ParseJoins(s)
	if err != nil {
		return err
	}
	*v.p = js
	return nil
}

// faultsValue is a flag.Value speaking the fault mini-DSL.
type faultsValue struct{ p *[]Fault }

func (v *faultsValue) String() string {
	if v.p == nil {
		return ""
	}
	return FormatFaults(*v.p)
}

func (v *faultsValue) Set(s string) error {
	fs, err := ParseFaults(s)
	if err != nil {
		return err
	}
	*v.p = fs
	return nil
}
