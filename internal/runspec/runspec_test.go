package runspec

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestFaultDSLRoundTrip(t *testing.T) {
	faults := []Fault{
		{Kind: "stall", Worker: 0, Step: 3, Delay: 40 * time.Millisecond},
		{Kind: "kill", Worker: 1, Step: 8},
		{Kind: "drop", Worker: 2, Step: 5, Count: 3},
		{Kind: "drop", Worker: 0, Step: 1, Count: 1},
		{Kind: "delay", Worker: 1, Step: 2, Delay: 10 * time.Millisecond},
	}
	dsl := FormatFaults(faults)
	if want := "stall:0@3:40ms,kill:1@8,drop:2@5:3,drop:0@1,delay:1@2:10ms"; dsl != want {
		t.Fatalf("FormatFaults = %q, want %q", dsl, want)
	}
	back, err := ParseFaults(dsl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, faults) {
		t.Fatalf("round trip: %+v != %+v", back, faults)
	}
	// Whitespace-tolerant parse, canonical re-format.
	loose, err := ParseFaults(" stall:0@3:40ms , kill:1@8 ")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatFaults(loose); got != "stall:0@3:40ms,kill:1@8" {
		t.Fatalf("canonical format = %q", got)
	}
}

func TestFaultDSLRejects(t *testing.T) {
	for _, bad := range []string{
		"kill", "kill:1", "kill:one@2", "kill:1@two", "kill:1@2:5ms",
		"stall:1@2", "stall:1@2:bogus", "stall:1@2:-5ms",
		"drop:1@2:0", "meteor:1@2",
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseBatchDelay(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"0", 0}, {"auto", -1}, {"150us", 150 * time.Microsecond}, {"2ms", 2 * time.Millisecond},
	}
	for _, tc := range cases {
		got, err := ParseBatchDelay(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBatchDelay(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"-5ms", "fast", "auto2"} {
		if _, err := ParseBatchDelay(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func fullSpec() *Spec {
	return &Spec{
		Cluster: "b", Models: []string{"H100", "P100"}, Workload: "imagenet",
		System: "adaptdl", Seed: 7, Epochs: 12, Batch: 256, Chaos: 0.3,
		Audit: "strict", Progress: true, CSV: true,
		MLP: true, Backend: "live", MLPBatches: []int{8, 4, 2},
		BucketBytes: 2048, KernelShards: 2,
		Faults:      []Fault{{Kind: "stall", Worker: 1, Step: 4, Delay: 20 * time.Millisecond}},
		FaultReplan: "optperf",
		Transport:   TransportTCP, Rank: 2,
		Peers:  []string{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"},
		Listen: "0.0.0.0:9003", BatchDelay: "auto", Guard: true, WorkerBin: "/tmp/worker",
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	want := fullSpec()
	path := filepath.Join(t.TempDir(), "run.json")
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JSON round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := writeFile(path, `{"mlp": true, "transprot": "tcp"}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("typoed field accepted")
	}
}

func TestFlagsAlone(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	b := Register(fs)
	err := fs.Parse([]string{
		"-mlp", "-backend", "live", "-mlp-batches", "8,4",
		"-transport", "tcp", "-peers", "h1:1,h2:2", "-rank", "1",
		"-batch-delay", "auto", "-guard",
		"-fault", "kill:0@2,stall:1@3:5ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !s.MLP || s.Backend != "live" || !reflect.DeepEqual(s.MLPBatches, []int{8, 4}) {
		t.Fatalf("mlp flags: %+v", s)
	}
	if s.Transport != TransportTCP || s.Rank != 1 || !reflect.DeepEqual(s.Peers, []string{"h1:1", "h2:2"}) {
		t.Fatalf("transport flags: %+v", s)
	}
	if s.BatchDelay != "auto" || !s.Guard {
		t.Fatalf("batching flags: %+v", s)
	}
	if len(s.Faults) != 2 || s.Faults[0].Kind != "kill" || s.Faults[1].Delay != 5*time.Millisecond {
		t.Fatalf("faults: %+v", s.Faults)
	}
	// Untouched fields keep their defaults.
	if s.Cluster != "a" || s.Seed != 1 || s.System != "cannikin" {
		t.Fatalf("defaults clobbered: %+v", s)
	}
}

// TestFlagOverridesSpecFile is the precedence contract: a -spec file sets
// the baseline, explicitly-set flags win, untouched fields come from the
// file — which is exactly how the coordinator shares one spec across ranks
// (`cannikin-worker -spec run.json -rank N`).
func TestFlagOverridesSpecFile(t *testing.T) {
	base := fullSpec()
	path := filepath.Join(t.TempDir(), "run.json")
	if err := base.Save(path); err != nil {
		t.Fatal(err)
	}

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	b := Register(fs)
	if err := fs.Parse([]string{"-spec", path, "-rank", "0", "-seed", "99", "-batch-delay", "0"}); err != nil {
		t.Fatal(err)
	}
	s, err := b.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank != 0 || s.Seed != 99 || s.BatchDelay != "0" {
		t.Fatalf("flags did not override file: %+v", s)
	}
	// Everything else comes from the file.
	if s.Cluster != "b" || !s.MLP || s.Backend != "live" || !s.Guard ||
		!reflect.DeepEqual(s.MLPBatches, []int{8, 4, 2}) ||
		!reflect.DeepEqual(s.Peers, base.Peers) || len(s.Faults) != 1 {
		t.Fatalf("file fields lost: %+v", s)
	}
}

func TestResolveMissingFile(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	b := Register(fs)
	if err := fs.Parse([]string{"-spec", "/nonexistent/run.json"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Resolve(); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestDecodeAppliesDefaults: a sparse request body inherits every default,
// exactly as a sparse -spec file would.
func TestDecodeDefaultsAndStrictness(t *testing.T) {
	got, err := Decode(strings.NewReader(`{"mlp": true, "seed": 9}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Default()
	want.MLP = true
	want.Seed = 9
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Decode sparse body:\n got %+v\nwant %+v", got, want)
	}

	if _, err := Decode(strings.NewReader(`{"mlp": true, "sede": 9}`)); err == nil {
		t.Fatal("typoed field accepted")
	} else if !strings.Contains(err.Error(), "decode spec") {
		t.Fatalf("unknown-field error %q not wrapped as decode spec", err)
	}
	if _, err := Decode(strings.NewReader(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestDecodeFullSpecRoundTrip pins the server submission contract at the
// package level: marshaling a maximal Spec (fault events included) and
// decoding it back is field-identical, so an HTTP body and the spec the
// scheduler echoes can be compared with DeepEqual.
func TestDecodeFullSpecRoundTrip(t *testing.T) {
	want := fullSpec()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Decode round trip:\n got %+v\nwant %+v", got, want)
	}
	// The fault mini-DSL survives a trip through its own text form too.
	back, err := ParseFaults(FormatFaults(want.Faults))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, want.Faults) {
		t.Fatalf("fault DSL round trip: %+v != %+v", back, want.Faults)
	}
}
