package runspec

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestFaultDSLRoundTrip(t *testing.T) {
	faults := []Fault{
		{Kind: "stall", Worker: 0, Step: 3, Delay: 40 * time.Millisecond},
		{Kind: "kill", Worker: 1, Step: 8},
		{Kind: "drop", Worker: 2, Step: 5, Count: 3},
		{Kind: "drop", Worker: 0, Step: 1, Count: 1},
		{Kind: "delay", Worker: 1, Step: 2, Delay: 10 * time.Millisecond},
	}
	dsl := FormatFaults(faults)
	if want := "stall:0@3:40ms,kill:1@8,drop:2@5:3,drop:0@1,delay:1@2:10ms"; dsl != want {
		t.Fatalf("FormatFaults = %q, want %q", dsl, want)
	}
	back, err := ParseFaults(dsl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, faults) {
		t.Fatalf("round trip: %+v != %+v", back, faults)
	}
	// Whitespace-tolerant parse, canonical re-format.
	loose, err := ParseFaults(" stall:0@3:40ms , kill:1@8 ")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatFaults(loose); got != "stall:0@3:40ms,kill:1@8" {
		t.Fatalf("canonical format = %q", got)
	}
}

func TestFaultDSLRejects(t *testing.T) {
	for _, bad := range []string{
		"kill", "kill:1", "kill:one@2", "kill:1@two", "kill:1@2:5ms",
		"stall:1@2", "stall:1@2:bogus", "stall:1@2:-5ms",
		"drop:1@2:0", "meteor:1@2",
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestJoinDSLRoundTrip(t *testing.T) {
	joins := []JoinEntry{
		{Epoch: 1, Batch: 8},
		{Epoch: 3, Batch: 4, Replan: "optperf"},
		{Epoch: 3, Batch: 2, Replan: "keep"},
	}
	dsl := FormatJoins(joins)
	if want := "1:8,3:4:optperf,3:2"; dsl != want {
		t.Fatalf("FormatJoins = %q, want %q", dsl, want)
	}
	back, err := ParseJoins(dsl)
	if err != nil {
		t.Fatal(err)
	}
	// "keep" canonicalizes to the empty default through the text form.
	want := []JoinEntry{{Epoch: 1, Batch: 8}, {Epoch: 3, Batch: 4, Replan: "optperf"}, {Epoch: 3, Batch: 2}}
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("round trip: %+v != %+v", back, want)
	}
	loose, err := ParseJoins(" 1:8 , 2:4:keep ")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatJoins(loose); got != "1:8,2:4" {
		t.Fatalf("canonical format = %q", got)
	}
	if js, err := ParseJoins(""); err != nil || js != nil {
		t.Fatalf("empty join spec: %v, %v", js, err)
	}
}

func TestJoinDSLRejects(t *testing.T) {
	for _, bad := range []string{
		"1", "1:", ":8", "one:8", "1:eight", "0:8", "-1:8", "1:0",
		"1:8:bogus", "1:8:optperf:extra", "1:8,,2:4",
	} {
		if _, err := ParseJoins(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseBatchDelay(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"0", 0}, {"auto", -1}, {"150us", 150 * time.Microsecond}, {"2ms", 2 * time.Millisecond},
	}
	for _, tc := range cases {
		got, err := ParseBatchDelay(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBatchDelay(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"-5ms", "fast", "auto2"} {
		if _, err := ParseBatchDelay(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func fullSpec() *Spec {
	return &Spec{
		Cluster: "b", Models: []string{"H100", "P100"}, Workload: "imagenet",
		System: "adaptdl", Seed: 7, Epochs: 12, Batch: 256, Chaos: 0.3,
		Audit: "strict", Progress: true, CSV: true,
		MLP: true, Backend: "live", MLPBatches: []int{8, 4, 2},
		BucketBytes: 2048, KernelShards: 2,
		Faults:      []Fault{{Kind: "stall", Worker: 1, Step: 4, Delay: 20 * time.Millisecond}},
		FaultReplan: "optperf",
		Joins:       []JoinEntry{{Epoch: 2, Batch: 8}, {Epoch: 5, Batch: 4, Replan: "optperf"}},
		AutoscaleMax: 6, AutoscaleMin: 2, AutoscaleGrow: 0.1, AutoscaleShrink: 0.02, AutoscaleBatch: 4,
		Resume: "join-1", CheckpointIn: "/tmp/in.ckpt", CheckpointOut: "/tmp/out.ckpt",
		Transport: TransportTCP, Rank: 2,
		Peers:  []string{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"},
		Listen: "0.0.0.0:9003", BatchDelay: "auto", Guard: true, WorkerBin: "/tmp/worker",
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	want := fullSpec()
	path := filepath.Join(t.TempDir(), "run.json")
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JSON round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := writeFile(path, `{"mlp": true, "transprot": "tcp"}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("typoed field accepted")
	}
}

func TestFlagsAlone(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	b := Register(fs)
	err := fs.Parse([]string{
		"-mlp", "-backend", "live", "-mlp-batches", "8,4",
		"-transport", "tcp", "-peers", "h1:1,h2:2", "-rank", "1",
		"-batch-delay", "auto", "-guard",
		"-fault", "kill:0@2,stall:1@3:5ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !s.MLP || s.Backend != "live" || !reflect.DeepEqual(s.MLPBatches, []int{8, 4}) {
		t.Fatalf("mlp flags: %+v", s)
	}
	if s.Transport != TransportTCP || s.Rank != 1 || !reflect.DeepEqual(s.Peers, []string{"h1:1", "h2:2"}) {
		t.Fatalf("transport flags: %+v", s)
	}
	if s.BatchDelay != "auto" || !s.Guard {
		t.Fatalf("batching flags: %+v", s)
	}
	if len(s.Faults) != 2 || s.Faults[0].Kind != "kill" || s.Faults[1].Delay != 5*time.Millisecond {
		t.Fatalf("faults: %+v", s.Faults)
	}
	// Untouched fields keep their defaults.
	if s.Cluster != "a" || s.Seed != 1 || s.System != "cannikin" {
		t.Fatalf("defaults clobbered: %+v", s)
	}
}

// TestElasticFlags covers the elastic-membership flag surface: the -join
// mini-DSL, the autoscaler knobs, and the checkpoint/resume handoff — both
// alone and overriding a spec file.
func TestElasticFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	b := Register(fs)
	err := fs.Parse([]string{
		"-mlp", "-backend", "live", "-join", "1:8,3:4:optperf",
		"-autoscale-max", "5", "-autoscale-min", "2",
		"-autoscale-grow", "0.1", "-autoscale-shrink", "0.02", "-autoscale-batch", "4",
		"-resume", "join-1", "-checkpoint-in", "/tmp/a.ckpt", "-checkpoint-out", "/tmp/b.ckpt",
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wantJoins := []JoinEntry{{Epoch: 1, Batch: 8}, {Epoch: 3, Batch: 4, Replan: "optperf"}}
	if !reflect.DeepEqual(s.Joins, wantJoins) {
		t.Fatalf("joins: %+v", s.Joins)
	}
	if s.AutoscaleMax != 5 || s.AutoscaleMin != 2 || s.AutoscaleGrow != 0.1 ||
		s.AutoscaleShrink != 0.02 || s.AutoscaleBatch != 4 {
		t.Fatalf("autoscale flags: %+v", s)
	}
	if s.Resume != "join-1" || s.CheckpointIn != "/tmp/a.ckpt" || s.CheckpointOut != "/tmp/b.ckpt" {
		t.Fatalf("handoff flags: %+v", s)
	}

	// Explicit flags override the file's elastic fields too.
	base := fullSpec()
	path := filepath.Join(t.TempDir(), "run.json")
	if err := base.Save(path); err != nil {
		t.Fatal(err)
	}
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	b2 := Register(fs2)
	if err := fs2.Parse([]string{"-spec", path, "-join", "4:2", "-autoscale-max", "9", "-resume", ""}); err != nil {
		t.Fatal(err)
	}
	s2, err := b2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s2.Joins, []JoinEntry{{Epoch: 4, Batch: 2}}) || s2.AutoscaleMax != 9 || s2.Resume != "" {
		t.Fatalf("flag-over-file: joins %+v max %d resume %q", s2.Joins, s2.AutoscaleMax, s2.Resume)
	}
	// Untouched elastic fields come from the file.
	if s2.AutoscaleMin != base.AutoscaleMin || s2.CheckpointIn != base.CheckpointIn {
		t.Fatalf("file fields lost: %+v", s2)
	}
}

// TestFlagOverridesSpecFile is the precedence contract: a -spec file sets
// the baseline, explicitly-set flags win, untouched fields come from the
// file — which is exactly how the coordinator shares one spec across ranks
// (`cannikin-worker -spec run.json -rank N`).
func TestFlagOverridesSpecFile(t *testing.T) {
	base := fullSpec()
	path := filepath.Join(t.TempDir(), "run.json")
	if err := base.Save(path); err != nil {
		t.Fatal(err)
	}

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	b := Register(fs)
	if err := fs.Parse([]string{"-spec", path, "-rank", "0", "-seed", "99", "-batch-delay", "0"}); err != nil {
		t.Fatal(err)
	}
	s, err := b.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank != 0 || s.Seed != 99 || s.BatchDelay != "0" {
		t.Fatalf("flags did not override file: %+v", s)
	}
	// Everything else comes from the file.
	if s.Cluster != "b" || !s.MLP || s.Backend != "live" || !s.Guard ||
		!reflect.DeepEqual(s.MLPBatches, []int{8, 4, 2}) ||
		!reflect.DeepEqual(s.Peers, base.Peers) || len(s.Faults) != 1 {
		t.Fatalf("file fields lost: %+v", s)
	}
}

func TestResolveMissingFile(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	b := Register(fs)
	if err := fs.Parse([]string{"-spec", "/nonexistent/run.json"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Resolve(); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestDecodeAppliesDefaults: a sparse request body inherits every default,
// exactly as a sparse -spec file would.
func TestDecodeDefaultsAndStrictness(t *testing.T) {
	got, err := Decode(strings.NewReader(`{"mlp": true, "seed": 9}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Default()
	want.MLP = true
	want.Seed = 9
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Decode sparse body:\n got %+v\nwant %+v", got, want)
	}

	if _, err := Decode(strings.NewReader(`{"mlp": true, "sede": 9}`)); err == nil {
		t.Fatal("typoed field accepted")
	} else if !strings.Contains(err.Error(), "decode spec") {
		t.Fatalf("unknown-field error %q not wrapped as decode spec", err)
	}
	if _, err := Decode(strings.NewReader(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestDecodeFullSpecRoundTrip pins the server submission contract at the
// package level: marshaling a maximal Spec (fault events included) and
// decoding it back is field-identical, so an HTTP body and the spec the
// scheduler echoes can be compared with DeepEqual.
func TestDecodeFullSpecRoundTrip(t *testing.T) {
	want := fullSpec()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Decode round trip:\n got %+v\nwant %+v", got, want)
	}
	// The fault mini-DSL survives a trip through its own text form too.
	back, err := ParseFaults(FormatFaults(want.Faults))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, want.Faults) {
		t.Fatalf("fault DSL round trip: %+v != %+v", back, want.Faults)
	}
}
