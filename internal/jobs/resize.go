package jobs

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNotRunning reports a resize against a job that is not currently
// running; only running jobs hold devices to grow or shrink.
var ErrNotRunning = errors.New("jobs: job not running")

// AutoscalePolicy is the scheduler-level elastic policy: after every epoch
// report it re-prices the reporting job's membership with the goodput
// model and grows the job onto the fastest free device when the marginal
// device's predicted contribution exceeds GrowThreshold, or sheds the
// job's slowest device when the marginal device is worth less than
// ShrinkThreshold. Growth never preempts waiting jobs: a job only grows
// while the queue is empty.
type AutoscalePolicy struct {
	// GrowThreshold is the minimum relative predicted-goodput gain that
	// justifies granting one more device (default 0.05).
	GrowThreshold float64
	// ShrinkThreshold, when positive, sheds the job's marginal device
	// whenever it contributes less than this relative goodput fraction.
	// Zero disables shrinking.
	ShrinkThreshold float64
	// MinWorkers and MaxWorkers bound per-job membership (defaults: the
	// job's submitted width and the pool size).
	MinWorkers, MaxWorkers int
}

func (p *AutoscalePolicy) growThreshold() float64 {
	if p.GrowThreshold > 0 {
		return p.GrowThreshold
	}
	return 0.05
}

// Resize grows or shrinks a running job's device grant to the given worker
// count. Growth takes the fastest free devices under the job's profile and
// requires enough free capacity; shrinking releases the job's slowest
// devices and immediately re-plans the queue over the freed capacity. The
// transition is reported to watchers as a "resize" event and counted in
// Stats.Grown/Shrunk, with the goodput-vs-equal-split counterfactual
// accounting extended across the resize.
func (s *Scheduler) Resize(id string, workers int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	return s.resizeLocked(j, workers)
}

func (s *Scheduler) resizeLocked(j *job, workers int) error {
	if j.state != StateRunning {
		return fmt.Errorf("%w: %s is %s", ErrNotRunning, j.id, j.state)
	}
	if workers < 1 {
		return fmt.Errorf("jobs: resize %s to %d workers", j.id, workers)
	}
	if workers == j.workers {
		return nil
	}
	a := s.askOf(j)
	shrink := workers < j.workers
	if !shrink {
		delta := workers - j.workers
		free := s.pool.freeDevices()
		if len(free) < delta {
			return fmt.Errorf("jobs: resize %s to %d workers needs %d free devices, pool has %d",
				j.id, workers, delta, len(free))
		}
		grow := a
		grow.workers = delta
		added := fastestFor(free, grow)
		ids := make([]int, len(added))
		for i, d := range added {
			ids[i] = d.ID
		}
		s.pool.acquire(ids, j.id)
		j.devices = append(j.devices, ids...)
		sort.Ints(j.devices)
		s.stats.Grown++
	} else {
		held := s.heldDevices(j)
		keep := a
		keep.workers = workers
		kept := fastestFor(held, keep)
		keptIDs := make(map[int]bool, len(kept))
		for _, d := range kept {
			keptIDs[d.ID] = true
		}
		var dropIDs []int
		for _, d := range held {
			if !keptIDs[d.ID] {
				dropIDs = append(dropIDs, d.ID)
			}
		}
		s.pool.releaseDevices(dropIDs, j.id)
		j.devices = j.devices[:0]
		for _, d := range kept {
			j.devices = append(j.devices, d.ID)
		}
		sort.Ints(j.devices)
		s.stats.Shrunk++
	}
	j.workers = workers
	a.workers = workers
	held := s.heldDevices(j)
	j.goodput = predictGoodput(held, a)
	// Counterfactual accounting across the resize: the grant actually made
	// (fastest devices, proportional shards) against what the naive
	// baseline would extract from the same membership width on the
	// first-by-ID candidate set with equal shards.
	s.stats.GoodputGranted += j.goodput
	s.stats.GoodputEqualSplit += predictEqualSplit(s.firstByID(j, workers), a)
	s.stats.PlanEvents++
	ev := Event{Job: j.id, Type: "resize", Workers: workers, Devices: append([]int(nil), j.devices...)}
	s.notifyLocked(j, ev)
	if shrink {
		// A shrink freed capacity: re-plan the waiting queue over it.
		s.dispatchLocked()
	}
	return nil
}

// askOf rebuilds the allocator's view of a job's resource request.
func (s *Scheduler) askOf(j *job) ask {
	return ask{
		id: j.id, index: j.index, workers: j.workers, batch: j.batch,
		base: j.base, noise: s.askNoise(j), profile: j.profile,
	}
}

// heldDevices returns the job's granted devices in ID order.
func (s *Scheduler) heldDevices(j *job) []*Device {
	out := make([]*Device, 0, len(j.devices))
	for _, id := range j.devices {
		out = append(out, s.pool.devices[id])
	}
	return out
}

// firstByID is the naive counterfactual's candidate set for a membership
// of the given width: the lowest-ID devices among the job's held devices
// plus the free pool — what a speed-blind allocator would hand out.
func (s *Scheduler) firstByID(j *job, workers int) []*Device {
	cands := append([]*Device(nil), s.heldDevices(j)...)
	cands = append(cands, s.pool.freeDevices()...)
	sort.Slice(cands, func(a, b int) bool { return cands[a].ID < cands[b].ID })
	if workers > len(cands) {
		workers = len(cands)
	}
	return cands[:workers]
}

// autoscaleLocked is the per-epoch elastic evaluation for one running job:
// grow by one device when the marginal free device's predicted goodput
// contribution clears the threshold (and no job is waiting), shrink by one
// when the job's own marginal device is not pulling its weight.
func (s *Scheduler) autoscaleLocked(j *job) {
	p := s.cfg.Autoscale
	if p == nil || j.state != StateRunning {
		return
	}
	maxW := p.MaxWorkers
	if maxW <= 0 || maxW > s.pool.Size() {
		maxW = s.pool.Size()
	}
	minW := p.MinWorkers
	if minW <= 0 {
		minW = 1
	}
	a := s.askOf(j)
	held := s.heldDevices(j)
	cur := predictGoodput(held, a)
	if cur <= 0 {
		return
	}
	if len(s.queue) == 0 && j.workers < maxW {
		free := s.pool.freeDevices()
		if len(free) > 0 {
			pick := a
			pick.workers = 1
			candidate := fastestFor(free, pick)[0]
			grown := predictGoodput(append(append([]*Device(nil), held...), candidate), a)
			if gain := (grown - cur) / cur; gain >= p.growThreshold() {
				_ = s.resizeLocked(j, j.workers+1)
				return
			}
		}
	}
	if j.workers > minW && p.ShrinkThreshold > 0 {
		keep := a
		keep.workers = j.workers - 1
		shrunk := predictGoodput(fastestFor(held, keep), a)
		if loss := (cur - shrunk) / cur; loss < p.ShrinkThreshold {
			_ = s.resizeLocked(j, j.workers-1)
		}
	}
}
