package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cannikin/internal/gns"
	"cannikin/internal/runspec"
)

// Allocation policies accepted by Config.Policy.
const (
	// PolicyGoodput is the marginal-goodput allocator (default).
	PolicyGoodput = "goodput"
	// PolicyEqualSplit is the naive speed-blind FIFO baseline, kept
	// selectable so the load-test harness can race the two head to head.
	PolicyEqualSplit = "equal"
)

// defaultNoisePrior prices statistical efficiency for a job that has not
// yet reported any gradient-noise estimate and before the pool has one
// either. It is deliberately large-ish: an unknown job is assumed to
// tolerate its batch size reasonably well, and real estimates take over
// from the first epoch report.
const defaultNoisePrior = 256

// Config configures a Scheduler.
type Config struct {
	// Pool sizes the shared device pool (required).
	Pool PoolConfig
	// Runner executes admitted jobs (required).
	Runner Runner
	// MaxQueue bounds the number of waiting jobs; submissions beyond it are
	// rejected with a *QueueFullError. Default 64.
	MaxQueue int
	// Policy selects the allocator: PolicyGoodput (default) or
	// PolicyEqualSplit.
	Policy string
	// RetryAfter is the back-off hint carried by queue-full rejections.
	// Default 500ms.
	RetryAfter time.Duration
	// GNSAlpha is the EMA smoothing factor for the pool-level and per-job
	// noise trackers. Default 0.3.
	GNSAlpha float64
	// Autoscale, when set, enables per-job elastic membership: after every
	// epoch report the reporting job is grown onto the fastest free device
	// or shrunk off its slowest one according to the policy's goodput
	// thresholds.
	Autoscale *AutoscalePolicy
}

// job is the scheduler's internal record of one submission.
type job struct {
	id       string
	index    int
	spec     *runspec.Spec
	workers  int
	batch    int
	base     int
	state    State
	canceled bool // Cancel was requested while running

	submitted time.Time
	started   time.Time
	finished  time.Time

	devices []int
	goodput float64
	profile []float64
	tracker *gns.Tracker

	epochs   []Epoch
	outcome  *Outcome
	err      error
	cancel   context.CancelFunc
	watchers []chan Event
}

// Scheduler is the multi-tenant job service: one goodput-driven allocator,
// many concurrent jobs. All state is guarded by one mutex; dispatch is
// event-driven (submission, completion, failure, cancellation each trigger
// one re-planning round), so there is no polling loop to leak.
type Scheduler struct {
	cfg    Config
	pool   *Pool
	runner Runner

	mu       sync.Mutex
	jobs     map[string]*job
	all      []*job // every job in submission order
	queue    []*job // waiting jobs in submission order
	nextID   int
	draining bool
	tracker  *gns.Tracker // pool-level noise, fed by every job's epochs
	wg       sync.WaitGroup

	stats        Stats
	admitted     int           // jobs that reached running
	admittedWait time.Duration // sum of their admission latencies
}

// NewScheduler validates the config and builds the service. No goroutines
// run until the first job is granted devices.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if cfg.Runner == nil {
		return nil, errors.New("jobs: config needs a Runner")
	}
	switch cfg.Policy {
	case "":
		cfg.Policy = PolicyGoodput
	case PolicyGoodput, PolicyEqualSplit:
	default:
		return nil, fmt.Errorf("jobs: unknown policy %q (want %q or %q)", cfg.Policy, PolicyGoodput, PolicyEqualSplit)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 500 * time.Millisecond
	}
	if cfg.GNSAlpha <= 0 || cfg.GNSAlpha > 1 {
		cfg.GNSAlpha = 0.3
	}
	pool, err := NewPool(cfg.Pool)
	if err != nil {
		return nil, err
	}
	return &Scheduler{
		cfg:     cfg,
		pool:    pool,
		runner:  cfg.Runner,
		jobs:    map[string]*job{},
		tracker: gns.NewTracker(cfg.GNSAlpha),
	}, nil
}

// Pool exposes the device pool (read-only use; the scheduler owns it).
func (s *Scheduler) Pool() *Pool { return s.pool }

// Workers returns the device count a spec needs, mirroring how the run
// commands size their clusters: MLP jobs run one worker per local batch,
// simulated jobs one per cluster node (explicit model list, else the
// preset sizes of the paper's Tables 3/4 and Section 6).
func Workers(spec *runspec.Spec) (int, error) {
	if spec == nil {
		return 0, errors.New("nil spec")
	}
	if spec.MLP {
		if len(spec.MLPBatches) == 0 {
			return 0, errors.New("mlp spec has no local batches")
		}
		return len(spec.MLPBatches), nil
	}
	if len(spec.Models) > 0 {
		return len(spec.Models), nil
	}
	switch spec.Cluster {
	case "a", "A":
		return 3, nil
	case "b", "B", "c", "C":
		return 16, nil
	default:
		return 0, fmt.Errorf("unknown cluster preset %q", spec.Cluster)
	}
}

// batchOf returns the (scheduling-only) global batch and base batch used
// to price a spec's goodput. These drive allocation decisions, never the
// job's training arithmetic, so they cannot perturb determinism.
func batchOf(spec *runspec.Spec, workers int) (batch, base int) {
	switch {
	case spec.Batch > 0:
		batch = spec.Batch
	case spec.MLP:
		for _, b := range spec.MLPBatches {
			batch += b
		}
	default:
		batch = 32 * workers
	}
	base = 32
	if batch < base {
		base = batch
	}
	return batch, base
}

// Submit runs admission control and enqueues the job, returning its ID.
// Rejections: ErrDraining after Drain began, ErrBadSpec for specs the
// service cannot place (including ones wider than the whole pool), and a
// *QueueFullError (errors.Is ErrQueueFull) once MaxQueue jobs are waiting
// — the backpressure path; clients should retry after its hint.
func (s *Scheduler) Submit(spec *runspec.Spec) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return "", ErrDraining
	}
	workers, err := Workers(spec)
	if err != nil {
		s.stats.Rejected++
		return "", fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if workers > s.pool.Size() {
		s.stats.Rejected++
		return "", fmt.Errorf("%w: spec needs %d devices, pool has %d", ErrBadSpec, workers, s.pool.Size())
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.stats.Rejected++
		return "", &QueueFullError{Depth: len(s.queue), RetryAfter: s.cfg.RetryAfter}
	}
	id := fmt.Sprintf("job-%d", s.nextID)
	s.nextID++
	batch, base := batchOf(spec, workers)
	specCopy := *spec
	j := &job{
		id:        id,
		index:     s.stats.Submitted,
		spec:      &specCopy,
		workers:   workers,
		batch:     batch,
		base:      base,
		state:     StateQueued,
		submitted: time.Now(),
		profile:   s.pool.Profile(id),
		tracker:   gns.NewTracker(s.cfg.GNSAlpha),
	}
	s.jobs[id] = j
	s.all = append(s.all, j)
	s.queue = append(s.queue, j)
	s.stats.Submitted++
	if len(s.queue) > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = len(s.queue)
	}
	s.dispatchLocked()
	return id, nil
}

// askNoise resolves the gradient-noise estimate pricing a waiting job:
// the job's own smoothed estimate once it has reported epochs, else the
// pool-level estimate aggregated across every tenant, else the prior.
func (s *Scheduler) askNoise(j *job) float64 {
	if j.tracker.Steps() > 0 {
		return j.tracker.Noise()
	}
	if s.tracker.Steps() > 0 {
		return s.tracker.Noise()
	}
	return defaultNoisePrior
}

// dispatchLocked is one cluster-level re-planning round, run on every
// membership event (arrival, finish, failure, cancellation). It plans
// grants for the waiting queue under the configured policy, always prices
// the equal-split counterfactual on the identical pool state for the
// Stats comparison, and starts the granted jobs.
func (s *Scheduler) dispatchLocked() {
	if s.draining {
		return
	}
	s.stats.PlanEvents++
	if len(s.queue) == 0 || s.pool.FreeCount() == 0 {
		return
	}
	asks := make([]ask, len(s.queue))
	for i, j := range s.queue {
		asks[i] = ask{
			id:      j.id,
			index:   j.index,
			workers: j.workers,
			batch:   j.batch,
			base:    j.base,
			noise:   s.askNoise(j),
			profile: j.profile,
		}
	}
	free := s.pool.freeDevices()
	var grants []grant
	switch s.cfg.Policy {
	case PolicyEqualSplit:
		grants = planEqualSplit(free, asks)
	default:
		grants = planGoodput(free, asks)
	}
	if len(grants) == 0 {
		return
	}
	// Counterfactual: what the naive baseline would have extracted from the
	// same free devices and the same queue, at the same instant.
	s.stats.GoodputGranted += totalGoodput(grants)
	s.stats.GoodputEqualSplit += totalGoodput(planEqualSplit(free, asks))
	for _, g := range grants {
		s.startLocked(s.jobs[g.id], g)
	}
}

// startLocked transitions a queued job to running on its granted devices.
func (s *Scheduler) startLocked(j *job, g grant) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	s.pool.acquire(g.devices, j.id)
	j.state = StateRunning
	j.started = time.Now()
	j.devices = g.devices
	j.goodput = g.goodput
	s.admitted++
	s.admittedWait += j.started.Sub(j.submitted)
	if wait := j.started.Sub(j.submitted); wait > s.stats.AdmissionMax {
		s.stats.AdmissionMax = wait
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	s.notifyLocked(j, Event{Job: j.id, Type: "state", State: StateRunning})
	s.wg.Add(1)
	go s.runJob(j, ctx)
}

// runJob executes one job via the Runner and settles its terminal state.
func (s *Scheduler) runJob(j *job, ctx context.Context) {
	defer s.wg.Done()
	defer j.cancel()
	outcome, err := s.runner.Run(ctx, j.spec, func(e Epoch) error {
		s.observeEpoch(j, e)
		return nil
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.release(j.id)
	j.finished = time.Now()
	j.outcome = outcome
	switch {
	case err == nil:
		j.state = StateDone
		s.stats.Done++
	case j.canceled || errors.Is(err, context.Canceled):
		j.state = StateCanceled
		s.stats.Canceled++
		j.err = err
	default:
		j.state = StateFailed
		s.stats.Failed++
		j.err = err
	}
	s.settleLocked(j)
	s.dispatchLocked()
}

// observeEpoch records one epoch report: the per-epoch trace, the job's
// noise tracker, the pool-level tracker, and the watcher fan-out.
func (s *Scheduler) observeEpoch(j *job, e Epoch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.epochs = append(j.epochs, e)
	if e.Noise > 0 {
		est := gns.Estimate{GradSq: 1, TraceVar: e.Noise, Noise: e.Noise}
		j.tracker.Observe(est)
		s.tracker.Observe(est)
	}
	ec := e
	s.notifyLocked(j, Event{Job: j.id, Type: "epoch", Epoch: &ec})
	s.autoscaleLocked(j)
}

// notifyLocked fans an event out to the job's watchers without ever
// blocking the training goroutine: a watcher that stopped draining its
// buffer loses events, not the job.
func (s *Scheduler) notifyLocked(j *job, ev Event) {
	for _, ch := range j.watchers {
		select {
		case ch <- ev:
		default:
		}
	}
}

// settleLocked emits the terminal state event and closes every watcher.
func (s *Scheduler) settleLocked(j *job) {
	ev := Event{Job: j.id, Type: "state", State: j.state}
	if j.err != nil {
		ev.Error = j.err.Error()
	}
	for _, ch := range j.watchers {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
	j.watchers = nil
}

// Cancel cancels a job. A queued job is removed immediately and frees its
// slot for re-planning; a running job has its context canceled and settles
// as canceled when the runner unwinds. Canceling a terminal job is a no-op.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch j.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.state = StateCanceled
		j.finished = time.Now()
		s.stats.Canceled++
		s.settleLocked(j)
		s.dispatchLocked()
	case StateRunning:
		j.canceled = true
		j.cancel()
	}
	return nil
}

// Status returns the job's full snapshot, including its epoch trace.
func (s *Scheduler) Status(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	st := s.snapshotLocked(j)
	st.Epochs = append([]Epoch(nil), j.epochs...)
	return st, nil
}

// List returns every job's snapshot (without epoch traces), in submission
// order.
func (s *Scheduler) List() []*JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobStatus, 0, len(s.all))
	for _, j := range s.all {
		out = append(out, s.snapshotLocked(j))
	}
	return out
}

func (s *Scheduler) snapshotLocked(j *job) *JobStatus {
	st := &JobStatus{
		ID:         j.id,
		Spec:       j.spec,
		State:      j.state,
		QueuePos:   -1,
		Workers:    j.workers,
		Submitted:  j.submitted,
		Started:    j.started,
		Finished:   j.finished,
		Devices:    append([]int(nil), j.devices...),
		Goodput:    j.goodput,
		EpochsDone: len(j.epochs),
		Outcome:    j.outcome,
	}
	if j.tracker.Steps() > 0 {
		st.Noise = j.tracker.Noise()
	}
	if j.state == StateQueued {
		for i, q := range s.queue {
			if q == j {
				st.QueuePos = i
			}
		}
	}
	if !j.started.IsZero() {
		st.AdmissionLatency = j.started.Sub(j.submitted)
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Watch returns a stream of the job's events: a replay of every epoch so
// far, then live epochs and state transitions until the job settles, when
// the channel closes. The stream is lossy under sustained backpressure
// (slow consumers drop events rather than stalling training).
func (s *Scheduler) Watch(id string) (<-chan Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	ch := make(chan Event, len(j.epochs)+256)
	for i := range j.epochs {
		ec := j.epochs[i]
		ch <- Event{Job: j.id, Type: "epoch", Epoch: &ec}
	}
	if j.state.Terminal() {
		ev := Event{Job: j.id, Type: "state", State: j.state}
		if j.err != nil {
			ev.Error = j.err.Error()
		}
		ch <- ev
		close(ch)
		return ch, nil
	}
	j.watchers = append(j.watchers, ch)
	return ch, nil
}

// Stats returns the scheduler's aggregate accounting, including the live
// aggregate goodput of running jobs under their current noise estimates.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Devices = s.pool.Size()
	st.Busy = s.pool.Size() - s.pool.FreeCount()
	st.Queued = len(s.queue)
	st.Draining = s.draining
	if s.tracker.Steps() > 0 {
		st.PoolNoise = s.tracker.Noise()
	}
	if s.admitted > 0 {
		st.AdmissionMean = s.admittedWait / time.Duration(s.admitted)
	}
	byID := make(map[int]*Device, len(s.pool.devices))
	for _, d := range s.pool.devices {
		byID[d.ID] = d
	}
	for _, j := range s.jobs {
		if j.state != StateRunning {
			continue
		}
		st.Running++
		devs := make([]*Device, 0, len(j.devices))
		for _, id := range j.devices {
			devs = append(devs, byID[id])
		}
		st.AggregateGoodput += predictGoodput(devs, ask{
			id: j.id, workers: j.workers, batch: j.batch, base: j.base,
			noise: s.askNoise(j), profile: j.profile,
		})
	}
	return st
}

// Drain begins graceful shutdown: no further submissions are admitted,
// still-queued jobs are canceled (they never started; clients may resubmit
// elsewhere), and running jobs are left to finish. Drain returns when the
// last running job settles, or — if ctx expires first — cancels the
// survivors, waits for them to unwind, and returns ctx's error.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.stats.PlanEvents++
		for _, j := range append([]*job(nil), s.queue...) {
			j.state = StateCanceled
			j.finished = time.Now()
			s.stats.Canceled++
			s.settleLocked(j)
		}
		s.queue = nil
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.state == StateRunning {
				j.canceled = true
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
