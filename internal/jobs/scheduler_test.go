package jobs

import (
	"context"
	"errors"
	"fmt"
	gort "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cannikin/internal/runspec"
)

// fakeRunner is a controllable Runner: it reports epochs epochs (with the
// configured noise), sleeping delay between them, and honors ctx.
type fakeRunner struct {
	epochs int
	delay  time.Duration
	noise  float64
	// fail makes every run return this error after its epochs.
	fail error
	// gate, when non-nil, blocks each run until the gate closes (or ctx).
	gate chan struct{}

	started atomic.Int32
	active  atomic.Int32
	peak    atomic.Int32
}

func (f *fakeRunner) Run(ctx context.Context, spec *runspec.Spec, onEpoch func(Epoch) error) (*Outcome, error) {
	f.started.Add(1)
	n := f.active.Add(1)
	for {
		p := f.peak.Load()
		if n <= p || f.peak.CompareAndSwap(p, n) {
			break
		}
	}
	defer f.active.Add(-1)
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, fmt.Errorf("fake: %w", ctx.Err())
		}
	}
	for e := 0; e < f.epochs; e++ {
		if f.delay > 0 {
			select {
			case <-time.After(f.delay):
			case <-ctx.Done():
				return nil, fmt.Errorf("fake: %w", ctx.Err())
			}
		} else if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fake: %w", err)
		}
		if err := onEpoch(Epoch{Epoch: e, Batch: 32, Noise: f.noise, Metric: float64(e)}); err != nil {
			return nil, err
		}
	}
	if f.fail != nil {
		return nil, f.fail
	}
	return &Outcome{Epochs: f.epochs, FinalMetric: float64(f.epochs - 1)}, nil
}

func mlpSpec(workers int) *runspec.Spec {
	s := runspec.Default()
	s.MLP = true
	s.MLPBatches = make([]int, workers)
	for i := range s.MLPBatches {
		s.MLPBatches[i] = 8
	}
	return s
}

func newScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitTerminal polls until the job settles or the deadline passes.
func waitTerminal(t *testing.T, s *Scheduler, id string) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return nil
}

func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := gort.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := gort.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", gort.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 4, Seed: 1},
		Runner: &fakeRunner{epochs: 3, noise: 40},
	})
	id, err := s.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q)", st.State, st.Error)
	}
	if st.Outcome == nil || st.Outcome.Epochs != 3 {
		t.Fatalf("outcome = %+v", st.Outcome)
	}
	if len(st.Epochs) != 3 || st.EpochsDone != 3 {
		t.Fatalf("epoch trace = %d entries, done = %d", len(st.Epochs), st.EpochsDone)
	}
	if len(st.Devices) != 2 {
		t.Fatalf("devices = %v, want 2 held", st.Devices)
	}
	if st.Noise <= 0 {
		t.Fatalf("noise estimate never fed back: %v", st.Noise)
	}
	if st.AdmissionLatency < 0 {
		t.Fatalf("admission latency = %v", st.AdmissionLatency)
	}
	stats := s.Stats()
	if stats.Done != 1 || stats.Busy != 0 || stats.PoolNoise <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestSpecEchoedFieldIdentical: the Status snapshot echoes the submitted
// spec without mutation — the server round-trip depends on it.
func TestSpecEchoedFieldIdentical(t *testing.T) {
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 4, Seed: 1},
		Runner: &fakeRunner{epochs: 1},
	})
	spec := mlpSpec(2)
	spec.Seed = 99
	spec.Faults = []runspec.Fault{{Kind: "stall", Worker: 0, Step: 3, Delay: 40 * time.Millisecond}}
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id)
	if st.Spec.Seed != 99 || len(st.Spec.Faults) != 1 || st.Spec.Faults[0].Delay != 40*time.Millisecond {
		t.Fatalf("spec not echoed: %+v", st.Spec)
	}
	// The scheduler holds a copy: mutating the caller's spec after Submit
	// must not leak in.
	spec.Seed = 1
	if st2, _ := s.Status(id); st2.Spec.Seed != 99 {
		t.Fatal("scheduler aliases the caller's spec")
	}
}

func TestBadSpecRejected(t *testing.T) {
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 2, Seed: 1},
		Runner: &fakeRunner{epochs: 1},
	})
	if _, err := s.Submit(nil); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("nil spec: err = %v", err)
	}
	// Wider than the whole pool.
	if _, err := s.Submit(mlpSpec(3)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("oversized spec: err = %v", err)
	}
	bad := runspec.Default()
	bad.Cluster = "z"
	if _, err := s.Submit(bad); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown preset: err = %v", err)
	}
	if st := s.Stats(); st.Rejected != 3 || st.Submitted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestQueueBackpressure: once MaxQueue jobs wait, Submit rejects with a
// *QueueFullError carrying the retry hint.
func TestQueueBackpressure(t *testing.T) {
	gate := make(chan struct{})
	r := &fakeRunner{epochs: 1, gate: gate}
	s := newScheduler(t, Config{
		Pool:       PoolConfig{Devices: 2, Seed: 1},
		Runner:     r,
		MaxQueue:   3,
		RetryAfter: 250 * time.Millisecond,
	})
	// One job holds the whole pool; the next three fill the queue.
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(mlpSpec(2)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := s.Submit(mlpSpec(2))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	var qf *QueueFullError
	if !errors.As(err, &qf) || qf.Depth != 3 || qf.RetryAfter != 250*time.Millisecond {
		t.Fatalf("queue-full detail = %+v", qf)
	}
	if st := s.Stats(); st.Queued != 3 || st.MaxQueueDepth != 3 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
	close(gate)
	for _, j := range s.List() {
		waitTerminal(t, s, j.ID)
	}
	if st := s.Stats(); st.Done != 4 || st.Queued != 0 {
		t.Fatalf("after drain of queue: %+v", st)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	gate := make(chan struct{})
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 2, Seed: 1},
		Runner: &fakeRunner{epochs: 1, gate: gate},
	})
	running, err := s.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status(queued); st.State != StateQueued || st.QueuePos != 0 {
		t.Fatalf("second job = %+v", st)
	}
	if err := s.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status(queued); st.State != StateCanceled {
		t.Fatalf("canceled queued job = %s", st.State)
	}
	if err := s.Cancel(running); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, running)
	if st.State != StateCanceled {
		t.Fatalf("canceled running job = %s (err %q)", st.State, st.Error)
	}
	// Idempotent on terminal jobs; ErrNotFound on unknowns.
	if err := s.Cancel(running); err != nil {
		t.Fatalf("re-cancel: %v", err)
	}
	if err := s.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v", err)
	}
	if st := s.Stats(); st.Canceled != 2 || st.Busy != 0 {
		t.Fatalf("stats = %+v", st)
	}
	close(gate)
}

func TestRunnerFailureSettlesFailed(t *testing.T) {
	boom := errors.New("boom")
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 2, Seed: 1},
		Runner: &fakeRunner{epochs: 2, fail: boom},
	})
	id, err := s.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateFailed || st.Error != "boom" {
		t.Fatalf("status = %+v", st)
	}
	// The failure freed the devices for the next tenant.
	next, err := s.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, next)
}

// TestReplanOnFinish: a queued job starts as soon as a finishing job frees
// its devices — the event-driven re-planning path.
func TestReplanOnFinish(t *testing.T) {
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 2, Seed: 1},
		Runner: &fakeRunner{epochs: 2, delay: 5 * time.Millisecond},
	})
	first, _ := s.Submit(mlpSpec(2))
	second, err := s.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status(second); st.State != StateQueued {
		t.Fatalf("second job should queue behind a full pool, got %s", st.State)
	}
	if waitTerminal(t, s, first).State != StateDone {
		t.Fatal("first job failed")
	}
	if waitTerminal(t, s, second).State != StateDone {
		t.Fatal("second job failed")
	}
	if st := s.Stats(); st.PlanEvents < 3 {
		t.Fatalf("plan events = %d, want at least submit+submit+finish", st.PlanEvents)
	}
}

func TestWatchStreamsAndReplays(t *testing.T) {
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 2, Seed: 1},
		Runner: &fakeRunner{epochs: 3, delay: 2 * time.Millisecond},
	})
	id, err := s.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Watch(id)
	if err != nil {
		t.Fatal(err)
	}
	var epochs []int
	var final State
	for ev := range ch {
		switch ev.Type {
		case "epoch":
			epochs = append(epochs, ev.Epoch.Epoch)
		case "state":
			final = ev.State
		}
	}
	if final != StateDone {
		t.Fatalf("final state = %s", final)
	}
	if len(epochs) != 3 {
		t.Fatalf("streamed %d epochs, want 3: %v", len(epochs), epochs)
	}
	for i, e := range epochs {
		if e != i {
			t.Fatalf("epochs out of order: %v", epochs)
		}
	}
	// Watching a settled job replays the trace then closes.
	ch2, err := s.Watch(id)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ev := range ch2 {
		if ev.Type == "epoch" {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("replay streamed %d epochs, want 3", n)
	}
	if _, err := s.Watch("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown watch: %v", err)
	}
}

func TestDrainGraceful(t *testing.T) {
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 2, Seed: 1},
		Runner: &fakeRunner{epochs: 3, delay: 3 * time.Millisecond},
	})
	running, _ := s.Submit(mlpSpec(2))
	queued, _ := s.Submit(mlpSpec(2))
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status(running); st.State != StateDone {
		t.Fatalf("running job under graceful drain = %s (err %q)", st.State, st.Error)
	}
	if st, _ := s.Status(queued); st.State != StateCanceled {
		t.Fatalf("queued job under drain = %s", st.State)
	}
	if _, err := s.Submit(mlpSpec(2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v", err)
	}
	if !s.Stats().Draining {
		t.Fatal("stats do not report draining")
	}
}

func TestDrainDeadlineCancelsSurvivors(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 2, Seed: 1},
		Runner: &fakeRunner{epochs: 1, gate: gate},
	})
	id, _ := s.Submit(mlpSpec(2))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v", err)
	}
	if st, _ := s.Status(id); st.State != StateCanceled {
		t.Fatalf("survivor after deadline = %s", st.State)
	}
}

// TestManyConcurrentJobs is the scale test: 120 jobs over a 12-device
// pool, no deadlock, no leaked goroutines, every job settles, devices all
// return, and the goodput allocator's accumulated grants price at least
// what the equal-split baseline would have managed at the same decision
// points.
func TestManyConcurrentJobs(t *testing.T) {
	baseline := gort.NumGoroutine()
	r := &fakeRunner{epochs: 2, noise: 80, delay: time.Millisecond}
	s := newScheduler(t, Config{
		Pool:     PoolConfig{Devices: 12, Seed: 3, Jitter: 0.05},
		Runner:   r,
		MaxQueue: 200,
	})
	const jobs = 120
	ids := make([]string, 0, jobs)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := s.Submit(mlpSpec(1 + i%4))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			mu.Lock()
			ids = append(ids, id)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if st := waitTerminal(t, s, id); st.State != StateDone {
			t.Fatalf("job %s = %s (err %q)", id, st.State, st.Error)
		}
	}
	st := s.Stats()
	if st.Done != jobs || st.Busy != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if int(r.started.Load()) != jobs {
		t.Fatalf("runner ran %d jobs, want %d", r.started.Load(), jobs)
	}
	if r.peak.Load() < 2 {
		t.Fatalf("peak concurrency %d — jobs never overlapped", r.peak.Load())
	}
	if st.GoodputGranted < st.GoodputEqualSplit {
		t.Fatalf("allocator lost to equal-split: %.4f < %.4f",
			st.GoodputGranted, st.GoodputEqualSplit)
	}
	if st.GoodputGranted <= 0 {
		t.Fatal("no goodput accounted")
	}
	waitGoroutines(t, baseline)
}

// TestEqualSplitPolicySelectable: the baseline policy is runnable end to
// end (the load-test harness races it against the default).
func TestEqualSplitPolicySelectable(t *testing.T) {
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 4, Seed: 1, Jitter: 0.05},
		Runner: &fakeRunner{epochs: 1},
		Policy: PolicyEqualSplit,
	})
	id, err := s.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateDone {
		t.Fatalf("state = %s", st.State)
	}
	// Under the baseline policy granted == counterfactual by definition.
	stats := s.Stats()
	if stats.GoodputGranted != stats.GoodputEqualSplit {
		t.Fatalf("equal policy accounting diverged: %v vs %v",
			stats.GoodputGranted, stats.GoodputEqualSplit)
	}
	if _, err := NewScheduler(Config{Pool: PoolConfig{Devices: 1}, Runner: &fakeRunner{}, Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := NewScheduler(Config{Pool: PoolConfig{Devices: 1}}); err == nil {
		t.Fatal("nil runner accepted")
	}
}
