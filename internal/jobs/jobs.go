// Package jobs is the multi-tenant training scheduler: one long-running
// Scheduler admits, queues, and runs many concurrent training jobs over a
// shared heterogeneous device pool.
//
// Jobs arrive as runspec.Spec documents (the same unified config behind the
// CLI tools), pass admission control (spec validation, pool-size fit, a
// bounded queue with reject-and-retry-after backpressure), and wait in a
// FIFO queue until the cluster-pool allocator grants them devices. The
// allocator assigns devices per job by *marginal goodput* — throughput ×
// statistical efficiency, the Pollux-style objective already used by the
// adaptive batch-size engine (internal/goodput), with the statistical
// efficiency driven by the heterogeneous gradient-noise-scale estimates
// (internal/gns) that running jobs stream back per epoch. Cluster-level
// re-planning happens on every membership event: job arrival, finish,
// failure, and cancellation.
//
// Isolation: each job's device profile is derived via rng.Split from the
// pool seed and the job ID alone, so one job's randomness never depends on
// what else is running — submitting the same spec alone or as the 500th
// concurrent job draws the identical profile. Execution isolation comes
// from the runner: every job trains from its own spec seed, so the final
// weights are bitwise-identical to a direct TrainMLP/Train call of the
// same spec regardless of pool contention.
//
// The actual training is delegated to a Runner, keeping this package free
// of a dependency on the public API (internal/server provides the real
// runner; tests use fakes).
package jobs

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cannikin/internal/runspec"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle states. Queued and Running are live; the rest are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Sentinel errors returned by Submit, Cancel, Status, and Watch; test with
// errors.Is.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: job not found")
	// ErrDraining reports a submission to a scheduler that is shutting down.
	ErrDraining = errors.New("jobs: scheduler draining")
	// ErrQueueFull reports admission-control backpressure; the concrete
	// error is a *QueueFullError carrying the retry hint.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrBadSpec reports a spec the service cannot run.
	ErrBadSpec = errors.New("jobs: bad spec")
)

// QueueFullError is the backpressure rejection: the bounded queue is at
// capacity and the client should retry after the hinted delay. It wraps
// ErrQueueFull.
type QueueFullError struct {
	// Depth is the queue depth at rejection time (== the configured cap).
	Depth int
	// RetryAfter is the suggested client back-off.
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("jobs: queue full (%d waiting); retry after %s", e.Depth, e.RetryAfter)
}

// Is makes errors.Is(err, ErrQueueFull) true for *QueueFullError.
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// Epoch is one completed training epoch of a job, in the unified shape the
// service streams to clients: simulated-cluster jobs fill Metric and
// Elapsed (simulated seconds), real MLP jobs fill Loss/Accuracy/Noise.
type Epoch struct {
	Epoch int `json:"epoch"`
	Batch int `json:"batch"`
	// Metric is the simulated workload's convergence metric (sim jobs).
	Metric float64 `json:"metric,omitempty"`
	// Loss and Accuracy are full-dataset measurements (MLP jobs).
	Loss     float64 `json:"loss,omitempty"`
	Accuracy float64 `json:"accuracy,omitempty"`
	// Noise is the smoothed heterogeneous GNS estimate (MLP jobs); it feeds
	// the scheduler's statistical-efficiency model.
	Noise float64 `json:"noise,omitempty"`
	// LearningRate is the epoch's learning rate (MLP jobs).
	LearningRate float64 `json:"lr,omitempty"`
	// Elapsed is the cumulative time at epoch end: simulated seconds for
	// sim jobs, wall-clock seconds for MLP jobs.
	Elapsed float64 `json:"elapsed,omitempty"`
}

// Outcome is a finished job's summary.
type Outcome struct {
	// Converged reports the simulated workload reached its target (sim
	// jobs; always false for MLP jobs, which run a fixed epoch budget).
	Converged bool `json:"converged,omitempty"`
	// Epochs is the number of completed epochs.
	Epochs int `json:"epochs"`
	// FinalMetric is the last epoch's metric (sim jobs).
	FinalMetric float64 `json:"final_metric,omitempty"`
	// FinalAccuracy is the last epoch's accuracy (MLP jobs).
	FinalAccuracy float64 `json:"final_accuracy,omitempty"`
	// Steps is the total committed synchronized steps (MLP jobs).
	Steps int `json:"steps,omitempty"`
	// WeightsSHA256 fingerprints the trained weights' IEEE-754 bit patterns
	// (MLP jobs) — the cross-run bitwise-determinism check.
	WeightsSHA256 string `json:"weights_sha256,omitempty"`
	// TotalTime is the run's total time in the same unit as Epoch.Elapsed.
	TotalTime float64 `json:"total_time,omitempty"`
}

// Event is one job-stream element: a state transition or a completed epoch.
type Event struct {
	Job  string `json:"job"`
	Type string `json:"type"` // "state" or "epoch"
	// State accompanies type "state"; Error its failure detail.
	State State  `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Epoch accompanies type "epoch".
	Epoch *Epoch `json:"epoch,omitempty"`
	// Workers and Devices accompany type "resize": the job's new membership
	// width and device grant.
	Workers int   `json:"workers,omitempty"`
	Devices []int `json:"devices,omitempty"`
}

// Runner executes one admitted job. Run must honor ctx (a canceled context
// aborts the job), call onEpoch for every completed epoch in order from a
// single goroutine, and return the outcome or the run error. The scheduler
// guarantees at most one Run per job and never calls Run concurrently for
// the same job.
type Runner interface {
	Run(ctx context.Context, spec *runspec.Spec, onEpoch func(Epoch) error) (*Outcome, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, spec *runspec.Spec, onEpoch func(Epoch) error) (*Outcome, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, spec *runspec.Spec, onEpoch func(Epoch) error) (*Outcome, error) {
	return f(ctx, spec, onEpoch)
}

// JobStatus is a point-in-time snapshot of one job.
type JobStatus struct {
	ID string `json:"id"`
	// Spec echoes the submitted spec, field-identical to what was admitted.
	Spec  *runspec.Spec `json:"spec,omitempty"`
	State State         `json:"state"`
	// QueuePos is the 0-based position among waiting jobs (-1 once the job
	// has left the queue).
	QueuePos int `json:"queue_pos"`
	// Workers is the device count the job needs (and holds while running).
	Workers   int       `json:"workers"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// AdmissionLatency is Started - Submitted (0 while queued).
	AdmissionLatency time.Duration `json:"admission_latency_ns,omitempty"`
	// Devices are the pool device IDs granted to the job (running or done).
	Devices []int `json:"devices,omitempty"`
	// Goodput is the allocator's predicted goodput at grant time; Noise the
	// job's current smoothed GNS estimate.
	Goodput float64 `json:"goodput,omitempty"`
	Noise   float64 `json:"noise,omitempty"`
	// EpochsDone counts completed epochs; Epochs carries the full per-epoch
	// trace (Status only; List omits it).
	EpochsDone int      `json:"epochs_done"`
	Epochs     []Epoch  `json:"epochs,omitempty"`
	Outcome    *Outcome `json:"outcome,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// Stats is the scheduler's aggregate accounting.
type Stats struct {
	// Devices is the pool size; Busy how many are currently granted.
	Devices int `json:"devices"`
	Busy    int `json:"busy"`
	// Submitted..Rejected count jobs by disposition. Rejected counts
	// admission-control rejections (full queue, oversized, bad spec), which
	// never become jobs.
	Submitted int `json:"submitted"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	Rejected  int `json:"rejected"`
	// Running and Queued are the live counts; MaxQueueDepth the high-water
	// mark of the bounded queue.
	Running       int `json:"running"`
	Queued        int `json:"queued"`
	MaxQueueDepth int `json:"max_queue_depth"`
	// PlanEvents counts cluster-level re-planning rounds (arrival, finish,
	// failure, cancellation, resize, drain).
	PlanEvents int `json:"plan_events"`
	// Grown and Shrunk count committed job resizes by direction (explicit
	// Resize calls and autoscaler decisions alike).
	Grown  int `json:"grown"`
	Shrunk int `json:"shrunk"`
	// GoodputGranted accumulates the allocator's predicted goodput of every
	// grant actually made; GoodputEqualSplit accumulates, at the same
	// decision points on the same pool state, what the naive equal-split
	// baseline would have achieved. Their ratio is the allocator's edge.
	GoodputGranted    float64 `json:"goodput_granted"`
	GoodputEqualSplit float64 `json:"goodput_equal_split"`
	// AggregateGoodput is the instantaneous sum of running jobs' goodput
	// under their latest noise estimates.
	AggregateGoodput float64 `json:"aggregate_goodput"`
	// PoolNoise is the pool-level smoothed GNS estimate fed by every
	// running job's epoch reports; it prices statistical efficiency for
	// jobs that have not yet produced their own estimate.
	PoolNoise float64 `json:"pool_noise"`
	// AdmissionMean and AdmissionMax summarize queued→running latency.
	AdmissionMean time.Duration `json:"admission_mean_ns"`
	AdmissionMax  time.Duration `json:"admission_max_ns"`
	// Draining reports the scheduler is shutting down.
	Draining bool `json:"draining"`
}
