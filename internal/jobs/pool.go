package jobs

import (
	"fmt"
	"sort"

	"cannikin/internal/goodput"
	"cannikin/internal/gpu"
	"cannikin/internal/rng"
)

// referenceModel anchors relative device speed: a dedicated V100 is 1.0.
const referenceModel = "V100"

// commOverhead is the per-extra-worker synchronization cost in the
// allocator's step-time model, in reference-device batch-time units. It
// penalizes wide grants just enough that the allocator does not always
// prefer the widest job.
const commOverhead = 0.02

// Device is one accelerator slot of the shared pool.
type Device struct {
	// ID is the pool index, stable for the pool's lifetime.
	ID int
	// Model is the gpu.Catalog key.
	Model string
	// Speed is the device's relative throughput (reference model = 1.0),
	// including the pool's per-device jitter.
	Speed float64
	// Job is the ID of the job currently holding the device ("" = free).
	Job string
}

// PoolConfig sizes and seeds a device pool.
type PoolConfig struct {
	// Devices is the pool size (required, >= 1).
	Devices int
	// Models cycles across devices; empty means a mixed heterogeneous
	// default drawn from the paper's testbeds.
	Models []string
	// Seed roots every pool random stream; equal seeds give equal pools.
	Seed uint64
	// Jitter is the log-space sigma of per-device and per-job speed noise
	// (0 disables it; negative is rejected).
	Jitter float64
}

// Pool is the shared device inventory plus the goodput allocator over it.
// It is not internally synchronized: the owning Scheduler serializes all
// access under its own mutex.
type Pool struct {
	devices []*Device
	src     *rng.Source
	jitter  float64
	free    int
}

// defaultModels is the heterogeneous mix used when PoolConfig.Models is
// empty: one slow, two mid, one fast per group of four.
var defaultModels = []string{"P100", "V100", "RTX3090", "A100"}

// NewPool builds a pool of cfg.Devices devices. Device speed is the
// catalog's effective throughput relative to a V100, scaled by a
// deterministic per-device jitter drawn from Split("device/<id>") — so a
// pool is a pure function of its config, never of scheduling history.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("jobs: pool needs at least 1 device, got %d", cfg.Devices)
	}
	if cfg.Jitter < 0 {
		return nil, fmt.Errorf("jobs: negative jitter %v", cfg.Jitter)
	}
	models := cfg.Models
	if len(models) == 0 {
		models = defaultModels
	}
	ref := gpu.Catalog[referenceModel].EffTFLOPS
	p := &Pool{
		src:    rng.New(cfg.Seed).Split("pool"),
		jitter: cfg.Jitter,
		free:   cfg.Devices,
	}
	p.devices = make([]*Device, cfg.Devices)
	for i := range p.devices {
		key := models[i%len(models)]
		m, ok := gpu.Catalog[key]
		if !ok {
			return nil, fmt.Errorf("jobs: unknown device model %q", key)
		}
		speed := m.EffTFLOPS / ref
		if cfg.Jitter > 0 {
			speed *= p.src.Split(fmt.Sprintf("device/%d", i)).LogNormFactor(cfg.Jitter)
		}
		p.devices[i] = &Device{ID: i, Model: key, Speed: speed}
	}
	return p, nil
}

// Size returns the pool's device count.
func (p *Pool) Size() int { return len(p.devices) }

// FreeCount returns how many devices are currently unassigned.
func (p *Pool) FreeCount() int { return p.free }

// Devices returns a snapshot copy of every device.
func (p *Pool) Devices() []Device {
	out := make([]Device, len(p.devices))
	for i, d := range p.devices {
		out[i] = *d
	}
	return out
}

// Profile returns the job's per-device speed multipliers. It is derived
// via rng.Split from the pool seed and the job ID alone — never from the
// parent stream's position — so a job's profile is identical whether it is
// the first submission or the five-hundredth, and whatever else runs
// concurrently. This is the per-job isolation guarantee.
func (p *Pool) Profile(jobID string) []float64 {
	prof := make([]float64, len(p.devices))
	if p.jitter == 0 {
		for i := range prof {
			prof[i] = 1
		}
		return prof
	}
	jobSrc := p.src.Split("job/" + jobID)
	for i := range prof {
		prof[i] = jobSrc.Split(fmt.Sprintf("dev/%d", i)).LogNormFactor(p.jitter)
	}
	return prof
}

// acquire marks the devices as held by the job. It panics on a double
// grant — that is a scheduler bug, not a recoverable condition.
func (p *Pool) acquire(ids []int, jobID string) {
	for _, id := range ids {
		d := p.devices[id]
		if d.Job != "" {
			panic(fmt.Sprintf("jobs: device %d granted to %q while held by %q", id, jobID, d.Job))
		}
		d.Job = jobID
		p.free--
	}
}

// releaseDevices frees the listed devices, which must all be held by the
// job — anything else is a scheduler bug.
func (p *Pool) releaseDevices(ids []int, jobID string) {
	for _, id := range ids {
		d := p.devices[id]
		if d.Job != jobID {
			panic(fmt.Sprintf("jobs: device %d released by %q while held by %q", id, jobID, d.Job))
		}
		d.Job = ""
		p.free++
	}
}

// release frees every device held by the job and returns how many it held.
func (p *Pool) release(jobID string) int {
	n := 0
	for _, d := range p.devices {
		if d.Job == jobID {
			d.Job = ""
			p.free++
			n++
		}
	}
	return n
}

// freeDevices returns the unassigned devices in ID order.
func (p *Pool) freeDevices() []*Device {
	out := make([]*Device, 0, p.free)
	for _, d := range p.devices {
		if d.Job == "" {
			out = append(out, d)
		}
	}
	return out
}

// ask is one waiting job's resource request as the allocator sees it.
type ask struct {
	id      string
	index   int // submission order; lower = earlier
	workers int
	batch   int
	base    int
	noise   float64
	profile []float64
}

// grant is one allocation decision.
type grant struct {
	id      string
	devices []int
	goodput float64
}

// predictGoodput prices running the ask on exactly these devices: the
// job's global batch is split proportionally to effective speed (fast
// devices take bigger shards, so per-step times balance — the OptPerf
// intuition), the step time is the balanced compute time plus a
// per-extra-worker synchronization term, and the result is throughput
// discounted by statistical efficiency at the job's noise estimate.
func predictGoodput(devs []*Device, a ask) float64 {
	if len(devs) == 0 || a.batch <= 0 {
		return 0
	}
	sumSpeed := 0.0
	for _, d := range devs {
		sumSpeed += effSpeed(d, a)
	}
	if sumSpeed <= 0 {
		return 0
	}
	stepTime := float64(a.batch)/sumSpeed + commOverhead*float64(len(devs)-1)
	return goodput.Goodput(a.noise, a.batch, a.base, stepTime)
}

// predictEqualSplit prices the naive baseline on the same devices: equal
// shards regardless of speed, so the slowest device paces every step.
func predictEqualSplit(devs []*Device, a ask) float64 {
	if len(devs) == 0 || a.batch <= 0 {
		return 0
	}
	shard := float64(a.batch) / float64(len(devs))
	slowest := 0.0
	for _, d := range devs {
		s := effSpeed(d, a)
		if s <= 0 {
			return 0
		}
		if t := shard / s; t > slowest {
			slowest = t
		}
	}
	stepTime := slowest + commOverhead*float64(len(devs)-1)
	return goodput.Goodput(a.noise, a.batch, a.base, stepTime)
}

// effSpeed is the device speed as seen by this job (pool speed × the
// job's isolated profile multiplier).
func effSpeed(d *Device, a ask) float64 {
	s := d.Speed
	if len(a.profile) > d.ID {
		s *= a.profile[d.ID]
	}
	return s
}

// planGoodput is the marginal-goodput allocator: while free devices
// remain, it gives each waiting job its best-fitting devices (the fastest
// free ones, since the proportional split monotonically improves with
// total speed), scores each candidate grant by goodput per device —
// marginal goodput — and commits the highest scorer, earliest submission
// first on ties. Jobs that do not fit are skipped (backfill), so one wide
// job at the head cannot idle the pool.
func planGoodput(free []*Device, asks []ask) []grant {
	free = append([]*Device(nil), free...)
	pending := append([]ask(nil), asks...)
	var out []grant
	for len(pending) > 0 && len(free) > 0 {
		bestScore := -1.0
		bestIdx := -1
		var bestDevs []*Device
		var bestGp float64
		for i, a := range pending {
			if a.workers > len(free) {
				continue
			}
			devs := fastestFor(free, a)
			gp := predictGoodput(devs, a)
			score := gp / float64(a.workers)
			if score > bestScore || (score == bestScore && bestIdx >= 0 && a.index < pending[bestIdx].index) {
				bestScore, bestIdx, bestDevs, bestGp = score, i, devs, gp
			}
		}
		if bestIdx < 0 {
			break
		}
		a := pending[bestIdx]
		ids := make([]int, len(bestDevs))
		taken := make(map[int]bool, len(bestDevs))
		for i, d := range bestDevs {
			ids[i] = d.ID
			taken[d.ID] = true
		}
		sort.Ints(ids)
		out = append(out, grant{id: a.id, devices: ids, goodput: bestGp})
		pending = append(pending[:bestIdx], pending[bestIdx+1:]...)
		kept := free[:0]
		for _, d := range free {
			if !taken[d.ID] {
				kept = append(kept, d)
			}
		}
		free = kept
	}
	return out
}

// planEqualSplit is the naive baseline: strict FIFO with no backfill,
// first free devices by ID, equal shards. It stops at the first job that
// does not fit — exactly what a speed-blind queue does.
func planEqualSplit(free []*Device, asks []ask) []grant {
	free = append([]*Device(nil), free...)
	ordered := append([]ask(nil), asks...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].index < ordered[j].index })
	var out []grant
	for _, a := range ordered {
		if a.workers > len(free) {
			break
		}
		devs := free[:a.workers]
		ids := make([]int, len(devs))
		for i, d := range devs {
			ids[i] = d.ID
		}
		out = append(out, grant{id: a.id, devices: ids, goodput: predictEqualSplit(devs, a)})
		free = free[a.workers:]
	}
	return out
}

// fastestFor returns the ask's workers-many fastest free devices under the
// job's own profile, tie-broken by ID for determinism.
func fastestFor(free []*Device, a ask) []*Device {
	devs := append([]*Device(nil), free...)
	sort.Slice(devs, func(i, j int) bool {
		si, sj := effSpeed(devs[i], a), effSpeed(devs[j], a)
		if si != sj {
			return si > sj
		}
		return devs[i].ID < devs[j].ID
	})
	return devs[:a.workers]
}

// totalGoodput sums a plan's predicted goodput.
func totalGoodput(grants []grant) float64 {
	t := 0.0
	for _, g := range grants {
		t += g.goodput
	}
	return t
}
