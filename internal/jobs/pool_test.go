package jobs

import (
	"math"
	"testing"
)

func mustPool(t *testing.T, cfg PoolConfig) *Pool {
	t.Helper()
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPoolDeterministic(t *testing.T) {
	cfg := PoolConfig{Devices: 8, Seed: 42, Jitter: 0.05}
	a := mustPool(t, cfg)
	b := mustPool(t, cfg)
	for i := range a.devices {
		if a.devices[i].Speed != b.devices[i].Speed || a.devices[i].Model != b.devices[i].Model {
			t.Fatalf("device %d differs across identically-seeded pools: %+v vs %+v",
				i, a.devices[i], b.devices[i])
		}
	}
	// The default mix cycles, so the pool is genuinely heterogeneous.
	if a.devices[0].Model == a.devices[3].Model {
		t.Fatalf("default model mix not heterogeneous: %s == %s", a.devices[0].Model, a.devices[3].Model)
	}
}

func TestNewPoolRejectsBadConfig(t *testing.T) {
	if _, err := NewPool(PoolConfig{Devices: 0}); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewPool(PoolConfig{Devices: 2, Jitter: -0.1}); err == nil {
		t.Fatal("negative jitter accepted")
	}
	if _, err := NewPool(PoolConfig{Devices: 2, Models: []string{"NoSuchGPU"}}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestProfileIsolation is the per-job isolation guarantee: a job's device
// profile depends only on (pool seed, job ID), never on what was drawn
// before it or what else is running.
func TestProfileIsolation(t *testing.T) {
	cfg := PoolConfig{Devices: 6, Seed: 7, Jitter: 0.1}
	a := mustPool(t, cfg)
	b := mustPool(t, cfg)
	// Pool a draws many unrelated profiles first; pool b asks directly.
	for i := 0; i < 50; i++ {
		a.Profile("job-" + string(rune('a'+i%26)))
	}
	pa := a.Profile("job-5")
	pb := b.Profile("job-5")
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("job-5 profile[%d] depends on draw history: %v vs %v", i, pa[i], pb[i])
		}
	}
	// Distinct jobs get distinct profiles.
	other := a.Profile("job-6")
	same := true
	for i := range pa {
		if pa[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("job-5 and job-6 drew identical profiles")
	}
}

func TestAcquireRelease(t *testing.T) {
	p := mustPool(t, PoolConfig{Devices: 4, Seed: 1})
	p.acquire([]int{0, 2}, "j1")
	if p.FreeCount() != 2 {
		t.Fatalf("free = %d after acquiring 2 of 4", p.FreeCount())
	}
	free := p.freeDevices()
	if len(free) != 2 || free[0].ID != 1 || free[1].ID != 3 {
		t.Fatalf("free devices = %v", free)
	}
	if n := p.release("j1"); n != 2 {
		t.Fatalf("released %d devices, want 2", n)
	}
	if p.FreeCount() != 4 {
		t.Fatalf("free = %d after release", p.FreeCount())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double grant did not panic")
		}
	}()
	p.acquire([]int{1}, "j2")
	p.acquire([]int{1}, "j3")
}

// heterogeneousFree builds a free list with a wide speed spread.
func heterogeneousFree() []*Device {
	return []*Device{
		{ID: 0, Model: "P100", Speed: 0.6},
		{ID: 1, Model: "V100", Speed: 1.0},
		{ID: 2, Model: "RTX3090", Speed: 1.1},
		{ID: 3, Model: "A100", Speed: 2.5},
		{ID: 4, Model: "H100", Speed: 6.5},
		{ID: 5, Model: "P100", Speed: 0.6},
	}
}

func testAsks() []ask {
	return []ask{
		{id: "j0", index: 0, workers: 2, batch: 64, base: 32, noise: 256},
		{id: "j1", index: 1, workers: 2, batch: 64, base: 32, noise: 256},
		{id: "j2", index: 2, workers: 2, batch: 64, base: 32, noise: 256},
	}
}

// TestGoodputPlanBeatsEqualSplit: on a heterogeneous pool the marginal-
// goodput plan extracts strictly more aggregate goodput than the
// speed-blind FIFO baseline, and both plans grant disjoint device sets.
func TestGoodputPlanBeatsEqualSplit(t *testing.T) {
	free := heterogeneousFree()
	asks := testAsks()
	gp := planGoodput(free, asks)
	eq := planEqualSplit(free, asks)
	if len(gp) != 3 || len(eq) != 3 {
		t.Fatalf("grants: goodput %d, equal %d, want 3 each", len(gp), len(eq))
	}
	seen := map[int]bool{}
	for _, g := range gp {
		for _, d := range g.devices {
			if seen[d] {
				t.Fatalf("device %d granted twice", d)
			}
			seen[d] = true
		}
	}
	tg, te := totalGoodput(gp), totalGoodput(eq)
	if tg <= te {
		t.Fatalf("goodput plan %.4f not better than equal-split %.4f", tg, te)
	}
	// Sanity on the per-grant model: proportional split on the same devices
	// never loses to equal shards.
	a := testAsks()[0]
	devs := free[:3]
	if predictGoodput(devs, a) < predictEqualSplit(devs, a) {
		t.Fatal("proportional split worse than equal shards on identical devices")
	}
}

// TestGoodputPlanBackfills: a head-of-queue job too wide for the free set
// must not idle the pool — narrower jobs behind it are granted.
func TestGoodputPlanBackfills(t *testing.T) {
	free := heterogeneousFree()[:3]
	asks := []ask{
		{id: "wide", index: 0, workers: 5, batch: 160, base: 32, noise: 256},
		{id: "narrow", index: 1, workers: 2, batch: 64, base: 32, noise: 256},
	}
	gp := planGoodput(free, asks)
	if len(gp) != 1 || gp[0].id != "narrow" {
		t.Fatalf("backfill failed: grants = %+v", gp)
	}
	// The equal-split baseline head-of-line blocks by construction.
	if eq := planEqualSplit(free, asks); len(eq) != 0 {
		t.Fatalf("equal-split baseline should HOL-block, granted %+v", eq)
	}
}

// TestGoodputPlanPrefersFastDevices: a single grant takes the fastest
// free devices, not the lowest IDs.
func TestGoodputPlanPrefersFastDevices(t *testing.T) {
	free := heterogeneousFree()
	gp := planGoodput(free, []ask{{id: "j", index: 0, workers: 2, batch: 64, base: 32, noise: 256}})
	if len(gp) != 1 {
		t.Fatalf("grants = %+v", gp)
	}
	want := map[int]bool{3: true, 4: true} // A100 + H100
	for _, d := range gp[0].devices {
		if !want[d] {
			t.Fatalf("grant took device %d, want the two fastest (3, 4); got %v", d, gp[0].devices)
		}
	}
}

// TestProfileAffectsPlan: the per-job speed multipliers flow into pricing.
func TestProfileAffectsPlan(t *testing.T) {
	devs := []*Device{{ID: 0, Speed: 1}, {ID: 1, Speed: 1}}
	a := ask{id: "j", workers: 2, batch: 64, base: 32, noise: 256,
		profile: []float64{2, 2}}
	fast := predictGoodput(devs, a)
	a.profile = []float64{1, 1}
	slow := predictGoodput(devs, a)
	if fast <= slow {
		t.Fatalf("doubling the job profile did not raise goodput: %v vs %v", fast, slow)
	}
}

func TestPredictGoodputDegenerate(t *testing.T) {
	if g := predictGoodput(nil, ask{batch: 32, base: 32}); g != 0 {
		t.Fatalf("no devices should price 0, got %v", g)
	}
	if g := predictGoodput([]*Device{{ID: 0, Speed: 1}}, ask{batch: 0, base: 32}); g != 0 {
		t.Fatalf("zero batch should price 0, got %v", g)
	}
	one := predictGoodput([]*Device{{ID: 0, Speed: 1}}, ask{batch: 32, base: 32, noise: 100})
	if math.IsNaN(one) || one <= 0 {
		t.Fatalf("single-device price = %v", one)
	}
}
