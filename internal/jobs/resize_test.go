package jobs

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"cannikin/internal/runspec"
)

// epochsThenGate is a Runner that reports its epochs immediately and then
// blocks until the gate closes, keeping the job running (and resizable)
// for as long as the test needs.
func epochsThenGate(epochs int, noise float64, gate chan struct{}) Runner {
	return RunnerFunc(func(ctx context.Context, spec *runspec.Spec, onEpoch func(Epoch) error) (*Outcome, error) {
		for e := 0; e < epochs; e++ {
			if err := onEpoch(Epoch{Epoch: e, Batch: 32, Noise: noise}); err != nil {
				return nil, err
			}
		}
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, fmt.Errorf("gated: %w", ctx.Err())
		}
		return &Outcome{Epochs: epochs}, nil
	})
}

// waitEpochs polls until the job has reported n epochs.
func waitEpochs(t *testing.T, s *Scheduler, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.EpochsDone >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reported %d epochs", id, n)
}

// resizeScenario runs one seeded grow-then-shrink sequence and returns the
// observed resize events, the final device grant, and the stats — the
// deterministic replay fixture.
func resizeScenario(t *testing.T, seed uint64) (events []Event, devices []int, stats Stats) {
	t.Helper()
	gate := make(chan struct{})
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 6, Seed: seed, Jitter: 0.2},
		Runner: epochsThenGate(1, 128, gate),
	})
	id, err := s.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitEpochs(t, s, id, 1)
	ch, err := s.Watch(id)
	if err != nil {
		t.Fatal(err)
	}

	before := s.Stats()
	if err := s.Resize(id, 4); err != nil {
		t.Fatal(err)
	}
	afterGrow := s.Stats()
	if afterGrow.Grown != 1 || afterGrow.Shrunk != 0 {
		t.Fatalf("after grow: %+v", afterGrow)
	}
	// The counterfactual invariant across the resize: the goodput
	// allocator's grant (fastest devices, proportional shards) must price
	// at least as high as the speed-blind baseline (first devices by ID,
	// equal shards) priced at the same instant.
	dg := afterGrow.GoodputGranted - before.GoodputGranted
	de := afterGrow.GoodputEqualSplit - before.GoodputEqualSplit
	if dg <= 0 || de <= 0 || dg < de {
		t.Fatalf("grow accounting: granted %+v < equal-split %+v", dg, de)
	}

	if err := s.Resize(id, 3); err != nil {
		t.Fatal(err)
	}
	afterShrink := s.Stats()
	if afterShrink.Shrunk != 1 {
		t.Fatalf("after shrink: %+v", afterShrink)
	}
	dg = afterShrink.GoodputGranted - afterGrow.GoodputGranted
	de = afterShrink.GoodputEqualSplit - afterGrow.GoodputEqualSplit
	if dg <= 0 || de <= 0 || dg < de {
		t.Fatalf("shrink accounting: granted %+v < equal-split %+v", dg, de)
	}

	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 || len(st.Devices) != 3 {
		t.Fatalf("status after resizes: %+v", st)
	}
	close(gate)
	waitTerminal(t, s, id)
	for ev := range ch {
		if ev.Type == "resize" {
			events = append(events, ev)
		}
	}
	return events, st.Devices, s.Stats()
}

// TestResizeEventsAndReplay checks that Watch streams both resize
// transitions with the new membership, Stats counts them, and — run twice
// with the same seed — the whole sequence of grants and goodput accounting
// replays identically.
func TestResizeEventsAndReplay(t *testing.T) {
	ev1, dev1, st1 := resizeScenario(t, 42)
	if len(ev1) != 2 {
		t.Fatalf("resize events = %+v, want grow then shrink", ev1)
	}
	if ev1[0].Workers != 4 || len(ev1[0].Devices) != 4 {
		t.Fatalf("grow event %+v", ev1[0])
	}
	if ev1[1].Workers != 3 || len(ev1[1].Devices) != 3 {
		t.Fatalf("shrink event %+v", ev1[1])
	}
	if !reflect.DeepEqual(ev1[1].Devices, dev1) {
		t.Fatalf("shrink event devices %v != final grant %v", ev1[1].Devices, dev1)
	}

	ev2, dev2, st2 := resizeScenario(t, 42)
	if !reflect.DeepEqual(ev1, ev2) || !reflect.DeepEqual(dev1, dev2) {
		t.Fatalf("seeded replay diverged: %+v / %v vs %+v / %v", ev1, dev1, ev2, dev2)
	}
	if st1.GoodputGranted != st2.GoodputGranted || st1.GoodputEqualSplit != st2.GoodputEqualSplit {
		t.Fatalf("seeded replay accounting diverged: %+v vs %+v", st1, st2)
	}
}

// TestResizeErrors pins the failure modes: unknown job, not-running job,
// zero width, and growth past the free pool.
func TestResizeErrors(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 4, Seed: 1},
		Runner: epochsThenGate(1, 0, gate),
	})
	if err := s.Resize("nope", 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job: %v", err)
	}
	id, err := s.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitEpochs(t, s, id, 1)
	if err := s.Resize(id, 0); err == nil {
		t.Fatal("zero-width resize accepted")
	}
	if err := s.Resize(id, 5); err == nil {
		t.Fatal("resize past the pool accepted")
	}
	if err := s.Resize(id, 2); err != nil {
		t.Fatalf("no-op resize: %v", err)
	}
	if st := s.Stats(); st.Grown != 0 || st.Shrunk != 0 {
		t.Fatalf("no-op resize counted: %+v", st)
	}
	// A second job consumes the remaining devices; it stays queued only if
	// the pool is exhausted, so instead check a queued job rejects resize.
	gate2 := make(chan struct{})
	defer close(gate2)
	s2 := newScheduler(t, Config{
		Pool:   PoolConfig{Devices: 2, Seed: 1},
		Runner: epochsThenGate(1, 0, gate2),
	})
	a, err := s2.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitEpochs(t, s2, a, 1)
	b, err := s2.Submit(mlpSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Resize(b, 1); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("queued-job resize: %v", err)
	}
}

// TestAutoscaleJobsImprovesGoodput is the scheduler-level autoscaler demo:
// on the identical seeded pool with the identical job, the autoscaled
// scheduler grows the job 2 → 4 devices and its priced goodput (and the
// pool's aggregate goodput while running) strictly exceeds the
// frozen-membership scheduler's.
func TestAutoscaleJobsImprovesGoodput(t *testing.T) {
	run := func(autoscale *AutoscalePolicy) (running Stats, final *JobStatus) {
		gate := make(chan struct{})
		s := newScheduler(t, Config{
			Pool:      PoolConfig{Devices: 6, Seed: 7, Jitter: 0.2},
			Runner:    epochsThenGate(4, 128, gate),
			Autoscale: autoscale,
		})
		id, err := s.Submit(mlpSpec(2))
		if err != nil {
			t.Fatal(err)
		}
		waitEpochs(t, s, id, 4)
		running = s.Stats()
		close(gate)
		final = waitTerminal(t, s, id)
		return running, final
	}
	grownStats, grown := run(&AutoscalePolicy{GrowThreshold: 0.01, MaxWorkers: 4})
	frozenStats, frozen := run(nil)

	if grown.Workers != 4 || len(grown.Devices) != 4 {
		t.Fatalf("autoscaled job did not reach 4 devices: %+v", grown)
	}
	if frozen.Workers != 2 {
		t.Fatalf("frozen job grew: %+v", frozen)
	}
	if grownStats.Grown != 2 {
		t.Fatalf("autoscaled stats %+v, want 2 grow transitions", grownStats)
	}
	if frozenStats.Grown != 0 || frozenStats.Shrunk != 0 {
		t.Fatalf("frozen scheduler resized: %+v", frozenStats)
	}
	if grown.Goodput <= frozen.Goodput {
		t.Fatalf("autoscaled goodput %v <= frozen %v", grown.Goodput, frozen.Goodput)
	}
	if grownStats.AggregateGoodput <= frozenStats.AggregateGoodput {
		t.Fatalf("autoscaled aggregate goodput %v <= frozen %v",
			grownStats.AggregateGoodput, frozenStats.AggregateGoodput)
	}
}

// TestAutoscaleJobsNeverStarvesQueue: a waiting job blocks autoscale
// growth — free devices go to the queue, not to incumbent expansion.
func TestAutoscaleJobsNeverStarvesQueue(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	// Epochs are released one at a time so the queue state at each
	// autoscale evaluation is under test control.
	step := make(chan struct{}, 3)
	paced := RunnerFunc(func(ctx context.Context, spec *runspec.Spec, onEpoch func(Epoch) error) (*Outcome, error) {
		for e := 0; e < 3; e++ {
			select {
			case <-step:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if err := onEpoch(Epoch{Epoch: e, Batch: 32, Noise: 128}); err != nil {
				return nil, err
			}
		}
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &Outcome{Epochs: 3}, nil
	})
	s := newScheduler(t, Config{
		Pool:      PoolConfig{Devices: 4, Seed: 3, Jitter: 0.2},
		Runner:    paced,
		Autoscale: &AutoscalePolicy{GrowThreshold: 0.01, MaxWorkers: 4},
	})
	a, err := s.Submit(mlpSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	// The waiting 3-wide job does not fit in the 1 free device; the
	// incumbent must still not absorb it while the queue is non-empty.
	b, err := s.Submit(mlpSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	step <- struct{}{}
	step <- struct{}{}
	step <- struct{}{}
	waitEpochs(t, s, a, 3)
	st, err := s.Status(a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 {
		t.Fatalf("incumbent grew to %d with a queued job", st.Workers)
	}
	if qb, err := s.Status(b); err != nil || qb.State != StateQueued {
		t.Fatalf("job b: %+v, %v", qb, err)
	}
	if got := s.Stats().Grown; got != 0 {
		t.Fatalf("grown = %d with a queued job", got)
	}
}
