package runtime

import (
	"errors"
	"testing"
	"time"

	"cannikin/internal/data"
	"cannikin/internal/faultinject"
	"cannikin/internal/rng"
)

// FuzzRingFaults throws randomly generated — but fully seeded — fault
// schedules at small live runs and checks the fault-tolerance state
// machine's total contract: the run never deadlocks, and it ends in one
// of exactly three ways: (1) weights bitwise-identical to the fault-free
// run (every fault absorbed), (2) a clean eviction report and a completed
// run on the survivors, or (3) ErrNoSurvivors. Anything else — a hang, a
// replica divergence, a malformed report — is a bug.
func FuzzRingFaults(f *testing.F) {
	f.Add(uint64(1), uint8(30), false)
	f.Add(uint64(2), uint8(80), true)
	f.Add(uint64(3), uint8(100), true)
	f.Add(uint64(7), uint8(55), false)
	f.Fuzz(func(t *testing.T, seed uint64, intensityPct uint8, kill bool) {
		defer watchdog(t, 2*time.Minute)()
		intensity := float64(intensityPct%100+1) / 100
		src := rng.New(seed)
		ds, err := data.SyntheticBlobs(96, 8, 4, 0.6, src)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Backend:      BackendLive,
			LocalBatches: []int{4, 4, 4},
			Sizes:        []int{8, 16, 4},
			Epochs:       2,
			LearningRate: 0.05,
			Momentum:     0.9,
			BucketBytes:  64 * 8,
			Dataset:      ds,
			Src:          src,
		}
		schedule, err := faultinject.Generate(faultinject.Profile{
			Intensity: intensity,
			Horizon:   12,
			Kill:      kill,
			MaxDelay:  4 * time.Millisecond,
		}, len(cfg.LocalBatches), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		faultCfg := cfg
		faultCfg.Fault = &FaultConfig{
			Schedule:    schedule,
			HopTimeout:  20 * time.Millisecond,
			Retries:     3,
			MaxTimeout:  160 * time.Millisecond,
			StepTimeout: 1200 * time.Millisecond,
		}
		res, err := Train(faultCfg)
		if errors.Is(err, ErrNoSurvivors) {
			return // outcome (3): legitimate total loss
		}
		if err != nil {
			t.Fatalf("schedule %v: %v", schedule, err)
		}
		if res.FinalWeights == nil || len(res.EpochLoss) != cfg.Epochs {
			t.Fatalf("schedule %v: incomplete run: %d epochs, weights %v",
				schedule, len(res.EpochLoss), res.FinalWeights != nil)
		}
		if len(res.Evictions) == 0 {
			// Outcome (1): all faults absorbed — the trajectory must be
			// bitwise-identical to the undisturbed run.
			base, err := Train(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !equalWeights(base.FinalWeights, res.FinalWeights) {
				t.Fatalf("schedule %v: absorbed faults changed the weights", schedule)
			}
			return
		}
		// Outcome (2): eviction reports must be internally consistent —
		// evicted + survivors partition the previous incarnation, the
		// checkpoint is full-dimension, and the batch plan covers survivors.
		alive := len(cfg.LocalBatches)
		for i, ev := range res.Evictions {
			if len(ev.Workers) == 0 {
				t.Fatalf("eviction %d evicted nobody: %+v", i, ev)
			}
			if len(ev.Workers)+len(ev.Survivors) != alive {
				t.Fatalf("eviction %d: %d evicted + %d survivors != %d alive",
					i, len(ev.Workers), len(ev.Survivors), alive)
			}
			if len(ev.SurvivorBatches) != len(ev.Survivors) {
				t.Fatalf("eviction %d: batches %v vs survivors %v", i, ev.SurvivorBatches, ev.Survivors)
			}
			if len(ev.Checkpoint) == 0 || ev.Reason == "" {
				t.Fatalf("eviction %d incomplete: %+v", i, ev)
			}
			alive = len(ev.Survivors)
		}
		if alive < 1 {
			t.Fatal("run completed with zero survivors")
		}
	})
}
