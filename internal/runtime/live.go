package runtime

import (
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"time"

	"cannikin/internal/allreduce"
	"cannikin/internal/faultinject"
	"cannikin/internal/gns"
	"cannikin/internal/nn"
	"cannikin/internal/tensor"
)

// ringDepth is the per-link channel buffer of the live ring: deep enough
// that a fast rank can run a few bucket reductions ahead of a straggling
// neighbor without blocking its backprop.
const ringDepth = 8

// resolveCommMode decides whether this incarnation's live workers run the
// merged single-goroutine loop (true) or the overlapped compute+comm pair
// (false). CommAuto merges when the workers alone already cover the host's
// usable parallelism — min(GOMAXPROCS, NumCPU), so an oversubscribed
// GOMAXPROCS doesn't fake capacity — because then the extra comm goroutines
// buy no overlap, only scheduler churn. Fault-tolerant runs always run the
// pair: the guarded step's fail-fast skip of remaining buckets lives in the
// comm goroutine (validate rejects an explicit merged+Fault combination).
func resolveCommMode(mode string, nWorkers int, ft *faultTolerance) bool {
	if ft != nil {
		return false
	}
	switch mode {
	case CommMerged:
		return true
	case CommOverlap:
		return false
	default: // "" or CommAuto
		usable := stdruntime.GOMAXPROCS(0)
		if ncpu := stdruntime.NumCPU(); ncpu < usable {
			usable = ncpu
		}
		return nWorkers >= usable
	}
}

// liveExec runs every worker as its own pair of goroutines — one compute,
// one communication — connected by a persistent ring. The compute
// goroutine enqueues each gradient bucket the moment backprop has
// finalized it (internal/nn's layerwise frontier), so reductions of
// already-finished buckets proceed while earlier layers are still
// backpropagating: real compute/communication overlap, measured with
// wall-clock timers rather than simulated.
//
// With fault tolerance armed (ft != nil) the engine runs every ring hop
// under a per-hop deadline with bounded retry, consults the deterministic
// fault injector at step start and first send, and turns the optimizer
// update into a driver-coordinated commit: no replica applies a step until
// every replica has finished the step's communication, so a failed step
// never leaves the replicas divergent.
type liveExec struct {
	workers []*liveWorker
	prof    *Profile
	ft      *faultTolerance
	// closing, when closed, wakes workers parked in injected stalls or
	// kills so teardown never waits on a simulated-dead goroutine.
	closing chan struct{}
	wg      sync.WaitGroup
	// sampleBatches and sampleNorms back the gns.Sample returned by step,
	// reused across steps so the steady-state step path does not allocate.
	sampleBatches []int
	sampleNorms   []float64
	// stepResults, stepResponded, and collectTimer are stepGuarded's
	// reusable per-step state (guarded runs only): the guarded path must be
	// as allocation-free per step as the plain one, or long fault-tolerant
	// runs accumulate GC pressure the AllocsPerRun tests never saw.
	stepResults   []stepResult
	stepResponded []bool
	collectTimer  *time.Timer
}

// stepTask is one worker's share of a synchronized step.
type stepTask struct {
	epoch, step int
	x           *tensor.T
	labels      []int
	weight      float64 // the Eq. 9 ratio r_i for this step
	lr          float64
}

// stepResult reports one worker's completed share.
type stepResult struct {
	batch    int
	localSq  float64 // |g_i|² of the raw local gradient
	globalSq float64 // |g|² of the reduced weighted gradient
	sample   Sample
	// err is the hop failure that aborted the step's communication;
	// suspect the neighbor rank the failed hop depends on (-1 none).
	err     error
	suspect int
	// aborted marks a result produced by teardown waking a parked worker.
	aborted bool
	// faults are the injected faults this worker consumed at this step.
	faults faultinject.StepFaults
}

// commStats aggregates one step's communication timing inside the comm
// goroutine.
type commStats struct {
	busy     time.Duration // total time inside ring.Reduce
	tu       time.Duration // the final bucket's reduce duration
	lastDone time.Time     // when the final bucket's reduce returned
	err      error         // sticky first hop failure (guarded mode)
	suspect  int           // neighbor suspected by the failed hop
}

type liveWorker struct {
	rank      int
	net       *nn.Network
	opt       *nn.SGD
	dim       int
	bucketLen int
	buckets   int
	// algs is the driver-resolved per-bucket collective schedule; every
	// rank (and the sim backend) holds the identical slice, so all ranks of
	// one bucket's reduce agree on the algorithm by construction.
	algs    []allreduce.Algorithm
	ring    *allreduce.Ring
	ft      *faultTolerance
	closing chan struct{}
	// merged runs the worker as a single event-driven goroutine: each
	// bucket is reduced inline at the backprop frontier instead of being
	// handed to a comm goroutine (commQ/commDone stay nil). Chosen when
	// workers alone saturate the host, where the dedicated comm goroutine
	// can't overlap anything and its channel handoffs plus scheduler
	// wakeups are pure overhead. Arithmetic is unchanged: the same buckets
	// go through the same ring in the same order, so weights stay
	// bitwise-identical to the overlapped mode.
	merged bool

	// commBuf carries the weight-scaled local gradient into the ring and
	// the reduced global gradient back out. The compute goroutine writes
	// a region and only then enqueues the buckets it completes, so the
	// two goroutines never touch a region concurrently.
	commBuf []float64
	// params and paramOffs map flat-vector regions back to parameters.
	params    []*nn.Param
	paramOffs []int
	// dlogits is the reusable loss-gradient workspace.
	dlogits *tensor.T
	// curFaults is written by the compute goroutine before it enqueues any
	// bucket of the step and read by the comm goroutine after the first
	// bucket arrives; the channel send orders the accesses.
	curFaults faultinject.StepFaults

	tasks    chan stepTask
	results  chan stepResult
	commQ    chan int // bucket indices; -1 ends the step
	commDone chan commStats
	// commitQ and ackQ coordinate the two-phase step commit in guarded
	// mode: the driver votes commit/abort after collecting every worker's
	// communication outcome, and the worker acknowledges with the measured
	// optimizer-apply time.
	commitQ chan bool
	ackQ    chan time.Duration
}

func newLiveExec(replicas []*nn.Network, opts []*nn.SGD, bucketLen int, algs []allreduce.Algorithm, ft *faultTolerance, merged bool) *liveExec {
	n := len(replicas)
	ring, err := allreduce.NewRing(n, ringDepth)
	if err != nil {
		panic(err) // unreachable: n >= 1 is validated by the driver
	}
	dim := replicas[0].NumParams()
	buckets := (dim + bucketLen - 1) / bucketLen
	if buckets < 1 {
		buckets = 1
	}
	e := &liveExec{
		workers:       make([]*liveWorker, n),
		prof:          &Profile{Workers: n, BucketLen: bucketLen, Dim: dim},
		ft:            ft,
		closing:       make(chan struct{}),
		sampleBatches: make([]int, n),
		sampleNorms:   make([]float64, n),
	}
	if ft != nil {
		e.stepResults = make([]stepResult, n)
		e.stepResponded = make([]bool, n)
	}
	for i := range e.workers {
		params := replicas[i].Params()
		offs := make([]int, len(params))
		off := 0
		for j, p := range params {
			offs[j] = off
			off += p.Size()
		}
		w := &liveWorker{
			rank:      i,
			net:       replicas[i],
			opt:       opts[i],
			dim:       dim,
			bucketLen: bucketLen,
			buckets:   buckets,
			algs:      algs,
			ring:      ring,
			ft:        ft,
			closing:   e.closing,
			merged:    merged,
			commBuf:   make([]float64, dim),
			params:    params,
			paramOffs: offs,
			tasks:     make(chan stepTask),
			results:   make(chan stepResult, 1),
			commitQ:   make(chan bool, 1),
			ackQ:      make(chan time.Duration, 1),
		}
		e.workers[i] = w
		if merged {
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				w.computeLoop()
			}()
			continue
		}
		w.commQ = make(chan int, buckets+1)
		w.commDone = make(chan commStats, 1)
		e.wg.Add(2)
		go func() {
			defer e.wg.Done()
			w.commLoop()
		}()
		go func() {
			defer e.wg.Done()
			defer close(w.commQ)
			w.computeLoop()
		}()
	}
	return e
}

func (e *liveExec) step(epoch, step int, xs []*tensor.T, labels [][]int, stepWeights []float64, lr float64) (gns.Sample, error) {
	n := len(e.workers)
	for i, w := range e.workers {
		w.tasks <- stepTask{epoch: epoch, step: step, x: xs[i], labels: labels[i], weight: stepWeights[i], lr: lr}
	}
	// The sample aliases exec-owned buffers valid until the next step call.
	sample := gns.Sample{
		Batches:      e.sampleBatches[:n],
		LocalSqNorms: e.sampleNorms[:n],
	}
	// Collect in rank order: a BSP barrier, and a deterministic profile.
	for i, w := range e.workers {
		r := <-w.results
		sample.Batches[i] = r.batch
		sample.LocalSqNorms[i] = r.localSq
		if i == 0 {
			sample.GlobalSqNorm = r.globalSq
		}
		e.prof.Samples = append(e.prof.Samples, r.sample)
	}
	return sample, nil
}

// stepGuarded runs one synchronized step under fault tolerance: workers
// compute and communicate under per-hop deadlines, the driver collects
// every outcome within the step deadline, and the optimizer update is
// committed only if every worker finished cleanly. On failure it reports
// which workers went silent and whom the failed hops suspect; no replica
// has applied the step, so the replicas remain bitwise-consistent at the
// last committed step.
func (e *liveExec) stepGuarded(epoch, step int, xs []*tensor.T, labels [][]int, stepWeights []float64, lr float64) (gns.Sample, []FaultRecord, *stepFailure, error) {
	n := len(e.workers)
	for i, w := range e.workers {
		w.tasks <- stepTask{epoch: epoch, step: step, x: xs[i], labels: labels[i], weight: stepWeights[i], lr: lr}
	}
	deadline := time.Now().Add(e.ft.stepTimeout)
	results := e.stepResults
	responded := e.stepResponded
	for i := range responded {
		results[i] = stepResult{}
		responded[i] = false
	}
	for i, w := range e.workers {
		// One reusable timer across workers and steps (Go 1.23+ Reset
		// semantics): per-step timer churn was the guarded path's dominant
		// steady-state allocation.
		if e.collectTimer == nil {
			e.collectTimer = time.NewTimer(time.Until(deadline))
		} else {
			e.collectTimer.Reset(time.Until(deadline))
		}
		select {
		case r := <-w.results:
			results[i] = r
			responded[i] = true
		case <-e.collectTimer.C:
			// The deadline may have lapsed while earlier ranks were being
			// collected; a result already buffered means this worker did
			// respond in time.
			select {
			case r := <-w.results:
				results[i] = r
				responded[i] = true
			default:
			}
		}
		e.collectTimer.Stop()
	}

	ok := true
	var fail *stepFailure
	for i := range e.workers {
		if !responded[i] || results[i].aborted || results[i].err != nil {
			ok = false
		}
	}
	// Vote: every responsive worker applies the step iff all workers
	// finished the step's communication.
	for i, w := range e.workers {
		if responded[i] && !results[i].aborted {
			w.commitQ <- ok
		}
	}
	for i, w := range e.workers {
		if responded[i] && !results[i].aborted {
			results[i].sample.Post = (<-w.ackQ).Seconds()
		}
	}

	var records []FaultRecord
	for i := range e.workers {
		f := results[i].faults
		if responded[i] && f.Any() {
			records = append(records, FaultRecord{
				Step: step, Worker: i,
				Stall: f.Stall, SendDelay: f.SendDelay, SendDrops: f.SendDrops, Killed: f.Kill,
			})
		}
	}
	// A silent worker consumed its faults but could not report them; its
	// schedule entry still explains the silence.
	for i := range e.workers {
		if !responded[i] {
			if f := e.ft.inj.At(i, step); f.Any() {
				records = append(records, FaultRecord{
					Step: step, Worker: i,
					Stall: f.Stall, SendDelay: f.SendDelay, SendDrops: f.SendDrops, Killed: f.Kill,
				})
			}
		}
	}

	if !ok {
		fail = &stepFailure{blame: make([]int, n)}
		for i := range e.workers {
			if !responded[i] || results[i].aborted {
				fail.dead = append(fail.dead, i)
				continue
			}
			if results[i].err != nil {
				if fail.firstErr == nil {
					fail.firstErr = results[i].err
				}
				if s := results[i].suspect; s >= 0 && s < n {
					fail.blame[s]++
				}
			}
		}
		return gns.Sample{}, records, fail, nil
	}

	sample := gns.Sample{
		Batches:      e.sampleBatches[:n],
		LocalSqNorms: e.sampleNorms[:n],
	}
	for i := range e.workers {
		r := results[i]
		sample.Batches[i] = r.batch
		sample.LocalSqNorms[i] = r.localSq
		if i == 0 {
			sample.GlobalSqNorm = r.globalSq
		}
		e.prof.Samples = append(e.prof.Samples, r.sample)
	}
	return sample, records, nil, nil
}

func (e *liveExec) network() *nn.Network { return e.workers[0].net }

func (e *liveExec) finalWeights() ([]float64, error) {
	ref := e.workers[0].net.FlatWeights()
	for i := 1; i < len(e.workers); i++ {
		if d := maxAbsDiff(ref, e.workers[i].net.FlatWeights()); d > 1e-9 {
			return nil, fmt.Errorf("runtime: replica %d diverged by %g", i, d)
		}
	}
	return ref, nil
}

// weights returns rank i's flat weight vector (used for survivor
// checkpointing after a failed step).
func (e *liveExec) weights(i int) []float64 { return e.workers[i].net.FlatWeights() }

func (e *liveExec) profile() *Profile { return e.prof }

func (e *liveExec) close() {
	close(e.closing)
	for _, w := range e.workers {
		close(w.tasks)
	}
	e.wg.Wait()
}

func (w *liveWorker) computeLoop() {
	for t := range w.tasks {
		if w.ft == nil {
			w.results <- w.runStep(t)
			continue
		}
		r := w.runStepGuarded(t)
		w.results <- r
		if r.aborted {
			continue
		}
		// Two-phase commit: apply the optimizer step only on a unanimous
		// driver vote, so a failed step never diverges the replicas.
		select {
		case commit := <-w.commitQ:
			start := time.Now()
			if commit && r.err == nil {
				w.applyStep(t.lr)
			}
			w.ackQ <- time.Since(start)
		case <-w.closing:
		}
	}
}

// runStep executes one training step with overlapped communication and
// returns the result together with its wall-clock phase sample.
func (w *liveWorker) runStep(t stepTask) stepResult {
	start := time.Now()
	w.net.ZeroGrad()
	logits := w.net.Forward(t.x)
	w.dlogits = tensor.Reuse(w.dlogits, logits.Rows(), logits.Cols())
	nn.SoftmaxCrossEntropyInto(w.dlogits, logits, t.labels)
	preEnd := time.Now()

	// Backprop with streaming bucket launch: the frontier walks down as
	// layers finish; completed regions are scaled by r_i into commBuf and
	// every fully-final bucket is handed to the comm goroutine (or, in
	// merged mode, reduced inline right here). Buckets go out
	// high-index-first because gradients finalize in reverse layer order —
	// every rank launches the identical sequence, which keeps the FIFO ring
	// links aligned.
	var cs commStats
	nextBucket := w.buckets - 1
	prevFr := w.dim
	var syncStart time.Time
	w.net.BackwardLayerwise(w.dlogits, func(fr int) {
		if fr == prevFr {
			return
		}
		w.stageGrads(fr, prevFr, t.weight)
		for nextBucket >= 0 && nextBucket*w.bucketLen >= fr {
			if syncStart.IsZero() {
				syncStart = time.Now()
			}
			if w.merged {
				w.reduceBucket(nextBucket, &cs)
			} else {
				w.commQ <- nextBucket
			}
			nextBucket--
		}
		prevFr = fr
	})
	backEnd := time.Now()

	// |g_i|² over the raw (unscaled) gradients in flat order — identical
	// association order to the sequential reference — while the ring is
	// still draining (overlapped mode; in merged mode it is already done).
	localSq := 0.0
	for _, p := range w.params {
		for _, g := range p.Grad.Data() {
			localSq += g * g
		}
	}
	if !w.merged {
		w.commQ <- -1
		cs = <-w.commDone
	}

	// |g|² of the reduced gradient: the driver only consumes rank 0's
	// value (the all-gather makes every rank's commBuf identical), so the
	// other ranks skip the pass entirely.
	var globalSq float64
	if w.rank == 0 {
		globalSq = sqNorm(w.commBuf)
	}
	postStart := time.Now()
	w.net.SetFlatGrads(w.commBuf)
	w.opt.Step(w.params, t.lr)
	end := time.Now()

	return stepResult{
		batch:    t.x.Rows(),
		localSq:  localSq,
		globalSq: globalSq,
		suspect:  -1,
		sample: Sample{
			Epoch:          t.epoch,
			Step:           t.step,
			Worker:         w.rank,
			Batch:          t.x.Rows(),
			Buckets:        w.buckets,
			Pre:            preEnd.Sub(start).Seconds(),
			Backprop:       backEnd.Sub(preEnd).Seconds(),
			Post:           end.Sub(postStart).Seconds(),
			SyncStart:      syncStart.Sub(start).Seconds(),
			LastBucketDone: cs.lastDone.Sub(start).Seconds(),
			CommBusy:       cs.busy.Seconds(),
			TuBusy:         cs.tu.Seconds(),
		},
	}
}

// runStepGuarded is runStep under fault injection and per-hop deadlines:
// it consults the injector at the step boundary (kill, stall), performs
// the identical compute and bucket-launch sequence, and stops before the
// optimizer update — that is applied by applyStep after the driver's
// commit vote. A kill parks the worker until teardown, simulating a
// crashed process that simply stops responding.
func (w *liveWorker) runStepGuarded(t stepTask) stepResult {
	f := w.ft.inj.At(w.rank, t.step)
	w.curFaults = f
	if f.Kill {
		<-w.closing
		return stepResult{aborted: true, faults: f, suspect: -1}
	}
	if f.Stall > 0 {
		timer := time.NewTimer(f.Stall)
		select {
		case <-timer.C:
		case <-w.closing:
			timer.Stop()
			return stepResult{aborted: true, faults: f, suspect: -1}
		}
	}

	start := time.Now()
	w.net.ZeroGrad()
	logits := w.net.Forward(t.x)
	w.dlogits = tensor.Reuse(w.dlogits, logits.Rows(), logits.Cols())
	nn.SoftmaxCrossEntropyInto(w.dlogits, logits, t.labels)
	preEnd := time.Now()

	nextBucket := w.buckets - 1
	prevFr := w.dim
	var syncStart time.Time
	w.net.BackwardLayerwise(w.dlogits, func(fr int) {
		if fr == prevFr {
			return
		}
		w.stageGrads(fr, prevFr, t.weight)
		for nextBucket >= 0 && nextBucket*w.bucketLen >= fr {
			if syncStart.IsZero() {
				syncStart = time.Now()
			}
			w.commQ <- nextBucket
			nextBucket--
		}
		prevFr = fr
	})
	backEnd := time.Now()

	localSq := 0.0
	for _, p := range w.params {
		for _, g := range p.Grad.Data() {
			localSq += g * g
		}
	}
	w.commQ <- -1
	cs := <-w.commDone
	if cs.err != nil {
		return stepResult{err: cs.err, suspect: cs.suspect, faults: f}
	}

	// As in runStep: only rank 0's reduced-gradient norm is consumed.
	var globalSq float64
	if w.rank == 0 {
		globalSq = sqNorm(w.commBuf)
	}

	return stepResult{
		batch:    t.x.Rows(),
		localSq:  localSq,
		globalSq: globalSq,
		suspect:  -1,
		faults:   f,
		sample: Sample{
			Epoch:          t.epoch,
			Step:           t.step,
			Worker:         w.rank,
			Batch:          t.x.Rows(),
			Buckets:        w.buckets,
			Pre:            preEnd.Sub(start).Seconds(),
			Backprop:       backEnd.Sub(preEnd).Seconds(),
			SyncStart:      syncStart.Sub(start).Seconds(),
			LastBucketDone: cs.lastDone.Sub(start).Seconds(),
			CommBusy:       cs.busy.Seconds(),
			TuBusy:         cs.tu.Seconds(),
		},
	}
}

// applyStep writes the reduced gradient back and applies the optimizer —
// the commit half of a guarded step.
func (w *liveWorker) applyStep(lr float64) {
	w.net.SetFlatGrads(w.commBuf)
	w.opt.Step(w.params, lr)
}

// stageGrads copies the newly-final gradient region [fr, prevFr) into the
// comm buffer, pre-scaled by the Eq. 9 ratio. Frontiers align with layer
// boundaries, so the region always covers whole parameters.
func (w *liveWorker) stageGrads(fr, prevFr int, weight float64) {
	for j, p := range w.params {
		off := w.paramOffs[j]
		if off < fr || off >= prevFr {
			continue
		}
		g := p.Grad.Data()
		dst := w.commBuf[off : off+len(g)]
		for k, v := range g {
			dst[k] = v * weight
		}
	}
}

// reduceBucket runs bucket k's unguarded ring reduction and accumulates
// its timing — the one body shared by the overlapped comm goroutine and
// the merged inline path, so both modes measure identically.
func (w *liveWorker) reduceBucket(k int, cs *commStats) {
	lo := k * w.bucketLen
	hi := lo + w.bucketLen
	if hi > w.dim {
		hi = w.dim
	}
	t0 := time.Now()
	_ = w.ring.ReduceWith(w.rank, w.commBuf[lo:hi], allreduce.Options{Algorithm: w.algs[k]})
	now := time.Now()
	cs.busy += now.Sub(t0)
	cs.lastDone = now
	if k == 0 {
		cs.tu = now.Sub(t0)
	}
}

// commLoop reduces buckets in arrival order. Because all ranks enqueue
// buckets in the same sequence, the blocking ring collective is deadlock
// free, and per-bucket FIFO links keep messages matched even when ranks
// are several buckets apart. In guarded mode every hop runs under the
// retry policy's deadline; the first hop failure is sticky for the rest of
// the step (remaining buckets are skipped, fail fast) and is reported to
// the compute goroutine through commDone.
func (w *liveWorker) commLoop() {
	var cs commStats
	cs.suspect = -1
	newStep := true
	for k := range w.commQ {
		if k < 0 {
			w.commDone <- cs
			cs = commStats{}
			cs.suspect = -1
			newStep = true
			continue
		}
		lo := k * w.bucketLen
		hi := lo + w.bucketLen
		if hi > w.dim {
			hi = w.dim
		}
		if w.ft == nil {
			w.reduceBucket(k, &cs)
			continue
		}
		if cs.err != nil {
			newStep = false
			continue
		}
		o := allreduce.Options{Guard: true, Policy: w.ft.policy, Algorithm: w.algs[k]}
		if newStep {
			// The step's injected message faults hit its first send.
			o.SendDelay = w.curFaults.SendDelay
			o.SendDrops = w.curFaults.SendDrops
		}
		newStep = false
		t0 := time.Now()
		if err := w.ring.ReduceWith(w.rank, w.commBuf[lo:hi], o); err != nil {
			cs.err = err
			cs.suspect = -1
			var rf *allreduce.RingFault
			if errors.As(err, &rf) {
				cs.suspect = rf.Suspect
			}
			continue
		}
		now := time.Now()
		cs.busy += now.Sub(t0)
		cs.lastDone = now
		if k == 0 {
			cs.tu = now.Sub(t0)
		}
	}
}
