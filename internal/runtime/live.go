package runtime

import (
	"fmt"
	"sync"
	"time"

	"cannikin/internal/allreduce"
	"cannikin/internal/gns"
	"cannikin/internal/nn"
	"cannikin/internal/tensor"
)

// ringDepth is the per-link channel buffer of the live ring: deep enough
// that a fast rank can run a few bucket reductions ahead of a straggling
// neighbor without blocking its backprop.
const ringDepth = 8

// liveExec runs every worker as its own pair of goroutines — one compute,
// one communication — connected by a persistent ring. The compute
// goroutine enqueues each gradient bucket the moment backprop has
// finalized it (internal/nn's layerwise frontier), so reductions of
// already-finished buckets proceed while earlier layers are still
// backpropagating: real compute/communication overlap, measured with
// wall-clock timers rather than simulated.
type liveExec struct {
	workers []*liveWorker
	prof    *Profile
	wg      sync.WaitGroup
	// sampleBatches and sampleNorms back the gns.Sample returned by step,
	// reused across steps so the steady-state step path does not allocate.
	sampleBatches []int
	sampleNorms   []float64
}

// stepTask is one worker's share of a synchronized step.
type stepTask struct {
	epoch, step int
	x           *tensor.T
	labels      []int
	weight      float64 // the Eq. 9 ratio r_i for this step
	lr          float64
}

// stepResult reports one worker's completed share.
type stepResult struct {
	batch    int
	localSq  float64 // |g_i|² of the raw local gradient
	globalSq float64 // |g|² of the reduced weighted gradient
	sample   Sample
}

// commStats aggregates one step's communication timing inside the comm
// goroutine.
type commStats struct {
	busy     time.Duration // total time inside ring.Reduce
	tu       time.Duration // the final bucket's reduce duration
	lastDone time.Time     // when the final bucket's reduce returned
}

type liveWorker struct {
	rank      int
	net       *nn.Network
	opt       *nn.SGD
	dim       int
	bucketLen int
	buckets   int
	ring      *allreduce.Ring

	// commBuf carries the weight-scaled local gradient into the ring and
	// the reduced global gradient back out. The compute goroutine writes
	// a region and only then enqueues the buckets it completes, so the
	// two goroutines never touch a region concurrently.
	commBuf []float64
	// params and paramOffs map flat-vector regions back to parameters.
	params    []*nn.Param
	paramOffs []int
	// dlogits is the reusable loss-gradient workspace.
	dlogits *tensor.T

	tasks    chan stepTask
	results  chan stepResult
	commQ    chan int // bucket indices; -1 ends the step
	commDone chan commStats
}

func newLiveExec(replicas []*nn.Network, opts []*nn.SGD, bucketLen int) *liveExec {
	n := len(replicas)
	ring, err := allreduce.NewRing(n, ringDepth)
	if err != nil {
		panic(err) // unreachable: n >= 1 is validated by the driver
	}
	dim := replicas[0].NumParams()
	buckets := (dim + bucketLen - 1) / bucketLen
	if buckets < 1 {
		buckets = 1
	}
	e := &liveExec{
		workers:       make([]*liveWorker, n),
		prof:          &Profile{Workers: n, BucketLen: bucketLen},
		sampleBatches: make([]int, n),
		sampleNorms:   make([]float64, n),
	}
	for i := range e.workers {
		params := replicas[i].Params()
		offs := make([]int, len(params))
		off := 0
		for j, p := range params {
			offs[j] = off
			off += p.Size()
		}
		w := &liveWorker{
			rank:      i,
			net:       replicas[i],
			opt:       opts[i],
			dim:       dim,
			bucketLen: bucketLen,
			buckets:   buckets,
			ring:      ring,
			commBuf:   make([]float64, dim),
			params:    params,
			paramOffs: offs,
			tasks:     make(chan stepTask),
			results:   make(chan stepResult, 1),
			commQ:     make(chan int, buckets+1),
			commDone:  make(chan commStats, 1),
		}
		e.workers[i] = w
		e.wg.Add(2)
		go func() {
			defer e.wg.Done()
			w.commLoop()
		}()
		go func() {
			defer e.wg.Done()
			defer close(w.commQ)
			w.computeLoop()
		}()
	}
	return e
}

func (e *liveExec) step(epoch, step int, xs []*tensor.T, labels [][]int, stepWeights []float64, lr float64) (gns.Sample, error) {
	n := len(e.workers)
	for i, w := range e.workers {
		w.tasks <- stepTask{epoch: epoch, step: step, x: xs[i], labels: labels[i], weight: stepWeights[i], lr: lr}
	}
	// The sample aliases exec-owned buffers valid until the next step call.
	sample := gns.Sample{
		Batches:      e.sampleBatches[:n],
		LocalSqNorms: e.sampleNorms[:n],
	}
	// Collect in rank order: a BSP barrier, and a deterministic profile.
	for i, w := range e.workers {
		r := <-w.results
		sample.Batches[i] = r.batch
		sample.LocalSqNorms[i] = r.localSq
		if i == 0 {
			sample.GlobalSqNorm = r.globalSq
		}
		e.prof.Samples = append(e.prof.Samples, r.sample)
	}
	return sample, nil
}

func (e *liveExec) network() *nn.Network { return e.workers[0].net }

func (e *liveExec) finalWeights() ([]float64, error) {
	ref := e.workers[0].net.FlatWeights()
	for i := 1; i < len(e.workers); i++ {
		if d := maxAbsDiff(ref, e.workers[i].net.FlatWeights()); d > 1e-9 {
			return nil, fmt.Errorf("runtime: replica %d diverged by %g", i, d)
		}
	}
	return ref, nil
}

func (e *liveExec) profile() *Profile { return e.prof }

func (e *liveExec) close() {
	for _, w := range e.workers {
		close(w.tasks)
	}
	e.wg.Wait()
}

func (w *liveWorker) computeLoop() {
	for t := range w.tasks {
		w.results <- w.runStep(t)
	}
}

// runStep executes one training step with overlapped communication and
// returns the result together with its wall-clock phase sample.
func (w *liveWorker) runStep(t stepTask) stepResult {
	start := time.Now()
	w.net.ZeroGrad()
	logits := w.net.Forward(t.x)
	w.dlogits = tensor.Reuse(w.dlogits, logits.Rows(), logits.Cols())
	nn.SoftmaxCrossEntropyInto(w.dlogits, logits, t.labels)
	preEnd := time.Now()

	// Backprop with streaming bucket launch: the frontier walks down as
	// layers finish; completed regions are scaled by r_i into commBuf and
	// every fully-final bucket is handed to the comm goroutine. Buckets go
	// out high-index-first because gradients finalize in reverse layer
	// order — every rank enqueues the identical sequence, which keeps the
	// FIFO ring links aligned.
	nextBucket := w.buckets - 1
	prevFr := w.dim
	var syncStart time.Time
	w.net.BackwardLayerwise(w.dlogits, func(fr int) {
		if fr == prevFr {
			return
		}
		w.stageGrads(fr, prevFr, t.weight)
		for nextBucket >= 0 && nextBucket*w.bucketLen >= fr {
			if syncStart.IsZero() {
				syncStart = time.Now()
			}
			w.commQ <- nextBucket
			nextBucket--
		}
		prevFr = fr
	})
	backEnd := time.Now()

	// |g_i|² over the raw (unscaled) gradients in flat order — identical
	// association order to the sequential reference — while the ring is
	// still draining.
	localSq := 0.0
	for _, p := range w.params {
		for _, g := range p.Grad.Data() {
			localSq += g * g
		}
	}
	w.commQ <- -1
	cs := <-w.commDone

	globalSq := sqNorm(w.commBuf)
	postStart := time.Now()
	w.net.SetFlatGrads(w.commBuf)
	w.opt.Step(w.params, t.lr)
	end := time.Now()

	return stepResult{
		batch:    t.x.Rows(),
		localSq:  localSq,
		globalSq: globalSq,
		sample: Sample{
			Epoch:          t.epoch,
			Step:           t.step,
			Worker:         w.rank,
			Batch:          t.x.Rows(),
			Buckets:        w.buckets,
			Pre:            preEnd.Sub(start).Seconds(),
			Backprop:       backEnd.Sub(preEnd).Seconds(),
			Post:           end.Sub(postStart).Seconds(),
			SyncStart:      syncStart.Sub(start).Seconds(),
			LastBucketDone: cs.lastDone.Sub(start).Seconds(),
			CommBusy:       cs.busy.Seconds(),
			TuBusy:         cs.tu.Seconds(),
		},
	}
}

// stageGrads copies the newly-final gradient region [fr, prevFr) into the
// comm buffer, pre-scaled by the Eq. 9 ratio. Frontiers align with layer
// boundaries, so the region always covers whole parameters.
func (w *liveWorker) stageGrads(fr, prevFr int, weight float64) {
	for j, p := range w.params {
		off := w.paramOffs[j]
		if off < fr || off >= prevFr {
			continue
		}
		g := p.Grad.Data()
		dst := w.commBuf[off : off+len(g)]
		for k, v := range g {
			dst[k] = v * weight
		}
	}
}

// commLoop reduces buckets in arrival order. Because all ranks enqueue
// buckets in the same sequence, the blocking ring collective is deadlock
// free, and per-bucket FIFO links keep messages matched even when ranks
// are several buckets apart.
func (w *liveWorker) commLoop() {
	var cs commStats
	for k := range w.commQ {
		if k < 0 {
			w.commDone <- cs
			cs = commStats{}
			continue
		}
		lo := k * w.bucketLen
		hi := lo + w.bucketLen
		if hi > w.dim {
			hi = w.dim
		}
		t0 := time.Now()
		w.ring.Reduce(w.rank, w.commBuf[lo:hi])
		now := time.Now()
		cs.busy += now.Sub(t0)
		cs.lastDone = now
		if k == 0 {
			cs.tu = now.Sub(t0)
		}
	}
}
