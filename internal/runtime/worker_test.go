package runtime

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"cannikin/internal/allreduce"
	"cannikin/internal/nn"
)

// buildWorkerRings stands a TCP ring up on loopback and returns one Ring
// per rank, each over a transport hosting exactly that rank — the same
// topology as n OS processes.
func buildWorkerRings(t *testing.T, n int, delay time.Duration) ([]*allreduce.Ring, func()) {
	t.Helper()
	addrs, listeners, err := allreduce.ReserveRingAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*allreduce.TCPTransport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			trs[rank], errs[rank] = allreduce.NewTCPTransport(allreduce.TCPConfig{
				Rank:        rank,
				Peers:       addrs,
				Listener:    listeners[rank],
				BatchDelay:  delay,
				DialTimeout: 10 * time.Second,
			})
		}(i)
	}
	wg.Wait()
	closeAll := func() {
		for _, tr := range trs {
			if tr != nil {
				tr.Close()
			}
		}
	}
	rings := make([]*allreduce.Ring, n)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			closeAll()
			t.Fatalf("rank %d transport: %v", i, errs[i])
		}
		if rings[i], err = allreduce.NewRingOver(trs[i]); err != nil {
			closeAll()
			t.Fatalf("rank %d ring: %v", i, err)
		}
	}
	return rings, closeAll
}

// TestWorkerMatchesTrainBitwise is the multi-process differential test:
// n TrainWorker ranks over a real TCP ring — each with its own rng source
// and its own copy of the dataset, exactly like n OS processes — must
// produce weights and schedules bitwise-identical to the single-process
// Train reference, with and without send-side batching.
func TestWorkerMatchesTrainBitwise(t *testing.T) {
	cases := []struct {
		name    string
		batches []int
		samples int
		delay   time.Duration
		guard   bool
		mutate  func(*Config)
	}{
		{name: "four-unbatched", batches: []int{8, 6, 4, 2}, samples: 200, delay: 0},
		{name: "four-batched", batches: []int{8, 6, 4, 2}, samples: 200, delay: 150 * time.Microsecond},
		{name: "four-batch-auto", batches: []int{8, 6, 4, 2}, samples: 200, delay: allreduce.BatchAuto},
		{name: "two-guarded", batches: []int{12, 6}, samples: 180, guard: true},
		{name: "growth-adascale", batches: []int{8, 4}, samples: 240, mutate: func(c *Config) {
			c.Epochs = 4
			c.GrowthEpoch = 2
			c.Scaler = nn.AdaScale{}
		}},
		{name: "tiny-buckets", batches: []int{10, 5}, samples: 300, mutate: func(c *Config) {
			c.BucketBytes = 64 * 8
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := testConfig(t, 7, tc.batches, tc.samples)
			if tc.mutate != nil {
				tc.mutate(&ref)
			}
			ref.Backend = BackendSim
			want, err := Train(ref)
			if err != nil {
				t.Fatal(err)
			}

			n := len(tc.batches)
			rings, closeAll := buildWorkerRings(t, n, tc.delay)
			defer closeAll()
			results := make([]*Result, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					// A fresh config per rank: separate rng source and dataset
					// copy, as separate OS processes would construct.
					cfg := testConfig(t, 7, tc.batches, tc.samples)
					if tc.mutate != nil {
						tc.mutate(&cfg)
					}
					results[rank], errs[rank] = TrainWorker(WorkerConfig{
						Config: cfg,
						Rank:   rank,
						Ring:   rings[rank],
						Guard:  tc.guard,
						Policy: allreduce.RetryPolicy{HopTimeout: 200 * time.Millisecond},
					})
				}(i)
			}
			wg.Wait()
			for rank, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", rank, err)
				}
			}

			for rank, got := range results {
				if got.Steps != want.Steps {
					t.Fatalf("rank %d: %d steps, reference ran %d", rank, got.Steps, want.Steps)
				}
				if len(got.FinalWeights) != len(want.FinalWeights) {
					t.Fatalf("rank %d: %d weights, want %d", rank, len(got.FinalWeights), len(want.FinalWeights))
				}
				for j := range got.FinalWeights {
					if math.Float64bits(got.FinalWeights[j]) != math.Float64bits(want.FinalWeights[j]) {
						t.Fatalf("rank %d weight %d: %v != reference %v",
							rank, j, got.FinalWeights[j], want.FinalWeights[j])
					}
				}
				for e := range want.LRSchedule {
					if got.LRSchedule[e] != want.LRSchedule[e] {
						t.Fatalf("rank %d epoch %d lr %v != reference %v", rank, e, got.LRSchedule[e], want.LRSchedule[e])
					}
					if got.NoiseEstimate[e] != want.NoiseEstimate[e] {
						t.Fatalf("rank %d epoch %d noise %v != reference %v", rank, e, got.NoiseEstimate[e], want.NoiseEstimate[e])
					}
					if got.BatchSchedule[e] != want.BatchSchedule[e] {
						t.Fatalf("rank %d epoch %d batch %d != reference %d", rank, e, got.BatchSchedule[e], want.BatchSchedule[e])
					}
				}
			}
		})
	}
}

// TestWorkerDeadPeerFault: when one rank of a TCP ring dies mid-run, the
// survivors' TrainWorker calls fail with a *RingFault instead of hanging.
func TestWorkerDeadPeerFault(t *testing.T) {
	const n = 3
	rings, closeAll := buildWorkerRings(t, n, 0)
	defer closeAll()

	// Rank 2 never trains and closes its transport shortly after startup —
	// a crashed process.
	go func() {
		time.Sleep(50 * time.Millisecond)
		rings[2].Transport().(*allreduce.TCPTransport).Close()
	}()

	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			// A real process's exit closes its sockets, cascading the failure
			// around the ring; mirror that here.
			defer rings[rank].Transport().Close()
			cfg := testConfig(t, 9, []int{8, 8, 8}, 192)
			cfg.Epochs = 50 // long enough to be mid-run when the peer dies
			_, errs[rank] = TrainWorker(WorkerConfig{Config: cfg, Rank: rank, Ring: rings[rank]})
		}(i)
	}
	wg.Wait()
	for rank := 0; rank < n-1; rank++ {
		if errs[rank] == nil {
			t.Fatalf("rank %d: trained to completion across a dead peer", rank)
		}
		var fault *allreduce.RingFault
		if !errors.As(errs[rank], &fault) {
			t.Fatalf("rank %d: non-RingFault error %v", rank, errs[rank])
		}
	}
}
