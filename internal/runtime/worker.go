package runtime

import (
	"errors"
	"fmt"

	"cannikin/internal/allreduce"
	"cannikin/internal/data"
	"cannikin/internal/gns"
	"cannikin/internal/nn"
	"cannikin/internal/tensor"
)

// BackendWorker names the single-rank multi-process engine in Result.Backend.
const BackendWorker = "worker"

// WorkerConfig describes one rank's share of a training run that spans
// processes: the full run Config (every process passes the identical one)
// plus this process's rank and its attachment to the ring.
type WorkerConfig struct {
	Config
	// Rank is this process's position in the ring; the ring's worker count
	// must equal len(Config.LocalBatches).
	Rank int
	// Ring is the process's ring attachment — in practice a Ring over a
	// TCPTransport hosting exactly this rank. The caller owns the ring's
	// transport and closes it after TrainWorker returns.
	Ring *allreduce.Ring
	// Guard runs every ring hop under per-hop deadlines (Policy), so a
	// stalled peer fails the run with a *RingFault blaming it. Without
	// Guard, hops block indefinitely on a silent peer but still fail
	// promptly when a peer's socket breaks.
	Guard  bool
	Policy allreduce.RetryPolicy
}

// TrainWorker runs one rank of a data-parallel training job whose other
// ranks live in other processes, connected by cfg.Ring. It produces
// weights bitwise-identical to Train on the same Config: determinism rests
// on rng.Source.Split being pure, so every process independently reproduces
// the dataset, the loader's full draw sequence (it draws every rank's shard
// and trains only on its own), and the common initial weights (rank 0's
// initialization, which is exactly what Train's ring broadcast leaves on
// every replica) — and on the ring fixing the gradient summation order
// regardless of transport.
//
// Cross-rank GNS state is replicated exactly by ring-reducing each rank's
// one-hot |g_i|² vector: adding zeros is exact in floating point, so every
// process observes identical norms and follows the identical learning-rate
// schedule.
//
// Fault injection and eviction are not supported in worker mode: a dead
// peer fails the run with a *RingFault naming the suspect, and recovery is
// the coordinator's concern.
func TrainWorker(cfg WorkerConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Fault != nil {
		return nil, errors.New("runtime: fault injection is not supported in worker mode")
	}
	if len(cfg.Joins) > 0 || cfg.Elastic != nil {
		// A process cannot grow its own ring mid-run; the coordinator
		// decomposes an elastic run into fixed-membership generations,
		// handing each the previous one's checkpoint (weights + velocity).
		return nil, errors.New("runtime: hot-join is not supported in worker mode (the coordinator runs one process generation per membership)")
	}
	if cfg.Backend != "" && cfg.Backend != BackendWorker {
		return nil, fmt.Errorf("runtime: worker mode cannot run backend %q", cfg.Backend)
	}
	if cfg.Ring == nil {
		return nil, errors.New("runtime: worker mode needs a ring")
	}
	n := len(cfg.LocalBatches)
	if cfg.Ring.Workers() != n {
		return nil, fmt.Errorf("runtime: ring of %d workers for %d local batches", cfg.Ring.Workers(), n)
	}
	if cfg.Rank < 0 || cfg.Rank >= n {
		return nil, fmt.Errorf("runtime: rank %d of %d", cfg.Rank, n)
	}
	if cfg.KernelShards > 0 {
		tensor.SetParallelism(cfg.KernelShards)
	}

	globalBatch := 0
	for _, b := range cfg.LocalBatches {
		globalBatch += b
	}
	res := &Result{Backend: BackendWorker, Workers: n, GlobalBatch: globalBatch}

	loader := data.NewHeteroLoader(cfg.Dataset, cfg.Src)

	// Every replica of a Train run ends initialization holding rank 0's
	// weights (the ring broadcast); a worker reproduces that state directly
	// from the shared source.
	net := nn.NewMLP(cfg.Sizes, cfg.Src.Split("init-0"))
	if cfg.InitWeights != nil {
		if want := net.NumParams(); len(cfg.InitWeights) != want {
			return nil, fmt.Errorf("runtime: init weights dim %d, want %d", len(cfg.InitWeights), want)
		}
		net.SetFlatWeights(cfg.InitWeights)
	}
	opt := nn.NewSGD(cfg.Momentum, 0)
	params := net.Params()
	if cfg.InitVelocity != nil {
		if err := opt.SetFlatVelocity(params, cfg.InitVelocity); err != nil {
			return nil, fmt.Errorf("runtime: %w", err)
		}
	}
	dim := net.NumParams()
	// Every process must derive the identical partition from the shared
	// Config alone — bucketLenFor depends only on (BucketBytes, dim, n) and
	// bucketAlgorithms only on the shared algorithm fields.
	bucketLen := bucketLenFor(cfg.BucketBytes, dim, n)
	algs, err := bucketAlgorithms(cfg.Allreduce, cfg.LinkAlpha, cfg.LinkBeta, dim, bucketLen, n)
	if err != nil {
		return nil, err
	}

	rank := cfg.Rank
	opts := allreduce.Options{Guard: cfg.Guard, Policy: cfg.Policy}
	grad := make([]float64, dim)    // raw local gradient (|g_i|²)
	commBuf := make([]float64, dim) // weight-scaled, then globally reduced
	normBuf := make([]float64, n)   // one-hot |g_i|² exchange
	batches := make([]int, n)
	var dlogits *tensor.T

	tracker := gns.NewTracker(0.1)
	estimator := gns.NewEstimator(cfg.NaiveGNS)
	localBatches := append([]int(nil), cfg.LocalBatches...)
	weights := make([]float64, n)
	for i, b := range localBatches {
		weights[i] = float64(b) / float64(globalBatch)
	}
	partialWeights := make([]float64, n)
	baseBatch := globalBatch
	lr := cfg.LearningRate

	fullX, fullLabels := cfg.Dataset.Batch(identity(cfg.Dataset.Len()))

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.GrowthEpoch > 0 && epoch == cfg.GrowthEpoch && epoch > 0 {
			for i := range localBatches {
				localBatches[i] *= 2
			}
			globalBatch *= 2
			for i, b := range localBatches {
				weights[i] = float64(b) / float64(globalBatch)
			}
			if cfg.Scaler != nil {
				lr = cfg.Scaler.Scale(cfg.LearningRate, globalBatch, baseBatch, tracker.Noise())
			}
		}
		stepsPerEpoch := cfg.Dataset.Len() / globalBatch
		if stepsPerEpoch < 1 {
			stepsPerEpoch = 1
		}
		for s := 0; s < stepsPerEpoch; s++ {
			// Draw every rank's shard to keep the loader's randomness stream
			// identical to the single-process run; train only on our own.
			xs, labels, err := loader.NextGlobalBatch(localBatches)
			if err != nil {
				return nil, err
			}
			got := 0
			for _, x := range xs {
				got += x.Rows()
			}
			stepWeights := weights
			if got != globalBatch {
				stepWeights = partialWeights
				for i, x := range xs {
					stepWeights[i] = float64(x.Rows()) / float64(got)
				}
			}

			net.ZeroGrad()
			logits := net.Forward(xs[rank])
			dlogits = tensor.Reuse(dlogits, logits.Rows(), logits.Cols())
			nn.SoftmaxCrossEntropyInto(dlogits, logits, labels[rank])
			net.Backward(dlogits)
			net.FlatGradsInto(grad)
			localSq := sqNorm(grad)

			// Eq. 9 pre-scale, then the bucketed ring reduce — the identical
			// per-bucket summation order to both in-process engines.
			w := stepWeights[rank]
			for j, g := range grad {
				commBuf[j] = g * w
			}
			for k, lo := 0, 0; lo < dim; k, lo = k+1, lo+bucketLen {
				hi := lo + bucketLen
				if hi > dim {
					hi = dim
				}
				o := opts
				o.Algorithm = algs[k]
				if err := cfg.Ring.ReduceWith(rank, commBuf[lo:hi], o); err != nil {
					return nil, err
				}
			}
			globalSq := sqNorm(commBuf)

			// Replicate every rank's |g_i|² exactly: each rank contributes a
			// one-hot vector and zeros add exactly.
			for i := range normBuf {
				normBuf[i] = 0
			}
			normBuf[rank] = localSq
			if err := cfg.Ring.ReduceWith(rank, normBuf, opts); err != nil {
				return nil, err
			}

			net.SetFlatGrads(commBuf)
			opt.Step(params, lr)

			if n >= 2 {
				for i, x := range xs {
					batches[i] = x.Rows()
				}
				sample := gns.Sample{Batches: batches, LocalSqNorms: normBuf, GlobalSqNorm: globalSq}
				if est, gerr := estimator.Estimate(sample); gerr == nil {
					tracker.Observe(est)
				}
			}
			res.Steps++
		}
		logits := net.Forward(fullX)
		loss, _ := nn.SoftmaxCrossEntropy(logits, fullLabels)
		res.EpochLoss = append(res.EpochLoss, loss)
		res.EpochAccuracy = append(res.EpochAccuracy, nn.Accuracy(logits, fullLabels))
		res.NoiseEstimate = append(res.NoiseEstimate, tracker.Noise())
		res.BatchSchedule = append(res.BatchSchedule, globalBatch)
		res.LRSchedule = append(res.LRSchedule, lr)
	}
	res.FinalAccuracy = res.EpochAccuracy[len(res.EpochAccuracy)-1]
	res.FinalWeights = net.FlatWeights()
	res.FinalVelocity = opt.FlatVelocity(params)
	return res, nil
}

// Adaptive bucket sizing (BucketBytes <= 0). A bucket costs 2(n-1) ring
// hops regardless of its size, so small models want few large buckets —
// the fixed 25 MB DDP cap already degenerates to one bucket for every model
// in this repo, but an explicit small cap (or a huge model) could shatter a
// kilobyte-scale gradient into dozens of buckets whose per-bucket channel
// and goroutine overhead dwarfs the arithmetic. The rule: never build a
// bucket smaller than minAutoBucketBytes, and never spend more than
// autoBucketHopBudget total hops on a step's reduction (buckets ≤
// budget/workers). Deliberately a pure function of (dim, workers): bucket
// partition is part of the arithmetic for n ≥ 3, so it must never depend on
// scheduling state like GOMAXPROCS, which multi-process ranks would not
// agree on.
const (
	minAutoBucketBytes  = 256 << 10
	autoBucketHopBudget = 16
)

// bucketAlgorithms resolves the configured collective algorithm to one
// concrete schedule per gradient bucket. "auto" is priced per bucket with
// the fitted link constants (allreduce.Selector); the result never
// contains AlgoAuto, so the executors pass fully-resolved schedules to the
// ring. Like the bucket partition itself, the choice is a pure function of
// the shared config — (algo, alpha, beta, dim, bucketLen, workers) — never
// of scheduling state, so sim, live, and every process of a multi-rank run
// derive the identical schedules and the trained weights stay
// bitwise-reproducible.
func bucketAlgorithms(algo string, alpha, beta float64, dim, bucketLen, workers int) ([]allreduce.Algorithm, error) {
	a, err := allreduce.ParseAlgorithm(algo)
	if err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	sel := allreduce.Selector{Alpha: alpha, Beta: beta}
	buckets := (dim + bucketLen - 1) / bucketLen
	if buckets < 1 {
		buckets = 1
	}
	out := make([]allreduce.Algorithm, buckets)
	for k := range out {
		lo := k * bucketLen
		hi := lo + bucketLen
		if hi > dim {
			hi = dim
		}
		out[k] = sel.Resolve(a, workers, hi-lo)
	}
	return out, nil
}

// bucketLenFor converts the configured bucket cap to a per-bucket element
// count: explicit positive caps are honored as-is (DDP semantics), zero
// picks the adaptive size above.
func bucketLenFor(bucketBytes, dim, workers int) int {
	if bucketBytes > 0 {
		bucketLen := bucketBytes / 8
		if bucketLen < 1 {
			bucketLen = 1
		}
		return bucketLen
	}
	if dim < 1 || workers < 1 {
		return 1
	}
	maxBuckets := autoBucketHopBudget / workers
	if maxBuckets < 1 {
		maxBuckets = 1
	}
	buckets := dim * 8 / minAutoBucketBytes
	if buckets < 1 {
		buckets = 1
	}
	if buckets > maxBuckets {
		buckets = maxBuckets
	}
	return (dim + buckets - 1) / buckets
}
