package runtime

import (
	"errors"
	"fmt"
	"time"

	"cannikin/internal/allreduce"
	"cannikin/internal/faultinject"
	"cannikin/internal/optperf"
)

// Replan policies for FaultConfig.Replan.
const (
	// ReplanKeep keeps each survivor's current local batch after an
	// eviction (the deterministic default).
	ReplanKeep = "keep"
	// ReplanOptPerf re-solves OptPerf over the survivor cluster using the
	// performance model fitted from the live profile measured so far, and
	// adopts the re-optimized local batches. Falls back to ReplanKeep when
	// the profile cannot be fitted yet.
	ReplanOptPerf = "optperf"
)

// ErrNoSurvivors reports that every worker was evicted: there is no
// cluster left to resume training on.
var ErrNoSurvivors = errors.New("runtime: all workers evicted")

// FaultConfig enables deterministic fault injection and the
// fault-tolerance policy for the live backend. With a FaultConfig set,
// every ring hop runs under a per-hop deadline with bounded retry and
// exponential backoff; on exhaustion the failed step is retried once on a
// rebuilt ring, and persistent failures evict the offending worker:
// survivors checkpoint the last fully-reduced weights, local batches are
// re-planned over the n-1 cluster, Eq. 9 aggregation weights are rescaled,
// and training resumes.
type FaultConfig struct {
	// Schedule is the deterministic fault plan (may be empty: then the
	// config only arms the detection/retry machinery).
	Schedule faultinject.Schedule
	// HopTimeout, Retries, Backoff, MaxTimeout parameterize the per-hop
	// retry policy (see allreduce.RetryPolicy; zero fields take its
	// defaults).
	HopTimeout time.Duration
	Retries    int
	Backoff    float64
	MaxTimeout time.Duration
	// StepTimeout is the driver's per-step deadline for collecting every
	// worker's result; a worker that stays silent past it is declared dead
	// (default 4x the per-hop retry budget, at least 2s).
	StepTimeout time.Duration
	// StepRetries is how many times a failed step with no identified dead
	// worker is retried on a rebuilt ring before the most-suspected worker
	// is evicted (default 1).
	StepRetries int
	// Replan picks the survivor batch policy: ReplanKeep (default) or
	// ReplanOptPerf.
	Replan string
}

func (c *FaultConfig) policy() allreduce.RetryPolicy {
	return allreduce.RetryPolicy{
		HopTimeout: c.HopTimeout,
		Retries:    c.Retries,
		Backoff:    c.Backoff,
		MaxTimeout: c.MaxTimeout,
	}.WithDefaults()
}

func (c *FaultConfig) stepTimeout() time.Duration {
	if c.StepTimeout > 0 {
		return c.StepTimeout
	}
	d := 4 * c.policy().Budget()
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func (c *FaultConfig) stepRetries() int {
	if c.StepRetries > 0 {
		return c.StepRetries
	}
	return 1
}

func (c *FaultConfig) validate(workers int) error {
	if err := c.Schedule.Validate(workers); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	switch c.Replan {
	case "", ReplanKeep, ReplanOptPerf:
	default:
		return fmt.Errorf("runtime: unknown replan policy %q", c.Replan)
	}
	if c.HopTimeout < 0 || c.Retries < 0 || c.StepTimeout < 0 || c.StepRetries < 0 {
		return fmt.Errorf("runtime: negative fault-tolerance timing")
	}
	return nil
}

// Eviction records one coordinated worker eviction and the recovery that
// followed. Worker indices are the run's original ranks, stable across
// repeated evictions.
type Eviction struct {
	// Epoch and Step locate the failed step (global step count).
	Epoch, Step int
	// Workers are the evicted original ranks; Reason says why.
	Workers []int
	Reason  string
	// Survivors are the remaining original ranks, in their new rank order.
	Survivors []int
	// SurvivorBatches are the local batches the survivor cluster resumed
	// with (after re-planning).
	SurvivorBatches []int
	// Checkpoint is the flat weight vector training resumed from: the last
	// fully-reduced weights, bitwise-identical on every survivor.
	Checkpoint []float64
	// Replanned reports that OptPerf re-planning produced the survivor
	// batches (false = survivors kept their current batches).
	Replanned bool
}

// FaultRecord is one injected fault a worker actually suffered, reported
// in global step order with original worker ranks.
type FaultRecord struct {
	Step, Worker int
	// Stall and SendDelay are the injected delays; SendDrops the dropped
	// send attempts; Killed marks a permanent worker kill.
	Stall, SendDelay time.Duration
	SendDrops        int
	Killed           bool
}

// String renders the record for traces and logs.
func (f FaultRecord) String() string {
	switch {
	case f.Killed:
		return fmt.Sprintf("step %d worker %d killed", f.Step, f.Worker)
	case f.Stall > 0 && (f.SendDelay > 0 || f.SendDrops > 0):
		return fmt.Sprintf("step %d worker %d stalled %v + comm fault", f.Step, f.Worker, f.Stall)
	case f.Stall > 0:
		return fmt.Sprintf("step %d worker %d stalled %v", f.Step, f.Worker, f.Stall)
	case f.SendDrops > 0:
		return fmt.Sprintf("step %d worker %d dropped %d sends", f.Step, f.Worker, f.SendDrops)
	default:
		return fmt.Sprintf("step %d worker %d send delayed %v", f.Step, f.Worker, f.SendDelay)
	}
}

// faultTolerance is the compiled fault-tolerance runtime handed to the
// live executor: the injector, the hop retry policy, and the driver-side
// step deadline.
type faultTolerance struct {
	inj         *faultinject.Injector
	policy      allreduce.RetryPolicy
	stepTimeout time.Duration
}

// stepFailure is the driver's view of one failed synchronized step.
type stepFailure struct {
	// dead are the ranks (incarnation-relative) that never responded
	// within the step deadline — crashed or permanently stalled workers.
	dead []int
	// blame tallies, per rank, how often its neighbors' failed hops
	// suspected it.
	blame []int
	// firstErr is one representative hop error for reporting.
	firstErr error
}

// victims picks who to evict: dead workers if any were identified,
// otherwise the most-blamed rank (ties broken toward the lowest rank so
// the choice is reproducible).
func (f *stepFailure) victims() []int {
	if len(f.dead) > 0 {
		return f.dead
	}
	best, bestN := -1, 0
	for r, n := range f.blame {
		if n > bestN {
			best, bestN = r, n
		}
	}
	if best < 0 {
		return nil
	}
	return []int{best}
}

// replanSurvivors picks the survivor cluster's local batches. The default
// keeps each survivor's current batch; ReplanOptPerf fits the paper's
// performance model to the live profile measured so far and re-solves
// OptPerf over the survivor nodes for the survivor total batch, falling
// back to the default when no model can be fitted yet.
func replanSurvivors(policy string, prof *Profile, survivors, current []int) (batches []int, replanned bool) {
	batches = make([]int, len(survivors))
	total := 0
	for i, s := range survivors {
		batches[i] = current[s]
		total += current[s]
	}
	if policy != ReplanOptPerf || prof == nil {
		return batches, false
	}
	model, _, err := prof.FitModel(nil)
	if err != nil {
		return batches, false
	}
	sub := optperf.ClusterModel{Gamma: model.Gamma, To: model.To, Tu: model.Tu}
	for _, s := range survivors {
		if s >= len(model.Nodes) {
			return batches, false
		}
		sub.Nodes = append(sub.Nodes, model.Nodes[s])
	}
	plan, err := optperf.Solve(sub, total)
	if err != nil || len(plan.Batches) != len(survivors) {
		return batches, false
	}
	for _, b := range plan.Batches {
		if b < 1 {
			return batches, false
		}
	}
	return plan.Batches, true
}
