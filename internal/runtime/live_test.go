package runtime

import (
	"math"
	"testing"
	"time"

	"cannikin/internal/data"
	"cannikin/internal/rng"
)

// overlapConfig is sized so the flat gradient splits into many buckets
// across several layers: overlap between backprop and ring reduction is
// structurally guaranteed, not a timing accident.
func overlapConfig(t *testing.T, workers int) Config {
	t.Helper()
	src := rng.New(5)
	ds, err := data.SyntheticBlobs(600, 16, 8, 0.6, src)
	if err != nil {
		t.Fatal(err)
	}
	batches := make([]int, workers)
	for i := range batches {
		batches[i] = 32 - 8*i%16
	}
	return Config{
		Backend:      BackendLive,
		LocalBatches: batches,
		Sizes:        []int{16, 128, 64, 8},
		Epochs:       2,
		LearningRate: 0.05,
		Momentum:     0.9,
		BucketBytes:  1024 * 8, // 1024-element buckets over a ~11k-param net
		Dataset:      ds,
		Src:          src,
	}
}

// TestLiveOverlapObservable checks the acceptance criterion directly: in
// every multi-bucket sample the measured syncStart_i strictly precedes
// the last bucket's completion, and the first bucket enters the ring
// before backprop has finished.
func TestLiveOverlapObservable(t *testing.T) {
	defer watchdog(t, 3*time.Minute)()
	r, err := Train(overlapConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	p := r.Profile
	if p == nil {
		t.Fatal("live run produced no profile")
	}
	if len(p.Samples) == 0 {
		t.Fatal("profile is empty")
	}
	for _, s := range p.Samples {
		if s.Buckets < 2 {
			t.Fatalf("expected multi-bucket steps, got %d buckets", s.Buckets)
		}
		if !(s.SyncStart < s.LastBucketDone) {
			t.Fatalf("syncStart %v does not precede last-bucket completion %v", s.SyncStart, s.LastBucketDone)
		}
		if !(s.SyncStart < s.Pre+s.Backprop) {
			t.Fatalf("first bucket entered the ring at %v, after backprop ended at %v", s.SyncStart, s.Pre+s.Backprop)
		}
		if s.Pre <= 0 || s.Backprop <= 0 || s.Post <= 0 {
			t.Fatalf("non-positive phase times: %+v", s)
		}
		if g := s.Gamma(); g <= 0 || g > 1 {
			t.Fatalf("gamma %v out of (0, 1]", g)
		}
		if s.To() < 0 || s.Tu() < 0 || s.CommBusy < s.TuBusy {
			t.Fatalf("inconsistent comm times: %+v", s)
		}
	}
	if !p.OverlapObserved() {
		t.Fatal("OverlapObserved() = false on an overlapping profile")
	}
	for w := 0; w < r.Workers; w++ {
		ws := p.WorkerSamples(w)
		if len(ws) != r.Steps {
			t.Fatalf("worker %d has %d samples, want %d", w, len(ws), r.Steps)
		}
	}
}

// TestProfileFitsPerfModel closes the loop the paper describes: measured
// live samples feed the online perfmodel learner, which must produce a
// valid cluster model with a finite reported fit error.
func TestProfileFitsPerfModel(t *testing.T) {
	defer watchdog(t, 3*time.Minute)()
	src := rng.New(21)
	// 300 samples over a 24-sample global batch: every epoch ends with a
	// partial batch, so each node observes two distinct batch sizes — the
	// minimum the per-node linear fit needs.
	ds, err := data.SyntheticBlobs(300, 8, 4, 0.6, src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Backend:      BackendLive,
		LocalBatches: []int{16, 8},
		Sizes:        []int{8, 64, 4},
		Epochs:       4,
		LearningRate: 0.05,
		Momentum:     0.9,
		BucketBytes:  256 * 8,
		Dataset:      ds,
		Src:          src,
	}
	r, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, fitErr, err := r.Profile.FitModel([]int{64, 64})
	if err != nil {
		t.Fatalf("FitModel: %v", err)
	}
	if err := model.Validate(); err != nil {
		t.Fatalf("fitted model invalid: %v", err)
	}
	if len(model.Nodes) != 2 || model.Nodes[0].MaxBatch != 64 {
		t.Fatalf("fitted nodes %+v", model.Nodes)
	}
	if math.IsNaN(fitErr) || math.IsInf(fitErr, 0) || fitErr < 0 {
		t.Fatalf("fit error %v", fitErr)
	}
	t.Logf("fitted model: gamma=%.3f To=%.3gs Tu=%.3gs, max fit error %.3f",
		model.Gamma, model.To, model.Tu, fitErr)
}

// TestSampleDerivedQuantities pins the Sample accessors on synthetic
// values, independent of wall clocks.
func TestSampleDerivedQuantities(t *testing.T) {
	s := Sample{Pre: 0.010, Backprop: 0.100, Post: 0.005,
		SyncStart: 0.060, CommBusy: 0.030, TuBusy: 0.012}
	if got := s.A(); got != 0.015 {
		t.Fatalf("A() = %v", got)
	}
	if got := s.Gamma(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Gamma() = %v, want 0.5", got)
	}
	if got := s.To(); math.Abs(got-0.018) > 1e-12 {
		t.Fatalf("To() = %v, want 0.018", got)
	}
	if got := s.Tu(); got != 0.012 {
		t.Fatalf("Tu() = %v", got)
	}
	// Degenerate clocks clamp instead of exploding.
	if g := (Sample{Backprop: 0}).Gamma(); g != 1 {
		t.Fatalf("zero-backprop Gamma() = %v, want 1", g)
	}
	if g := (Sample{Pre: 1, SyncStart: 0.5, Backprop: 1}).Gamma(); g != 1e-6 {
		t.Fatalf("early-sync Gamma() = %v, want clamp to 1e-6", g)
	}
	if got := (Sample{CommBusy: 0.01, TuBusy: 0.02}).To(); got != 0 {
		t.Fatalf("negative To() = %v, want 0", got)
	}
}

// TestOverlapObservedRejectsViolations feeds a hand-built profile where a
// sample's sync starts after its last bucket completed.
func TestOverlapObservedRejectsViolations(t *testing.T) {
	p := &Profile{Workers: 1, Samples: []Sample{
		{Buckets: 4, Pre: 1, Backprop: 10, SyncStart: 5, LastBucketDone: 4},
	}}
	if p.OverlapObserved() {
		t.Fatal("OverlapObserved accepted syncStart after last bucket")
	}
	if (&Profile{Workers: 1, Samples: []Sample{{Buckets: 1}}}).OverlapObserved() {
		t.Fatal("OverlapObserved true with no multi-bucket samples")
	}
}
