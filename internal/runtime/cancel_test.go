package runtime

import (
	"context"
	"errors"
	"fmt"
	gort "runtime"
	"testing"
	"time"
)

// TestCancelDuringLiveEpoch is the regression test for mid-epoch
// cancellation: a context canceled from inside the OnEpoch hook — i.e.
// while a live epoch is in flight, after steps have committed — must abort
// the run with the context's error in the chain, even when the hook fired
// on the final epoch (which a boundary-only check would silently complete),
// and must leave no worker goroutine behind.
func TestCancelDuringLiveEpoch(t *testing.T) {
	for _, backend := range []string{BackendSim, BackendLive} {
		for _, cancelEpoch := range []int{0, 2} { // mid-run and final epoch
			t.Run(fmt.Sprintf("%s/epoch%d", backend, cancelEpoch), func(t *testing.T) {
				before := gort.NumGoroutine()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				cfg := testConfig(t, 11, []int{8, 4, 2}, 280)
				cfg.Backend = backend
				cfg.Ctx = ctx
				epochsSeen := 0
				cfg.OnEpoch = func(e EpochObs) error {
					epochsSeen++
					if e.Epoch == cancelEpoch {
						cancel()
					}
					return nil
				}
				res, err := Train(cfg)
				if err == nil {
					t.Fatalf("canceled run reported success: %+v", res)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("error chain lacks context.Canceled: %v", err)
				}
				if epochsSeen != cancelEpoch+1 {
					t.Fatalf("hook saw %d epochs, want %d", epochsSeen, cancelEpoch+1)
				}
				waitGoroutines(t, before)
			})
		}
	}
}

// TestCancelBetweenSteps cancels from outside while steps are running: the
// live engine must notice at the next step boundary and join its workers.
func TestCancelBetweenSteps(t *testing.T) {
	before := gort.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cfg := testConfig(t, 12, []int{4, 4}, 400)
	cfg.Backend = BackendLive
	cfg.Epochs = 50 // long enough that cancellation lands mid-run
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	cfg.Ctx = ctx
	_, err := Train(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled in chain", err)
	}
	waitGoroutines(t, before)
}

// TestOnEpochErrorAborts: a hook error aborts the run wrapped, without a
// context in play.
func TestOnEpochErrorAborts(t *testing.T) {
	sentinel := errors.New("stop here")
	cfg := testConfig(t, 13, []int{8}, 128)
	cfg.OnEpoch = func(e EpochObs) error {
		if e.Epoch == 1 {
			return sentinel
		}
		return nil
	}
	_, err := Train(cfg)
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want sentinel in chain", err)
	}
}

// TestOnEpochStreamsObservations: the hook sees every epoch in order with
// the same values the result records.
func TestOnEpochStreamsObservations(t *testing.T) {
	cfg := testConfig(t, 14, []int{8, 4}, 240)
	var seen []EpochObs
	cfg.OnEpoch = func(e EpochObs) error {
		seen = append(seen, e)
		return nil
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != cfg.Epochs {
		t.Fatalf("hook saw %d epochs, want %d", len(seen), cfg.Epochs)
	}
	for i, e := range seen {
		if e.Epoch != i || e.Workers != 2 {
			t.Fatalf("epoch %d obs out of order: %+v", i, e)
		}
		if e.Loss != res.EpochLoss[i] || e.Accuracy != res.EpochAccuracy[i] || e.Noise != res.NoiseEstimate[i] {
			t.Fatalf("epoch %d obs diverge from result: %+v", i, e)
		}
		if e.GlobalBatch != res.BatchSchedule[i] || e.LearningRate != res.LRSchedule[i] {
			t.Fatalf("epoch %d schedule diverges: %+v", i, e)
		}
	}
}

// waitGoroutines polls until the goroutine count returns to (near) the
// baseline, failing the test if worker goroutines leaked.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		// Allow slack for test-runner goroutines unrelated to the run.
		if n := gort.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := gort.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", gort.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
