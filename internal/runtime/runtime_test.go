package runtime

import (
	"testing"

	"cannikin/internal/data"
	"cannikin/internal/nn"
	"cannikin/internal/rng"
)

// testConfig builds a small training config the way the public TrainMLP
// wrapper does: one source seeds the dataset, the loader, and the replica
// initialization, in that order.
func testConfig(t *testing.T, seed uint64, batches []int, samples int) Config {
	t.Helper()
	src := rng.New(seed)
	ds, err := data.SyntheticBlobs(samples, 8, 4, 0.6, src)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		LocalBatches: batches,
		Sizes:        []int{8, 32, 4},
		Epochs:       3,
		LearningRate: 0.05,
		Momentum:     0.9,
		Dataset:      ds,
		Src:          src,
	}
}

// TestLiveMatchesSequentialBitwise is the tentpole differential test: the
// concurrent live engine and the sequential reference must produce
// bitwise-identical weights and GNS trajectories for the same seed —
// across equal and unequal local batches, partial final batches, batch
// growth with AdaScale, and several bucket sizes.
func TestLiveMatchesSequentialBitwise(t *testing.T) {
	cases := []struct {
		name    string
		batches []int
		samples int
		mutate  func(*Config)
	}{
		{"two-equal", []int{16, 16}, 256, nil},
		{"unequal", []int{12, 6, 3}, 300, nil},
		{"partial-batches", []int{16, 8}, 300, nil},
		{"single-worker", []int{32}, 256, nil},
		{"growth-adascale", []int{8, 4}, 240, func(c *Config) {
			c.Epochs = 4
			c.GrowthEpoch = 2
			c.Scaler = nn.AdaScale{}
		}},
		{"tiny-buckets", []int{10, 5}, 300, func(c *Config) {
			c.BucketBytes = 64 * 8 // 64-element buckets: many per step
		}},
		{"naive-gns", []int{16, 8}, 300, func(c *Config) { c.NaiveGNS = true }},
		// The comm mode is scheduling only — sim must match live in every
		// mode, including the merged single-goroutine loop, at three workers
		// (where summation order is most fragile) and with many buckets.
		{"merged-comm", []int{12, 6, 3}, 300, func(c *Config) { c.CommMode = CommMerged }},
		{"overlap-comm", []int{12, 6, 3}, 300, func(c *Config) { c.CommMode = CommOverlap }},
		{"merged-tiny-buckets", []int{10, 5}, 300, func(c *Config) {
			c.CommMode = CommMerged
			c.BucketBytes = 64 * 8
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := testConfig(t, 42, tc.batches, tc.samples)
			if tc.mutate != nil {
				tc.mutate(&seq)
			}
			live := testConfig(t, 42, tc.batches, tc.samples)
			if tc.mutate != nil {
				tc.mutate(&live)
			}
			seq.Backend = BackendSim
			live.Backend = BackendLive

			rs, err := Train(seq)
			if err != nil {
				t.Fatal(err)
			}
			rl, err := Train(live)
			if err != nil {
				t.Fatal(err)
			}

			if len(rs.FinalWeights) == 0 || len(rs.FinalWeights) != len(rl.FinalWeights) {
				t.Fatalf("weight lengths %d vs %d", len(rs.FinalWeights), len(rl.FinalWeights))
			}
			for i := range rs.FinalWeights {
				if rs.FinalWeights[i] != rl.FinalWeights[i] {
					t.Fatalf("weight %d: sim %v != live %v", i, rs.FinalWeights[i], rl.FinalWeights[i])
				}
			}
			for e := range rs.EpochLoss {
				if rs.EpochLoss[e] != rl.EpochLoss[e] {
					t.Fatalf("epoch %d loss: sim %v != live %v", e, rs.EpochLoss[e], rl.EpochLoss[e])
				}
				if rs.NoiseEstimate[e] != rl.NoiseEstimate[e] {
					t.Fatalf("epoch %d noise: sim %v != live %v", e, rs.NoiseEstimate[e], rl.NoiseEstimate[e])
				}
				if rs.BatchSchedule[e] != rl.BatchSchedule[e] || rs.LRSchedule[e] != rl.LRSchedule[e] {
					t.Fatalf("epoch %d schedule: sim (%d, %v) != live (%d, %v)", e,
						rs.BatchSchedule[e], rs.LRSchedule[e], rl.BatchSchedule[e], rl.LRSchedule[e])
				}
			}
			if rs.FinalAccuracy != rl.FinalAccuracy || rs.Steps != rl.Steps {
				t.Fatalf("sim (acc %v, steps %d) != live (acc %v, steps %d)",
					rs.FinalAccuracy, rs.Steps, rl.FinalAccuracy, rl.Steps)
			}
			if rs.Profile != nil {
				t.Fatal("sim backend emitted a profile")
			}
			if rl.Profile == nil || len(rl.Profile.Samples) != rl.Steps*rl.Workers {
				t.Fatalf("live profile has %d samples, want %d",
					len(rl.Profile.Samples), rl.Steps*rl.Workers)
			}
		})
	}
}

// TestBucketSizeDoesNotChangeWeights: with two workers every reduced
// element is a single two-term sum, so any bucket partition — adaptive,
// huge, tiny — must give the same bits. (This invariance is specific to
// n <= 2: at three or more workers the partition changes which ring chunk
// an element lands in and therefore how its sum associates; that regime is
// covered by TestBucketPartitionBackendsAgree, which fixes the partition
// and varies the backend instead.)
func TestBucketSizeDoesNotChangeWeights(t *testing.T) {
	var ref []float64
	for _, bytes := range []int{0, 64 * 8, 1000 * 8, 7 * 8} {
		cfg := testConfig(t, 7, []int{12, 6}, 240)
		cfg.Backend = BackendLive
		cfg.BucketBytes = bytes
		r, err := Train(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r.FinalWeights
			continue
		}
		for i := range ref {
			if ref[i] != r.FinalWeights[i] {
				t.Fatalf("bucketBytes=%d: weight %d differs", bytes, i)
			}
		}
	}
}

// TestBucketPartitionBackendsAgree is the bucket-selection property test:
// for every partition the runtime can produce — one bucket, adaptive,
// many tiny buckets, even single-element buckets — the sequential backend
// and the live backend in both comm modes must produce bitwise-identical
// weights and GNS trajectories. Run at three workers, where the partition
// itself affects association order, so nothing here may silently fall back
// on two-worker commutativity.
func TestBucketPartitionBackendsAgree(t *testing.T) {
	partitions := []struct {
		name  string
		bytes int
	}{
		{"adaptive", 0},
		{"single-bucket", 1 << 20}, // far above the 420-param test model
		{"tiny", 64 * 8},
		{"per-element", 8},
	}
	for _, p := range partitions {
		t.Run(p.name, func(t *testing.T) {
			var ref *Result
			backends := []struct {
				name    string
				backend string
				comm    string
			}{
				{"sim", BackendSim, ""},
				{"live-overlap", BackendLive, CommOverlap},
				{"live-merged", BackendLive, CommMerged},
			}
			for _, b := range backends {
				cfg := testConfig(t, 21, []int{12, 6, 3}, 300)
				cfg.Backend = b.backend
				cfg.CommMode = b.comm
				cfg.BucketBytes = p.bytes
				r, err := Train(cfg)
				if err != nil {
					t.Fatalf("%s: %v", b.name, err)
				}
				if ref == nil {
					ref = r
					continue
				}
				for i := range ref.FinalWeights {
					if ref.FinalWeights[i] != r.FinalWeights[i] {
						t.Fatalf("%s: weight %d differs from sim", b.name, i)
					}
				}
				for e := range ref.NoiseEstimate {
					if ref.NoiseEstimate[e] != r.NoiseEstimate[e] {
						t.Fatalf("%s: epoch %d noise differs from sim", b.name, e)
					}
				}
			}
		})
	}
}

// TestBucketLenForRule pins the adaptive sizing contract: explicit caps
// pass through untouched, small models always get one bucket (the 256 KB
// floor), bucket count respects the hop budget, and the result is a pure
// function of (bytes, dim, workers) — reproducible across processes.
func TestBucketLenForRule(t *testing.T) {
	// Explicit caps: DDP semantics, byte cap → element count.
	if got := bucketLenFor(64*8, 1_000_000, 4); got != 64 {
		t.Fatalf("explicit 512B cap: bucketLen %d, want 64", got)
	}
	if got := bucketLenFor(3, 100, 2); got != 1 {
		t.Fatalf("sub-element cap: bucketLen %d, want 1", got)
	}
	// Every model under the 256 KB floor gets exactly one bucket — this is
	// what keeps the repo's goldens byte-identical under the adaptive
	// default (all its models are well under 32768 params).
	for _, dim := range []int{1, 420, 13000, 32768} {
		for _, n := range []int{1, 2, 3, 8} {
			if got := bucketLenFor(0, dim, n); got < dim {
				t.Fatalf("dim=%d n=%d: bucketLen %d splits a sub-floor model", dim, n, got)
			}
		}
	}
	// Large models split, but never below the floor and never past the hop
	// budget.
	for _, dim := range []int{1 << 20, 10 << 20} {
		for _, n := range []int{2, 4, 8, 32} {
			bl := bucketLenFor(0, dim, n)
			buckets := (dim + bl - 1) / bl
			if bl*8 < minAutoBucketBytes && buckets > 1 {
				t.Fatalf("dim=%d n=%d: bucket of %d bytes under floor", dim, n, bl*8)
			}
			if hops := buckets * n; hops > autoBucketHopBudget && buckets > 1 {
				t.Fatalf("dim=%d n=%d: %d buckets exceed hop budget", dim, n, buckets)
			}
		}
	}
	// Purity: same inputs, same answer.
	if bucketLenFor(0, 1<<20, 4) != bucketLenFor(0, 1<<20, 4) {
		t.Fatal("bucketLenFor is not deterministic")
	}
}

// TestLiveDeterminism mirrors the repo's chaos goldens: same seed, same
// result — for everything except the wall-clock profile.
func TestLiveDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := testConfig(t, 99, []int{16, 8, 4}, 300)
		cfg.Backend = BackendLive
		cfg.BucketBytes = 128 * 8
		r, err := Train(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("FinalAccuracy %v != %v", a.FinalAccuracy, b.FinalAccuracy)
	}
	for e := range a.BatchSchedule {
		if a.BatchSchedule[e] != b.BatchSchedule[e] {
			t.Fatalf("BatchSchedule[%d] %d != %d", e, a.BatchSchedule[e], b.BatchSchedule[e])
		}
	}
	for i := range a.FinalWeights {
		if a.FinalWeights[i] != b.FinalWeights[i] {
			t.Fatalf("weight %d differs between identical runs", i)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	base := func() Config { return testConfig(t, 1, []int{8, 8}, 128) }
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no-workers", func(c *Config) { c.LocalBatches = nil }},
		{"zero-batch", func(c *Config) { c.LocalBatches = []int{8, 0} }},
		{"short-sizes", func(c *Config) { c.Sizes = []int{8} }},
		{"no-epochs", func(c *Config) { c.Epochs = 0 }},
		{"bad-lr", func(c *Config) { c.LearningRate = -1 }},
		{"no-dataset", func(c *Config) { c.Dataset = nil }},
		{"no-src", func(c *Config) { c.Src = nil }},
		{"bad-backend", func(c *Config) { c.Backend = "cuda" }},
		{"bad-comm-mode", func(c *Config) { c.CommMode = "turbo" }},
		{"merged-with-fault", func(c *Config) {
			c.Backend = BackendLive
			c.CommMode = CommMerged
			c.Fault = &FaultConfig{}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			if _, err := Train(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// TestDefaultBackendIsSim: an empty Backend trains sequentially and says
// so in the result.
func TestDefaultBackendIsSim(t *testing.T) {
	cfg := testConfig(t, 3, []int{16, 16}, 128)
	r, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Backend != BackendSim || r.Profile != nil {
		t.Fatalf("default backend = %q, profile %v", r.Backend, r.Profile)
	}
	if r.FinalAccuracy <= 0.5 {
		t.Fatalf("training failed: accuracy %v", r.FinalAccuracy)
	}
}
