package runtime

import (
	"testing"

	"cannikin/internal/data"
	"cannikin/internal/nn"
	"cannikin/internal/rng"
)

// testConfig builds a small training config the way the public TrainMLP
// wrapper does: one source seeds the dataset, the loader, and the replica
// initialization, in that order.
func testConfig(t *testing.T, seed uint64, batches []int, samples int) Config {
	t.Helper()
	src := rng.New(seed)
	ds, err := data.SyntheticBlobs(samples, 8, 4, 0.6, src)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		LocalBatches: batches,
		Sizes:        []int{8, 32, 4},
		Epochs:       3,
		LearningRate: 0.05,
		Momentum:     0.9,
		Dataset:      ds,
		Src:          src,
	}
}

// TestLiveMatchesSequentialBitwise is the tentpole differential test: the
// concurrent live engine and the sequential reference must produce
// bitwise-identical weights and GNS trajectories for the same seed —
// across equal and unequal local batches, partial final batches, batch
// growth with AdaScale, and several bucket sizes.
func TestLiveMatchesSequentialBitwise(t *testing.T) {
	cases := []struct {
		name    string
		batches []int
		samples int
		mutate  func(*Config)
	}{
		{"two-equal", []int{16, 16}, 256, nil},
		{"unequal", []int{12, 6, 3}, 300, nil},
		{"partial-batches", []int{16, 8}, 300, nil},
		{"single-worker", []int{32}, 256, nil},
		{"growth-adascale", []int{8, 4}, 240, func(c *Config) {
			c.Epochs = 4
			c.GrowthEpoch = 2
			c.Scaler = nn.AdaScale{}
		}},
		{"tiny-buckets", []int{10, 5}, 300, func(c *Config) {
			c.BucketBytes = 64 * 8 // 64-element buckets: many per step
		}},
		{"naive-gns", []int{16, 8}, 300, func(c *Config) { c.NaiveGNS = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := testConfig(t, 42, tc.batches, tc.samples)
			if tc.mutate != nil {
				tc.mutate(&seq)
			}
			live := testConfig(t, 42, tc.batches, tc.samples)
			if tc.mutate != nil {
				tc.mutate(&live)
			}
			seq.Backend = BackendSim
			live.Backend = BackendLive

			rs, err := Train(seq)
			if err != nil {
				t.Fatal(err)
			}
			rl, err := Train(live)
			if err != nil {
				t.Fatal(err)
			}

			if len(rs.FinalWeights) == 0 || len(rs.FinalWeights) != len(rl.FinalWeights) {
				t.Fatalf("weight lengths %d vs %d", len(rs.FinalWeights), len(rl.FinalWeights))
			}
			for i := range rs.FinalWeights {
				if rs.FinalWeights[i] != rl.FinalWeights[i] {
					t.Fatalf("weight %d: sim %v != live %v", i, rs.FinalWeights[i], rl.FinalWeights[i])
				}
			}
			for e := range rs.EpochLoss {
				if rs.EpochLoss[e] != rl.EpochLoss[e] {
					t.Fatalf("epoch %d loss: sim %v != live %v", e, rs.EpochLoss[e], rl.EpochLoss[e])
				}
				if rs.NoiseEstimate[e] != rl.NoiseEstimate[e] {
					t.Fatalf("epoch %d noise: sim %v != live %v", e, rs.NoiseEstimate[e], rl.NoiseEstimate[e])
				}
				if rs.BatchSchedule[e] != rl.BatchSchedule[e] || rs.LRSchedule[e] != rl.LRSchedule[e] {
					t.Fatalf("epoch %d schedule: sim (%d, %v) != live (%d, %v)", e,
						rs.BatchSchedule[e], rs.LRSchedule[e], rl.BatchSchedule[e], rl.LRSchedule[e])
				}
			}
			if rs.FinalAccuracy != rl.FinalAccuracy || rs.Steps != rl.Steps {
				t.Fatalf("sim (acc %v, steps %d) != live (acc %v, steps %d)",
					rs.FinalAccuracy, rs.Steps, rl.FinalAccuracy, rl.Steps)
			}
			if rs.Profile != nil {
				t.Fatal("sim backend emitted a profile")
			}
			if rl.Profile == nil || len(rl.Profile.Samples) != rl.Steps*rl.Workers {
				t.Fatalf("live profile has %d samples, want %d",
					len(rl.Profile.Samples), rl.Steps*rl.Workers)
			}
		})
	}
}

// TestBucketSizeDoesNotChangeWeights: the bucket split only partitions the
// ring segments; the per-bucket summation order is unchanged, so every
// bucket size must give the same bits.
func TestBucketSizeDoesNotChangeWeights(t *testing.T) {
	var ref []float64
	for _, bytes := range []int{0, 64 * 8, 1000 * 8, 7 * 8} {
		cfg := testConfig(t, 7, []int{12, 6}, 240)
		cfg.Backend = BackendLive
		cfg.BucketBytes = bytes
		r, err := Train(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r.FinalWeights
			continue
		}
		for i := range ref {
			if ref[i] != r.FinalWeights[i] {
				t.Fatalf("bucketBytes=%d: weight %d differs", bytes, i)
			}
		}
	}
}

// TestLiveDeterminism mirrors the repo's chaos goldens: same seed, same
// result — for everything except the wall-clock profile.
func TestLiveDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := testConfig(t, 99, []int{16, 8, 4}, 300)
		cfg.Backend = BackendLive
		cfg.BucketBytes = 128 * 8
		r, err := Train(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("FinalAccuracy %v != %v", a.FinalAccuracy, b.FinalAccuracy)
	}
	for e := range a.BatchSchedule {
		if a.BatchSchedule[e] != b.BatchSchedule[e] {
			t.Fatalf("BatchSchedule[%d] %d != %d", e, a.BatchSchedule[e], b.BatchSchedule[e])
		}
	}
	for i := range a.FinalWeights {
		if a.FinalWeights[i] != b.FinalWeights[i] {
			t.Fatalf("weight %d differs between identical runs", i)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	base := func() Config { return testConfig(t, 1, []int{8, 8}, 128) }
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no-workers", func(c *Config) { c.LocalBatches = nil }},
		{"zero-batch", func(c *Config) { c.LocalBatches = []int{8, 0} }},
		{"short-sizes", func(c *Config) { c.Sizes = []int{8} }},
		{"no-epochs", func(c *Config) { c.Epochs = 0 }},
		{"bad-lr", func(c *Config) { c.LearningRate = -1 }},
		{"no-dataset", func(c *Config) { c.Dataset = nil }},
		{"no-src", func(c *Config) { c.Src = nil }},
		{"bad-backend", func(c *Config) { c.Backend = "cuda" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			if _, err := Train(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// TestDefaultBackendIsSim: an empty Backend trains sequentially and says
// so in the result.
func TestDefaultBackendIsSim(t *testing.T) {
	cfg := testConfig(t, 3, []int{16, 16}, 128)
	r, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Backend != BackendSim || r.Profile != nil {
		t.Fatalf("default backend = %q, profile %v", r.Backend, r.Profile)
	}
	if r.FinalAccuracy <= 0.5 {
		t.Fatalf("training failed: accuracy %v", r.FinalAccuracy)
	}
}
