package runtime

import (
	"fmt"
	"testing"

	"cannikin/internal/nn"
	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

// TestLiveSteadyStateStepAllocsZero is the perf-regression gate for the
// live engine's hot loop: once workspaces, ring scratch, and optimizer
// state are warm, a full synchronized step — forward, loss, streaming
// bucketed backprop, ring all-reduce, optimizer — must perform zero heap
// allocations on the compute path, with both serial and sharded kernels.
// The profile trace is append-only by design, so its storage is
// pre-reserved here rather than counted against the step.
func TestLiveSteadyStateStepAllocsZero(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			tensor.SetParallelism(shards)
			defer tensor.SetParallelism(1)

			const nWorkers, batch = 2, 64
			sizes := []int{32, 128, 64, 8}
			src := rng.New(7)
			replicas := make([]*nn.Network, nWorkers)
			opts := make([]*nn.SGD, nWorkers)
			for i := range replicas {
				replicas[i] = nn.NewMLP(sizes, src.Split(fmt.Sprintf("init-%d", i)))
				opts[i] = nn.NewSGD(0.9, 0)
			}
			exec := newLiveExec(replicas, opts, 1024, nil) // 13k params: multi-bucket streaming
			defer exec.close()

			xs := make([]*tensor.T, nWorkers)
			labels := make([][]int, nWorkers)
			for i := range xs {
				xs[i] = tensor.Randn(batch, sizes[0], 1, src)
				labels[i] = make([]int, batch)
				for j := range labels[i] {
					labels[i][j] = j % sizes[len(sizes)-1]
				}
			}
			stepWeights := []float64{0.5, 0.5}

			stepNo := 0
			step := func() {
				if _, err := exec.step(0, stepNo, xs, labels, stepWeights, 0.01); err != nil {
					t.Fatal(err)
				}
				stepNo++
			}
			for i := 0; i < 3; i++ {
				step() // warm workspaces, ring scratch, optimizer state
			}
			reserved := make([]Sample, len(exec.prof.Samples), len(exec.prof.Samples)+nWorkers*200)
			copy(reserved, exec.prof.Samples)
			exec.prof.Samples = reserved

			if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
				t.Fatalf("steady-state live step allocates %v times, want 0", allocs)
			}
		})
	}
}
