package runtime

import (
	"fmt"
	"testing"
	"time"

	"cannikin/internal/allreduce"
	"cannikin/internal/faultinject"
	"cannikin/internal/nn"
	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

func allocTestWorkers(t *testing.T, nWorkers, batch int, sizes []int) ([]*nn.Network, []*nn.SGD, []*tensor.T, [][]int) {
	t.Helper()
	src := rng.New(7)
	replicas := make([]*nn.Network, nWorkers)
	opts := make([]*nn.SGD, nWorkers)
	for i := range replicas {
		replicas[i] = nn.NewMLP(sizes, src.Split(fmt.Sprintf("init-%d", i)))
		opts[i] = nn.NewSGD(0.9, 0)
	}
	xs := make([]*tensor.T, nWorkers)
	labels := make([][]int, nWorkers)
	for i := range xs {
		xs[i] = tensor.Randn(batch, sizes[0], 1, src)
		labels[i] = make([]int, batch)
		for j := range labels[i] {
			labels[i][j] = j % sizes[len(sizes)-1]
		}
	}
	return replicas, opts, xs, labels
}

// reserveProfile swaps the executor's append-only profile trace for one with
// pre-reserved capacity, so profile growth is not counted against the step.
func reserveProfile(exec *liveExec, extra int) {
	reserved := make([]Sample, len(exec.prof.Samples), len(exec.prof.Samples)+extra)
	copy(reserved, exec.prof.Samples)
	exec.prof.Samples = reserved
}

// TestLiveSteadyStateStepAllocsZero is the perf-regression gate for the
// live engine's hot loop: once workspaces, ring scratch, and optimizer
// state are warm, a full synchronized step — forward, loss, streaming
// bucketed backprop, ring all-reduce, optimizer — must perform zero heap
// allocations on the compute path, with both serial and sharded kernels
// and in both comm modes (overlapped pair and merged single goroutine).
// The profile trace is append-only by design, so its storage is
// pre-reserved here rather than counted against the step.
func TestLiveSteadyStateStepAllocsZero(t *testing.T) {
	for _, shards := range []int{1, 2} {
		for _, merged := range []bool{false, true} {
			mode := "overlap"
			if merged {
				mode = "merged"
			}
			t.Run(fmt.Sprintf("shards%d/%s", shards, mode), func(t *testing.T) {
				tensor.SetParallelism(shards)
				defer tensor.SetParallelism(1)

				const nWorkers, batch = 2, 64
				sizes := []int{32, 128, 64, 8}
				replicas, opts, xs, labels := allocTestWorkers(t, nWorkers, batch, sizes)
				algs, err := bucketAlgorithms("", 0, 0, replicas[0].NumParams(), 1024, nWorkers)
				if err != nil {
					t.Fatal(err)
				}
				exec := newLiveExec(replicas, opts, 1024, algs, nil, merged) // 13k params: multi-bucket streaming
				defer exec.close()
				stepWeights := []float64{0.5, 0.5}

				stepNo := 0
				step := func() {
					if _, err := exec.step(0, stepNo, xs, labels, stepWeights, 0.01); err != nil {
						t.Fatal(err)
					}
					stepNo++
				}
				for i := 0; i < 3; i++ {
					step() // warm workspaces, ring scratch, optimizer state
				}
				reserveProfile(exec, nWorkers*200)

				if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
					t.Fatalf("steady-state live step allocates %v times, want 0", allocs)
				}
			})
		}
	}
}

// TestGuardedSteadyStateStepAllocsZero extends the gate to the guarded
// (fault-tolerant) path with an empty fault schedule: per-hop deadline
// timers, the two-phase commit, and the driver's result collection must all
// reuse their state. Before the timer/result hoisting this path allocated
// several times per step (one runtime timer per guarded hop, a fresh
// results+responded pair and a collection timer per step), which a long
// fault-tolerant run pays as steady GC pressure.
func TestGuardedSteadyStateStepAllocsZero(t *testing.T) {
	const nWorkers, batch = 2, 64
	sizes := []int{32, 128, 64, 8}
	replicas, opts, xs, labels := allocTestWorkers(t, nWorkers, batch, sizes)

	inj, err := faultinject.NewInjector(faultinject.Schedule{}, nWorkers)
	if err != nil {
		t.Fatal(err)
	}
	ft := &faultTolerance{
		inj:         inj,
		policy:      allreduce.RetryPolicy{}.WithDefaults(),
		stepTimeout: 2 * time.Second,
	}
	algs, err := bucketAlgorithms("", 0, 0, replicas[0].NumParams(), 1024, nWorkers)
	if err != nil {
		t.Fatal(err)
	}
	exec := newLiveExec(replicas, opts, 1024, algs, ft, false)
	defer exec.close()
	stepWeights := []float64{0.5, 0.5}

	stepNo := 0
	step := func() {
		sample, records, fail, err := exec.stepGuarded(0, stepNo, xs, labels, stepWeights, 0.01)
		if err != nil || fail != nil || len(records) != 0 {
			t.Fatalf("guarded step: sample=%v records=%v fail=%v err=%v", sample, records, fail, err)
		}
		stepNo++
	}
	for i := 0; i < 3; i++ {
		step()
	}
	reserveProfile(exec, nWorkers*200)

	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Fatalf("steady-state guarded step allocates %v times, want 0", allocs)
	}
}
