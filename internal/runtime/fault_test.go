package runtime

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cannikin/internal/data"
	"cannikin/internal/faultinject"
	"cannikin/internal/rng"
)

// watchdog panics the process if the test runs past d — fault-path tests
// exercise timeout machinery, and a missed deadline must fail loudly
// instead of hanging the suite. Call the returned stop on success.
func watchdog(t *testing.T, d time.Duration) func() {
	t.Helper()
	timer := time.AfterFunc(d, func() {
		panic(fmt.Sprintf("%s exceeded its %v watchdog deadline", t.Name(), d))
	})
	return func() { timer.Stop() }
}

// fastFault is a FaultConfig tuned for test speed: tight hop deadlines,
// a sub-second step deadline, still generous against race-detector
// slowdowns of the actual compute.
func fastFault(schedule faultinject.Schedule) *FaultConfig {
	return &FaultConfig{
		Schedule:    schedule,
		HopTimeout:  25 * time.Millisecond,
		Retries:     3,
		MaxTimeout:  200 * time.Millisecond,
		StepTimeout: 1500 * time.Millisecond,
	}
}

// faultConfig is a small 3-worker live run; seed varies the whole
// trajectory.
func faultConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	src := rng.New(seed)
	ds, err := data.SyntheticBlobs(240, 16, 8, 0.6, src)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Backend:      BackendLive,
		LocalBatches: []int{8, 8, 8},
		Sizes:        []int{16, 32, 8},
		Epochs:       3,
		LearningRate: 0.05,
		Momentum:     0.9,
		BucketBytes:  128 * 8,
		Dataset:      ds,
		Src:          src,
	}
}

func equalWeights(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFaultConfigValidate pins the config-level contracts.
func TestFaultConfigValidate(t *testing.T) {
	cfg := faultConfig(t, 1)
	cfg.Backend = BackendSim
	cfg.Fault = &FaultConfig{}
	if _, err := Train(cfg); err == nil {
		t.Fatal("sim backend accepted a fault config")
	}
	cfg = faultConfig(t, 1)
	cfg.Fault = &FaultConfig{Replan: "chaotic"}
	if _, err := Train(cfg); err == nil {
		t.Fatal("unknown replan policy accepted")
	}
	cfg = faultConfig(t, 1)
	cfg.Fault = &FaultConfig{Schedule: faultinject.Schedule{Events: []faultinject.Event{
		{Step: 0, Worker: 9, Kind: faultinject.KindKillWorker},
	}}}
	if _, err := Train(cfg); err == nil {
		t.Fatal("schedule referencing worker 9 of 3 accepted")
	}
	cfg = faultConfig(t, 1)
	cfg.InitWeights = []float64{1, 2, 3}
	if _, err := Train(cfg); err == nil {
		t.Fatal("wrong-dimension InitWeights accepted")
	}
}

// TestGuardedFaultFreeMatchesBaseline: arming the fault-tolerance
// machinery with an empty schedule must not change a single bit of the
// trained weights — the guarded step performs the identical arithmetic,
// only wrapped in deadlines and the two-phase commit.
func TestGuardedFaultFreeMatchesBaseline(t *testing.T) {
	defer watchdog(t, 2*time.Minute)()
	base, err := Train(faultConfig(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultConfig(t, 7)
	cfg.Fault = fastFault(faultinject.Schedule{})
	guarded, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !equalWeights(base.FinalWeights, guarded.FinalWeights) {
		t.Fatal("armed-but-idle fault tolerance changed the trained weights")
	}
	if len(guarded.Evictions) != 0 || len(guarded.FaultEvents) != 0 {
		t.Fatalf("fault-free run reported evictions %v / faults %v", guarded.Evictions, guarded.FaultEvents)
	}
	if guarded.Steps != base.Steps {
		t.Fatalf("guarded run took %d steps, baseline %d", guarded.Steps, base.Steps)
	}
}

// TestTransientFaultsTolerated: stalls, delays, and drops that stay within
// the retry budgets must be absorbed — bitwise-identical weights to the
// undisturbed run, the consumed faults reported, nobody evicted.
func TestTransientFaultsTolerated(t *testing.T) {
	defer watchdog(t, 2*time.Minute)()
	base, err := Train(faultConfig(t, 13))
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultConfig(t, 13)
	cfg.Fault = fastFault(faultinject.Schedule{Events: []faultinject.Event{
		{Step: 2, Worker: 0, Kind: faultinject.KindStallCompute, Delay: 10 * time.Millisecond, Steps: 2},
		{Step: 4, Worker: 1, Kind: faultinject.KindDelayMsg, Delay: 8 * time.Millisecond},
		{Step: 6, Worker: 2, Kind: faultinject.KindDropMsg, Count: 1},
	}})
	faulty, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty.Evictions) != 0 {
		t.Fatalf("transient faults caused evictions: %+v", faulty.Evictions)
	}
	if !equalWeights(base.FinalWeights, faulty.FinalWeights) {
		t.Fatal("transient in-budget faults changed the trained weights")
	}
	// 2 stall steps + 1 delay + 1 drop = 4 consumed fault records.
	if len(faulty.FaultEvents) != 4 {
		t.Fatalf("FaultEvents = %+v, want 4 records", faulty.FaultEvents)
	}
	wantWorkers := map[int]bool{0: true, 1: true, 2: true}
	for _, f := range faulty.FaultEvents {
		if !wantWorkers[f.Worker] {
			t.Fatalf("fault record names unknown worker: %+v", f)
		}
		if f.String() == "" {
			t.Fatal("empty fault record rendering")
		}
	}
}

// TestPermanentStallEvicts is the acceptance scenario: a worker that
// stalls forever mid-training is detected by the step deadline, evicted,
// and the run completes on the survivors instead of deadlocking.
func TestPermanentStallEvicts(t *testing.T) {
	defer watchdog(t, 2*time.Minute)()
	cfg := faultConfig(t, 19)
	cfg.Fault = fastFault(faultinject.Schedule{Events: []faultinject.Event{
		{Step: 12, Worker: 1, Kind: faultinject.KindStallCompute, Delay: time.Hour},
	}})
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions = %+v, want exactly one", res.Evictions)
	}
	ev := res.Evictions[0]
	if len(ev.Workers) != 1 || ev.Workers[0] != 1 {
		t.Fatalf("evicted %v, want worker 1", ev.Workers)
	}
	if ev.Epoch != 1 || ev.Step != 12 {
		t.Fatalf("eviction at epoch %d step %d, want epoch 1 step 12", ev.Epoch, ev.Step)
	}
	if len(ev.Survivors) != 2 || ev.Survivors[0] != 0 || ev.Survivors[1] != 2 {
		t.Fatalf("survivors %v, want [0 2]", ev.Survivors)
	}
	if len(ev.SurvivorBatches) != 2 || len(ev.Checkpoint) == 0 {
		t.Fatalf("incomplete eviction record: %+v", ev)
	}
	if len(res.EpochLoss) != cfg.Epochs {
		t.Fatalf("run recorded %d epochs, want %d", len(res.EpochLoss), cfg.Epochs)
	}
	if res.FinalWeights == nil {
		t.Fatal("no final weights after recovery")
	}
	killed := false
	for _, f := range res.FaultEvents {
		if f.Worker == 1 && f.Stall == time.Hour {
			killed = true
		}
	}
	if !killed {
		t.Fatalf("permanent stall not reported in FaultEvents: %+v", res.FaultEvents)
	}
}

// TestKillWorkerEvicts: a killed worker (stops responding entirely) is
// detected and evicted the same way.
func TestKillWorkerEvicts(t *testing.T) {
	defer watchdog(t, 2*time.Minute)()
	cfg := faultConfig(t, 23)
	cfg.Fault = fastFault(faultinject.Schedule{Events: []faultinject.Event{
		{Step: 5, Worker: 2, Kind: faultinject.KindKillWorker},
	}})
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evictions) != 1 || res.Evictions[0].Workers[0] != 2 {
		t.Fatalf("evictions = %+v, want worker 2 evicted once", res.Evictions)
	}
	if res.Evictions[0].Reason == "" {
		t.Fatal("eviction without a reason")
	}
	if len(res.EpochLoss) != cfg.Epochs || res.FinalWeights == nil {
		t.Fatal("run did not complete after the kill")
	}
}

// TestDifferentialRecovery proves the recovery semantics exactly: after an
// eviction, the remaining trajectory is bitwise-identical to a fresh
// fault-free run launched from the checkpointed weights on the survivor
// cluster. Recovery is checkpoint-restart — nothing about having lived
// through the fault leaks into the survivors' arithmetic.
func TestDifferentialRecovery(t *testing.T) {
	defer watchdog(t, 3*time.Minute)()
	const seed = 31
	cfg := faultConfig(t, seed)
	cfg.Fault = fastFault(faultinject.Schedule{Events: []faultinject.Event{
		{Step: 12, Worker: 1, Kind: faultinject.KindKillWorker},
	}})
	faulty, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty.Evictions) != 1 {
		t.Fatalf("evictions = %+v, want one", faulty.Evictions)
	}
	ev := faulty.Evictions[0]

	// A fresh run from the checkpoint: survivor batches, the eviction's
	// recovery randomness stream, the remaining epochs, no fault machinery.
	fresh := faultConfig(t, seed)
	fresh.LocalBatches = ev.SurvivorBatches
	fresh.InitWeights = ev.Checkpoint
	fresh.Epochs = cfg.Epochs - ev.Epoch
	fresh.Src = rng.New(seed).Split("recovery-1")
	freshRes, err := Train(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !equalWeights(faulty.FinalWeights, freshRes.FinalWeights) {
		t.Fatal("post-eviction trajectory diverges from a fresh run off the checkpoint")
	}
	// The per-epoch curves of the recovered epochs must match too.
	tail := faulty.EpochLoss[ev.Epoch:]
	if len(tail) != len(freshRes.EpochLoss) {
		t.Fatalf("recovered %d epochs, fresh run has %d", len(tail), len(freshRes.EpochLoss))
	}
	for i := range tail {
		if tail[i] != freshRes.EpochLoss[i] {
			t.Fatalf("epoch %d loss %v != fresh %v", ev.Epoch+i, tail[i], freshRes.EpochLoss[i])
		}
	}
}

// TestReplanOptPerf: with the OptPerf replan policy the eviction either
// adopts a re-optimized survivor plan or falls back deterministically; the
// run completes either way and the report says which happened.
func TestReplanOptPerf(t *testing.T) {
	defer watchdog(t, 2*time.Minute)()
	cfg := faultConfig(t, 37)
	f := fastFault(faultinject.Schedule{Events: []faultinject.Event{
		{Step: 15, Worker: 0, Kind: faultinject.KindKillWorker},
	}})
	f.Replan = ReplanOptPerf
	cfg.Fault = f
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions = %+v", res.Evictions)
	}
	ev := res.Evictions[0]
	if len(ev.SurvivorBatches) != len(ev.Survivors) {
		t.Fatalf("batch plan %v does not cover survivors %v", ev.SurvivorBatches, ev.Survivors)
	}
	for _, b := range ev.SurvivorBatches {
		if b < 1 {
			t.Fatalf("replanned batch %d", b)
		}
	}
	if res.FinalWeights == nil {
		t.Fatal("run did not complete")
	}
	t.Logf("replanned=%v batches=%v", ev.Replanned, ev.SurvivorBatches)
}

// TestAllWorkersEvicted: killing the only worker must surface
// ErrNoSurvivors instead of deadlocking or fabricating a result.
func TestAllWorkersEvicted(t *testing.T) {
	defer watchdog(t, time.Minute)()
	src := rng.New(41)
	ds, err := data.SyntheticBlobs(64, 8, 4, 0.6, src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Backend:      BackendLive,
		LocalBatches: []int{8},
		Sizes:        []int{8, 16, 4},
		Epochs:       2,
		LearningRate: 0.05,
		Momentum:     0.9,
		Dataset:      ds,
		Src:          src,
		Fault: fastFault(faultinject.Schedule{Events: []faultinject.Event{
			{Step: 3, Worker: 0, Kind: faultinject.KindKillWorker},
		}}),
	}
	if _, err := Train(cfg); !errors.Is(err, ErrNoSurvivors) {
		t.Fatalf("err = %v, want ErrNoSurvivors", err)
	}
}

// TestInitWeightsResume: InitWeights on a fault-free run must seed every
// replica directly — resuming a finished run from its own final weights
// and training zero-effect steps is not required, but determinism is:
// two resumes from the same vector are identical.
func TestInitWeightsResume(t *testing.T) {
	defer watchdog(t, 2*time.Minute)()
	first, err := Train(faultConfig(t, 43))
	if err != nil {
		t.Fatal(err)
	}
	resume := faultConfig(t, 43)
	resume.InitWeights = first.FinalWeights
	resume.Epochs = 1
	a, err := Train(resume)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(resume)
	if err != nil {
		t.Fatal(err)
	}
	if !equalWeights(a.FinalWeights, b.FinalWeights) {
		t.Fatal("two resumes from the same weights diverged")
	}
	if equalWeights(a.FinalWeights, first.FinalWeights) {
		t.Fatal("resumed training did not train")
	}
}
