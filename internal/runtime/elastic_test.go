package runtime

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cannikin/internal/data"
	"cannikin/internal/faultinject"
	"cannikin/internal/goodput"
	"cannikin/internal/rng"
)

// joinConfig is faultConfig with one hot-join scheduled at epoch 1 and a
// selectable backend/comm mode.
func joinConfig(t *testing.T, seed uint64, backend, commMode string) Config {
	t.Helper()
	cfg := faultConfig(t, seed)
	cfg.Backend = backend
	cfg.CommMode = commMode
	cfg.Joins = []Join{{Epoch: 1, Batch: 8}}
	return cfg
}

// TestJoinConfigValidate pins the join schedule's config-level contracts.
func TestJoinConfigValidate(t *testing.T) {
	cfg := faultConfig(t, 1)
	cfg.Joins = []Join{{Epoch: 0, Batch: 8}}
	if _, err := Train(cfg); err == nil {
		t.Fatal("join at epoch 0 accepted")
	}
	cfg = faultConfig(t, 1)
	cfg.Joins = []Join{{Epoch: cfg.Epochs, Batch: 8}}
	if _, err := Train(cfg); err == nil {
		t.Fatal("join at the final-epoch boundary accepted")
	}
	cfg = faultConfig(t, 1)
	cfg.Joins = []Join{{Epoch: 2, Batch: 8}, {Epoch: 1, Batch: 8}}
	if _, err := Train(cfg); err == nil {
		t.Fatal("decreasing join epochs accepted")
	}
	cfg = faultConfig(t, 1)
	cfg.Joins = []Join{{Epoch: 1, Batch: 0}}
	if _, err := Train(cfg); err == nil {
		t.Fatal("join with batch 0 accepted")
	}
	cfg = faultConfig(t, 1)
	cfg.Joins = []Join{{Epoch: 1, Batch: 8, Replan: "chaotic"}}
	if _, err := Train(cfg); err == nil {
		t.Fatal("unknown join replan policy accepted")
	}
	cfg = faultConfig(t, 1)
	cfg.GrowthEpoch = 2
	cfg.Joins = []Join{{Epoch: 2, Batch: 8}}
	if _, err := Train(cfg); err == nil {
		t.Fatal("join colliding with the growth epoch accepted")
	}
	// The fault rank space covers the initial cluster plus every joiner:
	// worker 3 of a 3-worker run with one join is addressable, worker 4 is
	// not.
	cfg = joinConfig(t, 1, BackendLive, "")
	cfg.Fault = fastFault(faultinject.Schedule{Events: []faultinject.Event{
		{Step: 25, Worker: 4, Kind: faultinject.KindKillWorker},
	}})
	if _, err := Train(cfg); err == nil {
		t.Fatal("schedule referencing worker 4 of 3+1 accepted")
	}
}

// TestJoinGrowsCluster checks the committed join's report and that the
// elastically-grown trajectory is bitwise-identical across sim, live, and
// merged execution — the join commit is part of the shared driver, not of
// any one engine.
func TestJoinGrowsCluster(t *testing.T) {
	defer watchdog(t, 3*time.Minute)()
	const seed = 51
	results := make(map[string]*Result)
	for _, bk := range []struct{ name, backend, comm string }{
		{"sim", BackendSim, ""},
		{"live", BackendLive, CommOverlap},
		{"merged", BackendLive, CommMerged},
	} {
		res, err := Train(joinConfig(t, seed, bk.backend, bk.comm))
		if err != nil {
			t.Fatalf("%s: %v", bk.name, err)
		}
		results[bk.name] = res
	}
	res := results["sim"]
	if len(res.Joins) != 1 {
		t.Fatalf("joins = %+v, want exactly one", res.Joins)
	}
	jr := res.Joins[0]
	if jr.Epoch != 1 || jr.Worker != 3 || jr.Batch != 8 {
		t.Fatalf("join record %+v, want epoch 1 worker 3 batch 8", jr)
	}
	if len(jr.Batches) != 4 {
		t.Fatalf("grown plan %v, want 4 workers", jr.Batches)
	}
	if len(jr.Checkpoint) == 0 || len(jr.Velocity) != len(jr.Checkpoint) {
		t.Fatalf("join checkpoint %d elems, velocity %d", len(jr.Checkpoint), len(jr.Velocity))
	}
	if jr.PerSample <= 0 {
		t.Fatalf("probe per-sample time %v, want > 0", jr.PerSample)
	}
	if jr.Reason != "scheduled" {
		t.Fatalf("join reason %q", jr.Reason)
	}
	if !equalWeights(results["sim"].FinalWeights, results["live"].FinalWeights) {
		t.Fatal("sim and live diverge on the elastic run")
	}
	if !equalWeights(results["sim"].FinalWeights, results["merged"].FinalWeights) {
		t.Fatal("sim and merged diverge on the elastic run")
	}
	if !equalWeights(results["sim"].FinalVelocity, results["live"].FinalVelocity) {
		t.Fatal("sim and live diverge on the final optimizer state")
	}
}

// TestDifferentialJoin proves the join semantics exactly (property (b) of
// the elasticity contract): a cluster that hot-joins a worker at epoch e
// is bitwise-identical — weights and per-epoch losses — to a fresh run
// started from the epoch-e checkpoint (weights AND velocity) with the
// grown cluster. It also proves the velocity handoff is load-bearing: a
// fresh run without the checkpointed momentum diverges.
func TestDifferentialJoin(t *testing.T) {
	for _, bk := range []struct{ name, backend, comm string }{
		{"sim", BackendSim, ""},
		{"live", BackendLive, CommOverlap},
		{"merged", BackendLive, CommMerged},
	} {
		t.Run(bk.name, func(t *testing.T) {
			defer watchdog(t, 3*time.Minute)()
			const seed = 53
			cfg := joinConfig(t, seed, bk.backend, bk.comm)
			joined, err := Train(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(joined.Joins) != 1 {
				t.Fatalf("joins = %+v", joined.Joins)
			}
			jr := joined.Joins[0]

			fresh := joinConfig(t, seed, bk.backend, bk.comm)
			fresh.Joins = nil
			fresh.LocalBatches = jr.Batches
			fresh.InitWeights = jr.Checkpoint
			fresh.InitVelocity = jr.Velocity
			fresh.Epochs = cfg.Epochs - jr.Epoch
			fresh.Src = rng.New(seed).Split("join-1")
			freshRes, err := Train(fresh)
			if err != nil {
				t.Fatal(err)
			}
			if !equalWeights(joined.FinalWeights, freshRes.FinalWeights) {
				t.Fatal("post-join trajectory diverges from a fresh run off the checkpoint")
			}
			tail := joined.EpochLoss[jr.Epoch:]
			if len(tail) != len(freshRes.EpochLoss) {
				t.Fatalf("joined %d post-join epochs, fresh run has %d", len(tail), len(freshRes.EpochLoss))
			}
			for i := range tail {
				if tail[i] != freshRes.EpochLoss[i] {
					t.Fatalf("epoch %d loss %v != fresh %v", jr.Epoch+i, tail[i], freshRes.EpochLoss[i])
				}
			}

			// Momentum is replicated optimizer state: dropping it from the
			// handoff must change the trajectory, or the checkpoint carries
			// dead weight.
			cold := fresh
			cold.InitVelocity = nil
			coldRes, err := Train(cold)
			if err != nil {
				t.Fatal(err)
			}
			if equalWeights(joined.FinalWeights, coldRes.FinalWeights) {
				t.Fatal("post-join trajectory matches a zero-momentum restart: the velocity handoff is vacuous")
			}
		})
	}
}

// TestJoinPrefixContinuity proves the two-phase commit checkpoints exactly
// the epoch-boundary state: the join's recorded weights and velocity equal
// the Final{Weights,Velocity} of the same run stopped at the join epoch.
func TestJoinPrefixContinuity(t *testing.T) {
	defer watchdog(t, 2*time.Minute)()
	const seed = 59
	joined, err := Train(joinConfig(t, seed, BackendSim, ""))
	if err != nil {
		t.Fatal(err)
	}
	jr := joined.Joins[0]
	prefix := faultConfig(t, seed)
	prefix.Backend = BackendSim
	prefix.Epochs = jr.Epoch
	prefixRes, err := Train(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if !equalWeights(jr.Checkpoint, prefixRes.FinalWeights) {
		t.Fatal("join checkpoint differs from the prefix run's final weights")
	}
	if !equalWeights(jr.Velocity, prefixRes.FinalVelocity) {
		t.Fatal("join velocity differs from the prefix run's final momentum")
	}
	nonZero := false
	for _, v := range jr.Velocity {
		if v != 0 {
			nonZero = true
			break
		}
	}
	if !nonZero {
		t.Fatal("join velocity is all zeros after a full epoch of momentum SGD")
	}
}

// TestDifferentialJoinThenEvict proves property (a) of the elasticity
// contract: when the joiner is later killed, the survivors are exactly the
// original cluster, and the post-eviction trajectory is bitwise-identical
// to a fresh run launched from the eviction checkpoint on the original
// membership — join then evict returns to the original-cluster trajectory.
func TestDifferentialJoinThenEvict(t *testing.T) {
	defer watchdog(t, 3*time.Minute)()
	const seed = 61
	cfg := joinConfig(t, seed, BackendLive, "")
	// Worker 3 is the joiner: it exists from epoch 1 (step 10) on, and the
	// kill at step 15 removes it again.
	cfg.Fault = fastFault(faultinject.Schedule{Events: []faultinject.Event{
		{Step: 15, Worker: 3, Kind: faultinject.KindKillWorker},
	}})
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Joins) != 1 || len(res.Evictions) != 1 {
		t.Fatalf("joins %+v evictions %+v, want one of each", res.Joins, res.Evictions)
	}
	ev := res.Evictions[0]
	if len(ev.Workers) != 1 || ev.Workers[0] != 3 {
		t.Fatalf("evicted %v, want the joiner (worker 3)", ev.Workers)
	}
	if len(ev.Survivors) != 3 || ev.Survivors[0] != 0 || ev.Survivors[1] != 1 || ev.Survivors[2] != 2 {
		t.Fatalf("survivors %v, want the original cluster [0 1 2]", ev.Survivors)
	}

	fresh := faultConfig(t, seed)
	fresh.LocalBatches = ev.SurvivorBatches
	fresh.InitWeights = ev.Checkpoint
	fresh.Epochs = cfg.Epochs - ev.Epoch
	fresh.Src = rng.New(seed).Split("recovery-1")
	freshRes, err := Train(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !equalWeights(res.FinalWeights, freshRes.FinalWeights) {
		t.Fatal("join-then-evict trajectory diverges from the original-cluster run off the checkpoint")
	}
	tail := res.EpochLoss[ev.Epoch:]
	for i := range tail {
		if tail[i] != freshRes.EpochLoss[i] {
			t.Fatalf("epoch %d loss %v != fresh %v", ev.Epoch+i, tail[i], freshRes.EpochLoss[i])
		}
	}
}

// TestJoinReplanOptPerf: a join under the OptPerf replan policy either
// adopts a re-optimized grown plan or falls back deterministically to
// keep; the run completes and reports which happened.
func TestJoinReplanOptPerf(t *testing.T) {
	defer watchdog(t, 2*time.Minute)()
	cfg := joinConfig(t, 67, BackendLive, "")
	cfg.Joins[0].Replan = ReplanOptPerf
	cfg.Joins[0].Epoch = 2 // two profiled epochs before the solve
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Joins) != 1 {
		t.Fatalf("joins = %+v", res.Joins)
	}
	jr := res.Joins[0]
	if len(jr.Batches) != 4 {
		t.Fatalf("grown plan %v", jr.Batches)
	}
	total := 0
	for _, b := range jr.Batches {
		if b < 1 {
			t.Fatalf("replanned batch %d in %v", b, jr.Batches)
		}
		total += b
	}
	if total != 8+8+8+8 {
		t.Fatalf("replanned total %d, want the grown total 32", total)
	}
	if res.FinalWeights == nil {
		t.Fatal("run did not complete")
	}
	t.Logf("replanned=%v batches=%v perSample=%v", jr.Replanned, jr.Batches, jr.PerSample)
}

// TestAutoscalerGrowsAndImprovesGoodput is the acceptance demo: a seeded
// scenario where the goodput-driven autoscaler grows the cluster from 2 to
// 4 workers, and the grown run's measured goodput — priced by the goodput
// machinery from the run's own measured Eq. 8 per-sample times and GNS
// noise — beats the frozen-membership baseline's. The growth decisions use
// an injected pure price curve, so the membership trajectory is fully
// deterministic; the improvement assertion uses only measured profiles.
func TestAutoscalerGrowsAndImprovesGoodput(t *testing.T) {
	defer watchdog(t, 3*time.Minute)()
	const seed = 71
	mk := func(elastic ElasticController, last *EpochObs) Config {
		src := rng.New(seed)
		ds, err := data.SyntheticBlobs(640, 16, 8, 0.6, src)
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Backend:      BackendLive,
			LocalBatches: []int{8, 8},
			Sizes:        []int{16, 32, 8},
			Epochs:       5,
			LearningRate: 0.05,
			Momentum:     0.9,
			BucketBytes:  128 * 8,
			Dataset:      ds,
			Src:          src,
			Elastic:      elastic,
			OnEpoch: func(o EpochObs) error {
				*last = o
				return nil
			},
		}
	}
	// Pure diminishing-returns curve: +50% at 3 workers, +33% at 4 — every
	// step clears the 10% bar until MaxWorkers stops it.
	price := func(obs EpochObs, prof *Profile, workers int) float64 {
		return float64(workers)
	}
	var grownObs, frozenObs EpochObs
	grown, err := Train(mk(&Autoscaler{
		MaxWorkers:    4,
		GrowThreshold: 0.10,
		JoinBatch:     2,
		Price:         price,
	}, &grownObs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(mk(nil, &frozenObs)); err != nil {
		t.Fatal(err)
	}

	if len(grown.Joins) != 2 {
		t.Fatalf("joins = %+v, want the autoscaler to admit 2 workers", grown.Joins)
	}
	for i, jr := range grown.Joins {
		if !strings.Contains(jr.Reason, "autoscale grow") {
			t.Fatalf("join %d reason %q", i, jr.Reason)
		}
		if jr.Batch != 2 {
			t.Fatalf("join %d batch %d, want the configured 2", i, jr.Batch)
		}
	}
	if grownObs.Workers != 4 {
		t.Fatalf("final membership %d workers, want 4", grownObs.Workers)
	}
	if frozenObs.Workers != 2 {
		t.Fatalf("frozen membership %d workers, want 2", frozenObs.Workers)
	}
	if len(grown.Evictions) != 0 {
		t.Fatalf("autoscale-grow run evicted: %+v", grown.Evictions)
	}

	// Workers here are co-located goroutines sharing cores, so end-to-end
	// wall-clock cannot measure what distinct machines would deliver (on a
	// single-core host the measured aggregate speed is flat no matter the
	// membership). Goodput is therefore measured the way the paper's
	// estimator prices it: per-worker capacity from one Eq. 8 probe
	// measurement — every member is the same physical machine, so a single
	// probe prices all of them — with membership, global batch, and GNS
	// noise taken from each committed run. The probe time cancels in the
	// comparison, which is carried by the measured quantities alone: the
	// grown run doubles aggregate capacity while its global batch grows
	// only 16 → 20, a ≥ 1.6x structural margin at any noise level.
	probeCfg := mk(nil, &frozenObs)
	tau, _ := probeJoin(&probeCfg, Join{Batch: 8}, 99)
	if tau <= 0 {
		t.Fatalf("probe per-sample time %v", tau)
	}
	measured := func(obs EpochObs) float64 {
		rate := float64(obs.Workers) / tau
		return goodput.Goodput(obs.Noise, obs.GlobalBatch, 16, float64(obs.GlobalBatch)/rate)
	}
	g4 := measured(grownObs)
	g2 := measured(frozenObs)
	if g4 <= 0 || g2 <= 0 {
		t.Fatalf("unpriceable runs: grown %v, frozen %v", g4, g2)
	}
	if g4 <= g2 {
		t.Fatalf("measured goodput did not improve: grown %v <= frozen %v", g4, g2)
	}
	t.Logf("measured goodput: frozen(2w)=%.1f grown(4w)=%.1f (%.2fx)", g2, g4, g4/g2)
}

// TestAutoscalerShrinks: when the marginal worker's priced contribution
// falls below the shrink threshold, the autoscaler sheds it through the
// eviction path, and the post-shrink trajectory is bitwise-identical to a
// fresh run from the shrink checkpoint on the survivors (the PR 5
// recovery differential, voluntarily triggered).
func TestAutoscalerShrinks(t *testing.T) {
	defer watchdog(t, 2*time.Minute)()
	const seed = 73
	cfg := faultConfig(t, seed)
	cfg.Elastic = &Autoscaler{
		MinWorkers:      2,
		ShrinkThreshold: 0.05,
		// Constant price: the marginal worker contributes nothing.
		Price: func(EpochObs, *Profile, int) float64 { return 10 },
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evictions) != 1 {
		t.Fatalf("evictions = %+v, want exactly one voluntary shrink", res.Evictions)
	}
	ev := res.Evictions[0]
	if !strings.Contains(ev.Reason, "autoscale shrink") {
		t.Fatalf("shrink reason %q", ev.Reason)
	}
	if len(ev.Workers) != 1 || ev.Workers[0] != 2 {
		t.Fatalf("shed %v, want the marginal rank 2", ev.Workers)
	}
	if len(ev.Survivors) != 2 {
		t.Fatalf("survivors %v, want 2 (MinWorkers)", ev.Survivors)
	}

	fresh := faultConfig(t, seed)
	fresh.LocalBatches = ev.SurvivorBatches
	fresh.InitWeights = ev.Checkpoint
	fresh.Epochs = cfg.Epochs - ev.Epoch
	fresh.Src = rng.New(seed).Split("recovery-1")
	freshRes, err := Train(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !equalWeights(res.FinalWeights, freshRes.FinalWeights) {
		t.Fatal("post-shrink trajectory diverges from a fresh run off the checkpoint")
	}
}

// TestAutoscalerDefaultPricing exercises the autoscaler's built-in Eq. 8
// price path (no injected Price): it must produce positive goodput
// estimates from a real live profile at every candidate membership, decide
// a well-formed action, and hold when no profile exists (sim backend).
func TestAutoscalerDefaultPricing(t *testing.T) {
	defer watchdog(t, 2*time.Minute)()
	var last EpochObs
	cfg := faultConfig(t, 79)
	cfg.OnEpoch = func(o EpochObs) error {
		last = o
		return nil
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= 5; w++ {
		if g := elasticPrice(last, res.Profile, w, 16); g <= 0 {
			t.Fatalf("elasticPrice(%d workers) = %v, want > 0", w, g)
		}
	}
	a := &Autoscaler{MaxWorkers: 8, BaseBatch: 16}
	switch d := a.Decide(last, res.Profile); d.Action {
	case ElasticHold, ElasticShrink:
	case ElasticGrow:
		if d.Batch < 1 {
			t.Fatalf("grow decision with batch %d", d.Batch)
		}
	default:
		t.Fatalf("unknown action %q", d.Action)
	}
	if d := a.Decide(last, nil); d.Action != ElasticHold {
		t.Fatalf("profile-less decision %+v, want hold", d)
	}
}

// FuzzElasticMembership throws seeded fault schedules at small elastic
// runs (one scheduled hot-join, faults addressed to the full 3+1 rank
// space) and asserts the join/evict/no-op trichotomy: the run either (1)
// absorbs every fault and matches the fault-free elastic run bitwise, (2)
// completes with internally consistent join/eviction reports — membership
// deltas partition the cluster at every transition — or (3) surfaces
// ErrNoSurvivors. Hangs, divergence, and malformed reports are bugs.
func FuzzElasticMembership(f *testing.F) {
	f.Add(uint64(1), uint8(30), false, uint8(1))
	f.Add(uint64(2), uint8(80), true, uint8(2))
	f.Add(uint64(5), uint8(100), true, uint8(1))
	f.Add(uint64(9), uint8(55), false, uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, intensityPct uint8, kill bool, joinEpoch uint8) {
		defer watchdog(t, 2*time.Minute)()
		intensity := float64(intensityPct%100+1) / 100
		src := rng.New(seed)
		ds, err := data.SyntheticBlobs(96, 8, 4, 0.6, src)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Backend:      BackendLive,
			LocalBatches: []int{4, 4, 4},
			Sizes:        []int{8, 16, 4},
			Epochs:       3,
			LearningRate: 0.05,
			Momentum:     0.9,
			BucketBytes:  64 * 8,
			Dataset:      ds,
			Src:          src,
			Joins:        []Join{{Epoch: int(joinEpoch%2) + 1, Batch: int(seed%4) + 1}},
		}
		schedule, err := faultinject.Generate(faultinject.Profile{
			Intensity: intensity,
			Horizon:   16,
			Kill:      kill,
			MaxDelay:  4 * time.Millisecond,
		}, len(cfg.LocalBatches)+len(cfg.Joins), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		faultCfg := cfg
		faultCfg.Src = rng.New(seed)
		faultCfg.Fault = &FaultConfig{
			Schedule:    schedule,
			HopTimeout:  20 * time.Millisecond,
			Retries:     3,
			MaxTimeout:  160 * time.Millisecond,
			StepTimeout: 1200 * time.Millisecond,
		}
		res, err := Train(faultCfg)
		if errors.Is(err, ErrNoSurvivors) {
			return // outcome (3): legitimate total loss
		}
		if err != nil {
			t.Fatalf("schedule %v: %v", schedule, err)
		}
		if res.FinalWeights == nil || len(res.EpochLoss) != cfg.Epochs {
			t.Fatalf("schedule %v: incomplete run: %d epochs", schedule, len(res.EpochLoss))
		}
		if len(res.Evictions) == 0 {
			// Outcome (1): all faults absorbed — bitwise-identical to the
			// undisturbed elastic run, join included.
			base, err := Train(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Joins) != 1 {
				t.Fatalf("schedule %v: fault-free outcome with %d joins", schedule, len(res.Joins))
			}
			if !equalWeights(base.FinalWeights, res.FinalWeights) {
				t.Fatalf("schedule %v: absorbed faults changed the elastic trajectory", schedule)
			}
			return
		}
		// Outcome (2): replay the membership deltas in commit order — joins
		// and evictions each carry the global step they fired at, and a join
		// at step s commits before an eviction at step s (the join happens
		// at the epoch boundary, the eviction mid-epoch).
		alive := len(cfg.LocalBatches)
		ji, ei := 0, 0
		for ji < len(res.Joins) || ei < len(res.Evictions) {
			if ji < len(res.Joins) && (ei >= len(res.Evictions) || res.Joins[ji].Step <= res.Evictions[ei].Step) {
				jr := res.Joins[ji]
				if len(jr.Batches) != alive+1 {
					t.Fatalf("join %d grew %d-worker cluster to %d", ji, alive, len(jr.Batches))
				}
				if len(jr.Checkpoint) == 0 || len(jr.Velocity) != len(jr.Checkpoint) {
					t.Fatalf("join %d incomplete: %+v", ji, jr)
				}
				alive++
				ji++
				continue
			}
			ev := res.Evictions[ei]
			if len(ev.Workers) == 0 {
				t.Fatalf("eviction %d evicted nobody: %+v", ei, ev)
			}
			if len(ev.Workers)+len(ev.Survivors) != alive {
				t.Fatalf("eviction %d: %d evicted + %d survivors != %d alive",
					ei, len(ev.Workers), len(ev.Survivors), alive)
			}
			if len(ev.SurvivorBatches) != len(ev.Survivors) || len(ev.Checkpoint) == 0 || ev.Reason == "" {
				t.Fatalf("eviction %d incomplete: %+v", ei, ev)
			}
			alive = len(ev.Survivors)
			ei++
		}
		if alive < 1 {
			t.Fatal("run completed with zero members")
		}
	})
}
