// Package runtime executes real data-parallel training over a set of
// workers, in one of two backends sharing a single training driver:
//
//   - "sim": the sequential reference — workers run one after another in
//     the driver goroutine and synchronize with a bucketed ring all-reduce
//     between steps. No wall-clock profile is produced; timing comes from
//     the analytic simulation layers elsewhere in the repo.
//   - "live": a concurrent execution engine — every worker is a goroutine
//     owning its replica, optimizer, and data shard. Workers synchronize
//     through a persistent message-passing ring (internal/allreduce.Ring),
//     splitting the flat gradient into DDP-style buckets and launching
//     each bucket's reduction as soon as backpropagation has produced it,
//     so communication genuinely overlaps compute. Each worker measures
//     its own wall-clock phases (the paper's a_i, P_i, syncStart_i, T_o,
//     T_u) and the run emits a Profile that perfmodel can fit, closing the
//     measure → model → optimize loop on real execution for the first
//     time.
//
// Both backends implement the identical arithmetic: Eq. 9 batch-weighted
// aggregation with summation order fixed by the ring topology and bucket
// boundaries. For the same seed and config their model weights are
// bitwise-identical — the differential tests in this package enforce it.
//
// With Config.Fault set (live backend only) the run additionally arms the
// fault-tolerance layer: deterministic fault injection at phase
// boundaries, per-hop ring deadlines with bounded retry, and — when a
// step cannot complete — coordinated eviction of the failed worker
// followed by recovery on the survivors. Recovery is checkpoint-restart:
// survivors resume from the last fully-reduced weights with fresh
// optimizer state and a fresh data stream, re-running the interrupted
// epoch in full, so the post-eviction trajectory is bitwise-identical to
// a fresh fault-free run launched from the same checkpoint on the
// survivor cluster.
package runtime

import (
	"context"
	"errors"
	"fmt"

	"cannikin/internal/allreduce"
	"cannikin/internal/data"
	"cannikin/internal/faultinject"
	"cannikin/internal/gns"
	"cannikin/internal/nn"
	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

// Backend names accepted by Config.Backend.
const (
	BackendSim  = "sim"
	BackendLive = "live"
)

// Comm modes accepted by Config.CommMode (live backend only).
const (
	// CommAuto (the default) picks per incarnation: the merged loop when
	// the workers would oversubscribe the host's usable parallelism, the
	// overlapped pair otherwise. The choice affects scheduling only, never
	// arithmetic — weights are bitwise-identical either way.
	CommAuto = "auto"
	// CommOverlap always runs one compute + one comm goroutine per worker,
	// overlapping bucket reduction with backprop.
	CommOverlap = "overlap"
	// CommMerged always runs one goroutine per worker that reduces each
	// bucket inline at the backprop frontier. Incompatible with Fault (the
	// guarded two-phase path needs the dedicated comm goroutine).
	CommMerged = "merged"
)

// Config describes one data-parallel training run.
type Config struct {
	// Backend selects the execution engine: BackendSim (default) or
	// BackendLive.
	Backend string
	// LocalBatches are the per-worker local batch sizes; their count sets
	// the number of data-parallel workers.
	LocalBatches []int
	// Sizes are the full MLP layer sizes [in, hidden..., out].
	Sizes []int
	// Epochs is the number of training passes.
	Epochs int
	// LearningRate and Momentum parameterize SGD.
	LearningRate float64
	Momentum     float64
	// GrowthEpoch, when positive, doubles every local batch at that epoch;
	// Scaler (may be nil) rescales the learning rate on growth.
	GrowthEpoch int
	Scaler      nn.LRScaler
	// NaiveGNS switches GNS aggregation to plain averaging instead of the
	// Theorem 4.1 minimum-variance weights.
	NaiveGNS bool
	// KernelShards, when positive, sets the process-wide tensor kernel
	// worker-pool size: matmuls are sharded across that many goroutines by
	// contiguous output rows (1 = serial). Parallel kernels are bitwise
	// identical to serial ones, so this changes wall-clock time only, never
	// the trained weights. The setting persists after Train returns.
	KernelShards int
	// BucketBytes caps the gradient bucket size for the ring all-reduce. A
	// positive value is an explicit per-bucket byte cap (PyTorch DDP uses
	// 25 MB); zero (the default) sizes buckets adaptively from the model
	// size and worker count — see bucketLenFor. The partition is a pure
	// function of (BucketBytes, model dim, worker count), never of
	// scheduling state, so every process of a multi-rank run derives the
	// identical buckets.
	BucketBytes int
	// CommMode selects the live backend's worker-goroutine layout:
	// CommAuto (default), CommOverlap, or CommMerged. Sim ignores it.
	CommMode string
	// Allreduce selects the collective algorithm reducing gradient buckets:
	// "" or "ring" (the default), "hd" (recursive halving-doubling),
	// "pipeline" (chunk-pipelined ring), or "auto" (cost-model argmin per
	// bucket). Unlike CommMode this is part of the arithmetic for three or
	// more workers — each algorithm fixes its own IEEE association order —
	// so the per-bucket choice is derived from the config alone
	// (bucketAlgorithms) and every backend and process of one run derives
	// the identical schedules: sim, live, and worker stay bitwise-equal at
	// any setting.
	Allreduce string
	// LinkAlpha and LinkBeta price "auto": the fitted per-hop link cost
	// t(b) = LinkAlpha + LinkBeta·b in seconds (from a measured
	// Profile.LinkFit). Both zero means unfitted — auto then falls back to
	// the calibrated size thresholds. All processes of a multi-rank run
	// must share the same constants, or auto ranks would disagree on the
	// schedule.
	LinkAlpha, LinkBeta float64
	// Dataset is the training set; evaluation runs on all of it.
	Dataset *data.Dataset
	// Src drives all run randomness (shard shuffling, replica init). The
	// loader and replicas consume it in a fixed order, so two runs from
	// equal sources are identical.
	Src *rng.Source
	// InitWeights, when set, is the flat weight vector every replica starts
	// from, bypassing random initialization and the rank-0 broadcast. This
	// is the recovery entry point: resuming from an Eviction's Checkpoint
	// on the survivor cluster reproduces the post-eviction trajectory
	// bitwise.
	InitWeights []float64
	// InitVelocity, when set, seeds every replica's SGD momentum from a
	// flat vector in parameter order — the optimizer half of the hot-join
	// handoff: resuming from a JoinRecord's Checkpoint AND Velocity on the
	// grown cluster reproduces the post-join trajectory bitwise.
	InitVelocity []float64
	// Joins schedules worker hot-joins: at each entry's epoch boundary the
	// cluster grows by one worker via the two-phase join commit (both
	// backends). See Join.
	Joins []Join
	// Elastic, when set, is consulted after every completed epoch (while
	// at least one epoch remains) and may grow the cluster through the
	// hot-join path or shrink it through the eviction path. Autoscaler is
	// the built-in goodput-driven controller.
	Elastic ElasticController
	// Fault, when set, enables deterministic fault injection and the
	// fault-tolerance machinery (live backend only).
	Fault *FaultConfig
	// Ctx, when set, is checked at every step and epoch boundary: a
	// canceled context aborts the run with the context's error wrapped
	// (test with errors.Is). Cancellation never corrupts state — the run
	// stops between committed steps and all worker goroutines are joined
	// before Train returns.
	Ctx context.Context
	// OnEpoch, when set, is called after each completed epoch's full-dataset
	// evaluation with that epoch's observations. Returning an error aborts
	// the run with the error wrapped. The hook runs on the driver goroutine
	// between steps, so it observes a fully synchronized model; it must not
	// mutate the run.
	OnEpoch func(EpochObs) error
}

// EpochObs is one completed epoch's observations, streamed through
// Config.OnEpoch.
type EpochObs struct {
	// Epoch is the absolute epoch index; Workers the live worker count
	// (shrinks after evictions).
	Epoch   int
	Workers int
	// GlobalBatch and LearningRate are the values the epoch trained with.
	GlobalBatch  int
	LearningRate float64
	// Loss and Accuracy are measured on the full dataset after the epoch;
	// Noise is the smoothed heterogeneous GNS estimate.
	Loss, Accuracy, Noise float64
	// Steps is the cumulative committed step count at epoch end.
	Steps int
}

func (c *Config) validate() error {
	if len(c.LocalBatches) == 0 {
		return errors.New("runtime: config needs at least one worker batch")
	}
	for i, b := range c.LocalBatches {
		if b < 1 {
			return fmt.Errorf("runtime: worker %d local batch %d", i, b)
		}
	}
	if len(c.Sizes) < 2 {
		return errors.New("runtime: Sizes needs at least input and output widths")
	}
	if c.Epochs < 1 || c.LearningRate <= 0 {
		return fmt.Errorf("runtime: invalid epochs %d / learning rate %v", c.Epochs, c.LearningRate)
	}
	if c.KernelShards < 0 {
		return fmt.Errorf("runtime: kernel shards %d", c.KernelShards)
	}
	if c.Dataset == nil || c.Dataset.Len() < 1 {
		return errors.New("runtime: config needs a non-empty dataset")
	}
	if c.Src == nil {
		return errors.New("runtime: config needs an rng source")
	}
	switch c.Backend {
	case "", BackendSim, BackendLive:
	default:
		return fmt.Errorf("runtime: unknown backend %q", c.Backend)
	}
	switch c.CommMode {
	case "", CommAuto, CommOverlap, CommMerged:
	default:
		return fmt.Errorf("runtime: unknown comm mode %q", c.CommMode)
	}
	if _, err := allreduce.ParseAlgorithm(c.Allreduce); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	if c.LinkAlpha < 0 || c.LinkBeta < 0 {
		return fmt.Errorf("runtime: negative link constants (alpha=%g, beta=%g)", c.LinkAlpha, c.LinkBeta)
	}
	if c.CommMode == CommMerged && c.Fault != nil {
		return errors.New("runtime: merged comm mode is incompatible with fault injection (the guarded step needs the dedicated comm goroutine)")
	}
	if err := validateJoins(c.Joins, c.Epochs, c.GrowthEpoch); err != nil {
		return err
	}
	if c.Fault != nil {
		if c.Backend != BackendLive {
			return errors.New("runtime: fault injection requires the live backend")
		}
		// A schedule may target workers that only exist after a join, so
		// the rank space covers the initial cluster plus every joiner.
		if err := c.Fault.validate(len(c.LocalBatches) + len(c.Joins)); err != nil {
			return err
		}
	}
	return nil
}

// Result reports one training run.
type Result struct {
	// Backend is the engine that executed the run.
	Backend string
	// Workers is the number of data-parallel replicas the run started with;
	// GlobalBatch the initial per-step total batch.
	Workers     int
	GlobalBatch int
	// EpochLoss and EpochAccuracy are measured on the full dataset after
	// each epoch; NoiseEstimate is the smoothed GNS.
	EpochLoss     []float64
	EpochAccuracy []float64
	NoiseEstimate []float64
	// BatchSchedule and LRSchedule record the per-epoch global batch and
	// learning rate.
	BatchSchedule []int
	LRSchedule    []float64
	// FinalAccuracy is the last epoch's accuracy; Steps the total number
	// of synchronized steps (committed steps only; failed steps do not
	// count).
	FinalAccuracy float64
	Steps         int
	// FinalWeights is the flat weight vector after training (identical on
	// every replica — the run fails if they diverge).
	FinalWeights []float64
	// Profile holds the measured wall-clock phase samples (live backend
	// only; nil for sim). After an eviction the profile covers the last
	// incarnation of the cluster.
	Profile *Profile
	// Evictions records every coordinated worker eviction (fault-tolerant
	// runs only; empty otherwise) — including voluntary autoscaler shrinks.
	Evictions []Eviction
	// Joins records every committed worker hot-join (scheduled or
	// autoscaled), in order.
	Joins []JoinRecord
	// FaultEvents records every injected fault a worker consumed, in the
	// order they were suffered, with original worker ranks.
	FaultEvents []FaultRecord
	// FinalVelocity is the SGD momentum state at run end (identical on
	// every replica) — with FinalWeights, a complete resume checkpoint.
	FinalVelocity []float64
}

// executor is one execution engine driven by the shared training loop.
// step runs one synchronized step over the pre-drawn shards and returns
// the GNS norm observations from the real gradients.
type executor interface {
	step(epoch, step int, xs []*tensor.T, labels [][]int, stepWeights []float64, lr float64) (gns.Sample, error)
	// network returns replica 0 for full-dataset evaluation. Only valid
	// between steps (the driver is the only goroutine active then).
	network() *nn.Network
	// finalWeights checks replica consistency and returns the weights.
	finalWeights() ([]float64, error)
	profile() *Profile
	close()
}

// incarnation is one cluster configuration the training loop runs under:
// the initial cluster, and after each eviction, the survivor cluster. All
// fields are in the incarnation's own rank space except origIdx, which
// maps its ranks back to the run's original worker indices.
type incarnation struct {
	localBatches []int
	lr           float64
	src          *rng.Source
	// initWeights, when set, seeds every replica directly (recovery from a
	// checkpoint, or Config.InitWeights on the first incarnation);
	// initVelocity likewise seeds every replica's SGD momentum (a join
	// handoff, or Config.InitVelocity).
	initWeights  []float64
	initVelocity []float64
	// pendingJoins are the scheduled joins not yet committed, in epoch
	// order.
	pendingJoins []Join
	schedule     faultinject.Schedule
	// epochBase is the first (absolute) epoch this incarnation runs; after
	// an eviction the interrupted epoch restarts from its beginning.
	epochBase int
	origIdx   []int
}

// Train runs the configured training job and reports it. The produced
// model is a pure function of (Config minus Backend/CommMode): every
// backend and comm mode yields bitwise-identical weights, because the
// per-bucket ring fixes the summation order and every engine reduces the
// same buckets. The bucket partition itself (BucketBytes) is part of the
// arithmetic for three or more workers — different partitions re-associate
// the per-element sums — so it is derived deterministically from the config
// alone; with one or two workers every partition is bit-identical (each
// element is at most one two-term sum). Fault-tolerant runs loop over
// cluster incarnations: each eviction shrinks the cluster and training
// resumes from the survivors' checkpoint until the epochs complete or no
// workers remain (ErrNoSurvivors).
func Train(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	backend := cfg.Backend
	if backend == "" {
		backend = BackendSim
	}
	if cfg.KernelShards > 0 {
		tensor.SetParallelism(cfg.KernelShards)
	}

	globalBatch := 0
	for _, b := range cfg.LocalBatches {
		globalBatch += b
	}
	res := &Result{Backend: backend, Workers: len(cfg.LocalBatches), GlobalBatch: globalBatch}
	inc := &incarnation{
		localBatches: append([]int(nil), cfg.LocalBatches...),
		lr:           cfg.LearningRate,
		src:          cfg.Src,
		initWeights:  cfg.InitWeights,
		initVelocity: cfg.InitVelocity,
		pendingJoins: append([]Join(nil), cfg.Joins...),
		epochBase:    0,
		origIdx:      identity(len(cfg.LocalBatches)),
	}
	if cfg.Fault != nil {
		inc.schedule = cfg.Fault.Schedule
	}
	for {
		next, err := runIncarnation(&cfg, inc, res, backend)
		if err != nil {
			return nil, err
		}
		if next == nil {
			return res, nil
		}
		inc = next
	}
}

// runIncarnation trains one cluster incarnation from inc.epochBase to the
// configured epoch count. It returns (nil, nil) on completion — res then
// holds the finished run — or the next incarnation after a coordinated
// eviction (the Eviction is already appended to res).
//
// The bucket partition and comm mode are resolved per incarnation: adaptive
// buckets depend on the worker count, and a fresh run launched from an
// eviction checkpoint on the survivor cluster would derive exactly these —
// which is what keeps the recovery differential test bitwise.
func runIncarnation(cfg *Config, inc *incarnation, res *Result, backend string) (*incarnation, error) {
	loader := data.NewHeteroLoader(cfg.Dataset, inc.src)
	nWorkers := len(inc.localBatches)
	globalBatch := 0
	for _, b := range inc.localBatches {
		globalBatch += b
	}

	// All replicas start from identical weights: either the incarnation's
	// seed vector (a recovery checkpoint, or Config.InitWeights), or a
	// random initialization synchronized the way DDP does it — rank 0
	// broadcasts over the ring.
	replicas := make([]*nn.Network, nWorkers)
	for i := range replicas {
		replicas[i] = nn.NewMLP(cfg.Sizes, inc.src.Split(fmt.Sprintf("init-%d", i)))
	}
	if inc.initWeights != nil {
		if want := replicas[0].NumParams(); len(inc.initWeights) != want {
			return nil, fmt.Errorf("runtime: init weights dim %d, want %d", len(inc.initWeights), want)
		}
		for i := range replicas {
			replicas[i].SetFlatWeights(inc.initWeights)
		}
	} else {
		weightBufs := make([][]float64, nWorkers)
		for i := range replicas {
			weightBufs[i] = replicas[i].FlatWeights()
		}
		if err := allreduce.Broadcast(weightBufs, 0); err != nil {
			return nil, err
		}
		for i := range replicas {
			replicas[i].SetFlatWeights(weightBufs[i])
		}
	}
	opts := make([]*nn.SGD, nWorkers)
	for i := range opts {
		opts[i] = nn.NewSGD(cfg.Momentum, 0)
		// A join handoff restores momentum on every replica — incumbents
		// continue their velocity trajectory, and the joiner adopts the
		// identical state so the replicas stay bitwise-consistent.
		if inc.initVelocity != nil {
			if err := opts[i].SetFlatVelocity(replicas[i].Params(), inc.initVelocity); err != nil {
				return nil, fmt.Errorf("runtime: %w", err)
			}
		}
	}

	var ft *faultTolerance
	if cfg.Fault != nil {
		// Events addressed to not-yet-joined ranks stay dormant until a
		// join grows the cluster past them.
		inj, err := faultinject.NewInjector(clampSchedule(inc.schedule, nWorkers), nWorkers)
		if err != nil {
			return nil, err
		}
		ft = &faultTolerance{
			inj:         inj,
			policy:      cfg.Fault.policy(),
			stepTimeout: cfg.Fault.stepTimeout(),
		}
	}

	bucketLen := bucketLenFor(cfg.BucketBytes, replicas[0].NumParams(), nWorkers)
	algs, err := bucketAlgorithms(cfg.Allreduce, cfg.LinkAlpha, cfg.LinkBeta, replicas[0].NumParams(), bucketLen, nWorkers)
	if err != nil {
		return nil, err
	}
	merged := resolveCommMode(cfg.CommMode, nWorkers, ft)

	var exec executor
	switch backend {
	case BackendSim:
		exec = newSeqExec(replicas, opts, bucketLen, algs)
	case BackendLive:
		exec = newLiveExec(replicas, opts, bucketLen, algs, ft, merged)
	}
	defer func() {
		if exec != nil {
			exec.close()
		}
	}()

	tracker := gns.NewTracker(0.1)
	estimator := gns.NewEstimator(cfg.NaiveGNS)
	weights := make([]float64, nWorkers)
	for i, b := range inc.localBatches {
		weights[i] = float64(b) / float64(globalBatch)
	}
	// partialWeights is the reusable Eq. 9 weight buffer for the epoch-final
	// partial batch (whose shard sizes differ from the plan).
	partialWeights := make([]float64, nWorkers)

	fullX, fullLabels := cfg.Dataset.Batch(identity(cfg.Dataset.Len()))

	localBatches := inc.localBatches
	baseBatch := globalBatch
	lr := inc.lr

	for epoch := inc.epochBase; epoch < cfg.Epochs; epoch++ {
		// Growth fires once per run; an incarnation resuming at or after the
		// growth epoch captured post-growth batches and learning rate.
		if cfg.GrowthEpoch > 0 && epoch == cfg.GrowthEpoch && epoch > inc.epochBase {
			for i := range localBatches {
				localBatches[i] *= 2
			}
			globalBatch *= 2
			for i, b := range localBatches {
				weights[i] = float64(b) / float64(globalBatch)
			}
			if cfg.Scaler != nil {
				lr = cfg.Scaler.Scale(cfg.LearningRate, globalBatch, baseBatch, tracker.Noise())
			}
		}
		// A scheduled join commits at its epoch boundary (or the first
		// boundary after it, when an eviction pushed the incarnation past
		// it). The epochBase guard keeps the grown incarnation, which
		// restarts at this very epoch, from re-committing the same join.
		if len(inc.pendingJoins) > 0 && epoch >= inc.pendingJoins[0].Epoch && epoch > inc.epochBase {
			return growCluster(cfg, inc, res, exec, replicas, opts,
				inc.pendingJoins[0], "scheduled", epoch, inc.pendingJoins[1:], localBatches, lr)
		}
		stepsPerEpoch := cfg.Dataset.Len() / globalBatch
		if stepsPerEpoch < 1 {
			stepsPerEpoch = 1
		}
		for s := 0; s < stepsPerEpoch; s++ {
			// The cancellation point sits between committed steps, so an
			// abort mid-epoch never leaves a partially applied update; the
			// deferred exec.close() joins every worker goroutine.
			if err := ctxErr(cfg.Ctx); err != nil {
				return nil, fmt.Errorf("runtime: canceled at epoch %d step %d: %w", epoch, res.Steps, err)
			}
			xs, labels, err := loader.NextGlobalBatch(localBatches)
			if err != nil {
				return nil, err
			}
			// Eq. 9 weights must track the actual shard sizes (the final
			// partial batch shrinks every shard).
			got := 0
			for _, x := range xs {
				got += x.Rows()
			}
			stepWeights := weights
			if got != globalBatch {
				stepWeights = partialWeights
				for i, x := range xs {
					stepWeights[i] = float64(x.Rows()) / float64(got)
				}
			}

			var sample gns.Sample
			if ft == nil {
				sample, err = exec.step(epoch, res.Steps, xs, labels, stepWeights, lr)
				if err != nil {
					return nil, err
				}
			} else {
				le := exec.(*liveExec)
				var fail *stepFailure
				for attempt := 0; ; attempt++ {
					var records []FaultRecord
					sample, records, fail, err = le.stepGuarded(epoch, res.Steps, xs, labels, stepWeights, lr)
					if err != nil {
						return nil, err
					}
					for _, r := range records {
						r.Worker = inc.origIdx[r.Worker]
						res.FaultEvents = append(res.FaultEvents, r)
					}
					if fail == nil {
						break
					}
					if len(fail.dead) > 0 || attempt >= cfg.Fault.stepRetries() {
						break
					}
					// Transient ring failure with every worker responsive:
					// retry the step on a rebuilt ring. Replicas and
					// optimizers carry over untouched (the failed step was
					// never applied), so a successful retry is
					// bitwise-identical to an undisturbed run.
					exec.close()
					le2 := newLiveExec(replicas, opts, bucketLen, algs, ft, merged)
					le2.prof = le.prof
					le, exec = le2, le2
				}
				if fail != nil {
					next, err := evict(cfg, inc, res, le, fail, epoch, localBatches, lr)
					exec.close()
					exec = nil
					return next, err
				}
			}
			if nWorkers >= 2 {
				if est, gerr := estimator.Estimate(sample); gerr == nil {
					tracker.Observe(est)
				}
			}
			res.Steps++
		}
		logits := exec.network().Forward(fullX)
		loss, _ := nn.SoftmaxCrossEntropy(logits, fullLabels)
		acc := nn.Accuracy(logits, fullLabels)
		res.EpochLoss = append(res.EpochLoss, loss)
		res.EpochAccuracy = append(res.EpochAccuracy, acc)
		res.NoiseEstimate = append(res.NoiseEstimate, tracker.Noise())
		res.BatchSchedule = append(res.BatchSchedule, globalBatch)
		res.LRSchedule = append(res.LRSchedule, lr)
		obs := EpochObs{
			Epoch:        epoch,
			Workers:      nWorkers,
			GlobalBatch:  globalBatch,
			LearningRate: lr,
			Loss:         loss,
			Accuracy:     acc,
			Noise:        tracker.Noise(),
			Steps:        res.Steps,
		}
		if cfg.OnEpoch != nil {
			if err := cfg.OnEpoch(obs); err != nil {
				return nil, fmt.Errorf("runtime: epoch %d hook: %w", epoch, err)
			}
		}
		// A context canceled inside the hook (or during evaluation) must
		// surface now, not on the next epoch's first step — and must surface
		// even when this was the final epoch.
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, fmt.Errorf("runtime: canceled at epoch %d step %d: %w", epoch, res.Steps, err)
		}
		// The autoscaler decides after every completed epoch with at least
		// one epoch left. Grow and shrink both start a new incarnation at
		// the next boundary, which always trains a full epoch before its
		// own first decision, so membership changes at most once per epoch.
		if cfg.Elastic != nil && epoch+1 < cfg.Epochs {
			switch d := cfg.Elastic.Decide(obs, exec.profile()); d.Action {
			case ElasticGrow:
				j := Join{Epoch: epoch + 1, Batch: d.Batch, ProbeSteps: d.ProbeSteps, Replan: d.Replan}
				reason := d.Reason
				if reason == "" {
					reason = "autoscale grow"
				}
				return growCluster(cfg, inc, res, exec, replicas, opts,
					j, reason, epoch+1, inc.pendingJoins, localBatches, lr)
			case ElasticShrink:
				reason := d.Reason
				if reason == "" {
					reason = "autoscale shrink"
				}
				return shrinkCluster(cfg, inc, res, exec, replicas, opts,
					d.Victim, reason, epoch+1, localBatches, lr)
			}
		}
	}
	res.FinalAccuracy = res.EpochAccuracy[len(res.EpochAccuracy)-1]

	final, err := exec.finalWeights()
	if err != nil {
		return nil, err
	}
	res.FinalWeights = final
	res.FinalVelocity = opts[0].FlatVelocity(replicas[0].Params())
	res.Profile = exec.profile()
	return nil, nil
}

// evict turns a failed step into the next cluster incarnation: it picks
// the victims, verifies the survivors' replicas are still bitwise
// consistent at the last committed step, checkpoints their weights,
// re-plans the survivor batches, records the Eviction, and builds the
// recovery incarnation. The caller closes the executor; the survivor
// networks stay readable afterwards because the driver owns them.
func evict(cfg *Config, inc *incarnation, res *Result, le *liveExec, fail *stepFailure, epoch int, localBatches []int, lr float64) (*incarnation, error) {
	victims := fail.victims()
	if len(victims) == 0 {
		if fail.firstErr != nil {
			return nil, fail.firstErr
		}
		return nil, errors.New("runtime: step failed with no identifiable victim")
	}
	evicted := make(map[int]bool, len(victims))
	for _, v := range victims {
		evicted[v] = true
	}
	var survivors []int // incarnation-relative ranks
	for r := range inc.localBatches {
		if !evicted[r] {
			survivors = append(survivors, r)
		}
	}
	if len(survivors) == 0 {
		return nil, ErrNoSurvivors
	}

	// The two-phase commit guarantees every survivor sits at the last
	// committed step; verify before checkpointing.
	ref := le.weights(survivors[0])
	for _, s := range survivors[1:] {
		if d := maxAbsDiff(ref, le.weights(s)); d != 0 {
			return nil, fmt.Errorf("runtime: survivors diverged by %g after failed step", d)
		}
	}
	checkpoint := append([]float64(nil), ref...)

	batches, replanned := replanSurvivors(cfg.Fault.Replan, le.profile(), survivors, localBatches)

	reason := "ring fault"
	if len(fail.dead) > 0 {
		reason = "step timeout"
	}
	if fail.firstErr != nil {
		reason = fmt.Sprintf("%s: %v", reason, fail.firstErr)
	}
	ev := Eviction{
		Epoch:           epoch,
		Step:            res.Steps,
		Reason:          reason,
		SurvivorBatches: batches,
		Checkpoint:      checkpoint,
		Replanned:       replanned,
	}
	for _, v := range victims {
		ev.Workers = append(ev.Workers, inc.origIdx[v])
	}
	origIdx := make([]int, len(survivors))
	for i, s := range survivors {
		origIdx[i] = inc.origIdx[s]
	}
	ev.Survivors = origIdx
	res.Evictions = append(res.Evictions, ev)

	return &incarnation{
		localBatches: batches,
		lr:           lr,
		src:          cfg.Src.Split(fmt.Sprintf("recovery-%d", len(res.Evictions))),
		initWeights:  checkpoint,
		schedule:     inc.schedule.Remap(survivors),
		epochBase:    epoch,
		origIdx:      origIdx,
		pendingJoins: inc.pendingJoins,
	}, nil
}

// ctxErr reports the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sqNorm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return s
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
