package runtime

import (
	"fmt"
	"time"

	"cannikin/internal/faultinject"
	"cannikin/internal/goodput"
	"cannikin/internal/nn"
	"cannikin/internal/optperf"
	"cannikin/internal/perfmodel"
	"cannikin/internal/tensor"
)

// defaultProbeSteps is how many timed probe passes a joining worker runs
// per batch size when Join.ProbeSteps is zero.
const defaultProbeSteps = 3

// Join schedules one worker hot-join: at the given epoch boundary the
// cluster grows by one worker. The join is a two-phase commit on top of
// the incarnation-restart machinery: the driver first verifies every
// incumbent replica (weights and optimizer velocity) sits bitwise at the
// last committed step, then checkpoints that state, bootstraps the
// joiner's compute profile with a few timed probe passes (Eq. 8), and only
// then starts the grown incarnation — incumbents resume from their own
// checkpoint, so their momentum is preserved, and the joiner receives the
// identical weights and velocity so the replicas never diverge.
type Join struct {
	// Epoch is the epoch boundary the worker joins at (1 ≤ Epoch <
	// Epochs). When an eviction pushes the incarnation past this epoch,
	// the join fires at the next epoch boundary instead. Joins must be
	// scheduled in non-decreasing epoch order.
	Epoch int
	// Batch is the joining worker's local batch (≥ 1). Under OptPerf
	// re-planning it is the joiner's share of the new total before the
	// solve re-balances.
	Batch int
	// ProbeSteps is how many timed probe passes (per batch size) bootstrap
	// the joiner's Eq. 8 compute profile (default 3).
	ProbeSteps int
	// Replan picks the grown cluster's batch policy: ReplanKeep (default —
	// incumbents keep their batches, the joiner adopts Batch) or
	// ReplanOptPerf (re-solve OptPerf over incumbents' live profile plus
	// the joiner's probe model; falls back to keep when either model is
	// unavailable).
	Replan string
}

// JoinRecord reports one committed worker hot-join.
type JoinRecord struct {
	// Epoch is the first epoch the grown cluster trained; Step the global
	// committed step count at the join.
	Epoch, Step int
	// Worker is the joiner's original worker index: joins number onward
	// from the run's initial worker count, stable across evictions.
	Worker int
	// Batch is the joiner's adopted local batch; Batches the grown
	// cluster's full plan.
	Batch   int
	Batches []int
	// Checkpoint and Velocity are the weight vector and SGD momentum every
	// replica of the grown cluster started from — bitwise-identical on all
	// incumbents at commit time. A fresh run seeded with both on the grown
	// cluster reproduces the post-join trajectory exactly.
	Checkpoint []float64
	Velocity   []float64
	// PerSample is the joiner's Eq. 8 per-sample compute time estimated by
	// the probe (0 when the probe could not measure).
	PerSample float64
	// Replanned reports that OptPerf re-planning produced the grown
	// batches (false = incumbents kept theirs, joiner adopted Batch).
	Replanned bool
	// Reason says why the join happened: "scheduled" or the autoscaler's
	// explanation.
	Reason string
}

// Elastic actions returned by an ElasticController.
const (
	ElasticHold   = "hold"
	ElasticGrow   = "grow"
	ElasticShrink = "shrink"
)

// ElasticDecision is one membership decision at an epoch boundary.
type ElasticDecision struct {
	// Action is ElasticHold, ElasticGrow, or ElasticShrink.
	Action string
	// Batch, ProbeSteps, and Replan parameterize a grow decision exactly
	// like the Join fields of the same names.
	Batch      int
	ProbeSteps int
	Replan     string
	// Victim is the incarnation-relative rank a shrink sheds; negative
	// picks the highest rank (the most recent joiner).
	Victim int
	// Reason annotates the resulting Join or Eviction record.
	Reason string
}

// ElasticController decides cluster membership at epoch boundaries. Decide
// is called after each completed epoch's evaluation (when at least one
// epoch remains) with the epoch's observations and the live profile (nil
// on the sim backend). A grow admits one worker through the hot-join path;
// a shrink sheds one through the eviction path (checkpoint, survivor
// re-plan, fresh optimizer state — the PR 5 recovery semantics).
type ElasticController interface {
	Decide(obs EpochObs, prof *Profile) ElasticDecision
}

// Autoscaler is the built-in goodput-driven ElasticController: it prices
// candidate memberships with the goodput machinery (throughput × GNS
// statistical efficiency) and grows while the marginal worker's predicted
// contribution exceeds GrowThreshold, shrinks when it falls below
// ShrinkThreshold.
type Autoscaler struct {
	// MinWorkers and MaxWorkers bound the membership (defaults 1 and the
	// current size — i.e. never grow unless MaxWorkers is set).
	MinWorkers, MaxWorkers int
	// GrowThreshold is the minimum relative predicted-goodput gain that
	// justifies admitting one more worker (default 0.05).
	GrowThreshold float64
	// ShrinkThreshold, when positive, sheds the marginal worker whenever
	// removing it would cost less than this relative goodput fraction.
	// Zero disables shrinking.
	ShrinkThreshold float64
	// JoinBatch is the admitted worker's local batch; zero derives the
	// mean incumbent batch.
	JoinBatch int
	// BaseBatch is the Eq. 2 reference batch B0 for the efficiency term;
	// zero uses the observed global batch (efficiency 1, pure throughput).
	BaseBatch int
	// Probe and Replan parameterize the join a grow decision issues.
	ProbeSteps int
	Replan     string
	// Price overrides membership pricing: predicted goodput at the given
	// worker count (tests inject a pure function for determinism). Nil
	// uses the Eq. 8 bootstrap over the live profile.
	Price func(obs EpochObs, prof *Profile, workers int) float64
}

func (a *Autoscaler) growThreshold() float64 {
	if a.GrowThreshold > 0 {
		return a.GrowThreshold
	}
	return 0.05
}

// Decide implements ElasticController.
func (a *Autoscaler) Decide(obs EpochObs, prof *Profile) ElasticDecision {
	price := a.Price
	if price == nil {
		price = func(obs EpochObs, prof *Profile, workers int) float64 {
			return elasticPrice(obs, prof, workers, a.BaseBatch)
		}
	}
	cur := price(obs, prof, obs.Workers)
	if cur <= 0 {
		return ElasticDecision{Action: ElasticHold}
	}
	maxW := a.MaxWorkers
	if maxW <= 0 {
		maxW = obs.Workers
	}
	minW := a.MinWorkers
	if minW <= 0 {
		minW = 1
	}
	if obs.Workers < maxW {
		grown := price(obs, prof, obs.Workers+1)
		if gain := (grown - cur) / cur; gain >= a.growThreshold() {
			b := a.JoinBatch
			if b <= 0 {
				b = obs.GlobalBatch / obs.Workers
				if b < 1 {
					b = 1
				}
			}
			return ElasticDecision{
				Action:     ElasticGrow,
				Batch:      b,
				ProbeSteps: a.ProbeSteps,
				Replan:     a.Replan,
				Victim:     -1,
				Reason:     fmt.Sprintf("autoscale grow: predicted goodput %+.1f%% at %d workers", gain*100, obs.Workers+1),
			}
		}
	}
	if obs.Workers > minW && a.ShrinkThreshold > 0 {
		shrunk := price(obs, prof, obs.Workers-1)
		if loss := (cur - shrunk) / cur; loss < a.ShrinkThreshold {
			return ElasticDecision{
				Action: ElasticShrink,
				Victim: -1,
				Reason: fmt.Sprintf("autoscale shrink: marginal worker worth %.1f%% goodput at %d workers", loss*100, obs.Workers),
			}
		}
	}
	return ElasticDecision{Action: ElasticHold}
}

// elasticPrice predicts cluster goodput at a candidate membership size
// from the live profile: per-worker speeds come from the Eq. 8 per-sample
// bootstrap, hypothetical joiners run at the mean measured speed, a shrink
// keeps the fastest members, and the communication term scales with the
// ring hop count. Returns 0 (undecidable) without a usable profile.
func elasticPrice(obs EpochObs, prof *Profile, workers int, baseBatch int) float64 {
	if prof == nil || workers < 1 || obs.GlobalBatch < 1 {
		return 0
	}
	l := perfmodel.NewClusterLearner(prof.Workers)
	prof.Feed(l)
	taus, err := l.PerSampleTimes()
	if err != nil || len(taus) == 0 {
		return 0
	}
	speeds := make([]float64, 0, len(taus))
	mean := 0.0
	for _, t := range taus {
		if t <= 0 {
			return 0
		}
		speeds = append(speeds, 1/t)
		mean += 1 / t
	}
	mean /= float64(len(speeds))
	// Fastest members first, so pricing a shrink removes the marginal
	// (slowest) worker.
	for i := 1; i < len(speeds); i++ {
		for j := i; j > 0 && speeds[j] > speeds[j-1]; j-- {
			speeds[j], speeds[j-1] = speeds[j-1], speeds[j]
		}
	}
	sum := 0.0
	for i := 0; i < workers; i++ {
		if i < len(speeds) {
			sum += speeds[i]
		} else {
			sum += mean
		}
	}
	if sum <= 0 {
		return 0
	}
	comm := 0.0
	if model, _, err := prof.FitModel(nil); err == nil && prof.Workers > 1 {
		comm = (model.To + model.Tu) * float64(workers-1) / float64(prof.Workers-1)
	}
	b := obs.GlobalBatch
	b0 := baseBatch
	if b0 <= 0 {
		b0 = b
	}
	t := float64(b)/sum + comm
	return goodput.Goodput(obs.Noise, b, b0, t)
}

// validateJoins checks a join schedule against the run shape.
func validateJoins(joins []Join, epochs, growthEpoch int) error {
	prev := 0
	for i, j := range joins {
		if j.Epoch < 1 || j.Epoch >= epochs {
			return fmt.Errorf("runtime: join %d epoch %d outside [1, %d)", i, j.Epoch, epochs)
		}
		if j.Epoch < prev {
			return fmt.Errorf("runtime: join %d epoch %d before join %d", i, j.Epoch, i-1)
		}
		if j.Batch < 1 {
			return fmt.Errorf("runtime: join %d batch %d", i, j.Batch)
		}
		if j.ProbeSteps < 0 {
			return fmt.Errorf("runtime: join %d probe steps %d", i, j.ProbeSteps)
		}
		switch j.Replan {
		case "", ReplanKeep, ReplanOptPerf:
		default:
			return fmt.Errorf("runtime: join %d unknown replan policy %q", i, j.Replan)
		}
		if growthEpoch > 0 && j.Epoch == growthEpoch {
			return fmt.Errorf("runtime: join %d epoch %d collides with the growth epoch", i, j.Epoch)
		}
		prev = j.Epoch
	}
	return nil
}

// clampSchedule drops fault events targeting ranks outside the
// incarnation: a schedule may name a worker that has not joined yet, and
// its events only become live once the join grows the cluster past that
// rank. (After an eviction, Schedule.Remap drops not-yet-joined workers'
// events entirely — renumbering cannot know future ranks.)
func clampSchedule(s faultinject.Schedule, workers int) faultinject.Schedule {
	keep := true
	for _, e := range s.Events {
		if e.Worker >= workers {
			keep = false
			break
		}
	}
	if keep {
		return s
	}
	var out faultinject.Schedule
	for _, e := range s.Events {
		if e.Worker < workers {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// probeJoin bootstraps the joining worker's compute profile the way the
// paper admits an unprofiled node (Eq. 8): a few timed forward/backward
// passes on a throwaway replica, at two batch sizes so the linear model
// a(b)+P(b) is fittable. The replica comes from its own split stream and
// the probe batch reads the dataset head directly, so the probe never
// advances the training run's randomness or data order — determinism of
// the committed trajectory survives any probe timing.
func probeJoin(cfg *Config, j Join, seq int) (perSample float64, node *optperf.NodeModel) {
	steps := j.ProbeSteps
	if steps <= 0 {
		steps = defaultProbeSteps
	}
	net := nn.NewMLP(cfg.Sizes, cfg.Src.Split(fmt.Sprintf("probe-%d", seq)))
	b1 := j.Batch
	if n := cfg.Dataset.Len(); b1 > n {
		b1 = n
	}
	if b1 < 1 {
		b1 = 1
	}
	b2 := b1 / 2
	if b2 < 1 {
		b2 = b1 + 1
		if b2 > cfg.Dataset.Len() {
			b2 = b1
		}
	}
	learner := &perfmodel.NodeLearner{}
	var dlogits *tensor.T
	for s := 0; s < steps; s++ {
		for _, b := range []int{b1, b2} {
			x, labels := cfg.Dataset.Batch(identity(b))
			start := time.Now()
			net.ZeroGrad()
			logits := net.Forward(x)
			forward := time.Since(start).Seconds()
			start = time.Now()
			dlogits = tensor.Reuse(dlogits, logits.Rows(), logits.Cols())
			nn.SoftmaxCrossEntropyInto(dlogits, logits, labels)
			net.Backward(dlogits)
			backward := time.Since(start).Seconds()
			// Sub-nanosecond phases round to zero on coarse clocks; clamp so
			// the observation still counts.
			if forward <= 0 {
				forward = 1e-9
			}
			if backward <= 0 {
				backward = 1e-9
			}
			learner.Observe(b, forward, backward)
		}
	}
	perSample, err := learner.PerSampleTime()
	if err != nil {
		perSample = 0
	}
	if m, err := learner.Fit(); err == nil {
		node = &m
	}
	return perSample, node
}

// replanJoin picks the grown cluster's local batches. The default appends
// the joiner's batch to the incumbents' current plan; ReplanOptPerf fits
// the paper's performance model to the incumbents' live profile, extends
// it with the joiner's probe model, and re-solves OptPerf for the grown
// total — falling back to the default whenever a model is missing or the
// solve is unusable, so re-planning can never break the run.
func replanJoin(policy string, prof *Profile, current []int, joinBatch int, joinNode *optperf.NodeModel) (batches []int, replanned bool) {
	batches = append(append([]int(nil), current...), joinBatch)
	if policy != ReplanOptPerf || prof == nil || joinNode == nil {
		return batches, false
	}
	model, _, err := prof.FitModel(nil)
	if err != nil || len(model.Nodes) != len(current) {
		return batches, false
	}
	total := 0
	for _, b := range batches {
		total += b
	}
	sub := optperf.ClusterModel{Gamma: model.Gamma, To: model.To, Tu: model.Tu}
	sub.Nodes = append(append([]optperf.NodeModel(nil), model.Nodes...), *joinNode)
	plan, err := optperf.Solve(sub, total)
	if err != nil || len(plan.Batches) != len(batches) {
		return batches, false
	}
	for _, b := range plan.Batches {
		if b < 1 {
			return batches, false
		}
	}
	return plan.Batches, true
}

// checkpointState is the two-phase commit's prepare: it verifies every
// replica's weights AND optimizer velocity are bitwise-identical at the
// last committed step, and returns both as an owned checkpoint. Any
// divergence aborts the membership change before anything is mutated.
func checkpointState(exec executor, replicas []*nn.Network, opts []*nn.SGD) (weights, velocity []float64, err error) {
	ref, err := exec.finalWeights()
	if err != nil {
		return nil, nil, err
	}
	weights = append([]float64(nil), ref...)
	velocity = opts[0].FlatVelocity(replicas[0].Params())
	for i := 1; i < len(opts); i++ {
		if d := maxAbsDiff(velocity, opts[i].FlatVelocity(replicas[i].Params())); d != 0 {
			return nil, nil, fmt.Errorf("runtime: replica %d optimizer state diverged by %g at membership change", i, d)
		}
	}
	return weights, velocity, nil
}

// growCluster commits one worker hot-join and returns the grown
// incarnation, which starts at startEpoch. The join is recorded in
// res.Joins; the incarnation's source is the join's own split stream, so a
// fresh run launched from the recorded checkpoint (weights + velocity) on
// the grown cluster reproduces the post-join trajectory bitwise.
func growCluster(cfg *Config, inc *incarnation, res *Result, exec executor, replicas []*nn.Network, opts []*nn.SGD, j Join, reason string, startEpoch int, remaining []Join, localBatches []int, lr float64) (*incarnation, error) {
	if j.Batch < 1 {
		j.Batch = 1
	}
	checkpoint, velocity, err := checkpointState(exec, replicas, opts)
	if err != nil {
		return nil, err
	}
	seq := len(res.Joins) + 1
	perSample, joinNode := probeJoin(cfg, j, seq)
	batches, replanned := replanJoin(j.Replan, exec.profile(), localBatches, j.Batch, joinNode)
	joinerOrig := len(cfg.LocalBatches) + len(res.Joins)
	jr := JoinRecord{
		Epoch:      startEpoch,
		Step:       res.Steps,
		Worker:     joinerOrig,
		Batch:      batches[len(batches)-1],
		Batches:    append([]int(nil), batches...),
		Checkpoint: checkpoint,
		Velocity:   velocity,
		PerSample:  perSample,
		Replanned:  replanned,
		Reason:     reason,
	}
	res.Joins = append(res.Joins, jr)
	return &incarnation{
		localBatches: batches,
		lr:           lr,
		src:          cfg.Src.Split(fmt.Sprintf("join-%d", seq)),
		initWeights:  checkpoint,
		initVelocity: velocity,
		schedule:     inc.schedule,
		epochBase:    startEpoch,
		origIdx:      append(append([]int(nil), inc.origIdx...), joinerOrig),
		pendingJoins: remaining,
	}, nil
}

// shrinkCluster sheds one worker voluntarily at an epoch boundary through
// the eviction path: checkpoint, survivor re-plan (keep), recovery stream,
// fresh optimizer state — exactly the PR 5 recovery semantics, so the
// post-shrink trajectory is bitwise-identical to a fresh run launched from
// the recorded checkpoint on the survivor cluster.
func shrinkCluster(cfg *Config, inc *incarnation, res *Result, exec executor, replicas []*nn.Network, opts []*nn.SGD, victim int, reason string, startEpoch int, localBatches []int, lr float64) (*incarnation, error) {
	n := len(inc.localBatches)
	if n < 2 {
		return nil, ErrNoSurvivors
	}
	if victim < 0 || victim >= n {
		victim = n - 1
	}
	checkpoint, _, err := checkpointState(exec, replicas, opts)
	if err != nil {
		return nil, err
	}
	var survivors []int
	for r := 0; r < n; r++ {
		if r != victim {
			survivors = append(survivors, r)
		}
	}
	batches, _ := replanSurvivors(ReplanKeep, exec.profile(), survivors, localBatches)
	ev := Eviction{
		Epoch:           startEpoch,
		Step:            res.Steps,
		Workers:         []int{inc.origIdx[victim]},
		Reason:          reason,
		SurvivorBatches: batches,
		Checkpoint:      checkpoint,
	}
	origIdx := make([]int, len(survivors))
	for i, s := range survivors {
		origIdx[i] = inc.origIdx[s]
	}
	ev.Survivors = origIdx
	res.Evictions = append(res.Evictions, ev)
	return &incarnation{
		localBatches: batches,
		lr:           lr,
		src:          cfg.Src.Split(fmt.Sprintf("recovery-%d", len(res.Evictions))),
		initWeights:  checkpoint,
		schedule:     inc.schedule.Remap(survivors),
		epochBase:    startEpoch,
		origIdx:      origIdx,
		pendingJoins: inc.pendingJoins,
	}, nil
}
