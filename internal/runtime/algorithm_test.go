package runtime

import (
	"math"
	"sync"
	"testing"
	"time"

	"cannikin/internal/allreduce"
)

// trainWeights runs Train on a fresh config and returns the final weights.
func trainWeights(t *testing.T, backend, algo string, alpha, beta float64, batches []int, mutate func(*Config)) *Result {
	t.Helper()
	cfg := testConfig(t, 7, batches, 300)
	cfg.Backend = backend
	cfg.Allreduce = algo
	cfg.LinkAlpha = alpha
	cfg.LinkBeta = beta
	cfg.BucketBytes = 64 * 8 // many small buckets: the fragile case
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatalf("%s/%s: %v", backend, algo, err)
	}
	return res
}

func assertWeightsBitwise(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d weights, want %d", name, len(got), len(want))
	}
	for j := range got {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("%s: weight %d differs: %x vs %x", name, j, math.Float64bits(got[j]), math.Float64bits(want[j]))
		}
	}
}

// TestAllreduceAlgorithmBackendsAgree extends the sim-vs-live differential
// to every collective algorithm: the per-bucket schedule is derived from
// the config alone, so for each algorithm the sequential reference and the
// concurrent live engine must produce bitwise-identical weights — in both
// comm modes. Different algorithms legitimately differ from each other for
// n >= 3 (each fixes its own association order); that is not asserted here.
func TestAllreduceAlgorithmBackendsAgree(t *testing.T) {
	batches := []int{12, 6, 3} // n=3: non-power-of-2 hd fold-in, fragile order
	for _, algo := range []string{"ring", "hd", "pipeline", "auto"} {
		t.Run(algo, func(t *testing.T) {
			want := trainWeights(t, BackendSim, algo, 0, 0, batches, nil)
			live := trainWeights(t, BackendLive, algo, 0, 0, batches, nil)
			assertWeightsBitwise(t, "live/"+algo, live.FinalWeights, want.FinalWeights)
			merged := trainWeights(t, BackendLive, algo, 0, 0, batches, func(c *Config) { c.CommMode = CommMerged })
			assertWeightsBitwise(t, "live-merged/"+algo, merged.FinalWeights, want.FinalWeights)
		})
	}
	// Fitted constants change which schedule auto picks; the choice must
	// still agree across backends because both resolve from the same
	// (alpha, beta) through the same pure function.
	t.Run("auto-fitted", func(t *testing.T) {
		const alpha, beta = 2e-6, 1e-9
		want := trainWeights(t, BackendSim, "auto", alpha, beta, batches, nil)
		live := trainWeights(t, BackendLive, "auto", alpha, beta, batches, nil)
		assertWeightsBitwise(t, "live/auto-fitted", live.FinalWeights, want.FinalWeights)
	})
}

// TestWorkerAlgorithmMatchesTrain runs the multi-process differential under
// halving-doubling: three TrainWorker ranks over a real TCP ring — hd's
// non-neighbor exchanges ride the transport's peer links — must be
// bitwise-identical to the sequential single-process reference.
func TestWorkerAlgorithmMatchesTrain(t *testing.T) {
	batches := []int{8, 6, 4}
	ref := testConfig(t, 7, batches, 200)
	ref.Backend = BackendSim
	ref.Allreduce = "hd"
	ref.BucketBytes = 64 * 8
	want, err := Train(ref)
	if err != nil {
		t.Fatal(err)
	}

	n := len(batches)
	rings, closeAll := buildWorkerRings(t, n, 0)
	defer closeAll()
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := testConfig(t, 7, batches, 200)
			cfg.Allreduce = "hd"
			cfg.BucketBytes = 64 * 8
			results[rank], errs[rank] = TrainWorker(WorkerConfig{
				Config: cfg,
				Rank:   rank,
				Ring:   rings[rank],
				Policy: allreduce.RetryPolicy{HopTimeout: 200 * time.Millisecond},
			})
		}(i)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for rank, got := range results {
		if got.Steps != want.Steps {
			t.Fatalf("rank %d: %d steps, reference ran %d", rank, got.Steps, want.Steps)
		}
		assertWeightsBitwise(t, "worker-hd", got.FinalWeights, want.FinalWeights)
	}
}

// TestBucketAlgorithms pins the per-bucket resolution rule: pure in the
// config, never AlgoAuto in the output, and auto switching per bucket size.
func TestBucketAlgorithms(t *testing.T) {
	if _, err := bucketAlgorithms("warp", 0, 0, 100, 10, 4); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	algs, err := bucketAlgorithms("", 0, 0, 100, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(algs) != 4 {
		t.Fatalf("%d buckets, want 4", len(algs))
	}
	for _, a := range algs {
		if a != allreduce.AlgoRing {
			t.Fatalf("default resolved to %q, want ring", a)
		}
	}
	// Unfitted auto: the calibrated threshold switches at 128 KiB — a run
	// with one large and one small (tail) bucket must mix schedules.
	dim := 40<<10 + 100 // bucket 0: 40960 elems = 320 KiB; bucket 1: 100 elems
	algs, err = bucketAlgorithms("auto", 0, 0, dim, 40<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if algs[0] != allreduce.AlgoPipeline || algs[1] != allreduce.AlgoHD {
		t.Fatalf("auto resolved to %v, want [pipeline hd]", algs)
	}
	for _, a := range algs {
		if a == allreduce.AlgoAuto {
			t.Fatal("auto leaked through resolution")
		}
	}
}

// TestProfileLinkFit feeds a synthetic profile generated from known link
// constants through the two-point fit and checks they are recovered.
func TestProfileLinkFit(t *testing.T) {
	const (
		alpha = 3e-6
		beta  = 2e-9
		n     = 4
		dim   = 1000 // 4 buckets of 300 + tail of 100: payload variation
		bl    = 300
	)
	buckets := (dim + bl - 1) / bl
	hops := 2.0 * (n - 1)
	tailLen := float64(dim-bl) / float64(buckets-1)
	p := &Profile{Workers: n, BucketLen: bl, Dim: dim}
	for s := 0; s < 4; s++ {
		p.Samples = append(p.Samples, Sample{
			Buckets: buckets,
			TuBusy:  hops * (alpha + beta*8*bl/n),
			CommBusy: hops*(alpha+beta*8*bl/n) +
				float64(buckets-1)*hops*(alpha+beta*8*tailLen/n),
		})
	}
	m, err := p.LinkFit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-alpha)/alpha > 1e-6 || math.Abs(m.Beta-beta)/beta > 1e-6 {
		t.Fatalf("fit (%g, %g), want (%g, %g)", m.Alpha, m.Beta, alpha, beta)
	}

	// An even partition has a single payload size: the fit must refuse
	// rather than invent constants.
	even := &Profile{Workers: n, BucketLen: 250, Dim: 1000}
	even.Samples = append(even.Samples, Sample{Buckets: 4, TuBusy: 1e-5, CommBusy: 4e-5})
	if _, err := even.LinkFit(); err == nil {
		t.Fatal("degenerate fit accepted")
	}
}

// TestConfigValidatesAllreduce covers the new config surface.
func TestConfigValidatesAllreduce(t *testing.T) {
	cfg := testConfig(t, 1, []int{4, 4}, 64)
	cfg.Allreduce = "warp"
	if _, err := Train(cfg); err == nil {
		t.Fatal("unknown allreduce algorithm accepted")
	}
	cfg = testConfig(t, 1, []int{4, 4}, 64)
	cfg.LinkAlpha = -1
	if _, err := Train(cfg); err == nil {
		t.Fatal("negative link alpha accepted")
	}
}
