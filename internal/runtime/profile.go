package runtime

import (
	"fmt"

	"cannikin/internal/optperf"
	"cannikin/internal/perfmodel"
	"cannikin/internal/stats"
)

// Sample is one worker's measured wall-clock phases for one step — the
// live-execution analogue of what the paper's profiler records on real
// GPUs (§4.1): a_i, P_i, syncStart_i, and the bucket synchronization
// times. All durations are in seconds; instants are relative to the
// worker's step start.
type Sample struct {
	Epoch, Step, Worker int
	// Batch is the local batch size this step (shrinks on the epoch's
	// final partial batch).
	Batch int
	// Buckets is the number of gradient buckets reduced.
	Buckets int
	// Pre is forward + loss time; Backprop the backward-pass time; Post
	// the gradient write-back + optimizer time. The model's non-backprop
	// time a_i(b) is Pre + Post.
	Pre, Backprop, Post float64
	// SyncStart is when the first bucket entered the ring — the measured
	// syncStart_i, always inside the backprop window.
	SyncStart float64
	// LastBucketDone is when the final bucket's reduction returned.
	LastBucketDone float64
	// CommBusy is the total time spent inside ring reductions; TuBusy the
	// final bucket's share (the measured T_u; T_o is the rest).
	CommBusy, TuBusy float64
}

// A returns the measured non-backprop compute time a_i.
func (s Sample) A() float64 { return s.Pre + s.Post }

// Gamma returns the measured overlap ratio γ_i: the fraction of backprop
// elapsed when the first bucket became ready, clamped into (0, 1].
func (s Sample) Gamma() float64 {
	if s.Backprop <= 0 {
		return 1
	}
	return stats.Clamp((s.SyncStart-s.Pre)/s.Backprop, 1e-6, 1)
}

// To returns the measured synchronization time of all buckets except the
// last.
func (s Sample) To() float64 {
	if d := s.CommBusy - s.TuBusy; d > 0 {
		return d
	}
	return 0
}

// Tu returns the measured synchronization time of the last bucket.
func (s Sample) Tu() float64 { return s.TuBusy }

// Profile is the full measured trace of a live run.
type Profile struct {
	// Workers is the number of ranks; BucketLen the bucket size in
	// float64 elements; Dim the flat model dimension the buckets partition.
	Workers   int
	BucketLen int
	Dim       int
	// Samples are ordered by (Step, Worker).
	Samples []Sample
}

// WorkerSamples returns rank i's samples in step order.
func (p *Profile) WorkerSamples(i int) []Sample {
	var out []Sample
	for _, s := range p.Samples {
		if s.Worker == i {
			out = append(out, s)
		}
	}
	return out
}

// OverlapObserved reports whether communication measurably overlapped
// compute: every multi-bucket sample must have entered the ring strictly
// before its backprop finished and strictly before its last bucket
// completed, and at least one such sample must exist.
func (p *Profile) OverlapObserved() bool {
	seen := false
	for _, s := range p.Samples {
		if s.Buckets < 2 {
			continue
		}
		if s.SyncStart >= s.Pre+s.Backprop || s.SyncStart >= s.LastBucketDone {
			return false
		}
		seen = true
	}
	return seen
}

// Feed replays the profile into a perfmodel cluster learner exactly as an
// online profiler would: per-step (batch, a, P) observations on each
// node's learner, one inverse-variance communication observation per
// epoch, and an EndEpoch after every epoch boundary.
func (p *Profile) Feed(l *perfmodel.ClusterLearner) {
	if len(p.Samples) == 0 {
		return
	}
	var gamma, to, tu stats.Welford
	flush := func() {
		if n := float64(gamma.N()); n > 0 {
			l.ObserveComm(perfmodel.CommObservation{
				Gamma: gamma.Mean(), GammaVar: gamma.Var() / n,
				To: to.Mean(), ToVar: to.Var() / n,
				Tu: tu.Mean(), TuVar: tu.Var() / n,
			})
		}
		l.EndEpoch()
		gamma, to, tu = stats.Welford{}, stats.Welford{}, stats.Welford{}
	}
	cur := p.Samples[0].Epoch
	for _, s := range p.Samples {
		if s.Epoch != cur {
			flush()
			cur = s.Epoch
		}
		l.Node(s.Worker).Observe(s.Batch, s.A(), s.Backprop)
		gamma.Add(s.Gamma())
		to.Add(s.To())
		tu.Add(s.Tu())
	}
	flush()
}

// LinkFit fits the per-hop link cost model t(b) = α + β·b from the
// profile's measured per-bucket reduce times, closing the loop that prices
// the "auto" collective algorithm: run once with any algorithm, fit, and
// feed the constants back through Config.LinkAlpha/LinkBeta.
//
// Each sample yields up to two observations of "one ring reduce of payload
// d": the final bucket's time (TuBusy; a full bucket of BucketLen
// elements) and the mean non-final bucket time (To/(Buckets-1), at the
// non-final buckets' mean length — the partition's short tail bucket is
// among them). A ring reduce moves d/n elements per message over 2(n-1)
// serialized hops, so perfmodel.FitLink recovers α and β from the least-
// squares line through (message bytes, seconds). Needs payload variation:
// when Dim divides evenly into buckets every observation sits at one
// payload size and ErrNoModel is returned — callers then keep the
// calibrated threshold fallback.
func (p *Profile) LinkFit() (perfmodel.LinkModel, error) {
	n := p.Workers
	if n < 2 || p.BucketLen < 1 || p.Dim < 1 {
		return perfmodel.LinkModel{}, fmt.Errorf("%w: profile of %d workers, bucket %d, dim %d",
			perfmodel.ErrNoModel, n, p.BucketLen, p.Dim)
	}
	buckets := (p.Dim + p.BucketLen - 1) / p.BucketLen
	// Mean element count of the non-final buckets (buckets 1..B-1 cover
	// everything beyond bucket 0's full BucketLen).
	var tailLen float64
	if buckets >= 2 {
		tailLen = float64(p.Dim-p.BucketLen) / float64(buckets-1)
	}
	var bytes, secs []float64
	for _, s := range p.Samples {
		// Guard against mixed incarnations (an eviction changes the
		// partition): only samples matching the profile's own partition
		// price the link.
		if s.Buckets != buckets {
			continue
		}
		if s.TuBusy > 0 {
			bytes = append(bytes, 8*float64(p.BucketLen)/float64(n))
			secs = append(secs, s.TuBusy)
		}
		if buckets >= 2 {
			if to := s.To(); to > 0 {
				bytes = append(bytes, 8*tailLen/float64(n))
				secs = append(secs, to/float64(buckets-1))
			}
		}
	}
	return perfmodel.FitLink(bytes, secs, 2*float64(n-1))
}

// FitModel fits the paper's performance model to the measured samples and
// returns it with the worst per-node fit error (mean relative residual).
// caps, when non-nil, sets per-node MaxBatch; it must have Workers
// entries.
func (p *Profile) FitModel(caps []int) (optperf.ClusterModel, float64, error) {
	l := perfmodel.NewClusterLearner(p.Workers)
	p.Feed(l)
	model, err := l.Model(caps)
	return model, l.MaxFitError(), err
}
