package runtime

import (
	"fmt"

	"cannikin/internal/allreduce"
	"cannikin/internal/gns"
	"cannikin/internal/nn"
	"cannikin/internal/tensor"
)

// seqExec is the sequential reference engine: one goroutine runs every
// worker's forward/backward in rank order, then synchronizes with a
// bucketed ring all-reduce. It performs the exact arithmetic of the live
// engine — same bucket boundaries, same per-bucket ring summation order —
// which is what makes the bitwise differential test possible.
type seqExec struct {
	replicas  []*nn.Network
	opts      []*nn.SGD
	bucketLen int
	// algs is the per-bucket collective schedule, resolved once by the
	// driver (bucketAlgorithms) so sim and live reduce identically.
	algs []allreduce.Algorithm
	// Persistent step state: flat gradient staging buffers, per-replica
	// loss-gradient workspaces, cached parameter slices, the per-bucket
	// view slice, and the GNS sample backing arrays. All are reused across
	// steps, so the steady-state step re-allocates none of them.
	grads   [][]float64
	views   [][]float64
	dlogits []*tensor.T
	params  [][]*nn.Param
	batches []int
	localSq []float64
}

func newSeqExec(replicas []*nn.Network, opts []*nn.SGD, bucketLen int, algs []allreduce.Algorithm) *seqExec {
	n := len(replicas)
	e := &seqExec{
		replicas:  replicas,
		opts:      opts,
		bucketLen: bucketLen,
		algs:      algs,
		grads:     make([][]float64, n),
		views:     make([][]float64, n),
		dlogits:   make([]*tensor.T, n),
		params:    make([][]*nn.Param, n),
		batches:   make([]int, n),
		localSq:   make([]float64, n),
	}
	for i, net := range replicas {
		e.grads[i] = make([]float64, net.NumParams())
		e.params[i] = net.Params()
	}
	return e
}

// step runs one synchronized step. The returned sample aliases
// exec-owned buffers valid until the next step call.
func (e *seqExec) step(epoch, step int, xs []*tensor.T, labels [][]int, stepWeights []float64, lr float64) (gns.Sample, error) {
	n := len(e.replicas)
	sample := gns.Sample{
		Batches:      e.batches[:n],
		LocalSqNorms: e.localSq[:n],
	}
	for i, net := range e.replicas {
		net.ZeroGrad()
		logits := net.Forward(xs[i])
		e.dlogits[i] = tensor.Reuse(e.dlogits[i], logits.Rows(), logits.Cols())
		nn.SoftmaxCrossEntropyInto(e.dlogits[i], logits, labels[i])
		net.Backward(e.dlogits[i])
		net.FlatGradsInto(e.grads[i])
		sample.Batches[i] = xs[i].Rows()
		sample.LocalSqNorms[i] = sqNorm(e.grads[i])
	}
	// Bucket-by-bucket reduce under the driver's per-bucket schedule —
	// the same (bucket, algorithm) sequence the live workers run.
	dim := len(e.grads[0])
	for k, lo := 0, 0; lo < dim; k, lo = k+1, lo+e.bucketLen {
		hi := lo + e.bucketLen
		if hi > dim {
			hi = dim
		}
		for i, g := range e.grads {
			e.views[i] = g[lo:hi]
		}
		if err := allreduce.AllReduceAlg(e.views, stepWeights, e.algs[k]); err != nil {
			return sample, err
		}
	}
	sample.GlobalSqNorm = sqNorm(e.grads[0])
	for i, net := range e.replicas {
		net.SetFlatGrads(e.grads[i])
		e.opts[i].Step(e.params[i], lr)
	}
	return sample, nil
}

func (e *seqExec) network() *nn.Network { return e.replicas[0] }

func (e *seqExec) finalWeights() ([]float64, error) {
	ref := e.replicas[0].FlatWeights()
	for i := 1; i < len(e.replicas); i++ {
		if d := maxAbsDiff(ref, e.replicas[i].FlatWeights()); d > 1e-9 {
			return nil, fmt.Errorf("runtime: replica %d diverged by %g", i, d)
		}
	}
	return ref, nil
}

func (e *seqExec) profile() *Profile { return nil }

func (e *seqExec) close() {}
