package runtime

import (
	"fmt"

	"cannikin/internal/allreduce"
	"cannikin/internal/gns"
	"cannikin/internal/nn"
	"cannikin/internal/tensor"
)

// seqExec is the sequential reference engine: one goroutine runs every
// worker's forward/backward in rank order, then synchronizes with a
// bucketed ring all-reduce. It performs the exact arithmetic of the live
// engine — same bucket boundaries, same per-bucket ring summation order —
// which is what makes the bitwise differential test possible.
type seqExec struct {
	replicas  []*nn.Network
	opts      []*nn.SGD
	bucketLen int
}

func newSeqExec(replicas []*nn.Network, opts []*nn.SGD, bucketLen int) *seqExec {
	return &seqExec{replicas: replicas, opts: opts, bucketLen: bucketLen}
}

func (e *seqExec) step(epoch, step int, xs []*tensor.T, labels [][]int, stepWeights []float64, lr float64) (gns.Sample, error) {
	n := len(e.replicas)
	grads := make([][]float64, n)
	sample := gns.Sample{
		Batches:      make([]int, n),
		LocalSqNorms: make([]float64, n),
	}
	for i, net := range e.replicas {
		net.ZeroGrad()
		logits := net.Forward(xs[i])
		_, dlogits := nn.SoftmaxCrossEntropy(logits, labels[i])
		net.Backward(dlogits)
		grads[i] = net.FlatGrads()
		sample.Batches[i] = xs[i].Rows()
		sample.LocalSqNorms[i] = sqNorm(grads[i])
	}
	if err := allreduce.AllReduceBuckets(grads, stepWeights, e.bucketLen); err != nil {
		return sample, err
	}
	sample.GlobalSqNorm = sqNorm(grads[0])
	for i, net := range e.replicas {
		net.SetFlatGrads(grads[i])
		e.opts[i].Step(net.Params(), lr)
	}
	return sample, nil
}

func (e *seqExec) network() *nn.Network { return e.replicas[0] }

func (e *seqExec) finalWeights() ([]float64, error) {
	ref := e.replicas[0].FlatWeights()
	for i := 1; i < len(e.replicas); i++ {
		if d := maxAbsDiff(ref, e.replicas[i].FlatWeights()); d > 1e-9 {
			return nil, fmt.Errorf("runtime: replica %d diverged by %g", i, d)
		}
	}
	return ref, nil
}

func (e *seqExec) profile() *Profile { return nil }

func (e *seqExec) close() {}
