package allreduce

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// ringReference runs the real concurrent ring — one goroutine per rank over
// the channel transport — on the given vectors. It is the oracle the inline
// fast path must match bit for bit.
func ringReference(t *testing.T, vectors [][]float64) {
	t.Helper()
	n := len(vectors)
	ring, err := NewRing(n, 1)
	if err != nil {
		t.Fatalf("NewRing(%d): %v", n, err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := ring.ReduceWith(rank, vectors[rank], Options{}); err != nil {
				t.Errorf("rank %d: %v", rank, err)
			}
		}(i)
	}
	wg.Wait()
}

func randomVectors(rng *rand.Rand, n, dim int) [][]float64 {
	vs := make([][]float64, n)
	for i := range vs {
		vs[i] = make([]float64, dim)
		for j := range vs[i] {
			// Mixed magnitudes so association order matters in the low bits:
			// any re-grouping of the sum would show up as a bit difference.
			vs[i][j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
		}
	}
	return vs
}

func cloneVectors(vs [][]float64) [][]float64 {
	out := make([][]float64, len(vs))
	for i, v := range vs {
		out[i] = append([]float64(nil), v...)
	}
	return out
}

// TestRingReduceInlineBitwise proves the sequential fast path reproduces the
// concurrent ring's results exactly, for every ring size and dimension shape
// the runtime uses — including dims that don't divide evenly and dims below
// the worker count (empty chunks).
func TestRingReduceInlineBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 4, 5, 8} {
		for _, dim := range []int{1, 2, 5, 64, 420, 1024, 4099} {
			vs := randomVectors(rng, n, dim)
			want := cloneVectors(vs)
			ringReference(t, want)
			got := cloneVectors(vs)
			ringReduceInline(got)
			for i := range got {
				for j := range got[i] {
					if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
						t.Fatalf("n=%d dim=%d: vector %d element %d: inline %x ring %x",
							n, dim, i, j, math.Float64bits(got[i][j]), math.Float64bits(want[i][j]))
					}
				}
			}
		}
	}
}

// TestAllReduceSmallUsesSameBits pins the user-visible contract: AllReduce's
// result for a small payload (inline path) is bit-identical to pre-scaling
// by the weights and running the concurrent ring — the exact arithmetic the
// large-payload path performs.
func TestAllReduceSmallUsesSameBits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 4} {
		dim := 512 // 4KB — well under smallReduceBytes
		vs := randomVectors(rng, n, dim)
		weights := make([]float64, n)
		sum := 0.0
		for i := range weights {
			weights[i] = rng.Float64() + 0.1
			sum += weights[i]
		}
		for i := range weights {
			weights[i] /= sum
		}

		want := cloneVectors(vs)
		for i, v := range want {
			for j := range v {
				v[j] *= weights[i]
			}
		}
		ringReference(t, want)

		got := cloneVectors(vs)
		if err := AllReduce(got, weights); err != nil {
			t.Fatalf("AllReduce: %v", err)
		}
		for i := range got {
			for j := range got[i] {
				if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
					t.Fatalf("n=%d: vector %d element %d differs", n, i, j)
				}
			}
		}
	}
}

// TestBucketPartitionBitsByRingSize pins the associativity fact the bucket
// design rests on: with n == 2 workers every reduced element is one two-term
// sum, so any bucket partition is bit-identical; with n >= 3 a different
// partition re-associates the per-element sums and may legitimately change
// low bits. The runtime therefore derives one canonical partition from
// (dim, workers, BucketBytes) instead of assuming partition invariance.
func TestBucketPartitionBitsByRingSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 1000
	for _, n := range []int{2, 3, 4} {
		vs := randomVectors(rng, n, dim)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1 / float64(n)
		}
		a := cloneVectors(vs)
		if err := AllReduceBuckets(a, weights, 64); err != nil {
			t.Fatal(err)
		}
		b := cloneVectors(vs)
		if err := AllReduceBuckets(b, weights, dim); err != nil {
			t.Fatal(err)
		}
		diff := 0
		for j := range a[0] {
			if math.Float64bits(a[0][j]) != math.Float64bits(b[0][j]) {
				diff++
			}
		}
		if n == 2 && diff != 0 {
			t.Fatalf("n=2: partitions must agree bitwise, %d/%d elements differ", diff, dim)
		}
		if n >= 3 && diff == 0 {
			// Not a failure of correctness — but if this starts holding, the
			// partition-sensitivity documentation above is stale.
			t.Logf("n=%d: partitions happened to agree on all %d elements", n, dim)
		}
	}
}
