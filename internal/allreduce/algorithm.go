package allreduce

import "fmt"

// Algorithm names one collective schedule. Every algorithm computes the
// same mathematical sum but fixes a different association order for the
// IEEE additions, so each one is bitwise-deterministic on its own terms:
// the result depends only on (algorithm, n, dim, partition), never on the
// transport, scheduling, or GOMAXPROCS. Mixing algorithms across ranks of
// one reduce is a protocol error; all ranks must pass the same Options.
type Algorithm string

const (
	// AlgoRing is the bandwidth-optimal ring reduce-scatter + all-gather:
	// 2(n-1) serialized neighbor hops of dim/n elements. The default and
	// the reference every golden test pins (the zero value "" means ring).
	AlgoRing Algorithm = "ring"
	// AlgoHD is recursive halving-doubling: ⌈log₂ n⌉ exchange rounds for
	// the reduce-scatter (vector halving, distance n/2 → 1) mirrored by a
	// doubling all-gather. Latency-optimal: 2·log₂(n) hops instead of
	// 2(n-1), the right choice for small payloads where per-hop cost
	// dominates. Non-power-of-2 rings fold the first n-2^⌊log₂n⌋ odd ranks
	// into their even neighbors in a pre/post step. Needs a PeerTransport
	// (non-neighbor links).
	AlgoHD Algorithm = "hd"
	// AlgoPipeline is the chunk-pipelined ring: each ring hop's segment is
	// split into k sub-chunks sent as separate messages, so hop i+1's
	// transfer overlaps hop i's accumulation and the per-message working
	// set stays cache-resident. The association order is exactly the
	// ring's — element-wise identical additions in identical order — so
	// it is bitwise-identical to AlgoRing at every (n, dim, partition).
	AlgoPipeline Algorithm = "pipeline"
	// AlgoAuto prices every candidate with the selector's link cost model
	// and picks the argmin per call (per bucket, when bucketed). The
	// choice is a pure function of (constants, n, payload) — never of
	// scheduling state — so auto runs stay reproducible across backends,
	// transports, and processes given one config.
	AlgoAuto Algorithm = "auto"
)

// ParseAlgorithm validates a user-facing algorithm name ("" means ring).
func ParseAlgorithm(s string) (Algorithm, error) {
	switch a := Algorithm(s); a {
	case "", AlgoRing:
		return AlgoRing, nil
	case AlgoHD, AlgoPipeline, AlgoAuto:
		return a, nil
	default:
		return "", fmt.Errorf("allreduce: unknown algorithm %q (want ring, hd, pipeline, or auto)", s)
	}
}

// Selector prices collective algorithms with a fitted per-link cost model
//
//	t(b) = Alpha + Beta·b
//
// (Alpha: per-hop latency in seconds, Beta: seconds per byte) and picks
// the cheapest schedule for a payload. The constants come from a measured
// runtime.Profile via perfmodel.FitLink; the zero Selector has no fit yet
// and falls back to calibrated size thresholds (hdSmallBytes), the same
// shape of switch MPI libraries ship as defaults.
type Selector struct {
	Alpha float64 // per-hop link latency, seconds
	Beta  float64 // per-byte link cost, seconds
}

// hdSmallBytes is the calibrated fallback threshold: payloads at or below
// it are latency-bound and take halving-doubling; larger ones take the
// chunk-pipelined ring. 128 KiB sits where the measured per-hop cost
// (~1-2µs on loopback/channels) stops dominating the per-byte cost.
const hdSmallBytes = 128 << 10

// pipelineTargetBytes is the sub-chunk size the pipelined ring aims for:
// large enough to amortize per-message overhead, small enough that one
// sub-chunk per live rank stays cache-resident. 64 KiB ≈ half an L2 way
// per rank on common parts.
const pipelineTargetBytes = 64 << 10

// pipelineMaxChunks caps the sub-chunk fan-out per hop so tiny payloads
// never dissolve into per-element messages.
const pipelineMaxChunks = 16

// pipelineChunks returns the number of in-flight sub-chunks per ring hop
// for an n-way reduce of dim elements — a pure function of (n, dim), so
// the message schedule (though not the arithmetic, which is
// partition-independent for the pipelined ring) is reproducible.
func pipelineChunks(n, dim int) int {
	if n < 2 || dim <= 0 {
		return 1
	}
	chunkBytes := 8 * ((dim + n - 1) / n)
	k := (chunkBytes + pipelineTargetBytes - 1) / pipelineTargetBytes
	if k < 1 {
		k = 1
	}
	if k > pipelineMaxChunks {
		k = pipelineMaxChunks
	}
	return k
}

// Fitted reports whether the selector carries measured link constants.
func (s Selector) Fitted() bool { return s.Alpha > 0 && s.Beta > 0 }

// Cost predicts the wall-clock seconds of one algorithm reducing dim
// float64s across n ranks, under the selector's link model. Only relative
// order matters for selection; the formulas are the standard collective
// cost models:
//
//	ring:     2(n-1) sequential hops of b/n bytes
//	hd:       2⌈log₂ g⌉ exchange rounds of halving size over the 2^⌊log₂n⌋
//	          core group, plus a full-vector fold-in round-trip when n is
//	          not a power of two
//	pipeline: a (2(n-1)+k-1)-stage pipe of b/(nk)-byte messages — the k-way
//	          overlap divides the serialized per-byte term while adding
//	          k-1 fill/drain hops
func (s Selector) Cost(a Algorithm, n, dim int) float64 {
	if n < 2 || dim <= 0 {
		return 0
	}
	b := 8 * float64(dim)
	nf := float64(n)
	switch a {
	case AlgoRing, "":
		return 2 * (nf - 1) * (s.Alpha + s.Beta*b/nf)
	case AlgoHD:
		g, q := 1, 0
		for g*2 <= n {
			g *= 2
			q++
		}
		gf := float64(g)
		cost := 2*float64(q)*s.Alpha + 2*s.Beta*b*(gf-1)/gf
		if n != g {
			cost += 2 * (s.Alpha + s.Beta*b) // fold-in send + result return
		}
		return cost
	case AlgoPipeline:
		k := float64(pipelineChunks(n, dim))
		stages := 2*(nf-1) + k - 1
		return stages * (s.Alpha + s.Beta*b/(nf*k))
	default:
		return 0
	}
}

// Pick returns the algorithm to run for an n-way reduce of dim float64s:
// the cost-model argmin over {hd, pipeline, ring} when the selector is
// fitted, else the calibrated size threshold. Deterministic given
// (selector, n, dim).
func (s Selector) Pick(n, dim int) Algorithm {
	if n < 2 || dim <= 0 {
		return AlgoRing
	}
	if !s.Fitted() {
		if 8*dim <= hdSmallBytes {
			return AlgoHD
		}
		return AlgoPipeline
	}
	best, bestCost := AlgoRing, s.Cost(AlgoRing, n, dim)
	for _, a := range [...]Algorithm{AlgoHD, AlgoPipeline} {
		if c := s.Cost(a, n, dim); c < bestCost {
			best, bestCost = a, c
		}
	}
	return best
}

// Resolve maps an algorithm option to the concrete schedule for one call:
// auto is priced per payload, the zero value means ring. Callers that must
// agree on a schedule across processes (the runtime's per-bucket choice)
// call this with shared constants and pass the result explicitly.
func (s Selector) Resolve(a Algorithm, n, dim int) Algorithm {
	switch a {
	case AlgoAuto:
		return s.Pick(n, dim)
	case "":
		return AlgoRing
	default:
		return a
	}
}
