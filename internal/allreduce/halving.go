package allreduce

import (
	"fmt"
	"time"
)

// Recursive halving-doubling all-reduce (Rabenseifner / MPICH "short
// message" schedule). The n ranks form a core group of g = 2^⌊log₂n⌋
// members; the reduce-scatter runs ⌈log₂g⌉ exchange rounds with recursive
// vector halving and distance halving (g/2, g/4, …, 1), the all-gather
// mirrors them back. When n is not a power of two, the first 2(n-g) ranks
// fold pairwise in a pre-step — each odd rank sends its whole segment to
// its even neighbor, idles through the core rounds, and receives the
// finished result in a post-step.
//
// Determinism: every round accumulates kept[j] += received[j], so the
// final value of each element is a fixed binary tree over the (pre-folded)
// rank contributions, determined by (n, dim) alone. hdReduceInline
// replays exactly that tree sequentially; the conformance suite pins the
// distributed schedule to it bitwise on every transport.
//
// Span bounds use recursive halving with mid = lo + (hi-lo)/2 — in
// general different bounds from the ring's ⌊c·dim/n⌋ chunks, which is
// fine: the association order is the algorithm's own, not the ring's.

// hdGroup returns the core group size g (largest power of two ≤ n), the
// round count q = log₂ g, and the number of folded pairs n - g.
func hdGroup(n int) (g, q, ext int) {
	g, q = 1, 0
	for g*2 <= n {
		g *= 2
		q++
	}
	return g, q, n - g
}

// hdGroupRank maps a core-group id to its ring rank: the first ext group
// members are the even halves of the folded pairs, the rest follow after
// the folded region.
func hdGroupRank(gid, ext int) int {
	if gid < ext {
		return 2 * gid
	}
	return gid + ext
}

// peer returns rank's cached direct link to another rank, resolving it
// through the transport's PeerTransport extension on first use. The cache
// lives in rank-private scratch, so steady-state lookups are lock-free
// and allocation-free.
func (r *Ring) peer(rank, to int) (Endpoint, error) {
	sc := &r.scratch[rank]
	if sc.peers == nil {
		sc.peers = make([]Endpoint, r.n)
	}
	if ep := sc.peers[to]; ep != nil {
		return ep, nil
	}
	pt, ok := r.tr.(PeerTransport)
	if !ok {
		return nil, fmt.Errorf("allreduce: transport %T has no peer links (required by halving-doubling)", r.tr)
	}
	ep, err := pt.Peer(rank, to)
	if err != nil {
		return nil, err
	}
	sc.peers[to] = ep
	return ep, nil
}

// hdCall is the per-call hop state of one rank's halving-doubling reduce:
// the guarded-hop policy, fault-injection bookkeeping, and the circulating
// spare buffer (same contract as the ring path: a consumed receive buffer
// becomes the next send buffer).
type hdCall struct {
	r         *Ring
	rank      int
	opts      Options
	p         RetryPolicy
	hop       int
	firstSend bool
	spare     []float64
}

func (c *hdCall) stage(src []float64) []float64 {
	var msg []float64
	if cap(c.spare) >= len(src) {
		msg = c.spare[:len(src)]
		c.spare = nil
	} else {
		msg = make([]float64, len(src))
	}
	copy(msg, src)
	return msg
}

func (c *hdCall) send(ep Endpoint, peer int, msg []float64) error {
	if !c.opts.Guard {
		if err := ep.Send(msg); err != nil {
			return &RingFault{Rank: c.rank, Suspect: peer, Op: "send", Hop: c.hop, Cause: err}
		}
		return nil
	}
	if c.firstSend {
		c.firstSend = false
		if c.opts.SendDelay > 0 {
			time.Sleep(c.opts.SendDelay)
		}
		for d := 0; d < c.opts.SendDrops; d++ {
			time.Sleep(c.p.HopTimeout)
		}
	}
	if err := ep.SendTimed(msg, c.p); err != nil {
		return &RingFault{Rank: c.rank, Suspect: peer, Op: "send", Hop: c.hop, Cause: err}
	}
	return nil
}

func (c *hdCall) recv(ep Endpoint, peer, want int) ([]float64, error) {
	var msg []float64
	var err error
	if c.opts.Guard {
		msg, err = ep.RecvTimed(c.p)
	} else {
		msg, err = ep.Recv()
	}
	if err != nil {
		return nil, &RingFault{Rank: c.rank, Suspect: peer, Op: "recv", Hop: c.hop, Cause: err}
	}
	if len(msg) != want {
		return nil, fmt.Errorf("allreduce: hd rank %d hop %d: %d elements from rank %d, want %d",
			c.rank, c.hop, len(msg), peer, want)
	}
	return msg, nil
}

// reduceHD performs rank's share of one halving-doubling all-reduce. The
// transport must implement PeerTransport; every rank of the ring must
// call it concurrently with equal options.
func (r *Ring) reduceHD(rank int, seg []float64, opts Options) error {
	n := r.n
	dim := len(seg)
	sc := &r.scratch[rank]
	g, q, ext := hdGroup(n)

	c := hdCall{r: r, rank: rank, opts: opts, firstSend: true, spare: sc.spare}
	sc.spare = nil
	if opts.Guard {
		c.p = opts.Policy.WithDefaults()
	}
	finish := func(err error) error {
		sc.spare = c.spare
		return err
	}

	// Folded odd ranks: hand the whole segment to the even neighbor, then
	// wait out the core rounds and copy the finished result back in.
	if rank < 2*ext && rank%2 == 1 {
		ep, err := r.peer(rank, rank-1)
		if err != nil {
			return finish(err)
		}
		if err := c.send(ep, rank-1, c.stage(seg)); err != nil {
			return finish(err)
		}
		c.hop++
		msg, err := c.recv(ep, rank-1, dim)
		if err != nil {
			return finish(err)
		}
		copy(seg, msg)
		c.spare = msg
		return finish(nil)
	}

	var gid int
	if rank < 2*ext {
		gid = rank / 2
	} else {
		gid = rank - ext
	}

	// Pre-step: absorb the folded neighbor's contribution.
	if rank < 2*ext {
		ep, err := r.peer(rank, rank+1)
		if err != nil {
			return finish(err)
		}
		msg, err := c.recv(ep, rank+1, dim)
		if err != nil {
			return finish(err)
		}
		for j := range seg {
			seg[j] += msg[j]
		}
		c.spare = msg
		c.hop++
	}

	// Reduce-scatter: q rounds of recursive vector halving. spans records
	// the [lo,hi) window per level so the all-gather can mirror it; the
	// slice is rank-private scratch reused across calls.
	if cap(sc.spans) < 2*(q+1) {
		sc.spans = make([]int, 2*(q+1))
	}
	spans := sc.spans[:2*(q+1)]
	lo, hi := 0, dim
	spans[0], spans[1] = lo, hi
	for i := 0; i < q; i++ {
		dist := g >> (i + 1)
		partner := hdGroupRank(gid^dist, ext)
		ep, err := r.peer(rank, partner)
		if err != nil {
			return finish(err)
		}
		mid := lo + (hi-lo)/2
		var klo, khi, slo, shi int
		if gid&dist == 0 {
			klo, khi, slo, shi = lo, mid, mid, hi
		} else {
			klo, khi, slo, shi = mid, hi, lo, mid
		}
		if err := c.send(ep, partner, c.stage(seg[slo:shi])); err != nil {
			return finish(err)
		}
		msg, err := c.recv(ep, partner, khi-klo)
		if err != nil {
			return finish(err)
		}
		dst := seg[klo:khi]
		for j := range dst {
			dst[j] += msg[j]
		}
		c.spare = msg
		c.hop++
		lo, hi = klo, khi
		spans[2*(i+1)], spans[2*(i+1)+1] = lo, hi
	}

	// All-gather: mirror the rounds back with recursive doubling. At step
	// i the rank holds the finished data of its level-(i+1) window and
	// swaps it for the partner's sibling half, restoring the level-i
	// window.
	for i := q - 1; i >= 0; i-- {
		dist := g >> (i + 1)
		partner := hdGroupRank(gid^dist, ext)
		ep, err := r.peer(rank, partner)
		if err != nil {
			return finish(err)
		}
		plo, phi := spans[2*i], spans[2*i+1]
		mid := plo + (phi-plo)/2
		var siblo, sibhi int
		// Which half this rank holds is decided by its gid bit — the same
		// rule the reduce-scatter used. (Comparing span bounds instead
		// misfires when a half is empty: at dim < g a kept low half can be
		// [plo, plo), indistinguishable by bounds from the high half's
		// start.)
		if gid&dist == 0 { // held the low half: sibling is the high half
			siblo, sibhi = mid, phi
		} else {
			siblo, sibhi = plo, mid
		}
		if err := c.send(ep, partner, c.stage(seg[lo:hi])); err != nil {
			return finish(err)
		}
		msg, err := c.recv(ep, partner, sibhi-siblo)
		if err != nil {
			return finish(err)
		}
		copy(seg[siblo:sibhi], msg)
		c.spare = msg
		c.hop++
		lo, hi = plo, phi
	}

	// Post-step: return the finished segment to the folded neighbor.
	if rank < 2*ext {
		ep, err := r.peer(rank, rank+1)
		if err != nil {
			return finish(err)
		}
		if err := c.send(ep, rank+1, c.stage(seg)); err != nil {
			return finish(err)
		}
		c.hop++
	}
	return finish(nil)
}

// hdReduceInline performs the exact arithmetic of the distributed
// halving-doubling schedule sequentially: the same fold-in pre-step, the
// same kept[j] += received[j] accumulation per round (safe in place —
// within a round every write lands in the writer's kept half, disjoint
// from the partner's kept half it reads), and exact copies for the
// all-gather and post-step. For power-of-two group sizes 2, 4, and 8 the
// per-chunk binary tree is evaluated in one fused pass: the tree for the
// chunk owned by group member c has leaves c ^ bitrev(p) in order, so
//
//	g=8:  ((w_c+w_{c^4}) + (w_{c^2}+w_{c^6})) + ((w_{c^1}+w_{c^5}) + (w_{c^3}+w_{c^7}))
//
// which is the identical association with three-deep instruction-level
// parallelism instead of g-1 separate load-add-store passes — the reason
// hd wins the small-payload benchmarks even on one core.
func hdReduceInline(vectors [][]float64) {
	n := len(vectors)
	dim := len(vectors[0])
	g, q, ext := hdGroup(n)

	// Fold-in pre-step: even absorbs odd, in the distributed operand
	// order (kept += received).
	for i := 0; i < ext; i++ {
		dst, src := vectors[2*i], vectors[2*i+1]
		for j := range dst {
			dst[j] += src[j]
		}
	}
	var wsArr [16][]float64
	var ws [][]float64
	if g <= len(wsArr) {
		ws = wsArr[:g]
	} else {
		ws = make([][]float64, g)
	}
	for m := 0; m < g; m++ {
		ws[m] = vectors[hdGroupRank(m, ext)]
	}

	var loArr, hiArr [16]int
	var los, his []int
	if g <= len(loArr) {
		los, his = loArr[:g], hiArr[:g]
	} else {
		los, his = make([]int, g), make([]int, g)
	}

	switch {
	case ext == 0 && g == 2:
		hdOwnedSpans(dim, g, q, los, his)
		for c := 0; c < g; c++ {
			a, b := ws[c], ws[c^1]
			for j := los[c]; j < his[c]; j++ {
				a[j] = a[j] + b[j]
			}
		}
	case ext == 0 && g == 4:
		hdOwnedSpans(dim, g, q, los, his)
		for c := 0; c < g; c++ {
			a, b, e, f := ws[c], ws[c^2], ws[c^1], ws[c^3]
			for j := los[c]; j < his[c]; j++ {
				a[j] = (a[j] + b[j]) + (e[j] + f[j])
			}
		}
	case ext == 0 && g == 8:
		hdOwnedSpans(dim, g, q, los, his)
		for c := 0; c < g; c++ {
			a, b, e, f := ws[c], ws[c^4], ws[c^2], ws[c^6]
			u, v, x, y := ws[c^1], ws[c^5], ws[c^3], ws[c^7]
			for j := los[c]; j < his[c]; j++ {
				a[j] = ((a[j] + b[j]) + (e[j] + f[j])) + ((u[j] + v[j]) + (x[j] + y[j]))
			}
		}
	default:
		// Generic group size (or folded ranks present with the fused
		// sizes — the pre-fold already happened, so this path still sees
		// plain group vectors): replay the rounds.
		for m := 0; m < g; m++ {
			los[m], his[m] = 0, dim
		}
		for i := 0; i < q; i++ {
			dist := g >> (i + 1)
			for m := 0; m < g; m++ {
				lo, hi := los[m], his[m]
				mid := lo + (hi-lo)/2
				if m&dist == 0 {
					hi = mid
				} else {
					lo = mid
				}
				dst, src := ws[m][lo:hi], ws[m^dist][lo:hi]
				for j := range dst {
					dst[j] += src[j]
				}
				los[m], his[m] = lo, hi
			}
		}
	}

	// All-gather: every group vector receives each finished span
	// unchanged, then the post-step hands full copies to folded ranks.
	for m := 0; m < g; m++ {
		done := ws[m][los[m]:his[m]]
		for i := 0; i < g; i++ {
			if i != m {
				copy(ws[i][los[m]:his[m]], done)
			}
		}
	}
	for i := 0; i < ext; i++ {
		copy(vectors[2*i+1], vectors[2*i])
	}
}

// hdReduceInlineWeighted is the single-pass form of pre-scale +
// hdReduceInline for power-of-two rings (no fold-in) of 2, 4, or 8 ranks:
// the leaf scaling weights[i]·vectors[i][j], the fused reduction tree, and
// the all-gather scatter all happen in one traversal of each owned span,
// so every element is loaded and stored exactly once instead of the three
// round trips the staged form pays (scale pass, tree pass, copy pass).
// The arithmetic is bitwise-identical: each product is rounded before the
// tree adds it (the float64 conversions forbid fused multiply-add
// contraction), matching the distributed schedule's scale-then-exchange
// order, and the scatter writes the same finished values the all-gather
// copies. Returns false when the shape has no fused form (fold-in ranks or
// larger groups) and the caller must take the staged path.
func hdReduceInlineWeighted(vectors [][]float64, weights []float64) bool {
	n := len(vectors)
	g, q, ext := hdGroup(n)
	if ext != 0 || (g != 2 && g != 4 && g != 8) {
		return false
	}
	dim := len(vectors[0])
	var loArr, hiArr [8]int
	los, his := loArr[:g], hiArr[:g]
	hdOwnedSpans(dim, g, q, los, his)
	switch g {
	case 2:
		for c := 0; c < g; c++ {
			a, b := vectors[c], vectors[c^1]
			wa, wb := weights[c], weights[c^1]
			for j := los[c]; j < his[c]; j++ {
				s := float64(wa*a[j]) + float64(wb*b[j])
				a[j], b[j] = s, s
			}
		}
	case 4:
		for c := 0; c < g; c++ {
			a, b, e, f := vectors[c], vectors[c^2], vectors[c^1], vectors[c^3]
			wa, wb, we, wf := weights[c], weights[c^2], weights[c^1], weights[c^3]
			for j := los[c]; j < his[c]; j++ {
				s := (float64(wa*a[j]) + float64(wb*b[j])) + (float64(we*e[j]) + float64(wf*f[j]))
				a[j], b[j], e[j], f[j] = s, s, s, s
			}
		}
	case 8:
		for c := 0; c < g; c++ {
			a, b, e, f := vectors[c], vectors[c^4], vectors[c^2], vectors[c^6]
			u, v, x, y := vectors[c^1], vectors[c^5], vectors[c^3], vectors[c^7]
			wa, wb, we, wf := weights[c], weights[c^4], weights[c^2], weights[c^6]
			wu, wv, wx, wy := weights[c^1], weights[c^5], weights[c^3], weights[c^7]
			for j := los[c]; j < his[c]; j++ {
				s := ((float64(wa*a[j]) + float64(wb*b[j])) + (float64(we*e[j]) + float64(wf*f[j]))) +
					((float64(wu*u[j]) + float64(wv*v[j])) + (float64(wx*x[j]) + float64(wy*y[j])))
				a[j], b[j], e[j], f[j] = s, s, s, s
				u[j], v[j], x[j], y[j] = s, s, s, s
			}
		}
	}
	return true
}

// hdOwnedSpans fills los/his with each group member's finally-owned span:
// the recursive-halving descent steered by the member's bits, high bit
// first (bit set ⇒ keep the upper half).
func hdOwnedSpans(dim, g, q int, los, his []int) {
	for c := 0; c < g; c++ {
		lo, hi := 0, dim
		for i := 0; i < q; i++ {
			mid := lo + (hi-lo)/2
			if c&(g>>(i+1)) == 0 {
				hi = mid
			} else {
				lo = mid
			}
		}
		los[c], his[c] = lo, hi
	}
}
