package allreduce

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// inlineReference applies algo's sequential reference arithmetic: the
// bitwise oracle every distributed schedule must reproduce. The pipelined
// ring's association is the plain ring's, so it shares the ring oracle —
// the strongest form of its determinism claim.
func inlineReference(algo Algorithm, vectors [][]float64) {
	switch algo {
	case AlgoHD:
		hdReduceInline(vectors)
	default:
		ringReduceInline(vectors)
	}
}

// reduceAllAlg drives one reduce through every rank under the given
// algorithm and returns each rank's error.
func reduceAllAlg(set ringSet, segs [][]float64, algo Algorithm, guard bool) []error {
	n := len(segs)
	opts := make([]Options, n)
	for i := range opts {
		opts[i] = Options{Algorithm: algo, Guard: guard}
	}
	return reduceAll(set, segs, opts)
}

func assertBitwise(t *testing.T, label string, got, want [][]float64) {
	t.Helper()
	for i := range got {
		for j := range got[i] {
			gb, wb := math.Float64bits(got[i][j]), math.Float64bits(want[i][j])
			if gb != wb {
				t.Fatalf("%s: vector %d element %d: got %#x want %#x", label, i, j, gb, wb)
			}
		}
	}
}

// TestAlgorithmChanBitwise pins every distributed algorithm to its inline
// sequential reference, bit for bit, across ring sizes (power-of-two and
// folded), dims (empty chunks, odd splits, multi-chunk), and guard modes,
// on the channel transport.
func TestAlgorithmChanBitwise(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	for _, algo := range []Algorithm{AlgoHD, AlgoPipeline} {
		for _, n := range []int{2, 3, 4, 5, 6, 7, 8, 9} {
			for _, dim := range []int{1, 3, 8, 17, 64, 257} {
				for _, guard := range []bool{false, true} {
					vs := randomVectors(rng, n, dim)
					want := cloneVectors(vs)
					inlineReference(algo, want)
					got := cloneVectors(vs)
					set := buildChanSet(t, n)
					for rank, err := range reduceAllAlg(set, got, algo, guard) {
						if err != nil {
							t.Fatalf("%s n=%d dim=%d guard=%v rank %d: %v", algo, n, dim, guard, rank, err)
						}
					}
					set.close()
					assertBitwise(t, string(algo), got, want)
				}
			}
		}
	}
}

// TestAlgorithmTCPBitwise proves transport independence for the new
// schedules: TCP rings — immediate, delayed, and adaptive batching — must
// match the same inline references bit for bit, peer links included.
func TestAlgorithmTCPBitwise(t *testing.T) {
	t.Parallel()
	for _, tc := range transportCases()[1:] {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(29))
			for _, algo := range []Algorithm{AlgoHD, AlgoPipeline} {
				for _, n := range []int{2, 3, 5} {
					for _, dim := range []int{17, 257} {
						for _, guard := range []bool{false, true} {
							vs := randomVectors(rng, n, dim)
							want := cloneVectors(vs)
							inlineReference(algo, want)
							got := cloneVectors(vs)
							set := tc.build(t, n)
							for rank, err := range reduceAllAlg(set, got, algo, guard) {
								if err != nil {
									t.Fatalf("%s n=%d dim=%d guard=%v rank %d: %v", algo, n, dim, guard, rank, err)
								}
							}
							set.close()
							assertBitwise(t, string(algo), got, want)
						}
					}
				}
			}
		})
	}
}

// TestAlgorithmPropertyBuckets is the property sweep: random ring sizes,
// dims, bucket partitions, algorithms (auto included), and guard modes on
// the channel transport, each checked bitwise against the per-bucket
// inline reference under the same per-bucket auto resolution ReduceWith
// performs.
func TestAlgorithmPropertyBuckets(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(31))
	algos := []Algorithm{AlgoRing, AlgoHD, AlgoPipeline, AlgoAuto}
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		dim := rng.Intn(401)
		bucketLen := 1 + rng.Intn(dim+1)
		algo := algos[rng.Intn(len(algos))]
		guard := rng.Intn(2) == 0

		vs := randomVectors(rng, n, dim)
		want := cloneVectors(vs)
		for start := 0; start < dim; start += bucketLen {
			end := start + bucketLen
			if end > dim {
				end = dim
			}
			views := make([][]float64, n)
			for i := range views {
				views[i] = want[i][start:end]
			}
			inlineReference((Selector{}).Resolve(algo, n, end-start), views)
		}

		got := cloneVectors(vs)
		set := buildChanSet(t, n)
		for start := 0; start < dim; start += bucketLen {
			end := start + bucketLen
			if end > dim {
				end = dim
			}
			views := make([][]float64, n)
			for i := range views {
				views[i] = got[i][start:end]
			}
			for rank, err := range reduceAllAlg(set, views, algo, guard) {
				if err != nil {
					t.Fatalf("trial %d (%s n=%d dim=%d bucket=%d): rank %d: %v",
						trial, algo, n, dim, bucketLen, rank, err)
				}
			}
		}
		set.close()
		assertBitwise(t, string(algo), got, want)
	}
}

// TestAllReduceAlgStrategies pins the in-process helper across its
// execution-strategy boundary: inline small payloads and concurrent large
// ones must both reproduce the algorithm's inline reference bitwise —
// execution strategy is framing, never arithmetic.
func TestAllReduceAlgStrategies(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(37))
	cases := []struct {
		algo Algorithm
		dim  int
	}{
		{AlgoHD, 100},       // inline (≤ hdSmallBytes)
		{AlgoHD, 20000},     // concurrent fan-out (160 KB)
		{AlgoPipeline, 100}, // always inline
		{AlgoPipeline, 20000},
		{AlgoAuto, 100},   // resolves hd
		{AlgoAuto, 20000}, // resolves pipeline
	}
	for _, c := range cases {
		n := 4
		vs := randomVectors(rng, n, c.dim)
		resolved := (Selector{}).Resolve(c.algo, n, c.dim)
		want := cloneVectors(vs)
		for i := range want {
			for j := range want[i] {
				want[i][j] *= 1 / float64(n)
			}
		}
		inlineReference(resolved, want)

		got := cloneVectors(vs)
		if err := AllReduceAlg(got, nil, c.algo); err != nil {
			t.Fatalf("%s dim=%d: %v", c.algo, c.dim, err)
		}
		assertBitwise(t, string(c.algo), got, want)

		// The bucketed helper with one full-length bucket must agree too.
		got2 := cloneVectors(vs)
		if err := AllReduceBucketsAlg(got2, nil, c.dim, c.algo); err != nil {
			t.Fatalf("%s dim=%d buckets: %v", c.algo, c.dim, err)
		}
		assertBitwise(t, string(c.algo)+"/buckets", got2, got)
	}
}

// TestSelector covers the pricing and resolution rules: threshold fallback,
// fitted argmin, degenerate sizes, and name parsing.
func TestSelector(t *testing.T) {
	t.Parallel()
	var zero Selector
	if zero.Fitted() {
		t.Fatal("zero selector claims a fit")
	}
	if got := zero.Pick(8, 1024); got != AlgoHD { // 8 KB ≤ hdSmallBytes
		t.Fatalf("small payload: picked %s, want hd", got)
	}
	if got := zero.Pick(8, 1<<20); got != AlgoPipeline { // 8 MB
		t.Fatalf("large payload: picked %s, want pipeline", got)
	}
	if got := zero.Pick(1, 1024); got != AlgoRing {
		t.Fatalf("n=1: picked %s, want ring", got)
	}
	if got := zero.Resolve("", 4, 100); got != AlgoRing {
		t.Fatalf("zero algorithm resolved to %s", got)
	}
	if got := zero.Resolve(AlgoHD, 4, 1<<20); got != AlgoHD {
		t.Fatalf("explicit hd resolved to %s", got)
	}

	// A fitted selector must return the cost argmin, whatever it is.
	fit := Selector{Alpha: 2e-6, Beta: 1e-10}
	if !fit.Fitted() {
		t.Fatal("fitted selector not recognized")
	}
	for _, dim := range []int{64, 4096, 1 << 18, 1 << 21} {
		n := 8
		want, wantCost := AlgoRing, fit.Cost(AlgoRing, n, dim)
		for _, a := range []Algorithm{AlgoHD, AlgoPipeline} {
			if c := fit.Cost(a, n, dim); c < wantCost {
				want, wantCost = a, c
			}
		}
		if got := fit.Pick(n, dim); got != want {
			t.Fatalf("dim=%d: picked %s, argmin is %s", dim, got, want)
		}
	}
	// With latency dominating, log-round hd must beat the ring for small
	// payloads; with bandwidth dominating, the pipelined ring must win big
	// payloads (its per-byte term matches the ring's, minus serialization).
	lat := Selector{Alpha: 1e-5, Beta: 1e-12}
	if got := lat.Pick(8, 1024); got != AlgoHD {
		t.Fatalf("latency-bound: picked %s, want hd", got)
	}
	bw := Selector{Alpha: 1e-7, Beta: 1e-9}
	if got := bw.Pick(8, 1<<20); got != AlgoPipeline {
		t.Fatalf("bandwidth-bound: picked %s, want pipeline", got)
	}

	for _, c := range []struct {
		in   string
		want Algorithm
		ok   bool
	}{
		{"", AlgoRing, true},
		{"ring", AlgoRing, true},
		{"hd", AlgoHD, true},
		{"pipeline", AlgoPipeline, true},
		{"auto", AlgoAuto, true},
		{"tree", "", false},
	} {
		got, err := ParseAlgorithm(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v; want %v ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

// TestHDGuardBlame: a silent halving-doubling partner must surface as a
// *RingFault suspecting that partner (not a ring neighbor), unwrapping to
// ErrHopTimeout — on both transports.
func TestHDGuardBlame(t *testing.T) {
	t.Parallel()
	fast := RetryPolicy{HopTimeout: 10 * time.Millisecond, Retries: 2, Backoff: 2, MaxTimeout: 50 * time.Millisecond}
	for _, tc := range transportCases()[:2] { // chan + plain tcp
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			const n, dim, silent = 2, 8, 1
			set := tc.build(t, n)
			defer set.close()
			segs, _ := makeSegs(n, dim)
			err := set.rings[0].ReduceWith(0, segs[0], Options{Algorithm: AlgoHD, Guard: true, Policy: fast})
			if err == nil {
				t.Fatal("reduce succeeded with a silent partner")
			}
			var fault *RingFault
			if !errors.As(err, &fault) {
				t.Fatalf("error %v is not a *RingFault", err)
			}
			if fault.Rank != 0 || fault.Suspect != silent || fault.Op != "recv" {
				t.Fatalf("fault = %+v, want recv fault suspecting rank %d", fault, silent)
			}
			if !errors.Is(err, ErrHopTimeout) {
				t.Fatalf("fault does not unwrap to ErrHopTimeout: %v", err)
			}
		})
	}
}

// TestTCPHDBrokenPeerLink: once a peer link is established, tearing the
// partner's transport down mid-run must fail the next hd reduce with a
// transport-cause fault (not a bare timeout) — breakage and starvation
// stay distinguishable on peer links exactly as on ring links.
func TestTCPHDBrokenPeerLink(t *testing.T) {
	t.Parallel()
	const n, dim, victim = 2, 16, 1
	fast := RetryPolicy{HopTimeout: 10 * time.Millisecond, Retries: 2, Backoff: 2, MaxTimeout: 50 * time.Millisecond}
	set := buildTCPSet(t, n, 0)
	defer set.close()
	segs, _ := makeSegs(n, dim)
	for rank, err := range reduceAllAlg(set, segs, AlgoHD, false) {
		if err != nil {
			t.Fatalf("warm-up reduce rank %d: %v", rank, err)
		}
	}
	set.rings[victim].Transport().(*TCPTransport).Close()

	err := set.rings[0].ReduceWith(0, segs[0], Options{Algorithm: AlgoHD, Guard: true, Policy: fast})
	if err == nil {
		t.Fatal("reduce succeeded across a dead peer")
	}
	var fault *RingFault
	if !errors.As(err, &fault) {
		t.Fatalf("error %v is not a *RingFault", err)
	}
	if fault.Suspect != victim {
		t.Fatalf("fault = %+v, want suspect %d", fault, victim)
	}
	if errors.Is(err, ErrHopTimeout) {
		t.Fatalf("broken peer link reported as plain timeout: %v", err)
	}
}

// TestChanPeerLinkErrors: peer-link misuse fails fast and clearly.
func TestChanPeerLinkErrors(t *testing.T) {
	t.Parallel()
	tr, err := NewChanTransport(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Peer(0, 0); err == nil {
		t.Fatal("self peer link allowed")
	}
	if _, err := tr.Peer(0, 4); err == nil {
		t.Fatal("out-of-range peer link allowed")
	}
	a, err := tr.Peer(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Peer(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv()
	if err != nil || len(msg) != 2 || msg[0] != 1 {
		t.Fatalf("peer roundtrip: %v %v", msg, err)
	}
	// hd over a transport without peer links must error, not hang.
	ring, err := NewRingOver(stubTransport{tr})
	if err != nil {
		t.Fatal(err)
	}
	seg := []float64{1, 2, 3, 4}
	if err := ring.ReduceWith(0, seg, Options{Algorithm: AlgoHD}); err == nil {
		t.Fatal("hd over a peer-less transport succeeded")
	}
}

// stubTransport hides the PeerTransport extension, modeling a transport
// that never grew peer links.
type stubTransport struct{ tr Transport }

func (s stubTransport) Workers() int               { return s.tr.Workers() }
func (s stubTransport) Endpoint(rank int) Endpoint { return s.tr.Endpoint(rank) }
func (s stubTransport) Close() error               { return s.tr.Close() }

// TestTCPSteadyStateReduceAllocsZero is the satellite gate for the pooled
// TCP framing: once the frame scratch, message buffers, and ring scratch
// are warm, a full ring reduce over real sockets must allocate nothing on
// either rank's path — reader and writer loops included, since
// AllocsPerRun counts process-wide mallocs.
func TestTCPSteadyStateReduceAllocsZero(t *testing.T) {
	const n, dim = 2, 256
	set := buildTCPSet(t, n, 0)
	defer set.close()
	segs := make([][]float64, n)
	for i := range segs {
		segs[i] = make([]float64, dim)
		for j := range segs[i] {
			segs[i][j] = float64(i*dim + j)
		}
	}
	start := make(chan struct{})
	done := make(chan error)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range start {
			done <- set.rings[1].ReduceWith(1, segs[1], Options{})
		}
	}()
	defer wg.Wait()
	defer close(start)
	step := func() {
		start <- struct{}{}
		if err := set.rings[0].ReduceWith(0, segs[0], Options{}); err != nil {
			t.Error(err)
		}
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
	for i := 0; i < 5; i++ {
		step() // warm frame scratch, circulating buffers, bufio
	}
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Fatalf("steady-state TCP reduce allocates %v times, want 0", allocs)
	}
}

// broadcastAll drives one broadcast through every rank.
func broadcastAll(set ringSet, bufs [][]float64, root int, opts Options) []error {
	n := len(bufs)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = set.rings[rank].BroadcastWith(rank, bufs[rank], root, opts)
		}(i)
	}
	wg.Wait()
	return errs
}

// TestBroadcastConformance runs the ring broadcast through the transport
// conformance matrix: every transport, ring size, dim (empty chunks
// included), root, and guard mode must deliver root's buffer byte-exactly.
func TestBroadcastConformance(t *testing.T) {
	t.Parallel()
	for _, tc := range transportCases() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(41))
			for _, n := range []int{1, 2, 3, 4} {
				for _, dim := range []int{0, 1, 7, 65} {
					for _, root := range []int{0, n - 1} {
						for _, guard := range []bool{false, true} {
							bufs := randomVectors(rng, n, dim)
							want := append([]float64(nil), bufs[root]...)
							set := tc.build(t, n)
							for rank, err := range broadcastAll(set, bufs, root, Options{Guard: guard}) {
								if err != nil {
									t.Fatalf("n=%d dim=%d root=%d guard=%v rank %d: %v", n, dim, root, guard, rank, err)
								}
							}
							set.close()
							for rank := 0; rank < n; rank++ {
								for j := 0; j < dim; j++ {
									if math.Float64bits(bufs[rank][j]) != math.Float64bits(want[j]) {
										t.Fatalf("n=%d dim=%d root=%d rank %d elem %d: not root's bytes", n, dim, root, rank, j)
									}
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestBroadcastHopTimeout: a silent rank mid-pipeline starves its
// successor, which must blame it with a recv RingFault unwrapping to
// ErrHopTimeout — on every transport.
func TestBroadcastHopTimeout(t *testing.T) {
	t.Parallel()
	fast := RetryPolicy{HopTimeout: 10 * time.Millisecond, Retries: 2, Backoff: 2, MaxTimeout: 50 * time.Millisecond}
	const n, dim, root, silent = 3, 9, 0, 1
	for _, tc := range transportCases() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			set := tc.build(t, n)
			defer set.close()
			bufs, _ := makeSegs(n, dim)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				if i == silent {
					continue
				}
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					errs[rank] = set.rings[rank].BroadcastWith(rank, bufs[rank], root, Options{Guard: true, Policy: fast})
				}(i)
			}
			wg.Wait()
			succ := (silent + 1) % n
			var fault *RingFault
			if !errors.As(errs[succ], &fault) {
				t.Fatalf("rank %d: error %v is not a *RingFault", succ, errs[succ])
			}
			if fault.Suspect != silent || fault.Op != "recv" {
				t.Fatalf("rank %d fault = %+v, want recv fault suspecting %d", succ, fault, silent)
			}
			if !errors.Is(errs[succ], ErrHopTimeout) {
				t.Fatalf("fault does not unwrap to ErrHopTimeout: %v", errs[succ])
			}
		})
	}
}

// TestBroadcastTCPBrokenLink: a dead rank's socket failure surfaces as a
// transport-cause RingFault on a neighbor, distinguishable from timeouts.
func TestBroadcastTCPBrokenLink(t *testing.T) {
	t.Parallel()
	const n, dim, root, victim = 3, 9, 0, 1
	fast := RetryPolicy{HopTimeout: 10 * time.Millisecond, Retries: 2, Backoff: 2, MaxTimeout: 50 * time.Millisecond}
	set := buildTCPSet(t, n, 0)
	defer set.close()
	set.rings[victim].Transport().(*TCPTransport).Close()
	bufs, _ := makeSegs(n, dim)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if i == victim {
			continue
		}
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = set.rings[rank].BroadcastWith(rank, bufs[rank], root, Options{Guard: true, Policy: fast})
		}(i)
	}
	wg.Wait()
	// The root only sends, and queued sends may land in the kernel buffer
	// before the peer's death is visible — it can legitimately complete.
	// The dead rank's successor, though, starves or sees the socket break,
	// and must blame the victim.
	succ := (victim + 1) % n
	var fault *RingFault
	if errs[succ] == nil {
		t.Fatalf("rank %d: broadcast succeeded across a dead rank", succ)
	}
	if !errors.As(errs[succ], &fault) {
		t.Fatalf("rank %d: non-RingFault error %v", succ, errs[succ])
	}
	if fault.Suspect != victim {
		t.Fatalf("rank %d fault = %+v, want suspect %d", succ, fault, victim)
	}
	if errors.Is(errs[succ], ErrHopTimeout) {
		t.Fatalf("broken link reported as plain timeout: %v", errs[succ])
	}
}
