package allreduce

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"cannikin/internal/rng"
)

// TestRingStreamingMatchesAllReduceBuckets drives a persistent Ring the way
// the live runtime does — each worker goroutine reduces the gradient bucket
// by bucket, in reverse bucket order, over one long-lived set of links —
// and requires the result to be bit-identical to AllReduceBuckets on the
// same inputs.
func TestRingStreamingMatchesAllReduceBuckets(t *testing.T) {
	src := rng.New(11)
	for _, tc := range []struct{ n, dim, bucketLen int }{
		{2, 64, 16},
		{3, 103, 10}, // ragged final bucket
		{4, 7, 2},    // more workers than some buckets' elements
		{5, 3, 1},    // dim < n: empty ring chunks inside each bucket
	} {
		s := src.Split("case")
		vectors := make([][]float64, tc.n)
		weights := make([]float64, tc.n)
		for i := range vectors {
			vectors[i] = make([]float64, tc.dim)
			for j := range vectors[i] {
				vectors[i][j] = s.Norm(0, 1)
			}
			weights[i] = 0.05 + s.Float64()
		}
		want := cloneAll(vectors)
		if err := AllReduceBuckets(want, weights, tc.bucketLen); err != nil {
			t.Fatal(err)
		}

		got := cloneAll(vectors)
		ring, err := NewRing(tc.n, 4)
		if err != nil {
			t.Fatal(err)
		}
		nb := (tc.dim + tc.bucketLen - 1) / tc.bucketLen
		var wg sync.WaitGroup
		for rank := 0; rank < tc.n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				v := got[rank]
				for j := range v {
					v[j] *= weights[rank]
				}
				// Buckets become ready in reverse order during backprop.
				for k := nb - 1; k >= 0; k-- {
					end := (k + 1) * tc.bucketLen
					if end > tc.dim {
						end = tc.dim
					}
					if err := ring.ReduceWith(rank, v[k*tc.bucketLen:end], Options{}); err != nil {
						t.Error(err)
						return
					}
				}
			}(rank)
		}
		wg.Wait()
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("n=%d dim=%d bucket=%d: rank %d elem %d: streaming %v != bucketed %v",
						tc.n, tc.dim, tc.bucketLen, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestNewRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(0, 1); err == nil {
		t.Fatal("empty ring accepted")
	}
	r, err := NewRing(3, -5) // depth clamped, not rejected
	if err != nil || r.Workers() != 3 {
		t.Fatalf("NewRing(3, -5) = %v, %v", r, err)
	}
}

// TestAllReduceTwoWorkers pins the smallest non-trivial ring: one
// reduce-scatter step and one all-gather step.
func TestAllReduceTwoWorkers(t *testing.T) {
	vectors := [][]float64{{1, 2, 3}, {10, 20, 30}}
	if err := AllReduce(vectors, []float64{0.25, 0.75}); err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25*1 + 0.75*10, 0.25*2 + 0.75*20, 0.25*3 + 0.75*30}
	for i := range vectors {
		for j, w := range want {
			if math.Abs(vectors[i][j]-w) > 1e-12 {
				t.Fatalf("rank %d = %v, want %v", i, vectors[i], want)
			}
		}
	}
}

// TestAllReduceEmptyChunks covers dim < n down to a single element: most
// ring chunks are empty and every worker must still converge on the sum.
func TestAllReduceEmptyChunks(t *testing.T) {
	for _, dim := range []int{1, 2, 3} {
		const n = 6
		vectors := make([][]float64, n)
		for i := range vectors {
			vectors[i] = make([]float64, dim)
			for j := range vectors[i] {
				vectors[i][j] = float64(i + 1)
			}
		}
		if err := AllReduce(vectors, nil); err != nil {
			t.Fatal(err)
		}
		want := (1.0 + 2 + 3 + 4 + 5 + 6) / 6
		for i := range vectors {
			for j := range vectors[i] {
				if math.Abs(vectors[i][j]-want) > 1e-12 {
					t.Fatalf("dim=%d rank %d = %v, want %v", dim, i, vectors[i], want)
				}
			}
		}
	}
}

func TestAllReduceBucketsDimSmallerThanWorkers(t *testing.T) {
	// 5 workers, 2 elements, 1-element buckets: every bucket has empty
	// chunks for most of the ring.
	vectors := [][]float64{{1, 2}, {1, 2}, {1, 2}, {1, 2}, {1, 2}}
	if err := AllReduceBuckets(vectors, nil, 1); err != nil {
		t.Fatal(err)
	}
	for i := range vectors {
		if math.Abs(vectors[i][0]-1) > 1e-12 || math.Abs(vectors[i][1]-2) > 1e-12 {
			t.Fatalf("rank %d = %v, want [1 2]", i, vectors[i])
		}
	}
}

// TestWeightedAllReducePropertyTight: for arbitrary sizes and weights the
// ring result must equal the direct Σ r_i·g_i within 1e-12 (scaled) — the
// only freedom is floating-point association order.
func TestWeightedAllReducePropertyTight(t *testing.T) {
	src := rng.New(17)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 2 + s.Intn(8)
		dim := 1 + s.Intn(64)
		if seed%5 == 0 {
			dim = 1 + s.Intn(n) // force dim <= n sometimes
		}
		vectors := make([][]float64, n)
		weights := make([]float64, n)
		for i := range vectors {
			vectors[i] = make([]float64, dim)
			for j := range vectors[i] {
				vectors[i][j] = s.Norm(0, 3)
			}
			weights[i] = s.Float64()
		}
		want := directWeightedSum(vectors, weights)
		if err := AllReduce(vectors, weights); err != nil {
			return false
		}
		for i := range vectors {
			for j := range want {
				tol := 1e-12 * math.Max(1, math.Abs(want[j]))
				if math.Abs(vectors[i][j]-want[j]) > tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
