package allreduce

import (
	"errors"
	"fmt"
	"sync"
)

// Broadcast copies vectors[root] into every other participant's vector
// using a ring pipeline (each rank forwards chunks to its successor), the
// collective DDP uses to synchronize initial weights. All vectors must
// share one length.
func Broadcast(vectors [][]float64, root int) error {
	n := len(vectors)
	if n == 0 {
		return errors.New("allreduce: no participants")
	}
	if root < 0 || root >= n {
		return fmt.Errorf("allreduce: root %d of %d", root, n)
	}
	dim := len(vectors[root])
	for i, v := range vectors {
		if len(v) != dim {
			return fmt.Errorf("allreduce: vector %d has length %d, want %d", i, len(v), dim)
		}
	}
	if n == 1 || dim == 0 {
		return nil
	}
	ring, err := NewRing(n, 1)
	if err != nil {
		return err
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = ring.BroadcastWith(rank, vectors[rank], root, Options{})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// BroadcastWith performs rank's share of one ring-pipelined broadcast over
// the ring's transport: on return, buf holds root's payload. The root
// streams its buffer in n chunks to its successor; every other rank
// receives each chunk, copies it into place, and forwards it on — pure
// copies, so the result is byte-identical to root's buffer on every
// transport. All n ranks must call concurrently with equal-length buffers,
// the same root, and equal Guard settings.
//
// With opts.Guard set, every hop runs under the policy's deadline with
// bounded retry; exhaustion or a broken link returns a *RingFault blaming
// the suspected neighbor, exactly like ReduceWith, and buf holds partial
// data the caller must discard.
func (r *Ring) BroadcastWith(rank int, buf []float64, root int, opts Options) error {
	n := r.n
	dim := len(buf)
	if root < 0 || root >= n {
		return fmt.Errorf("allreduce: root %d of %d", root, n)
	}
	if n == 1 || dim == 0 {
		return nil
	}
	sc := &r.scratch[rank]
	ep := sc.ep
	if ep == nil {
		return fmt.Errorf("allreduce: rank %d is not local to this transport", rank)
	}
	bounds := sc.bounds
	for c := 0; c <= n; c++ {
		bounds[c] = c * dim / n
	}

	spare := sc.spare
	sc.spare = nil
	var p RetryPolicy
	if opts.Guard {
		p = opts.Policy.WithDefaults()
	}
	hop := 0
	send := func(msg []float64) error {
		var err error
		if opts.Guard {
			err = ep.SendTimed(msg, p)
		} else {
			err = ep.Send(msg)
		}
		if err != nil {
			return &RingFault{Rank: rank, Suspect: (rank + 1) % n, Op: "send", Hop: hop, Cause: err}
		}
		hop++
		return nil
	}
	recv := func(want int) ([]float64, error) {
		var msg []float64
		var err error
		if opts.Guard {
			msg, err = ep.RecvTimed(p)
		} else {
			msg, err = ep.Recv()
		}
		if err != nil {
			return nil, &RingFault{Rank: rank, Suspect: (rank - 1 + n) % n, Op: "recv", Hop: hop, Cause: err}
		}
		if len(msg) != want {
			return nil, fmt.Errorf("allreduce: broadcast rank %d hop %d: %d elements, want %d", rank, hop, len(msg), want)
		}
		return msg, nil
	}

	// Distance from root along the ring; the rank just before root is the
	// pipeline's tail and forwards nothing.
	dist := ((rank - root) + n) % n
	last := dist == n-1
	for c := 0; c < n; c++ {
		chunk := buf[bounds[c]:bounds[c+1]]
		if dist == 0 { // root: send each chunk once
			var msg []float64
			if cap(spare) >= len(chunk) {
				msg = spare[:len(chunk)]
				spare = nil
			} else {
				msg = make([]float64, len(chunk))
			}
			copy(msg, chunk)
			if err := send(msg); err != nil {
				sc.spare = spare
				return err
			}
			continue
		}
		msg, err := recv(len(chunk))
		if err != nil {
			sc.spare = spare
			return err
		}
		copy(chunk, msg)
		if last {
			spare = msg // tail retires the buffer for the next call
		} else if err := send(msg); err != nil {
			sc.spare = spare
			return err
		}
	}
	sc.spare = spare
	return nil
}
