package allreduce

import (
	"errors"
	"fmt"
	"sync"
)

// Broadcast copies vectors[root] into every other participant's vector
// using a ring pipeline (each rank forwards chunks to its successor), the
// collective DDP uses to synchronize initial weights. All vectors must
// share one length.
func Broadcast(vectors [][]float64, root int) error {
	n := len(vectors)
	if n == 0 {
		return errors.New("allreduce: no participants")
	}
	if root < 0 || root >= n {
		return fmt.Errorf("allreduce: root %d of %d", root, n)
	}
	dim := len(vectors[root])
	for i, v := range vectors {
		if len(v) != dim {
			return fmt.Errorf("allreduce: vector %d has length %d, want %d", i, len(v), dim)
		}
	}
	if n == 1 || dim == 0 {
		return nil
	}

	// Pipeline the payload in n chunks around the ring starting at root.
	bounds := make([]int, n+1)
	for c := 0; c <= n; c++ {
		bounds[c] = c * dim / n
	}
	links := make([]chan []float64, n)
	for i := range links {
		links[i] = make(chan []float64, 1)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			v := vectors[rank]
			out := links[rank]
			in := links[(rank-1+n)%n]
			// Distance from root along the ring.
			dist := ((rank - root) + n) % n
			last := rank == (root-1+n)%n
			for c := 0; c < n; c++ {
				chunk := v[bounds[c]:bounds[c+1]]
				if dist == 0 { // root: send each chunk once
					if !last {
						msg := make([]float64, len(chunk))
						copy(msg, chunk)
						out <- msg
					}
					continue
				}
				recv := <-in
				copy(chunk, recv)
				if !last {
					out <- recv
				}
			}
		}(i)
	}
	wg.Wait()
	return nil
}
