package allreduce

import (
	"fmt"
	"sync"
	"time"
)

// Transport wires the n ranks of a ring together: it hands every rank an
// Endpoint holding that rank's pair of neighbor links (send side toward the
// successor, receive side from the predecessor). The transport owns the
// links' lifetime; Close releases them.
//
// Two implementations exist:
//
//   - ChanTransport: the in-process reference — links are FIFO Go channels,
//     every rank's endpoint lives in one address space. This is the
//     transport behind NewRing and the one every golden test pins.
//   - TCPTransport: one rank per OS process over real sockets, with
//     length-prefixed framing and adaptive send-side batching (tcp.go).
//
// The ring arithmetic (chunking, summation order) lives entirely in
// Ring.ReduceWith and never depends on the transport, so switching
// transports can change wall-clock behavior and failure modes but never
// the reduced values: a TCP ring is bitwise-identical to a channel ring.
type Transport interface {
	// Workers returns the ring size n.
	Workers() int
	// Endpoint returns rank's attachment to the ring, or nil when that rank
	// is not local to this transport instance (a TCPTransport holds exactly
	// one local rank; a ChanTransport holds all of them).
	Endpoint(rank int) Endpoint
	// Close tears the links down. Blocked and future endpoint operations
	// fail promptly after Close.
	Close() error
}

// PeerTransport extends Transport with direct links between arbitrary rank
// pairs — what non-neighbor exchange schedules (halving-doubling's
// distance-2^i rounds, the fold-in pre/post step) run over. Peer links are
// separate from the ring links: creating or using one never perturbs ring
// traffic, which is what keeps the ring goldens byte-identical whether or
// not a transport grows the extension.
type PeerTransport interface {
	Transport
	// Peer returns rank's endpoint on a dedicated bidirectional link to
	// peer, creating the link on first use. The returned endpoint sends
	// toward peer and receives from peer; each (rank, peer) ordered pair
	// yields one stable endpoint, safe for a single goroutine like the ring
	// endpoints. Errors when either rank is out of range, rank == peer, or
	// rank is not local to this transport instance.
	Peer(rank, peer int) (Endpoint, error)
}

// Endpoint is one rank's pair of neighbor links. Buffer ownership follows
// message flow: Send transfers ownership of msg to the transport, and Recv
// transfers ownership of the returned buffer to the caller — exactly the
// contract Ring's circulating-buffer scheme is built on, which is what
// keeps steady-state channel reduces allocation-free.
type Endpoint interface {
	// Send hands msg to the successor link, blocking until the transport
	// accepts it. A non-nil error means the link is broken (remote
	// transports only; channel sends cannot fail).
	Send(msg []float64) error
	// Recv returns the next message from the predecessor, blocking until
	// one arrives or the link breaks.
	Recv() ([]float64, error)
	// SendTimed is Send bounded by the policy's retry budget: each attempt
	// waits one deadline, the deadline grows by Backoff per retry, and
	// exhaustion returns an error wrapping ErrHopTimeout.
	SendTimed(msg []float64, p RetryPolicy) error
	// RecvTimed is Recv under the same bounded budget.
	RecvTimed(p RetryPolicy) ([]float64, error)
}

// ChanTransport is the in-process transport: n buffered FIFO channels, one
// per rank, connecting each rank's send side to its successor's receive
// side. It is the transport NewRing builds and the reference every other
// transport must match bitwise.
type ChanTransport struct {
	n     int
	depth int
	links []chan []float64
	eps   []chanEndpoint

	// Peer links are built lazily under peersMu: most reduces are plain
	// rings and should not pay for an n² mesh. Each ordered (from, to) pair
	// has one directed channel; an endpoint pairs the two directions.
	peersMu   sync.Mutex
	peerLinks map[chanPeerKey]chan []float64
	peerEps   map[chanPeerKey]*chanEndpoint
}

// chanPeerKey identifies one directed peer channel (and, keyed by the
// owning side, one cached peer endpoint).
type chanPeerKey struct{ from, to int }

// NewChanTransport returns an in-process transport for n ranks whose links
// buffer depth in-flight messages (depth < 1 is raised to 1; deeper buffers
// let fast ranks run further ahead without changing results).
func NewChanTransport(n, depth int) (*ChanTransport, error) {
	if n < 1 {
		return nil, errRingSize(n)
	}
	if depth < 1 {
		depth = 1
	}
	t := &ChanTransport{n: n, depth: depth, links: make([]chan []float64, n), eps: make([]chanEndpoint, n)}
	for i := range t.links {
		t.links[i] = make(chan []float64, depth)
	}
	for i := range t.eps {
		t.eps[i] = chanEndpoint{out: t.links[i], in: t.links[(i-1+n)%n]}
	}
	return t, nil
}

// Workers returns the ring size.
func (t *ChanTransport) Workers() int { return t.n }

// Endpoint returns rank's endpoint (every rank is local to a ChanTransport).
func (t *ChanTransport) Endpoint(rank int) Endpoint {
	if rank < 0 || rank >= t.n {
		return nil
	}
	return &t.eps[rank]
}

// Peer returns rank's endpoint on the direct link to peer, creating the
// two directed channels on first use. Endpoints are cached per ordered
// pair so the guarded ops' per-direction timers stay single-owner.
func (t *ChanTransport) Peer(rank, peer int) (Endpoint, error) {
	if rank < 0 || rank >= t.n || peer < 0 || peer >= t.n || rank == peer {
		return nil, fmt.Errorf("allreduce: no peer link %d→%d in a %d-rank transport", rank, peer, t.n)
	}
	t.peersMu.Lock()
	defer t.peersMu.Unlock()
	key := chanPeerKey{rank, peer}
	if ep := t.peerEps[key]; ep != nil {
		return ep, nil
	}
	if t.peerLinks == nil {
		t.peerLinks = make(map[chanPeerKey]chan []float64)
		t.peerEps = make(map[chanPeerKey]*chanEndpoint)
	}
	link := func(from, to int) chan []float64 {
		k := chanPeerKey{from, to}
		ch := t.peerLinks[k]
		if ch == nil {
			ch = make(chan []float64, t.depth)
			t.peerLinks[k] = ch
		}
		return ch
	}
	ep := &chanEndpoint{out: link(rank, peer), in: link(peer, rank)}
	t.peerEps[key] = ep
	return ep, nil
}

// Close is a no-op: channel links hold no external resources, and leaving
// them open keeps in-flight reduces on other goroutines well-defined.
func (t *ChanTransport) Close() error { return nil }

// chanEndpoint adapts one rank's channel pair to the Endpoint interface.
// The timers are per-direction scratch for the guarded ops: hop deadlines
// fire on every guarded hop, and allocating a fresh runtime timer each time
// is measurable steady-state GC pressure (the guarded path's analogue of
// the circulating message buffers). Safe because an endpoint is driven from
// its rank's single goroutine.
type chanEndpoint struct {
	out chan<- []float64
	in  <-chan []float64

	sendTimer *time.Timer
	recvTimer *time.Timer
}

// armTimer returns *tp reset to d, creating it on first use. Go 1.23+ timer
// semantics (Reset flushes a stale fire) make the bare Reset race-free for
// a single-goroutine owner.
func armTimer(tp **time.Timer, d time.Duration) *time.Timer {
	if *tp == nil {
		*tp = time.NewTimer(d)
	} else {
		(*tp).Reset(d)
	}
	return *tp
}

func (e *chanEndpoint) Send(msg []float64) error {
	e.out <- msg
	return nil
}

func (e *chanEndpoint) Recv() ([]float64, error) {
	return <-e.in, nil
}

// SendTimed sends msg within the policy's retry budget. Because a channel
// send is idempotent until it succeeds, "retry" is simply another bounded
// wait on the same operation — what makes guarded collectives deadlock-free
// by construction.
func (e *chanEndpoint) SendTimed(msg []float64, p RetryPolicy) error {
	d := p.HopTimeout
	timer := armTimer(&e.sendTimer, d)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case e.out <- msg:
			return nil
		case <-timer.C:
			if attempt >= p.Retries {
				return ErrHopTimeout
			}
			d = nextDeadline(d, p)
			timer.Reset(d)
		}
	}
}

// RecvTimed receives within the policy's retry budget.
func (e *chanEndpoint) RecvTimed(p RetryPolicy) ([]float64, error) {
	d := p.HopTimeout
	timer := armTimer(&e.recvTimer, d)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case msg := <-e.in:
			return msg, nil
		case <-timer.C:
			if attempt >= p.Retries {
				return nil, ErrHopTimeout
			}
			d = nextDeadline(d, p)
			timer.Reset(d)
		}
	}
}
