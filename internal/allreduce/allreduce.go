// Package allreduce implements a real bandwidth-optimal ring all-reduce
// (reduce-scatter followed by all-gather) over in-process workers, with the
// batch-weighted aggregation rule of Eq. 9:
//
//	g = Σ_i r_i · g_i
//
// so that samples on nodes with different local batch sizes carry identical
// weight in the global gradient. PyTorch-DDP-style gradient bucketing is
// supported by reducing the vector in fixed-size segments.
//
// The collective is exercised by the real-gradient training paths; the
// timing simulator uses the analytic model in internal/simnet instead.
package allreduce

import (
	"errors"
	"fmt"
	"sync"
)

// Ring is a persistent set of point-to-point links connecting n workers,
// the transport under every ring collective here. Unlike AllReduce, which
// drives its own goroutines per call, a Ring is driven from the callers'
// goroutines: each of the n ranks calls Reduce from its own goroutine, once
// per segment, and all ranks must reduce the same segments in the same
// order. Links are FIFO channels, so back-to-back reductions of different
// gradient buckets pipeline safely — a fast rank may already be sending
// bucket k-1 while a slow neighbor still drains bucket k.
type Ring struct {
	n     int
	links []chan []float64
	// scratch[rank] holds rank-private reusable state (chunk bounds and a
	// spare message buffer), making steady-state Reduce calls allocation
	// free. Each entry is touched only by its rank's goroutine.
	scratch []ringScratch
}

// ringScratch is one rank's reusable Reduce state.
type ringScratch struct {
	bounds []int
	spare  []float64
}

// NewRing returns a ring of n workers whose links buffer depth in-flight
// messages (depth < 1 is raised to 1; deeper buffers let fast ranks run
// further ahead without changing results).
func NewRing(n, depth int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("allreduce: ring of %d workers", n)
	}
	if depth < 1 {
		depth = 1
	}
	r := &Ring{n: n, links: make([]chan []float64, n), scratch: make([]ringScratch, n)}
	for i := range r.links {
		r.links[i] = make(chan []float64, depth)
		r.scratch[i].bounds = make([]int, n+1)
	}
	return r, nil
}

// Workers returns the ring size.
func (r *Ring) Workers() int { return r.n }

// Reduce performs rank's share of one segment's reduce-scatter followed by
// all-gather: on return, seg holds the element-wise sum of every rank's
// segment. Weighted aggregation (Eq. 9) is the caller's concern — each rank
// pre-scales its segment by its weight r_i before calling. All n ranks must
// call Reduce concurrently, with segments of one common length; the
// summation order is fixed by the ring topology alone, so the result is
// bit-identical regardless of scheduling, buffering, or how the segment is
// split into buckets by the caller.
func (r *Ring) Reduce(rank int, seg []float64) {
	n := r.n
	dim := len(seg)
	if n == 1 || dim == 0 {
		return
	}
	// Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]). The
	// bounds slice is rank-private scratch reused across calls.
	sc := &r.scratch[rank]
	bounds := sc.bounds
	for c := 0; c <= n; c++ {
		bounds[c] = c * dim / n
	}
	chunk := func(c int) []float64 {
		c = ((c % n) + n) % n
		return seg[bounds[c]:bounds[c+1]]
	}
	out := r.links[rank]
	in := r.links[(rank-1+n)%n]

	// Message buffers circulate around the ring: once a received buffer
	// has been consumed it becomes this rank's next send buffer, and the
	// final buffer is parked in the rank's scratch for the next call, so a
	// steady-state Reduce allocates nothing.
	spare := sc.spare
	sc.spare = nil
	stage := func(src []float64) []float64 {
		var msg []float64
		if cap(spare) >= len(src) {
			msg = spare[:len(src)]
			spare = nil
		} else {
			msg = make([]float64, len(src))
		}
		copy(msg, src)
		return msg
	}

	// Reduce-scatter: after step s, worker rank holds the partial
	// sum of chunk (rank - s) accumulated over s+1 workers. After
	// n-1 steps, worker rank owns the complete chunk (rank+1).
	for s := 0; s < n-1; s++ {
		sendIdx := rank - s
		out <- stage(chunk(sendIdx))
		recv := <-in
		dst := chunk(sendIdx - 1)
		for j := range dst {
			dst[j] += recv[j]
		}
		spare = recv
	}
	// All-gather: circulate the completed chunks.
	for s := 0; s < n-1; s++ {
		sendIdx := rank + 1 - s
		out <- stage(chunk(sendIdx))
		recv := <-in
		copy(chunk(sendIdx-1), recv)
		spare = recv
	}
	sc.spare = spare
}

// AllReduce replaces every vectors[i] in place with the weighted sum
// Σ_j weights[j]·vectors[j], using a ring reduce-scatter + all-gather among
// len(vectors) concurrent workers. All vectors must share one length.
//
// Pass nil weights for a plain average (weights 1/n).
func AllReduce(vectors [][]float64, weights []float64) error {
	n := len(vectors)
	if n == 0 {
		return errors.New("allreduce: no participants")
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return fmt.Errorf("allreduce: vector %d has length %d, want %d", i, len(v), dim)
		}
	}
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1 / float64(n)
		}
	}
	if len(weights) != n {
		return fmt.Errorf("allreduce: %d weights for %d participants", len(weights), n)
	}

	// Pre-scale local contributions (the r_i of Eq. 9).
	for i, v := range vectors {
		w := weights[i]
		for j := range v {
			v[j] *= w
		}
	}
	if n == 1 || dim == 0 {
		return nil
	}

	ring, err := NewRing(n, 1)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ring.Reduce(rank, vectors[rank])
		}(i)
	}
	wg.Wait()
	return nil
}

// AllReduceBuckets runs AllReduce over the vectors segment by segment, as
// DDP does with gradient buckets. bucketLen is the per-bucket element
// count; the final bucket may be shorter.
func AllReduceBuckets(vectors [][]float64, weights []float64, bucketLen int) error {
	if bucketLen <= 0 {
		return fmt.Errorf("allreduce: bucket length %d", bucketLen)
	}
	n := len(vectors)
	if n == 0 {
		return errors.New("allreduce: no participants")
	}
	dim := len(vectors[0])
	for start := 0; start < dim; start += bucketLen {
		end := start + bucketLen
		if end > dim {
			end = dim
		}
		views := make([][]float64, n)
		for i, v := range vectors {
			if len(v) != dim {
				return fmt.Errorf("allreduce: vector %d has length %d, want %d", i, len(v), dim)
			}
			views[i] = v[start:end]
		}
		if err := AllReduce(views, weights); err != nil {
			return err
		}
	}
	if dim == 0 {
		return AllReduce(vectors, weights)
	}
	return nil
}
