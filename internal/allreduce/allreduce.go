// Package allreduce implements a real bandwidth-optimal ring all-reduce
// (reduce-scatter followed by all-gather) with the batch-weighted
// aggregation rule of Eq. 9:
//
//	g = Σ_i r_i · g_i
//
// so that samples on nodes with different local batch sizes carry identical
// weight in the global gradient. PyTorch-DDP-style gradient bucketing is
// supported by reducing the vector in fixed-size segments.
//
// Communication is pluggable: a Ring runs over any Transport — in-process
// FIFO channels (ChanTransport, the bitwise reference) or real TCP sockets
// spanning OS processes (TCPTransport). The arithmetic — chunk bounds and
// summation order — is fixed by the ring topology alone, so every transport
// produces bit-identical results.
//
// The collective is exercised by the real-gradient training paths; the
// timing simulator uses the analytic model in internal/simnet instead.
package allreduce

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

func errRingSize(n int) error { return fmt.Errorf("allreduce: ring of %d workers", n) }

// Options configures one ring reduce call. The zero value is a plain
// blocking reduce; unset guarded fields take defaults, so callers state
// only what they deviate on. Options replaces the former sprawl of
// Reduce / ReduceGuarded / Guard / RetryPolicy.WithDefaults call shapes
// behind one surface (the legacy names remain as thin deprecated
// wrappers).
type Options struct {
	// Guard runs every hop under the retry policy's deadline with bounded
	// exponential-backoff retry. A hop that exhausts its budget — or whose
	// link breaks, on remote transports — fails the call with a *RingFault
	// naming the suspected neighbor. Required for fault blame and for any
	// transport whose peers can die.
	Guard bool
	// Policy bounds each guarded hop; zero fields take the RetryPolicy
	// defaults. Ignored when Guard is false.
	Policy RetryPolicy
	// SendDelay delays this call's first send attempt (injected fault,
	// guarded calls only).
	SendDelay time.Duration
	// SendDrops drops that many attempts of this call's first send; each
	// lost attempt costs the sender one retransmit timeout, exactly like a
	// lost packet under a retransmission timer (guarded calls only).
	SendDrops int
	// Algorithm selects the collective schedule: AlgoRing (the zero value),
	// AlgoHD, AlgoPipeline, or AlgoAuto (priced per payload by the ring's
	// selector). All ranks of one reduce must pass the same algorithm; hd
	// additionally requires the transport to implement PeerTransport.
	Algorithm Algorithm
}

// Ring is a persistent set of point-to-point links connecting n workers,
// the transport under every ring collective here. Unlike AllReduce, which
// drives its own goroutines per call, a Ring is driven from the callers'
// goroutines: each of the n ranks calls ReduceWith from its own goroutine
// (or its own OS process, on a remote transport), once per segment, and all
// ranks must reduce the same segments in the same order. Links are FIFO, so
// back-to-back reductions of different gradient buckets pipeline safely — a
// fast rank may already be sending bucket k-1 while a slow neighbor still
// drains bucket k.
type Ring struct {
	n  int
	tr Transport
	// sel prices AlgoAuto reduces; the zero value falls back to calibrated
	// size thresholds. Set once via SetSelector before reducing.
	sel Selector
	// scratch[rank] holds rank-private reusable state (chunk bounds, a
	// spare message buffer, and the resolved endpoint), making steady-state
	// reduce calls allocation free. Each entry is touched only by its
	// rank's goroutine; on remote transports only the local rank's entry is
	// ever used.
	scratch []ringScratch
}

// ringScratch is one rank's reusable reduce state.
type ringScratch struct {
	bounds []int
	spare  []float64
	ep     Endpoint
	// peers caches resolved non-neighbor links (halving-doubling), indexed
	// by peer rank; spans is the hd per-level window scratch.
	peers []Endpoint
	spans []int
}

// NewRing returns a ring of n workers over an in-process channel transport
// whose links buffer depth in-flight messages (depth < 1 is raised to 1;
// deeper buffers let fast ranks run further ahead without changing
// results).
func NewRing(n, depth int) (*Ring, error) {
	tr, err := NewChanTransport(n, depth)
	if err != nil {
		return nil, err
	}
	return NewRingOver(tr)
}

// NewRingOver returns a ring running over the given transport. The ring
// does not take ownership of the transport; callers close it after the
// last reduce.
func NewRingOver(tr Transport) (*Ring, error) {
	n := tr.Workers()
	if n < 1 {
		return nil, errRingSize(n)
	}
	r := &Ring{n: n, tr: tr, scratch: make([]ringScratch, n)}
	for i := range r.scratch {
		r.scratch[i].bounds = make([]int, n+1)
		r.scratch[i].ep = tr.Endpoint(i)
	}
	return r, nil
}

// Workers returns the ring size.
func (r *Ring) Workers() int { return r.n }

// Transport returns the transport the ring runs over.
func (r *Ring) Transport() Transport { return r.tr }

// SetSelector installs the cost model that prices AlgoAuto reduces (the
// zero Selector means calibrated size thresholds). Call it before the
// ring is in use; it is not synchronized against concurrent reduces. All
// ranks of a multi-process ring must install identical constants, or auto
// ranks would disagree on the schedule.
func (r *Ring) SetSelector(s Selector) { r.sel = s }

// ReduceWith performs rank's share of one segment's reduce-scatter followed
// by all-gather: on return, seg holds the element-wise sum of every rank's
// segment. Weighted aggregation (Eq. 9) is the caller's concern — each rank
// pre-scales its segment by its weight r_i before calling. All n ranks must
// call ReduceWith concurrently, with segments of one common length and
// equal Guard settings; the summation order is fixed by the ring topology
// alone, so the result is bit-identical regardless of scheduling,
// buffering, or transport. Splitting a segment into buckets moves elements
// to different chunk indices and therefore changes the order in which IEEE
// additions associate: with n == 2 every element is a single two-term sum
// and any bucket partition is bit-identical, but for n >= 3 different
// partitions legitimately differ in the last bits. Bitwise reproducibility
// across runs requires reducing the same buckets in the same order, which
// is why the runtime derives its bucket partition from (dim, workers,
// BucketBytes) only — never from scheduling state such as GOMAXPROCS.
//
// With opts.Guard set, every hop runs under a per-hop deadline with bounded
// retry; on exhaustion — or on a broken link — ReduceWith returns a
// *RingFault naming the suspected neighbor, and the segment holds
// partially-reduced data that the caller must discard. A guarded reduce
// that completes is bitwise-identical to an unguarded one. When one rank
// fails, its neighbors' pending hops are guaranteed to fail (or complete)
// within their own budgets: no call blocks forever.
func (r *Ring) ReduceWith(rank int, seg []float64, opts Options) error {
	n := r.n
	dim := len(seg)
	if n == 1 || dim == 0 {
		return nil
	}
	sc := &r.scratch[rank]
	ep := sc.ep
	if ep == nil {
		return fmt.Errorf("allreduce: rank %d is not local to this transport", rank)
	}
	switch r.sel.Resolve(opts.Algorithm, n, dim) {
	case AlgoHD:
		return r.reduceHD(rank, seg, opts)
	case AlgoPipeline:
		return r.reducePipeline(rank, seg, opts)
	}
	// Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]). The
	// bounds slice is rank-private scratch reused across calls.
	bounds := sc.bounds
	for c := 0; c <= n; c++ {
		bounds[c] = c * dim / n
	}
	chunk := func(c int) []float64 {
		c = ((c % n) + n) % n
		return seg[bounds[c]:bounds[c+1]]
	}

	// Message buffers circulate around the ring: once a received buffer
	// has been consumed it becomes this rank's next send buffer, and the
	// final buffer is parked in the rank's scratch for the next call, so a
	// steady-state reduce allocates nothing.
	spare := sc.spare
	sc.spare = nil
	stage := func(src []float64) []float64 {
		var msg []float64
		if cap(spare) >= len(src) {
			msg = spare[:len(src)]
			spare = nil
		} else {
			msg = make([]float64, len(src))
		}
		copy(msg, src)
		return msg
	}

	var p RetryPolicy
	if opts.Guard {
		p = opts.Policy.WithDefaults()
	}
	hop := 0
	firstSend := true
	send := func(msg []float64) error {
		if !opts.Guard {
			if err := ep.Send(msg); err != nil {
				return &RingFault{Rank: rank, Suspect: (rank + 1) % n, Op: "send", Hop: hop, Cause: err}
			}
			return nil
		}
		if firstSend {
			firstSend = false
			if opts.SendDelay > 0 {
				time.Sleep(opts.SendDelay)
			}
			// Each dropped attempt is a lost packet: the payload is not
			// delivered, and the sender retransmits after one hop timeout.
			for d := 0; d < opts.SendDrops; d++ {
				time.Sleep(p.HopTimeout)
			}
		}
		if err := ep.SendTimed(msg, p); err != nil {
			return &RingFault{Rank: rank, Suspect: (rank + 1) % n, Op: "send", Hop: hop, Cause: err}
		}
		return nil
	}
	recv := func() ([]float64, error) {
		var msg []float64
		var err error
		if opts.Guard {
			msg, err = ep.RecvTimed(p)
		} else {
			msg, err = ep.Recv()
		}
		if err != nil {
			return nil, &RingFault{Rank: rank, Suspect: (rank - 1 + n) % n, Op: "recv", Hop: hop, Cause: err}
		}
		return msg, nil
	}

	// Reduce-scatter: after step s, worker rank holds the partial
	// sum of chunk (rank - s) accumulated over s+1 workers. After
	// n-1 steps, worker rank owns the complete chunk (rank+1).
	for s := 0; s < n-1; s++ {
		sendIdx := rank - s
		if err := send(stage(chunk(sendIdx))); err != nil {
			sc.spare = spare
			return err
		}
		msg, err := recv()
		if err != nil {
			sc.spare = spare
			return err
		}
		dst := chunk(sendIdx - 1)
		for j := range dst {
			dst[j] += msg[j]
		}
		spare = msg
		hop++
	}
	// All-gather: circulate the completed chunks.
	for s := 0; s < n-1; s++ {
		sendIdx := rank + 1 - s
		if err := send(stage(chunk(sendIdx))); err != nil {
			sc.spare = spare
			return err
		}
		msg, err := recv()
		if err != nil {
			sc.spare = spare
			return err
		}
		copy(chunk(sendIdx-1), msg)
		spare = msg
		hop++
	}
	sc.spare = spare
	return nil
}

// Reduce is ReduceWith with zero Options on a channel ring, where
// unguarded hops cannot fail.
//
// Deprecated: new code should call ReduceWith, which reports link failures
// on remote transports.
func (r *Ring) Reduce(rank int, seg []float64) {
	_ = r.ReduceWith(rank, seg, Options{})
}

// smallReduceBytes is the payload size at or below which AllReduce computes
// the ring arithmetic inline on the calling goroutine instead of fanning out
// one goroutine per participant. For small messages the goroutine spawn,
// channel hops, and cross-P wakeups cost more than the arithmetic itself —
// and on an oversubscribed host (GOMAXPROCS > cores) the futex churn makes
// ns/op *rise* with added CPUs. This is the MPI-style algorithm switch by
// message size; the inline path is bit-identical to the concurrent ring by
// construction (see ringReduceInline).
const smallReduceBytes = 32 << 10

// ringReduceInline performs the exact arithmetic of an n-way ring
// reduce-scatter + all-gather sequentially. For chunk c the ring produces
// the right-associated sum
//
//	v[c-1] + (v[c-2] + (... + (v[c+1] + v[c])))
//
// (indices mod n, starting from rank c and walking the ring). Left-to-right
// accumulation starting at v[c] — acc = v[c]; acc += v[c+1]; ... —
// reproduces it bit-for-bit: each partial differs from the ring's only by
// the operand order of a single two-term IEEE addition, which is exactly
// commutative. Associativity is never re-grouped, so no float property
// beyond commutativity is assumed.
func ringReduceInline(vectors [][]float64) {
	n := len(vectors)
	dim := len(vectors[0])
	for c := 0; c < n; c++ {
		lo, hi := c*dim/n, (c+1)*dim/n
		acc := vectors[c][lo:hi]
		for s := 1; s < n; s++ {
			src := vectors[(c+s)%n][lo:hi]
			for j := range acc {
				acc[j] += src[j]
			}
		}
	}
	// All-gather: every vector receives each finished chunk unchanged.
	for c := 0; c < n; c++ {
		lo, hi := c*dim/n, (c+1)*dim/n
		done := vectors[c][lo:hi]
		for i, v := range vectors {
			if i != c {
				copy(v[lo:hi], done)
			}
		}
	}
}

// AllReduce replaces every vectors[i] in place with the weighted sum
// Σ_j weights[j]·vectors[j], using a ring reduce-scatter + all-gather among
// len(vectors) concurrent workers. All vectors must share one length.
//
// Pass nil weights for a plain average (weights 1/n).
func AllReduce(vectors [][]float64, weights []float64) error {
	return AllReduceAlg(vectors, weights, AlgoRing)
}

// AllReduceAlg is AllReduce under an explicit collective algorithm
// (AlgoAuto prices the payload with the default selector). Every
// algorithm fixes its own association order, so a given (algorithm, n,
// dim) is bitwise-deterministic; different algorithms legitimately differ
// in the last bits for n ≥ 3 — exactly like different bucket partitions.
//
// Execution strategy is the helper's own concern and never changes bits:
// payloads whose schedule can run cheaper on the calling goroutine use
// the algorithm's inline form (ringReduceInline / hdReduceInline /
// pipelineReduceInline, each bitwise-identical to its distributed
// schedule); larger ring and hd payloads fan out one goroutine per rank
// over a fresh channel transport. The pipelined ring always runs its
// blocked sequential schedule here: in one address space "hop overlap" is
// interleaving, and the cache-blocked interleaving is the fastest — and
// GOMAXPROCS-independent — way to run it. Persistent-ring callers (the
// live runtime, multi-process workers) run the same algorithms
// distributed via Ring.ReduceWith.
func AllReduceAlg(vectors [][]float64, weights []float64, algo Algorithm) error {
	n := len(vectors)
	if n == 0 {
		return errors.New("allreduce: no participants")
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return fmt.Errorf("allreduce: vector %d has length %d, want %d", i, len(v), dim)
		}
	}
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1 / float64(n)
		}
	}
	if len(weights) != n {
		return fmt.Errorf("allreduce: %d weights for %d participants", len(weights), n)
	}
	resolved := (Selector{}).Resolve(algo, n, dim)
	switch resolved {
	case AlgoRing, AlgoHD, AlgoPipeline:
	default:
		return fmt.Errorf("allreduce: unknown algorithm %q", algo)
	}

	// Power-of-two hd payloads small enough for the fused tree scale their
	// leaves inside it — one pass over memory instead of scale + tree +
	// gather, with identical bits (see hdReduceInlineWeighted).
	if resolved == AlgoHD && n > 1 && dim > 0 && dim*8 <= hdSmallBytes &&
		hdReduceInlineWeighted(vectors, weights) {
		return nil
	}

	// Pre-scale local contributions (the r_i of Eq. 9).
	for i, v := range vectors {
		w := weights[i]
		for j := range v {
			v[j] *= w
		}
	}
	if n == 1 || dim == 0 {
		return nil
	}
	switch resolved {
	case AlgoPipeline:
		pipelineReduceInline(vectors)
		return nil
	case AlgoHD:
		if dim*8 <= hdSmallBytes {
			hdReduceInline(vectors)
			return nil
		}
	default:
		if dim*8 <= smallReduceBytes {
			ringReduceInline(vectors)
			return nil
		}
	}

	ring, err := NewRing(n, 1)
	if err != nil {
		return err
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = ring.ReduceWith(rank, vectors[rank], Options{Algorithm: resolved})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AllReduceBuckets runs AllReduce over the vectors segment by segment, as
// DDP does with gradient buckets. bucketLen is the per-bucket element
// count; the final bucket may be shorter.
func AllReduceBuckets(vectors [][]float64, weights []float64, bucketLen int) error {
	return AllReduceBucketsAlg(vectors, weights, bucketLen, AlgoRing)
}

// AllReduceBucketsAlg is AllReduceBuckets under an explicit collective
// algorithm. AlgoAuto is resolved per bucket — the argmin over the cost
// model at each bucket's own payload size — so a run's final short bucket
// may legitimately take a different schedule than its full ones. The
// choice is a pure function of (algorithm, n, bucket length), never of
// scheduling state, keeping bucketed auto reduces reproducible.
func AllReduceBucketsAlg(vectors [][]float64, weights []float64, bucketLen int, algo Algorithm) error {
	if bucketLen <= 0 {
		return fmt.Errorf("allreduce: bucket length %d", bucketLen)
	}
	n := len(vectors)
	if n == 0 {
		return errors.New("allreduce: no participants")
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return fmt.Errorf("allreduce: vector %d has length %d, want %d", i, len(v), dim)
		}
	}
	// One view slice reused across buckets: the sequential backend calls
	// this every step, and a per-bucket allocation here is steady-state GC
	// pressure the AllocsPerRun tests on the live path never see.
	views := make([][]float64, n)
	for start := 0; start < dim; start += bucketLen {
		end := start + bucketLen
		if end > dim {
			end = dim
		}
		for i, v := range vectors {
			views[i] = v[start:end]
		}
		if err := AllReduceAlg(views, weights, algo); err != nil {
			return err
		}
	}
	if dim == 0 {
		return AllReduceAlg(vectors, weights, algo)
	}
	return nil
}
