// Package allreduce implements a real bandwidth-optimal ring all-reduce
// (reduce-scatter followed by all-gather) over in-process workers, with the
// batch-weighted aggregation rule of Eq. 9:
//
//	g = Σ_i r_i · g_i
//
// so that samples on nodes with different local batch sizes carry identical
// weight in the global gradient. PyTorch-DDP-style gradient bucketing is
// supported by reducing the vector in fixed-size segments.
//
// The collective is exercised by the real-gradient training paths; the
// timing simulator uses the analytic model in internal/simnet instead.
package allreduce

import (
	"errors"
	"fmt"
	"sync"
)

// AllReduce replaces every vectors[i] in place with the weighted sum
// Σ_j weights[j]·vectors[j], using a ring reduce-scatter + all-gather among
// len(vectors) concurrent workers. All vectors must share one length.
//
// Pass nil weights for a plain average (weights 1/n).
func AllReduce(vectors [][]float64, weights []float64) error {
	n := len(vectors)
	if n == 0 {
		return errors.New("allreduce: no participants")
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return fmt.Errorf("allreduce: vector %d has length %d, want %d", i, len(v), dim)
		}
	}
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1 / float64(n)
		}
	}
	if len(weights) != n {
		return fmt.Errorf("allreduce: %d weights for %d participants", len(weights), n)
	}

	// Pre-scale local contributions (the r_i of Eq. 9).
	for i, v := range vectors {
		w := weights[i]
		for j := range v {
			v[j] *= w
		}
	}
	if n == 1 || dim == 0 {
		return nil
	}

	// Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]).
	bounds := make([]int, n+1)
	for c := 0; c <= n; c++ {
		bounds[c] = c * dim / n
	}
	chunk := func(v []float64, c int) []float64 {
		c = ((c % n) + n) % n
		return v[bounds[c]:bounds[c+1]]
	}

	// links[i] carries messages from worker i to worker (i+1)%n. Buffered
	// size 1 so each step's send does not require a rendezvous.
	links := make([]chan []float64, n)
	for i := range links {
		links[i] = make(chan []float64, 1)
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			v := vectors[rank]
			out := links[rank]
			in := links[(rank-1+n)%n]

			// Reduce-scatter: after step s, worker rank holds the partial
			// sum of chunk (rank - s) accumulated over s+1 workers. After
			// n-1 steps, worker rank owns the complete chunk (rank+1).
			for s := 0; s < n-1; s++ {
				sendIdx := rank - s
				src := chunk(v, sendIdx)
				msg := make([]float64, len(src))
				copy(msg, src)
				out <- msg
				recv := <-in
				dst := chunk(v, sendIdx-1)
				for j := range dst {
					dst[j] += recv[j]
				}
			}
			// All-gather: circulate the completed chunks.
			for s := 0; s < n-1; s++ {
				sendIdx := rank + 1 - s
				src := chunk(v, sendIdx)
				msg := make([]float64, len(src))
				copy(msg, src)
				out <- msg
				recv := <-in
				copy(chunk(v, sendIdx-1), recv)
			}
		}(i)
	}
	wg.Wait()
	return nil
}

// AllReduceBuckets runs AllReduce over the vectors segment by segment, as
// DDP does with gradient buckets. bucketLen is the per-bucket element
// count; the final bucket may be shorter.
func AllReduceBuckets(vectors [][]float64, weights []float64, bucketLen int) error {
	if bucketLen <= 0 {
		return fmt.Errorf("allreduce: bucket length %d", bucketLen)
	}
	n := len(vectors)
	if n == 0 {
		return errors.New("allreduce: no participants")
	}
	dim := len(vectors[0])
	for start := 0; start < dim; start += bucketLen {
		end := start + bucketLen
		if end > dim {
			end = dim
		}
		views := make([][]float64, n)
		for i, v := range vectors {
			if len(v) != dim {
				return fmt.Errorf("allreduce: vector %d has length %d, want %d", i, len(v), dim)
			}
			views[i] = v[start:end]
		}
		if err := AllReduce(views, weights); err != nil {
			return err
		}
	}
	if dim == 0 {
		return AllReduce(vectors, weights)
	}
	return nil
}
