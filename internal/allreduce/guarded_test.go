package allreduce

import (
	"errors"
	"sync"
	"testing"
	"time"

	"cannikin/internal/rng"
)

// fastPolicy keeps guarded-ring tests quick: worst-case hop budget ~35ms.
var fastPolicy = RetryPolicy{HopTimeout: 5 * time.Millisecond, Retries: 2, Backoff: 2, MaxTimeout: 50 * time.Millisecond}

func TestRetryPolicyDefaultsAndBudget(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	if p.HopTimeout != 20*time.Millisecond || p.Retries != 6 || p.Backoff != 2 || p.MaxTimeout != time.Second {
		t.Fatalf("defaults = %+v", p)
	}
	// Budget sums every attempt's deadline: 5 + 10 + 20 = 35ms.
	if got := fastPolicy.Budget(); got != 35*time.Millisecond {
		t.Fatalf("Budget() = %v, want 35ms", got)
	}
	// Backoff below 1 takes the default of 2: 1 + 2 + 4 + 8 = 15ms.
	flat := RetryPolicy{HopTimeout: time.Millisecond, Retries: 3, Backoff: 0.5, MaxTimeout: time.Second}
	if got := flat.Budget(); got != 15*time.Millisecond {
		t.Fatalf("flat Budget() = %v, want 15ms", got)
	}
}

// TestReduceGuardedMatchesReduce pins the core determinism contract: a
// guarded reduce that completes is bitwise-identical to the unguarded one
// on the same inputs — same chunking, same summation order — including
// under injected delays and drops that stay within the retry budget.
func TestReduceGuardedMatchesReduce(t *testing.T) {
	src := rng.New(29)
	for _, tc := range []struct {
		name   string
		n, dim int
		opts   func(n int) []Options
	}{
		{"clean", 3, 103, func(n int) []Options {
			return make([]Options, n)
		}},
		{"delayed sender", 4, 64, func(n int) []Options {
			g := make([]Options, n)
			g[1].SendDelay = 3 * time.Millisecond
			return g
		}},
		{"dropped sends", 3, 50, func(n int) []Options {
			g := make([]Options, n)
			g[2].SendDrops = 1
			return g
		}},
		{"delay and drop together", 5, 31, func(n int) []Options {
			g := make([]Options, n)
			g[0].SendDelay = 2 * time.Millisecond
			g[3].SendDrops = 1
			return g
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := src.Split(tc.name)
			vectors := make([][]float64, tc.n)
			for i := range vectors {
				vectors[i] = make([]float64, tc.dim)
				for j := range vectors[i] {
					vectors[i][j] = s.Norm(0, 1)
				}
			}
			want := cloneAll(vectors)
			ringA, err := NewRing(tc.n, 4)
			if err != nil {
				t.Fatal(err)
			}
			runRing(t, tc.n, func(rank int) error {
				return ringA.ReduceWith(rank, want[rank], Options{})
			})

			got := cloneAll(vectors)
			ringB, err := NewRing(tc.n, 4)
			if err != nil {
				t.Fatal(err)
			}
			opts := tc.opts(tc.n)
			// Drops cost the receiver extra waiting; give hops a budget that
			// comfortably covers one retransmit timeout.
			for i := range opts {
				opts[i].Guard = true
				opts[i].Policy = RetryPolicy{HopTimeout: 20 * time.Millisecond, Retries: 4, Backoff: 2, MaxTimeout: 200 * time.Millisecond}
			}
			runRing(t, tc.n, func(rank int) error {
				return ringB.ReduceWith(rank, got[rank], opts[rank])
			})

			for i := range got {
				for j := range got[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("rank %d elem %d: guarded %v != unguarded %v", i, j, got[i][j], want[i][j])
					}
				}
			}
		})
	}
}

// TestReduceGuardedSilentRank: when one rank never joins the collective,
// every participating rank must fail within its bounded budget — no
// deadlock — with a RingFault wrapping ErrHopTimeout, and the silent
// rank's successor must name it as the suspect.
func TestReduceGuardedSilentRank(t *testing.T) {
	const n, dim, silent = 3, 30, 0
	ring, err := NewRing(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for rank := 1; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			seg := make([]float64, dim)
			errs[rank] = ring.ReduceWith(rank, seg, Options{Guard: true, Policy: fastPolicy})
		}(rank)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("guarded reduce deadlocked with a silent rank")
	}
	for rank := 1; rank < n; rank++ {
		var rf *RingFault
		if !errors.As(errs[rank], &rf) {
			t.Fatalf("rank %d error = %v, want *RingFault", rank, errs[rank])
		}
		if !errors.Is(errs[rank], ErrHopTimeout) {
			t.Fatalf("rank %d error does not wrap ErrHopTimeout", rank)
		}
		if rf.Rank != rank {
			t.Fatalf("rank %d fault blames caller %d", rank, rf.Rank)
		}
	}
	// The silent rank's direct successor starves on its first receive.
	var rf *RingFault
	errors.As(errs[(silent+1)%n], &rf)
	if rf.Op != "recv" || rf.Suspect != silent {
		t.Fatalf("successor fault = %+v, want recv suspecting rank %d", rf, silent)
	}
}

// TestReduceGuardedDropBeyondBudget: a sender that drops more attempts
// than its neighbors' budgets cover forces a fault somewhere in the ring,
// and everyone still returns.
func TestReduceGuardedDropBeyondBudget(t *testing.T) {
	const n, dim = 3, 30
	ring, err := NewRing(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := make([]Options, n)
	for i := range opts {
		opts[i].Guard = true
		opts[i].Policy = fastPolicy
	}
	opts[1].SendDrops = 100 // 100 retransmit timeouts ≫ any hop budget
	errs := make([]error, n)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			seg := make([]float64, dim)
			errs[rank] = ring.ReduceWith(rank, seg, opts[rank])
		}(rank)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("guarded reduce deadlocked under excess drops")
	}
	faults := 0
	for _, e := range errs {
		if e != nil {
			if !errors.Is(e, ErrHopTimeout) {
				t.Fatalf("unexpected error type: %v", e)
			}
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no rank reported a fault despite drops beyond every budget")
	}
}

// runRing runs fn on every rank concurrently and fails the test on error
// or on a 5s hang.
func runRing(t *testing.T, n int, fn func(rank int) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(rank)
		}(rank)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ring collective hung")
	}
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}
