package allreduce

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// The transport conformance suite: one shared table of behaviors every
// transport must exhibit, executed against the in-process channel transport
// and the TCP transport (immediate, fixed-delay, and adaptive batching).
// The channel transport is the bitwise reference; TCP variants must match
// it bit for bit.

// ringSet is one transport's view of an n-rank ring: rings[i] is the Ring
// rank i reduces through (a single shared Ring for channels, one Ring per
// simulated process for TCP).
type ringSet struct {
	rings []*Ring
	stats func() TCPStats // nil for transports without wire counters
	close func()
}

type transportCase struct {
	name  string
	build func(t *testing.T, n int) ringSet
}

func transportCases() []transportCase {
	return []transportCase{
		{"chan", buildChanSet},
		{"tcp", func(t *testing.T, n int) ringSet { return buildTCPSet(t, n, 0) }},
		{"tcp_batch100us", func(t *testing.T, n int) ringSet { return buildTCPSet(t, n, 100*time.Microsecond) }},
		{"tcp_batch_auto", func(t *testing.T, n int) ringSet { return buildTCPSet(t, n, BatchAuto) }},
	}
}

func buildChanSet(t *testing.T, n int) ringSet {
	t.Helper()
	ring, err := NewRing(n, 4)
	if err != nil {
		t.Fatalf("NewRing(%d): %v", n, err)
	}
	rings := make([]*Ring, n)
	for i := range rings {
		rings[i] = ring
	}
	return ringSet{rings: rings, close: func() {}}
}

// buildTCPSet stands a real TCP ring up on loopback: n transports, one per
// rank, each with its own Ring — the same topology as n OS processes, just
// hosted in one test process.
func buildTCPSet(t *testing.T, n int, delay time.Duration) ringSet {
	t.Helper()
	addrs, listeners, err := ReserveRingAddrs(n)
	if err != nil {
		t.Fatalf("reserve addrs: %v", err)
	}
	trs := make([]*TCPTransport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			trs[rank], errs[rank] = NewTCPTransport(TCPConfig{
				Rank:        rank,
				Peers:       addrs,
				Listener:    listeners[rank],
				BatchDelay:  delay,
				DialTimeout: 5 * time.Second,
			})
		}(i)
	}
	wg.Wait()
	closeAll := func() {
		for _, tr := range trs {
			if tr != nil {
				tr.Close()
			}
		}
	}
	for i, err := range errs {
		if err != nil {
			closeAll()
			t.Fatalf("rank %d transport: %v", i, err)
		}
	}
	rings := make([]*Ring, n)
	for i := range rings {
		if rings[i], err = NewRingOver(trs[i]); err != nil {
			closeAll()
			t.Fatalf("rank %d ring: %v", i, err)
		}
	}
	return ringSet{
		rings: rings,
		stats: func() TCPStats { return trs[0].Stats() },
		close: closeAll,
	}
}

// reduceAll drives one segment through the ring from n goroutines (one per
// rank) and returns each rank's error.
func reduceAll(set ringSet, segs [][]float64, opts []Options) []error {
	n := len(segs)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			o := Options{}
			if opts != nil {
				o = opts[rank]
			}
			errs[rank] = set.rings[rank].ReduceWith(rank, segs[rank], o)
		}(i)
	}
	wg.Wait()
	return errs
}

func makeSegs(n, dim int) (segs [][]float64, want []float64) {
	segs = make([][]float64, n)
	want = make([]float64, dim)
	for i := range segs {
		segs[i] = make([]float64, dim)
		for j := range segs[i] {
			segs[i][j] = math.Sin(float64(i*dim+j)) * float64(1+i)
		}
	}
	// The reference sum in ring order: chunk c accumulates starting from
	// rank c+1 around the ring, but for a tolerance check plain summation
	// order is fine at 1e-12.
	for j := 0; j < dim; j++ {
		for i := 0; i < n; i++ {
			want[j] += segs[i][j]
		}
	}
	return segs, want
}

// TestTransportConformanceReduce: every transport reduces correctly (1e-12)
// across ring sizes and dimensions, including the dim==0 (empty bucket) and
// n==1 (single node) degenerate cases, for both plain and guarded calls.
func TestTransportConformanceReduce(t *testing.T) {
	t.Parallel()
	for _, tc := range transportCases() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for _, n := range []int{1, 2, 3, 4} {
				for _, dim := range []int{0, 1, 7, 64} {
					for _, guard := range []bool{false, true} {
						set := tc.build(t, n)
						segs, want := makeSegs(n, dim)
						opts := make([]Options, n)
						for i := range opts {
							opts[i] = Options{Guard: guard}
						}
						errs := reduceAll(set, segs, opts)
						for rank, err := range errs {
							if err != nil {
								t.Fatalf("n=%d dim=%d guard=%v rank %d: %v", n, dim, guard, rank, err)
							}
						}
						for rank := 0; rank < n; rank++ {
							for j := 0; j < dim; j++ {
								if diff := math.Abs(segs[rank][j] - want[j]); diff > 1e-12*math.Max(1, math.Abs(want[j])) {
									t.Fatalf("n=%d dim=%d guard=%v rank %d elem %d: got %v want %v",
										n, dim, guard, rank, j, segs[rank][j], want[j])
								}
							}
						}
						set.close()
					}
				}
			}
		})
	}
}

// TestTransportConformanceBitwise: for identical inputs, every transport —
// with and without batching — produces results bit-identical to the channel
// reference, across several back-to-back buckets (the caller-side bucketing
// the live runtime performs).
func TestTransportConformanceBitwise(t *testing.T) {
	t.Parallel()
	const n, dim, buckets = 4, 37, 3
	baselineSegs, _ := makeSegs(n, dim*buckets)
	baseline := buildChanSet(t, n)
	for b := 0; b < buckets; b++ {
		views := make([][]float64, n)
		for i := range views {
			views[i] = baselineSegs[i][b*dim : (b+1)*dim]
		}
		for _, err := range reduceAll(baseline, views, nil) {
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
		}
	}
	baseline.close()

	for _, tc := range transportCases()[1:] { // every non-reference transport
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			set := tc.build(t, n)
			defer set.close()
			segs, _ := makeSegs(n, dim*buckets)
			for b := 0; b < buckets; b++ {
				views := make([][]float64, n)
				for i := range views {
					views[i] = segs[i][b*dim : (b+1)*dim]
				}
				for rank, err := range reduceAll(set, views, nil) {
					if err != nil {
						t.Fatalf("bucket %d rank %d: %v", b, rank, err)
					}
				}
			}
			for rank := 0; rank < n; rank++ {
				for j := range segs[rank] {
					got, want := math.Float64bits(segs[rank][j]), math.Float64bits(baselineSegs[rank][j])
					if got != want {
						t.Fatalf("rank %d elem %d: bits %#x != channel reference %#x", rank, j, got, want)
					}
				}
			}
		})
	}
}

// TestTransportConformanceHopTimeout: a silent rank starves its successor's
// receive; the guarded reduce must fail with a *RingFault blaming the
// silent predecessor and unwrapping to ErrHopTimeout — identically on every
// transport.
func TestTransportConformanceHopTimeout(t *testing.T) {
	t.Parallel()
	fast := RetryPolicy{HopTimeout: 10 * time.Millisecond, Retries: 2, Backoff: 2, MaxTimeout: 50 * time.Millisecond}
	const n, dim, silent = 3, 6, 1
	for _, tc := range transportCases() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			set := tc.build(t, n)
			defer set.close()
			segs, _ := makeSegs(n, dim)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				if i == silent {
					continue // rank 1 never shows up
				}
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					errs[rank] = set.rings[rank].ReduceWith(rank, segs[rank], Options{Guard: true, Policy: fast})
				}(i)
			}
			wg.Wait()

			// The silent rank's successor starves receiving from it.
			succ := (silent + 1) % n
			err := errs[succ]
			if err == nil {
				t.Fatalf("rank %d: no error despite silent predecessor", succ)
			}
			var fault *RingFault
			if !errors.As(err, &fault) {
				t.Fatalf("rank %d: error %v is not a *RingFault", succ, err)
			}
			if fault.Rank != succ || fault.Suspect != silent || fault.Op != "recv" {
				t.Fatalf("rank %d fault = %+v, want recv fault suspecting rank %d", succ, fault, silent)
			}
			if !errors.Is(err, ErrHopTimeout) {
				t.Fatalf("rank %d fault does not unwrap to ErrHopTimeout: %v", succ, err)
			}
			// Every participating rank must have unblocked (no hang) —
			// whatever they report, it must be a RingFault, not a panic or
			// a foreign error.
			for rank, err := range errs {
				if rank == silent || err == nil {
					continue
				}
				if !errors.As(err, &fault) {
					t.Fatalf("rank %d: non-RingFault error %v", rank, err)
				}
			}
		})
	}
}

// TestTCPBrokenLinkFault: killing one rank's transport mid-ring surfaces as
// a *RingFault on its neighbors whose cause is the socket error, not a hop
// timeout — breakage and starvation stay distinguishable.
func TestTCPBrokenLinkFault(t *testing.T) {
	t.Parallel()
	const n, dim, victim = 3, 6, 1
	fast := RetryPolicy{HopTimeout: 10 * time.Millisecond, Retries: 2, Backoff: 2, MaxTimeout: 50 * time.Millisecond}
	set := buildTCPSet(t, n, 0)
	defer set.close()

	// Kill rank 1's process (its transport) before anyone reduces.
	tr := set.rings[victim].Transport().(*TCPTransport)
	tr.Close()

	segs, _ := makeSegs(n, dim)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if i == victim {
			continue
		}
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = set.rings[rank].ReduceWith(rank, segs[rank], Options{Guard: true, Policy: fast})
		}(i)
	}
	wg.Wait()

	sawTransportCause := false
	var fault *RingFault
	for rank, err := range errs {
		if rank == victim {
			continue
		}
		if err == nil {
			t.Fatalf("rank %d: reduce succeeded across a dead rank", rank)
		}
		if !errors.As(err, &fault) {
			t.Fatalf("rank %d: non-RingFault error %v", rank, err)
		}
		if !errors.Is(err, ErrHopTimeout) {
			sawTransportCause = true
		}
	}
	if !sawTransportCause {
		t.Fatalf("no neighbor reported a transport-cause fault; all errors were plain timeouts: %v", errs)
	}
}

// TestTCPNonLocalRank: a TCP transport hosts exactly one rank; reducing as
// any other rank must fail fast instead of hanging.
func TestTCPNonLocalRank(t *testing.T) {
	t.Parallel()
	set := buildTCPSet(t, 2, 0)
	defer set.close()
	seg := []float64{1, 2, 3}
	err := set.rings[0].ReduceWith(1, seg, Options{})
	if err == nil {
		t.Fatal("reducing a non-local rank succeeded")
	}
}

// TestTCPBatchingStats: with a coalescing delay, back-to-back bucket
// reduces pack multiple ring hops per network write, and the transport's
// counters record it.
func TestTCPBatchingStats(t *testing.T) {
	t.Parallel()
	const n, dim, buckets = 2, 16, 8
	set := buildTCPSet(t, n, 200*time.Microsecond)
	defer set.close()
	segs, _ := makeSegs(n, dim*buckets)
	for b := 0; b < buckets; b++ {
		views := make([][]float64, n)
		for i := range views {
			views[i] = segs[i][b*dim : (b+1)*dim]
		}
		for rank, err := range reduceAll(set, views, nil) {
			if err != nil {
				t.Fatalf("bucket %d rank %d: %v", b, rank, err)
			}
		}
	}
	st := set.stats()
	if st.MessagesSent == 0 || st.BytesSent == 0 || st.Batches == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
	if st.Batches > st.MessagesSent {
		t.Fatalf("more batches than messages: %+v", st)
	}
	if got := st.MsgsPerBatch(); got < 1 {
		t.Fatalf("MsgsPerBatch = %v, want >= 1", got)
	}
}
