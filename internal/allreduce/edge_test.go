package allreduce

import (
	"testing"
	"time"
)

// TestRingEdgeCases is the table-driven boundary sweep for the ring
// collective: single-node rings, empty segments, and bucket layouts where
// the bucket count exceeds the element count must all be exact no-ops or
// exact sums — for both the unguarded and the guarded entry points.
func TestRingEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		n         int
		vectors   [][]float64
		bucketLen int
		want      [][]float64
	}{
		{
			name:      "single-node ring",
			n:         1,
			vectors:   [][]float64{{1.5, -2, 3}},
			bucketLen: 2,
			want:      [][]float64{{1.5, -2, 3}},
		},
		{
			name:      "single-node empty vector",
			n:         1,
			vectors:   [][]float64{{}},
			bucketLen: 1,
			want:      [][]float64{{}},
		},
		{
			name:      "empty bucket: zero-length segments",
			n:         3,
			vectors:   [][]float64{{}, {}, {}},
			bucketLen: 4,
			want:      [][]float64{{}, {}, {}},
		},
		{
			name:      "bucket count exceeds element count",
			n:         2,
			vectors:   [][]float64{{1, 2, 3}, {10, 20, 30}},
			bucketLen: 1, // 3 buckets of 1 element across 2 workers
			want:      [][]float64{{11, 22, 33}, {11, 22, 33}},
		},
		{
			name:      "more workers than elements",
			n:         4,
			vectors:   [][]float64{{1}, {2}, {3}, {4}},
			bucketLen: 8, // one bucket, mostly-empty ring chunks
			want:      [][]float64{{10}, {10}, {10}, {10}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := cloneAll(tc.vectors)
			if err := AllReduceBuckets(got, onesWeights(tc.n), tc.bucketLen); err != nil {
				t.Fatal(err)
			}
			assertExact(t, "AllReduceBuckets", got, tc.want)

			// Same layout through the persistent ring, bucket by bucket.
			dim := len(tc.vectors[0])
			nb := (dim + tc.bucketLen - 1) / tc.bucketLen
			for _, guarded := range []bool{false, true} {
				ring, err := NewRing(tc.n, 2)
				if err != nil {
					t.Fatal(err)
				}
				got := cloneAll(tc.vectors)
				opts := Options{}
				if guarded {
					opts = Options{Guard: true, Policy: RetryPolicy{HopTimeout: 50 * time.Millisecond}}
				}
				runRing(t, tc.n, func(rank int) error {
					for k := nb - 1; k >= 0; k-- {
						end := (k + 1) * tc.bucketLen
						if end > dim {
							end = dim
						}
						if err := ring.ReduceWith(rank, got[rank][k*tc.bucketLen:end], opts); err != nil {
							return err
						}
					}
					return nil
				})
				label := "Ring.ReduceWith"
				if guarded {
					label = "Ring.ReduceWith guarded"
				}
				assertExact(t, label, got, tc.want)
			}
		})
	}
}

func onesWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func assertExact(t *testing.T, label string, got, want [][]float64) {
	t.Helper()
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: rank %d length %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: rank %d elem %d = %v, want %v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}
