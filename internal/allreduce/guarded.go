package allreduce

import (
	"errors"
	"fmt"
	"time"
)

// ErrHopTimeout reports that one ring hop (a single send or receive)
// exhausted its retry budget without completing. Test with errors.Is.
var ErrHopTimeout = errors.New("allreduce: ring hop timed out")

// RetryPolicy bounds every hop of a guarded reduce: each send and receive
// must complete within a deadline that starts at HopTimeout and grows by
// Backoff per retry (capped at MaxTimeout), for at most Retries retries.
// Because channel sends and receives are idempotent until they succeed,
// "retry" is simply another bounded wait on the same operation — what makes
// the whole collective deadlock-free by construction: every blocked hop
// unblocks within the policy's finite total budget.
type RetryPolicy struct {
	// HopTimeout is the first attempt's deadline (default 20ms).
	HopTimeout time.Duration
	// Retries is how many additional attempts follow a timeout (default 6).
	Retries int
	// Backoff multiplies the deadline after each timeout (default 2; values
	// below 1 take the default).
	Backoff float64
	// MaxTimeout caps the grown deadline (default 1s).
	MaxTimeout time.Duration
}

// WithDefaults fills unset fields.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.HopTimeout <= 0 {
		p.HopTimeout = 20 * time.Millisecond
	}
	if p.Retries <= 0 {
		p.Retries = 6
	}
	if p.Backoff < 1 {
		p.Backoff = 2
	}
	if p.MaxTimeout <= 0 {
		p.MaxTimeout = time.Second
	}
	return p
}

// Budget is the worst-case total wait of one hop under the policy: the sum
// of every attempt's deadline. A stalled neighbor that resumes within the
// budget is tolerated; one that does not forces the hop to fail.
func (p RetryPolicy) Budget() time.Duration {
	p = p.WithDefaults()
	total := time.Duration(0)
	d := p.HopTimeout
	for a := 0; a <= p.Retries; a++ {
		total += d
		d = time.Duration(float64(d) * p.Backoff)
		if d > p.MaxTimeout {
			d = p.MaxTimeout
		}
	}
	return total
}

// Guard configures one guarded reduce call: the retry policy plus the
// injected faults this call must suffer (both zero for a clean call).
type Guard struct {
	Policy RetryPolicy
	// SendDelay delays this call's first send attempt.
	SendDelay time.Duration
	// SendDrops drops that many attempts of this call's first send; each
	// lost attempt costs the sender one retransmit timeout, exactly like a
	// lost packet under a retransmission timer.
	SendDrops int
}

// RingFault is the error of a failed guarded reduce: which rank gave up,
// on which operation, and which neighbor it therefore suspects. It wraps
// ErrHopTimeout.
type RingFault struct {
	// Rank is the caller that exhausted its retry budget.
	Rank int
	// Suspect is the neighbor the failed hop depends on: the predecessor
	// for a starved receive, the successor for a blocked send.
	Suspect int
	// Op is "send" or "recv"; Hop is the 0-based hop index within the
	// reduce (reduce-scatter hops first, then all-gather hops).
	Op  string
	Hop int
}

func (f *RingFault) Error() string {
	return fmt.Sprintf("allreduce: rank %d %s hop %d timed out (suspect rank %d): %v",
		f.Rank, f.Op, f.Hop, f.Suspect, ErrHopTimeout)
}

func (f *RingFault) Unwrap() error { return ErrHopTimeout }

// ReduceGuarded is Reduce with per-hop deadlines, bounded retry with
// exponential backoff, and deterministic fault injection. It performs the
// identical arithmetic to Reduce — same chunking, same summation order —
// so a guarded reduce that completes yields bitwise-identical results to
// an unguarded one. On retry exhaustion it returns a *RingFault naming the
// suspected neighbor; the segment then holds partially-reduced data and
// must be discarded by the caller.
//
// All n ranks must call ReduceGuarded concurrently with the same policy.
// When one rank fails, its neighbors' pending hops are guaranteed to fail
// (or complete) within their own budgets: no call blocks forever.
func (r *Ring) ReduceGuarded(rank int, seg []float64, g Guard) error {
	n := r.n
	dim := len(seg)
	if n == 1 || dim == 0 {
		return nil
	}
	p := g.Policy.WithDefaults()
	sc := &r.scratch[rank]
	bounds := sc.bounds
	for c := 0; c <= n; c++ {
		bounds[c] = c * dim / n
	}
	chunk := func(c int) []float64 {
		c = ((c % n) + n) % n
		return seg[bounds[c]:bounds[c+1]]
	}
	out := r.links[rank]
	in := r.links[(rank-1+n)%n]

	spare := sc.spare
	sc.spare = nil
	stage := func(src []float64) []float64 {
		var msg []float64
		if cap(spare) >= len(src) {
			msg = spare[:len(src)]
			spare = nil
		} else {
			msg = make([]float64, len(src))
		}
		copy(msg, src)
		return msg
	}

	hop := 0
	firstSend := true
	send := func(msg []float64) error {
		if firstSend {
			firstSend = false
			if g.SendDelay > 0 {
				time.Sleep(g.SendDelay)
			}
			// Each dropped attempt is a lost packet: the payload is not
			// delivered, and the sender retransmits after one hop timeout.
			for d := 0; d < g.SendDrops; d++ {
				time.Sleep(p.HopTimeout)
			}
		}
		if err := sendTimed(out, msg, p); err != nil {
			return &RingFault{Rank: rank, Suspect: (rank + 1) % n, Op: "send", Hop: hop}
		}
		return nil
	}
	recv := func() ([]float64, error) {
		msg, err := recvTimed(in, p)
		if err != nil {
			return nil, &RingFault{Rank: rank, Suspect: (rank - 1 + n) % n, Op: "recv", Hop: hop}
		}
		return msg, nil
	}

	// Reduce-scatter, then all-gather: the exact hop sequence of Reduce.
	for s := 0; s < n-1; s++ {
		sendIdx := rank - s
		if err := send(stage(chunk(sendIdx))); err != nil {
			sc.spare = spare
			return err
		}
		msg, err := recv()
		if err != nil {
			sc.spare = spare
			return err
		}
		dst := chunk(sendIdx - 1)
		for j := range dst {
			dst[j] += msg[j]
		}
		spare = msg
		hop++
	}
	for s := 0; s < n-1; s++ {
		sendIdx := rank + 1 - s
		if err := send(stage(chunk(sendIdx))); err != nil {
			sc.spare = spare
			return err
		}
		msg, err := recv()
		if err != nil {
			sc.spare = spare
			return err
		}
		copy(chunk(sendIdx-1), msg)
		spare = msg
		hop++
	}
	sc.spare = spare
	return nil
}

// sendTimed sends msg within the policy's retry budget.
func sendTimed(out chan<- []float64, msg []float64, p RetryPolicy) error {
	d := p.HopTimeout
	timer := time.NewTimer(d)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case out <- msg:
			return nil
		case <-timer.C:
			if attempt >= p.Retries {
				return ErrHopTimeout
			}
			d = nextDeadline(d, p)
			timer.Reset(d)
		}
	}
}

// recvTimed receives within the policy's retry budget.
func recvTimed(in <-chan []float64, p RetryPolicy) ([]float64, error) {
	d := p.HopTimeout
	timer := time.NewTimer(d)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case msg := <-in:
			return msg, nil
		case <-timer.C:
			if attempt >= p.Retries {
				return nil, ErrHopTimeout
			}
			d = nextDeadline(d, p)
			timer.Reset(d)
		}
	}
}

func nextDeadline(d time.Duration, p RetryPolicy) time.Duration {
	d = time.Duration(float64(d) * p.Backoff)
	if d > p.MaxTimeout {
		d = p.MaxTimeout
	}
	return d
}
