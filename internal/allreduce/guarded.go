package allreduce

import (
	"errors"
	"fmt"
	"time"
)

// ErrHopTimeout reports that one ring hop (a single send or receive)
// exhausted its retry budget without completing. Test with errors.Is.
var ErrHopTimeout = errors.New("allreduce: ring hop timed out")

// RetryPolicy bounds every hop of a guarded reduce: each send and receive
// must complete within a deadline that starts at HopTimeout and grows by
// Backoff per retry (capped at MaxTimeout), for at most Retries retries.
// Because sends and receives are idempotent until they succeed, "retry" is
// simply another bounded wait on the same operation — what makes the whole
// collective deadlock-free by construction: every blocked hop unblocks
// within the policy's finite total budget.
type RetryPolicy struct {
	// HopTimeout is the first attempt's deadline (default 20ms).
	HopTimeout time.Duration
	// Retries is how many additional attempts follow a timeout (default 6).
	Retries int
	// Backoff multiplies the deadline after each timeout (default 2; values
	// below 1 take the default).
	Backoff float64
	// MaxTimeout caps the grown deadline (default 1s).
	MaxTimeout time.Duration
}

// WithDefaults fills unset fields.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.HopTimeout <= 0 {
		p.HopTimeout = 20 * time.Millisecond
	}
	if p.Retries <= 0 {
		p.Retries = 6
	}
	if p.Backoff < 1 {
		p.Backoff = 2
	}
	if p.MaxTimeout <= 0 {
		p.MaxTimeout = time.Second
	}
	return p
}

// Budget is the worst-case total wait of one hop under the policy: the sum
// of every attempt's deadline. A stalled neighbor that resumes within the
// budget is tolerated; one that does not forces the hop to fail.
func (p RetryPolicy) Budget() time.Duration {
	p = p.WithDefaults()
	total := time.Duration(0)
	d := p.HopTimeout
	for a := 0; a <= p.Retries; a++ {
		total += d
		d = time.Duration(float64(d) * p.Backoff)
		if d > p.MaxTimeout {
			d = p.MaxTimeout
		}
	}
	return total
}

// Guard configures one guarded reduce call: the retry policy plus the
// injected faults this call must suffer (both zero for a clean call).
//
// Deprecated: new code should pass Options to ReduceWith; Guard remains as
// the argument of the legacy ReduceGuarded wrapper.
type Guard struct {
	Policy RetryPolicy
	// SendDelay delays this call's first send attempt.
	SendDelay time.Duration
	// SendDrops drops that many attempts of this call's first send; each
	// lost attempt costs the sender one retransmit timeout, exactly like a
	// lost packet under a retransmission timer.
	SendDrops int
}

// RingFault is the error of a failed guarded reduce: which rank gave up,
// on which operation, and which neighbor it therefore suspects. Cause
// carries the underlying failure — ErrHopTimeout for an exhausted retry
// budget, or the transport error for a broken link (a reset socket, say) —
// and is exposed through Unwrap, so errors.Is(err, ErrHopTimeout)
// distinguishes starvation from breakage.
type RingFault struct {
	// Rank is the caller that exhausted its retry budget.
	Rank int
	// Suspect is the neighbor the failed hop depends on: the predecessor
	// for a starved receive, the successor for a blocked send.
	Suspect int
	// Op is "send" or "recv"; Hop is the 0-based hop index within the
	// reduce (reduce-scatter hops first, then all-gather hops).
	Op  string
	Hop int
	// Cause is the underlying hop failure (ErrHopTimeout when the retry
	// budget ran out).
	Cause error
}

func (f *RingFault) Error() string {
	cause := f.Cause
	if cause == nil {
		cause = ErrHopTimeout
	}
	return fmt.Sprintf("allreduce: rank %d %s hop %d failed (suspect rank %d): %v",
		f.Rank, f.Op, f.Hop, f.Suspect, cause)
}

func (f *RingFault) Unwrap() error {
	if f.Cause == nil {
		return ErrHopTimeout
	}
	return f.Cause
}

// ReduceGuarded is ReduceWith with Options{Guard: true} spelled through the
// legacy Guard struct: per-hop deadlines, bounded retry with exponential
// backoff, and deterministic fault injection. It performs the identical
// arithmetic to Reduce — same chunking, same summation order — so a
// guarded reduce that completes yields bitwise-identical results to an
// unguarded one. On retry exhaustion it returns a *RingFault naming the
// suspected neighbor; the segment then holds partially-reduced data and
// must be discarded by the caller.
//
// Deprecated: new code should call ReduceWith directly.
func (r *Ring) ReduceGuarded(rank int, seg []float64, g Guard) error {
	return r.ReduceWith(rank, seg, Options{
		Guard:     true,
		Policy:    g.Policy,
		SendDelay: g.SendDelay,
		SendDrops: g.SendDrops,
	})
}

func nextDeadline(d time.Duration, p RetryPolicy) time.Duration {
	d = time.Duration(float64(d) * p.Backoff)
	if d > p.MaxTimeout {
		d = p.MaxTimeout
	}
	return d
}
