package allreduce

import (
	"testing"
	"testing/quick"

	"cannikin/internal/rng"
)

func TestBroadcastFromEveryRoot(t *testing.T) {
	src := rng.New(9)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 1 + s.Intn(9)
		dim := 1 + s.Intn(100)
		root := s.Intn(n)
		vectors := make([][]float64, n)
		for i := range vectors {
			vectors[i] = make([]float64, dim)
			for j := range vectors[i] {
				vectors[i][j] = s.Norm(0, 1)
			}
		}
		want := append([]float64(nil), vectors[root]...)
		if err := Broadcast(vectors, root); err != nil {
			return false
		}
		for i := range vectors {
			for j := range want {
				if vectors[i][j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastErrors(t *testing.T) {
	if err := Broadcast(nil, 0); err == nil {
		t.Fatal("empty group accepted")
	}
	if err := Broadcast([][]float64{{1}}, 2); err == nil {
		t.Fatal("bad root accepted")
	}
	if err := Broadcast([][]float64{{1}, {1, 2}}, 0); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestBroadcastSingleWorkerNoop(t *testing.T) {
	v := [][]float64{{1, 2, 3}}
	if err := Broadcast(v, 0); err != nil {
		t.Fatal(err)
	}
	if v[0][0] != 1 || v[0][2] != 3 {
		t.Fatal("single-worker broadcast mutated data")
	}
}

func TestBroadcastDimSmallerThanWorkers(t *testing.T) {
	vectors := [][]float64{{7, 8}, {0, 0}, {0, 0}, {0, 0}, {0, 0}}
	if err := Broadcast(vectors, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range vectors {
		if v[0] != 7 || v[1] != 8 {
			t.Fatalf("rank %d = %v", i, v)
		}
	}
}
