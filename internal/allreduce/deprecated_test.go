package allreduce

import (
	"testing"
	"time"

	"cannikin/internal/rng"
)

// TestDeprecatedWrappersMatchReduceWith keeps the legacy Reduce and
// ReduceGuarded shims covered now that all internal callers use
// ReduceWith: both wrappers must produce bitwise-identical results to the
// equivalent ReduceWith call on the same inputs.
func TestDeprecatedWrappersMatchReduceWith(t *testing.T) {
	const n, dim = 4, 61
	src := rng.New(41)
	vectors := make([][]float64, n)
	for i := range vectors {
		vectors[i] = make([]float64, dim)
		for j := range vectors[i] {
			vectors[i][j] = src.Norm(0, 1)
		}
	}

	want := cloneAll(vectors)
	ring, err := NewRing(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	runRing(t, n, func(rank int) error {
		return ring.ReduceWith(rank, want[rank], Options{})
	})

	t.Run("Reduce", func(t *testing.T) {
		got := cloneAll(vectors)
		ring, err := NewRing(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		runRing(t, n, func(rank int) error {
			ring.Reduce(rank, got[rank])
			return nil
		})
		assertExact(t, "Reduce shim", got, want)
	})

	t.Run("ReduceGuarded", func(t *testing.T) {
		got := cloneAll(vectors)
		ring, err := NewRing(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		guard := Guard{Policy: RetryPolicy{HopTimeout: 50 * time.Millisecond}}
		runRing(t, n, func(rank int) error {
			return ring.ReduceGuarded(rank, got[rank], guard)
		})
		assertExact(t, "ReduceGuarded shim", got, want)
	})
}
