package allreduce

import (
	"math"
	"testing"
	"testing/quick"

	"cannikin/internal/rng"
)

func directWeightedSum(vectors [][]float64, weights []float64) []float64 {
	dim := len(vectors[0])
	out := make([]float64, dim)
	for i, v := range vectors {
		for j := range v {
			out[j] += weights[i] * v[j]
		}
	}
	return out
}

func cloneAll(vectors [][]float64) [][]float64 {
	out := make([][]float64, len(vectors))
	for i, v := range vectors {
		out[i] = append([]float64(nil), v...)
	}
	return out
}

func TestAllReduceMatchesDirectSum(t *testing.T) {
	src := rng.New(1)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 1 + s.Intn(9)
		dim := 1 + s.Intn(200)
		vectors := make([][]float64, n)
		weights := make([]float64, n)
		for i := range vectors {
			vectors[i] = make([]float64, dim)
			for j := range vectors[i] {
				vectors[i][j] = s.Norm(0, 2)
			}
			weights[i] = s.Float64() + 0.01
		}
		want := directWeightedSum(vectors, weights)
		if err := AllReduce(vectors, weights); err != nil {
			return false
		}
		for i := range vectors {
			for j := range want {
				if math.Abs(vectors[i][j]-want[j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceNilWeightsAverages(t *testing.T) {
	vectors := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if err := AllReduce(vectors, nil); err != nil {
		t.Fatal(err)
	}
	for i := range vectors {
		if math.Abs(vectors[i][0]-3) > 1e-12 || math.Abs(vectors[i][1]-4) > 1e-12 {
			t.Fatalf("rank %d = %v, want [3 4]", i, vectors[i])
		}
	}
}

func TestAllReduceEq9BatchWeighting(t *testing.T) {
	// Eq. 9: r_i = b_i/B. Per-sample gradients must carry equal weight.
	// Node 0: 3 samples with mean gradient 1.0; node 1: 1 sample with
	// gradient 5.0. Global per-sample mean = (3*1 + 1*5)/4 = 2.
	vectors := [][]float64{{1}, {5}}
	weights := []float64{0.75, 0.25}
	if err := AllReduce(vectors, weights); err != nil {
		t.Fatal(err)
	}
	if math.Abs(vectors[0][0]-2) > 1e-12 || math.Abs(vectors[1][0]-2) > 1e-12 {
		t.Fatalf("weighted aggregate = %v, want 2", vectors)
	}
}

func TestAllReduceSingleWorker(t *testing.T) {
	vectors := [][]float64{{2, 4}}
	if err := AllReduce(vectors, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	if vectors[0][0] != 1 || vectors[0][1] != 2 {
		t.Fatalf("single worker = %v", vectors[0])
	}
}

func TestAllReduceDimSmallerThanWorkers(t *testing.T) {
	// 5 workers, 2 elements: some ring chunks are empty.
	vectors := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}}
	weights := []float64{1, 1, 1, 1, 1}
	if err := AllReduce(vectors, weights); err != nil {
		t.Fatal(err)
	}
	for i := range vectors {
		if vectors[i][0] != 5 || vectors[i][1] != 5 {
			t.Fatalf("rank %d = %v, want [5 5]", i, vectors[i])
		}
	}
}

func TestAllReduceErrors(t *testing.T) {
	if err := AllReduce(nil, nil); err == nil {
		t.Fatal("empty group accepted")
	}
	if err := AllReduce([][]float64{{1}, {1, 2}}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := AllReduce([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Fatal("wrong weight count accepted")
	}
}

func TestAllReduceBucketsMatchesSingleShot(t *testing.T) {
	src := rng.New(3)
	n, dim := 4, 103 // deliberately not divisible by the bucket size
	build := func() ([][]float64, []float64) {
		s := src.Split("build")
		vectors := make([][]float64, n)
		weights := make([]float64, n)
		for i := range vectors {
			vectors[i] = make([]float64, dim)
			for j := range vectors[i] {
				vectors[i][j] = s.Norm(0, 1)
			}
			weights[i] = 0.1 + s.Float64()
		}
		return vectors, weights
	}
	v1, w := build()
	v2 := cloneAll(v1)
	if err := AllReduce(v1, w); err != nil {
		t.Fatal(err)
	}
	if err := AllReduceBuckets(v2, w, 10); err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		for j := range v1[i] {
			if math.Abs(v1[i][j]-v2[i][j]) > 1e-9 {
				t.Fatalf("bucketed mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestAllReduceBucketsErrors(t *testing.T) {
	if err := AllReduceBuckets([][]float64{{1}}, nil, 0); err == nil {
		t.Fatal("zero bucket length accepted")
	}
	if err := AllReduceBuckets(nil, nil, 1); err == nil {
		t.Fatal("empty group accepted")
	}
	if err := AllReduceBuckets([][]float64{{1, 2}, {1}}, nil, 1); err == nil {
		t.Fatal("ragged vectors accepted")
	}
}

func BenchmarkAllReduce8x1M(b *testing.B) {
	src := rng.New(5)
	const n, dim = 8, 1 << 20
	vectors := make([][]float64, n)
	for i := range vectors {
		vectors[i] = make([]float64, dim)
		for j := range vectors[i] {
			vectors[i][j] = src.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := AllReduce(vectors, nil); err != nil {
			b.Fatal(err)
		}
	}
}
