package allreduce

import (
	"sync"
	"testing"
	"time"
)

// TestLingerControlCadenceBound checks the contention fix: under
// back-to-back arrivals the linger may grow, but never beyond twice the
// observed arrival cadence (nor the absolute cap).
func TestLingerControlCadenceBound(t *testing.T) {
	var lc lingerControl
	now := time.Unix(0, 0)
	gap := 10 * time.Microsecond // far below tcpCoalesceWindow
	var last time.Duration
	for i := 0; i < 50; i++ {
		now = now.Add(gap)
		last = lc.next(now, 0)
		if last > 2*gap {
			t.Fatalf("step %d: linger %v exceeds 2×gap %v", i, last, 2*gap)
		}
		if last > tcpAutoMaxDelay {
			t.Fatalf("step %d: linger %v exceeds absolute cap %v", i, last, tcpAutoMaxDelay)
		}
	}
	if last == 0 {
		t.Fatal("sustained burst should have grown a non-zero linger")
	}
}

// TestLingerControlAbsoluteCap: with a cadence near the coalesce window the
// 2×gap bound is looser than tcpAutoMaxDelay, which must then win.
func TestLingerControlAbsoluteCap(t *testing.T) {
	var lc lingerControl
	now := time.Unix(0, 0)
	gap := tcpCoalesceWindow - time.Microsecond
	for i := 0; i < 50; i++ {
		now = now.Add(gap)
		if d := lc.next(now, 0); d > tcpAutoMaxDelay {
			t.Fatalf("step %d: linger %v exceeds cap %v", i, d, tcpAutoMaxDelay)
		}
	}
}

// TestLingerControlIdleReset checks the decay fix: after an idle gap the
// linger returns to zero immediately, so the first hops of the next burst
// pay no stale delay.
func TestLingerControlIdleReset(t *testing.T) {
	var lc lingerControl
	now := time.Unix(0, 0)
	gap := 50 * time.Microsecond
	for i := 0; i < 20; i++ {
		now = now.Add(gap)
		lc.next(now, 0)
	}
	if lc.delay == 0 {
		t.Fatal("setup: expected a non-zero linger after the burst")
	}
	now = now.Add(10 * time.Millisecond) // > tcpIdleWindow
	if d := lc.next(now, 0); d != 0 {
		t.Fatalf("first post-idle batch lingered %v, want 0", d)
	}
	// The next batch after the reset starts growing from zero again, not
	// from the pre-idle value.
	now = now.Add(gap)
	if d := lc.next(now, 0); d > tcpAutoStep {
		t.Fatalf("second post-idle batch lingered %v, want <= one step %v", d, tcpAutoStep)
	}
}

// TestLingerControlPendingSkips: when messages are already queued the batch
// exists without waiting — the linger must be skipped.
func TestLingerControlPendingSkips(t *testing.T) {
	var lc lingerControl
	now := time.Unix(0, 0)
	gap := 20 * time.Microsecond
	for i := 0; i < 10; i++ {
		now = now.Add(gap)
		lc.next(now, 0)
	}
	now = now.Add(gap)
	if d := lc.next(now, 3); d != 0 {
		t.Fatalf("linger %v with 3 pending messages, want 0", d)
	}
}

// measureTCPRing builds a 1-process ring of n ranks over loopback TCP with
// the given batch delay and returns the best (minimum) wall time of trials
// runs of rounds back-to-back reduces — the same min-of-count discipline
// bench.sh uses, so scheduler noise on a loaded host can only slow a trial
// down, never speed it up.
func measureTCPRing(t *testing.T, n, dim, rounds, trials int, batch time.Duration) time.Duration {
	t.Helper()
	addrs, lns, err := ReserveRingAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*TCPTransport, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := NewTCPTransport(TCPConfig{
				Rank: rank, Peers: addrs, Listener: lns[rank], BatchDelay: batch,
			})
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			trs[rank] = tr
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	defer func() {
		for _, tr := range trs {
			if tr != nil {
				tr.Close()
			}
		}
	}()
	rings := make([]*Ring, n)
	for i, tr := range trs {
		if rings[i], err = NewRingOver(tr); err != nil {
			t.Fatal(err)
		}
	}
	segs := make([][]float64, n)
	for i := range segs {
		segs[i] = make([]float64, dim)
		for j := range segs[i] {
			segs[i][j] = float64(i*dim + j)
		}
	}
	best := time.Duration(1<<62 - 1)
	for trial := 0; trial < trials; trial++ {
		start := time.Now()
		var rwg sync.WaitGroup
		for i := 0; i < n; i++ {
			rwg.Add(1)
			go func(rank int) {
				defer rwg.Done()
				for r := 0; r < rounds; r++ {
					if err := rings[rank].ReduceWith(rank, segs[rank], Options{}); err != nil {
						t.Errorf("rank %d round %d: %v", rank, r, err)
						return
					}
				}
			}(i)
		}
		rwg.Wait()
		if el := time.Since(start); el < best {
			best = el
		}
	}
	return best
}

// TestTCPBatchAutoNotSlowerThanPlain is the bench-backed regression test
// for the BatchAuto over-linger: adaptive batching must stay within 1.1× of
// plain immediate sends (plus a small absolute slack for timing noise on
// tiny runs). Before the lingerControl fix this failed by ~2× whenever the
// host was contended.
func TestTCPBatchAutoNotSlowerThanPlain(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison")
	}
	const (
		n      = 4
		dim    = 8192
		rounds = 20
		trials = 5
	)
	plain := measureTCPRing(t, n, dim, rounds, trials, 0)
	auto := measureTCPRing(t, n, dim, rounds, trials, BatchAuto)
	slack := 10 * time.Millisecond
	if limit := plain + plain/10 + slack; auto > limit {
		t.Fatalf("BatchAuto %v vs plain %v: exceeds 1.1× + %v slack (limit %v)", auto, plain, slack, limit)
	}
	t.Logf("plain=%v auto=%v (ratio %.2f)", plain, auto, float64(auto)/float64(plain))
}
