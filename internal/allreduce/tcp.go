package allreduce

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCP wire protocol. Every connection starts with one fixed-size hello
// frame identifying the dialing rank; after that the stream is a sequence
// of length-prefixed messages:
//
//	hello:   magic "CKR1" | uint32 rank | uint32 workers      (12 bytes)
//	message: uint32 count | count × uint64 float64 bits        (4 + 8·count)
//
// All integers are little-endian; floats travel as their IEEE-754 bit
// patterns, so a value is reproduced exactly — transport can never perturb
// arithmetic. Batching coalesces several messages into one write/syscall;
// it is purely a framing concern: the receiver decodes messages one at a
// time off the buffered stream, so grouping on the wire changes syscall
// counts, never content or order.
//
// Peer links (the PeerTransport extension carrying halving-doubling's
// non-neighbor exchanges) reuse the identical frame layout on dedicated
// sockets; their hello leads with tcpPeerMagic instead, so one listener
// serves both ring bring-up and lazy peer dials.
const tcpMagic = "CKR1"

// tcpPeerMagic opens a peer-link connection: same 12-byte hello frame,
// rank field naming the dialing rank the link connects to.
const tcpPeerMagic = "CKP1"

// tcpMaxMsgLen caps a single message's element count (64 MiB of payload),
// guarding the reader against corrupt or hostile length prefixes.
const tcpMaxMsgLen = 8 << 20

// tcpAutoMaxDelay caps the adaptive batch delay; tcpAutoStep is its
// additive increment. 200µs sits just above the swiftpaxos sweet spot
// (150µs) and well below any per-hop retry deadline.
const (
	tcpAutoMaxDelay = 200 * time.Microsecond
	tcpAutoStep     = 25 * time.Microsecond
	// tcpCoalesceWindow is the arrival gap under which two consecutive
	// batches would have fit into one: gaps shorter than this push the
	// adaptive delay up, longer idle gaps decay it.
	tcpCoalesceWindow = 100 * time.Microsecond
	tcpIdleWindow     = time.Millisecond
)

// BatchAuto selects adaptive send-side batching: the transport tunes its
// coalescing delay from observed message arrival gaps, between 0 and
// tcpAutoMaxDelay.
const BatchAuto time.Duration = -1

// TCPConfig configures one rank's attachment to a ring spanning OS
// processes over TCP.
type TCPConfig struct {
	// Rank is this process's ring position; Peers lists every rank's
	// address in rank order (len(Peers) is the ring size). Peers[Rank] is
	// the address this rank listens on, unless Listener is set.
	Rank  int
	Peers []string
	// Listener, when non-nil, is an already-bound listener to accept the
	// predecessor's connection on (its address supersedes Peers[Rank]).
	// The transport takes ownership and closes it.
	Listener net.Listener
	// BatchDelay is the send-side coalescing delay: 0 sends immediately,
	// a positive value sleeps that long after the first queued message so
	// ring hops accumulate into one write, and BatchAuto (-1) tunes the
	// delay adaptively from arrival gaps. Framing-only: results are
	// bitwise-identical at every setting.
	BatchDelay time.Duration
	// DialTimeout bounds connection setup — dialing the successor and
	// accepting the predecessor (default 10s). Workers of a multi-process
	// run start at different times; dialing retries until the deadline.
	DialTimeout time.Duration
	// Depth is the send/receive queue depth in messages (default 16).
	Depth int
}

func (c *TCPConfig) withDefaults() TCPConfig {
	out := *c
	if out.DialTimeout <= 0 {
		out.DialTimeout = 10 * time.Second
	}
	if out.Depth < 1 {
		out.Depth = 16
	}
	return out
}

// TCPStats counts one transport's wire activity. Batches is the number of
// flushes (≈ send syscalls); Messages the ring hops carried, so
// Messages/Batches is the achieved coalescing factor.
type TCPStats struct {
	BytesSent, BytesReceived   int64
	MessagesSent, MessagesRecv int64
	Batches                    int64
}

// MsgsPerBatch returns the mean number of ring hops coalesced per network
// write (1 = no batching benefit).
func (s TCPStats) MsgsPerBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.MessagesSent) / float64(s.Batches)
}

// TCPTransport connects one local rank into a ring of OS processes over
// real sockets: an outgoing connection to the successor and an incoming
// one from the predecessor. Endpoint returns non-nil only for the local
// rank. Hop deadlines (RetryPolicy) bound waits on the transport's queues,
// so a stalled peer surfaces as ErrHopTimeout exactly like a stalled
// channel neighbor, while a broken socket fails pending and future hops
// immediately with the underlying error — ReduceWith maps both onto
// *RingFault blame.
type TCPTransport struct {
	rank, n int
	cfg     TCPConfig

	ln       net.Listener
	sendConn net.Conn // to successor
	recvConn net.Conn // from predecessor

	sendQ chan []float64
	recvQ chan []float64
	free  chan []float64 // recycled message buffers: writer → reader

	done     chan struct{}
	quit     chan struct{} // graceful close: writer drains sendQ, flushes, exits
	wDone    chan struct{} // writeLoop finished (drain complete or failed)
	started  bool          // reader/writer loops are running
	closeErr sync.Once
	err      atomic.Value // error: first fatal transport failure
	wg       sync.WaitGroup
	closed   sync.Once

	// Guarded-hop deadline timers, reused across hops (see chanEndpoint);
	// owned by the local rank's goroutine.
	sendTimer *time.Timer
	recvTimer *time.Timer

	// Peer links, built lazily on first Peer() call (lower rank dials,
	// higher rank accepts on the ring listener). A broken peer link fails
	// only its own hops, never the ring.
	peersMu sync.Mutex
	peers   map[int]*tcpPeer

	bytesSent, bytesRecv int64
	msgsSent, msgsRecv   int64
	batches              int64
}

// NewTCPTransport sets this rank's ring connections up and starts its
// reader and writer. It blocks until both neighbor links are established
// or the dial timeout lapses. Every rank of the ring must run
// NewTCPTransport with the same Peers list.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	n := len(cfg.Peers)
	if n < 1 {
		return nil, errRingSize(n)
	}
	if cfg.Rank < 0 || cfg.Rank >= n {
		return nil, fmt.Errorf("allreduce: tcp rank %d of %d", cfg.Rank, n)
	}
	cfg = cfg.withDefaults()
	t := &TCPTransport{
		rank:  cfg.Rank,
		n:     n,
		cfg:   cfg,
		sendQ: make(chan []float64, cfg.Depth),
		recvQ: make(chan []float64, cfg.Depth),
		free:  make(chan []float64, 2*cfg.Depth),
		done:  make(chan struct{}),
		quit:  make(chan struct{}),
		wDone: make(chan struct{}),
	}
	if n == 1 {
		t.ln = cfg.Listener // still owned: Close must release it
		return t, nil       // a single-rank ring exchanges nothing
	}
	if err := t.connect(); err != nil {
		t.Close()
		return nil, err
	}
	t.started = true
	t.wg.Add(3)
	go t.writeLoop()
	go t.readLoop()
	go t.acceptLoop()
	return t, nil
}

// connect establishes the two neighbor links: listen for the predecessor,
// dial the successor (retrying while it boots), and exchange hellos.
func (t *TCPTransport) connect() error {
	deadline := time.Now().Add(t.cfg.DialTimeout)
	ln := t.cfg.Listener
	if ln == nil {
		var err error
		if ln, err = net.Listen("tcp", t.cfg.Peers[t.rank]); err != nil {
			return fmt.Errorf("allreduce: rank %d listen %s: %w", t.rank, t.cfg.Peers[t.rank], err)
		}
	}
	t.ln = ln

	succ := (t.rank + 1) % t.n
	pred := (t.rank - 1 + t.n) % t.n

	// Dial the successor in the background while accepting the
	// predecessor; with both sides of every process doing this, ring
	// bring-up needs no global ordering.
	type dialResult struct {
		conn net.Conn
		err  error
	}
	dialCh := make(chan dialResult, 1)
	go func() {
		var lastErr error
		for time.Now().Before(deadline) {
			conn, err := net.DialTimeout("tcp", t.cfg.Peers[succ], time.Until(deadline))
			if err == nil {
				if err = writeHello(conn, t.rank, t.n); err == nil {
					dialCh <- dialResult{conn: conn}
					return
				}
				conn.Close()
			}
			lastErr = err
			time.Sleep(20 * time.Millisecond)
		}
		dialCh <- dialResult{err: fmt.Errorf("allreduce: rank %d dial successor %d (%s): %w",
			t.rank, succ, t.cfg.Peers[succ], lastErr)}
	}()

	var acceptErr error
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		_ = d.SetDeadline(deadline)
	}
	for t.recvConn == nil {
		conn, err := ln.Accept()
		if err != nil {
			acceptErr = fmt.Errorf("allreduce: rank %d accept predecessor %d: %w", t.rank, pred, err)
			break
		}
		magic, from, workers, err := readHello(conn)
		switch {
		case err == nil && magic == tcpMagic && workers == t.n && from == pred:
			t.recvConn = conn
		case err == nil && magic == tcpPeerMagic && workers == t.n && from >= 0 && from < t.n && from != t.rank:
			// An eager peer dialed before our ring bring-up finished.
			t.peerSlot(from).attach(conn)
		default:
			// A stray or malformed connection (port scan, stale dial from a
			// previous run): drop it and keep accepting.
			conn.Close()
		}
	}
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		_ = d.SetDeadline(time.Time{}) // acceptLoop serves peer dials with no deadline
	}

	res := <-dialCh
	if res.err == nil {
		t.sendConn = res.conn
	}
	if acceptErr != nil {
		return acceptErr
	}
	return res.err
}

// acceptLoop keeps serving the ring listener after bring-up: the only
// legitimate late arrivals are peer-link dials from lower ranks. It exits
// when Close tears the listener down.
func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		magic, from, workers, err := readHello(conn)
		if err != nil || magic != tcpPeerMagic || workers != t.n || from < 0 || from >= t.n || from == t.rank {
			conn.Close()
			continue
		}
		t.peerSlot(from).attach(conn)
	}
}

func writeHello(conn net.Conn, rank, n int) error {
	return writeHelloMagic(conn, tcpMagic, rank, n)
}

func writeHelloMagic(conn net.Conn, magic string, rank, n int) error {
	var buf [12]byte
	copy(buf[:4], magic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(rank))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(n))
	_, err := conn.Write(buf[:])
	return err
}

func readHello(conn net.Conn) (magic string, rank, n int, err error) {
	var buf [12]byte
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	if _, err = io.ReadFull(conn, buf[:]); err != nil {
		return "", 0, 0, err
	}
	magic = string(buf[:4])
	if magic != tcpMagic && magic != tcpPeerMagic {
		return "", 0, 0, fmt.Errorf("allreduce: bad hello magic %q", buf[:4])
	}
	return magic, int(binary.LittleEndian.Uint32(buf[4:8])), int(binary.LittleEndian.Uint32(buf[8:12])), nil
}

// Workers returns the ring size.
func (t *TCPTransport) Workers() int { return t.n }

// Endpoint returns the local rank's endpoint and nil for every other rank:
// remote ranks live in other processes.
func (t *TCPTransport) Endpoint(rank int) Endpoint {
	if rank != t.rank {
		return nil
	}
	return (*tcpEndpoint)(t)
}

// Rank returns the local rank.
func (t *TCPTransport) Rank() int { return t.rank }

// Stats snapshots the transport's wire counters.
func (t *TCPTransport) Stats() TCPStats {
	return TCPStats{
		BytesSent:     atomic.LoadInt64(&t.bytesSent),
		BytesReceived: atomic.LoadInt64(&t.bytesRecv),
		MessagesSent:  atomic.LoadInt64(&t.msgsSent),
		MessagesRecv:  atomic.LoadInt64(&t.msgsRecv),
		Batches:       atomic.LoadInt64(&t.batches),
	}
}

// Close tears the connections down. Messages already handed to Send are
// flushed first (briefly bounded), so a rank that finishes its run and
// closes does not strand its successor's final hops; only then do
// in-flight and future hops fail promptly with ErrTransportClosed (or the
// earlier fatal error).
func (t *TCPTransport) Close() error {
	t.closed.Do(func() {
		if t.started {
			close(t.quit)
			select {
			case <-t.wDone:
			case <-time.After(2 * time.Second):
			}
		}
		t.peersMu.Lock()
		peers := make([]*tcpPeer, 0, len(t.peers))
		for _, p := range t.peers {
			peers = append(peers, p)
		}
		t.peersMu.Unlock()
		for _, p := range peers {
			p.drainClose()
		}
		t.fail(ErrTransportClosed)
		if t.ln != nil {
			t.ln.Close()
		}
		if t.sendConn != nil {
			t.sendConn.Close()
		}
		if t.recvConn != nil {
			t.recvConn.Close()
		}
		for _, p := range peers {
			p.fail(ErrTransportClosed)
			p.mu.Lock()
			if p.conn != nil {
				p.conn.Close()
			}
			p.mu.Unlock()
		}
		t.wg.Wait()
	})
	return nil
}

// ErrTransportClosed reports a hop attempted on a closed transport.
var ErrTransportClosed = errors.New("allreduce: transport closed")

// fail records the first fatal error and releases every blocked hop.
func (t *TCPTransport) fail(err error) {
	t.closeErr.Do(func() {
		t.err.Store(err)
		close(t.done)
	})
}

func (t *TCPTransport) fatal() error {
	if err, ok := t.err.Load().(error); ok {
		return err
	}
	return ErrTransportClosed
}

// lingerControl tunes BatchAuto's send-side coalescing delay from observed
// message arrival gaps. The old ratchet (gap < window ⇒ delay += step, one
// halving per idle gap) had two failure modes this replaces:
//
//   - Over-linger under contention: on a busy host the queue drains in
//     bursts whose gaps stay under the coalesce window, so the delay
//     ratcheted to its 200µs max and every batch paid it — making adaptive
//     batching ~2× slower than plain tcp. Now the linger is additionally
//     capped at twice the smoothed arrival gap: sleeping longer than the
//     cadence at which messages actually arrive cannot coalesce more of
//     them, it only adds latency.
//   - Stale linger after a burst: one halving per idle arrival decays
//     200µs → 0 only after ~8 further batches, so the first hops of the
//     next training step paid the previous step's delay. An idle gap now
//     resets the linger (and the learned cadence) to zero outright.
type lingerControl struct {
	delay   time.Duration // current linger before a flush
	ewmaGap time.Duration // smoothed gap between batch-opening arrivals
	last    time.Time     // when the previous batch opened
}

// next returns the linger to apply for the batch opening at now; pending is
// the number of messages already queued behind it.
func (lc *lingerControl) next(now time.Time, pending int) time.Duration {
	var gap time.Duration
	if lc.last.IsZero() {
		gap = tcpIdleWindow + 1 // first batch ever: treat as idle
	} else {
		gap = now.Sub(lc.last)
	}
	lc.last = now
	switch {
	case gap > tcpIdleWindow:
		// Idle connection: back to zero linger so the first hops of a fresh
		// burst never pay a stale delay, and forget the stale cadence.
		lc.delay = 0
		lc.ewmaGap = 0
	case gap < tcpCoalesceWindow:
		// Back-to-back batches: grow the linger, bounded by both the
		// absolute cap and twice the observed arrival cadence.
		if lc.ewmaGap == 0 {
			lc.ewmaGap = gap
		} else {
			lc.ewmaGap = (3*lc.ewmaGap + gap) / 4
		}
		lc.delay += tcpAutoStep
		if lim := 2 * lc.ewmaGap; lc.delay > lim {
			lc.delay = lim
		}
		if lc.delay > tcpAutoMaxDelay {
			lc.delay = tcpAutoMaxDelay
		}
	default:
		lc.delay /= 2
	}
	if pending > 0 {
		// A batch is already formed in the queue — lingering buys nothing.
		return 0
	}
	return lc.delay
}

// writeLoop drains the send queue onto the socket, coalescing bursts of
// ring hops into single buffered writes — the swiftpaxos batching recipe:
// take one message, optionally linger BatchDelay, then drain everything
// pending and flush once. With BatchAuto the linger follows lingerControl:
// bounded by the observed arrival cadence, reset to zero after idle gaps,
// and skipped entirely when messages are already queued.
func (t *TCPTransport) writeLoop() {
	defer t.wg.Done()
	defer close(t.wDone)
	w := bufio.NewWriterSize(t.sendConn, 256<<10)
	var frame []byte // per-writer scratch: grows to the largest frame once
	delay := t.cfg.BatchDelay
	adaptive := delay < 0
	var lc lingerControl
	for {
		// Note no done case: done may fire because the *read* side saw a
		// finished peer close (EOF) while the successor still needs our
		// queued and future sends, so the writer keeps serving sendQ until
		// graceful close (quit) or its own write error below.
		var msg []float64
		select {
		case msg = <-t.sendQ:
		case <-t.quit:
			t.drainSends(w, &frame)
			return
		}
		if adaptive {
			delay = lc.next(time.Now(), len(t.sendQ))
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		batch := int64(0)
		bytes := int64(0)
		for {
			n, err := writeFrame(w, msg, &frame)
			t.recycle(msg)
			if err != nil {
				t.fail(fmt.Errorf("allreduce: rank %d send to %d: %w", t.rank, (t.rank+1)%t.n, err))
				return
			}
			batch++
			bytes += n
			select {
			case msg = <-t.sendQ:
				continue
			default:
			}
			break
		}
		if err := w.Flush(); err != nil {
			t.fail(fmt.Errorf("allreduce: rank %d flush to %d: %w", t.rank, (t.rank+1)%t.n, err))
			return
		}
		atomic.AddInt64(&t.batches, 1)
		atomic.AddInt64(&t.msgsSent, batch)
		atomic.AddInt64(&t.bytesSent, bytes)
	}
}

// drainSends writes and flushes every message still queued at graceful
// close, so the successor's pending hops complete before the socket drops.
func (t *TCPTransport) drainSends(w *bufio.Writer, frame *[]byte) {
	batch := int64(0)
	bytes := int64(0)
	for {
		select {
		case msg := <-t.sendQ:
			n, err := writeFrame(w, msg, frame)
			t.recycle(msg)
			if err != nil {
				return
			}
			batch++
			bytes += n
		default:
			if batch > 0 {
				if err := w.Flush(); err != nil {
					return
				}
				atomic.AddInt64(&t.batches, 1)
				atomic.AddInt64(&t.msgsSent, batch)
				atomic.AddInt64(&t.bytesSent, bytes)
			} else {
				w.Flush()
			}
			return
		}
	}
}

// writeFrame encodes msg into *frame — per-writer scratch grown once to the
// largest frame seen, then reused forever — and hands it to the buffered
// writer in a single Write. One allocation amortized over a connection's
// lifetime, zero steady-state: the framing analogue of the circulating
// message buffers.
func writeFrame(w *bufio.Writer, msg []float64, frame *[]byte) (int64, error) {
	need := 4 + 8*len(msg)
	buf := *frame
	if cap(buf) < need {
		buf = make([]byte, need)
		*frame = buf
	}
	buf = buf[:need]
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(msg)))
	for i, v := range msg {
		binary.LittleEndian.PutUint64(buf[4+8*i:], math.Float64bits(v))
	}
	if _, err := w.Write(buf); err != nil {
		return 0, err
	}
	return int64(need), nil
}

// readFrame decodes one length-prefixed message off the stream. The payload
// lands in *rbuf (per-reader scratch, grown once) before being unpacked
// into a recycled []float64 from take — steady-state reads allocate
// nothing.
func (t *TCPTransport) readFrame(r *bufio.Reader, rbuf *[]byte) ([]float64, error) {
	// The length prefix lands in the scratch buffer too: a stack [4]byte
	// would escape through the io.Reader interface and cost one heap
	// allocation per frame.
	buf := *rbuf
	if cap(buf) < 4 {
		buf = make([]byte, 64)
		*rbuf = buf
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, err
	}
	count := int(binary.LittleEndian.Uint32(buf[:4]))
	if count > tcpMaxMsgLen {
		return nil, fmt.Errorf("frame of %d elements", count)
	}
	need := 8 * count
	if cap(buf) < need {
		buf = make([]byte, need)
		*rbuf = buf
	}
	buf = buf[:need]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	msg := t.take(count)
	for i := range msg {
		msg[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return msg, nil
}

// readLoop decodes messages off the predecessor's stream into the receive
// queue, reusing buffers the writer retired.
func (t *TCPTransport) readLoop() {
	defer t.wg.Done()
	r := bufio.NewReaderSize(t.recvConn, 256<<10)
	var rbuf []byte
	for {
		msg, err := t.readFrame(r, &rbuf)
		if err != nil {
			t.fail(fmt.Errorf("allreduce: rank %d recv from %d: %w", t.rank, (t.rank-1+t.n)%t.n, err))
			return
		}
		atomic.AddInt64(&t.msgsRecv, 1)
		atomic.AddInt64(&t.bytesRecv, int64(4+8*len(msg)))
		select {
		case t.recvQ <- msg:
		case <-t.done:
			return
		}
	}
}

// take returns a message buffer of the given element count, preferring a
// recycled one.
func (t *TCPTransport) take(count int) []float64 {
	select {
	case buf := <-t.free:
		if cap(buf) >= count {
			return buf[:count]
		}
	default:
	}
	return make([]float64, count)
}

// recycle parks a retired buffer for the reader (best-effort: dropped when
// the pool is full).
func (t *TCPTransport) recycle(buf []float64) {
	select {
	case t.free <- buf:
	default:
	}
}

// tcpEndpoint adapts the transport to the local rank's Endpoint. Deadline
// semantics live here, on the queues: a peer that stalls starves recvQ (or
// backs sendQ up) and the policy timer fires ErrHopTimeout; a peer whose
// socket breaks trips done and the hop fails immediately with the socket
// error. That is the whole failure-semantics mapping — RingFault blame on
// top is transport-independent.
type tcpEndpoint TCPTransport

func (e *tcpEndpoint) t() *TCPTransport { return (*TCPTransport)(e) }

func (e *tcpEndpoint) Send(msg []float64) error {
	t := e.t()
	select {
	case t.sendQ <- msg:
		return nil
	case <-t.done:
		// done may stem from a read-side failure while the send socket is
		// healthy and the writer still running — prefer handing the
		// message over (the successor may need it) and fail only when the
		// queue is genuinely stuck.
		select {
		case t.sendQ <- msg:
			return nil
		default:
			return t.fatal()
		}
	}
}

func (e *tcpEndpoint) Recv() ([]float64, error) {
	t := e.t()
	select {
	case msg := <-t.recvQ:
		return msg, nil
	case <-t.done:
		// done often fires from EOF when a finished peer closes; the
		// reader enqueues every delivered message before it can fail, so
		// a final queue check cannot miss data that arrived pre-EOF —
		// without it this select could randomly prefer done over a
		// non-empty queue and strand the run's last hops.
		select {
		case msg := <-t.recvQ:
			return msg, nil
		default:
			return nil, t.fatal()
		}
	}
}

func (e *tcpEndpoint) SendTimed(msg []float64, p RetryPolicy) error {
	t := e.t()
	d := p.HopTimeout
	timer := armTimer(&t.sendTimer, d)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case t.sendQ <- msg:
			return nil
		case <-t.done:
			select { // see Send: the writer may still be serving the queue
			case t.sendQ <- msg:
				return nil
			default:
				return t.fatal()
			}
		case <-timer.C:
			if attempt >= p.Retries {
				return ErrHopTimeout
			}
			d = nextDeadline(d, p)
			timer.Reset(d)
		}
	}
}

func (e *tcpEndpoint) RecvTimed(p RetryPolicy) ([]float64, error) {
	t := e.t()
	d := p.HopTimeout
	timer := armTimer(&t.recvTimer, d)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case msg := <-t.recvQ:
			return msg, nil
		case <-t.done:
			select { // see Recv: drain data delivered before the failure
			case msg := <-t.recvQ:
				return msg, nil
			default:
				return nil, t.fatal()
			}
		case <-timer.C:
			if attempt >= p.Retries {
				return nil, ErrHopTimeout
			}
			d = nextDeadline(d, p)
			timer.Reset(d)
		}
	}
}

// Peer returns the local rank's endpoint on a dedicated socket to peer,
// establishing it on first use: the lower rank dials the higher rank's
// ring listener with a tcpPeerMagic hello, the higher rank's accept loop
// attaches the connection. Blocks until the link is up or the dial timeout
// lapses. Peer links carry halving-doubling's non-neighbor exchanges; a
// broken one fails its own hops only, never the ring connections.
func (t *TCPTransport) Peer(rank, peer int) (Endpoint, error) {
	if rank != t.rank {
		return nil, fmt.Errorf("allreduce: rank %d is not local to this transport (local rank %d)", rank, t.rank)
	}
	if peer < 0 || peer >= t.n || peer == rank {
		return nil, fmt.Errorf("allreduce: no peer link %d→%d in a %d-rank transport", rank, peer, t.n)
	}
	p := t.peerSlot(peer)
	if rank < peer {
		p.dialOnce.Do(func() { go p.dial() })
	}
	select {
	case <-p.ready:
		return p, nil
	case <-p.done:
		return nil, p.fatal()
	case <-t.done:
		return nil, t.fatal()
	case <-time.After(t.cfg.DialTimeout):
		return nil, fmt.Errorf("allreduce: rank %d: peer link to %d not up within %v", rank, peer, t.cfg.DialTimeout)
	}
}

// peerSlot returns (creating if needed) the slot tracking the link to peer.
func (t *TCPTransport) peerSlot(peer int) *tcpPeer {
	t.peersMu.Lock()
	defer t.peersMu.Unlock()
	p := t.peers[peer]
	if p == nil {
		p = &tcpPeer{
			t:     t,
			peer:  peer,
			sendQ: make(chan []float64, t.cfg.Depth),
			recvQ: make(chan []float64, t.cfg.Depth),
			ready: make(chan struct{}),
			done:  make(chan struct{}),
			wDone: make(chan struct{}),
		}
		if t.peers == nil {
			t.peers = make(map[int]*tcpPeer)
		}
		t.peers[peer] = p
	}
	return p
}

// tcpPeer is one direct link to a non-neighbor rank: a dedicated socket
// with its own reader/writer loops and queues, implementing Endpoint with
// the same deadline-on-queue semantics as the ring endpoint. Failure is
// per-link: done here fires for this peer's socket only.
type tcpPeer struct {
	t    *TCPTransport
	peer int

	mu   sync.Mutex
	conn net.Conn

	sendQ chan []float64
	recvQ chan []float64

	ready    chan struct{} // closed once the link is attached and serving
	done     chan struct{} // closed on this link's first fatal error
	wDone    chan struct{} // writer exited (drain complete or failed)
	dialOnce sync.Once
	attachOn sync.Once
	failOn   sync.Once
	err      atomic.Value

	sendTimer *time.Timer
	recvTimer *time.Timer
}

// dial connects to the peer's listener (retrying while it boots) and
// attaches the socket. Runs once, on the lower-ranked side.
func (p *tcpPeer) dial() {
	t := p.t
	deadline := time.Now().Add(t.cfg.DialTimeout)
	var lastErr error
	for time.Now().Before(deadline) {
		select {
		case <-t.done:
			p.fail(t.fatal())
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", t.cfg.Peers[p.peer], time.Until(deadline))
		if err == nil {
			if err = writeHelloMagic(conn, tcpPeerMagic, t.rank, t.n); err == nil {
				p.attach(conn)
				return
			}
			conn.Close()
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	p.fail(fmt.Errorf("allreduce: rank %d dial peer %d (%s): %w", t.rank, p.peer, t.cfg.Peers[p.peer], lastErr))
}

// attach wires a connected socket into the slot and starts its loops; a
// duplicate connection (possible only from protocol misuse) is dropped.
func (p *tcpPeer) attach(conn net.Conn) {
	used := false
	p.attachOn.Do(func() {
		select {
		case <-p.t.done:
			// Transport already closing: refuse, the conn is closed below.
			return
		default:
		}
		p.mu.Lock()
		p.conn = conn
		p.mu.Unlock()
		used = true
		p.t.wg.Add(2)
		go p.writeLoop()
		go p.readLoop()
		close(p.ready)
	})
	if !used {
		conn.Close()
	}
}

// fail records the link's first fatal error and releases its blocked hops.
func (p *tcpPeer) fail(err error) {
	p.failOn.Do(func() {
		p.err.Store(err)
		close(p.done)
	})
}

func (p *tcpPeer) fatal() error {
	if err, ok := p.err.Load().(error); ok {
		return err
	}
	return ErrTransportClosed
}

// drainClose gives the writer a bounded chance to flush queued messages
// (the post-step result a folded rank is owed, say) before Close drops the
// socket. Only meaningful once attached.
func (p *tcpPeer) drainClose() {
	select {
	case <-p.ready:
	default:
		return
	}
	p.fail(ErrTransportClosed) // writer sees done, drains, exits
	select {
	case <-p.wDone:
	case <-time.After(2 * time.Second):
	}
}

// writeLoop serves the peer link's send queue. Peer traffic is
// latency-bound halving-doubling rounds, so every message flushes
// immediately — no linger — though anything already queued coalesces into
// the same flush. Counts into the transport's wire totals.
func (p *tcpPeer) writeLoop() {
	t := p.t
	defer t.wg.Done()
	defer close(p.wDone)
	w := bufio.NewWriterSize(p.conn, 64<<10)
	var frame []byte
	for {
		var msg []float64
		select {
		case msg = <-p.sendQ:
		case <-p.done:
			// Graceful close: drain what's queued, flush, exit.
			for {
				select {
				case msg := <-p.sendQ:
					if _, err := writeFrame(w, msg, &frame); err != nil {
						return
					}
					t.recycle(msg)
				default:
					w.Flush()
					return
				}
			}
		}
		batch := int64(0)
		bytes := int64(0)
		for {
			n, err := writeFrame(w, msg, &frame)
			t.recycle(msg)
			if err != nil {
				p.fail(fmt.Errorf("allreduce: rank %d send to peer %d: %w", t.rank, p.peer, err))
				return
			}
			batch++
			bytes += n
			select {
			case msg = <-p.sendQ:
				continue
			default:
			}
			break
		}
		if err := w.Flush(); err != nil {
			p.fail(fmt.Errorf("allreduce: rank %d flush to peer %d: %w", t.rank, p.peer, err))
			return
		}
		atomic.AddInt64(&t.batches, 1)
		atomic.AddInt64(&t.msgsSent, batch)
		atomic.AddInt64(&t.bytesSent, bytes)
	}
}

// readLoop decodes the peer's stream into the link's receive queue.
func (p *tcpPeer) readLoop() {
	t := p.t
	defer t.wg.Done()
	r := bufio.NewReaderSize(p.conn, 64<<10)
	var rbuf []byte
	for {
		msg, err := t.readFrame(r, &rbuf)
		if err != nil {
			p.fail(fmt.Errorf("allreduce: rank %d recv from peer %d: %w", t.rank, p.peer, err))
			return
		}
		atomic.AddInt64(&t.msgsRecv, 1)
		atomic.AddInt64(&t.bytesRecv, int64(4+8*len(msg)))
		select {
		case p.recvQ <- msg:
		case <-p.done:
			return
		}
	}
}

func (p *tcpPeer) Send(msg []float64) error {
	select {
	case p.sendQ <- msg:
		return nil
	case <-p.done:
		select { // the writer drains the queue on close; prefer handing over
		case p.sendQ <- msg:
			return nil
		default:
			return p.fatal()
		}
	}
}

func (p *tcpPeer) Recv() ([]float64, error) {
	select {
	case msg := <-p.recvQ:
		return msg, nil
	case <-p.done:
		select { // drain data delivered before the failure (see tcpEndpoint)
		case msg := <-p.recvQ:
			return msg, nil
		default:
			return nil, p.fatal()
		}
	}
}

func (p *tcpPeer) SendTimed(msg []float64, pol RetryPolicy) error {
	d := pol.HopTimeout
	timer := armTimer(&p.sendTimer, d)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case p.sendQ <- msg:
			return nil
		case <-p.done:
			select {
			case p.sendQ <- msg:
				return nil
			default:
				return p.fatal()
			}
		case <-timer.C:
			if attempt >= pol.Retries {
				return ErrHopTimeout
			}
			d = nextDeadline(d, pol)
			timer.Reset(d)
		}
	}
}

func (p *tcpPeer) RecvTimed(pol RetryPolicy) ([]float64, error) {
	d := pol.HopTimeout
	timer := armTimer(&p.recvTimer, d)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case msg := <-p.recvQ:
			return msg, nil
		case <-p.done:
			select {
			case msg := <-p.recvQ:
				return msg, nil
			default:
				return nil, p.fatal()
			}
		case <-timer.C:
			if attempt >= pol.Retries {
				return nil, ErrHopTimeout
			}
			d = nextDeadline(d, pol)
			timer.Reset(d)
		}
	}
}

// ReserveRingAddrs binds n loopback listeners on kernel-assigned ports and
// returns them with their addresses, so a set of in-process ranks (tests,
// benchmarks) can build a TCP ring without a port race: pass addrs as
// every rank's Peers and listeners[i] as rank i's Listener.
func ReserveRingAddrs(n int) (addrs []string, listeners []net.Listener, err error) {
	addrs = make([]string, n)
	listeners = make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return addrs, listeners, nil
}
