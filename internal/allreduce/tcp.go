package allreduce

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCP wire protocol. Every connection starts with one fixed-size hello
// frame identifying the dialing rank; after that the stream is a sequence
// of length-prefixed messages:
//
//	hello:   magic "CKR1" | uint32 rank | uint32 workers      (12 bytes)
//	message: uint32 count | count × uint64 float64 bits        (4 + 8·count)
//
// All integers are little-endian; floats travel as their IEEE-754 bit
// patterns, so a value is reproduced exactly — transport can never perturb
// arithmetic. Batching coalesces several messages into one write/syscall;
// it is purely a framing concern: the receiver decodes messages one at a
// time off the buffered stream, so grouping on the wire changes syscall
// counts, never content or order.
const tcpMagic = "CKR1"

// tcpMaxMsgLen caps a single message's element count (64 MiB of payload),
// guarding the reader against corrupt or hostile length prefixes.
const tcpMaxMsgLen = 8 << 20

// tcpAutoMaxDelay caps the adaptive batch delay; tcpAutoStep is its
// additive increment. 200µs sits just above the swiftpaxos sweet spot
// (150µs) and well below any per-hop retry deadline.
const (
	tcpAutoMaxDelay = 200 * time.Microsecond
	tcpAutoStep     = 25 * time.Microsecond
	// tcpCoalesceWindow is the arrival gap under which two consecutive
	// batches would have fit into one: gaps shorter than this push the
	// adaptive delay up, longer idle gaps decay it.
	tcpCoalesceWindow = 100 * time.Microsecond
	tcpIdleWindow     = time.Millisecond
)

// BatchAuto selects adaptive send-side batching: the transport tunes its
// coalescing delay from observed message arrival gaps, between 0 and
// tcpAutoMaxDelay.
const BatchAuto time.Duration = -1

// TCPConfig configures one rank's attachment to a ring spanning OS
// processes over TCP.
type TCPConfig struct {
	// Rank is this process's ring position; Peers lists every rank's
	// address in rank order (len(Peers) is the ring size). Peers[Rank] is
	// the address this rank listens on, unless Listener is set.
	Rank  int
	Peers []string
	// Listener, when non-nil, is an already-bound listener to accept the
	// predecessor's connection on (its address supersedes Peers[Rank]).
	// The transport takes ownership and closes it.
	Listener net.Listener
	// BatchDelay is the send-side coalescing delay: 0 sends immediately,
	// a positive value sleeps that long after the first queued message so
	// ring hops accumulate into one write, and BatchAuto (-1) tunes the
	// delay adaptively from arrival gaps. Framing-only: results are
	// bitwise-identical at every setting.
	BatchDelay time.Duration
	// DialTimeout bounds connection setup — dialing the successor and
	// accepting the predecessor (default 10s). Workers of a multi-process
	// run start at different times; dialing retries until the deadline.
	DialTimeout time.Duration
	// Depth is the send/receive queue depth in messages (default 16).
	Depth int
}

func (c *TCPConfig) withDefaults() TCPConfig {
	out := *c
	if out.DialTimeout <= 0 {
		out.DialTimeout = 10 * time.Second
	}
	if out.Depth < 1 {
		out.Depth = 16
	}
	return out
}

// TCPStats counts one transport's wire activity. Batches is the number of
// flushes (≈ send syscalls); Messages the ring hops carried, so
// Messages/Batches is the achieved coalescing factor.
type TCPStats struct {
	BytesSent, BytesReceived   int64
	MessagesSent, MessagesRecv int64
	Batches                    int64
}

// MsgsPerBatch returns the mean number of ring hops coalesced per network
// write (1 = no batching benefit).
func (s TCPStats) MsgsPerBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.MessagesSent) / float64(s.Batches)
}

// TCPTransport connects one local rank into a ring of OS processes over
// real sockets: an outgoing connection to the successor and an incoming
// one from the predecessor. Endpoint returns non-nil only for the local
// rank. Hop deadlines (RetryPolicy) bound waits on the transport's queues,
// so a stalled peer surfaces as ErrHopTimeout exactly like a stalled
// channel neighbor, while a broken socket fails pending and future hops
// immediately with the underlying error — ReduceWith maps both onto
// *RingFault blame.
type TCPTransport struct {
	rank, n int
	cfg     TCPConfig

	ln       net.Listener
	sendConn net.Conn // to successor
	recvConn net.Conn // from predecessor

	sendQ chan []float64
	recvQ chan []float64
	free  chan []float64 // recycled message buffers: writer → reader

	done     chan struct{}
	quit     chan struct{} // graceful close: writer drains sendQ, flushes, exits
	wDone    chan struct{} // writeLoop finished (drain complete or failed)
	started  bool          // reader/writer loops are running
	closeErr sync.Once
	err      atomic.Value // error: first fatal transport failure
	wg       sync.WaitGroup
	closed   sync.Once

	// Guarded-hop deadline timers, reused across hops (see chanEndpoint);
	// owned by the local rank's goroutine.
	sendTimer *time.Timer
	recvTimer *time.Timer

	bytesSent, bytesRecv int64
	msgsSent, msgsRecv   int64
	batches              int64
}

// NewTCPTransport sets this rank's ring connections up and starts its
// reader and writer. It blocks until both neighbor links are established
// or the dial timeout lapses. Every rank of the ring must run
// NewTCPTransport with the same Peers list.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	n := len(cfg.Peers)
	if n < 1 {
		return nil, errRingSize(n)
	}
	if cfg.Rank < 0 || cfg.Rank >= n {
		return nil, fmt.Errorf("allreduce: tcp rank %d of %d", cfg.Rank, n)
	}
	cfg = cfg.withDefaults()
	t := &TCPTransport{
		rank:  cfg.Rank,
		n:     n,
		cfg:   cfg,
		sendQ: make(chan []float64, cfg.Depth),
		recvQ: make(chan []float64, cfg.Depth),
		free:  make(chan []float64, 2*cfg.Depth),
		done:  make(chan struct{}),
		quit:  make(chan struct{}),
		wDone: make(chan struct{}),
	}
	if n == 1 {
		t.ln = cfg.Listener // still owned: Close must release it
		return t, nil       // a single-rank ring exchanges nothing
	}
	if err := t.connect(); err != nil {
		t.Close()
		return nil, err
	}
	t.started = true
	t.wg.Add(2)
	go t.writeLoop()
	go t.readLoop()
	return t, nil
}

// connect establishes the two neighbor links: listen for the predecessor,
// dial the successor (retrying while it boots), and exchange hellos.
func (t *TCPTransport) connect() error {
	deadline := time.Now().Add(t.cfg.DialTimeout)
	ln := t.cfg.Listener
	if ln == nil {
		var err error
		if ln, err = net.Listen("tcp", t.cfg.Peers[t.rank]); err != nil {
			return fmt.Errorf("allreduce: rank %d listen %s: %w", t.rank, t.cfg.Peers[t.rank], err)
		}
	}
	t.ln = ln

	succ := (t.rank + 1) % t.n
	pred := (t.rank - 1 + t.n) % t.n

	// Dial the successor in the background while accepting the
	// predecessor; with both sides of every process doing this, ring
	// bring-up needs no global ordering.
	type dialResult struct {
		conn net.Conn
		err  error
	}
	dialCh := make(chan dialResult, 1)
	go func() {
		var lastErr error
		for time.Now().Before(deadline) {
			conn, err := net.DialTimeout("tcp", t.cfg.Peers[succ], time.Until(deadline))
			if err == nil {
				if err = writeHello(conn, t.rank, t.n); err == nil {
					dialCh <- dialResult{conn: conn}
					return
				}
				conn.Close()
			}
			lastErr = err
			time.Sleep(20 * time.Millisecond)
		}
		dialCh <- dialResult{err: fmt.Errorf("allreduce: rank %d dial successor %d (%s): %w",
			t.rank, succ, t.cfg.Peers[succ], lastErr)}
	}()

	var acceptErr error
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		_ = d.SetDeadline(deadline)
	}
	for t.recvConn == nil {
		conn, err := ln.Accept()
		if err != nil {
			acceptErr = fmt.Errorf("allreduce: rank %d accept predecessor %d: %w", t.rank, pred, err)
			break
		}
		from, workers, err := readHello(conn)
		if err != nil || workers != t.n || from != pred {
			// A stray or malformed connection (port scan, stale dial from a
			// previous run): drop it and keep accepting.
			conn.Close()
			continue
		}
		t.recvConn = conn
	}

	res := <-dialCh
	if res.err == nil {
		t.sendConn = res.conn
	}
	if acceptErr != nil {
		return acceptErr
	}
	return res.err
}

func writeHello(conn net.Conn, rank, n int) error {
	var buf [12]byte
	copy(buf[:4], tcpMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(rank))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(n))
	_, err := conn.Write(buf[:])
	return err
}

func readHello(conn net.Conn) (rank, n int, err error) {
	var buf [12]byte
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	if _, err = io.ReadFull(conn, buf[:]); err != nil {
		return 0, 0, err
	}
	if string(buf[:4]) != tcpMagic {
		return 0, 0, fmt.Errorf("allreduce: bad hello magic %q", buf[:4])
	}
	return int(binary.LittleEndian.Uint32(buf[4:8])), int(binary.LittleEndian.Uint32(buf[8:12])), nil
}

// Workers returns the ring size.
func (t *TCPTransport) Workers() int { return t.n }

// Endpoint returns the local rank's endpoint and nil for every other rank:
// remote ranks live in other processes.
func (t *TCPTransport) Endpoint(rank int) Endpoint {
	if rank != t.rank {
		return nil
	}
	return (*tcpEndpoint)(t)
}

// Rank returns the local rank.
func (t *TCPTransport) Rank() int { return t.rank }

// Stats snapshots the transport's wire counters.
func (t *TCPTransport) Stats() TCPStats {
	return TCPStats{
		BytesSent:     atomic.LoadInt64(&t.bytesSent),
		BytesReceived: atomic.LoadInt64(&t.bytesRecv),
		MessagesSent:  atomic.LoadInt64(&t.msgsSent),
		MessagesRecv:  atomic.LoadInt64(&t.msgsRecv),
		Batches:       atomic.LoadInt64(&t.batches),
	}
}

// Close tears the connections down. Messages already handed to Send are
// flushed first (briefly bounded), so a rank that finishes its run and
// closes does not strand its successor's final hops; only then do
// in-flight and future hops fail promptly with ErrTransportClosed (or the
// earlier fatal error).
func (t *TCPTransport) Close() error {
	t.closed.Do(func() {
		if t.started {
			close(t.quit)
			select {
			case <-t.wDone:
			case <-time.After(2 * time.Second):
			}
		}
		t.fail(ErrTransportClosed)
		if t.ln != nil {
			t.ln.Close()
		}
		if t.sendConn != nil {
			t.sendConn.Close()
		}
		if t.recvConn != nil {
			t.recvConn.Close()
		}
		t.wg.Wait()
	})
	return nil
}

// ErrTransportClosed reports a hop attempted on a closed transport.
var ErrTransportClosed = errors.New("allreduce: transport closed")

// fail records the first fatal error and releases every blocked hop.
func (t *TCPTransport) fail(err error) {
	t.closeErr.Do(func() {
		t.err.Store(err)
		close(t.done)
	})
}

func (t *TCPTransport) fatal() error {
	if err, ok := t.err.Load().(error); ok {
		return err
	}
	return ErrTransportClosed
}

// lingerControl tunes BatchAuto's send-side coalescing delay from observed
// message arrival gaps. The old ratchet (gap < window ⇒ delay += step, one
// halving per idle gap) had two failure modes this replaces:
//
//   - Over-linger under contention: on a busy host the queue drains in
//     bursts whose gaps stay under the coalesce window, so the delay
//     ratcheted to its 200µs max and every batch paid it — making adaptive
//     batching ~2× slower than plain tcp. Now the linger is additionally
//     capped at twice the smoothed arrival gap: sleeping longer than the
//     cadence at which messages actually arrive cannot coalesce more of
//     them, it only adds latency.
//   - Stale linger after a burst: one halving per idle arrival decays
//     200µs → 0 only after ~8 further batches, so the first hops of the
//     next training step paid the previous step's delay. An idle gap now
//     resets the linger (and the learned cadence) to zero outright.
type lingerControl struct {
	delay   time.Duration // current linger before a flush
	ewmaGap time.Duration // smoothed gap between batch-opening arrivals
	last    time.Time     // when the previous batch opened
}

// next returns the linger to apply for the batch opening at now; pending is
// the number of messages already queued behind it.
func (lc *lingerControl) next(now time.Time, pending int) time.Duration {
	var gap time.Duration
	if lc.last.IsZero() {
		gap = tcpIdleWindow + 1 // first batch ever: treat as idle
	} else {
		gap = now.Sub(lc.last)
	}
	lc.last = now
	switch {
	case gap > tcpIdleWindow:
		// Idle connection: back to zero linger so the first hops of a fresh
		// burst never pay a stale delay, and forget the stale cadence.
		lc.delay = 0
		lc.ewmaGap = 0
	case gap < tcpCoalesceWindow:
		// Back-to-back batches: grow the linger, bounded by both the
		// absolute cap and twice the observed arrival cadence.
		if lc.ewmaGap == 0 {
			lc.ewmaGap = gap
		} else {
			lc.ewmaGap = (3*lc.ewmaGap + gap) / 4
		}
		lc.delay += tcpAutoStep
		if lim := 2 * lc.ewmaGap; lc.delay > lim {
			lc.delay = lim
		}
		if lc.delay > tcpAutoMaxDelay {
			lc.delay = tcpAutoMaxDelay
		}
	default:
		lc.delay /= 2
	}
	if pending > 0 {
		// A batch is already formed in the queue — lingering buys nothing.
		return 0
	}
	return lc.delay
}

// writeLoop drains the send queue onto the socket, coalescing bursts of
// ring hops into single buffered writes — the swiftpaxos batching recipe:
// take one message, optionally linger BatchDelay, then drain everything
// pending and flush once. With BatchAuto the linger follows lingerControl:
// bounded by the observed arrival cadence, reset to zero after idle gaps,
// and skipped entirely when messages are already queued.
func (t *TCPTransport) writeLoop() {
	defer t.wg.Done()
	defer close(t.wDone)
	w := bufio.NewWriterSize(t.sendConn, 256<<10)
	var scratch [4]byte
	delay := t.cfg.BatchDelay
	adaptive := delay < 0
	var lc lingerControl
	for {
		// Note no done case: done may fire because the *read* side saw a
		// finished peer close (EOF) while the successor still needs our
		// queued and future sends, so the writer keeps serving sendQ until
		// graceful close (quit) or its own write error below.
		var msg []float64
		select {
		case msg = <-t.sendQ:
		case <-t.quit:
			t.drainSends(w, scratch[:])
			return
		}
		if adaptive {
			delay = lc.next(time.Now(), len(t.sendQ))
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		batch := int64(0)
		bytes := int64(0)
		for {
			n, err := t.writeMsg(w, msg, scratch[:])
			t.recycle(msg)
			if err != nil {
				t.fail(fmt.Errorf("allreduce: rank %d send to %d: %w", t.rank, (t.rank+1)%t.n, err))
				return
			}
			batch++
			bytes += n
			select {
			case msg = <-t.sendQ:
				continue
			default:
			}
			break
		}
		if err := w.Flush(); err != nil {
			t.fail(fmt.Errorf("allreduce: rank %d flush to %d: %w", t.rank, (t.rank+1)%t.n, err))
			return
		}
		atomic.AddInt64(&t.batches, 1)
		atomic.AddInt64(&t.msgsSent, batch)
		atomic.AddInt64(&t.bytesSent, bytes)
	}
}

// drainSends writes and flushes every message still queued at graceful
// close, so the successor's pending hops complete before the socket drops.
func (t *TCPTransport) drainSends(w *bufio.Writer, scratch []byte) {
	batch := int64(0)
	bytes := int64(0)
	for {
		select {
		case msg := <-t.sendQ:
			n, err := t.writeMsg(w, msg, scratch)
			t.recycle(msg)
			if err != nil {
				return
			}
			batch++
			bytes += n
		default:
			if batch > 0 {
				if err := w.Flush(); err != nil {
					return
				}
				atomic.AddInt64(&t.batches, 1)
				atomic.AddInt64(&t.msgsSent, batch)
				atomic.AddInt64(&t.bytesSent, bytes)
			} else {
				w.Flush()
			}
			return
		}
	}
}

func (t *TCPTransport) writeMsg(w *bufio.Writer, msg []float64, scratch []byte) (int64, error) {
	binary.LittleEndian.PutUint32(scratch, uint32(len(msg)))
	if _, err := w.Write(scratch); err != nil {
		return 0, err
	}
	var word [8]byte
	for _, v := range msg {
		binary.LittleEndian.PutUint64(word[:], math.Float64bits(v))
		if _, err := w.Write(word[:]); err != nil {
			return 0, err
		}
	}
	return int64(4 + 8*len(msg)), nil
}

// readLoop decodes messages off the predecessor's stream into the receive
// queue, reusing buffers the writer retired.
func (t *TCPTransport) readLoop() {
	defer t.wg.Done()
	r := bufio.NewReaderSize(t.recvConn, 256<<10)
	var scratch [8]byte
	for {
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			t.fail(fmt.Errorf("allreduce: rank %d recv from %d: %w", t.rank, (t.rank-1+t.n)%t.n, err))
			return
		}
		count := int(binary.LittleEndian.Uint32(scratch[:4]))
		if count > tcpMaxMsgLen {
			t.fail(fmt.Errorf("allreduce: rank %d recv frame of %d elements", t.rank, count))
			return
		}
		msg := t.take(count)
		ok := true
		for i := range msg {
			if _, err := io.ReadFull(r, scratch[:]); err != nil {
				t.fail(fmt.Errorf("allreduce: rank %d recv from %d: %w", t.rank, (t.rank-1+t.n)%t.n, err))
				ok = false
				break
			}
			msg[i] = math.Float64frombits(binary.LittleEndian.Uint64(scratch[:]))
		}
		if !ok {
			return
		}
		atomic.AddInt64(&t.msgsRecv, 1)
		atomic.AddInt64(&t.bytesRecv, int64(4+8*count))
		select {
		case t.recvQ <- msg:
		case <-t.done:
			return
		}
	}
}

// take returns a message buffer of the given element count, preferring a
// recycled one.
func (t *TCPTransport) take(count int) []float64 {
	select {
	case buf := <-t.free:
		if cap(buf) >= count {
			return buf[:count]
		}
	default:
	}
	return make([]float64, count)
}

// recycle parks a retired buffer for the reader (best-effort: dropped when
// the pool is full).
func (t *TCPTransport) recycle(buf []float64) {
	select {
	case t.free <- buf:
	default:
	}
}

// tcpEndpoint adapts the transport to the local rank's Endpoint. Deadline
// semantics live here, on the queues: a peer that stalls starves recvQ (or
// backs sendQ up) and the policy timer fires ErrHopTimeout; a peer whose
// socket breaks trips done and the hop fails immediately with the socket
// error. That is the whole failure-semantics mapping — RingFault blame on
// top is transport-independent.
type tcpEndpoint TCPTransport

func (e *tcpEndpoint) t() *TCPTransport { return (*TCPTransport)(e) }

func (e *tcpEndpoint) Send(msg []float64) error {
	t := e.t()
	select {
	case t.sendQ <- msg:
		return nil
	case <-t.done:
		// done may stem from a read-side failure while the send socket is
		// healthy and the writer still running — prefer handing the
		// message over (the successor may need it) and fail only when the
		// queue is genuinely stuck.
		select {
		case t.sendQ <- msg:
			return nil
		default:
			return t.fatal()
		}
	}
}

func (e *tcpEndpoint) Recv() ([]float64, error) {
	t := e.t()
	select {
	case msg := <-t.recvQ:
		return msg, nil
	case <-t.done:
		// done often fires from EOF when a finished peer closes; the
		// reader enqueues every delivered message before it can fail, so
		// a final queue check cannot miss data that arrived pre-EOF —
		// without it this select could randomly prefer done over a
		// non-empty queue and strand the run's last hops.
		select {
		case msg := <-t.recvQ:
			return msg, nil
		default:
			return nil, t.fatal()
		}
	}
}

func (e *tcpEndpoint) SendTimed(msg []float64, p RetryPolicy) error {
	t := e.t()
	d := p.HopTimeout
	timer := armTimer(&t.sendTimer, d)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case t.sendQ <- msg:
			return nil
		case <-t.done:
			select { // see Send: the writer may still be serving the queue
			case t.sendQ <- msg:
				return nil
			default:
				return t.fatal()
			}
		case <-timer.C:
			if attempt >= p.Retries {
				return ErrHopTimeout
			}
			d = nextDeadline(d, p)
			timer.Reset(d)
		}
	}
}

func (e *tcpEndpoint) RecvTimed(p RetryPolicy) ([]float64, error) {
	t := e.t()
	d := p.HopTimeout
	timer := armTimer(&t.recvTimer, d)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case msg := <-t.recvQ:
			return msg, nil
		case <-t.done:
			select { // see Recv: drain data delivered before the failure
			case msg := <-t.recvQ:
				return msg, nil
			default:
				return nil, t.fatal()
			}
		case <-timer.C:
			if attempt >= p.Retries {
				return nil, ErrHopTimeout
			}
			d = nextDeadline(d, p)
			timer.Reset(d)
		}
	}
}

// ReserveRingAddrs binds n loopback listeners on kernel-assigned ports and
// returns them with their addresses, so a set of in-process ranks (tests,
// benchmarks) can build a TCP ring without a port race: pass addrs as
// every rank's Peers and listeners[i] as rank i's Listener.
func ReserveRingAddrs(n int) (addrs []string, listeners []net.Listener, err error) {
	addrs = make([]string, n)
	listeners = make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return addrs, listeners, nil
}
