package allreduce

import "time"

// Chunk-pipelined ring reduce-scatter / all-gather. The schedule is the
// plain ring's — same chunk bounds, same per-element accumulation order —
// but every hop's segment travels as k = pipelineChunks(n, dim) separate
// sub-chunk messages. With FIFO links and buffered transports that lets
// hop i+1's transfer overlap hop i's accumulation (the successor starts
// consuming sub-chunk 0 while sub-chunk 1 is still in flight) and keeps
// the per-message working set cache-resident, which is what kills the
// large-payload regression where ns/op rose with GOMAXPROCS: all ranks
// were streaming full dim/n-sized segments through each other's caches at
// once.
//
// Determinism: the additions are element-wise identical to the plain
// ring's — splitting a message changes framing, never which operands meet
// in which order — so AlgoPipeline is bitwise-identical to AlgoRing (and
// to ringReduceInline) at every (n, dim, partition). The sub-chunk count
// is a pure function of (n, dim); it affects only the message schedule.
func (r *Ring) reducePipeline(rank int, seg []float64, opts Options) error {
	n := r.n
	dim := len(seg)
	sc := &r.scratch[rank]
	ep := sc.ep
	k := pipelineChunks(n, dim)

	bounds := sc.bounds
	for c := 0; c <= n; c++ {
		bounds[c] = c * dim / n
	}
	chunkAt := func(c int) (int, int) {
		c = ((c % n) + n) % n
		return bounds[c], bounds[c+1]
	}

	spare := sc.spare
	sc.spare = nil
	stage := func(src []float64) []float64 {
		var msg []float64
		if cap(spare) >= len(src) {
			msg = spare[:len(src)]
			spare = nil
		} else {
			msg = make([]float64, len(src))
		}
		copy(msg, src)
		return msg
	}

	var p RetryPolicy
	if opts.Guard {
		p = opts.Policy.WithDefaults()
	}
	hop := 0
	firstSend := true
	send := func(msg []float64) error {
		if !opts.Guard {
			if err := ep.Send(msg); err != nil {
				return &RingFault{Rank: rank, Suspect: (rank + 1) % n, Op: "send", Hop: hop, Cause: err}
			}
			return nil
		}
		if firstSend {
			firstSend = false
			if opts.SendDelay > 0 {
				time.Sleep(opts.SendDelay)
			}
			for d := 0; d < opts.SendDrops; d++ {
				time.Sleep(p.HopTimeout)
			}
		}
		if err := ep.SendTimed(msg, p); err != nil {
			return &RingFault{Rank: rank, Suspect: (rank + 1) % n, Op: "send", Hop: hop, Cause: err}
		}
		return nil
	}
	recv := func() ([]float64, error) {
		var msg []float64
		var err error
		if opts.Guard {
			msg, err = ep.RecvTimed(p)
		} else {
			msg, err = ep.Recv()
		}
		if err != nil {
			return nil, &RingFault{Rank: rank, Suspect: (rank - 1 + n) % n, Op: "recv", Hop: hop, Cause: err}
		}
		return msg, nil
	}

	// sub returns sub-chunk t of the [lo,hi) chunk: the same fixed
	// subdivision on every rank, so sender and receiver agree framewise.
	sub := func(lo, hi, t int) (int, int) {
		w := hi - lo
		return lo + t*w/k, lo + (t+1)*w/k
	}

	// Reduce-scatter: identical dataflow to the ring path, one sub-chunk
	// message at a time. Sending before receiving within each sub-step
	// needs only one slot of link buffering, exactly like the plain ring.
	for s := 0; s < n-1; s++ {
		slo, shi := chunkAt(rank - s)
		dlo, dhi := chunkAt(rank - s - 1)
		for t := 0; t < k; t++ {
			tlo, thi := sub(slo, shi, t)
			if err := send(stage(seg[tlo:thi])); err != nil {
				sc.spare = spare
				return err
			}
			msg, err := recv()
			if err != nil {
				sc.spare = spare
				return err
			}
			ulo, uhi := sub(dlo, dhi, t)
			dst := seg[ulo:uhi]
			for j := range dst {
				dst[j] += msg[j]
			}
			spare = msg
			hop++
		}
	}
	// All-gather: circulate the completed chunks sub-chunk by sub-chunk.
	for s := 0; s < n-1; s++ {
		slo, shi := chunkAt(rank + 1 - s)
		dlo, dhi := chunkAt(rank - s)
		for t := 0; t < k; t++ {
			tlo, thi := sub(slo, shi, t)
			if err := send(stage(seg[tlo:thi])); err != nil {
				sc.spare = spare
				return err
			}
			msg, err := recv()
			if err != nil {
				sc.spare = spare
				return err
			}
			ulo, uhi := sub(dlo, dhi, t)
			copy(seg[ulo:uhi], msg)
			spare = msg
			hop++
		}
	}
	sc.spare = spare
	return nil
}

// pipelineReduceInline performs the pipelined ring's arithmetic
// sequentially: ringReduceInline blocked into the same sub-chunk windows
// the distributed schedule uses, so each window's n-1 accumulation passes
// run while it is cache-resident. The element-wise association is
// identical to ringReduceInline (and therefore to both ring schedules);
// only the loop nesting — the "schedule" — differs.
func pipelineReduceInline(vectors [][]float64) {
	n := len(vectors)
	dim := len(vectors[0])
	k := pipelineChunks(n, dim)
	for c := 0; c < n; c++ {
		lo, hi := c*dim/n, (c+1)*dim/n
		w := hi - lo
		for t := 0; t < k; t++ {
			tlo, thi := lo+t*w/k, lo+(t+1)*w/k
			acc := vectors[c][tlo:thi]
			for s := 1; s < n; s++ {
				src := vectors[(c+s)%n][tlo:thi]
				for j := range acc {
					acc[j] += src[j]
				}
			}
		}
	}
	for c := 0; c < n; c++ {
		lo, hi := c*dim/n, (c+1)*dim/n
		done := vectors[c][lo:hi]
		for i, v := range vectors {
			if i != c {
				copy(v[lo:hi], done)
			}
		}
	}
}
