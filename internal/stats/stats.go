// Package stats provides the small statistical toolkit behind Cannikin's
// online parameter learning: ordinary and weighted least-squares line fits
// (the per-node compute-time models are linear in local batch size),
// inverse-variance combination of per-node observations (Section 4.5 of the
// paper), and streaming variance/mean accumulators.
package stats

import (
	"errors"
	"math"
)

// ErrInsufficientData is returned when a fit or combination has too few or
// degenerate observations.
var ErrInsufficientData = errors.New("stats: insufficient or degenerate data")

// LineFit is a fitted line y = Slope*x + Intercept.
type LineFit struct {
	Slope     float64
	Intercept float64
	// ResidualVar is the unbiased estimate of the residual variance
	// (only meaningful with >= 3 points; zero otherwise).
	ResidualVar float64
	// N is the number of observations used.
	N int
}

// Eval returns the fitted value at x.
func (f LineFit) Eval(x float64) float64 { return f.Slope*x + f.Intercept }

// FitLine computes the ordinary least-squares line through (x, y) pairs.
// It requires at least two distinct x values.
func FitLine(xs, ys []float64) (LineFit, error) {
	ws := make([]float64, len(xs))
	for i := range ws {
		ws[i] = 1
	}
	return FitLineWeighted(xs, ys, ws)
}

// FitLineWeighted computes the weighted least-squares line through (x, y)
// pairs with non-negative weights. Points with zero weight are ignored.
func FitLineWeighted(xs, ys, weights []float64) (LineFit, error) {
	if len(xs) != len(ys) || len(xs) != len(weights) {
		return LineFit{}, errors.New("stats: FitLineWeighted length mismatch")
	}
	var sw, swx, swy, swxx, swxy float64
	n := 0
	for i := range xs {
		w := weights[i]
		if w < 0 {
			return LineFit{}, errors.New("stats: negative weight")
		}
		if w == 0 {
			continue
		}
		n++
		sw += w
		swx += w * xs[i]
		swy += w * ys[i]
		swxx += w * xs[i] * xs[i]
		swxy += w * xs[i] * ys[i]
	}
	if n < 2 || sw == 0 {
		return LineFit{}, ErrInsufficientData
	}
	denom := sw*swxx - swx*swx
	if math.Abs(denom) < 1e-12*math.Max(1, sw*swxx) {
		return LineFit{}, ErrInsufficientData
	}
	slope := (sw*swxy - swx*swy) / denom
	intercept := (swy - slope*swx) / sw

	fit := LineFit{Slope: slope, Intercept: intercept, N: n}
	if n >= 3 {
		var rss, wsum float64
		for i := range xs {
			if weights[i] == 0 {
				continue
			}
			r := ys[i] - fit.Eval(xs[i])
			rss += weights[i] * r * r
			wsum += weights[i]
		}
		// Normalize by effective dof; weights are treated as relative.
		fit.ResidualVar = rss / wsum * float64(n) / float64(n-2)
	}
	return fit, nil
}

// Observation is a measured value with a variance estimate, as produced by
// one node of the cluster.
type Observation struct {
	Value    float64
	Variance float64
}

// InverseVarianceMean combines independent observations of the same
// quantity by inverse-variance weighting, the minimum-variance unbiased
// linear combination. Observations with non-positive variance are treated
// as near-exact (far more precise than any observation that does report a
// variance). It returns the combined value and its variance.
func InverseVarianceMean(obs []Observation) (Observation, error) {
	if len(obs) == 0 {
		return Observation{}, ErrInsufficientData
	}
	minVar := math.Inf(1)
	for _, o := range obs {
		if o.Variance > 0 && o.Variance < minVar {
			minVar = o.Variance
		}
	}
	if math.IsInf(minVar, 1) {
		// No variance information at all: fall back to the plain mean.
		sum := 0.0
		for _, o := range obs {
			sum += o.Value
		}
		return Observation{Value: sum / float64(len(obs))}, nil
	}
	var num, den float64
	for _, o := range obs {
		v := o.Variance
		if v <= 0 {
			v = minVar * 1e-6
		}
		num += o.Value / v
		den += 1 / v
	}
	return Observation{Value: num / den, Variance: 1 / den}, nil
}

// Mean returns the arithmetic mean of xs. It panics on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Welford accumulates a streaming mean and variance.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (zero before any samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (zero with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// EMA is an exponential moving average with smoothing factor alpha in (0,1].
type EMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEMA returns an EMA with the given smoothing factor; larger alpha reacts
// faster. It panics unless 0 < alpha <= 1.
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EMA alpha must be in (0, 1]")
	}
	return &EMA{alpha: alpha}
}

// Add incorporates one sample and returns the updated average.
func (e *EMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (zero before any samples).
func (e *EMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample was observed.
func (e *EMA) Initialized() bool { return e.init }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RelErr returns |got-want| / max(|want|, eps), a scale-free error measure.
func RelErr(got, want float64) float64 {
	denom := math.Abs(want)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return math.Abs(got-want) / denom
}
