package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cannikin/internal/rng"
)

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if fit.ResidualVar > 1e-20 {
		t.Fatalf("exact fit has residual variance %v", fit.ResidualVar)
	}
}

func TestFitLineTwoPoints(t *testing.T) {
	fit, err := FitLine([]float64{0, 10}, []float64{5, 25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-5) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, err := FitLine([]float64{3, 3, 3}, []float64{1, 2, 3}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("identical xs: err = %v, want ErrInsufficientData", err)
	}
	if _, err := FitLine([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("single point: err = %v, want ErrInsufficientData", err)
	}
}

func TestFitLineRecoversNoisyLine(t *testing.T) {
	s := rng.New(5)
	const n = 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = s.Float64() * 100
		ys[i] = 3.5*xs[i] + 7 + s.Norm(0, 2)
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3.5) > 0.01 {
		t.Fatalf("slope = %v, want ~3.5", fit.Slope)
	}
	if math.Abs(fit.Intercept-7) > 0.5 {
		t.Fatalf("intercept = %v, want ~7", fit.Intercept)
	}
	if RelErr(fit.ResidualVar, 4) > 0.2 {
		t.Fatalf("residual var = %v, want ~4", fit.ResidualVar)
	}
}

func TestFitLineWeightedIgnoresZeroWeight(t *testing.T) {
	xs := []float64{1, 2, 3, 100}
	ys := []float64{3, 5, 7, -1000} // last point is an outlier
	ws := []float64{1, 1, 1, 0}
	fit, err := FitLineWeighted(xs, ys, ws)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept-1) > 1e-9 {
		t.Fatalf("weighted fit = %+v, want slope 2 intercept 1", fit)
	}
	if fit.N != 3 {
		t.Fatalf("N = %d, want 3", fit.N)
	}
}

func TestFitLineWeightedRejectsNegative(t *testing.T) {
	_, err := FitLineWeighted([]float64{1, 2}, []float64{1, 2}, []float64{1, -1})
	if err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestFitLineWeightedFavorsPreciseData(t *testing.T) {
	// Two clusters of points implying different lines; heavy weights should win.
	xs := []float64{0, 1, 0, 1}
	ys := []float64{0, 1, 10, 12}
	fit, err := FitLineWeighted(xs, ys, []float64{100, 100, 0.001, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-1) > 0.05 || math.Abs(fit.Intercept-0) > 0.05 {
		t.Fatalf("fit = %+v, want ~slope 1 intercept 0", fit)
	}
}

func TestInverseVarianceMean(t *testing.T) {
	obs := []Observation{
		{Value: 10, Variance: 1},
		{Value: 20, Variance: 4},
	}
	got, err := InverseVarianceMean(obs)
	if err != nil {
		t.Fatal(err)
	}
	// w1 = 1, w2 = 0.25 -> (10 + 5)/1.25 = 12
	if math.Abs(got.Value-12) > 1e-12 {
		t.Fatalf("value = %v, want 12", got.Value)
	}
	if math.Abs(got.Variance-0.8) > 1e-12 {
		t.Fatalf("variance = %v, want 0.8", got.Variance)
	}
}

func TestInverseVarianceMeanBeatsPlainMean(t *testing.T) {
	// Statistical property: IVW estimator has lower squared error than the
	// plain mean when variances are heterogeneous.
	s := rng.New(77)
	const trials = 3000
	truth := 5.0
	var ivwSE, meanSE float64
	for i := 0; i < trials; i++ {
		obs := []Observation{
			{Value: s.Norm(truth, 0.1), Variance: 0.01},
			{Value: s.Norm(truth, 2.0), Variance: 4.0},
			{Value: s.Norm(truth, 1.0), Variance: 1.0},
		}
		ivw, err := InverseVarianceMean(obs)
		if err != nil {
			t.Fatal(err)
		}
		plain := (obs[0].Value + obs[1].Value + obs[2].Value) / 3
		ivwSE += (ivw.Value - truth) * (ivw.Value - truth)
		meanSE += (plain - truth) * (plain - truth)
	}
	if ivwSE >= meanSE {
		t.Fatalf("IVW MSE %v >= plain-mean MSE %v", ivwSE/trials, meanSE/trials)
	}
}

func TestInverseVarianceMeanNoVariances(t *testing.T) {
	got, err := InverseVarianceMean([]Observation{{Value: 2}, {Value: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != 3 {
		t.Fatalf("fallback mean = %v, want 3", got.Value)
	}
}

func TestInverseVarianceMeanEmpty(t *testing.T) {
	if _, err := InverseVarianceMean(nil); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v, want ErrInsufficientData", err)
	}
}

func TestInverseVarianceMeanZeroVarianceTreatedAsPrecise(t *testing.T) {
	obs := []Observation{
		{Value: 1, Variance: 0}, // near-exact
		{Value: 100, Variance: 1e6},
	}
	got, err := InverseVarianceMean(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Value-1) > 1 {
		t.Fatalf("value = %v, want ~1 (precise observation dominates)", got.Value)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	// Unbiased sample variance of this classic set is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("var = %v, want %v", w.Var(), 32.0/7.0)
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Var() != 0 || w.Mean() != 0 {
		t.Fatal("empty Welford not zero")
	}
	w.Add(3)
	if w.Var() != 0 {
		t.Fatal("variance with one sample should be 0")
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 2 + s.Intn(100)
		var w Welford
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.Norm(0, 10)
			w.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		direct := ss / float64(n-1)
		return math.Abs(w.Var()-direct) < 1e-8 && math.Abs(w.Mean()-mean) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEMA(t *testing.T) {
	e := NewEMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EMA claims initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first value = %v, want 10", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("value = %v, want 15", e.Value())
	}
}

func TestEMAPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewEMA(%v) did not panic", alpha)
				}
			}()
			NewEMA(alpha)
		}()
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Fatal("Clamp wrong")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Fatalf("RelErr = %v", RelErr(11, 10))
	}
	if RelErr(1, 0) <= 0 {
		t.Fatal("RelErr with zero want should be positive")
	}
}
