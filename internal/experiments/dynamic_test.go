package experiments

import "testing"

// TestDynamicRecovery is the chaos-engine acceptance check: after a
// mid-run compute-share drop, Cannikin must return to within 10% of the
// freshly re-solved OptPerf batch time within a bounded number of epochs,
// while the unadapted baseline stays degraded.
func TestDynamicRecovery(t *testing.T) {
	_, stats, eventEpoch, err := DynamicRecovery(quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RecoveryStat{}
	for _, s := range stats {
		byName[s.System] = s
	}
	can, ok := byName["cannikin"]
	if !ok {
		t.Fatal("missing cannikin stats")
	}
	// The event visibly degrades the run before recovery.
	if can.Peak < can.PreEvent*1.2 {
		t.Fatalf("event had no effect: pre %v peak %v", can.PreEvent, can.Peak)
	}
	// Bounded recovery: degraded epoch, targeted re-profile, re-solve.
	if can.RecoveryEpoch < 0 || can.RecoveryEpoch > eventEpoch+4 {
		t.Fatalf("cannikin recovery epoch %d (event at %d)", can.RecoveryEpoch, eventEpoch)
	}
	if can.Final > 1.10*can.OptPerfRef {
		t.Fatalf("cannikin final %v above 1.10x fresh OptPerf %v", can.Final, can.OptPerfRef)
	}
	// DDP keeps its stale even split: the throttled node paces every batch.
	ddp, ok := byName["pytorch-ddp"]
	if !ok {
		t.Fatal("missing ddp stats")
	}
	if ddp.Final < 1.25*ddp.OptPerfRef {
		t.Fatalf("ddp should stay degraded: final %v vs fresh OptPerf %v", ddp.Final, ddp.OptPerfRef)
	}
	if ddp.RecoveryEpoch >= 0 {
		t.Fatalf("ddp unexpectedly recovered at epoch %d", ddp.RecoveryEpoch)
	}
}

func TestDynamicResourceAdaptation(t *testing.T) {
	fig, eventEpoch, err := Dynamic(quick)
	if err != nil {
		t.Fatal(err)
	}
	can := fig.Get("cannikin")
	ddp := fig.Get("pytorch-ddp")
	if can == nil || ddp == nil {
		t.Fatal("missing series")
	}
	preEvent := can.Y[eventEpoch-1]
	atEvent := can.Y[eventEpoch]
	// The event visibly slows the cluster.
	if atEvent < preEvent*1.2 {
		t.Fatalf("resource event had no effect: %v -> %v", preEvent, atEvent)
	}
	// Cannikin recovers: within a few epochs its batch time settles well
	// below the unadapted even-split (DDP) level, and stays there.
	recovered := can.Y[can.Len()-1]
	ddpFinal := ddp.Y[ddp.Len()-1]
	if recovered >= ddpFinal {
		t.Fatalf("cannikin %v did not beat unadapted ddp %v after the event", recovered, ddpFinal)
	}
	// The recovery happens within ~4 epochs of the event (drift detection
	// + bootstrap + replan), and the post-recovery time is stable.
	settled := can.Y[eventEpoch+4]
	if settled > recovered*1.1 {
		t.Fatalf("cannikin not settled 4 epochs after event: %v vs final %v", settled, recovered)
	}
	// DDP cannot adapt: with the throttled node now the slowest, its
	// post-event batch time is clearly worse than before the event and
	// never improves.
	if ddp.Y[eventEpoch+2] < ddp.Y[eventEpoch-1]*1.1 {
		t.Fatalf("ddp should suffer from the throttled straggler: %v -> %v",
			ddp.Y[eventEpoch-1], ddp.Y[eventEpoch+2])
	}
	if ddpFinal < ddp.Y[eventEpoch+2]*0.95 {
		t.Fatalf("ddp improved after the event: %v -> %v", ddp.Y[eventEpoch+2], ddpFinal)
	}
}
