package experiments

import "testing"

func TestDynamicResourceAdaptation(t *testing.T) {
	fig, eventEpoch, err := Dynamic(quick)
	if err != nil {
		t.Fatal(err)
	}
	can := fig.Get("cannikin")
	ddp := fig.Get("pytorch-ddp")
	if can == nil || ddp == nil {
		t.Fatal("missing series")
	}
	preEvent := can.Y[eventEpoch-1]
	atEvent := can.Y[eventEpoch]
	// The event visibly slows the cluster.
	if atEvent < preEvent*1.2 {
		t.Fatalf("resource event had no effect: %v -> %v", preEvent, atEvent)
	}
	// Cannikin recovers: within a few epochs its batch time settles well
	// below the unadapted even-split (DDP) level, and stays there.
	recovered := can.Y[can.Len()-1]
	ddpFinal := ddp.Y[ddp.Len()-1]
	if recovered >= ddpFinal {
		t.Fatalf("cannikin %v did not beat unadapted ddp %v after the event", recovered, ddpFinal)
	}
	// The recovery happens within ~4 epochs of the event (drift detection
	// + bootstrap + replan), and the post-recovery time is stable.
	settled := can.Y[eventEpoch+4]
	if settled > recovered*1.1 {
		t.Fatalf("cannikin not settled 4 epochs after event: %v vs final %v", settled, recovered)
	}
	// DDP cannot adapt: with the throttled node now the slowest, its
	// post-event batch time is clearly worse than before the event and
	// never improves.
	if ddp.Y[eventEpoch+2] < ddp.Y[eventEpoch-1]*1.1 {
		t.Fatalf("ddp should suffer from the throttled straggler: %v -> %v",
			ddp.Y[eventEpoch-1], ddp.Y[eventEpoch+2])
	}
	if ddpFinal < ddp.Y[eventEpoch+2]*0.95 {
		t.Fatalf("ddp improved after the event: %v -> %v", ddp.Y[eventEpoch+2], ddpFinal)
	}
}
