package experiments

import "testing"

func TestSchedulerHeterogeneousPolicyWins(t *testing.T) {
	tab, err := Scheduler(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	vals := map[string][2]float64{}
	for _, row := range tab.Rows {
		var jobs, makespan, wait float64
		if _, err := sscan(row[1], &jobs); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[2], &makespan); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[3], &wait); err != nil {
			t.Fatal(err)
		}
		if jobs != 4 {
			t.Fatalf("%s completed %v jobs, want 4", row[0], jobs)
		}
		vals[row[0]] = [2]float64{makespan, wait}
	}
	het := vals["heterogeneous (cannikin)"]
	hom := vals["homogeneous-only"]
	if het[0] >= hom[0] {
		t.Fatalf("heterogeneous makespan %v not below homogeneous %v", het[0], hom[0])
	}
	if het[1] >= hom[1] {
		t.Fatalf("heterogeneous total wait %v not below homogeneous %v", het[1], hom[1])
	}
}
