package experiments

import (
	"fmt"

	"cannikin/internal/trace"
	"cannikin/internal/trainer"
	"cannikin/internal/workload"
)

// Dynamic reproduces the introduction's motivating scenario that existing
// systems cannot handle: a sudden resource change mid-training (a tenant
// claims half of one GPU's compute). Cannikin's drift detection discards
// the stale performance model, re-learns, and re-balances within a few
// epochs; DDP never reacts.
//
// The figure shows each system's per-epoch average batch time, with the
// event at the marked epoch.
func Dynamic(opt Options) (*trace.Figure, int, error) {
	const (
		eventEpoch = 8
		epochs     = 24
		victim     = 0    // the fastest node (A5000) loses compute
		share      = 0.25 // to 25% of the device
	)
	w, err := workload.Get("imagenet")
	if err != nil {
		return nil, 0, err
	}
	fig := trace.NewFigure(
		fmt.Sprintf("Dynamic resources: node %d drops to %.0f%% compute at epoch %d (ImageNet, cluster A, fixed B=128)",
			victim, share*100, eventEpoch),
		"epoch", "batch time (s)")

	run := func(name string, sys trainer.System) error {
		c, err := newCluster("a", opt.seed(), "dynamic/"+name)
		if err != nil {
			return err
		}
		res, err := trainer.Run(trainer.Config{
			Cluster: c, Workload: w, System: sys,
			Seed: opt.seed(), MaxEpochs: epochs,
			Events: []trainer.ResourceEvent{{Epoch: eventEpoch, Node: victim, ComputeShare: share}},
		})
		if err != nil {
			return err
		}
		s := fig.AddSeries(name)
		for _, e := range res.Epochs {
			s.Add(float64(e.Epoch), e.AvgBatchTime)
		}
		return nil
	}
	can := trainer.NewCannikin()
	can.FixedBatch = 128
	if err := run("cannikin", can); err != nil {
		return nil, 0, err
	}
	lbb := trainer.NewLBBSP()
	lbb.FixedBatch = 128
	if err := run("lb-bsp", lbb); err != nil {
		return nil, 0, err
	}
	ddp := trainer.NewDDP()
	ddp.FixedBatch = 128
	if err := run("pytorch-ddp", ddp); err != nil {
		return nil, 0, err
	}
	return fig, eventEpoch, nil
}
