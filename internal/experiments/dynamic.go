package experiments

import (
	"fmt"

	"cannikin/internal/chaos"
	"cannikin/internal/optperf"
	"cannikin/internal/trace"
	"cannikin/internal/trainer"
	"cannikin/internal/workload"
)

// Dynamic reproduces the introduction's motivating scenario that existing
// systems cannot handle: a sudden resource change mid-training (a tenant
// claims half of one GPU's compute). Cannikin's drift detection discards
// the stale performance model, re-learns, and re-balances within a few
// epochs; DDP never reacts.
//
// The figure shows each system's per-epoch average batch time, with the
// event at the marked epoch.
func Dynamic(opt Options) (*trace.Figure, int, error) {
	const (
		eventEpoch = 8
		epochs     = 24
		victim     = 0    // the fastest node (A5000) loses compute
		share      = 0.25 // to 25% of the device
	)
	w, err := workload.Get("imagenet")
	if err != nil {
		return nil, 0, err
	}
	fig := trace.NewFigure(
		fmt.Sprintf("Dynamic resources: node %d drops to %.0f%% compute at epoch %d (ImageNet, cluster A, fixed B=128)",
			victim, share*100, eventEpoch),
		"epoch", "batch time (s)")

	run := func(name string, sys trainer.System) error {
		c, err := newCluster("a", opt.seed(), "dynamic/"+name)
		if err != nil {
			return err
		}
		res, err := trainer.Run(trainer.Config{
			Cluster: c, Workload: w, System: sys,
			Seed: opt.seed(), MaxEpochs: epochs,
			Events: []trainer.ResourceEvent{{Epoch: eventEpoch, Node: victim, ComputeShare: share}},
		})
		if err != nil {
			return err
		}
		s := fig.AddSeries(name)
		for _, e := range res.Epochs {
			s.Add(float64(e.Epoch), e.AvgBatchTime)
		}
		return nil
	}
	can := trainer.NewCannikin()
	can.FixedBatch = 128
	if err := run("cannikin", can); err != nil {
		return nil, 0, err
	}
	lbb := trainer.NewLBBSP()
	lbb.FixedBatch = 128
	if err := run("lb-bsp", lbb); err != nil {
		return nil, 0, err
	}
	ddp := trainer.NewDDP()
	ddp.FixedBatch = 128
	if err := run("pytorch-ddp", ddp); err != nil {
		return nil, 0, err
	}
	return fig, eventEpoch, nil
}

// RecoveryStat summarizes one system's response to a mid-run resource
// change, measured against the freshly re-solved OptPerf allocation on the
// perturbed cluster.
type RecoveryStat struct {
	System string
	// PreEvent, Peak, and Final are the average batch times (seconds)
	// before the event, at the worst post-event epoch, and at the last
	// epoch.
	PreEvent, Peak, Final float64
	// OptPerfRef is the measured batch time of the OptPerf allocation
	// re-solved from the perturbed cluster's ground truth — the best any
	// system could reach after the event.
	OptPerfRef float64
	// RecoveryEpoch is the first post-event epoch whose batch time is
	// within 10% of OptPerfRef (-1 if the system never recovers).
	RecoveryEpoch int
}

// DynamicRecovery quantifies the dynamic-heterogeneity response through the
// chaos engine: node 0 drops to 25% compute mid-run, and each system's
// batch time is tracked against the freshly re-solved OptPerf reference.
// Cannikin detects the drift, re-profiles the changed node, and re-solves;
// the non-adaptive baselines keep their stale allocations. It returns the
// summary table, the per-system stats, and the event epoch.
func DynamicRecovery(opt Options) (*trace.Table, []RecoveryStat, int, error) {
	const (
		eventEpoch = 8
		epochs     = 24
		victim     = 0
		share      = 0.25
		fixedBatch = 128
	)
	w, err := workload.Get("imagenet")
	if err != nil {
		return nil, nil, 0, err
	}
	schedule := chaos.Schedule{Events: []chaos.Event{
		{Epoch: eventEpoch, Node: victim, Kind: chaos.KindComputeShare, Value: share},
	}}

	run := func(name string, sys trainer.System) (RecoveryStat, error) {
		stat := RecoveryStat{System: name, RecoveryEpoch: -1}
		c, err := newCluster("a", opt.seed(), "recovery/"+name)
		if err != nil {
			return stat, err
		}
		// Fresh OptPerf reference: re-solve from the perturbed ground truth
		// and measure that allocation on a second, identically-built cluster
		// (the run consumes the first one's noise stream).
		ref, err := newCluster("a", opt.seed(), "recovery/"+name)
		if err != nil {
			return stat, err
		}
		if err := ref.SetComputeShare(victim, share); err != nil {
			return stat, err
		}
		model, err := ref.TrueModel(w.Profile)
		if err != nil {
			return stat, err
		}
		plan, err := optperf.Solve(model, fixedBatch)
		if err != nil {
			return stat, err
		}
		if stat.OptPerfRef, err = ref.MeasuredTime(w.Profile, plan.Batches, opt.measureSteps()); err != nil {
			return stat, err
		}

		res, err := trainer.Run(trainer.Config{
			Cluster: c, Workload: w, System: sys,
			Seed: opt.seed(), MaxEpochs: epochs,
			Chaos: schedule,
		})
		if err != nil {
			return stat, err
		}
		if len(res.Epochs) <= eventEpoch+2 {
			return stat, fmt.Errorf("experiments: %s run too short (%d epochs)", name, len(res.Epochs))
		}
		stat.PreEvent = res.Epochs[eventEpoch-1].AvgBatchTime
		stat.Final = res.Epochs[len(res.Epochs)-1].AvgBatchTime
		for _, e := range res.Epochs[eventEpoch:] {
			if e.AvgBatchTime > stat.Peak {
				stat.Peak = e.AvgBatchTime
			}
			if stat.RecoveryEpoch < 0 && e.AvgBatchTime <= 1.10*stat.OptPerfRef {
				stat.RecoveryEpoch = e.Epoch
			}
		}
		return stat, nil
	}

	can := trainer.NewCannikin()
	can.FixedBatch = fixedBatch
	lbb := trainer.NewLBBSP()
	lbb.FixedBatch = fixedBatch
	ddp := trainer.NewDDP()
	ddp.FixedBatch = fixedBatch
	systems := []struct {
		name string
		sys  trainer.System
	}{
		{"cannikin", can},
		{"lb-bsp", lbb},
		{"pytorch-ddp", ddp},
	}

	tab := trace.NewTable("system", "pre-event (s)", "peak (s)", "final (s)", "final/optperf", "recovery epoch")
	var stats []RecoveryStat
	for _, s := range systems {
		stat, err := run(s.name, s.sys)
		if err != nil {
			return nil, nil, 0, err
		}
		stats = append(stats, stat)
		tab.AddRowValues(stat.System, stat.PreEvent, stat.Peak, stat.Final,
			stat.Final/stat.OptPerfRef, stat.RecoveryEpoch)
	}
	return tab, stats, eventEpoch, nil
}
