package experiments

import (
	"fmt"

	"cannikin/internal/goodput"
	"cannikin/internal/optperf"
	"cannikin/internal/stats"
	"cannikin/internal/trace"
	"cannikin/internal/trainer"
	"cannikin/internal/workload"
)

// Table6 reproduces Table 6: Cannikin's scheduling overhead (candidate
// evaluation + per-node configuration) per task on Cluster B, as the
// maximum per-epoch fraction and the overall fraction of training time.
func Table6(opt Options) (*trace.Table, error) {
	tab := trace.NewTable("dataset", "model", "max overhead %", "overall overhead %")
	for _, wl := range workload.Names() {
		res, err := runJob("b", wl, trainer.NewCannikin(), opt.seed(), "table6")
		if err != nil {
			return nil, err
		}
		maxFrac := 0.0
		for _, e := range res.Epochs {
			if e.Epoch < 2 {
				continue // bootstrap epochs carry no candidate sweep
			}
			if tot := e.TrainTime + e.Overhead; tot > 0 {
				if f := e.Overhead / tot; f > maxFrac {
					maxFrac = f
				}
			}
		}
		overall := res.TotalOverhead / res.TotalTime
		w, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		tab.AddRowValues(w.Dataset, w.ModelName, 100*maxFrac, 100*overall)
	}
	return tab, nil
}

// PredictionError reproduces Section 5.3: the maximum relative error of
// Cannikin's OptPerf prediction against the measured batch time across the
// batch-size range, on Cluster A, with and without inverse-variance
// weighting of the communication-constant measurements.
func PredictionError(opt Options) (*trace.Table, error) {
	tab := trace.NewTable("workload", "max err % (IVW)", "max err % (no IVW)")
	for _, wl := range workload.Names() {
		withIVW, err := maxPredictionError(opt, wl, true)
		if err != nil {
			return nil, fmt.Errorf("pred %s ivw: %w", wl, err)
		}
		without, err := maxPredictionError(opt, wl, false)
		if err != nil {
			return nil, fmt.Errorf("pred %s noivw: %w", wl, err)
		}
		tab.AddRowValues(wl, 100*withIVW, 100*without)
	}
	return tab, nil
}

// maxPredictionError learns a cluster model online (6 epochs of Cannikin
// training), then sweeps the batch-size range comparing the predicted
// OptPerf with the measured time at the planned allocation.
func maxPredictionError(opt Options, wl string, useIVW bool) (float64, error) {
	c, err := newCluster("a", opt.seed(), fmt.Sprintf("pred/%s/%v", wl, useIVW))
	if err != nil {
		return 0, err
	}
	w, err := workload.Get(wl)
	if err != nil {
		return 0, err
	}
	sys := trainer.NewCannikin()
	sys.UseIVW = useIVW
	if _, err := trainer.Run(trainer.Config{
		Cluster: c, Workload: w, System: sys, Seed: opt.seed(), MaxEpochs: 6,
	}); err != nil {
		return 0, err
	}
	env, err := trainer.NewEnv(c, w)
	if err != nil {
		return 0, err
	}
	learned, err := sys.LearnedModel(env)
	if err != nil {
		return 0, err
	}
	cands, err := goodput.CandidateRange(env.MinTotal, env.MaxTotal, 6)
	if err != nil {
		return 0, err
	}
	maxErr := 0.0
	for _, b := range cands {
		plan, err := optperf.Solve(learned, b)
		if err != nil {
			return 0, err
		}
		measured, err := c.MeasuredTime(w.Profile, plan.Batches, opt.measureSteps())
		if err != nil {
			return 0, err
		}
		if e := stats.RelErr(plan.Time, measured); e > maxErr {
			maxErr = e
		}
	}
	return maxErr, nil
}

// Sharing reproduces the Section 6 Cluster C experiment: on a cluster of
// identical GPUs made heterogeneous by resource sharing, Cannikin's
// advantage over the homogeneous baseline persists, matching Cluster B's
// behaviour.
func Sharing(opt Options) (*trace.Table, error) {
	tab := trace.NewTable("cluster", "cannikin (s)", "adaptdl (s)", "speedup")
	for _, preset := range []string{"b", "c"} {
		can, err := runJob(preset, "cifar10", trainer.NewCannikin(), opt.seed(), "sharing")
		if err != nil {
			return nil, err
		}
		adl, err := runJob(preset, "cifar10", trainer.NewAdaptDL(), opt.seed(), "sharing")
		if err != nil {
			return nil, err
		}
		tab.AddRowValues("cluster-"+preset, can.ConvergeTime, adl.ConvergeTime, adl.ConvergeTime/can.ConvergeTime)
	}
	return tab, nil
}

// AblationGNS compares the Theorem 4.1 weighted GNS estimator against
// naive averaging inside the full system (convergence time and the noise
// estimates' stability on CIFAR-10, Cluster B).
func AblationGNS(opt Options) (*trace.Table, error) {
	tab := trace.NewTable("estimator", "converge (s)", "final batch")
	for _, useOptimal := range []bool{true, false} {
		sys := trainer.NewCannikin()
		sys.UseOptimalGNS = useOptimal
		res, err := runJob("b", "cifar10", sys, opt.seed(), fmt.Sprintf("ablgns/%v", useOptimal))
		if err != nil {
			return nil, err
		}
		name := "theorem-4.1"
		if !useOptimal {
			name = "naive-average"
		}
		last := res.Epochs[len(res.Epochs)-1]
		tab.AddRowValues(name, res.ConvergeTime, last.TotalBatch)
	}
	return tab, nil
}

// AblationWarmStart measures Section 4.5's solver engineering: linear
// solves spent planning all candidates cold versus warm-started and cached
// (Cluster B true model, CIFAR-10 candidates).
func AblationWarmStart(opt Options) (*trace.Table, error) {
	c, err := newCluster("b", opt.seed(), "ablwarm")
	if err != nil {
		return nil, err
	}
	w, err := workload.Get("cifar10")
	if err != nil {
		return nil, err
	}
	env, err := trainer.NewEnv(c, w)
	if err != nil {
		return nil, err
	}
	model, err := c.TrueModel(w.Profile)
	if err != nil {
		return nil, err
	}

	// Cold: one fresh planner per candidate.
	cold := 0
	for _, b := range env.Candidates {
		p, err := optperf.NewPlanner(model)
		if err != nil {
			return nil, err
		}
		if _, err := p.Plan(b); err != nil {
			return nil, err
		}
		cold += p.Stats().LinearSolves + p.Stats().BoundarySearchSteps
	}
	// Warm: one planner sweeping candidates in order.
	warm, err := optperf.NewPlanner(model)
	if err != nil {
		return nil, err
	}
	if _, err := warm.PlanAll(env.Candidates); err != nil {
		return nil, err
	}
	warmWork := warm.Stats().LinearSolves + warm.Stats().BoundarySearchSteps
	// Cached: repeat the sweep.
	if _, err := warm.PlanAll(env.Candidates); err != nil {
		return nil, err
	}
	cachedWork := warm.Stats().LinearSolves + warm.Stats().BoundarySearchSteps - warmWork

	tab := trace.NewTable("strategy", "solver work")
	tab.AddRowValues("cold per-candidate", cold)
	tab.AddRowValues("warm sweep", warmWork)
	tab.AddRowValues("cached repeat", cachedWork)
	return tab, nil
}

// AblationOverlap quantifies the value of modeling the compute/
// communication overlap: for each workload it sweeps the batch-size range
// and reports the point where the measured gap between the OptPerf
// allocation and the overlap-blind equal-compute allocation (LB-BSP's
// target) is largest — the gap peaks in the comm/compute transition zone
// and vanishes at large batches where both targets coincide.
func AblationOverlap(opt Options) (*trace.Table, error) {
	tab := trace.NewTable("workload", "best batch", "optperf (s)", "equal-compute (s)", "max gain %")
	for _, wl := range workload.Names() {
		c, err := newCluster("b", opt.seed(), "abloverlap/"+wl)
		if err != nil {
			return nil, err
		}
		w, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		env, err := trainer.NewEnv(c, w)
		if err != nil {
			return nil, err
		}
		model, err := c.TrueModel(w.Profile)
		if err != nil {
			return nil, err
		}
		blind := model
		blind.To = 0
		blind.Tu = 0
		cands, err := goodput.CandidateRange(env.MinTotal, env.MaxTotal, 10)
		if err != nil {
			return nil, err
		}
		bestB, bestGain, bestOpt, bestBlind := 0, -1e9, 0.0, 0.0
		for _, b := range cands {
			optPlan, err := optperf.Solve(model, b)
			if err != nil {
				return nil, err
			}
			blindPlan, err := optperf.Solve(blind, b)
			if err != nil {
				return nil, err
			}
			tOpt, err := c.MeasuredTime(w.Profile, optPlan.Batches, opt.measureSteps())
			if err != nil {
				return nil, err
			}
			tBlind, err := c.MeasuredTime(w.Profile, blindPlan.Batches, opt.measureSteps())
			if err != nil {
				return nil, err
			}
			if gain := (tBlind - tOpt) / tBlind; gain > bestGain {
				bestB, bestGain, bestOpt, bestBlind = b, gain, tOpt, tBlind
			}
		}
		tab.AddRowValues(wl, bestB, bestOpt, bestBlind, 100*bestGain)
	}
	return tab, nil
}
