package experiments

import "testing"

func TestAblationBandwidthShape(t *testing.T) {
	fig, err := AblationBandwidth(quick)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Get("slowdown")
	if s == nil || s.Len() < 5 {
		t.Fatal("missing sweep")
	}
	// On the slowest network the allocations are nearly equivalent
	// (communication serializes everyone)...
	first := s.Y[0]
	if first > 1.15 {
		t.Fatalf("comm-bound ratio %v, want near 1", first)
	}
	// ...and on the fastest the even split clearly loses.
	last := s.Y[s.Len()-1]
	if last < 1.25 {
		t.Fatalf("compute-bound ratio %v, want well above 1", last)
	}
	// The advantage never shrinks dramatically as bandwidth grows.
	for i := 1; i < s.Len(); i++ {
		if s.Y[i] < s.Y[i-1]*0.92 {
			t.Fatalf("slowdown ratio regressed at %v GB/s: %v -> %v", s.X[i], s.Y[i-1], s.Y[i])
		}
	}
}
