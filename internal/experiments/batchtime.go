package experiments

import (
	"fmt"

	"cannikin/internal/goodput"
	"cannikin/internal/optperf"
	"cannikin/internal/trace"
	"cannikin/internal/trainer"
	"cannikin/internal/workload"
)

// Fig9 reproduces Figure 9: batch processing time per epoch while training
// ImageNet on Cluster A with a fixed total batch of 128 from an even
// initialization. Cannikin reaches OptPerf at epoch 2 (after its two
// model-learning epochs); LB-BSP tunes iteratively for many more.
func Fig9(opt Options) (*trace.Figure, error) {
	const (
		fixedBatch = 128
		epochs     = 16
	)
	fig := trace.NewFigure(
		"Fig 9: batch time per epoch, fixed B=128 (ImageNet, cluster A)",
		"epoch", "batch time (s)")

	w, err := workload.Get("imagenet")
	if err != nil {
		return nil, err
	}
	run := func(name string, sys trainer.System) error {
		c, err := newCluster("a", opt.seed(), "fig9/"+name)
		if err != nil {
			return err
		}
		res, err := trainer.Run(trainer.Config{
			Cluster: c, Workload: w, System: sys,
			Seed: opt.seed(), MaxEpochs: epochs,
		})
		if err != nil {
			return err
		}
		s := fig.AddSeries(name)
		for _, e := range res.Epochs {
			s.Add(float64(e.Epoch), e.AvgBatchTime)
		}
		return nil
	}
	can := trainer.NewCannikin()
	can.FixedBatch = fixedBatch
	if err := run("cannikin", can); err != nil {
		return nil, err
	}
	lbb := trainer.NewLBBSP()
	lbb.FixedBatch = fixedBatch
	if err := run("lb-bsp", lbb); err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig10 reproduces Figure 10: per-sample batch processing time against the
// total batch size for each workload on Cluster B, comparing OptPerf
// (Cannikin), converged LB-BSP, LB-BSP right after an adaptive batch-size
// change (10% of the range larger, before re-tuning), and DDP's even split.
// Every allocation is *measured* on the simulator, not just predicted.
func Fig10(opt Options) ([]*trace.Figure, error) {
	var figs []*trace.Figure
	for _, wl := range workload.Names() {
		fig, err := fig10ForWorkload(opt, wl)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", wl, err)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

func fig10ForWorkload(opt Options, wl string) (*trace.Figure, error) {
	w, err := workload.Get(wl)
	if err != nil {
		return nil, err
	}
	c, err := newCluster("b", opt.seed(), "fig10/"+wl)
	if err != nil {
		return nil, err
	}
	env, err := trainer.NewEnv(c, w)
	if err != nil {
		return nil, err
	}
	model, err := c.TrueModel(w.Profile)
	if err != nil {
		return nil, err
	}
	// LB-BSP's asymptotic target ignores the communication overlap: it
	// equalizes plain compute time, i.e. OptPerf with zero overlappable
	// communication.
	lbbModel := model
	lbbModel.To = 0
	lbbModel.Tu = 0

	cands, err := goodput.CandidateRange(env.MinTotal, env.MaxTotal, 7)
	if err != nil {
		return nil, err
	}
	rangeSpan := env.MaxTotal - env.MinTotal

	fig := trace.NewFigure(
		fmt.Sprintf("Fig 10: per-sample batch time vs total batch (%s, cluster B)", wl),
		"total batch", "ms per sample")
	sOpt := fig.AddSeries("optperf")
	sLbb := fig.AddSeries("lb-bsp")
	sLbbAd := fig.AddSeries("lb-bsp-adaptive")
	sDDP := fig.AddSeries("pytorch-ddp")

	steps := opt.measureSteps()
	measure := func(batches []int) (float64, error) {
		return c.MeasuredTime(w.Profile, batches, steps)
	}
	for _, b := range cands {
		optPlan, err := optperf.Solve(model, b)
		if err != nil {
			return nil, err
		}
		tOpt, err := measure(optPlan.Batches)
		if err != nil {
			return nil, err
		}
		lbbPlan, err := optperf.Solve(lbbModel, b)
		if err != nil {
			return nil, err
		}
		tLbb, err := measure(lbbPlan.Batches)
		if err != nil {
			return nil, err
		}
		even, err := env.EvenSplit(b)
		if err != nil {
			return nil, err
		}
		tDDP, err := measure(even)
		if err != nil {
			return nil, err
		}
		perSample := func(t float64) float64 { return t / float64(b) * 1e3 }
		sOpt.Add(float64(b), perSample(tOpt))
		sLbb.Add(float64(b), perSample(tLbb))
		sDDP.Add(float64(b), perSample(tDDP))

		// Adaptive scenario: LB-BSP was tuned for a batch 10% of the range
		// smaller, then the batch grows; its allocation is scaled
		// proportionally without re-tuning (Section 5.2.2).
		prev := b - rangeSpan/10
		if prev >= env.MinTotal {
			prevPlan, err := optperf.Solve(lbbModel, prev)
			if err != nil {
				return nil, err
			}
			scaled, err := scaleAllocation(prevPlan.Batches, b, env.Caps)
			if err != nil {
				return nil, err
			}
			tAd, err := measure(scaled)
			if err != nil {
				return nil, err
			}
			sLbbAd.Add(float64(b), perSample(tAd))
		}
	}
	return fig, nil
}

// scaleAllocation rescales an allocation to a new total proportionally,
// respecting caps and a minimum of one.
func scaleAllocation(batches []int, total int, caps []int) ([]int, error) {
	old := 0
	for _, b := range batches {
		old += b
	}
	out := make([]int, len(batches))
	sum := 0
	for i, b := range batches {
		out[i] = b * total / old
		if out[i] < 1 {
			out[i] = 1
		}
		if out[i] > caps[i] {
			out[i] = caps[i]
		}
		sum += out[i]
	}
	for sum != total {
		progressed := false
		for i := range out {
			if sum == total {
				break
			}
			if sum < total && out[i] < caps[i] {
				out[i]++
				sum++
				progressed = true
			} else if sum > total && out[i] > 1 {
				out[i]--
				sum--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("experiments: cannot scale allocation to %d", total)
		}
	}
	return out, nil
}
