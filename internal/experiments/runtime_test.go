package experiments

import (
	"strconv"
	"testing"
)

func TestRuntimeExperimentShape(t *testing.T) {
	tab, err := Runtime(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("want 6 configurations (4 worker counts + 2 extra shard settings), got %d", len(tab.Rows))
	}
	col := func(name string) int {
		for i, h := range tab.Headers {
			if h == name {
				return i
			}
		}
		t.Fatalf("missing column %q in %v", name, tab.Headers)
		return -1
	}
	workers := col("workers")
	shards := col("shards")
	overlap := col("overlap")
	gamma := col("gamma")
	fitErr := col("fit err")
	speedup := col("speedup")
	wantWorkers := []string{"1", "2", "4", "8", "4", "4"}
	wantShards := []string{"1", "1", "1", "1", "2", "4"}
	for i, row := range tab.Rows {
		if row[workers] != wantWorkers[i] {
			t.Fatalf("row %d workers = %q, want %q", i, row[workers], wantWorkers[i])
		}
		if row[shards] != wantShards[i] {
			t.Fatalf("row %d shards = %q, want %q", i, row[shards], wantShards[i])
		}
		if row[overlap] != "true" {
			t.Fatalf("row %d: overlap not observed: %v", i, row)
		}
		g, err := strconv.ParseFloat(row[gamma], 64)
		if err != nil || g <= 0 || g > 1 {
			t.Fatalf("row %d: gamma %q not in (0, 1]", i, row[gamma])
		}
		fe, err := strconv.ParseFloat(row[fitErr], 64)
		if err != nil || fe < 0 {
			t.Fatalf("row %d: fit err %q", i, row[fitErr])
		}
		if s, err := strconv.ParseFloat(row[speedup], 64); err != nil || s <= 0 {
			t.Fatalf("row %d: speedup %q", i, row[speedup])
		}
	}
}
