package experiments

import (
	"fmt"

	"cannikin/internal/gpu"
	"cannikin/internal/rng"
	"cannikin/internal/sched"
	"cannikin/internal/simtime"
	"cannikin/internal/trace"
	"cannikin/internal/trainer"
	"cannikin/internal/workload"
)

// Scheduler reproduces the Discussion's scheduler integration argument:
// because Cannikin trains efficiently on *mixed* GPU allocations, a job
// scheduler no longer has to carve homogeneous slices out of a mixed pool.
// The experiment runs the same job stream under both allocation policies
// and compares makespan and queueing.
func Scheduler(opt Options) (*trace.Table, error) {
	tab := trace.NewTable("policy", "jobs done", "makespan (s)", "total wait (s)")
	for _, tt := range []struct {
		name   string
		policy sched.Policy
	}{
		{"heterogeneous (cannikin)", sched.Heterogeneous},
		{"homogeneous-only", sched.HomogeneousOnly},
	} {
		makespan, wait, done, err := runSchedule(opt, tt.policy)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tt.name, err)
		}
		tab.AddRowValues(tt.name, done, makespan, wait)
	}
	return tab, nil
}

func runSchedule(opt Options, policy sched.Policy) (makespan, totalWait float64, done int, err error) {
	// Pool: 2x A100, 2x V100, 4x RTX6000 — no model has more than 4.
	src := rng.New(opt.seed()).Split("schedpool")
	models := []string{"A100", "A100", "V100", "V100", "RTX6000", "RTX6000", "RTX6000", "RTX6000"}
	devices := make([]*gpu.Device, len(models))
	for i, m := range models {
		d, derr := gpu.NewDevice(fmt.Sprintf("%s-%d", m, i), m, src)
		if derr != nil {
			return 0, 0, 0, derr
		}
		devices[i] = d
	}
	s, err := sched.New(devices, policy, func() trainer.System { return trainer.NewCannikin() }, opt.seed())
	if err != nil {
		return 0, 0, 0, err
	}
	w, err := workload.Get("cifar10")
	if err != nil {
		return 0, 0, 0, err
	}
	// A stream of 3- and 4-GPU jobs arriving close together: under the
	// homogeneous policy a 4-GPU job can only use the RTX6000 slice, so
	// jobs serialize; mixed allocations keep the whole pool busy.
	jobs := []sched.Job{
		{ID: "j1", Workload: w, GPUs: 4, SubmitAt: 0},
		{ID: "j2", Workload: w, GPUs: 4, SubmitAt: simtime.Time(simtime.FromSeconds(1))},
		{ID: "j3", Workload: w, GPUs: 3, SubmitAt: simtime.Time(simtime.FromSeconds(2))},
		{ID: "j4", Workload: w, GPUs: 3, SubmitAt: simtime.Time(simtime.FromSeconds(3))},
	}
	for _, j := range jobs {
		if err := s.Submit(j); err != nil {
			return 0, 0, 0, err
		}
	}
	recs, err := s.Run()
	if err != nil {
		return 0, 0, 0, err
	}
	for _, r := range recs {
		totalWait += simtime.Duration(r.Wait).Seconds()
	}
	return s.Makespan().Seconds(), totalWait, len(recs), nil
}
