package experiments

import (
	"testing"
)

var quick = Options{Seed: 1, Quick: true}

func TestFig5BatchSizesGrowAndStayConsistent(t *testing.T) {
	fig, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	global := fig.Get("global")
	if global == nil || global.Len() < 5 {
		t.Fatal("missing global series")
	}
	_, first := global.X[0], global.Y[0]
	_, last := global.Last()
	if last <= first {
		t.Fatalf("global batch did not grow: %v -> %v", first, last)
	}
	// Local batches must sum to the global batch at every epoch.
	for i := range global.X {
		sum := 0.0
		for _, s := range fig.Series[1:] {
			sum += s.Y[i]
		}
		if sum != global.Y[i] {
			t.Fatalf("epoch %v: locals sum %v != global %v", global.X[i], sum, global.Y[i])
		}
	}
	// The fast node (A5000, node0) ends with more work than the slow one
	// (P4000, node2).
	_, n0 := fig.Get("node0").Last()
	_, n2 := fig.Get("node2").Last()
	if n0 <= n2 {
		t.Fatalf("fast node %v <= slow node %v", n0, n2)
	}
}

func TestFig6CannikinConvergesFasterSameQuality(t *testing.T) {
	figs, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("%d panels", len(figs))
	}
	accEpoch, accTime := figs[1], figs[2]
	// (b) Convergence quality comparable: both reach the target accuracy.
	for _, name := range []string{"cannikin", "adaptdl"} {
		_, final := accEpoch.Get(name).Last()
		if final < 0.93 {
			t.Fatalf("%s final accuracy %v", name, final)
		}
	}
	// (c) Cannikin reaches the target earlier in wall-clock time.
	canT, _ := accTime.Get("cannikin").Last()
	adlT, _ := accTime.Get("adaptdl").Last()
	if canT >= adlT {
		t.Fatalf("cannikin time %v >= adaptdl %v", canT, adlT)
	}
}

func TestFig7CannikinFastestOnBothWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("imagenet run in short mode")
	}
	figs, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range figs {
		canT, _ := fig.Get("cannikin").Last()
		for _, s := range fig.Series {
			if s.Name == "cannikin" {
				continue
			}
			endT, _ := s.Last()
			if canT >= endT {
				t.Errorf("%s: cannikin %v not faster than %s %v", fig.Title, canT, s.Name, endT)
			}
		}
	}
}

func TestFig8ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	tab, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d workloads", len(tab.Rows))
	}
	// Columns: task, cannikin, adaptdl, lb-bsp, hetpipe, pytorch-ddp.
	colOf := map[string]int{}
	for i, h := range tab.Headers {
		colOf[h] = i
	}
	parse := func(row []string, col string) float64 {
		var v float64
		if _, err := fmtSscan(row[colOf[col]], &v); err != nil {
			t.Fatalf("parse %q: %v", row[colOf[col]], err)
		}
		return v
	}
	var maxDDP, maxADL, maxLBB float64
	for _, row := range tab.Rows {
		can := parse(row, "cannikin")
		if can != 1 {
			t.Fatalf("cannikin not normalized to 1: %v", row)
		}
		for _, sys := range []string{"adaptdl", "lb-bsp", "hetpipe", "pytorch-ddp"} {
			if v := parse(row, sys); v <= 1 {
				t.Errorf("%s: %s normalized time %v <= cannikin", row[0], sys, v)
			}
		}
		if v := parse(row, "pytorch-ddp"); v > maxDDP {
			maxDDP = v
		}
		if v := parse(row, "adaptdl"); v > maxADL {
			maxADL = v
		}
		if v := parse(row, "lb-bsp"); v > maxLBB {
			maxLBB = v
		}
	}
	// Paper: up to 85% reduction vs DDP (6.7x), 52% vs AdaptDL (2.1x), 82%
	// vs LB-BSP (5.6x). Demand the same order of magnitude of spread.
	if maxDDP < 2.5 {
		t.Errorf("max DDP slowdown %v; paper shape expects large gains vs DDP", maxDDP)
	}
	if maxADL < 1.2 {
		t.Errorf("max AdaptDL slowdown %v; expected visible gains", maxADL)
	}
	if maxLBB < 1.5 {
		t.Errorf("max LB-BSP slowdown %v; expected large gains (fixed batch)", maxLBB)
	}
}

func TestFig9CannikinReachesOptPerfByEpoch2(t *testing.T) {
	fig, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	can := fig.Get("cannikin")
	lbb := fig.Get("lb-bsp")
	if can == nil || lbb == nil {
		t.Fatal("missing series")
	}
	canFinal := can.Y[can.Len()-1]
	// Cannikin: epoch >= 2 batch times are already near its final value.
	for i := 2; i < can.Len(); i++ {
		if can.Y[i] > canFinal*1.10 {
			t.Fatalf("cannikin epoch %d time %v far above final %v", i, can.Y[i], canFinal)
		}
	}
	// Both start even: epoch-0 times are close.
	if rel := can.Y[0] / lbb.Y[0]; rel < 0.9 || rel > 1.1 {
		t.Fatalf("epoch-0 times differ: %v vs %v", can.Y[0], lbb.Y[0])
	}
	// LB-BSP is still improving well after Cannikin converged.
	if lbb.Y[4] <= canFinal*1.05 {
		t.Fatalf("lb-bsp converged too fast: epoch4 %v vs cannikin final %v", lbb.Y[4], canFinal)
	}
	// And LB-BSP's final time approaches (but does not beat) Cannikin's.
	lbbFinal := lbb.Y[lbb.Len()-1]
	if lbbFinal < canFinal*0.98 {
		t.Fatalf("lb-bsp final %v beats OptPerf %v", lbbFinal, canFinal)
	}
	if lbbFinal > canFinal*1.35 {
		t.Fatalf("lb-bsp final %v too far from OptPerf %v", lbbFinal, canFinal)
	}
}

func TestFig10OptPerfDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	figs, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 5 {
		t.Fatalf("%d figures", len(figs))
	}
	for _, fig := range figs {
		sOpt, sLbb, sDDP := fig.Get("optperf"), fig.Get("lb-bsp"), fig.Get("pytorch-ddp")
		for i := range sOpt.X {
			b := sOpt.X[i]
			if sOpt.Y[i] > sLbb.YAt(b)*1.03 {
				t.Errorf("%s: optperf %v above lb-bsp %v at B=%v", fig.Title, sOpt.Y[i], sLbb.YAt(b), b)
			}
			if sOpt.Y[i] > sDDP.YAt(b)*1.03 {
				t.Errorf("%s: optperf %v above ddp %v at B=%v", fig.Title, sOpt.Y[i], sDDP.YAt(b), b)
			}
		}
		// At the largest batch all nodes are compute-bound and LB-BSP
		// approaches OptPerf (paper: the two asymptotically agree).
		lastIdx := len(sOpt.X) - 1
		bigGap := sLbb.Y[lastIdx]/sOpt.Y[lastIdx] - 1
		if bigGap > 0.10 {
			t.Errorf("%s: at max batch lb-bsp still %v%% behind", fig.Title, 100*bigGap)
		}
	}
}

func TestTable6OverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	tab, err := Table6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var maxPct, overallPct float64
		if _, err := fmtSscan(row[2], &maxPct); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(row[3], &overallPct); err != nil {
			t.Fatal(err)
		}
		if overallPct > maxPct+1e-9 {
			t.Errorf("%s: overall %v%% above max %v%%", row[0], overallPct, maxPct)
		}
		if overallPct > 6 {
			t.Errorf("%s: overall overhead %v%% too high", row[0], overallPct)
		}
		switch row[0] {
		case "ImageNet", "LibriSpeech", "SQuAD":
			if overallPct > 1 {
				t.Errorf("%s: large task overhead %v%% should be <1%%", row[0], overallPct)
			}
		}
	}
}

func TestPredictionErrorIVWHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	tab, err := PredictionError(quick)
	if err != nil {
		t.Fatal(err)
	}
	worseCount := 0
	for _, row := range tab.Rows {
		var ivw, noivw float64
		if _, err := fmtSscan(row[1], &ivw); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(row[2], &noivw); err != nil {
			t.Fatal(err)
		}
		if ivw > 12 {
			t.Errorf("%s: IVW prediction error %v%% above paper's 7%% band", row[0], ivw)
		}
		if noivw > ivw {
			worseCount++
		}
	}
	if worseCount < 3 {
		t.Errorf("IVW improved only %d/5 workloads", worseCount)
	}
}

func TestSharingClusterCMatchesClusterB(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	tab, err := Sharing(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		var speedup float64
		if _, err := fmtSscan(row[3], &speedup); err != nil {
			t.Fatal(err)
		}
		if speedup <= 1.05 {
			t.Errorf("%s: Cannikin speedup %v over AdaptDL too small", row[0], speedup)
		}
	}
}

func TestAblationWarmStartReducesWork(t *testing.T) {
	tab, err := AblationWarmStart(quick)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		var v float64
		if _, err := fmtSscan(row[1], &v); err != nil {
			t.Fatal(err)
		}
		vals[row[0]] = v
	}
	if vals["warm sweep"] >= vals["cold per-candidate"] {
		t.Errorf("warm sweep %v solves not below cold %v", vals["warm sweep"], vals["cold per-candidate"])
	}
	if vals["cached repeat"] != 0 {
		t.Errorf("cached repeat did %v solves, want 0", vals["cached repeat"])
	}
}

func TestAblationOverlapGainNonNegative(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	tab, err := AblationOverlap(quick)
	if err != nil {
		t.Fatal(err)
	}
	positive := 0
	for _, row := range tab.Rows {
		var gain float64
		if _, err := fmtSscan(row[4], &gain); err != nil {
			t.Fatal(err)
		}
		if gain < -3 {
			t.Errorf("%s: overlap-aware allocation worse by %v%%", row[0], -gain)
		}
		if gain > 0.5 {
			positive++
		}
	}
	if positive == 0 {
		t.Error("overlap modeling never helped; expected gains on comm-relevant workloads")
	}
}

func TestAblationGNSComparable(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	tab, err := AblationGNS(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

// fmtSscan wraps fmt.Sscan for the table-string assertions.
func fmtSscan(s string, v *float64) (int, error) {
	return sscan(s, v)
}
