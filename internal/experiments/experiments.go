// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) plus the Discussion experiments, on the simulated
// clusters. Each experiment returns trace figures/tables that cmd/experiments
// prints and that bench_test.go asserts shape properties on.
//
// Experiment index (see DESIGN.md):
//
//	fig5   – global/local batch size per epoch (CIFAR-10, Cannikin)
//	fig6   – batch size + accuracy curves, Cannikin vs AdaptDL
//	fig7   – convergence processes on Cluster B (CIFAR-10, ImageNet)
//	fig8   – normalized convergence time, 5 tasks x 5 systems
//	fig9   – fixed-batch approach to OptPerf, Cannikin vs LB-BSP
//	fig10  – batch processing time vs total batch size
//	table6 – scheduling overhead per task
//	pred   – OptPerf prediction error with/without IVW (Section 5.3)
//	sharing– sharing-induced heterogeneity (Cluster C, Section 6)
package experiments

import (
	"fmt"

	"cannikin/internal/cluster"
	"cannikin/internal/rng"
	"cannikin/internal/trace"
	"cannikin/internal/trainer"
	"cannikin/internal/workload"
)

// Options tunes experiment cost.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// Quick trims measurement repetitions for fast CI runs.
	Quick bool
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) measureSteps() int {
	if o.Quick {
		return 10
	}
	return 40
}

// newCluster builds a preset cluster deterministically for an experiment.
func newCluster(preset string, seed uint64, salt string) (*cluster.Cluster, error) {
	return cluster.Preset(preset, rng.New(seed).Split("experiment/"+salt))
}

// runJob trains one workload with one system on a fresh preset cluster.
func runJob(preset, wl string, sys trainer.System, seed uint64, salt string) (*trainer.Result, error) {
	c, err := newCluster(preset, seed, salt+"/"+sys.Name())
	if err != nil {
		return nil, err
	}
	w, err := workload.Get(wl)
	if err != nil {
		return nil, err
	}
	res, err := trainer.Run(trainer.Config{Cluster: c, Workload: w, System: sys, Seed: seed})
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("experiments: %s on %s/%s did not converge", sys.Name(), preset, wl)
	}
	return res, nil
}

// runHetPipe trains one workload with the HetPipe baseline.
func runHetPipe(preset, wl string, seed uint64, salt string) (*trainer.Result, error) {
	c, err := newCluster(preset, seed, salt+"/hetpipe")
	if err != nil {
		return nil, err
	}
	w, err := workload.Get(wl)
	if err != nil {
		return nil, err
	}
	env, err := trainer.NewEnv(c, w)
	if err != nil {
		return nil, err
	}
	res, err := trainer.NewHetPipe().Run(env, seed, 0)
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("experiments: hetpipe on %s/%s did not converge", preset, wl)
	}
	return res, nil
}

// Fig5 reproduces Figure 5: the global batch size and each node's local
// batch size per epoch while Cannikin trains CIFAR-10 (Cluster A keeps the
// figure readable with 3 nodes, as in the paper's narrative).
func Fig5(opt Options) (*trace.Figure, error) {
	sys := trainer.NewCannikin()
	res, err := runJob("a", "cifar10", sys, opt.seed(), "fig5")
	if err != nil {
		return nil, err
	}
	fig := trace.NewFigure("Fig 5: batch sizes per epoch (CIFAR-10, Cannikin, cluster A)", "epoch", "batch size")
	global := fig.AddSeries("global")
	locals := make([]*trace.Series, len(res.Epochs[0].Local))
	for i := range locals {
		locals[i] = fig.AddSeries(fmt.Sprintf("node%d", i))
	}
	for _, e := range res.Epochs {
		global.Add(float64(e.Epoch), float64(e.TotalBatch))
		for i, b := range e.Local {
			locals[i].Add(float64(e.Epoch), float64(b))
		}
	}
	return fig, nil
}

// Fig6 reproduces Figure 6: (a) total batch size per epoch, (b) metric per
// epoch, and (c) metric against training time, for Cannikin vs AdaptDL on
// CIFAR-10 (Cluster B).
func Fig6(opt Options) ([]*trace.Figure, error) {
	results := map[string]*trainer.Result{}
	for name, sys := range map[string]trainer.System{
		"cannikin": trainer.NewCannikin(),
		"adaptdl":  trainer.NewAdaptDL(),
	} {
		res, err := runJob("b", "cifar10", sys, opt.seed(), "fig6")
		if err != nil {
			return nil, err
		}
		results[name] = res
	}
	batch := trace.NewFigure("Fig 6a: batch size per epoch (CIFAR-10, cluster B)", "epoch", "batch size")
	accEpoch := trace.NewFigure("Fig 6b: accuracy per epoch", "epoch", "top1-acc")
	accTime := trace.NewFigure("Fig 6c: accuracy over time", "seconds", "top1-acc")
	for _, name := range []string{"cannikin", "adaptdl"} {
		res := results[name]
		sb := batch.AddSeries(name)
		se := accEpoch.AddSeries(name)
		st := accTime.AddSeries(name)
		for _, e := range res.Epochs {
			sb.Add(float64(e.Epoch), float64(e.TotalBatch))
			se.Add(float64(e.Epoch), e.Metric)
			st.Add(e.SimTimeEnd, e.Metric)
		}
	}
	return []*trace.Figure{batch, accEpoch, accTime}, nil
}

// Fig7 reproduces Figure 7: the convergence processes (metric vs time) of
// ResNet-18/CIFAR-10 and ResNet-50/ImageNet on Cluster B across systems.
func Fig7(opt Options) ([]*trace.Figure, error) {
	var figs []*trace.Figure
	for _, wl := range []string{"cifar10", "imagenet"} {
		w, err := workload.Get(wl)
		if err != nil {
			return nil, err
		}
		fig := trace.NewFigure(
			fmt.Sprintf("Fig 7: convergence of %s on %s (cluster B)", w.ModelName, w.Dataset),
			"seconds", w.Convergence.MetricName)
		for name, sys := range map[string]trainer.System{
			"cannikin":    trainer.NewCannikin(),
			"adaptdl":     trainer.NewAdaptDL(),
			"lb-bsp":      trainer.NewLBBSP(),
			"pytorch-ddp": trainer.NewDDP(),
		} {
			res, err := runJob("b", wl, sys, opt.seed(), "fig7/"+wl)
			if err != nil {
				return nil, err
			}
			s := fig.AddSeries(name)
			for _, e := range res.Epochs {
				s.Add(e.SimTimeEnd, e.Metric)
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig8 reproduces Figure 8: the normalized convergence time of every
// evaluated workload under all five systems on Cluster B (Cannikin = 1).
func Fig8(opt Options) (*trace.Table, error) {
	systems := []string{"cannikin", "adaptdl", "lb-bsp", "hetpipe", "pytorch-ddp"}
	tab := trace.NewTable(append([]string{"task"}, systems...)...)
	for _, wl := range workload.Names() {
		times := map[string]float64{}
		for _, name := range systems {
			var (
				res *trainer.Result
				err error
			)
			if name == "hetpipe" {
				res, err = runHetPipe("b", wl, opt.seed(), "fig8/"+wl)
			} else {
				res, err = runJob("b", wl, systemByName(name), opt.seed(), "fig8/"+wl)
			}
			if err != nil {
				return nil, err
			}
			times[name] = res.ConvergeTime
		}
		base := times["cannikin"]
		row := []any{wl}
		for _, name := range systems {
			row = append(row, times[name]/base)
		}
		tab.AddRowValues(row...)
	}
	return tab, nil
}

// systemByName builds a fresh data-parallel system.
func systemByName(name string) trainer.System {
	switch name {
	case "cannikin":
		return trainer.NewCannikin()
	case "adaptdl":
		return trainer.NewAdaptDL()
	case "lb-bsp":
		return trainer.NewLBBSP()
	case "pytorch-ddp":
		return trainer.NewDDP()
	default:
		panic(fmt.Sprintf("experiments: unknown system %q", name))
	}
}
