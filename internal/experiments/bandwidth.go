package experiments

import (
	"cannikin/internal/cluster"
	"cannikin/internal/optperf"
	"cannikin/internal/rng"
	"cannikin/internal/simnet"
	"cannikin/internal/trace"
	"cannikin/internal/trainer"
	"cannikin/internal/workload"
)

// AblationBandwidth sweeps the interconnect bandwidth and measures how
// much of OptPerf's advantage over the even split survives: on a slow
// network all nodes are communication-bottleneck and the slowest link
// serializes everyone, so the allocation barely matters; as bandwidth
// grows, compute dominates and heterogeneity-aware allocation pays off.
// This locates the regime boundary the paper's testbed sits in.
func AblationBandwidth(opt Options) (*trace.Figure, error) {
	w, err := workload.Get("cifar10")
	if err != nil {
		return nil, err
	}
	models := make([]string, 0, 16)
	for i := 0; i < 4; i++ {
		models = append(models, "A100")
	}
	for i := 0; i < 4; i++ {
		models = append(models, "V100")
	}
	for i := 0; i < 8; i++ {
		models = append(models, "RTX6000")
	}

	fig := trace.NewFigure(
		"Network sensitivity: even-split batch time over OptPerf vs link bandwidth (CIFAR-10, B=1024)",
		"link GB/s", "even/optperf time ratio")
	s := fig.AddSeries("slowdown")

	const totalBatch = 1024
	for _, gbps := range []float64{0.5, 1, 2, 5, 10, 20, 40} {
		src := rng.New(opt.seed()).Split("bw")
		ring := simnet.UniformRing(len(models), gbps, 20e-6)
		c, err := cluster.FromModelsWithRing("bw-sweep", models, ring, src)
		if err != nil {
			return nil, err
		}
		env, err := trainer.NewEnv(c, w)
		if err != nil {
			return nil, err
		}
		model, err := c.TrueModel(w.Profile)
		if err != nil {
			return nil, err
		}
		plan, err := optperf.Solve(model, totalBatch)
		if err != nil {
			return nil, err
		}
		tOpt, err := c.MeasuredTime(w.Profile, plan.Batches, opt.measureSteps())
		if err != nil {
			return nil, err
		}
		even, err := env.EvenSplit(totalBatch)
		if err != nil {
			return nil, err
		}
		tEven, err := c.MeasuredTime(w.Profile, even, opt.measureSteps())
		if err != nil {
			return nil, err
		}
		s.Add(gbps, tEven/tOpt)
	}
	return fig, nil
}
