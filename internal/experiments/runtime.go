package experiments

import (
	"fmt"
	"time"

	"cannikin/internal/data"
	"cannikin/internal/rng"
	"cannikin/internal/runtime"
	"cannikin/internal/tensor"
	"cannikin/internal/trace"
)

// Runtime compares the two real-execution backends head to head: the
// sequential reference versus the live concurrent engine with overlapped
// bucketed ring all-reduce, at increasing worker counts, then sweeps the
// tensor kernel parallelism (1/2/4 shards) on the four-worker cluster.
// Every configuration does identical arithmetic (the differential tests
// prove bitwise-equal weights at any backend, bucket size, or shard
// count), so the wall-clock columns isolate the execution model: on a
// multicore host the live engine pulls ahead as workers are added, and
// sharded kernels shrink both walls while the speedup column shows how
// the backend gap responds. The last columns close the paper's loop — the
// communication constants and fit error of the performance model learned
// from the live run's own measured samples.
func Runtime(opt Options) (*trace.Table, error) {
	tab := trace.NewTable("workers", "local batches", "shards", "sim wall (s)", "live wall (s)",
		"speedup", "buckets", "overlap", "gamma", "fit err")
	// Kernel parallelism is a process-wide setting; restore the serial
	// default so later experiments are unaffected.
	defer tensor.SetParallelism(1)

	epochs := 3
	if opt.Quick {
		epochs = 2
	}
	runs := []struct {
		batches []int
		shards  int
	}{
		{[]int{64}, 1},
		{[]int{48, 16}, 1},
		{[]int{32, 16, 8, 8}, 1},
		{[]int{16, 12, 8, 8, 8, 4, 4, 4}, 1},
		// The kernel-parallelism sweep: the same four-worker cluster with
		// matmuls sharded across 2 and 4 goroutines (1 is the row above).
		{[]int{32, 16, 8, 8}, 2},
		{[]int{32, 16, 8, 8}, 4},
	}
	for _, run := range runs {
		batches := run.batches
		cfg := func(backend string) (runtime.Config, error) {
			// 2000 is not a multiple of any global batch below, so every
			// epoch ends in a partial batch: each node sees two distinct
			// local sizes, the minimum its linear model fit needs.
			src := rng.New(opt.seed())
			ds, err := data.SyntheticBlobs(2000, 32, 8, 0.6, src)
			if err != nil {
				return runtime.Config{}, err
			}
			return runtime.Config{
				Backend:      backend,
				LocalBatches: batches,
				Sizes:        []int{32, 256, 128, 8},
				Epochs:       epochs,
				LearningRate: 0.05,
				Momentum:     0.9,
				BucketBytes:  8192 * 8,
				KernelShards: run.shards,
				Dataset:      ds,
				Src:          src,
			}, nil
		}
		simCfg, err := cfg(runtime.BackendSim)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := runtime.Train(simCfg); err != nil {
			return nil, err
		}
		simWall := time.Since(t0).Seconds()

		liveCfg, err := cfg(runtime.BackendLive)
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		res, err := runtime.Train(liveCfg)
		if err != nil {
			return nil, err
		}
		liveWall := time.Since(t0).Seconds()

		p := res.Profile
		buckets := 0
		if len(p.Samples) > 0 {
			buckets = p.Samples[0].Buckets
		}
		gamma, fitErr := 0.0, 0.0
		if model, fe, err := p.FitModel(nil); err == nil {
			gamma, fitErr = model.Gamma, fe
		}
		tab.AddRowValues(len(batches), intsString(batches), run.shards, simWall, liveWall,
			simWall/liveWall, buckets, p.OverlapObserved(), gamma, fitErr)
	}
	return tab, nil
}

func intsString(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprint(x)
	}
	return s
}
