package tensor

import (
	"fmt"
	"testing"

	"cannikin/internal/rng"
)

// naiveMatMul is the pre-kernel reference implementation (the original
// MatMul triple loop, zero-skip included). The kernels must reproduce its
// bits exactly.
func naiveMatMul(a, b *T) *T {
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		ti := a.data[i*a.cols : (i+1)*a.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range ti {
			if av == 0 {
				continue
			}
			ok := b.data[k*b.cols : (k+1)*b.cols]
			for j := range oi {
				oi[j] += av * ok[j]
			}
		}
	}
	return out
}

// sparsify zeroes a fraction of elements so the kernels' zero-skip path is
// exercised (ReLU activations and masked gradients are full of exact
// zeros).
func sparsify(t *T, src *rng.Source) {
	for i := range t.data {
		if src.Float64() < 0.3 {
			t.data[i] = 0
		}
	}
}

func assertBitwiseEqual(t *testing.T, name string, got, want *T) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i, v := range got.data {
		if v != want.data[i] {
			t.Fatalf("%s: element %d: got %v (%x), want %v (%x)",
				name, i, v, v, want.data[i], want.data[i])
		}
	}
}

// kernelShapes spans the MLP layer shapes used in training plus
// deliberately awkward ones: single rows/cols, row counts that do not
// divide evenly across 2/3/4 shards, and inner dimensions straddling the
// cache-block boundary.
var kernelShapes = []struct{ n, k, c int }{
	{1, 1, 1},
	{1, 8, 4},
	{3, 5, 7},
	{7, 3, 2},
	{16, 32, 4},
	{17, 31, 9},
	{64, 32, 256},
	{64, 256, 128},
	{64, 128, 8},
	{5, kernelBlockK + 3, 6},
	{2, 2 * kernelBlockK, 3},
}

// TestKernelsMatchNaiveReference: MatMulInto, AddMulATInto, and MulBTInto
// must reproduce the naive Transpose/MatMul formulations bit for bit —
// the kernel rewrite may not move a single ULP of the training trajectory.
func TestKernelsMatchNaiveReference(t *testing.T) {
	src := rng.New(7)
	for _, sh := range kernelShapes {
		x := Randn(sh.n, sh.k, 1, src)
		w := Randn(sh.k, sh.c, 1, src)
		dout := Randn(sh.n, sh.c, 1, src)
		sparsify(x, src)
		sparsify(dout, src)

		mm := New(sh.n, sh.c)
		MatMulInto(mm, x, w)
		assertBitwiseEqual(t, fmt.Sprintf("MatMulInto %v", sh), mm, naiveMatMul(x, w))

		// dW reference: xᵀ·dout via explicit transpose, accumulated into a
		// pre-seeded destination the way Linear.Backward does (Grad.Add).
		seed := Randn(sh.k, sh.c, 1, src)
		want := seed.Clone().Add(naiveMatMul(x.Transpose(), dout))
		got := seed.Clone()
		// AddMulATInto accumulates term by term, so feed it a zero scratch
		// and add — the exact call pattern Linear.Backward uses.
		scratch := New(sh.k, sh.c)
		AddMulATInto(scratch, x, dout)
		got.Add(scratch)
		assertBitwiseEqual(t, fmt.Sprintf("AddMulATInto %v", sh), got, want)

		// Direct accumulation from zero must equal the matmul too.
		direct := New(sh.k, sh.c)
		AddMulATInto(direct, x, dout)
		assertBitwiseEqual(t, fmt.Sprintf("AddMulATInto-zero %v", sh), direct, naiveMatMul(x.Transpose(), dout))

		// dx reference: dout·Wᵀ via explicit transpose.
		bt := New(sh.n, sh.k)
		MulBTInto(bt, dout, w)
		assertBitwiseEqual(t, fmt.Sprintf("MulBTInto %v", sh), bt, naiveMatMul(dout, w.Transpose()))
	}
}

// TestParallelKernelsBitwiseEqualSerial is the determinism property test:
// for every shape (including row counts that do not divide evenly across
// the shards) and every pool size, the parallel kernels must produce the
// same bits as the serial ones. Row-sharded dispatch owns each output row
// exclusively and keeps the per-row summation order, so any difference is
// a bug.
func TestParallelKernelsBitwiseEqualSerial(t *testing.T) {
	defer SetParallelism(1)
	src := rng.New(11)
	for _, sh := range kernelShapes {
		x := Randn(sh.n, sh.k, 1, src)
		w := Randn(sh.k, sh.c, 1, src)
		dout := Randn(sh.n, sh.c, 1, src)
		sparsify(x, src)

		SetParallelism(1)
		serialMM := New(sh.n, sh.c)
		MatMulInto(serialMM, x, w)
		serialAT := New(sh.k, sh.c)
		AddMulATInto(serialAT, x, dout)
		serialBT := New(sh.n, sh.k)
		MulBTInto(serialBT, dout, w)

		for _, p := range []int{2, 3, 4, 7} {
			SetParallelism(p)
			if got := Parallelism(); got != p {
				t.Fatalf("Parallelism() = %d after SetParallelism(%d)", got, p)
			}
			mm := New(sh.n, sh.c)
			MatMulInto(mm, x, w)
			assertBitwiseEqual(t, fmt.Sprintf("p=%d MatMulInto %v", p, sh), mm, serialMM)

			at := New(sh.k, sh.c)
			AddMulATInto(at, x, dout)
			assertBitwiseEqual(t, fmt.Sprintf("p=%d AddMulATInto %v", p, sh), at, serialAT)

			bt := New(sh.n, sh.k)
			MulBTInto(bt, dout, w)
			assertBitwiseEqual(t, fmt.Sprintf("p=%d MulBTInto %v", p, sh), bt, serialBT)
		}
	}
}

// TestParallelKernelsConcurrentCallers drives the shared pool from many
// goroutines at once (the live runtime's shape: one kernel caller per
// worker) under the race detector, checking results stay bitwise correct.
func TestParallelKernelsConcurrentCallers(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(4)
	src := rng.New(13)
	x := Randn(33, 64, 1, src)
	w := Randn(64, 48, 1, src)
	want := naiveMatMul(x, w)

	const callers = 8
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		go func() {
			for iter := 0; iter < 50; iter++ {
				out := New(33, 48)
				MatMulInto(out, x, w)
				for i, v := range out.data {
					if v != want.data[i] {
						errs <- fmt.Errorf("iter %d element %d: %v != %v", iter, i, v, want.data[i])
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < callers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestReuse(t *testing.T) {
	a := Reuse(nil, 4, 8)
	if a.Rows() != 4 || a.Cols() != 8 {
		t.Fatalf("Reuse(nil) shape %dx%d", a.Rows(), a.Cols())
	}
	b := Reuse(a, 2, 4)
	if b != a {
		t.Fatal("Reuse did not reuse sufficient capacity")
	}
	if b.Rows() != 2 || b.Cols() != 4 {
		t.Fatalf("Reuse shape %dx%d", b.Rows(), b.Cols())
	}
	c := Reuse(b, 16, 16)
	if c == b {
		t.Fatal("Reuse kept insufficient capacity")
	}
	// Growing then shrinking must keep the grown capacity (no realloc).
	d := Reuse(c, 1, 1)
	if d != c {
		t.Fatal("Reuse reallocated on shrink")
	}
}

func TestKernelShapePanics(t *testing.T) {
	cases := []func(){
		func() { MatMulInto(New(2, 2), New(2, 3), New(4, 2)) },
		func() { MatMulInto(New(3, 3), New(2, 3), New(3, 2)) },
		func() { AddMulATInto(New(2, 2), New(4, 3), New(5, 2)) },
		func() { AddMulATInto(New(2, 2), New(4, 3), New(4, 2)) },
		func() { MulBTInto(New(2, 2), New(2, 3), New(2, 4)) },
		func() { MulBTInto(New(3, 3), New(2, 3), New(2, 3)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic on shape mismatch", i)
				}
			}()
			f()
		}()
	}
}

// BenchmarkMatMul spans the MLP layer shapes: forward activations
// (batch×in · in×out) at the sizes the runtime benchmarks train.
func BenchmarkMatMul(b *testing.B) {
	src := rng.New(1)
	for _, sh := range []struct{ n, k, c int }{
		{64, 32, 256},
		{64, 256, 128},
		{64, 128, 8},
		{256, 256, 256},
	} {
		x := Randn(sh.n, sh.k, 1, src)
		w := Randn(sh.k, sh.c, 1, src)
		out := New(sh.n, sh.c)
		b.Run(fmt.Sprintf("n%dxk%dxc%d", sh.n, sh.k, sh.c), func(b *testing.B) {
			b.SetBytes(int64(8 * (sh.n*sh.k + sh.k*sh.c + sh.n*sh.c)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, x, w)
			}
		})
	}
}

// BenchmarkMatMulParallel measures the pool's scaling on one big matmul.
func BenchmarkMatMulParallel(b *testing.B) {
	src := rng.New(1)
	x := Randn(256, 256, 1, src)
	w := Randn(256, 256, 1, src)
	out := New(256, 256)
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards%d", p), func(b *testing.B) {
			SetParallelism(p)
			defer SetParallelism(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, x, w)
			}
		})
	}
}
