package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"cannikin/internal/rng"
)

func TestNewShape(t *testing.T) {
	a := New(2, 3)
	if a.Rows() != 2 || a.Cols() != 3 {
		t.Fatalf("shape %dx%d", a.Rows(), a.Cols())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape accepted")
		}
	}()
	New(0, 3)
}

func TestFromRowsAndAt(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if a.At(0, 1) != 2 || a.At(1, 0) != 3 {
		t.Fatal("values wrong")
	}
	a.Set(1, 1, 9)
	if a.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged input accepted")
		}
	}()
	FromRows([][]float64{{1}, {2, 3}})
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.MatMul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Fatalf("MatMul wrong at (%d,%d): %v", i, j, c.At(i, j))
			}
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	New(2, 3).MatMul(New(2, 3))
}

func TestMatMulAssociativeWithTranspose(t *testing.T) {
	// Property: (A B)^T == B^T A^T.
	src := rng.New(5)
	f := func(seed uint8) bool {
		s := src.Split(string(rune(seed)))
		r, k, c := 1+s.Intn(6), 1+s.Intn(6), 1+s.Intn(6)
		a := Randn(r, k, 1, s)
		b := Randn(k, c, 1, s)
		left := a.MatMul(b).Transpose()
		right := b.Transpose().MatMul(a.Transpose())
		for i := 0; i < left.Rows(); i++ {
			for j := 0; j < left.Cols(); j++ {
				if math.Abs(left.At(i, j)-right.At(i, j)) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	a.Add(b)
	if a.At(0, 0) != 11 || a.At(1, 1) != 44 {
		t.Fatal("Add wrong")
	}
	a.Sub(b)
	if a.At(0, 0) != 1 || a.At(1, 1) != 4 {
		t.Fatal("Sub wrong")
	}
	a.Hadamard(b)
	if a.At(0, 1) != 40 {
		t.Fatal("Hadamard wrong")
	}
	a.Scale(0.5)
	if a.At(0, 1) != 20 {
		t.Fatal("Scale wrong")
	}
	a.Apply(func(v float64) float64 { return -v })
	if a.At(0, 1) != -20 {
		t.Fatal("Apply wrong")
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	a.AddRowVector([]float64{10, 100})
	if a.At(0, 0) != 11 || a.At(1, 1) != 104 {
		t.Fatal("AddRowVector wrong")
	}
}

func TestSumColumns(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	s := a.SumColumns()
	if s[0] != 9 || s[1] != 12 {
		t.Fatalf("SumColumns = %v", s)
	}
}

func TestSqNormMaxAbs(t *testing.T) {
	a := FromRows([][]float64{{3, -4}})
	if a.SqNorm() != 25 {
		t.Fatalf("SqNorm = %v", a.SqNorm())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestZero(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	a.Zero()
	if a.SqNorm() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestSliceRows(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := a.SliceRows(1, 3)
	if b.Rows() != 2 || b.At(0, 0) != 2 || b.At(1, 1) != 3 {
		t.Fatal("SliceRows wrong")
	}
	b.Set(0, 0, 99)
	if a.At(1, 0) != 2 {
		t.Fatal("SliceRows should copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid slice accepted")
		}
	}()
	a.SliceRows(2, 2)
}

func TestRandnMoments(t *testing.T) {
	src := rng.New(7)
	a := Randn(200, 200, 2.0, src)
	n := float64(a.Rows() * a.Cols())
	mean := 0.0
	for _, v := range a.Data() {
		mean += v
	}
	mean /= n
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Randn mean %v", mean)
	}
	variance := a.SqNorm()/n - mean*mean
	if math.Abs(math.Sqrt(variance)-2.0) > 0.05 {
		t.Fatalf("Randn std %v", math.Sqrt(variance))
	}
}

func TestRowIsMutableView(t *testing.T) {
	a := New(2, 2)
	a.Row(1)[0] = 7
	if a.At(1, 0) != 7 {
		t.Fatal("Row is not a view")
	}
}
