package tensor

import (
	"fmt"
	"sync"
)

// The kernel worker pool shards the row loops of the destination-passing
// kernels (MatMulInto, AddMulATInto, MulBTInto) across long-lived worker
// goroutines. Sharding is by contiguous output-row ranges and every row is
// owned by exactly one shard, so the floating-point accumulation order of
// each output element is identical to the serial kernel regardless of how
// the scheduler interleaves the shards — parallel and serial results are
// bitwise equal (see TestParallelKernelsBitwiseEqualSerial).
//
// The dispatch path allocates nothing: tasks are plain structs sent by
// value over a buffered channel, and completion channels are recycled
// through a free list, so the pool can sit on the zero-allocation training
// step of internal/runtime.

// kernelOp selects the row-range kernel a pool task runs.
type kernelOp uint8

const (
	opMatMul kernelOp = iota
	opAddMulAT
	opMulBT
)

// poolTask is one contiguous row shard of a kernel invocation.
type poolTask struct {
	op        kernelOp
	dst, a, b *T
	lo, hi    int
	done      chan struct{}
}

// parallelWorkFloor is the approximate flop count below which sharding
// overhead outweighs the parallel win and kernels run inline.
const parallelWorkFloor = 1 << 15

// doneFreeSlots bounds how many kernel invocations can be in flight at
// once before dispatchers briefly queue for a completion channel. Live
// training runs one kernel per worker goroutine at a time, so this only
// needs to cover a realistic worker count.
const doneFreeSlots = 32

var pool struct {
	mu       sync.RWMutex
	size     int
	tasks    chan poolTask
	doneFree chan chan struct{}
}

// Parallelism returns the current kernel shard count (1 = serial).
func Parallelism() int {
	pool.mu.RLock()
	defer pool.mu.RUnlock()
	if pool.size < 1 {
		return 1
	}
	return pool.size
}

// SetParallelism resizes the shared kernel worker pool to n shards.
// n <= 1 disables the pool and every kernel runs serially in its caller.
// The call blocks until in-flight kernel dispatches finish, then replaces
// the workers; results are bitwise independent of the setting.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if n == pool.size || (n == 1 && pool.size == 0) {
		return
	}
	if pool.tasks != nil {
		close(pool.tasks) // retire the old workers
		pool.tasks = nil
		pool.doneFree = nil
	}
	pool.size = n
	if n == 1 {
		return
	}
	pool.tasks = make(chan poolTask, 4*n)
	pool.doneFree = make(chan chan struct{}, doneFreeSlots)
	for i := 0; i < doneFreeSlots; i++ {
		pool.doneFree <- make(chan struct{}, n)
	}
	for i := 0; i < n; i++ {
		go poolWorker(pool.tasks)
	}
}

func poolWorker(tasks chan poolTask) {
	for t := range tasks {
		runShard(t.op, t.dst, t.a, t.b, t.lo, t.hi)
		t.done <- struct{}{}
	}
}

// runShard executes rows [lo, hi) of the selected kernel.
func runShard(op kernelOp, dst, a, b *T, lo, hi int) {
	switch op {
	case opMatMul:
		matMulRange(dst, a, b, lo, hi)
	case opAddMulAT:
		addMulATRange(dst, a, b, lo, hi)
	case opMulBT:
		mulBTRange(dst, a, b, lo, hi)
	default:
		panic(fmt.Sprintf("tensor: unknown kernel op %d", op))
	}
}

// dispatch shards rows [0, rows) of the kernel across the pool, or runs it
// inline when the pool is disabled or the matrix is too small to benefit.
// work is the approximate flop count of the full invocation.
func dispatch(op kernelOp, dst, a, b *T, rows, work int) {
	pool.mu.RLock()
	defer pool.mu.RUnlock()
	p := pool.size
	if p <= 1 || rows < 2 || work < parallelWorkFloor {
		runShard(op, dst, a, b, 0, rows)
		return
	}
	if p > rows {
		p = rows
	}
	chunk := (rows + p - 1) / p
	done := <-pool.doneFree
	issued := 0
	for lo := chunk; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		pool.tasks <- poolTask{op: op, dst: dst, a: a, b: b, lo: lo, hi: hi, done: done}
		issued++
	}
	// The caller keeps the first shard for itself so p shards use p
	// goroutines, then joins the rest.
	runShard(op, dst, a, b, 0, chunk)
	for i := 0; i < issued; i++ {
		<-done
	}
	pool.doneFree <- done
}
