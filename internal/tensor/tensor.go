// Package tensor implements the minimal dense 2-D tensor used by the pure
// Go neural-network engine (internal/nn). Tensors are row-major float64
// matrices shaped (rows x cols); in training, rows index batch samples and
// cols index features.
//
// The hot path runs through destination-passing kernels (kernels.go):
// cache-blocked loops writing into caller-owned storage, optionally sharded
// across a package worker pool (pool.go, SetParallelism). Sharding is by
// output rows and every row keeps the serial summation order, so results
// are bitwise identical at any parallelism — determinism the training
// goldens depend on.
package tensor

import (
	"fmt"
	"math"

	"cannikin/internal/rng"
)

// T is a dense row-major matrix.
type T struct {
	rows, cols int
	data       []float64
}

// New returns a zero tensor of the given shape.
func New(rows, cols int) *T {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &T{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a tensor from row slices (copied).
func FromRows(rows [][]float64) *T {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("tensor: FromRows requires non-empty input")
	}
	t := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != t.cols {
			panic(fmt.Sprintf("tensor: ragged row %d", i))
		}
		copy(t.Row(i), r)
	}
	return t
}

// Randn fills a new tensor with N(0, std) entries from src.
func Randn(rows, cols int, std float64, src *rng.Source) *T {
	t := New(rows, cols)
	for i := range t.data {
		t.data[i] = src.Norm(0, std)
	}
	return t
}

// Rows returns the row count.
func (t *T) Rows() int { return t.rows }

// Cols returns the column count.
func (t *T) Cols() int { return t.cols }

// At returns the element (i, j).
func (t *T) At(i, j int) float64 { return t.data[i*t.cols+j] }

// Set assigns element (i, j).
func (t *T) Set(i, j int, v float64) { t.data[i*t.cols+j] = v }

// Row returns a mutable view of row i.
func (t *T) Row(i int) []float64 { return t.data[i*t.cols : (i+1)*t.cols] }

// Data returns the underlying flat storage (mutable view).
func (t *T) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *T) Clone() *T {
	c := New(t.rows, t.cols)
	copy(c.data, t.data)
	return c
}

// Zero resets all elements to 0.
func (t *T) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Reuse returns a (rows x cols) tensor backed by t's storage when it has
// the capacity, growing the storage otherwise; pass nil to allocate fresh.
// The element contents are unspecified — callers are expected to overwrite
// them. This is the workspace primitive behind the zero-allocation training
// step: layers size their scratch on first use and every later step of the
// same shape reuses it, while shape changes (a larger evaluation batch, a
// shrunken final partial batch) reslice the same backing array.
func Reuse(t *T, rows, cols int) *T {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	n := rows * cols
	if t == nil || cap(t.data) < n {
		return New(rows, cols)
	}
	t.rows, t.cols = rows, cols
	t.data = t.data[:n]
	return t
}

// MatMul returns t * other ((r x c) * (c x k) -> (r x k)). It is the
// allocating convenience form of MatMulInto.
func (t *T) MatMul(other *T) *T {
	if t.cols != other.rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d * %dx%d", t.rows, t.cols, other.rows, other.cols))
	}
	out := New(t.rows, other.cols)
	MatMulInto(out, t, other)
	return out
}

// Transpose returns a transposed copy.
func (t *T) Transpose() *T {
	out := New(t.cols, t.rows)
	for i := 0; i < t.rows; i++ {
		for j := 0; j < t.cols; j++ {
			out.Set(j, i, t.At(i, j))
		}
	}
	return out
}

// AddRowVector adds v to every row in place (v length must equal Cols).
func (t *T) AddRowVector(v []float64) *T {
	if len(v) != t.cols {
		panic("tensor: AddRowVector length mismatch")
	}
	for i := 0; i < t.rows; i++ {
		row := t.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
	return t
}

// Add adds other element-wise in place and returns t.
func (t *T) Add(other *T) *T {
	t.assertSameShape(other)
	for i := range t.data {
		t.data[i] += other.data[i]
	}
	return t
}

// Sub subtracts other element-wise in place and returns t.
func (t *T) Sub(other *T) *T {
	t.assertSameShape(other)
	for i := range t.data {
		t.data[i] -= other.data[i]
	}
	return t
}

// Hadamard multiplies element-wise in place and returns t.
func (t *T) Hadamard(other *T) *T {
	t.assertSameShape(other)
	for i := range t.data {
		t.data[i] *= other.data[i]
	}
	return t
}

// Scale multiplies every element by s in place and returns t.
func (t *T) Scale(s float64) *T {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// Apply maps f over every element in place and returns t.
func (t *T) Apply(f func(float64) float64) *T {
	for i := range t.data {
		t.data[i] = f(t.data[i])
	}
	return t
}

// SumColumns returns the per-column sums (length Cols) — the bias gradient
// reduction.
func (t *T) SumColumns() []float64 {
	out := make([]float64, t.cols)
	for i := 0; i < t.rows; i++ {
		row := t.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// SqNorm returns the squared Frobenius norm.
func (t *T) SqNorm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func (t *T) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// SliceRows returns a copy of rows [from, to).
func (t *T) SliceRows(from, to int) *T {
	if from < 0 || to > t.rows || from >= to {
		panic(fmt.Sprintf("tensor: SliceRows [%d, %d) of %d rows", from, to, t.rows))
	}
	out := New(to-from, t.cols)
	copy(out.data, t.data[from*t.cols:to*t.cols])
	return out
}

func (t *T) assertSameShape(other *T) {
	if t.rows != other.rows || t.cols != other.cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", t.rows, t.cols, other.rows, other.cols))
	}
}
