package tensor

import "fmt"

// Destination-passing kernels for the training hot path. All three write
// into caller-owned storage (no allocation), skip exactly-zero left-hand
// elements the way the original MatMul did (ReLU-sparse gradients make this
// a real win, and it keeps old and new trajectories bitwise identical), and
// block the shared inner dimension in ascending panels so the per-element
// accumulation order — and therefore every rounded bit — matches the naive
// triple loop while the working set of the right-hand operand stays in
// cache.
//
// Kernels shard across output rows through the package worker pool (see
// pool.go); each output element is owned by one shard, so parallel runs are
// bitwise equal to serial runs.

// kernelBlockK is the inner-dimension panel size: 256 float64 rows of the
// streamed operand keep the panel within a typical L2 slice at the MLP
// widths in this repo.
const kernelBlockK = 256

// MatMulInto computes dst = a·b for a (r×k) and b (k×c) into dst (r×c).
// dst must not alias a or b. It is the destination-passing form of MatMul:
// same arithmetic, no allocation.
func MatMulInto(dst, a, b *T) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	dispatch(opMatMul, dst, a, b, a.rows, 2*a.rows*a.cols*b.cols)
}

// matMulRange computes dst rows [lo, hi) of dst = a·b. Each output row is
// zeroed then accumulated over k in ascending panel order, reproducing the
// naive ikj loop's summation order exactly.
func matMulRange(dst, a, b *T, lo, hi int) {
	k, c := a.cols, b.cols
	for i := lo; i < hi; i++ {
		orow := dst.data[i*c : (i+1)*c]
		for j := range orow {
			orow[j] = 0
		}
	}
	for kb := 0; kb < k; kb += kernelBlockK {
		kEnd := kb + kernelBlockK
		if kEnd > k {
			kEnd = k
		}
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := dst.data[i*c : (i+1)*c]
			for kk := kb; kk < kEnd; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b.data[kk*c : (kk+1)*c]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// AddMulATInto accumulates dst += aᵀ·b for a (n×r) and b (n×c) into dst
// (r×c) — the Linear dW kernel, fusing away the explicit Transpose copy.
// dst must not alias a or b. Summation over the n samples runs in ascending
// order per output row, bitwise matching Transpose-then-MatMul into a zero
// tensor when dst starts zeroed.
func AddMulATInto(dst, a, b *T) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("tensor: AddMulATInto shape mismatch %dx%dᵀ * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic(fmt.Sprintf("tensor: AddMulATInto dst %dx%d, want %dx%d", dst.rows, dst.cols, a.cols, b.cols))
	}
	dispatch(opAddMulAT, dst, a, b, a.cols, 2*a.rows*a.cols*b.cols)
}

// addMulATRange accumulates dst rows [lo, hi) of dst += aᵀ·b.
func addMulATRange(dst, a, b *T, lo, hi int) {
	n, k, c := a.rows, a.cols, b.cols
	for sb := 0; sb < n; sb += kernelBlockK {
		sEnd := sb + kernelBlockK
		if sEnd > n {
			sEnd = n
		}
		for i := lo; i < hi; i++ {
			drow := dst.data[i*c : (i+1)*c]
			for s := sb; s < sEnd; s++ {
				av := a.data[s*k+i]
				if av == 0 {
					continue
				}
				brow := b.data[s*c : (s+1)*c]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}

// MulBTInto computes dst = a·bᵀ for a (r×k) and b (c×k) into dst (r×c) —
// the Linear dx kernel dout·Wᵀ, fusing away the Transpose copy. dst must
// not alias a or b. Both operands stream row-contiguously; the dot product
// accumulates over k in ascending order with the same zero-skip as MatMul,
// so the bits match Transpose-then-MatMul exactly.
func MulBTInto(dst, a, b *T) {
	if a.cols != b.cols {
		panic(fmt.Sprintf("tensor: MulBTInto shape mismatch %dx%d * %dx%dᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("tensor: MulBTInto dst %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.rows))
	}
	dispatch(opMulBT, dst, a, b, a.rows, 2*a.rows*a.cols*b.rows)
}

// mulBTRange computes dst rows [lo, hi) of dst = a·bᵀ.
func mulBTRange(dst, a, b *T, lo, hi int) {
	k, c := a.cols, b.rows
	for i := lo; i < hi; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := dst.data[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for kk, av := range arow {
				if av == 0 {
					continue
				}
				s += av * brow[kk]
			}
			orow[j] = s
		}
	}
}
