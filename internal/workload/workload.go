// Package workload defines the five evaluation workloads of the paper's
// Table 5 — model sizes, datasets, optimizers, learning-rate scalers,
// initial batch sizes, and target metrics — together with the simulator
// parameterizations derived from the architectures: per-sample FLOPs, data
// volumes, memory footprints, and convergence profiles.
package workload

import (
	"fmt"
	"sort"

	"cannikin/internal/convergence"
	"cannikin/internal/gpu"
)

// OptimizerKind names the optimizer of Table 5.
type OptimizerKind string

// Optimizers used by the evaluation workloads.
const (
	OptSGD   OptimizerKind = "sgd"
	OptAdam  OptimizerKind = "adam"
	OptAdamW OptimizerKind = "adamw"
)

// ScalerKind names the LR scaling rule of Table 5.
type ScalerKind string

// Learning-rate scalers used by the evaluation workloads.
const (
	ScalerAdaScale   ScalerKind = "adascale"
	ScalerSquareRoot ScalerKind = "square-root"
)

// Workload is one end-to-end training task.
type Workload struct {
	// Name is the short task key ("cifar10", "imagenet", ...).
	Name string
	// Task and Dataset describe the Table 5 row.
	Task, Dataset, ModelName string
	// Params is the parameter count (for display; bytes live in Profile).
	Params    float64
	Optimizer OptimizerKind
	Scaler    ScalerKind
	// InitBatch is B0, the user-configured initial total batch size.
	InitBatch int
	// MaxBatch is the upper limit of the total batch size range (further
	// constrained by cluster memory at runtime).
	MaxBatch int
	// DatasetSize is the number of samples per epoch.
	DatasetSize int
	// Profile parameterizes the compute/memory simulator.
	Profile gpu.JobProfile
	// Convergence parameterizes the statistical progress model.
	Convergence convergence.Model
}

// Validate checks internal consistency.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if w.InitBatch <= 0 || w.MaxBatch < w.InitBatch {
		return fmt.Errorf("workload %s: batch range [%d, %d]", w.Name, w.InitBatch, w.MaxBatch)
	}
	if w.DatasetSize <= 0 {
		return fmt.Errorf("workload %s: dataset size %d", w.Name, w.DatasetSize)
	}
	if err := w.Profile.Validate(); err != nil {
		return fmt.Errorf("workload %s: %w", w.Name, err)
	}
	if err := w.Convergence.Validate(); err != nil {
		return fmt.Errorf("workload %s: %w", w.Name, err)
	}
	if w.Convergence.BaseBatch != w.InitBatch {
		return fmt.Errorf("workload %s: convergence base batch %d != init batch %d", w.Name, w.Convergence.BaseBatch, w.InitBatch)
	}
	return nil
}

// table is the Table 5 catalog. FLOPs and memory figures are derived from
// the published architectures; convergence budgets are scaled so epoch
// counts to target match canonical training recipes.
var table = map[string]Workload{
	"imagenet": {
		Name: "imagenet", Task: "Image Classification", Dataset: "ImageNet", ModelName: "ResNet-50",
		Params: 25.6e6, Optimizer: OptSGD, Scaler: ScalerAdaScale,
		InitBatch: 100, MaxBatch: 3200, DatasetSize: 1_281_167,
		Profile: gpu.JobProfile{
			Name:              "imagenet-resnet50",
			CPUWorkPerSample:  300e-6, // JPEG decode + augmentation
			FwdFLOPsPerSample: 4.1e9,
			BwdFLOPsPerSample: 8.2e9,
			BytesPerSample:    602e3, // 224x224x3 bytes + decode overhead
			ParamBytes:        25.6e6 * 4,
			UpdateFLOPs:       6 * 25.6e6,
			MemPerSampleBytes: 24e6,
			ModelMemBytes:     4 * 25.6e6 * 4,
		},
		Convergence: convergence.Model{
			BaseBatch:     100,
			TargetSamples: 1_281_167 * 62, // ~62 effective epochs to 75% top-1
			Phi0:          1200, Phi1: 18000,
			MetricName: "top1-acc", MetricStart: 0.02, MetricTarget: 0.75,
			Direction: convergence.HigherIsBetter,
			GradSq0:   8,
		},
	},
	"cifar10": {
		Name: "cifar10", Task: "Image Classification", Dataset: "CIFAR-10", ModelName: "ResNet-18",
		Params: 11e6, Optimizer: OptSGD, Scaler: ScalerAdaScale,
		InitBatch: 64, MaxBatch: 4096, DatasetSize: 50_000,
		Profile: gpu.JobProfile{
			Name:              "cifar10-resnet18",
			CPUWorkPerSample:  15e-6,  // light augmentation
			FwdFLOPsPerSample: 0.56e9, // CIFAR-variant ResNet-18
			BwdFLOPsPerSample: 1.12e9,
			BytesPerSample:    3.1e3,
			ParamBytes:        11e6 * 4,
			UpdateFLOPs:       6 * 11e6,
			MemPerSampleBytes: 2.2e6,
			ModelMemBytes:     4 * 11e6 * 4,
		},
		Convergence: convergence.Model{
			BaseBatch:     64,
			TargetSamples: 50_000 * 55, // ~55 effective epochs to 94% top-1
			Phi0:          250, Phi1: 4200,
			MetricName: "top1-acc", MetricStart: 0.10, MetricTarget: 0.94,
			Direction: convergence.HigherIsBetter,
			GradSq0:   12,
		},
	},
	"librispeech": {
		Name: "librispeech", Task: "Speech Recognition", Dataset: "LibriSpeech", ModelName: "DeepSpeech2",
		Params: 52e6, Optimizer: OptSGD, Scaler: ScalerAdaScale,
		InitBatch: 12, MaxBatch: 768, DatasetSize: 281_241,
		Profile: gpu.JobProfile{
			Name:              "librispeech-deepspeech2",
			CPUWorkPerSample:  500e-6, // spectrogram extraction
			FwdFLOPsPerSample: 19e9,   // long spectrogram sequences
			BwdFLOPsPerSample: 38e9,
			BytesPerSample:    1.8e6,
			ParamBytes:        52e6 * 4,
			UpdateFLOPs:       6 * 52e6,
			MemPerSampleBytes: 110e6,
			ModelMemBytes:     4 * 52e6 * 4,
		},
		Convergence: convergence.Model{
			BaseBatch:     12,
			TargetSamples: 281_241 * 16, // ~16 effective epochs to WER 40
			Phi0:          90, Phi1: 1400,
			MetricName: "wer", MetricStart: 1.0, MetricTarget: 0.40,
			Direction: convergence.LowerIsBetter,
			GradSq0:   20,
		},
	},
	"squad": {
		Name: "squad", Task: "Question Answering", Dataset: "SQuAD", ModelName: "BERT",
		Params: 110e6, Optimizer: OptAdamW, Scaler: ScalerSquareRoot,
		InitBatch: 9, MaxBatch: 576, DatasetSize: 87_599,
		Profile: gpu.JobProfile{
			Name:              "squad-bert",
			CPUWorkPerSample:  25e-6, // tokenization
			FwdFLOPsPerSample: 29e9,  // BERT-base, 384-token sequences
			BwdFLOPsPerSample: 58e9,
			BytesPerSample:    6.2e3,
			ParamBytes:        110e6 * 4,
			UpdateFLOPs:       10 * 110e6,
			MemPerSampleBytes: 190e6,
			ModelMemBytes:     6 * 110e6 * 4,
		},
		Convergence: convergence.Model{
			BaseBatch:     9,
			TargetSamples: 87_599 * 3, // ~3 effective epochs of fine-tuning to F1 88
			Phi0:          40, Phi1: 650,
			MetricName: "f1", MetricStart: 0.12, MetricTarget: 0.88,
			Direction: convergence.HigherIsBetter,
			GradSq0:   30,
		},
	},
	"movielens": {
		Name: "movielens", Task: "Recommendation", Dataset: "MovieLens", ModelName: "NeuMF",
		Params: 5.2e6, Optimizer: OptAdam, Scaler: ScalerSquareRoot,
		InitBatch: 64, MaxBatch: 16384, DatasetSize: 994_169,
		Profile: gpu.JobProfile{
			Name:              "movielens-neumf",
			CPUWorkPerSample:  1e-6,    // ID lookup
			FwdFLOPsPerSample: 0.012e9, // embedding lookups + small MLP
			BwdFLOPsPerSample: 0.024e9,
			BytesPerSample:    24,
			ParamBytes:        5.2e6 * 4,
			UpdateFLOPs:       10 * 5.2e6,
			MemPerSampleBytes: 0.3e6,
			ModelMemBytes:     6 * 5.2e6 * 4,
		},
		Convergence: convergence.Model{
			BaseBatch:     64,
			TargetSamples: 994_169 * 9, // ~9 effective epochs to HR@10 = 69%
			Phi0:          500, Phi1: 9000,
			MetricName: "hit-rate", MetricStart: 0.20, MetricTarget: 0.69,
			Direction: convergence.HigherIsBetter,
			GradSq0:   6,
		},
	},
}

// Names returns the workload keys in deterministic order.
func Names() []string {
	names := make([]string, 0, len(table))
	for k := range table {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Get returns the named workload.
func Get(name string) (Workload, error) {
	w, ok := table[name]
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown %q (have %v)", name, Names())
	}
	return w, nil
}

// All returns every workload in deterministic order.
func All() []Workload {
	out := make([]Workload, 0, len(table))
	for _, name := range Names() {
		out = append(out, table[name])
	}
	return out
}
