package workload

import (
	"testing"

	"cannikin/internal/cluster"
	"cannikin/internal/rng"
)

func TestTable5Catalog(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("catalog has %d workloads, want 5", len(names))
	}
	for _, name := range names {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTable5Values(t *testing.T) {
	// Spot-check the paper's Table 5 rows.
	tests := []struct {
		name      string
		model     string
		params    float64
		optimizer OptimizerKind
		scaler    ScalerKind
		b0        int
	}{
		{"imagenet", "ResNet-50", 25.6e6, OptSGD, ScalerAdaScale, 100},
		{"cifar10", "ResNet-18", 11e6, OptSGD, ScalerAdaScale, 64},
		{"librispeech", "DeepSpeech2", 52e6, OptSGD, ScalerAdaScale, 12},
		{"squad", "BERT", 110e6, OptAdamW, ScalerSquareRoot, 9},
		{"movielens", "NeuMF", 5.2e6, OptAdam, ScalerSquareRoot, 64},
	}
	for _, tt := range tests {
		w, err := Get(tt.name)
		if err != nil {
			t.Fatal(err)
		}
		if w.ModelName != tt.model || w.Params != tt.params {
			t.Errorf("%s: model %s/%v", tt.name, w.ModelName, w.Params)
		}
		if w.Optimizer != tt.optimizer || w.Scaler != tt.scaler {
			t.Errorf("%s: optimizer %s scaler %s", tt.name, w.Optimizer, w.Scaler)
		}
		if w.InitBatch != tt.b0 {
			t.Errorf("%s: B0 = %d, want %d", tt.name, w.InitBatch, tt.b0)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("mnist"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllOrdered(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All returned %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatal("All not sorted")
		}
	}
}

func TestWorkloadsFitOnEvaluationClusters(t *testing.T) {
	// Every workload must be runnable on cluster B at its initial batch
	// size: capacity >= InitBatch and >= one sample per node.
	src := rng.New(1)
	b, err := cluster.PresetB(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range All() {
		caps := b.Caps(w.Profile)
		for i, c := range caps {
			if c < 1 {
				t.Errorf("%s: node %d cannot fit one sample", w.Name, i)
			}
		}
		if cap := b.Capacity(w.Profile); cap < w.InitBatch {
			t.Errorf("%s: cluster capacity %d below B0 %d", w.Name, cap, w.InitBatch)
		}
	}
}

func TestLargerModelsLongerCompute(t *testing.T) {
	src := rng.New(2)
	c, err := cluster.PresetA(src)
	if err != nil {
		t.Fatal(err)
	}
	bert, _ := Get("squad")
	neumf, _ := Get("movielens")
	d := c.Devices[0]
	tb := d.Coeffs(bert.Profile).Compute(16)
	tn := d.Coeffs(neumf.Profile).Compute(16)
	if tb <= tn*10 {
		t.Fatalf("BERT per-batch %v not much larger than NeuMF %v", tb, tn)
	}
}

func TestValidateCatchesMismatchedBaseBatch(t *testing.T) {
	w, _ := Get("cifar10")
	w.Convergence.BaseBatch = 128
	if w.Validate() == nil {
		t.Fatal("mismatched base batch accepted")
	}
	w, _ = Get("cifar10")
	w.MaxBatch = w.InitBatch - 1
	if w.Validate() == nil {
		t.Fatal("inverted batch range accepted")
	}
	w, _ = Get("cifar10")
	w.DatasetSize = 0
	if w.Validate() == nil {
		t.Fatal("zero dataset accepted")
	}
	w, _ = Get("cifar10")
	w.Name = ""
	if w.Validate() == nil {
		t.Fatal("empty name accepted")
	}
}

func TestBatchRangesAreMeaningful(t *testing.T) {
	for _, w := range All() {
		if w.MaxBatch < 8*w.InitBatch {
			t.Errorf("%s: batch range [%d, %d] too narrow for adaptive training", w.Name, w.InitBatch, w.MaxBatch)
		}
	}
}
