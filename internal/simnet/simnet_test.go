package simnet

import (
	"math"
	"testing"
)

func TestRingSpecValidate(t *testing.T) {
	if err := (RingSpec{}).Validate(); err == nil {
		t.Fatal("empty ring accepted")
	}
	if err := (RingSpec{LinkGBps: []float64{1, 0}}).Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if err := (RingSpec{LinkGBps: []float64{1}, LatencyS: -1}).Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := UniformRing(4, 10, 1e-5).Validate(); err != nil {
		t.Fatalf("valid ring rejected: %v", err)
	}
}

func TestAllReduceSingleNodeFree(t *testing.T) {
	s := UniformRing(1, 10, 1e-5)
	if got := s.AllReduceTime(1e9); got != 0 {
		t.Fatalf("single-node all-reduce time = %v, want 0", got)
	}
}

func TestAllReduceBandwidthTerm(t *testing.T) {
	// 4 nodes, 10 GB/s, zero latency, 1 GB payload:
	// 2*3/4 * 1e9 / 1e10 = 0.15 s.
	s := UniformRing(4, 10, 0)
	if got := s.AllReduceTime(1e9); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("all-reduce time = %v, want 0.15", got)
	}
}

func TestAllReduceLatencyTerm(t *testing.T) {
	s := UniformRing(5, 10, 0.001)
	small := s.AllReduceTime(1) // bandwidth term negligible
	if math.Abs(small-2*4*0.001) > 1e-6 {
		t.Fatalf("latency-dominated time = %v, want %v", small, 0.008)
	}
}

func TestAllReduceBottleneckLink(t *testing.T) {
	fast := RingSpec{LinkGBps: []float64{100, 100, 100, 100}}
	slow := RingSpec{LinkGBps: []float64{100, 100, 100, 1}}
	if slow.AllReduceTime(1e9) <= fast.AllReduceTime(1e9) {
		t.Fatal("slow link did not throttle the ring")
	}
	// The slow ring should behave like a uniform 1 GB/s ring.
	uniform := UniformRing(4, 1, 0)
	if math.Abs(slow.AllReduceTime(1e9)-uniform.AllReduceTime(1e9)) > 1e-12 {
		t.Fatal("bottleneck link does not determine ring time")
	}
}

func TestAllReduceScalesWithBytes(t *testing.T) {
	s := UniformRing(8, 10, 0)
	if got := s.AllReduceTime(2e9) / s.AllReduceTime(1e9); math.Abs(got-2) > 1e-9 {
		t.Fatalf("time not linear in payload: ratio %v", got)
	}
}

func TestPlanBucketsDecomposition(t *testing.T) {
	s := UniformRing(4, 10, 1e-5)
	plan, err := PlanBuckets(s, 104e6, DefaultBucketBytes)
	if err != nil {
		t.Fatal(err)
	}
	// 104 MB / 25 MiB ~= 4 buckets.
	if plan.NumBuckets != 4 {
		t.Fatalf("NumBuckets = %d, want 4", plan.NumBuckets)
	}
	if math.Abs(plan.TComm-(plan.To+plan.Tu)) > 1e-15 {
		t.Fatal("TComm != To + Tu")
	}
	if math.Abs(plan.Tu-plan.PerBucket) > 1e-15 {
		t.Fatal("Tu != per-bucket time")
	}
	if math.Abs(plan.To-3*plan.PerBucket) > 1e-15 {
		t.Fatal("To != (nb-1) * per-bucket time")
	}
	if math.Abs(plan.BucketBytes*float64(plan.NumBuckets)-104e6) > 1 {
		t.Fatal("bucket bytes do not cover the gradient")
	}
}

func TestPlanBucketsSmallModelOneBucket(t *testing.T) {
	s := UniformRing(4, 10, 1e-5)
	plan, err := PlanBuckets(s, 5e6, DefaultBucketBytes)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumBuckets != 1 {
		t.Fatalf("NumBuckets = %d, want 1", plan.NumBuckets)
	}
	if plan.To != 0 {
		t.Fatalf("To = %v, want 0 for a single bucket", plan.To)
	}
	if plan.Tu != plan.TComm {
		t.Fatal("single bucket: Tu must equal TComm")
	}
}

func TestPlanBucketsErrors(t *testing.T) {
	s := UniformRing(2, 10, 0)
	if _, err := PlanBuckets(s, 0, DefaultBucketBytes); err == nil {
		t.Fatal("zero gradient size accepted")
	}
	if _, err := PlanBuckets(s, 1e6, 0); err == nil {
		t.Fatal("zero bucket size accepted")
	}
	if _, err := PlanBuckets(RingSpec{}, 1e6, DefaultBucketBytes); err == nil {
		t.Fatal("invalid ring accepted")
	}
}

func TestPlanBucketsMoreBucketsForBiggerModels(t *testing.T) {
	s := UniformRing(4, 10, 1e-5)
	small, _ := PlanBuckets(s, 20e6, DefaultBucketBytes)  // NeuMF-scale
	large, _ := PlanBuckets(s, 440e6, DefaultBucketBytes) // BERT-scale
	if large.NumBuckets <= small.NumBuckets {
		t.Fatalf("bucket counts: large %d <= small %d", large.NumBuckets, small.NumBuckets)
	}
}

func TestOverlapGamma(t *testing.T) {
	if OverlapGamma(1) != 1 {
		t.Fatal("gamma with 1 bucket must be 1 (no overlap possible)")
	}
	if OverlapGamma(4) != 0.25 {
		t.Fatalf("gamma(4) = %v, want 0.25", OverlapGamma(4))
	}
	if OverlapGamma(0) != 1 {
		t.Fatal("gamma with invalid bucket count should be 1")
	}
}

func TestUniformRing(t *testing.T) {
	s := UniformRing(3, 12.5, 2e-5)
	if s.Nodes() != 3 || s.LatencyS != 2e-5 {
		t.Fatalf("UniformRing = %+v", s)
	}
	for _, bw := range s.LinkGBps {
		if bw != 12.5 {
			t.Fatal("non-uniform bandwidth")
		}
	}
}
