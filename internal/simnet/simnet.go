// Package simnet models the cluster interconnect and the ring all-reduce
// used for gradient synchronization (Section 3.2.2 of the paper).
//
// PyTorch DDP splits the gradient into fixed-size buckets; each bucket is
// synchronized with a bandwidth-optimal ring all-reduce as soon as every
// node has finished computing it, so all buckets except the last overlap
// with backpropagation. In-flight all-reduces on one process group
// serialize, so the per-batch communication time decomposes as
//
//	T_comm = T_o + T_u
//
// where T_u is the (non-overlappable) last-bucket time and T_o covers all
// earlier buckets. Both are constants for a fixed model size and network,
// which is exactly what Cannikin learns online.
package simnet

import (
	"fmt"
	"math"
)

// DefaultBucketBytes matches PyTorch DDP's 25 MB gradient bucket cap.
const DefaultBucketBytes = 25 << 20

// RingSpec describes the all-reduce ring: per-node link bandwidths and a
// uniform per-hop latency. A heterogeneous cluster may have heterogeneous
// links; the ring is throttled by its slowest link.
type RingSpec struct {
	// LinkGBps has one entry per node: that node's bidirectional link
	// bandwidth in GB/s.
	LinkGBps []float64
	// LatencyS is the one-hop message latency in seconds.
	LatencyS float64
}

// Validate checks the spec is simulatable.
func (s RingSpec) Validate() error {
	if len(s.LinkGBps) < 1 {
		return fmt.Errorf("simnet: ring needs at least one node")
	}
	for i, bw := range s.LinkGBps {
		if bw <= 0 {
			return fmt.Errorf("simnet: node %d has non-positive bandwidth %v", i, bw)
		}
	}
	if s.LatencyS < 0 {
		return fmt.Errorf("simnet: negative latency %v", s.LatencyS)
	}
	return nil
}

// Nodes returns the ring size.
func (s RingSpec) Nodes() int { return len(s.LinkGBps) }

// bottleneckBps returns the slowest link in bytes/second.
func (s RingSpec) bottleneckBps() float64 {
	minBw := math.Inf(1)
	for _, bw := range s.LinkGBps {
		if bw < minBw {
			minBw = bw
		}
	}
	return minBw * 1e9
}

// AllReduceTime returns the time for one ring all-reduce of size bytes
// across the ring: 2(n-1)/n of the payload crosses the bottleneck link,
// plus 2(n-1) hop latencies (reduce-scatter then all-gather).
func (s RingSpec) AllReduceTime(bytes float64) float64 {
	n := float64(s.Nodes())
	if n == 1 {
		return 0
	}
	return 2*(n-1)/n*bytes/s.bottleneckBps() + 2*(n-1)*s.LatencyS
}

// BucketPlan is the gradient bucket schedule for one model on one ring.
type BucketPlan struct {
	NumBuckets  int
	BucketBytes float64
	// PerBucket is the all-reduce time of one bucket.
	PerBucket float64
	// To is the synchronization time of all buckets except the last; Tu is
	// the last bucket's. TComm = To + Tu.
	To, Tu, TComm float64
}

// PlanBuckets computes the bucket schedule for a model of paramBytes
// gradients with the given bucket cap (use DefaultBucketBytes for DDP's
// default). It returns an error for invalid inputs.
func PlanBuckets(spec RingSpec, paramBytes, bucketBytes float64) (BucketPlan, error) {
	if err := spec.Validate(); err != nil {
		return BucketPlan{}, err
	}
	if paramBytes <= 0 {
		return BucketPlan{}, fmt.Errorf("simnet: non-positive gradient size %v", paramBytes)
	}
	if bucketBytes <= 0 {
		return BucketPlan{}, fmt.Errorf("simnet: non-positive bucket size %v", bucketBytes)
	}
	nb := int(math.Ceil(paramBytes / bucketBytes))
	if nb < 1 {
		nb = 1
	}
	per := spec.AllReduceTime(paramBytes / float64(nb))
	plan := BucketPlan{
		NumBuckets:  nb,
		BucketBytes: paramBytes / float64(nb),
		PerBucket:   per,
		Tu:          per,
		To:          per * float64(nb-1),
	}
	plan.TComm = plan.To + plan.Tu
	return plan, nil
}

// OverlapGamma returns the overlap ratio γ: the fraction of
// backpropagation that must complete before the first gradient bucket is
// ready for synchronization. Gradients become available in reverse layer
// order, so with nb equal buckets the first is ready after 1/nb of the
// backward pass.
func OverlapGamma(numBuckets int) float64 {
	if numBuckets < 1 {
		return 1
	}
	return 1 / float64(numBuckets)
}

// UniformRing builds a ring of n nodes with identical links.
func UniformRing(n int, gbps, latencyS float64) RingSpec {
	links := make([]float64, n)
	for i := range links {
		links[i] = gbps
	}
	return RingSpec{LinkGBps: links, LatencyS: latencyS}
}
