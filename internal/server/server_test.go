package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cannikin"

	"cannikin/internal/jobs"
	"cannikin/internal/runspec"
)

// slowRunner is a controllable fake for HTTP-layer tests.
type slowRunner struct {
	epochs int
	delay  time.Duration
	gate   chan struct{}
}

func (r *slowRunner) Run(ctx context.Context, spec *runspec.Spec, onEpoch func(jobs.Epoch) error) (*jobs.Outcome, error) {
	if r.gate != nil {
		select {
		case <-r.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	for e := 0; e < r.epochs; e++ {
		if r.delay > 0 {
			select {
			case <-time.After(r.delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if err := onEpoch(jobs.Epoch{Epoch: e, Batch: 32, Metric: float64(e)}); err != nil {
			return nil, err
		}
	}
	return &jobs.Outcome{Epochs: r.epochs}, nil
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postSpec(t *testing.T, ts *httptest.Server, body string) (*http.Response, *jobs.JobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var e struct{ Error string }
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp, &jobs.JobStatus{Error: e.Error}
	}
	var st jobs.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return resp, &st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) *jobs.JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s = %d", id, resp.StatusCode)
	}
	var st jobs.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

func waitDone(t *testing.T, ts *httptest.Server, id string) *jobs.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return nil
}

// TestSubmitStatusRoundTrip is the spec round-trip guarantee: a JSON spec
// posted to the server comes back from /jobs/{id} field-identical —
// defaults applied exactly as a -spec file would get them, fault mini-DSL
// events included.
func TestSubmitStatusRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pool:   jobs.PoolConfig{Devices: 4, Seed: 1},
		Runner: &slowRunner{epochs: 1},
	})
	body := `{
		"mlp": true,
		"mlp_batches": [8, 4],
		"epochs": 3,
		"seed": 99,
		"backend": "live",
		"comm": "merged",
		"bucket_bytes": 4096,
		"faults": [
			{"kind": "stall", "worker": 0, "step": 3, "delay": 40000000},
			{"kind": "kill", "worker": 1, "step": 8}
		],
		"fault_replan": "optperf"
	}`
	want, err := runspec.Decode(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, st := postSpec(t, ts, body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /jobs = %d (%s)", resp.StatusCode, st.Error)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}
	if !reflect.DeepEqual(st.Spec, want) {
		t.Fatalf("submit echo diverged:\n got %+v\nwant %+v", st.Spec, want)
	}
	got := getStatus(t, ts, st.ID)
	if !reflect.DeepEqual(got.Spec, want) {
		t.Fatalf("status echo diverged:\n got %+v\nwant %+v", got.Spec, want)
	}
	// The mini-DSL itself round-trips through the echoed events.
	dsl := runspec.FormatFaults(got.Spec.Faults)
	back, err := runspec.ParseFaults(dsl)
	if err != nil || !reflect.DeepEqual(back, want.Faults) {
		t.Fatalf("fault DSL round-trip: %q → %+v (err %v)", dsl, back, err)
	}
}

func TestSubmitRejectsBadBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pool:   jobs.PoolConfig{Devices: 2, Seed: 1},
		Runner: &slowRunner{epochs: 1},
	})
	cases := []struct {
		name, body string
		code       int
	}{
		{"malformed json", `{"mlp": `, http.StatusBadRequest},
		{"unknown field", `{"no_such_field": 1}`, http.StatusBadRequest},
		{"too wide", `{"mlp": true, "mlp_batches": [1,1,1]}`, http.StatusBadRequest},
		{"bad preset", `{"cluster": "z"}`, http.StatusBadRequest},
		{"tcp transport", `{"mlp": true, "mlp_batches": [4,4], "transport": "tcp"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := postSpec(t, ts, tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: code = %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
}

// TestQueueFull429: admission backpressure surfaces as HTTP 429 with both
// a Retry-After header and a machine-readable hint in the body.
func TestQueueFull429(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	_, ts := newTestServer(t, Config{
		Pool:       jobs.PoolConfig{Devices: 2, Seed: 1},
		Runner:     &slowRunner{epochs: 1, gate: gate},
		MaxQueue:   1,
		RetryAfter: 2 * time.Second,
	})
	spec := `{"mlp": true, "mlp_batches": [4, 4]}`
	for i := 0; i < 2; i++ { // one runs, one queues
		if resp, st := postSpec(t, ts, spec); resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d = %d (%s)", i, resp.StatusCode, st.Error)
		}
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	var body struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RetryAfterMS != 2000 || body.Error == "" {
		t.Fatalf("body = %+v", body)
	}
}

func TestCancelAndNotFound(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	_, ts := newTestServer(t, Config{
		Pool:   jobs.PoolConfig{Devices: 2, Seed: 1},
		Runner: &slowRunner{epochs: 1, gate: gate},
	})
	_, st := postSpec(t, ts, `{"mlp": true, "mlp_batches": [4, 4]}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	if got := waitDone(t, ts, st.ID); got.State != jobs.StateCanceled {
		t.Fatalf("state after cancel = %s", got.State)
	}
	for _, path := range []string{"/jobs/nope", "/jobs/nope/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/nope", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown = %d, want 404", resp.StatusCode)
	}
}

// TestStreamNDJSON: the stream endpoint delivers every epoch in order as
// one JSON object per line and closes after the terminal state event.
func TestStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pool:   jobs.PoolConfig{Devices: 2, Seed: 1},
		Runner: &slowRunner{epochs: 4, delay: 2 * time.Millisecond},
	})
	_, st := postSpec(t, ts, `{"mlp": true, "mlp_batches": [4, 4]}`)
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var epochs []int
	var final jobs.State
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "epoch":
			epochs = append(epochs, ev.Epoch.Epoch)
		case "state":
			final = ev.State
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final != jobs.StateDone {
		t.Fatalf("final state = %s", final)
	}
	if len(epochs) != 4 {
		t.Fatalf("streamed %d epochs: %v", len(epochs), epochs)
	}
	for i, e := range epochs {
		if e != i {
			t.Fatalf("epochs out of order: %v", epochs)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Pool:   jobs.PoolConfig{Devices: 2, Seed: 1},
		Runner: &slowRunner{epochs: 1},
	})
	_, st := postSpec(t, ts, `{"mlp": true, "mlp_batches": [4, 4]}`)
	waitDone(t, ts, st.ID)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats jobs.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Done != 1 || stats.Devices != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d", resp2.StatusCode)
	}
	// Submissions during drain are 503.
	resp3, _ := postSpec(t, ts, `{"mlp": true, "mlp_batches": [4, 4]}`)
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d", resp3.StatusCode)
	}
}

// TestDeterminismUnderMultiTenancy is the acceptance differential: a job
// submitted to the busy service produces bitwise-identical final weights
// (same sha256 fingerprint) as the same spec run directly through the
// public TrainMLP API, concurrent tenants notwithstanding. The scheduler
// only decides placement — capacity tokens — and never touches the
// training arithmetic.
func TestDeterminismUnderMultiTenancy(t *testing.T) {
	// Direct run of the reference spec through the library.
	ref := cannikin.MLPConfig{
		LocalBatches: []int{8, 4},
		Epochs:       2,
		Seed:         77,
		Backend:      "live",
	}
	direct, err := cannikin.TrainMLP(ref)
	if err != nil {
		t.Fatal(err)
	}
	wantHash := WeightsHash(direct.FinalWeights)

	// Same spec through the service, racing three other tenants with
	// different seeds and shapes (the real TrainRunner, no fakes).
	_, ts := newTestServer(t, Config{
		Pool: jobs.PoolConfig{Devices: 8, Seed: 5, Jitter: 0.1},
	})
	refBody := `{"mlp": true, "mlp_batches": [8, 4], "epochs": 2, "seed": 77, "backend": "live"}`
	others := []string{
		`{"mlp": true, "mlp_batches": [4, 4], "epochs": 2, "seed": 1}`,
		`{"mlp": true, "mlp_batches": [8], "epochs": 2, "seed": 2, "backend": "live"}`,
		`{"mlp": true, "mlp_batches": [2, 2, 2], "epochs": 2, "seed": 3}`,
	}
	var wg sync.WaitGroup
	ids := make([]string, len(others))
	for i, body := range others {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			resp, st := postSpec(t, ts, body)
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("tenant %d = %d (%s)", i, resp.StatusCode, st.Error)
				return
			}
			ids[i] = st.ID
		}(i, body)
	}
	resp, st := postSpec(t, ts, refBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("reference submit = %d (%s)", resp.StatusCode, st.Error)
	}
	wg.Wait()
	got := waitDone(t, ts, st.ID)
	if got.State != jobs.StateDone {
		t.Fatalf("reference job = %s (err %q)", got.State, got.Error)
	}
	if got.Outcome == nil || got.Outcome.WeightsSHA256 != wantHash {
		t.Fatalf("weights diverged under multi-tenancy:\n server %+v\n direct %s", got.Outcome, wantHash)
	}
	if got.Outcome.Steps != direct.Steps || got.Outcome.FinalAccuracy != direct.FinalAccuracy {
		t.Fatalf("outcome diverged: server %+v vs direct steps=%d acc=%v",
			got.Outcome, direct.Steps, direct.FinalAccuracy)
	}
	for i, id := range ids {
		if id == "" {
			continue
		}
		if st := waitDone(t, ts, id); st.State != jobs.StateDone {
			t.Fatalf("tenant %d = %s (err %q)", i, st.State, st.Error)
		}
	}
}

// TestSimJobThroughService: a simulated-cluster spec runs end to end and
// reports convergence metrics through the unified epoch shape.
func TestSimJobThroughService(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pool: jobs.PoolConfig{Devices: 4, Seed: 2},
	})
	resp, st := postSpec(t, ts, `{"cluster": "a", "workload": "cifar10", "system": "pytorch-ddp", "seed": 3, "epochs": 4}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d (%s)", resp.StatusCode, st.Error)
	}
	got := waitDone(t, ts, st.ID)
	if got.State != jobs.StateDone {
		t.Fatalf("sim job = %s (err %q)", got.State, got.Error)
	}
	if got.Outcome == nil || got.Outcome.Epochs == 0 {
		t.Fatalf("outcome = %+v", got.Outcome)
	}
	if len(got.Epochs) != got.Outcome.Epochs {
		t.Fatalf("trace %d entries for %d epochs", len(got.Epochs), got.Outcome.Epochs)
	}
	if got.Epochs[0].Metric == 0 && got.Epochs[0].Batch == 0 {
		t.Fatalf("sim epoch not populated: %+v", got.Epochs[0])
	}
}
