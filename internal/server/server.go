// Package server exposes the multi-tenant job scheduler (internal/jobs)
// as an HTTP/JSON service — the cannikin-serve binary's engine.
//
// API (all JSON):
//
//	POST   /jobs             submit a runspec.Spec body → 201 + job status
//	GET    /jobs             list every job (no epoch traces)
//	GET    /jobs/{id}        one job's full status, epoch trace included
//	DELETE /jobs/{id}        cancel (idempotent on settled jobs)
//	GET    /jobs/{id}/stream NDJSON event stream: epochs, then final state
//	GET    /stats            scheduler aggregates (goodput, queue, latency)
//	GET    /healthz          liveness (503 while draining)
//
// Backpressure surfaces as HTTP 429 with a Retry-After header when the
// bounded queue is full; specs the pool cannot place are 400; submissions
// during drain are 503.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"cannikin/internal/jobs"
	"cannikin/internal/runspec"
)

// Config configures a Server.
type Config struct {
	// Pool sizes the scheduler's device pool (required).
	Pool jobs.PoolConfig
	// MaxQueue, Policy, RetryAfter, GNSAlpha pass through to jobs.Config.
	MaxQueue   int
	Policy     string
	RetryAfter time.Duration
	GNSAlpha   float64
	// Runner overrides the default TrainRunner (tests inject fakes).
	Runner jobs.Runner
}

// Server is the HTTP front end over one jobs.Scheduler.
type Server struct {
	sched *jobs.Scheduler
	mux   *http.ServeMux
}

// New builds the service. No listener is opened: the caller mounts the
// Server as an http.Handler.
func New(cfg Config) (*Server, error) {
	runner := cfg.Runner
	if runner == nil {
		runner = TrainRunner{}
	}
	sched, err := jobs.NewScheduler(jobs.Config{
		Pool:       cfg.Pool,
		Runner:     runner,
		MaxQueue:   cfg.MaxQueue,
		Policy:     cfg.Policy,
		RetryAfter: cfg.RetryAfter,
		GNSAlpha:   cfg.GNSAlpha,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{sched: sched, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Scheduler exposes the underlying scheduler (the load-test harness reads
// its stats directly).
func (s *Server) Scheduler() *jobs.Scheduler { return s.sched }

// Drain gracefully shuts the scheduler down; see jobs.Scheduler.Drain.
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// errorBody is the uniform JSON error shape.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429 responses.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	var qf *jobs.QueueFullError
	switch {
	case errors.As(err, &qf):
		w.Header().Set("Retry-After", strconv.Itoa(int((qf.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error:        qf.Error(),
			RetryAfterMS: qf.RetryAfter.Milliseconds(),
		})
	case errors.Is(err, jobs.ErrBadSpec):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case errors.Is(err, jobs.ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, jobs.ErrNotFound):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// handleSubmit parses the request body with runspec.Decode — the same
// defaults-plus-strict-fields semantics as a -spec file — and admits it.
// The response echoes the admitted job's status, spec included, so clients
// can verify the round-trip field for field.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := runspec.Decode(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if spec.Transport == runspec.TransportTCP {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: "transport \"tcp\" jobs are not supported: the service runs workers in-process",
		})
		return
	}
	id, err := s.sched.Submit(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	st, err := s.sched.Status(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+id)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []*jobs.JobStatus `json:"jobs"`
	}{s.sched.List()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.sched.Status(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		s.writeError(w, err)
		return
	}
	st, err := s.sched.Status(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleStream replays the job's epochs so far and then follows it live as
// newline-delimited JSON, one jobs.Event per line, ending with the
// terminal state event. The connection closes when the job settles or the
// client goes away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	ch, err := s.sched.Watch(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	if st.Draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
