package server

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math"
	"time"

	"cannikin"

	"cannikin/internal/jobs"
	"cannikin/internal/runspec"
)

// TrainRunner executes admitted jobs on the public cannikin API: MLP specs
// run real data-parallel training via TrainMLPContext, simulated-cluster
// specs run via TrainContext. Allocation never touches the training
// arithmetic — every run is driven purely by its own spec (seed, batches,
// system), so a job's result is bitwise-identical to the same spec run
// directly through the library, regardless of what else the service is
// doing.
type TrainRunner struct{}

// Run implements jobs.Runner.
func (TrainRunner) Run(ctx context.Context, spec *runspec.Spec, onEpoch func(jobs.Epoch) error) (*jobs.Outcome, error) {
	if spec.MLP {
		return runMLPJob(ctx, spec, onEpoch)
	}
	return runSimJob(ctx, spec, onEpoch)
}

// runMLPJob mirrors the cannikin command's spec lowering for -mlp runs.
func runMLPJob(ctx context.Context, spec *runspec.Spec, onEpoch func(jobs.Epoch) error) (*jobs.Outcome, error) {
	if spec.Transport == runspec.TransportTCP {
		return nil, fmt.Errorf("server: tcp transport jobs are not supported (the service runs workers in-process)")
	}
	cfg := cannikin.MLPConfig{
		LocalBatches: spec.MLPBatches,
		Backend:      spec.Backend,
		CommMode:     spec.CommMode,
		Seed:         spec.Seed,
		BucketBytes:  spec.BucketBytes,
		KernelShards: spec.KernelShards,
		Allreduce:    spec.Allreduce,
		LinkAlpha:    spec.LinkAlpha,
		LinkBeta:     spec.LinkBeta,
		Fault:        faultsToConfig(spec.Faults, spec.FaultReplan),
	}
	if spec.Epochs > 0 {
		cfg.Epochs = spec.Epochs
	}
	start := time.Now()
	cfg.OnEpoch = func(e cannikin.MLPEpoch) error {
		return onEpoch(jobs.Epoch{
			Epoch:        e.Epoch,
			Batch:        e.GlobalBatch,
			Loss:         e.Loss,
			Accuracy:     e.Accuracy,
			Noise:        e.Noise,
			LearningRate: e.LearningRate,
			Elapsed:      time.Since(start).Seconds(),
		})
	}
	res, err := cannikin.TrainMLPContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &jobs.Outcome{
		Epochs:        len(res.EpochLoss),
		FinalAccuracy: res.FinalAccuracy,
		Steps:         res.Steps,
		WeightsSHA256: WeightsHash(res.FinalWeights),
		TotalTime:     time.Since(start).Seconds(),
	}, nil
}

// runSimJob mirrors the cannikin command's spec lowering for simulated
// cluster runs.
func runSimJob(ctx context.Context, spec *runspec.Spec, onEpoch func(jobs.Epoch) error) (*jobs.Outcome, error) {
	cfg := cannikin.TrainConfig{
		Workload:   spec.Workload,
		System:     cannikin.SystemKind(spec.System),
		Seed:       spec.Seed,
		MaxEpochs:  spec.Epochs,
		FixedBatch: spec.Batch,
		Audit:      cannikin.AuditLevel(spec.Audit),
	}
	if len(spec.Models) > 0 {
		cfg.Cluster = cannikin.ClusterConfig{Models: spec.Models}
	} else {
		cfg.Cluster = cannikin.ClusterConfig{Preset: spec.Cluster}
	}
	if spec.Chaos > 0 {
		cfg.Chaos = cannikin.ChaosConfig{Churn: spec.Chaos}
	}
	cfg.OnEpoch = func(e cannikin.EpochReport) error {
		return onEpoch(jobs.Epoch{
			Epoch:   e.Epoch,
			Batch:   e.TotalBatch,
			Metric:  e.Metric,
			Elapsed: e.ElapsedTime,
		})
	}
	rep, err := cannikin.TrainContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out := &jobs.Outcome{
		Converged: rep.Converged,
		Epochs:    len(rep.Epochs),
		TotalTime: rep.TotalTime,
	}
	if n := len(rep.Epochs); n > 0 {
		out.FinalMetric = rep.Epochs[n-1].Metric
	}
	return out, nil
}

// WeightsHash fingerprints a trained weight vector: sha256 over the
// IEEE-754 bit patterns, little-endian. Identical to the cannikin
// command's fingerprint, so server outcomes and CLI runs are directly
// comparable.
func WeightsHash(weights []float64) string {
	h := sha256.New()
	var word [8]byte
	for _, v := range weights {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			word[i] = byte(bits >> (8 * i))
		}
		h.Write(word[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// faultsToConfig converts runspec fault events to the public fault config;
// nil when no events and no replan policy are present.
func faultsToConfig(events []runspec.Fault, replan string) *cannikin.FaultConfig {
	if len(events) == 0 && replan == "" {
		return nil
	}
	cfg := &cannikin.FaultConfig{Replan: replan}
	for _, f := range events {
		ev := cannikin.FaultEvent{Step: f.Step, Worker: f.Worker, Delay: f.Delay, Count: f.Count}
		switch f.Kind {
		case "kill":
			ev.Kind = cannikin.FaultKillWorker
		case "stall":
			ev.Kind = cannikin.FaultStallCompute
		case "delay":
			ev.Kind = cannikin.FaultDelayMsg
		case "drop":
			ev.Kind = cannikin.FaultDropMsg
		}
		cfg.Events = append(cfg.Events, ev)
	}
	return cfg
}
