// Package gpu models the heterogeneous accelerators of the paper's
// testbeds. Real GPUs are unavailable in this reproduction, so each device
// is a parametric performance model derived from published specifications:
// per-sample forward/backward compute scales with effective FLOPS, data
// loading scales with host bandwidth, and the per-batch fixed costs (kernel
// launches, parameter updates) are independent of batch size. This yields
// exactly the linear compute-time model Cannikin learns online:
//
//	a_i(b) = q_i*b + s_i   (data loading + forward + parameter update)
//	P_i(b) = k_i*b + m_i   (backpropagation)
//
// with per-device coefficients, plus a memory cap on the local batch size.
package gpu

import (
	"fmt"
	"math"
	"sort"

	"cannikin/internal/rng"
)

// Model is a GPU product with its published specifications. FP16 TFLOPS is
// the paper's Table 1 metric; EffTFLOPS is the sustained training throughput
// we assume (dense-training utilization differs across architectures, and
// pre-Volta parts lack usable FP16 tensor throughput).
type Model struct {
	Name       string
	Year       int
	Arch       string
	CUDACores  int
	MemoryGB   float64
	FP16TFLOPS float64
	// EffTFLOPS is the effective sustained training throughput in TFLOPS.
	EffTFLOPS float64
	// HostGBps is the effective host->device data loading bandwidth.
	HostGBps float64
	// MemGBps is the device memory bandwidth (drives fixed per-batch costs).
	MemGBps float64
}

// Catalog lists the GPU models used across the paper (Tables 1, 3, 4).
// Effective throughputs are scaled so relative speeds match the paper's
// observations (e.g. A100 about 3.4x RTX 6000 in Section 6).
var Catalog = map[string]Model{
	"P100":    {Name: "Tesla P100", Year: 2016, Arch: "Pascal", CUDACores: 3584, MemoryGB: 16, FP16TFLOPS: 21.2, EffTFLOPS: 6.4, HostGBps: 8, MemGBps: 732},
	"V100":    {Name: "Tesla V100", Year: 2017, Arch: "Volta", CUDACores: 5120, MemoryGB: 32, FP16TFLOPS: 31.4, EffTFLOPS: 10.5, HostGBps: 10, MemGBps: 900},
	"A100":    {Name: "A100", Year: 2020, Arch: "Ampere", CUDACores: 6912, MemoryGB: 40, FP16TFLOPS: 77.97, EffTFLOPS: 26.0, HostGBps: 16, MemGBps: 1555},
	"H100":    {Name: "H100", Year: 2022, Arch: "Hopper", CUDACores: 16896, MemoryGB: 80, FP16TFLOPS: 204.9, EffTFLOPS: 68.0, HostGBps: 26, MemGBps: 3350},
	"RTX6000": {Name: "Quadro RTX 6000", Year: 2018, Arch: "Turing", CUDACores: 4608, MemoryGB: 24, FP16TFLOPS: 32.6, EffTFLOPS: 7.6, HostGBps: 10, MemGBps: 672},
	"A5000":   {Name: "RTX A5000", Year: 2021, Arch: "Ampere", CUDACores: 8192, MemoryGB: 24, FP16TFLOPS: 27.8, EffTFLOPS: 9.3, HostGBps: 12, MemGBps: 768},
	"A4000":   {Name: "RTX A4000", Year: 2021, Arch: "Ampere", CUDACores: 6144, MemoryGB: 16, FP16TFLOPS: 19.2, EffTFLOPS: 6.2, HostGBps: 10, MemGBps: 448},
	"P4000":   {Name: "Quadro P4000", Year: 2017, Arch: "Pascal", CUDACores: 1792, MemoryGB: 8, FP16TFLOPS: 5.3, EffTFLOPS: 2.4, HostGBps: 6, MemGBps: 243},
	"T4":      {Name: "Tesla T4", Year: 2018, Arch: "Turing", CUDACores: 2560, MemoryGB: 16, FP16TFLOPS: 65.1, EffTFLOPS: 4.1, HostGBps: 8, MemGBps: 300},
	"RTX3090": {Name: "GeForce RTX 3090", Year: 2020, Arch: "Ampere", CUDACores: 10496, MemoryGB: 24, FP16TFLOPS: 35.6, EffTFLOPS: 11.8, HostGBps: 12, MemGBps: 936},
	"A40":     {Name: "A40", Year: 2020, Arch: "Ampere", CUDACores: 10752, MemoryGB: 48, FP16TFLOPS: 37.4, EffTFLOPS: 12.4, HostGBps: 12, MemGBps: 696},
	"A30":     {Name: "A30", Year: 2021, Arch: "Ampere", CUDACores: 3584, MemoryGB: 24, FP16TFLOPS: 165, EffTFLOPS: 10.3, HostGBps: 12, MemGBps: 933},
	"L4":      {Name: "L4", Year: 2023, Arch: "Ada Lovelace", CUDACores: 7424, MemoryGB: 24, FP16TFLOPS: 121, EffTFLOPS: 7.6, HostGBps: 12, MemGBps: 300},
}

// ModelNames returns the catalog keys in deterministic order.
func ModelNames() []string {
	names := make([]string, 0, len(Catalog))
	for k := range Catalog {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// JobProfile characterizes one training job's per-sample and per-batch
// resource demands, derived from the model architecture (Table 5).
type JobProfile struct {
	Name string
	// FwdFLOPsPerSample and BwdFLOPsPerSample are the forward and backward
	// pass costs of one sample.
	FwdFLOPsPerSample float64
	BwdFLOPsPerSample float64
	// BytesPerSample is the data-loading volume of one sample.
	BytesPerSample float64
	// CPUWorkPerSample is the host-side preprocessing cost of one sample
	// (decode, augmentation, tokenization) in seconds on a reference CPU.
	// It contributes to a_i(b) but not to backpropagation, so nodes whose
	// CPU speed differs from their GPU speed have different a/P ratios —
	// the structural heterogeneity behind the paper's mixed-bottleneck
	// general case (Tables 3 and 4 pair every GPU with a different CPU).
	CPUWorkPerSample float64
	// ParamBytes is the gradient/model size exchanged by all-reduce.
	ParamBytes float64
	// UpdateFLOPs is the optimizer step cost per batch (batch-independent).
	UpdateFLOPs float64
	// MemPerSampleBytes is the activation memory per sample.
	MemPerSampleBytes float64
	// ModelMemBytes is the resident memory for weights + optimizer state.
	ModelMemBytes float64
}

// Validate reports whether the profile is complete enough to simulate.
func (p JobProfile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("gpu: profile missing name")
	case p.FwdFLOPsPerSample <= 0 || p.BwdFLOPsPerSample <= 0:
		return fmt.Errorf("gpu: profile %q has non-positive compute costs", p.Name)
	case p.ParamBytes <= 0:
		return fmt.Errorf("gpu: profile %q has non-positive parameter size", p.Name)
	case p.MemPerSampleBytes <= 0:
		return fmt.Errorf("gpu: profile %q has non-positive per-sample memory", p.Name)
	}
	return nil
}

// ComputeCoeffs are the linear compute-time model coefficients of one
// device for one job, all in seconds (per sample for Q/K, per batch for
// S/M).
type ComputeCoeffs struct {
	Q, S float64 // a(b) = Q*b + S
	K, M float64 // P(b) = K*b + M
}

// A returns the non-backprop time for local batch size b.
func (c ComputeCoeffs) A(b float64) float64 { return c.Q*b + c.S }

// P returns the backpropagation time for local batch size b.
func (c ComputeCoeffs) P(b float64) float64 { return c.K*b + c.M }

// Compute returns the full local compute time a(b) + P(b).
func (c ComputeCoeffs) Compute(b float64) float64 { return c.A(b) + c.P(b) }

// Device is one accelerator in a cluster. SpeedFraction < 1 models
// sharing-induced heterogeneity (Section 6: a co-located dummy workload
// steals compute and memory on an otherwise identical GPU).
type Device struct {
	ID    string
	Model Model
	// SpeedFraction in (0, 1] is the share of the device's compute
	// available to this job.
	SpeedFraction float64
	// MemFraction in (0, 1] is the share of device memory available.
	MemFraction float64
	// CPUSpeed is the host CPU's relative speed (1 = reference); it scales
	// data loading and preprocessing but not GPU compute.
	CPUSpeed float64
	// NoiseSigma is the log-space standard deviation of per-measurement
	// timing noise.
	NoiseSigma float64

	noise *rng.Source
}

// NewDevice returns a dedicated (unshared) device of the named model.
// The RNG source seeds the device's measurement noise stream.
func NewDevice(id, modelKey string, src *rng.Source) (*Device, error) {
	m, ok := Catalog[modelKey]
	if !ok {
		return nil, fmt.Errorf("gpu: unknown model %q", modelKey)
	}
	return &Device{
		ID:            id,
		Model:         m,
		SpeedFraction: 1,
		MemFraction:   1,
		CPUSpeed:      1,
		NoiseSigma:    0.015,
		noise:         src.Split("device/" + id),
	}, nil
}

// SetSharing constrains the device to the given compute and memory
// fractions, modeling a co-located tenant.
func (d *Device) SetSharing(speedFraction, memFraction float64) error {
	if speedFraction <= 0 || speedFraction > 1 || memFraction <= 0 || memFraction > 1 {
		return fmt.Errorf("gpu: sharing fractions must be in (0, 1], got speed=%v mem=%v", speedFraction, memFraction)
	}
	d.SpeedFraction = speedFraction
	d.MemFraction = memFraction
	return nil
}

// effFLOPS returns the sustained FLOPS available to the job.
func (d *Device) effFLOPS() float64 {
	return d.Model.EffTFLOPS * 1e12 * d.SpeedFraction
}

// Coeffs derives the ground-truth linear compute model of this device for
// the given job. Cannikin never reads these directly: it learns them from
// noisy measurements.
func (d *Device) Coeffs(p JobProfile) ComputeCoeffs {
	flops := d.effFLOPS()
	hostBps := d.Model.HostGBps * 1e9 * d.SpeedFraction
	memBps := d.Model.MemGBps * 1e9 * d.SpeedFraction
	cpu := d.CPUSpeed * d.SpeedFraction
	if cpu <= 0 {
		cpu = d.SpeedFraction
	}

	// Per-sample: host preprocessing + input transfer + forward compute;
	// backward compute.
	q := p.FwdFLOPsPerSample/flops + p.BytesPerSample/hostBps + p.CPUWorkPerSample/cpu
	k := p.BwdFLOPsPerSample / flops

	// Per-batch fixed costs: kernel launch overhead grows weakly with the
	// model's size; parameter update touches all weights and optimizer
	// state; the backward pass re-reads weights once.
	launches := 1e-4 * (1 + math.Log1p(p.ParamBytes/1e6))
	s := launches + p.UpdateFLOPs/flops + 3*p.ParamBytes/memBps
	m := launches + p.ParamBytes/memBps
	return ComputeCoeffs{Q: q, S: s, K: k, M: m}
}

// MaxBatch returns the largest local batch size that fits in the device
// memory available to the job, at least 1 when even the model barely fits.
func (d *Device) MaxBatch(p JobProfile) int {
	avail := d.Model.MemoryGB*1e9*d.MemFraction*0.92 - p.ModelMemBytes
	if avail <= 0 {
		return 0
	}
	n := int(avail / p.MemPerSampleBytes)
	if n < 1 {
		return 0
	}
	return n
}

// Measurement is one observed batch execution on a device.
type Measurement struct {
	Batch int
	// A is the measured non-backprop time (data loading + forward +
	// parameter update); P is the measured backpropagation time.
	A, P float64
}

// MeasureCompute simulates executing one batch of size b and returns the
// observed (noisy) timing split. It panics if b is not positive.
func (d *Device) MeasureCompute(p JobProfile, b int) Measurement {
	if b <= 0 {
		panic(fmt.Sprintf("gpu: MeasureCompute with batch %d", b))
	}
	c := d.Coeffs(p)
	return Measurement{
		Batch: b,
		A:     c.A(float64(b)) * d.noise.LogNormFactor(d.NoiseSigma),
		P:     c.P(float64(b)) * d.noise.LogNormFactor(d.NoiseSigma),
	}
}

// SpeedRatio returns how many times faster a is than b for the given job at
// batch size refBatch (useful for describing cluster heterogeneity).
func SpeedRatio(a, b *Device, p JobProfile, refBatch int) float64 {
	ta := a.Coeffs(p).Compute(float64(refBatch))
	tb := b.Coeffs(p).Compute(float64(refBatch))
	return tb / ta
}
