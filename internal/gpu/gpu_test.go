package gpu

import (
	"math"
	"testing"

	"cannikin/internal/rng"
	"cannikin/internal/stats"
)

// testProfile is a ResNet-50-scale job used across the tests.
func testProfile() JobProfile {
	return JobProfile{
		Name:              "resnet50-like",
		FwdFLOPsPerSample: 4.1e9,
		BwdFLOPsPerSample: 8.2e9,
		BytesPerSample:    600e3,
		ParamBytes:        102e6, // 25.6M float32 params
		UpdateFLOPs:       5 * 25.6e6,
		MemPerSampleBytes: 30e6,
		ModelMemBytes:     3 * 102e6,
	}
}

func newTestDevice(t *testing.T, model string) *Device {
	t.Helper()
	d, err := NewDevice("dev0-"+model, model, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCatalogComplete(t *testing.T) {
	for _, key := range []string{"P100", "V100", "A100", "H100", "RTX6000", "A5000", "A4000", "P4000"} {
		m, ok := Catalog[key]
		if !ok {
			t.Fatalf("catalog missing %s", key)
		}
		if m.EffTFLOPS <= 0 || m.MemoryGB <= 0 || m.HostGBps <= 0 || m.MemGBps <= 0 {
			t.Fatalf("catalog entry %s has non-positive fields: %+v", key, m)
		}
	}
}

func TestTable1Evolution(t *testing.T) {
	// Paper Table 1: each flagship is over 2x faster than its predecessor.
	seq := []string{"P100", "V100", "A100", "H100"}
	for i := 1; i < len(seq); i++ {
		prev, cur := Catalog[seq[i-1]], Catalog[seq[i]]
		if cur.FP16TFLOPS < 1.4*prev.FP16TFLOPS {
			t.Fatalf("%s (%v) is not clearly faster than %s (%v)", cur.Name, cur.FP16TFLOPS, prev.Name, prev.FP16TFLOPS)
		}
	}
}

func TestModelNamesSortedAndComplete(t *testing.T) {
	names := ModelNames()
	if len(names) != len(Catalog) {
		t.Fatalf("ModelNames returned %d of %d", len(names), len(Catalog))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("ModelNames not sorted")
		}
	}
}

func TestUnknownModelRejected(t *testing.T) {
	if _, err := NewDevice("x", "TPUv4", rng.New(1)); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestHeterogeneityMatchesPaper(t *testing.T) {
	// Section 6: A100 is about 3.42x faster than RTX 6000.
	a100 := newTestDevice(t, "A100")
	rtx := newTestDevice(t, "RTX6000")
	ratio := SpeedRatio(a100, rtx, testProfile(), 64)
	if ratio < 2.8 || ratio > 4.0 {
		t.Fatalf("A100/RTX6000 speed ratio = %v, want ~3.4", ratio)
	}
}

func TestCoeffsPositiveAndLinear(t *testing.T) {
	p := testProfile()
	for _, key := range ModelNames() {
		d := newTestDevice(t, key)
		c := d.Coeffs(p)
		if c.Q <= 0 || c.S <= 0 || c.K <= 0 || c.M <= 0 {
			t.Fatalf("%s: non-positive coefficients %+v", key, c)
		}
		// Linearity: Compute(2b) - Compute(b) == Compute(3b) - Compute(2b).
		d1 := c.Compute(128) - c.Compute(64)
		d2 := c.Compute(192) - c.Compute(128)
		if math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("%s: compute time not linear in batch", key)
		}
	}
}

func TestFasterGPULowerCoeffs(t *testing.T) {
	p := testProfile()
	fast := newTestDevice(t, "H100")
	slow := newTestDevice(t, "P4000")
	cf, cs := fast.Coeffs(p), slow.Coeffs(p)
	if cf.K >= cs.K || cf.Q >= cs.Q {
		t.Fatalf("faster GPU has larger per-sample coefficients: %+v vs %+v", cf, cs)
	}
}

func TestSharingSlowsDevice(t *testing.T) {
	p := testProfile()
	d := newTestDevice(t, "RTX6000")
	base := d.Coeffs(p).Compute(64)
	if err := d.SetSharing(0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	shared := d.Coeffs(p).Compute(64)
	if shared <= base {
		t.Fatalf("sharing did not slow device: %v <= %v", shared, base)
	}
	// Per-sample compute should roughly double at half speed.
	if r := shared / base; r < 1.5 || r > 2.5 {
		t.Fatalf("sharing slowdown = %v, want ~2", r)
	}
}

func TestSetSharingValidation(t *testing.T) {
	d := newTestDevice(t, "A100")
	for _, bad := range [][2]float64{{0, 1}, {1.5, 1}, {1, 0}, {1, -0.1}} {
		if err := d.SetSharing(bad[0], bad[1]); err == nil {
			t.Fatalf("SetSharing(%v, %v) accepted", bad[0], bad[1])
		}
	}
}

func TestMaxBatchRespectsMemory(t *testing.T) {
	p := testProfile()
	big := newTestDevice(t, "A100")    // 40 GB
	small := newTestDevice(t, "P4000") // 8 GB
	if big.MaxBatch(p) <= small.MaxBatch(p) {
		t.Fatalf("MaxBatch ordering wrong: %d <= %d", big.MaxBatch(p), small.MaxBatch(p))
	}
	if small.MaxBatch(p) < 1 {
		t.Fatalf("P4000 cannot fit even one sample: %d", small.MaxBatch(p))
	}
	// Sharing memory halves the cap (roughly).
	if err := big.SetSharing(1, 0.5); err != nil {
		t.Fatal(err)
	}
	halved := big.MaxBatch(p)
	full := newTestDevice(t, "A100").MaxBatch(p)
	if halved >= full {
		t.Fatalf("memory sharing did not reduce MaxBatch: %d >= %d", halved, full)
	}
}

func TestMaxBatchZeroWhenModelDoesNotFit(t *testing.T) {
	p := testProfile()
	p.ModelMemBytes = 1e12 // 1 TB model
	d := newTestDevice(t, "A100")
	if got := d.MaxBatch(p); got != 0 {
		t.Fatalf("MaxBatch = %d, want 0 for oversized model", got)
	}
}

func TestMeasureComputeUnbiased(t *testing.T) {
	p := testProfile()
	d := newTestDevice(t, "V100")
	c := d.Coeffs(p)
	const b = 32
	var sumA, sumP float64
	const n = 4000
	for i := 0; i < n; i++ {
		m := d.MeasureCompute(p, b)
		sumA += m.A
		sumP += m.P
	}
	if stats.RelErr(sumA/n, c.A(b)) > 0.01 {
		t.Fatalf("mean measured A = %v, want ~%v", sumA/n, c.A(b))
	}
	if stats.RelErr(sumP/n, c.P(b)) > 0.01 {
		t.Fatalf("mean measured P = %v, want ~%v", sumP/n, c.P(b))
	}
}

func TestMeasureComputeDeterministicAcrossRuns(t *testing.T) {
	p := testProfile()
	d1, _ := NewDevice("d", "V100", rng.New(9))
	d2, _ := NewDevice("d", "V100", rng.New(9))
	for i := 0; i < 50; i++ {
		m1 := d1.MeasureCompute(p, 16)
		m2 := d2.MeasureCompute(p, 16)
		if m1 != m2 {
			t.Fatalf("measurement %d diverged: %+v vs %+v", i, m1, m2)
		}
	}
}

func TestMeasureComputePanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MeasureCompute(0) did not panic")
		}
	}()
	newTestDevice(t, "A100").MeasureCompute(testProfile(), 0)
}

func TestProfileValidate(t *testing.T) {
	good := testProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Fatal("empty name accepted")
	}
	bad = good
	bad.FwdFLOPsPerSample = 0
	if bad.Validate() == nil {
		t.Fatal("zero compute accepted")
	}
	bad = good
	bad.ParamBytes = -1
	if bad.Validate() == nil {
		t.Fatal("negative params accepted")
	}
	bad = good
	bad.MemPerSampleBytes = 0
	if bad.Validate() == nil {
		t.Fatal("zero per-sample memory accepted")
	}
}
