package faultinject

import (
	"reflect"
	"testing"
	"time"

	"cannikin/internal/chaos"
	"cannikin/internal/rng"
)

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name string
		e    Event
		ok   bool
	}{
		{"stall ok", Event{Step: 1, Worker: 0, Kind: KindStallCompute, Delay: time.Millisecond, Steps: 2}, true},
		{"delay ok", Event{Step: 0, Worker: 1, Kind: KindDelayMsg, Delay: time.Millisecond}, true},
		{"drop ok", Event{Step: 3, Worker: 1, Kind: KindDropMsg, Count: 2}, true},
		{"kill ok", Event{Step: 5, Worker: 0, Kind: KindKillWorker}, true},
		{"negative step", Event{Step: -1, Worker: 0, Kind: KindKillWorker}, false},
		{"worker out of range", Event{Step: 0, Worker: 2, Kind: KindKillWorker}, false},
		{"stall without delay", Event{Step: 0, Worker: 0, Kind: KindStallCompute}, false},
		{"stall too many steps", Event{Step: 0, Worker: 0, Kind: KindStallCompute, Delay: time.Millisecond, Steps: maxStallSteps + 1}, false},
		{"delay without delay", Event{Step: 0, Worker: 0, Kind: KindDelayMsg}, false},
		{"negative drop count", Event{Step: 0, Worker: 0, Kind: KindDropMsg, Count: -1}, false},
		{"unknown kind", Event{Step: 0, Worker: 0, Kind: "melt-down"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.e.Validate(2)
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("want error for %+v", tc.e)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Intensity: 0.8, Horizon: 64, Kill: true}
	a, err := Generate(p, 4, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 4, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if a.Empty() {
		t.Fatal("intensity 0.8 over 64 steps generated nothing")
	}
	if err := a.Validate(4); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	c, err := Generate(p, 4, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateAtMostOneKill(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		s, err := Generate(Profile{Intensity: 1, Horizon: 128, Kill: true}, 3, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		kills := 0
		for _, e := range s.Events {
			if e.Kind == KindKillWorker {
				kills++
			}
		}
		if kills > 1 {
			t.Fatalf("seed %d generated %d kills", seed, kills)
		}
	}
}

func TestGenerateRejectsBadProfile(t *testing.T) {
	if _, err := Generate(Profile{Intensity: 0}, 2, rng.New(1)); err == nil {
		t.Fatal("want error for zero intensity")
	}
	if _, err := Generate(Profile{Intensity: 1.5}, 2, rng.New(1)); err == nil {
		t.Fatal("want error for intensity > 1")
	}
	if _, err := Generate(Profile{Intensity: 0.5, FirstStep: 10, Horizon: 5}, 2, rng.New(1)); err == nil {
		t.Fatal("want error for horizon before first step")
	}
	if _, err := Generate(Profile{Intensity: 0.5}, 0, rng.New(1)); err == nil {
		t.Fatal("want error for zero workers")
	}
}

func TestInjectorLookups(t *testing.T) {
	s := Schedule{Events: []Event{
		{Step: 2, Worker: 0, Kind: KindStallCompute, Delay: 3 * time.Millisecond, Steps: 2},
		{Step: 2, Worker: 0, Kind: KindDropMsg, Count: 2},
		{Step: 3, Worker: 1, Kind: KindDelayMsg, Delay: 5 * time.Millisecond},
		{Step: 3, Worker: 1, Kind: KindDelayMsg, Delay: 2 * time.Millisecond},
		{Step: 6, Worker: 1, Kind: KindKillWorker},
	}}
	in, err := NewInjector(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Workers(); got != 2 {
		t.Fatalf("Workers() = %d", got)
	}
	if f := in.At(0, 1); f.Any() {
		t.Fatalf("step 1 worker 0 should be clean, got %+v", f)
	}
	// Stall + drop accumulate at (0, 2); the stall spans step 3 too.
	if f := in.At(0, 2); f.Stall != 3*time.Millisecond || f.SendDrops != 2 {
		t.Fatalf("step 2 worker 0 = %+v", f)
	}
	if f := in.At(0, 3); f.Stall != 3*time.Millisecond || f.SendDrops != 0 {
		t.Fatalf("step 3 worker 0 = %+v", f)
	}
	// Repeated delays at the same (worker, step) add up.
	if f := in.At(1, 3); f.SendDelay != 7*time.Millisecond {
		t.Fatalf("step 3 worker 1 = %+v", f)
	}
	// Kill is sticky from its step on.
	if f := in.At(1, 5); f.Kill {
		t.Fatal("worker 1 killed before its kill step")
	}
	for step := 6; step < 10; step++ {
		if f := in.At(1, step); !f.Kill {
			t.Fatalf("worker 1 not killed at step %d", step)
		}
	}
	if f := in.At(0, 6); f.Kill {
		t.Fatal("kill leaked onto worker 0")
	}
}

func TestInjectorRejectsInvalid(t *testing.T) {
	s := Schedule{Events: []Event{{Step: 0, Worker: 5, Kind: KindKillWorker}}}
	if _, err := NewInjector(s, 2); err == nil {
		t.Fatal("want error for out-of-range worker")
	}
	if _, err := NewInjector(Schedule{}, 0); err == nil {
		t.Fatal("want error for zero workers")
	}
}

func TestScheduleRemap(t *testing.T) {
	s := Schedule{Events: []Event{
		{Step: 1, Worker: 0, Kind: KindKillWorker},
		{Step: 2, Worker: 1, Kind: KindDropMsg, Count: 1},
		{Step: 3, Worker: 2, Kind: KindDelayMsg, Delay: time.Millisecond},
	}}
	// Worker 1 was evicted: survivors are old ranks 0 and 2.
	got := s.Remap([]int{0, 2})
	want := Schedule{Events: []Event{
		{Step: 1, Worker: 0, Kind: KindKillWorker},
		{Step: 3, Worker: 1, Kind: KindDelayMsg, Delay: time.Millisecond},
	}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Remap = %+v, want %+v", got, want)
	}
	if err := got.Validate(2); err != nil {
		t.Fatalf("remapped schedule invalid: %v", err)
	}
}

// TestKindVocabulariesDisjoint pins the contract that lets the public API
// surface chaos and fault events through one record type: the two kind
// vocabularies never collide.
func TestKindVocabulariesDisjoint(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range chaos.Kinds() {
		seen[string(k)] = true
	}
	for _, k := range Kinds() {
		if seen[string(k)] {
			t.Fatalf("fault kind %q collides with a chaos kind", k)
		}
		seen[string(k)] = true
	}
	if len(seen) != len(chaos.Kinds())+len(Kinds()) {
		t.Fatal("duplicate kinds within a vocabulary")
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Step: 2, Worker: 1, Kind: KindStallCompute, Delay: time.Millisecond, Steps: 2}, "worker 1 stall-compute 1ms x2 steps @ step 2"},
		{Event{Step: 3, Worker: 0, Kind: KindDelayMsg, Delay: 5 * time.Millisecond}, "worker 0 delay-msg 5ms @ step 3"},
		{Event{Step: 4, Worker: 2, Kind: KindDropMsg}, "worker 2 drop-msg x1 @ step 4"},
		{Event{Step: 5, Worker: 0, Kind: KindKillWorker}, "worker 0 kill-worker @ step 5"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
