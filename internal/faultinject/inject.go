package faultinject

import (
	"fmt"
	"time"
)

// StepFaults is everything the injector asks one worker to suffer at one
// step. The zero value means "run cleanly".
type StepFaults struct {
	// Stall is how long the compute goroutine sleeps at step start.
	Stall time.Duration
	// SendDelay delays the worker's first ring send of the step.
	SendDelay time.Duration
	// SendDrops drops that many attempts of the worker's first ring send;
	// each lost attempt costs the sender one retransmit timeout.
	SendDrops int
	// Kill marks the worker permanently dead from this step on: it stops
	// responding, as a crashed process would.
	Kill bool
}

// Any reports whether the step carries any fault.
func (f StepFaults) Any() bool {
	return f.Stall > 0 || f.SendDelay > 0 || f.SendDrops > 0 || f.Kill
}

// Injector is a compiled schedule: pure, allocation-free (worker, step)
// lookups that are safe to call concurrently from every worker's compute
// and comm goroutines. All state is written at construction and only read
// afterwards.
type Injector struct {
	workers  int
	byStep   map[int64]StepFaults
	killStep []int
}

// NewInjector validates the schedule against a cluster of the given worker
// count and compiles it for lookup.
func NewInjector(s Schedule, workers int) (*Injector, error) {
	if workers < 1 {
		return nil, fmt.Errorf("faultinject: %d workers", workers)
	}
	if err := s.Validate(workers); err != nil {
		return nil, err
	}
	in := &Injector{
		workers:  workers,
		byStep:   make(map[int64]StepFaults),
		killStep: make([]int, workers),
	}
	for i := range in.killStep {
		in.killStep[i] = neverKilled
	}
	// Later events accumulate onto earlier ones at the same (worker, step):
	// a stall and a drop can coexist, repeated delays add up.
	for _, e := range s.sorted() {
		switch e.Kind {
		case KindStallCompute:
			steps := e.Steps
			if steps < 1 {
				steps = 1
			}
			for k := 0; k < steps; k++ {
				key := in.key(e.Worker, e.Step+k)
				f := in.byStep[key]
				f.Stall += e.Delay
				in.byStep[key] = f
			}
		case KindDelayMsg:
			key := in.key(e.Worker, e.Step)
			f := in.byStep[key]
			f.SendDelay += e.Delay
			in.byStep[key] = f
		case KindDropMsg:
			count := e.Count
			if count < 1 {
				count = 1
			}
			key := in.key(e.Worker, e.Step)
			f := in.byStep[key]
			f.SendDrops += count
			in.byStep[key] = f
		case KindKillWorker:
			if e.Step < in.killStep[e.Worker] {
				in.killStep[e.Worker] = e.Step
			}
		}
	}
	return in, nil
}

func (in *Injector) key(worker, step int) int64 {
	return int64(worker)<<40 | int64(step)
}

// Workers returns the cluster size the injector was compiled for.
func (in *Injector) Workers() int { return in.workers }

// At returns the faults the worker must suffer at the step. Kill is sticky:
// once a worker's kill step has passed, every later step reports Kill.
func (in *Injector) At(worker, step int) StepFaults {
	f := in.byStep[in.key(worker, step)]
	if step >= in.killStep[worker] {
		f.Kill = true
	}
	return f
}
