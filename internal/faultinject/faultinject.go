// Package faultinject provides a deterministic fault-injection harness for
// the live execution runtime: seeded, schedule-driven faults — compute
// stalls, delayed or dropped ring messages, and worker kills — that the
// live backend consults at its existing phase boundaries (step start and
// ring send). Because every fault is a pure function of (worker, step) and
// the schedule, a fault scenario replays exactly: the same schedule against
// the same training config produces the same stalls, the same timeouts,
// and the same eviction decisions, which is what makes fault paths
// testable at all.
//
// The package mirrors internal/chaos deliberately: chaos perturbs the
// *simulated* cluster's performance constants at epoch boundaries, while
// faultinject perturbs the *real* goroutine runtime at step boundaries.
// The two kind vocabularies are disjoint (enforced by test) so the public
// API can surface both through one event-record type.
package faultinject

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cannikin/internal/rng"
)

// Kind names a fault type.
type Kind string

// Fault kinds. The string values share one vocabulary with
// internal/chaos.Kind and must not collide with it.
const (
	// KindStallCompute stalls the worker's compute goroutine for Delay at
	// the start of each of Steps consecutive steps — a GC pause, a
	// preempted VM, or (with a long Delay) a permanently hung process.
	KindStallCompute Kind = "stall-compute"
	// KindDelayMsg delays the worker's first ring send of the step by
	// Delay — transient network congestion on one link.
	KindDelayMsg Kind = "delay-msg"
	// KindDropMsg drops the first Count attempts of the worker's first
	// ring send of the step; each lost attempt is retransmitted after a
	// timeout — packet loss on one link.
	KindDropMsg Kind = "drop-msg"
	// KindKillWorker kills the worker at the step: it stops responding
	// permanently, as a crashed process would.
	KindKillWorker Kind = "kill-worker"
)

// Kinds lists the fault vocabulary.
func Kinds() []Kind {
	return []Kind{KindStallCompute, KindDelayMsg, KindDropMsg, KindKillWorker}
}

// maxStallSteps bounds a single stall event's expansion so a schedule
// cannot precompute an unbounded per-step table.
const maxStallSteps = 1 << 16

// Event is one scheduled fault.
type Event struct {
	// Step is the global training step at which the fault fires.
	Step int
	// Worker is the affected rank.
	Worker int
	Kind   Kind
	// Delay is the stall or message delay (KindStallCompute, KindDelayMsg).
	Delay time.Duration
	// Steps is how many consecutive steps a stall lasts (KindStallCompute
	// only; default 1).
	Steps int
	// Count is how many send attempts are dropped (KindDropMsg only;
	// default 1).
	Count int
}

// Validate checks the event against a cluster of the given worker count.
func (e Event) Validate(workers int) error {
	if e.Step < 0 {
		return fmt.Errorf("faultinject: event step %d", e.Step)
	}
	if e.Worker < 0 || e.Worker >= workers {
		return fmt.Errorf("faultinject: event worker %d of %d", e.Worker, workers)
	}
	switch e.Kind {
	case KindStallCompute:
		if e.Delay <= 0 {
			return fmt.Errorf("faultinject: stall delay %v", e.Delay)
		}
		if e.Steps < 0 || e.Steps > maxStallSteps {
			return fmt.Errorf("faultinject: stall over %d steps", e.Steps)
		}
	case KindDelayMsg:
		if e.Delay <= 0 {
			return fmt.Errorf("faultinject: message delay %v", e.Delay)
		}
	case KindDropMsg:
		if e.Count < 0 {
			return fmt.Errorf("faultinject: drop count %d", e.Count)
		}
	case KindKillWorker:
	default:
		return fmt.Errorf("faultinject: unknown event kind %q", e.Kind)
	}
	return nil
}

// String renders the event for traces and logs.
func (e Event) String() string {
	switch e.Kind {
	case KindStallCompute:
		steps := e.Steps
		if steps < 1 {
			steps = 1
		}
		return fmt.Sprintf("worker %d %s %v x%d steps @ step %d", e.Worker, e.Kind, e.Delay, steps, e.Step)
	case KindDelayMsg:
		return fmt.Sprintf("worker %d %s %v @ step %d", e.Worker, e.Kind, e.Delay, e.Step)
	case KindDropMsg:
		count := e.Count
		if count < 1 {
			count = 1
		}
		return fmt.Sprintf("worker %d %s x%d @ step %d", e.Worker, e.Kind, count, e.Step)
	default:
		return fmt.Sprintf("worker %d %s @ step %d", e.Worker, e.Kind, e.Step)
	}
}

// Schedule is a step-ordered fault plan.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule carries no events.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// Validate checks every event against a cluster of the given worker count.
func (s Schedule) Validate(workers int) error {
	for i, e := range s.Events {
		if err := e.Validate(workers); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// sorted returns the events ordered by step (stable, so same-step events
// keep their declaration order).
func (s Schedule) sorted() []Event {
	out := append([]Event(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// Remap rewrites the schedule for a survivor cluster after an eviction:
// survivors lists the old worker indices that remain, in their new rank
// order. Events targeting evicted workers are dropped; the rest are
// renumbered.
func (s Schedule) Remap(survivors []int) Schedule {
	newRank := make(map[int]int, len(survivors))
	for rank, old := range survivors {
		newRank[old] = rank
	}
	var out Schedule
	for _, e := range s.Events {
		if rank, ok := newRank[e.Worker]; ok {
			e.Worker = rank
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Profile tunes the seeded schedule generator.
type Profile struct {
	// Intensity is the per-step probability of one generated event,
	// in (0, 1].
	Intensity float64
	// FirstStep is the first step eligible for faults (default 1).
	FirstStep int
	// Horizon is the last step eligible for faults (default 32).
	Horizon int
	// Kill permits generated kill-worker events; without it only transient
	// faults (stalls, delays, drops) are generated.
	Kill bool
	// MaxDelay caps generated stall and message delays (default 10ms —
	// sized so retry budgets in tests comfortably cover them).
	MaxDelay time.Duration
}

func (p Profile) defaults() Profile {
	if p.FirstStep <= 0 {
		p.FirstStep = 1
	}
	if p.Horizon <= 0 {
		p.Horizon = 32
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 10 * time.Millisecond
	}
	return p
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.Intensity <= 0 || p.Intensity > 1 {
		return fmt.Errorf("faultinject: intensity %v outside (0, 1]", p.Intensity)
	}
	p = p.defaults()
	if p.Horizon < p.FirstStep {
		return fmt.Errorf("faultinject: horizon %d before first step %d", p.Horizon, p.FirstStep)
	}
	return nil
}

// Generate builds a deterministic fault schedule for a cluster of the
// given worker count from the profile and a seeded stream. The same source
// state always yields the same schedule. At most one kill is generated per
// schedule, never against worker 0's lone survivor: a generated schedule
// always leaves at least one worker alive.
func Generate(p Profile, workers int, src *rng.Source) (Schedule, error) {
	if err := p.Validate(); err != nil {
		return Schedule{}, err
	}
	if workers < 1 {
		return Schedule{}, fmt.Errorf("faultinject: %d workers", workers)
	}
	p = p.defaults()
	gs := src.Split("faultinject/generate")
	var s Schedule
	killed := false
	for step := p.FirstStep; step <= p.Horizon; step++ {
		if gs.Float64() >= p.Intensity {
			continue
		}
		e := Event{Step: step, Worker: gs.Intn(workers)}
		delay := time.Duration(1+gs.Intn(int(p.MaxDelay/time.Millisecond))) * time.Millisecond
		switch roll := gs.Float64(); {
		case roll < 0.4:
			e.Kind = KindStallCompute
			e.Delay = delay
			e.Steps = 1 + gs.Intn(3)
		case roll < 0.7:
			e.Kind = KindDelayMsg
			e.Delay = delay
		case roll < 0.9 || !p.Kill || killed || workers < 2:
			e.Kind = KindDropMsg
			e.Count = 1 + gs.Intn(2)
		default:
			e.Kind = KindKillWorker
			killed = true
		}
		s.Events = append(s.Events, e)
	}
	return s, nil
}

// neverKilled marks a worker with no kill event.
const neverKilled = math.MaxInt
