// Package data provides synthetic datasets for the real-gradient training
// paths and the HeteroDataLoader — the reproduction of Cannikin's loader
// that feeds *uneven* local mini-batches to heterogeneous nodes according
// to the OptPerf ratios (Section 4.5).
package data

import (
	"errors"
	"fmt"

	"cannikin/internal/rng"
	"cannikin/internal/tensor"
)

// Dataset is an in-memory labeled dataset.
type Dataset struct {
	X       *tensor.T
	Labels  []int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Rows() }

// Batch materializes the samples at the given indices.
func (d *Dataset) Batch(indices []int) (*tensor.T, []int) {
	x := tensor.New(len(indices), d.X.Cols())
	labels := make([]int, len(indices))
	for row, idx := range indices {
		copy(x.Row(row), d.X.Row(idx))
		labels[row] = d.Labels[idx]
	}
	return x, labels
}

// SyntheticBlobs generates an n-sample classification dataset of `classes`
// Gaussian blobs in dim dimensions. Class centers sit on scaled coordinate
// directions; noise controls the blob spread (larger = harder).
func SyntheticBlobs(n, dim, classes int, noise float64, src *rng.Source) (*Dataset, error) {
	if n <= 0 || dim <= 0 || classes <= 1 {
		return nil, fmt.Errorf("data: invalid blob parameters n=%d dim=%d classes=%d", n, dim, classes)
	}
	if classes > 2*dim {
		return nil, fmt.Errorf("data: %d classes need dim >= %d", classes, (classes+1)/2)
	}
	ds := &Dataset{X: tensor.New(n, dim), Labels: make([]int, n), Classes: classes}
	s := src.Split("blobs")
	for i := 0; i < n; i++ {
		c := i % classes
		ds.Labels[i] = c
		row := ds.X.Row(i)
		for j := range row {
			row[j] = s.Norm(0, noise)
		}
		// Center: +2 on axis c/2, sign alternating.
		axis := c / 2
		sign := 1.0
		if c%2 == 1 {
			sign = -1
		}
		row[axis] += sign * 2
	}
	// Shuffle sample order.
	s.Shuffle(n, func(i, j int) {
		ri, rj := ds.X.Row(i), ds.X.Row(j)
		for k := range ri {
			ri[k], rj[k] = rj[k], ri[k]
		}
		ds.Labels[i], ds.Labels[j] = ds.Labels[j], ds.Labels[i]
	})
	return ds, nil
}

// HeteroLoader shards a dataset into per-node local mini-batches of
// *different* sizes, as decided by the OptPerf plan. Every sample is
// delivered exactly once per epoch.
type HeteroLoader struct {
	ds     *Dataset
	src    *rng.Source
	perm   []int
	cursor int
	epoch  int
}

// NewHeteroLoader returns a loader over the dataset.
func NewHeteroLoader(ds *Dataset, src *rng.Source) *HeteroLoader {
	l := &HeteroLoader{ds: ds, src: src.Split("heteroloader")}
	l.reshuffle()
	return l
}

func (l *HeteroLoader) reshuffle() {
	l.perm = l.src.Split(fmt.Sprintf("epoch-%d", l.epoch)).Perm(l.ds.Len())
	l.cursor = 0
}

// Remaining returns how many samples are left in the current epoch.
func (l *HeteroLoader) Remaining() int { return l.ds.Len() - l.cursor }

// Epoch returns the current epoch number (starting at 0).
func (l *HeteroLoader) Epoch() int { return l.epoch }

// NextGlobalBatch draws one global batch split into per-node local batches
// of the requested sizes. When fewer samples remain than requested, the
// local batches are scaled down proportionally (the epoch's final partial
// batch); at least one sample per node is kept. It returns io-style
// shard slices aligned with the request.
func (l *HeteroLoader) NextGlobalBatch(localSizes []int) (xs []*tensor.T, labels [][]int, err error) {
	n := len(localSizes)
	if n == 0 {
		return nil, nil, errors.New("data: no local batch sizes")
	}
	want := 0
	for i, b := range localSizes {
		if b <= 0 {
			return nil, nil, fmt.Errorf("data: node %d local batch %d", i, b)
		}
		want += b
	}
	if l.Remaining() < n { // cannot give every node a sample: roll epoch
		l.epoch++
		l.reshuffle()
	}
	sizes := append([]int(nil), localSizes...)
	if rem := l.Remaining(); rem < want {
		// Scale shards down proportionally, preserving >= 1 per node.
		total := 0
		for i := range sizes {
			sizes[i] = sizes[i] * rem / want
			if sizes[i] < 1 {
				sizes[i] = 1
			}
			total += sizes[i]
		}
		for i := 0; total > rem && i < len(sizes); i++ {
			for sizes[i] > 1 && total > rem {
				sizes[i]--
				total--
			}
		}
	}
	xs = make([]*tensor.T, n)
	labels = make([][]int, n)
	for i, b := range sizes {
		idx := l.perm[l.cursor : l.cursor+b]
		l.cursor += b
		xs[i], labels[i] = l.ds.Batch(idx)
	}
	if l.Remaining() == 0 {
		l.epoch++
		l.reshuffle()
	}
	return xs, labels, nil
}
