package data

import (
	"testing"

	"cannikin/internal/rng"
)

func TestSyntheticBlobsShapeAndBalance(t *testing.T) {
	src := rng.New(1)
	ds, err := SyntheticBlobs(300, 6, 3, 0.4, src)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 300 || ds.X.Cols() != 6 || ds.Classes != 3 {
		t.Fatalf("dataset shape wrong: len=%d cols=%d classes=%d", ds.Len(), ds.X.Cols(), ds.Classes)
	}
	counts := make([]int, 3)
	for _, l := range ds.Labels {
		if l < 0 || l >= 3 {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d samples, want 100", c, n)
		}
	}
}

func TestSyntheticBlobsSeparable(t *testing.T) {
	// Low-noise blobs must be nearly separable by the nearest-center rule.
	src := rng.New(2)
	ds, err := SyntheticBlobs(400, 4, 4, 0.3, src)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		row := ds.X.Row(i)
		// Recover the center convention: class c = axis c/2, sign (-1)^c.
		best, bestDist := -1, 1e18
		for c := 0; c < ds.Classes; c++ {
			axis, sign := c/2, 1.0
			if c%2 == 1 {
				sign = -1
			}
			dist := 0.0
			for j, v := range row {
				want := 0.0
				if j == axis {
					want = sign * 2
				}
				dist += (v - want) * (v - want)
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == ds.Labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.98 {
		t.Fatalf("nearest-center accuracy %v < 0.98", acc)
	}
}

func TestSyntheticBlobsValidation(t *testing.T) {
	src := rng.New(3)
	if _, err := SyntheticBlobs(0, 4, 2, 0.5, src); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := SyntheticBlobs(10, 4, 1, 0.5, src); err == nil {
		t.Fatal("1 class accepted")
	}
	if _, err := SyntheticBlobs(10, 2, 9, 0.5, src); err == nil {
		t.Fatal("too many classes for dim accepted")
	}
}

func TestHeteroLoaderDeliversEachSampleOncePerEpoch(t *testing.T) {
	src := rng.New(4)
	ds, err := SyntheticBlobs(120, 4, 2, 0.5, src)
	if err != nil {
		t.Fatal(err)
	}
	// Tag each sample by its unique feature vector via a coarse hash of
	// the first coordinate; instead track consumed count per epoch.
	l := NewHeteroLoader(ds, src)
	consumed := 0
	epoch := l.Epoch()
	for l.Epoch() == epoch {
		xs, labels, err := l.NextGlobalBatch([]int{7, 5, 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if xs[i].Rows() != len(labels[i]) {
				t.Fatal("shard rows != labels")
			}
			consumed += xs[i].Rows()
		}
	}
	if consumed != 120 {
		t.Fatalf("epoch consumed %d samples, want 120", consumed)
	}
}

func TestHeteroLoaderUnevenShardSizes(t *testing.T) {
	src := rng.New(5)
	ds, err := SyntheticBlobs(1000, 4, 2, 0.5, src)
	if err != nil {
		t.Fatal(err)
	}
	l := NewHeteroLoader(ds, src)
	xs, _, err := l.NextGlobalBatch([]int{48, 12, 4})
	if err != nil {
		t.Fatal(err)
	}
	if xs[0].Rows() != 48 || xs[1].Rows() != 12 || xs[2].Rows() != 4 {
		t.Fatalf("shard sizes %d %d %d", xs[0].Rows(), xs[1].Rows(), xs[2].Rows())
	}
}

func TestHeteroLoaderPartialFinalBatch(t *testing.T) {
	src := rng.New(6)
	ds, err := SyntheticBlobs(100, 4, 2, 0.5, src)
	if err != nil {
		t.Fatal(err)
	}
	l := NewHeteroLoader(ds, src)
	if _, _, err := l.NextGlobalBatch([]int{60, 20}); err != nil {
		t.Fatal(err)
	}
	// 20 remain; ask for 60+20: shards shrink proportionally but stay >= 1.
	xs, _, err := l.NextGlobalBatch([]int{60, 20})
	if err != nil {
		t.Fatal(err)
	}
	got := xs[0].Rows() + xs[1].Rows()
	if got != 20 {
		t.Fatalf("partial batch delivered %d, want 20", got)
	}
	if xs[0].Rows() < 1 || xs[1].Rows() < 1 {
		t.Fatal("a node received an empty shard")
	}
	if l.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1 after exhaustion", l.Epoch())
	}
}

func TestHeteroLoaderValidation(t *testing.T) {
	src := rng.New(7)
	ds, err := SyntheticBlobs(10, 4, 2, 0.5, src)
	if err != nil {
		t.Fatal(err)
	}
	l := NewHeteroLoader(ds, src)
	if _, _, err := l.NextGlobalBatch(nil); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, _, err := l.NextGlobalBatch([]int{3, 0}); err == nil {
		t.Fatal("zero shard accepted")
	}
}

func TestHeteroLoaderReshufflesAcrossEpochs(t *testing.T) {
	src := rng.New(8)
	ds, err := SyntheticBlobs(64, 4, 2, 0.5, src)
	if err != nil {
		t.Fatal(err)
	}
	l := NewHeteroLoader(ds, src)
	first, _, err := l.NextGlobalBatch([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := l.NextGlobalBatch([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 64 && same; i++ {
		for j := 0; j < 4; j++ {
			if first[0].At(i, j) != second[0].At(i, j) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("epochs not reshuffled")
	}
}
