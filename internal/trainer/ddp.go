package trainer

// DDP reproduces PyTorch DistributedDataParallel as evaluated in the
// paper: a fixed total batch size split evenly across the (heterogeneous)
// nodes, with no adaptation of any kind. Its performance loss comes from
// both the straggler effect (even split) and the fixed batch size.
type DDP struct {
	// FixedBatch overrides the default total batch (max(B0, n)).
	FixedBatch int
}

var _ System = (*DDP)(nil)

// NewDDP returns the baseline with the workload-default fixed batch.
func NewDDP() *DDP { return &DDP{} }

// Name implements System.
func (d *DDP) Name() string { return "pytorch-ddp" }

// Batch returns the fixed total batch for the environment.
func (d *DDP) Batch(env *Env) int {
	b := d.FixedBatch
	if b <= 0 {
		b = env.Workload.InitBatch
	}
	if b < env.MinTotal {
		b = env.MinTotal
	}
	if b > env.MaxTotal {
		b = env.MaxTotal
	}
	return b
}

// PlanEpoch implements System: the same even split every epoch.
func (d *DDP) PlanEpoch(env *Env, epoch int) (Plan, error) {
	total := d.Batch(env)
	local, err := env.EvenSplit(total)
	if err != nil {
		return Plan{}, err
	}
	return Plan{TotalBatch: total, Local: local}, nil
}

// ObserveStep implements System (DDP adapts nothing).
func (d *DDP) ObserveStep(*Env, StepObs) {}

// ObserveEpochEnd implements System.
func (d *DDP) ObserveEpochEnd(*Env) {}
