package trainer

import (
	"testing"

	"cannikin/internal/chaos"
	"cannikin/internal/optperf"
)

// TestCannikinAuditedRunCleanUnderChaos runs the full system with strict
// auditing through a chaos schedule: every epoch — even splits, Eq. 8
// bootstraps, chaos-triggered re-profiles, and learned-model re-solves —
// must record an audit outcome with zero invariant violations.
func TestCannikinAuditedRunCleanUnderChaos(t *testing.T) {
	sys := NewCannikin()
	sys.Audit = optperf.AuditStrict
	res, err := Run(Config{
		Cluster:   mustCluster(t, "a", 21),
		Workload:  mustWorkload(t, "imagenet"),
		System:    sys,
		Seed:      21,
		MaxEpochs: 16,
		Chaos: chaos.Schedule{Events: []chaos.Event{
			{Epoch: 6, Node: 0, Kind: chaos.KindComputeShare, Value: 0.25},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	audited, reprofiledAudited := 0, false
	for _, s := range res.Epochs {
		if s.Audit == nil {
			t.Fatalf("epoch %d has no audit record", s.Epoch)
		}
		if s.Audit.Summary.Violations != 0 {
			t.Fatalf("epoch %d: %d audit violations: %+v",
				s.Epoch, s.Audit.Summary.Violations, s.Audit.Summary.Failures)
		}
		audited += s.Audit.Summary.Plans
		if s.Reprofiled > 0 {
			reprofiledAudited = true
		}
	}
	if audited == 0 {
		t.Fatal("no plans were audited across the run")
	}
	if !reprofiledAudited {
		t.Fatal("chaos never triggered an audited re-profile epoch")
	}
	// Learned-model epochs must carry the fit-error context.
	sawFit := false
	for _, s := range res.Epochs {
		if s.Audit.ModelFitError > 0 {
			sawFit = true
		}
	}
	if !sawFit {
		t.Fatal("no epoch recorded a model fit error")
	}
}

// TestCannikinAuditOffLeavesPlansUnannotated: the default must not pay for
// or report audits.
func TestCannikinAuditOffLeavesPlansUnannotated(t *testing.T) {
	res, err := Run(Config{
		Cluster:   mustCluster(t, "a", 7),
		Workload:  mustWorkload(t, "cifar10"),
		System:    NewCannikin(),
		Seed:      7,
		MaxEpochs: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Epochs {
		if s.Audit != nil {
			t.Fatalf("epoch %d carries an audit record with auditing off", s.Epoch)
		}
	}
}
