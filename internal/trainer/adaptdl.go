package trainer

import (
	"fmt"

	"cannikin/internal/gns"
	"cannikin/internal/goodput"
	"cannikin/internal/stats"
)

// AdaptDL reproduces the homogeneous adaptive batch-size baseline (Pollux's
// single-job engine): the total batch size is chosen each epoch by
// maximizing goodput, but local batches are split evenly — the system is
// blind to heterogeneity — and the GNS is aggregated by plain averaging.
type AdaptDL struct {
	tracker *gns.Tracker
	// Observed (total batch, step time) pairs for the throughput model.
	obsB, obsT []float64
	currentB   int
	epochTimes stats.Welford
}

var _ System = (*AdaptDL)(nil)

// NewAdaptDL returns a fresh AdaptDL baseline.
func NewAdaptDL() *AdaptDL {
	return &AdaptDL{tracker: gns.NewTracker(0.05)}
}

// Name implements System.
func (a *AdaptDL) Name() string { return "adaptdl" }

// PlanEpoch implements System: two bootstrap epochs to learn the
// even-split throughput line, then goodput-maximizing batch selection.
func (a *AdaptDL) PlanEpoch(env *Env, epoch int) (Plan, error) {
	total := env.MinTotal
	switch epoch {
	case 0:
		// Initial batch size.
	case 1:
		// A second, larger batch to identify the throughput line.
		total = total * 3 / 2
		if total > env.MaxTotal {
			total = env.MaxTotal
		}
	default:
		fit, err := stats.FitLine(a.obsB, a.obsT)
		if err != nil {
			// Degenerate observations: stay at the current batch.
			break
		}
		noise := a.tracker.Noise()
		cands := make([]goodput.Candidate, 0, len(env.Candidates))
		for _, b := range env.Candidates {
			t := fit.Eval(float64(b))
			if t <= 0 {
				continue
			}
			cands = append(cands, goodput.Candidate{Batch: b, Time: t})
		}
		sel, err := goodput.Select(cands, noise, env.Workload.InitBatch)
		if err != nil {
			return Plan{}, fmt.Errorf("adaptdl: %w", err)
		}
		total = sel.Batch
	}
	// Even split cannot exceed the smallest node's memory.
	if maxEven := a.maxEvenTotal(env); total > maxEven {
		total = maxEven
	}
	local, err := env.EvenSplit(total)
	if err != nil {
		return Plan{}, err
	}
	a.currentB = total
	a.epochTimes = stats.Welford{}
	// AdaptDL evaluates candidates with its throughput model: charge one
	// solve-equivalent per candidate.
	return Plan{TotalBatch: total, Local: local, Solves: len(env.Candidates)}, nil
}

// maxEvenTotal is the largest total batch an even split can serve: the
// smallest cap times the node count (the homogeneous assumption's cost).
func (a *AdaptDL) maxEvenTotal(env *Env) int {
	minCap := env.Caps[0]
	for _, c := range env.Caps[1:] {
		if c < minCap {
			minCap = c
		}
	}
	return minCap * env.Cluster.N()
}

// ObserveStep implements System: record throughput and the naive GNS.
func (a *AdaptDL) ObserveStep(env *Env, obs StepObs) {
	a.epochTimes.Add(obs.Step.Time)
	if obs.GNS != nil {
		if est, err := gns.EstimateNaive(*obs.GNS); err == nil {
			a.tracker.Observe(est)
		}
	}
}

// ObserveEpochEnd implements System: fold the epoch's mean step time into
// the throughput model.
func (a *AdaptDL) ObserveEpochEnd(*Env) {
	if a.epochTimes.N() == 0 {
		return
	}
	a.obsB = append(a.obsB, float64(a.currentB))
	a.obsT = append(a.obsT, a.epochTimes.Mean())
	// Keep the model fresh: cap the history.
	if len(a.obsB) > 64 {
		a.obsB = a.obsB[len(a.obsB)-64:]
		a.obsT = a.obsT[len(a.obsT)-64:]
	}
}

// Noise exposes the current smoothed GNS estimate (for experiments).
func (a *AdaptDL) Noise() float64 { return a.tracker.Noise() }
