package trainer

import (
	"testing"
)

// TestAllSystemsAllWorkloadsClusterA is the robustness matrix: every
// data-parallel system must converge on every workload on the small
// cluster, and Cannikin must never lose to DDP.
func TestAllSystemsAllWorkloadsClusterA(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in short mode")
	}
	workloads := []string{"cifar10", "imagenet", "librispeech", "movielens", "squad"}
	build := map[string]func() System{
		"cannikin":    func() System { return NewCannikin() },
		"adaptdl":     func() System { return NewAdaptDL() },
		"lb-bsp":      func() System { return NewLBBSP() },
		"pytorch-ddp": func() System { return NewDDP() },
	}
	for _, wl := range workloads {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			times := map[string]float64{}
			for name, mk := range build {
				res := runSystem(t, "a", wl, mk(), 99)
				times[name] = res.ConvergeTime
				if res.FinalMetric() <= 0 {
					t.Errorf("%s: bad final metric %v", name, res.FinalMetric())
				}
			}
			if times["cannikin"] > times["pytorch-ddp"] {
				t.Errorf("cannikin %v slower than ddp %v", times["cannikin"], times["pytorch-ddp"])
			}
			if times["cannikin"] > times["lb-bsp"] {
				t.Errorf("cannikin %v slower than lb-bsp %v", times["cannikin"], times["lb-bsp"])
			}
		})
	}
}

// TestCannikinSeedStability: across seeds, Cannikin consistently beats the
// even-split fixed-batch baseline on the heterogeneous cluster.
func TestCannikinSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep in short mode")
	}
	for seed := uint64(100); seed < 105; seed++ {
		can := runSystem(t, "a", "cifar10", NewCannikin(), seed)
		ddp := runSystem(t, "a", "cifar10", NewDDP(), seed)
		if can.ConvergeTime >= ddp.ConvergeTime {
			t.Errorf("seed %d: cannikin %v >= ddp %v", seed, can.ConvergeTime, ddp.ConvergeTime)
		}
	}
}

// TestRunDeterministicAcrossInvocations: identical configs produce
// bit-identical traces.
func TestRunDeterministicAcrossInvocations(t *testing.T) {
	run := func() *Result {
		return runSystem(t, "a", "cifar10", NewCannikin(), 7)
	}
	a, b := run(), run()
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(a.Epochs), len(b.Epochs))
	}
	if a.TotalTime != b.TotalTime {
		t.Fatalf("total times differ: %v vs %v", a.TotalTime, b.TotalTime)
	}
	for i := range a.Epochs {
		if a.Epochs[i].TotalBatch != b.Epochs[i].TotalBatch ||
			a.Epochs[i].TrainTime != b.Epochs[i].TrainTime {
			t.Fatalf("epoch %d differs", i)
		}
	}
}

// TestResourceEventValidation: bad events fail cleanly.
func TestResourceEventValidation(t *testing.T) {
	c := mustCluster(t, "a", 50)
	w := mustWorkload(t, "cifar10")
	_, err := Run(Config{
		Cluster: c, Workload: w, System: NewDDP(), Seed: 50, MaxEpochs: 3,
		Events: []ResourceEvent{{Epoch: 1, Node: 99, ComputeShare: 0.5}},
	})
	if err == nil {
		t.Fatal("out-of-range node accepted")
	}
	_, err = Run(Config{
		Cluster: mustCluster(t, "a", 51), Workload: w, System: NewDDP(), Seed: 51, MaxEpochs: 3,
		Events: []ResourceEvent{{Epoch: 1, Node: 0, ComputeShare: 1.5}},
	})
	if err == nil {
		t.Fatal("invalid share accepted")
	}
}

// TestAdaptDLRespectsEvenSplitMemoryCap: with a tiny-memory node, AdaptDL
// must cap the total batch at n * min(cap).
func TestAdaptDLRespectsEvenSplitMemoryCap(t *testing.T) {
	c := mustCluster(t, "a", 52)
	w := mustWorkload(t, "librispeech") // huge per-sample memory
	env, err := NewEnv(c, w)
	if err != nil {
		t.Fatal(err)
	}
	minCap := env.Caps[0]
	for _, cp := range env.Caps {
		if cp < minCap {
			minCap = cp
		}
	}
	res, err := Run(Config{Cluster: c, Workload: w, System: NewAdaptDL(), Seed: 52, MaxEpochs: 12})
	if err != nil {
		t.Fatal(err)
	}
	limit := minCap * c.N()
	for _, e := range res.Epochs {
		if e.TotalBatch > limit {
			t.Fatalf("epoch %d: even split total %d exceeds n*minCap %d", e.Epoch, e.TotalBatch, limit)
		}
		for i, b := range e.Local {
			if b > env.Caps[i] {
				t.Fatalf("epoch %d node %d: %d > cap %d", e.Epoch, i, b, env.Caps[i])
			}
		}
	}
}

// TestHetPipeBatchTimeProperties: pipeline time grows with the batch and
// shrinks with faster pools.
func TestHetPipeBatchTimeProperties(t *testing.T) {
	w := mustWorkload(t, "cifar10")
	envFor := func(preset string, seed uint64) *Env {
		env, err := NewEnv(mustCluster(t, preset, seed), w)
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	env := envFor("b", 53)
	small := NewHetPipe()
	small.FixedBatch = 128
	big := NewHetPipe()
	big.FixedBatch = 1024
	tSmall, err := small.BatchTime(env)
	if err != nil {
		t.Fatal(err)
	}
	tBig, err := big.BatchTime(env)
	if err != nil {
		t.Fatal(err)
	}
	if tBig <= tSmall {
		t.Fatalf("pipeline time not increasing in batch: %v vs %v", tSmall, tBig)
	}
	// Per-sample, the big batch amortizes the pipeline fill: cheaper.
	if tBig/1024 >= tSmall/128 {
		t.Fatalf("pipeline fill not amortized: %v vs %v per sample", tBig/1024, tSmall/128)
	}
}

// TestCannikinPlanningWorkBounded: across a run, solver work stays modest —
// the OptPerf_init cache and warm starts keep per-epoch planning to a few
// operations after the initialization sweep.
func TestCannikinPlanningWorkBounded(t *testing.T) {
	sys := NewCannikin()
	res := runSystem(t, "a", "cifar10", sys, 60)
	if sys.PlanningWork() <= 0 {
		t.Fatal("no planning work recorded")
	}
	perEpoch := float64(sys.PlanningWork()) / float64(len(res.Epochs))
	if perEpoch > 12 {
		t.Fatalf("planning work %.1f ops/epoch; caching ineffective", perEpoch)
	}
}
