package trainer

import (
	"fmt"

	"cannikin/internal/stats"
)

// LBBSP reproduces LB-BSP (semi-dynamic load balancing): the total batch
// size is fixed, and each epoch the local batch sizes are nudged by a step
// size Δ from the slowest node toward the fastest node, based on measured
// per-node compute times. It converges to balanced compute iteratively —
// the paper's Figure 9 shows it needs >10 epochs where Cannikin needs 3 —
// and it ignores the compute/communication overlap.
type LBBSP struct {
	// Delta is the per-epoch rebalancing step (the paper uses 5).
	Delta int
	// FixedBatch overrides the default total batch (max(B0, n)).
	FixedBatch int

	local     []int
	nodeTimes []stats.Welford
}

var _ System = (*LBBSP)(nil)

// NewLBBSP returns LB-BSP with the paper's Δ = 5.
func NewLBBSP() *LBBSP { return &LBBSP{Delta: 5} }

// Name implements System.
func (l *LBBSP) Name() string { return "lb-bsp" }

// Batch returns the fixed total batch for the environment.
func (l *LBBSP) Batch(env *Env) int {
	b := l.FixedBatch
	if b <= 0 {
		b = env.Workload.InitBatch
	}
	if b < env.MinTotal {
		b = env.MinTotal
	}
	if b > env.MaxTotal {
		b = env.MaxTotal
	}
	return b
}

// SetTotalBatch re-targets the fixed total batch mid-run (used by the
// adaptive-batch-size comparison of Figure 10): the current allocation is
// rescaled proportionally and tuning resumes from there.
func (l *LBBSP) SetTotalBatch(env *Env, total int) error {
	if total < env.MinTotal || total > env.MaxTotal {
		return fmt.Errorf("lb-bsp: total %d outside [%d, %d]", total, env.MinTotal, env.MaxTotal)
	}
	l.FixedBatch = total
	if l.local == nil {
		return nil
	}
	old := 0
	for _, b := range l.local {
		old += b
	}
	scaled := make([]int, len(l.local))
	sum := 0
	for i, b := range l.local {
		scaled[i] = b * total / old
		if scaled[i] < 1 {
			scaled[i] = 1
		}
		if scaled[i] > env.Caps[i] {
			scaled[i] = env.Caps[i]
		}
		sum += scaled[i]
	}
	// Fix the remainder on nodes with headroom.
	for sum != total {
		progressed := false
		for i := range scaled {
			if sum == total {
				break
			}
			if sum < total && scaled[i] < env.Caps[i] {
				scaled[i]++
				sum++
				progressed = true
			} else if sum > total && scaled[i] > 1 {
				scaled[i]--
				sum--
				progressed = true
			}
		}
		if !progressed {
			return fmt.Errorf("lb-bsp: cannot scale allocation to %d", total)
		}
	}
	l.local = scaled
	return nil
}

// PlanEpoch implements System: even split initially, then the allocation
// produced by the per-epoch rebalancing.
func (l *LBBSP) PlanEpoch(env *Env, epoch int) (Plan, error) {
	total := l.Batch(env)
	if l.local == nil {
		local, err := env.EvenSplit(total)
		if err != nil {
			return Plan{}, err
		}
		l.local = local
	}
	l.nodeTimes = make([]stats.Welford, env.Cluster.N())
	sum := 0
	for _, b := range l.local {
		sum += b
	}
	return Plan{TotalBatch: sum, Local: append([]int(nil), l.local...)}, nil
}

// ObserveStep implements System: accumulate per-node compute times.
func (l *LBBSP) ObserveStep(env *Env, obs StepObs) {
	for i, ns := range obs.Step.PerNode {
		l.nodeTimes[i].Add(ns.A + ns.P)
	}
}

// ObserveEpochEnd implements System: every node's local batch moves toward
// the speed-proportional target by at most Δ per epoch, so the allocation
// approaches balance over several epochs (the paper's Figure 9 shows this
// iterative convergence takes >10 epochs where Cannikin predicts OptPerf
// directly).
func (l *LBBSP) ObserveEpochEnd(env *Env) {
	if len(l.nodeTimes) == 0 || l.nodeTimes[0].N() == 0 {
		return
	}
	n := len(l.local)
	total := 0
	for _, b := range l.local {
		total += b
	}
	// Measured per-sample speed of each node.
	speed := make([]float64, n)
	sumSpeed := 0.0
	for i := range speed {
		perSample := l.nodeTimes[i].Mean() / float64(l.local[i])
		if perSample <= 0 {
			return
		}
		speed[i] = 1 / perSample
		sumSpeed += speed[i]
	}
	next := make([]int, n)
	sum := 0
	for i := range next {
		target := int(speed[i] / sumSpeed * float64(total))
		step := target - l.local[i]
		if step > l.Delta {
			step = l.Delta
		} else if step < -l.Delta {
			step = -l.Delta
		}
		next[i] = l.local[i] + step
		if next[i] < 1 {
			next[i] = 1
		}
		if next[i] > env.Caps[i] {
			next[i] = env.Caps[i]
		}
		sum += next[i]
	}
	// Restore the fixed total (rounding drift), preferring faster nodes
	// for extra samples and slower nodes for removals.
	for sum != total {
		progressed := false
		for i := range next {
			if sum == total {
				break
			}
			if sum < total && next[i] < env.Caps[i] {
				next[i]++
				sum++
				progressed = true
			} else if sum > total && next[i] > 1 {
				next[i]--
				sum--
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
	l.local = next
}

// Local returns the current allocation (for experiments).
func (l *LBBSP) Local() []int { return append([]int(nil), l.local...) }
