package trainer

import (
	"fmt"

	"cannikin/internal/gns"
	"cannikin/internal/goodput"
	"cannikin/internal/optperf"
	"cannikin/internal/perfmodel"
	"cannikin/internal/stats"
)

// Cannikin implements the paper's system (Section 4):
//
//   - Epoch 0 trains with an even split at the initial batch size; epoch 1
//     uses the Eq. 8 inverse-proportional bootstrap, giving every node two
//     distinct local batch sizes to fit its compute model.
//   - From epoch 2 on, the learned cluster model predicts OptPerf for every
//     total-batch-size candidate (cached as OptPerf_init and warm-started,
//     Section 4.5), the goodput-maximizing candidate is selected using the
//     heterogeneous GNS (Theorem 4.1), and the epoch runs with the OptPerf
//     local batch ratios.
//   - Gradients are aggregated with batch-proportional weights (Eq. 9) and
//     the communication constants are combined across nodes by inverse-
//     variance weighting.
type Cannikin struct {
	// UseIVW toggles inverse-variance weighting of the communication
	// constants (disable for the Section 5.3 ablation).
	UseIVW bool
	// UseOptimalGNS toggles the Theorem 4.1 weighted GNS estimator
	// (disable to fall back to naive averaging, for ablations).
	UseOptimalGNS bool
	// FixedBatch pins the total batch size (the paper's Section 5.2.2
	// fixed-batch evaluation); 0 enables adaptive batch sizing.
	FixedBatch int
	// Audit enables per-solve plan verification: every fresh OptPerf solve
	// (including the re-solves after chaos-triggered re-profiles) is checked
	// against the paper's optimality conditions and the outcome is attached
	// to the epoch plan. In strict mode a violation fails PlanEpoch.
	Audit optperf.AuditMode

	learner *perfmodel.ClusterLearner
	planner *optperf.Planner
	tracker *gns.Tracker
	// Per-node per-epoch communication-constant accumulators.
	commGamma, commTo, commTu []stats.Welford
	lastPlan                  optperf.Plan
	solvesSeen                int
	// reprofile lists the nodes whose compute model drifted at the last
	// epoch boundary and therefore need a targeted probe epoch.
	reprofile []int
	// initPlans caches OptPerf_init: each candidate's predicted batch time
	// from the initialization sweep (Section 4.5).
	initPlans []goodput.Candidate
	// overlapSignature tracks the candidate overlap states to detect
	// pattern changes (Section 4.5 "Total batch size selection").
	overlapSignature map[int]int
}

var _ System = (*Cannikin)(nil)

// NewCannikin returns the full system with all optimizations enabled.
func NewCannikin() *Cannikin {
	return &Cannikin{
		UseIVW:           true,
		UseOptimalGNS:    true,
		tracker:          gns.NewTracker(0.05),
		overlapSignature: make(map[int]int),
	}
}

// Name implements System.
func (c *Cannikin) Name() string { return "cannikin" }

// PlanEpoch implements System.
func (c *Cannikin) PlanEpoch(env *Env, epoch int) (Plan, error) {
	n := env.Cluster.N()
	if c.learner == nil {
		c.learner = perfmodel.NewClusterLearner(n)
		c.commGamma = make([]stats.Welford, n)
		c.commTo = make([]stats.Welford, n)
		c.commTu = make([]stats.Welford, n)
	}
	c.learner.UseIVW = c.UseIVW

	baseTotal := env.MinTotal
	if c.FixedBatch > 0 {
		baseTotal = c.FixedBatch
		if baseTotal < env.MinTotal {
			baseTotal = env.MinTotal
		}
		if baseTotal > env.MaxTotal {
			baseTotal = env.MaxTotal
		}
	}

	switch {
	case epoch == 0:
		// Even split at the initial batch size.
		local, err := env.EvenSplit(baseTotal)
		if err != nil {
			return Plan{}, err
		}
		plan := Plan{TotalBatch: baseTotal, Local: local}
		if err := c.attachAllocationAudit(&plan, env); err != nil {
			return Plan{}, err
		}
		return plan, nil

	case epoch == 1 || !c.learner.HasModel():
		// Targeted re-profiling: when specific nodes drifted mid-run,
		// probe only those, keeping the healthy nodes near their current
		// allocation instead of re-bootstrapping the whole cluster.
		if len(c.reprofile) > 0 && len(c.lastPlan.Batches) == n {
			return c.reprofilePlan(env)
		}
		// Eq. 8 bootstrap: inverse-proportional to measured per-sample
		// time, at a growing batch so every node keeps seeing distinct
		// local sizes until its compute model can be fitted.
		perSample, err := c.learner.PerSampleTimes()
		if err != nil {
			return Plan{}, fmt.Errorf("cannikin bootstrap: %w", err)
		}
		total := baseTotal * (2 + epoch) / 2
		if floor := 2 * env.Cluster.N(); total < floor {
			// With tiny initial batches every node holds a single sample
			// and no second distinct size exists; two samples per node
			// unblocks model fitting.
			total = floor
		}
		if c.FixedBatch > 0 {
			// Fixed-batch mode keeps the total: the Eq. 8 proportional
			// allocation already differs from the even split, and
			// forceDistinct covers any coincidences.
			total = baseTotal
		}
		if total > env.MaxTotal {
			total = env.MaxTotal
		}
		local, err := optperf.ProportionalAllocation(perSample, total, env.Caps)
		if err != nil {
			return Plan{}, fmt.Errorf("cannikin bootstrap: %w", err)
		}
		c.forceDistinct(env, local)
		plan := Plan{TotalBatch: total, Local: local}
		if err := c.attachAllocationAudit(&plan, env); err != nil {
			return Plan{}, err
		}
		return plan, nil
	}

	// Learned-model path.
	model, err := c.learner.Model(env.Caps)
	if err != nil {
		return Plan{}, fmt.Errorf("cannikin model: %w", err)
	}
	if c.planner == nil {
		c.planner, err = optperf.NewPlanner(model)
		if err != nil {
			return Plan{}, err
		}
	} else if err := c.planner.UpdateModel(model); err != nil {
		return Plan{}, err
	}
	c.planner.Audit = c.Audit
	solvesBefore := c.plannerWork()

	if c.FixedBatch > 0 {
		// Fixed-batch mode: predict OptPerf directly for the pinned size.
		chosen, err := c.planner.Plan(baseTotal)
		if err != nil {
			return Plan{}, c.planErr(err)
		}
		c.lastPlan = chosen
		solves := c.plannerWork() - solvesBefore
		c.solvesSeen += solves
		plan := Plan{TotalBatch: chosen.TotalBatch, Local: chosen.Batches, Solves: solves}
		c.attachPlannerAudit(&plan)
		return plan, nil
	}

	// Section 4.5 "Total batch size selection": in the initialization epoch
	// OptPerf_init is computed for every candidate; later epochs select the
	// total batch size from the cached OptPerf_init and only re-determine
	// OptPerf for the chosen candidate, unless the overlap pattern drifted.
	if c.initPlans == nil {
		if err := c.computeInitPlans(env); err != nil {
			return Plan{}, c.planErr(err)
		}
	}
	sel, err := goodput.Select(c.initPlans, c.tracker.Noise(), env.Workload.InitBatch)
	if err != nil {
		return Plan{}, fmt.Errorf("cannikin goodput: %w", err)
	}
	chosen, err := c.planner.Plan(sel.Batch)
	if err != nil {
		return Plan{}, c.planErr(err)
	}
	if prev, ok := c.overlapSignature[chosen.TotalBatch]; ok && prev != chosen.NumComputeBound() {
		// Overlap pattern changed: re-determine every candidate
		// (Section 4.5), then re-select.
		c.planner.InvalidateCache()
		if err := c.computeInitPlans(env); err != nil {
			return Plan{}, c.planErr(err)
		}
		if sel, err = goodput.Select(c.initPlans, c.tracker.Noise(), env.Workload.InitBatch); err != nil {
			return Plan{}, fmt.Errorf("cannikin goodput: %w", err)
		}
		if chosen, err = c.planner.Plan(sel.Batch); err != nil {
			return Plan{}, c.planErr(err)
		}
	} else {
		// Refresh OptPerf_init for the chosen candidate only.
		for i := range c.initPlans {
			if c.initPlans[i].Batch == chosen.TotalBatch {
				c.initPlans[i].Time = chosen.Time
			}
		}
	}
	c.overlapSignature[chosen.TotalBatch] = chosen.NumComputeBound()
	// Reconfiguration stickiness: model refreshes wiggle the optimal
	// allocation by a sample or two; reloading every node's data index for
	// a sub-1% predicted gain costs more than it saves.
	if c.lastPlan.TotalBatch == chosen.TotalBatch && len(c.lastPlan.Batches) == len(chosen.Batches) {
		prevTime := c.planner.Model().PredictTime(c.lastPlan.Batches)
		if prevTime <= chosen.Time*1.01 {
			chosen.Batches = c.lastPlan.Batches
			chosen.Time = prevTime
		}
	}
	c.lastPlan = chosen
	solves := c.plannerWork() - solvesBefore
	c.solvesSeen += solves
	plan := Plan{TotalBatch: chosen.TotalBatch, Local: chosen.Batches, Solves: solves}
	c.attachPlannerAudit(&plan)
	return plan, nil
}

// attachAllocationAudit validates a bootstrap/reprofile allocation against
// the batch-sum and box invariants (no fitted model exists yet, so the
// equalization conditions cannot be checked) and attaches the outcome. In
// strict mode a violation fails the plan.
func (c *Cannikin) attachAllocationAudit(plan *Plan, env *Env) error {
	if c.Audit == optperf.AuditOff {
		return nil
	}
	report := optperf.AuditAllocation(plan.Local, plan.TotalBatch, env.Caps)
	pa := &PlanAudit{}
	pa.Summary.Add(report)
	plan.Audit = pa
	if c.Audit == optperf.AuditStrict {
		if err := report.Err(); err != nil {
			return fmt.Errorf("cannikin bootstrap plan: %w", err)
		}
	}
	return nil
}

// attachPlannerAudit drains the planner's accumulated per-solve audit
// reports into the plan, annotated with the learner's current fit error so
// residuals can be read in context.
func (c *Cannikin) attachPlannerAudit(plan *Plan) {
	if c.Audit == optperf.AuditOff {
		return
	}
	plan.Audit = &PlanAudit{
		Summary:       c.planner.DrainAudit(),
		ModelFitError: c.learner.MaxFitError(),
	}
}

// planErr drains the audit accumulator on a failed solve so a later epoch
// does not double-report the failure, and passes the error through.
func (c *Cannikin) planErr(err error) error {
	if c.planner != nil {
		c.planner.DrainAudit()
	}
	return err
}

// reprofilePlan probes only the drifted nodes (Section 4.5's re-learning,
// made targeted): healthy nodes keep their last-plan batches — their
// models are still valid — while each drifted node is reallocated in
// proportion to its freshly measured per-sample speed, then nudged to an
// unseen batch size so its linear compute model can refit from two
// distinct points. The total batch is preserved by balancing the
// difference across the healthy nodes, and the probe work is charged as
// bounded re-profile overhead.
func (c *Cannikin) reprofilePlan(env *Env) (Plan, error) {
	perSample, err := c.learner.PerSampleTimes()
	if err != nil {
		return Plan{}, fmt.Errorf("cannikin reprofile: %w", err)
	}
	n := env.Cluster.N()
	drifted := make(map[int]bool, len(c.reprofile))
	for _, i := range c.reprofile {
		drifted[i] = true
	}
	probes := len(c.reprofile)
	c.reprofile = nil

	local := append([]int(nil), c.lastPlan.Batches...)
	total := 0
	for _, b := range local {
		total += b
	}
	sumSpeed := 0.0
	for i := 0; i < n; i++ {
		if perSample[i] <= 0 {
			return Plan{}, fmt.Errorf("cannikin reprofile: node %d per-sample time %v", i, perSample[i])
		}
		sumSpeed += 1 / perSample[i]
	}
	for i := range local {
		if !drifted[i] {
			continue
		}
		// Eq. 8 proportional target from the drifted epoch's measurements.
		b := int(float64(total) / (perSample[i] * sumSpeed))
		if b < 1 {
			b = 1
		}
		if b > env.Caps[i] {
			b = env.Caps[i]
		}
		local[i] = b
	}
	// Restore the total on the healthy nodes (every node when the whole
	// cluster drifted).
	sum := 0
	for _, b := range local {
		sum += b
	}
	relaxed := probes >= n
	for sum != total {
		progressed := false
		for i := 0; i < n; i++ {
			if sum == total {
				break
			}
			if drifted[i] && !relaxed {
				continue
			}
			if sum < total && local[i] < env.Caps[i] {
				local[i]++
				sum++
				progressed = true
			} else if sum > total && local[i] > 1 {
				local[i]--
				sum--
				progressed = true
			}
		}
		if !progressed {
			// The healthy nodes alone cannot absorb the difference (caps or
			// floors); spread the remainder over the probed nodes too.
			if !relaxed {
				relaxed = true
				continue
			}
			return Plan{}, fmt.Errorf("cannikin reprofile: cannot rebalance to total %d", total)
		}
	}
	c.forceDistinct(env, local)
	plan := Plan{TotalBatch: total, Local: local, Reprofiled: probes}
	if err := c.attachAllocationAudit(&plan, env); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

// forceDistinct perturbs a bootstrap allocation so every node trains at a
// local batch size it has not seen, moving single samples between nodes to
// preserve the total: fitting a node's linear compute model needs two
// distinct sizes. Nodes stuck at the minimum borrow from the richest donor.
func (c *Cannikin) forceDistinct(env *Env, local []int) {
	needsChange := func(i int) bool {
		l := c.learner.Node(i)
		return l.Observations() > 0 && l.DistinctBatches() < 2 && l.SeenBatch(local[i])
	}
	pending := make(map[int]bool)
	for i := range local {
		if needsChange(i) {
			pending[i] = true
		}
	}
	richestDonor := func(exclude int) int {
		best := -1
		for j := range local {
			if j == exclude || pending[j] || local[j] <= 1 {
				continue
			}
			if best < 0 || local[j] > local[best] {
				best = j
			}
		}
		return best
	}
	for i := range local {
		if !pending[i] {
			continue
		}
		switch {
		case local[i] < env.Caps[i]:
			if j := richestDonor(i); j >= 0 {
				local[i]++
				local[j]--
				delete(pending, i)
				continue
			}
		}
		if local[i] > 1 {
			// Give a sample to any non-pending node with headroom.
			for j := range local {
				if j != i && !pending[j] && local[j] < env.Caps[j] {
					local[i]--
					local[j]++
					delete(pending, i)
					break
				}
			}
		}
	}
	// Any still-pending nodes pair among themselves (+1/-1).
	var rest []int
	for i := range local {
		if pending[i] {
			rest = append(rest, i)
		}
	}
	for k := 0; k+1 < len(rest); k += 2 {
		a, b := rest[k], rest[k+1]
		if local[a] < env.Caps[a] && local[b] > 1 {
			local[a]++
			local[b]--
		} else if local[b] < env.Caps[b] && local[a] > 1 {
			local[b]++
			local[a]--
		}
	}
}

// computeInitPlans solves OptPerf for every candidate (the initialization
// sweep of Section 4.5) and records the overlap signatures.
func (c *Cannikin) computeInitPlans(env *Env) error {
	plans, err := c.planner.PlanAll(env.Candidates)
	if err != nil {
		return fmt.Errorf("cannikin optperf init: %w", err)
	}
	c.initPlans = make([]goodput.Candidate, len(plans))
	for i, p := range plans {
		c.initPlans[i] = goodput.Candidate{Batch: p.TotalBatch, Time: p.Time}
		c.overlapSignature[p.TotalBatch] = p.NumComputeBound()
	}
	return nil
}

// plannerWork totals the solver effort counters.
func (c *Cannikin) plannerWork() int {
	s := c.planner.Stats()
	return s.LinearSolves + s.BoundarySearchSteps
}

// ObserveStep implements System: feed the per-node compute and comm
// measurements to the learners, and the gradient norms to the GNS tracker.
func (c *Cannikin) ObserveStep(env *Env, obs StepObs) {
	for i, ns := range obs.Step.PerNode {
		c.learner.Node(i).Observe(ns.Batch, ns.A, ns.P)
		c.commGamma[i].Add(ns.Gamma)
		c.commTo[i].Add(ns.To)
		c.commTu[i].Add(ns.Tu)
	}
	if obs.GNS != nil {
		var est gns.Estimate
		var err error
		if c.UseOptimalGNS {
			est, err = gns.EstimateOptimal(*obs.GNS)
		} else {
			est, err = gns.EstimateNaive(*obs.GNS)
		}
		if err == nil {
			c.tracker.Observe(est)
		}
	}
}

// ObserveEpochEnd implements System: each node reports its epoch-level
// communication-constant observation with an honest variance, then the
// accumulators reset.
func (c *Cannikin) ObserveEpochEnd(env *Env) {
	for i := range c.commGamma {
		if c.commGamma[i].N() < 2 {
			continue
		}
		nObs := float64(c.commGamma[i].N())
		c.learner.ObserveComm(perfmodel.CommObservation{
			Gamma: c.commGamma[i].Mean(), GammaVar: c.commGamma[i].Var() / nObs,
			To: c.commTo[i].Mean(), ToVar: c.commTo[i].Var() / nObs,
			Tu: c.commTu[i].Mean(), TuVar: c.commTu[i].Var() / nObs,
		})
		c.commGamma[i] = stats.Welford{}
		c.commTo[i] = stats.Welford{}
		c.commTu[i] = stats.Welford{}
	}
	c.learner.EndEpoch()
	if c.learner.AnyDrifted() {
		// Resources changed — a node's compute share or a network link:
		// every cached OptPerf prediction is stale. Drop them and
		// re-determine from the fresh model, probing the drifted nodes
		// first.
		c.initPlans = nil
		if c.planner != nil {
			c.planner.InvalidateCache()
		}
		c.reprofile = c.learner.DriftedNodes()
	}
}

// Noise exposes the smoothed heterogeneous GNS estimate.
func (c *Cannikin) Noise() float64 { return c.tracker.Noise() }

// PlanningWork returns the cumulative solver operations spent planning
// (the quantity Table 6's overhead model charges).
func (c *Cannikin) PlanningWork() int { return c.solvesSeen }

// LastPlan returns the most recent OptPerf plan (for experiments).
func (c *Cannikin) LastPlan() optperf.Plan { return c.lastPlan }

// LearnedModel returns the current learned cluster model, or an error
// before enough epochs have run.
func (c *Cannikin) LearnedModel(env *Env) (optperf.ClusterModel, error) {
	if c.learner == nil {
		return optperf.ClusterModel{}, fmt.Errorf("cannikin: no observations yet")
	}
	return c.learner.Model(env.Caps)
}
