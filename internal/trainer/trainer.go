// Package trainer implements the training systems compared in the paper's
// evaluation — Cannikin (Section 4), AdaptDL, LB-BSP, PyTorch DDP, and
// HetPipe — and the epoch engine that runs them against the simulated
// heterogeneous clusters.
//
// All data-parallel systems implement the System interface and are driven
// by Run: per epoch the system plans a total batch size and a local
// allocation, the engine executes the epoch on the cluster simulator,
// and the system observes the measurements. Statistical progress follows
// the convergence model; scheduling overhead (candidate evaluation,
// per-node configuration) is charged in simulated time so Table 6 can be
// reproduced.
package trainer

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cannikin/internal/chaos"
	"cannikin/internal/cluster"
	"cannikin/internal/convergence"
	"cannikin/internal/gns"
	"cannikin/internal/goodput"
	"cannikin/internal/optperf"
	"cannikin/internal/rng"
	"cannikin/internal/workload"
)

// Env is the read-only environment a System plans against.
type Env struct {
	Cluster  *cluster.Cluster
	Workload workload.Workload
	// Caps are per-node memory-limited local batch caps for this job.
	Caps []int
	// Capacity is the sum of Caps.
	Capacity int
	// MinTotal and MaxTotal bound the total batch size range: at least one
	// sample per node, at most min(workload range, memory capacity).
	MinTotal, MaxTotal int
	// Candidates are the total batch size candidates of the adaptive
	// batch-size engine.
	Candidates []int
}

// NewEnv prepares the environment for a job on a cluster.
func NewEnv(c *cluster.Cluster, w workload.Workload) (*Env, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	caps := c.Caps(w.Profile)
	capacity := 0
	for i, cp := range caps {
		if cp < 1 {
			return nil, fmt.Errorf("trainer: node %d cannot hold one %s sample", i, w.Name)
		}
		capacity += cp
	}
	minTotal := c.N()
	if w.InitBatch > minTotal {
		minTotal = w.InitBatch
	}
	maxTotal := w.MaxBatch
	if capacity < maxTotal {
		maxTotal = capacity
	}
	if maxTotal < minTotal {
		return nil, fmt.Errorf("trainer: batch range empty: min %d > max %d", minTotal, maxTotal)
	}
	cands, err := goodput.CandidateRange(minTotal, maxTotal, 15)
	if err != nil {
		return nil, err
	}
	return &Env{
		Cluster:    c,
		Workload:   w,
		Caps:       caps,
		Capacity:   capacity,
		MinTotal:   minTotal,
		MaxTotal:   maxTotal,
		Candidates: cands,
	}, nil
}

// EvenSplit distributes total across n nodes as evenly as caps permit.
func (e *Env) EvenSplit(total int) ([]int, error) {
	n := e.Cluster.N()
	if total < n {
		return nil, fmt.Errorf("trainer: total %d below %d nodes", total, n)
	}
	out := make([]int, n)
	base, rem := total/n, total%n
	overflow := 0
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
		if out[i] > e.Caps[i] {
			overflow += out[i] - e.Caps[i]
			out[i] = e.Caps[i]
		}
	}
	for overflow > 0 {
		progressed := false
		for i := range out {
			if overflow == 0 {
				break
			}
			if out[i] < e.Caps[i] {
				out[i]++
				overflow--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("trainer: total %d exceeds capacity %d", total, e.Capacity)
		}
	}
	return out, nil
}

// Plan is one epoch's training configuration.
type Plan struct {
	TotalBatch int
	Local      []int
	// Solves counts the OptPerf-style linear solves spent planning (the
	// engine charges them as scheduling overhead).
	Solves int
	// Reprofiled counts the nodes this plan probes to re-learn a drifted
	// compute model (the engine charges a bounded per-node re-profile
	// cost).
	Reprofiled int
	// Audit records the audit outcome of the solves behind this plan (nil
	// when auditing is off or the system does not audit).
	Audit *PlanAudit
}

// PlanAudit is the audit outcome of the solves behind one epoch plan.
type PlanAudit struct {
	// Summary aggregates the per-solve invariant-check reports.
	Summary optperf.AuditSummary
	// ModelFitError is the learner's worst per-node relative fit residual
	// when the plan came from a learned model (0 on bootstrap plans): the
	// confidence context for reading the audit residuals.
	ModelFitError float64
}

// StepObs is delivered to the system after every simulated step.
type StepObs struct {
	Step cluster.StepResult
	// GNS carries synthesized gradient-norm observations on the steps
	// where the engine samples them (nil otherwise).
	GNS *gns.Sample
}

// System is a data-parallel training strategy.
type System interface {
	Name() string
	// PlanEpoch decides the next epoch's batch configuration.
	PlanEpoch(env *Env, epoch int) (Plan, error)
	// ObserveStep feeds back one executed step's measurements.
	ObserveStep(env *Env, obs StepObs)
	// ObserveEpochEnd marks the epoch boundary.
	ObserveEpochEnd(env *Env)
}

// EpochStats records one executed epoch.
type EpochStats struct {
	Epoch        int
	TotalBatch   int
	Local        []int
	Steps        int
	AvgBatchTime float64
	// TrainTime is the epoch's training time; Overhead is the scheduling
	// overhead charged before the epoch; SimTimeEnd is the cumulative
	// simulated time when the epoch finished.
	TrainTime  float64
	Overhead   float64
	SimTimeEnd float64
	Metric     float64
	Progress   float64
	// Events lists the dynamic-heterogeneity perturbations (and automatic
	// recoveries) that took effect at this epoch's boundary.
	Events []chaos.Applied
	// Reprofiled counts the nodes this epoch's plan probed to re-learn a
	// drifted performance model.
	Reprofiled int
	// Audit is the plan's audit outcome (nil when auditing is off).
	Audit *PlanAudit
}

// Result is a full training run.
type Result struct {
	System    string
	Workload  string
	Cluster   string
	Epochs    []EpochStats
	Converged bool
	// ConvergeTime is the simulated time at which the target metric was
	// reached (equals TotalTime when Converged).
	ConvergeTime float64
	TotalTime    float64
	// TotalOverhead is the cumulative scheduling overhead.
	TotalOverhead float64
}

// FinalMetric returns the last recorded metric value.
func (r *Result) FinalMetric() float64 {
	if len(r.Epochs) == 0 {
		return math.NaN()
	}
	return r.Epochs[len(r.Epochs)-1].Metric
}

// Config configures a training run.
type Config struct {
	Cluster  *cluster.Cluster
	Workload workload.Workload
	System   System
	Seed     uint64
	// MaxEpochs is a safety stop (default 500).
	MaxEpochs int
	// GNSEvery samples gradient norms every k simulated steps (default 2).
	GNSEvery int
	// MaxSimSteps caps the number of *simulated* cluster steps per epoch;
	// longer epochs are strided, charging each simulated step for the
	// logical steps it covers (default 192).
	MaxSimSteps int
	// Events injects dynamic resource changes — the "sudden changes of
	// resources" in clusters with dynamic allocation that the paper's
	// introduction motivates. Each takes effect at its epoch boundary.
	// Chaos is the richer superset; both may be combined.
	Events []ResourceEvent
	// Chaos schedules dynamic-heterogeneity perturbations — compute-share
	// churn, per-link bandwidth shifts, transient stragglers — applied at
	// epoch boundaries and annotated on the resulting EpochStats.
	Chaos chaos.Schedule
	// OnEpoch, when non-nil, streams each epoch's stats to the caller as
	// soon as the epoch completes; returning an error aborts the run.
	OnEpoch func(EpochStats) error
}

// ResourceEvent changes a node's available compute at an epoch boundary.
type ResourceEvent struct {
	// Epoch is when the change takes effect (before planning).
	Epoch int
	// Node is the affected node index.
	Node int
	// ComputeShare is the node's new compute fraction in (0, 1].
	ComputeShare float64
}

func (c *Config) defaults() {
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 500
	}
	if c.GNSEvery <= 0 {
		c.GNSEvery = 2
	}
	if c.MaxSimSteps <= 0 {
		c.MaxSimSteps = 192
	}
}

// Scheduling-overhead cost model (Section 5.4): each OptPerf-style linear
// solve costs kappa*(n+1)^3; reconfiguring a node's local batch size and
// data index costs a fixed per-node term plus a per-sample index term.
// Re-profiling a drifted node costs a bounded per-node probe term (timer
// instrumentation plus the model refit).
const (
	solveKappa      = 2e-7
	nodeConfigCost  = 1.5e-3
	sampleIndexCost = 3e-6
	reprofileCost   = 2.5e-3
)

// planOverhead converts planning work into simulated seconds.
func planOverhead(env *Env, plan Plan, changed bool) float64 {
	n := float64(env.Cluster.N())
	cost := float64(plan.Solves) * solveKappa * math.Pow(n+1, 3)
	cost += float64(plan.Reprofiled) * reprofileCost
	if changed {
		cost += n*nodeConfigCost + float64(plan.TotalBatch)*sampleIndexCost
	}
	return cost
}

// Run executes a full training job and returns its trace.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// chaosSchedule merges the legacy ResourceEvents with the chaos schedule.
func (c *Config) chaosSchedule() chaos.Schedule {
	events := append([]chaos.Event(nil), c.Chaos.Events...)
	for _, ev := range c.Events {
		events = append(events, chaos.Event{
			Epoch: ev.Epoch,
			Node:  ev.Node,
			Kind:  chaos.KindComputeShare,
			Value: ev.ComputeShare,
		})
	}
	return chaos.Schedule{Events: events}
}

// RunContext executes a full training job and returns its trace.
// Cancellation is checked at every epoch boundary.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.defaults()
	if cfg.Cluster == nil || cfg.System == nil {
		return nil, errors.New("trainer: cluster and system are required")
	}
	env, err := NewEnv(cfg.Cluster, cfg.Workload)
	if err != nil {
		return nil, err
	}
	state, err := convergence.NewState(cfg.Workload.Convergence, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	var injector *chaos.Injector
	if sched := cfg.chaosSchedule(); !sched.Empty() {
		injector, err = chaos.NewInjector(sched, cfg.Cluster)
		if err != nil {
			return nil, fmt.Errorf("trainer: %w", err)
		}
	}

	res := &Result{
		System:   cfg.System.Name(),
		Workload: cfg.Workload.Name,
		Cluster:  cfg.Cluster.Name,
	}
	simTime := 0.0
	var prevLocal []int

	for epoch := 0; epoch < cfg.MaxEpochs && !state.Done(); epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("trainer: %s canceled at epoch %d: %w", cfg.System.Name(), epoch, err)
		}
		var applied []chaos.Applied
		if injector != nil {
			applied, err = injector.BeginEpoch(epoch)
			if err != nil {
				return nil, fmt.Errorf("trainer: epoch %d: %w", epoch, err)
			}
		}
		plan, err := cfg.System.PlanEpoch(env, epoch)
		if err != nil {
			return nil, fmt.Errorf("trainer: %s epoch %d: %w", cfg.System.Name(), epoch, err)
		}
		if err := validatePlan(env, plan); err != nil {
			return nil, fmt.Errorf("trainer: %s epoch %d: %w", cfg.System.Name(), epoch, err)
		}
		changed := !sameAllocation(prevLocal, plan.Local)
		overhead := planOverhead(env, plan, changed)
		simTime += overhead
		res.TotalOverhead += overhead
		prevLocal = append(prevLocal[:0], plan.Local...)

		cfg.Cluster.BeginEpoch(epoch)

		logicalSteps := cfg.Workload.DatasetSize / plan.TotalBatch
		if logicalSteps < 1 {
			logicalSteps = 1
		}
		stride := 1
		if logicalSteps > cfg.MaxSimSteps {
			stride = (logicalSteps + cfg.MaxSimSteps - 1) / cfg.MaxSimSteps
		}

		stats := EpochStats{
			Epoch:      epoch,
			TotalBatch: plan.TotalBatch,
			Local:      append([]int(nil), plan.Local...),
			Events:     applied,
			Reprofiled: plan.Reprofiled,
			Audit:      plan.Audit,
		}
		var timeSum float64
		done := false
		for logical := 0; logical < logicalSteps && !done; logical += stride {
			// Cancellation must also surface mid-epoch — a long epoch (many
			// simulated steps) or a final epoch would otherwise swallow it.
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("trainer: %s canceled at epoch %d: %w", cfg.System.Name(), epoch, err)
			}
			step, err := cfg.Cluster.Step(cfg.Workload.Profile, plan.Local)
			if err != nil {
				return nil, fmt.Errorf("trainer: %s epoch %d: %w", cfg.System.Name(), epoch, err)
			}
			cover := stride
			if logical+cover > logicalSteps {
				cover = logicalSteps - logical
			}
			obs := StepObs{Step: step}
			if stats.Steps%cfg.GNSEvery == 0 {
				sample := state.GradientNorms(plan.Local)
				obs.GNS = &sample
			}
			cfg.System.ObserveStep(env, obs)

			// Advance statistical progress for each logical step covered,
			// charging simulated time as we go so the convergence instant
			// is interpolated within the stride.
			for k := 0; k < cover; k++ {
				simTime += step.Time
				timeSum += step.Time
				state.Advance(plan.TotalBatch)
				if state.Done() {
					done = true
					break
				}
			}
			stats.Steps++
		}
		cfg.System.ObserveEpochEnd(env)

		stats.TrainTime = timeSum
		stats.Overhead = overhead
		stats.SimTimeEnd = simTime
		stats.Metric = state.Metric()
		stats.Progress = state.Progress()
		if stats.Steps > 0 {
			stats.AvgBatchTime = timeSum / float64(stats.Steps*stride)
			if done {
				// Partial strides make the divisor approximate; recompute
				// from logical coverage.
				stats.AvgBatchTime = timeSum / (float64(stats.Steps-1)*float64(stride) + 1)
			}
		}
		res.Epochs = append(res.Epochs, stats)
		if cfg.OnEpoch != nil {
			if err := cfg.OnEpoch(stats); err != nil {
				return nil, fmt.Errorf("trainer: %s epoch %d: %w", cfg.System.Name(), epoch, err)
			}
		}
		// A context canceled inside the hook (or while the epoch simulated)
		// must abort now, even when this was the final epoch: a canceled run
		// never reports success.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("trainer: %s canceled at epoch %d: %w", cfg.System.Name(), epoch, err)
		}
	}
	res.Converged = state.Done()
	res.TotalTime = simTime
	if res.Converged {
		res.ConvergeTime = simTime
	}
	return res, nil
}

func validatePlan(env *Env, plan Plan) error {
	if len(plan.Local) != env.Cluster.N() {
		return fmt.Errorf("plan has %d local batches for %d nodes", len(plan.Local), env.Cluster.N())
	}
	sum := 0
	for i, b := range plan.Local {
		if b < 1 {
			return fmt.Errorf("node %d local batch %d", i, b)
		}
		if b > env.Caps[i] {
			return fmt.Errorf("node %d local batch %d exceeds cap %d", i, b, env.Caps[i])
		}
		sum += b
	}
	if sum != plan.TotalBatch {
		return fmt.Errorf("local batches sum %d != total %d", sum, plan.TotalBatch)
	}
	return nil
}

func sameAllocation(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
