package trainer

import (
	"context"
	"errors"
	"testing"

	"cannikin/internal/chaos"
)

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{
		Cluster:  mustCluster(t, "a", 3),
		Workload: mustWorkload(t, "cifar10"),
		System:   NewCannikin(),
		Seed:     3,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCanceledMidEpoch is the regression test for mid-epoch
// cancellation: a context canceled from inside the OnEpoch hook — i.e.
// while the run is live, between epoch boundaries — must abort with the
// context's error in the chain even when it is the FINAL epoch, where the
// old boundary-only check would let the run report success.
func TestRunContextCanceledMidEpoch(t *testing.T) {
	const maxEpochs = 4
	for _, cancelAt := range []int{1, maxEpochs - 1} {
		ctx, cancel := context.WithCancel(context.Background())
		res, err := RunContext(ctx, Config{
			Cluster:   mustCluster(t, "a", 7),
			Workload:  mustWorkload(t, "cifar10"),
			System:    NewDDP(),
			Seed:      7,
			MaxEpochs: maxEpochs,
			OnEpoch: func(s EpochStats) error {
				if s.Epoch == cancelAt {
					cancel()
				}
				return nil
			},
		})
		cancel()
		if err == nil {
			t.Fatalf("cancel at epoch %d: run reported success: %+v", cancelAt, res)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel at epoch %d: error chain lacks context.Canceled: %v", cancelAt, err)
		}
	}
}

// TestHetPipeCanceledMidEpoch mirrors the mid-epoch rule for the pipeline
// trainer, including on its final epoch.
func TestHetPipeCanceledMidEpoch(t *testing.T) {
	env, err := NewEnv(mustCluster(t, "a", 15), mustWorkload(t, "cifar10"))
	if err != nil {
		t.Fatal(err)
	}
	const maxEpochs = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h := NewHetPipe()
	res, err := h.RunContext(ctx, env, PipeOpts{
		Seed:      15,
		MaxEpochs: maxEpochs,
		OnEpoch: func(s EpochStats) error {
			if s.Epoch == maxEpochs-1 {
				cancel()
			}
			return nil
		},
	})
	if err == nil {
		t.Fatalf("canceled hetpipe run reported success: %+v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error chain lacks context.Canceled: %v", err)
	}
}

func TestOnEpochStreamsInOrder(t *testing.T) {
	var seen []int
	res, err := Run(Config{
		Cluster:   mustCluster(t, "a", 5),
		Workload:  mustWorkload(t, "cifar10"),
		System:    NewDDP(),
		Seed:      5,
		MaxEpochs: 6,
		OnEpoch: func(s EpochStats) error {
			seen = append(seen, s.Epoch)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Epochs) {
		t.Fatalf("hook fired %d times for %d epochs", len(seen), len(res.Epochs))
	}
	for i, e := range seen {
		if e != i {
			t.Fatalf("epoch %d reported at position %d", e, i)
		}
	}
}

func TestOnEpochErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(Config{
		Cluster:   mustCluster(t, "a", 5),
		Workload:  mustWorkload(t, "cifar10"),
		System:    NewDDP(),
		Seed:      5,
		MaxEpochs: 6,
		OnEpoch: func(s EpochStats) error {
			if s.Epoch == 2 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestChaosEventsAnnotated(t *testing.T) {
	res, err := Run(Config{
		Cluster:   mustCluster(t, "a", 9),
		Workload:  mustWorkload(t, "cifar10"),
		System:    NewCannikin(),
		Seed:      9,
		MaxEpochs: 12,
		Chaos: chaos.Schedule{Events: []chaos.Event{
			{Epoch: 4, Node: 0, Kind: chaos.KindComputeShare, Value: 0.3},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) <= 4 {
		t.Fatalf("run ended after %d epochs", len(res.Epochs))
	}
	ev := res.Epochs[4].Events
	if len(ev) != 1 || ev[0].Kind != chaos.KindComputeShare || ev[0].Node != 0 {
		t.Fatalf("epoch 4 events = %v", ev)
	}
	for i, s := range res.Epochs {
		if i != 4 && len(s.Events) != 0 {
			t.Fatalf("epoch %d has stray events %v", i, s.Events)
		}
	}
}

func TestCannikinReprofilesAfterChaos(t *testing.T) {
	res, err := Run(Config{
		Cluster:   mustCluster(t, "a", 21),
		Workload:  mustWorkload(t, "imagenet"),
		System:    NewCannikin(),
		Seed:      21,
		MaxEpochs: 16,
		Chaos: chaos.Schedule{Events: []chaos.Event{
			{Epoch: 6, Node: 0, Kind: chaos.KindComputeShare, Value: 0.25},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	reprofiled := false
	for _, s := range res.Epochs {
		if s.Epoch > 6 && s.Reprofiled > 0 {
			reprofiled = true
			if s.Overhead <= 0 {
				t.Fatalf("epoch %d reprofiled %d nodes with zero overhead", s.Epoch, s.Reprofiled)
			}
		}
	}
	if !reprofiled {
		t.Fatal("cannikin never re-profiled after the compute-share drop")
	}
}

func TestHetPipeChaosDegrades(t *testing.T) {
	env, err := NewEnv(mustCluster(t, "a", 13), mustWorkload(t, "cifar10"))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHetPipe()
	res, err := h.RunContext(context.Background(), env, PipeOpts{
		Seed:      13,
		MaxEpochs: 10,
		Chaos: chaos.Schedule{Events: []chaos.Event{
			{Epoch: 3, Node: 0, Kind: chaos.KindComputeShare, Value: 0.25},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) <= 3 {
		t.Fatalf("run ended after %d epochs", len(res.Epochs))
	}
	before := res.Epochs[2].AvgBatchTime
	after := res.Epochs[3].AvgBatchTime
	if after <= before*1.5 {
		t.Fatalf("frozen partition should degrade: before %.4f after %.4f", before, after)
	}
	if len(res.Epochs[3].Events) != 1 {
		t.Fatalf("epoch 3 events = %v", res.Epochs[3].Events)
	}
}

func TestLegacyResourceEventsStillApply(t *testing.T) {
	res, err := Run(Config{
		Cluster:   mustCluster(t, "a", 17),
		Workload:  mustWorkload(t, "cifar10"),
		System:    NewDDP(),
		Seed:      17,
		MaxEpochs: 8,
		Events:    []ResourceEvent{{Epoch: 3, Node: 1, ComputeShare: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) <= 3 {
		t.Fatalf("run ended after %d epochs", len(res.Epochs))
	}
	ev := res.Epochs[3].Events
	if len(ev) != 1 || ev[0].Kind != chaos.KindComputeShare || ev[0].Node != 1 {
		t.Fatalf("legacy event not annotated: %v", ev)
	}
}
