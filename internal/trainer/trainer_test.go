package trainer

import (
	"testing"

	"cannikin/internal/cluster"
	"cannikin/internal/rng"
	"cannikin/internal/stats"
	"cannikin/internal/workload"
)

func mustCluster(t *testing.T, preset string, seed uint64) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Preset(preset, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runSystem(t *testing.T, preset, wl string, sys System, seed uint64) *Result {
	t.Helper()
	res, err := Run(Config{
		Cluster:  mustCluster(t, preset, seed),
		Workload: mustWorkload(t, wl),
		System:   sys,
		Seed:     seed,
	})
	if err != nil {
		t.Fatalf("%s on %s/%s: %v", sys.Name(), preset, wl, err)
	}
	if !res.Converged {
		t.Fatalf("%s on %s/%s did not converge in %d epochs (progress %.3f)",
			sys.Name(), preset, wl, len(res.Epochs), res.Epochs[len(res.Epochs)-1].Progress)
	}
	return res
}

func TestEnvSetup(t *testing.T) {
	env, err := NewEnv(mustCluster(t, "a", 1), mustWorkload(t, "cifar10"))
	if err != nil {
		t.Fatal(err)
	}
	if env.MinTotal != 64 {
		t.Fatalf("MinTotal = %d, want B0=64", env.MinTotal)
	}
	if env.MaxTotal < env.MinTotal || env.MaxTotal > 4096 {
		t.Fatalf("MaxTotal = %d", env.MaxTotal)
	}
	if len(env.Candidates) < 5 {
		t.Fatalf("too few candidates: %v", env.Candidates)
	}
	if env.Candidates[0] != env.MinTotal || env.Candidates[len(env.Candidates)-1] != env.MaxTotal {
		t.Fatalf("candidate endpoints: %v", env.Candidates)
	}
}

func TestEvenSplit(t *testing.T) {
	env, err := NewEnv(mustCluster(t, "a", 1), mustWorkload(t, "cifar10"))
	if err != nil {
		t.Fatal(err)
	}
	local, err := env.EvenSplit(64)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, b := range local {
		sum += b
	}
	if sum != 64 {
		t.Fatalf("even split sums to %d", sum)
	}
	if local[0]-local[2] > 1 {
		t.Fatalf("split not even: %v", local)
	}
	if _, err := env.EvenSplit(2); err == nil {
		t.Fatal("split below node count accepted")
	}
}

func TestDDPConvergesWithFixedBatch(t *testing.T) {
	res := runSystem(t, "a", "cifar10", NewDDP(), 1)
	for _, e := range res.Epochs {
		if e.TotalBatch != res.Epochs[0].TotalBatch {
			t.Fatal("DDP changed its batch size")
		}
		if max(e.Local...)-min(e.Local...) > 1 {
			t.Fatalf("DDP split not even: %v", e.Local)
		}
	}
	if res.TotalOverhead > res.TotalTime*0.001 {
		t.Fatalf("DDP overhead %v should be negligible", res.TotalOverhead)
	}
}

func TestCannikinConvergesAndAdaptsBatch(t *testing.T) {
	res := runSystem(t, "a", "cifar10", NewCannikin(), 1)
	first := res.Epochs[0].TotalBatch
	last := res.Epochs[len(res.Epochs)-1].TotalBatch
	if last <= first {
		t.Fatalf("batch size did not grow: %d -> %d", first, last)
	}
	// Batch growth should be substantial as the GNS grows (Fig. 5).
	if last < 4*first {
		t.Fatalf("batch grew only %d -> %d", first, last)
	}
	if res.TotalOverhead <= 0 {
		t.Fatal("Cannikin overhead not recorded")
	}
}

func TestCannikinUnevenAllocationFavorsFastNodes(t *testing.T) {
	res := runSystem(t, "a", "cifar10", NewCannikin(), 2)
	// After learning (epoch >= 2), the A5000 (node 0) must get more work
	// than the P4000 (node 2).
	for _, e := range res.Epochs[3:] {
		if e.Local[0] <= e.Local[2] {
			t.Fatalf("epoch %d: fast node %d <= slow node %d (%v)", e.Epoch, e.Local[0], e.Local[2], e.Local)
		}
	}
}

func TestCannikinBeatsDDPOnHeterogeneousCluster(t *testing.T) {
	ddp := runSystem(t, "a", "cifar10", NewDDP(), 3)
	can := runSystem(t, "a", "cifar10", NewCannikin(), 3)
	if can.ConvergeTime >= ddp.ConvergeTime {
		t.Fatalf("Cannikin %.1fs not faster than DDP %.1fs", can.ConvergeTime, ddp.ConvergeTime)
	}
	// The paper reports up to 85% reduction; demand at least 2x here.
	if can.ConvergeTime > ddp.ConvergeTime/2 {
		t.Logf("warning: speedup only %.2fx", ddp.ConvergeTime/can.ConvergeTime)
	}
}

func TestCannikinBeatsAdaptDLOnHeterogeneousCluster(t *testing.T) {
	adl := runSystem(t, "a", "cifar10", NewAdaptDL(), 4)
	can := runSystem(t, "a", "cifar10", NewCannikin(), 4)
	if can.ConvergeTime >= adl.ConvergeTime {
		t.Fatalf("Cannikin %.1fs not faster than AdaptDL %.1fs", can.ConvergeTime, adl.ConvergeTime)
	}
}

func TestCannikinLearnsAccurateModel(t *testing.T) {
	c := mustCluster(t, "a", 5)
	w := mustWorkload(t, "cifar10")
	sys := NewCannikin()
	res, err := Run(Config{Cluster: c, Workload: w, System: sys, Seed: 5, MaxEpochs: 8})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	env, err := NewEnv(c, w)
	if err != nil {
		t.Fatal(err)
	}
	learned, err := sys.LearnedModel(env)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := c.TrueModel(w.Profile)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Nodes {
		at64 := learned.Nodes[i].Compute(64)
		want := truth.Nodes[i].Compute(64)
		if stats.RelErr(at64, want) > 0.10 {
			t.Errorf("node %d learned compute(64) %v vs truth %v", i, at64, want)
		}
	}
	if stats.RelErr(learned.Gamma, truth.Gamma) > 0.15 {
		t.Errorf("learned gamma %v vs truth %v", learned.Gamma, truth.Gamma)
	}
	if stats.RelErr(learned.To+learned.Tu, truth.To+truth.Tu) > 0.15 {
		t.Errorf("learned TComm %v vs truth %v", learned.To+learned.Tu, truth.To+truth.Tu)
	}
}

func TestLBBSPApproachesBalanceIteratively(t *testing.T) {
	c := mustCluster(t, "a", 6)
	w := mustWorkload(t, "imagenet")
	sys := NewLBBSP()
	sys.FixedBatch = 128
	res, err := Run(Config{Cluster: c, Workload: w, System: sys, Seed: 6, MaxEpochs: 16})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Epochs[0]
	lastE := res.Epochs[len(res.Epochs)-1]
	// Starts even, ends skewed toward the fast node.
	if max(first.Local...)-min(first.Local...) > 1 {
		t.Fatalf("LB-BSP epoch 0 not even: %v", first.Local)
	}
	if lastE.Local[0] <= lastE.Local[2]+10 {
		t.Fatalf("LB-BSP did not skew toward fast node: %v", lastE.Local)
	}
	// Batch time decreases across the tuning phase.
	if lastE.AvgBatchTime >= first.AvgBatchTime {
		t.Fatalf("LB-BSP batch time did not improve: %v -> %v", first.AvgBatchTime, lastE.AvgBatchTime)
	}
	// And the improvement is gradual: epoch 2 must still be far from the
	// final batch time (unlike Cannikin, which jumps at epoch 2).
	mid := res.Epochs[2].AvgBatchTime
	if mid <= lastE.AvgBatchTime*1.02 {
		t.Fatalf("LB-BSP converged suspiciously fast: epoch2 %v vs final %v", mid, lastE.AvgBatchTime)
	}
}

func TestHetPipeRuns(t *testing.T) {
	c := mustCluster(t, "b", 7)
	w := mustWorkload(t, "cifar10")
	env, err := NewEnv(c, w)
	if err != nil {
		t.Fatal(err)
	}
	hp := NewHetPipe()
	res, err := hp.Run(env, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("HetPipe did not converge")
	}
	bt, err := hp.BatchTime(env)
	if err != nil {
		t.Fatal(err)
	}
	if bt <= 0 {
		t.Fatalf("HetPipe batch time %v", bt)
	}
}

func TestFig8OrderingOnClusterB(t *testing.T) {
	// The headline comparison: on the 16-GPU heterogeneous cluster,
	// Cannikin converges faster than every baseline.
	if testing.Short() {
		t.Skip("full cluster-B comparison in short mode")
	}
	const seed = 8
	can := runSystem(t, "b", "cifar10", NewCannikin(), seed)
	adl := runSystem(t, "b", "cifar10", NewAdaptDL(), seed)
	ddp := runSystem(t, "b", "cifar10", NewDDP(), seed)
	lbb := runSystem(t, "b", "cifar10", NewLBBSP(), seed)

	env, err := NewEnv(mustCluster(t, "b", seed), mustWorkload(t, "cifar10"))
	if err != nil {
		t.Fatal(err)
	}
	hp, err := NewHetPipe().Run(env, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hp.Converged {
		t.Fatal("hetpipe did not converge")
	}

	type entry struct {
		name string
		time float64
	}
	times := []entry{
		{"cannikin", can.ConvergeTime},
		{"adaptdl", adl.ConvergeTime},
		{"ddp", ddp.ConvergeTime},
		{"lb-bsp", lbb.ConvergeTime},
		{"hetpipe", hp.ConvergeTime},
	}
	for _, e := range times[1:] {
		if can.ConvergeTime >= e.time {
			t.Errorf("cannikin %.0fs not faster than %s %.0fs", can.ConvergeTime, e.name, e.time)
		}
	}
	t.Logf("convergence times: %+v", times)
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	c := mustCluster(t, "a", 9)
	w := mustWorkload(t, "cifar10")
	if _, err := Run(Config{Cluster: c, Workload: w, System: badSystem{}}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

type badSystem struct{}

func (badSystem) Name() string { return "bad" }
func (badSystem) PlanEpoch(env *Env, epoch int) (Plan, error) {
	return Plan{TotalBatch: 10, Local: []int{5, 5}}, nil // wrong node count
}
func (badSystem) ObserveStep(*Env, StepObs) {}
func (badSystem) ObserveEpochEnd(*Env)      {}

func TestSystemNames(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []System{NewDDP(), NewAdaptDL(), NewLBBSP(), NewCannikin()} {
		if s.Name() == "" || names[s.Name()] {
			t.Fatalf("bad or duplicate system name %q", s.Name())
		}
		names[s.Name()] = true
	}
	if NewHetPipe().Name() == "" {
		t.Fatal("hetpipe name empty")
	}
}

func TestResultAccounting(t *testing.T) {
	res := runSystem(t, "a", "cifar10", NewCannikin(), 10)
	var train, over float64
	for _, e := range res.Epochs {
		train += e.TrainTime
		over += e.Overhead
	}
	if diff := res.TotalTime - (train + over); diff > 1e-6*res.TotalTime {
		t.Fatalf("time accounting leak: total %v vs train %v + overhead %v", res.TotalTime, train, over)
	}
	if res.TotalOverhead != over {
		t.Fatalf("overhead accounting mismatch: %v vs %v", res.TotalOverhead, over)
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.SimTimeEnd != res.TotalTime {
		t.Fatalf("final SimTimeEnd %v != TotalTime %v", last.SimTimeEnd, res.TotalTime)
	}
}

func max(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func min(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
