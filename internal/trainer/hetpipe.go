package trainer

import (
	"context"
	"fmt"

	"cannikin/internal/chaos"
	"cannikin/internal/convergence"
	"cannikin/internal/rng"
)

// HetPipe reproduces the pipelined-model-parallelism baseline: the DNN is
// partitioned into per-node stages proportional to node speed (so stage
// times balance), microbatches stream through the pipeline, and gradients
// synchronize through a parameter server once per batch. The batch size is
// fixed — HetPipe cannot adapt it (Section 7: "they only considered fixed
// batch size training").
//
// HetPipe does not fit the data-parallel System interface (no per-node
// local batches, no ring all-reduce), so it has its own run path producing
// the same Result type.
type HetPipe struct {
	// MicroBatch is the pipeline microbatch size.
	MicroBatch int
	// FixedBatch overrides the default total batch.
	FixedBatch int
	// StageImbalance models the residual imbalance of a real partition
	// (perfect proportional splits are unattainable layer-wise).
	StageImbalance float64

	// fractions freezes the per-node model fraction decided by the offline
	// profile at job start. HetPipe never re-partitions, so when a node's
	// resources drift mid-run its stage becomes the pipeline bottleneck —
	// the stale-allocation degradation path of the dynamic experiments.
	fractions []float64
}

// NewHetPipe returns the baseline with a microbatch of 2 and a 10% stage
// imbalance.
func NewHetPipe() *HetPipe {
	return &HetPipe{MicroBatch: 2, StageImbalance: 0.10}
}

// Name identifies the system.
func (h *HetPipe) Name() string { return "hetpipe" }

// Batch returns the fixed total batch used on the environment: large
// enough to keep the pipeline busy.
func (h *HetPipe) Batch(env *Env) int {
	b := h.FixedBatch
	if b <= 0 {
		b = 8 * env.Cluster.N() * h.MicroBatch
		if b < env.Workload.InitBatch {
			b = env.Workload.InitBatch
		}
	}
	if b > env.MaxTotal {
		b = env.MaxTotal
	}
	if b < env.MinTotal {
		b = env.MinTotal
	}
	return b
}

// BatchTime returns the pipeline's time for one total batch.
func (h *HetPipe) BatchTime(env *Env) (float64, error) {
	n := env.Cluster.N()
	b := h.Batch(env)
	micro := h.MicroBatch
	if micro < 1 {
		micro = 1
	}
	numMicro := (b + micro - 1) / micro

	// Full-model per-microbatch time on each node, from the ground-truth
	// device coefficients (HetPipe profiles nodes offline).
	model, err := env.Cluster.TrueModel(env.Workload.Profile)
	if err != nil {
		return 0, err
	}
	full := make([]float64, n)
	for i := range model.Nodes {
		full[i] = model.Nodes[i].Compute(float64(micro))
		if full[i] <= 0 {
			return 0, fmt.Errorf("hetpipe: node %d non-positive time", i)
		}
	}
	if len(h.fractions) != n {
		// Offline profile at job start: node i owns a model fraction
		// proportional to its speed then, so all stage times balance.
		sumSpeed := 0.0
		for i := range full {
			sumSpeed += 1 / full[i]
		}
		h.fractions = make([]float64, n)
		for i := range full {
			h.fractions[i] = 1 / (full[i] * sumSpeed)
		}
	}
	// The slowest stage paces the pipeline. With the initial profile the
	// stages balance exactly; after a mid-run resource drift the frozen
	// partition leaves the slowed node as the bottleneck. Residual
	// imbalance inflates it.
	slowest := 0.0
	for i := range full {
		if t := h.fractions[i] * full[i]; t > slowest {
			slowest = t
		}
	}
	stageTime := (1 + h.StageImbalance) * slowest
	// Activation hand-off between stages: one microbatch's activations
	// cross each link.
	activationBytes := float64(micro) * env.Workload.Profile.MemPerSampleBytes * 0.05
	hop := activationBytes/(env.Cluster.Ring.LinkGBps[0]*1e9) + env.Cluster.Ring.LatencyS
	stageTime += hop
	// Pipeline: fill + drain over n stages, then steady state.
	pipeTime := float64(numMicro+n-1) * stageTime
	// Parameter-server gradient push+pull once per batch.
	psTime := 2 * env.Workload.Profile.ParamBytes / (env.Cluster.Ring.LinkGBps[0] * 1e9)
	return pipeTime + psTime, nil
}

// PipeOpts configures a HetPipe run.
type PipeOpts struct {
	Seed      uint64
	MaxEpochs int
	// Chaos schedules dynamic-heterogeneity perturbations; HetPipe's
	// frozen stage partition cannot adapt to them.
	Chaos chaos.Schedule
	// OnEpoch streams each epoch's stats; returning an error aborts.
	OnEpoch func(EpochStats) error
}

// Run trains the workload to target with the pipeline model.
func (h *HetPipe) Run(env *Env, seed uint64, maxEpochs int) (*Result, error) {
	return h.RunContext(context.Background(), env, PipeOpts{Seed: seed, MaxEpochs: maxEpochs})
}

// RunContext trains the workload to target with the pipeline model,
// honoring cancellation and chaos events at epoch boundaries.
func (h *HetPipe) RunContext(ctx context.Context, env *Env, opt PipeOpts) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	maxEpochs := opt.MaxEpochs
	if maxEpochs <= 0 {
		maxEpochs = 500
	}
	state, err := convergence.NewState(env.Workload.Convergence, rng.New(opt.Seed))
	if err != nil {
		return nil, err
	}
	var injector *chaos.Injector
	if !opt.Chaos.Empty() {
		injector, err = chaos.NewInjector(opt.Chaos, env.Cluster)
		if err != nil {
			return nil, fmt.Errorf("hetpipe: %w", err)
		}
	}
	batchTime, err := h.BatchTime(env)
	if err != nil {
		return nil, err
	}
	b := h.Batch(env)
	res := &Result{System: h.Name(), Workload: env.Workload.Name, Cluster: env.Cluster.Name}
	simTime := 0.0
	for epoch := 0; epoch < maxEpochs && !state.Done(); epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hetpipe: canceled at epoch %d: %w", epoch, err)
		}
		var applied []chaos.Applied
		if injector != nil {
			if applied, err = injector.BeginEpoch(epoch); err != nil {
				return nil, fmt.Errorf("hetpipe: epoch %d: %w", epoch, err)
			}
			if len(applied) > 0 {
				// The cluster changed under the frozen partition: the
				// slowed stage now paces every batch.
				if batchTime, err = h.BatchTime(env); err != nil {
					return nil, err
				}
			}
		}
		steps := env.Workload.DatasetSize / b
		if steps < 1 {
			steps = 1
		}
		var trainTime float64
		for s := 0; s < steps; s++ {
			simTime += batchTime
			trainTime += batchTime
			state.Advance(b)
			if state.Done() {
				break
			}
		}
		stats := EpochStats{
			Epoch:        epoch,
			TotalBatch:   b,
			Steps:        steps,
			AvgBatchTime: batchTime,
			TrainTime:    trainTime,
			SimTimeEnd:   simTime,
			Metric:       state.Metric(),
			Progress:     state.Progress(),
			Events:       applied,
		}
		res.Epochs = append(res.Epochs, stats)
		if opt.OnEpoch != nil {
			if err := opt.OnEpoch(stats); err != nil {
				return nil, fmt.Errorf("hetpipe: epoch %d: %w", epoch, err)
			}
		}
		// Mirror the trainer's mid-epoch rule: a cancellation that lands
		// inside the hook or during the epoch aborts before the run can
		// complete successfully.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hetpipe: canceled at epoch %d: %w", epoch, err)
		}
	}
	res.Converged = state.Done()
	res.TotalTime = simTime
	if res.Converged {
		res.ConvergeTime = simTime
	}
	return res, nil
}
