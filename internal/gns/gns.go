// Package gns estimates the gradient noise scale (GNS) in heterogeneous
// clusters, implementing Section 4.4 and Theorem 4.1 of the paper.
//
// The GNS B_noise = tr(Σ)/|G|² measures how noisy stochastic gradients are
// relative to the true gradient G; adaptive batch-size training uses it to
// pick statistically efficient batch sizes. Neither tr(Σ) nor |G|² is
// observable, so each node i forms unbiased local estimates from its local
// gradient norm |g_i|² and the aggregated global norm |g|² (Eq. 10):
//
//	G_i = (B|g|² − b_i|g_i|²) / (B − b_i)
//	S_i = b_i·B/(B − b_i) · (|g_i|² − |g|²)
//
// With heterogeneous local batch sizes the estimators have unequal
// variances and are correlated through |g|², so plain averaging is no
// longer optimal. Theorem 4.1 gives the minimum-variance unbiased linear
// combination w = 1ᵀA⁻¹ / (1ᵀA⁻¹1) using closed-form covariance matrices
// A_G and A_S (common factors of 4|G|²tr(Σ) cancel).
package gns

import (
	"errors"
	"fmt"

	"cannikin/internal/linalg"
	"cannikin/internal/stats"
)

// ErrDegenerate is returned when the estimator inputs are unusable (fewer
// than two nodes, non-positive batches, or a node holding the whole batch).
var ErrDegenerate = errors.New("gns: degenerate input")

// Sample is one synchronization step's gradient norm observations.
type Sample struct {
	// Batches are the local batch sizes b_i.
	Batches []int
	// LocalSqNorms are |g_i|² for each node.
	LocalSqNorms []float64
	// GlobalSqNorm is |g|² of the aggregated (batch-weighted) gradient.
	GlobalSqNorm float64
}

// validate checks the sample and returns the total batch size.
func (s Sample) validate() (float64, error) {
	n := len(s.Batches)
	if n < 2 {
		return 0, fmt.Errorf("%w: need at least 2 nodes, got %d", ErrDegenerate, n)
	}
	if len(s.LocalSqNorms) != n {
		return 0, fmt.Errorf("%w: %d norms for %d batches", ErrDegenerate, len(s.LocalSqNorms), n)
	}
	total := 0
	for i, b := range s.Batches {
		if b <= 0 {
			return 0, fmt.Errorf("%w: node %d batch %d", ErrDegenerate, i, b)
		}
		total += b
	}
	return float64(total), nil
}

// Estimate is a combined estimate of the GNS ingredients.
type Estimate struct {
	// GradSq estimates |G|², TraceVar estimates tr(Σ).
	GradSq, TraceVar float64
	// Noise is the GNS ratio estimate tr(Σ)/|G|² (may be negative in very
	// noisy regimes; consumers should smooth over steps, see Tracker).
	Noise float64
	// WeightsG and WeightsS are the combination weights used.
	WeightsG, WeightsS []float64
}

// LocalEstimates returns the per-node unbiased estimates (G_i, S_i) of
// Eq. 10 for the sample.
func LocalEstimates(s Sample) (gi, si []float64, err error) {
	total, err := s.validate()
	if err != nil {
		return nil, nil, err
	}
	n := len(s.Batches)
	gi = make([]float64, n)
	si = make([]float64, n)
	localEstimatesInto(s, total, gi, si)
	return gi, si, nil
}

// localEstimatesInto fills gi and si (length len(s.Batches)) with the
// Eq. 10 estimates for a pre-validated sample.
func localEstimatesInto(s Sample, total float64, gi, si []float64) {
	for i := 0; i < len(s.Batches); i++ {
		b := float64(s.Batches[i])
		gi[i] = (total*s.GlobalSqNorm - b*s.LocalSqNorms[i]) / (total - b)
		si[i] = b * total / (total - b) * (s.LocalSqNorms[i] - s.GlobalSqNorm)
	}
}

// CovarianceMatrices returns the Theorem 4.1 matrices A_G and A_S for the
// given local batch sizes (the 4|G|²tr(Σ) factor is omitted, as it cancels
// in the weight computation).
func CovarianceMatrices(batches []int) (aG, aS *linalg.Matrix, err error) {
	n := len(batches)
	if n < 2 {
		return nil, nil, fmt.Errorf("%w: need at least 2 nodes", ErrDegenerate)
	}
	total := 0
	for i, b := range batches {
		if b <= 0 {
			return nil, nil, fmt.Errorf("%w: node %d batch %d", ErrDegenerate, i, b)
		}
		total += b
	}
	bT := float64(total)
	aG = linalg.NewMatrix(n, n)
	aS = linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		bi := float64(batches[i])
		aG.Set(i, i, (bT+2*bi)/(bT*bT-bT*bi))
		aS.Set(i, i, bT*bi/(bT-bi))
		for j := i + 1; j < n; j++ {
			bj := float64(batches[j])
			g := (bT*bT - bi*bi - bj*bj) / (bT * (bT - bi) * (bT - bj))
			sv := bi * bj * (bT - bi - bj) / ((bT - bi) * (bT - bj))
			aG.Set(i, j, g)
			aG.Set(j, i, g)
			aS.Set(i, j, sv)
			aS.Set(j, i, sv)
		}
	}
	return aG, aS, nil
}

// OptimalWeights returns the minimum-variance unbiased combination weights
// (w^G, w^S) of Theorem 4.1 for the given local batch sizes.
func OptimalWeights(batches []int) (wg, ws []float64, err error) {
	aG, aS, err := CovarianceMatrices(batches)
	if err != nil {
		return nil, nil, err
	}
	wg, err = linalg.SolveSPDWeights(aG)
	if err != nil {
		return nil, nil, fmt.Errorf("gns: A_G weights: %w", err)
	}
	ws, err = linalg.SolveSPDWeights(aS)
	if err != nil {
		return nil, nil, fmt.Errorf("gns: A_S weights: %w", err)
	}
	return wg, ws, nil
}

// EstimateOptimal combines the local estimates with the Theorem 4.1
// optimal weights — Cannikin's heterogeneous GNS estimator.
func EstimateOptimal(s Sample) (Estimate, error) {
	gi, si, err := LocalEstimates(s)
	if err != nil {
		return Estimate{}, err
	}
	wg, ws, err := OptimalWeights(s.Batches)
	if err != nil {
		return Estimate{}, err
	}
	return combine(gi, si, wg, ws), nil
}

// EstimateNaive combines the local estimates by plain averaging — the
// homogeneous-cluster rule that prior systems use. It is unbiased but not
// minimum-variance when local batches differ.
func EstimateNaive(s Sample) (Estimate, error) {
	gi, si, err := LocalEstimates(s)
	if err != nil {
		return Estimate{}, err
	}
	n := len(gi)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return combine(gi, si, w, w), nil
}

func combine(gi, si, wg, ws []float64) Estimate {
	e := Estimate{WeightsG: wg, WeightsS: ws}
	for i := range gi {
		e.GradSq += wg[i] * gi[i]
		e.TraceVar += ws[i] * si[i]
	}
	if e.GradSq != 0 {
		e.Noise = e.TraceVar / e.GradSq
	}
	return e
}

// Tracker smooths GNS estimates over training steps. Following McCandlish
// et al., the numerator and denominator are smoothed separately (the ratio
// estimator is biased, and single-step |G|² estimates can be negative), and
// the ratio of the smoothed values is reported.
type Tracker struct {
	gradSq   *stats.EMA
	traceVar *stats.EMA
	steps    int
}

// NewTracker returns a tracker with the given EMA smoothing factor
// (0 < alpha <= 1; smaller is smoother).
func NewTracker(alpha float64) *Tracker {
	return &Tracker{gradSq: stats.NewEMA(alpha), traceVar: stats.NewEMA(alpha)}
}

// Observe folds one step's estimate into the running averages.
func (t *Tracker) Observe(e Estimate) {
	t.gradSq.Add(e.GradSq)
	t.traceVar.Add(e.TraceVar)
	t.steps++
}

// Steps returns the number of observations folded in.
func (t *Tracker) Steps() int { return t.steps }

// NoiseCeiling bounds the reported GNS: when the smoothed gradient power
// is indistinguishable from zero the true ratio is unbounded, and any
// consumer (goodput, batch sizing) behaves identically beyond this value.
const NoiseCeiling = 1e15

// Noise returns the smoothed GNS estimate, clamped to [0, NoiseCeiling].
// Before any observations it returns 0.
func (t *Tracker) Noise() float64 {
	if !t.gradSq.Initialized() {
		return 0
	}
	g := t.gradSq.Value()
	if g <= 0 {
		return NoiseCeiling
	}
	n := t.traceVar.Value() / g
	if n < 0 {
		return 0
	}
	if n > NoiseCeiling {
		return NoiseCeiling
	}
	return n
}

// GradSq returns the smoothed |G|² estimate.
func (t *Tracker) GradSq() float64 { return t.gradSq.Value() }

// TraceVar returns the smoothed tr(Σ) estimate.
func (t *Tracker) TraceVar() float64 { return t.traceVar.Value() }
