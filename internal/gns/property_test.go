package gns

import (
	"math"
	"testing"
	"testing/quick"

	"cannikin/internal/rng"
)

func randBatches(s *rng.Source, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1 + s.Intn(64)
	}
	return out
}

func TestPropertyWeightsSumToOne(t *testing.T) {
	src := rng.New(41)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		batches := randBatches(s, 2+s.Intn(14))
		wg, ws, err := OptimalWeights(batches)
		if err != nil {
			return false
		}
		sumG, sumS := 0.0, 0.0
		for i := range wg {
			sumG += wg[i]
			sumS += ws[i]
		}
		return math.Abs(sumG-1) < 1e-8 && math.Abs(sumS-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWeightsPermutationEquivariant(t *testing.T) {
	// Permuting the nodes permutes the weights identically.
	src := rng.New(43)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 2 + s.Intn(10)
		batches := randBatches(s, n)
		perm := s.Perm(n)
		permuted := make([]int, n)
		for i, p := range perm {
			permuted[i] = batches[p]
		}
		wg1, ws1, err := OptimalWeights(batches)
		if err != nil {
			return false
		}
		wg2, ws2, err := OptimalWeights(permuted)
		if err != nil {
			return false
		}
		for i, p := range perm {
			if math.Abs(wg2[i]-wg1[p]) > 1e-8 || math.Abs(ws2[i]-ws1[p]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEstimatorsExactOnExpectation(t *testing.T) {
	// Feeding the exact expectations E[|g_i|²] = |G|² + tr(Σ)/b_i must
	// recover |G|² and tr(Σ) exactly (the estimators are linear), for any
	// batch configuration and any weighting.
	src := rng.New(47)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 2 + s.Intn(12)
		batches := randBatches(s, n)
		gsq := 0.1 + 10*s.Float64()
		tr := 0.1 + 100*s.Float64()
		total := 0
		for _, b := range batches {
			total += b
		}
		sample := Sample{
			Batches:      batches,
			LocalSqNorms: make([]float64, n),
			GlobalSqNorm: gsq + tr/float64(total),
		}
		for i, b := range batches {
			sample.LocalSqNorms[i] = gsq + tr/float64(b)
		}
		for _, est := range []func(Sample) (Estimate, error){EstimateOptimal, EstimateNaive} {
			e, err := est(sample)
			if err != nil {
				return false
			}
			if math.Abs(e.GradSq-gsq) > 1e-6*gsq || math.Abs(e.TraceVar-tr) > 1e-6*tr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCovarianceMatricesSymmetricPositiveDiagonal(t *testing.T) {
	src := rng.New(53)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		batches := randBatches(s, 2+s.Intn(12))
		aG, aS, err := CovarianceMatrices(batches)
		if err != nil {
			return false
		}
		n := aG.Rows()
		for i := 0; i < n; i++ {
			if aG.At(i, i) <= 0 || aS.At(i, i) <= 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if aG.At(i, j) != aG.At(j, i) || aS.At(i, j) != aS.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
