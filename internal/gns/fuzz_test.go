package gns

import (
	"math"
	"testing"
)

// FuzzEstimators feeds arbitrary batch/norm combinations to the
// heterogeneous GNS estimators: no panics, and finite outputs for valid
// inputs.
func FuzzEstimators(f *testing.F) {
	f.Add(uint8(2), 1.0, 2.0, 10.0)
	f.Add(uint8(16), 0.5, 100.0, 5.0)
	f.Add(uint8(3), 1e-9, 1e9, 1e3)
	f.Fuzz(func(t *testing.T, nRaw uint8, normLo, normHi, global float64) {
		n := int(nRaw%24) + 2
		normLo = sanitize(normLo)
		normHi = sanitize(normHi)
		global = sanitize(global)
		sample := Sample{
			Batches:      make([]int, n),
			LocalSqNorms: make([]float64, n),
			GlobalSqNorm: global,
		}
		for i := range sample.Batches {
			sample.Batches[i] = 1 + i*3
			frac := float64(i) / float64(n)
			sample.LocalSqNorms[i] = normLo + (normHi-normLo)*frac
		}
		for _, estimate := range []func(Sample) (Estimate, error){EstimateOptimal, EstimateNaive} {
			est, err := estimate(sample)
			if err != nil {
				t.Fatalf("valid sample rejected: %v", err)
			}
			for _, v := range []float64{est.GradSq, est.TraceVar, est.Noise} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite estimate %+v", est)
				}
			}
			// Weights always sum to one.
			sumG := 0.0
			for _, w := range est.WeightsG {
				sumG += w
			}
			if math.Abs(sumG-1) > 1e-6 {
				t.Fatalf("weights sum %v", sumG)
			}
		}
	})
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	v = math.Abs(v)
	if v < 1e-12 {
		return 1e-12
	}
	if v > 1e12 {
		return 1e12
	}
	return v
}
