package gns

// Estimator is a reusable form of EstimateOptimal/EstimateNaive for the
// per-step hot path. The Theorem 4.1 weights depend only on the local batch
// sizes, which are constant across steps until the allocator re-plans, so
// the Estimator caches them and recomputes (one Cholesky solve per matrix)
// only when the batch vector changes. The gi/si scratch is reused across
// calls, making steady-state Estimate calls allocation free.
//
// The returned Estimate's WeightsG/WeightsS alias the cache and must not be
// modified by callers. An Estimator is not safe for concurrent use.
type Estimator struct {
	naive   bool
	batches []int
	wg, ws  []float64
	gi, si  []float64
}

// NewEstimator returns an estimator using the Theorem 4.1 optimal weights,
// or plain 1/n averaging when naive is true.
func NewEstimator(naive bool) *Estimator { return &Estimator{naive: naive} }

// Estimate combines the sample's local estimates exactly as
// EstimateOptimal (or EstimateNaive) would, reusing cached weights when the
// batch vector matches the previous call.
func (e *Estimator) Estimate(s Sample) (Estimate, error) {
	total, err := s.validate()
	if err != nil {
		return Estimate{}, err
	}
	n := len(s.Batches)
	if !e.weightsValid(s.Batches) {
		if err := e.refreshWeights(s.Batches); err != nil {
			return Estimate{}, err
		}
	}
	if cap(e.gi) < n {
		e.gi = make([]float64, n)
		e.si = make([]float64, n)
	}
	e.gi = e.gi[:n]
	e.si = e.si[:n]
	localEstimatesInto(s, total, e.gi, e.si)
	return combine(e.gi, e.si, e.wg, e.ws), nil
}

// weightsValid reports whether the cached weights were computed for exactly
// this batch vector.
func (e *Estimator) weightsValid(batches []int) bool {
	if e.wg == nil || len(e.batches) != len(batches) {
		return false
	}
	for i, b := range batches {
		if e.batches[i] != b {
			return false
		}
	}
	return true
}

// refreshWeights recomputes and caches the combination weights for batches.
func (e *Estimator) refreshWeights(batches []int) error {
	n := len(batches)
	if e.naive {
		if cap(e.wg) < n {
			e.wg = make([]float64, n)
		}
		e.wg = e.wg[:n]
		for i := range e.wg {
			e.wg[i] = 1 / float64(n)
		}
		e.ws = e.wg
	} else {
		wg, ws, err := OptimalWeights(batches)
		if err != nil {
			return err
		}
		e.wg, e.ws = wg, ws
	}
	if cap(e.batches) < n {
		e.batches = make([]int, n)
	}
	e.batches = e.batches[:n]
	copy(e.batches, batches)
	return nil
}
