package gns

import (
	"errors"
	"math"
	"testing"

	"cannikin/internal/linalg"
	"cannikin/internal/rng"
	"cannikin/internal/stats"
)

// synthSample draws one synchronization step of synthetic gradients with a
// known ground truth: per-sample gradients are G + N(0, sigma² I) in d
// dimensions, so |G|² = d·mu² and tr(Σ) = d·sigma².
func synthSample(src *rng.Source, batches []int, d int, mu, sigma float64) Sample {
	n := len(batches)
	total := 0
	for _, b := range batches {
		total += b
	}
	locals := make([][]float64, n)
	global := make([]float64, d)
	for i, b := range batches {
		gi := make([]float64, d)
		for s := 0; s < b; s++ {
			for j := 0; j < d; j++ {
				gi[j] += mu + src.Norm(0, sigma)
			}
		}
		for j := 0; j < d; j++ {
			gi[j] /= float64(b)
			global[j] += float64(b) / float64(total) * gi[j]
		}
		locals[i] = gi
	}
	sqnorm := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x * x
		}
		return s
	}
	out := Sample{
		Batches:      append([]int(nil), batches...),
		LocalSqNorms: make([]float64, n),
		GlobalSqNorm: sqnorm(global),
	}
	for i := range locals {
		out.LocalSqNorms[i] = sqnorm(locals[i])
	}
	return out
}

func TestLocalEstimatesUnbiased(t *testing.T) {
	src := rng.New(11)
	batches := []int{4, 8, 16, 32}
	const (
		d     = 40
		mu    = 0.5
		sigma = 1.0
	)
	wantG := d * mu * mu
	wantS := d * sigma * sigma
	const trials = 3000
	n := len(batches)
	meanG := make([]float64, n)
	meanS := make([]float64, n)
	for tr := 0; tr < trials; tr++ {
		s := synthSample(src, batches, d, mu, sigma)
		gi, si, err := LocalEstimates(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			meanG[i] += gi[i] / trials
			meanS[i] += si[i] / trials
		}
	}
	for i := 0; i < n; i++ {
		if stats.RelErr(meanG[i], wantG) > 0.08 {
			t.Errorf("node %d: E[G_i] = %v, want ~%v", i, meanG[i], wantG)
		}
		if stats.RelErr(meanS[i], wantS) > 0.08 {
			t.Errorf("node %d: E[S_i] = %v, want ~%v", i, meanS[i], wantS)
		}
	}
}

func TestOptimalWeightsSumToOne(t *testing.T) {
	for _, batches := range [][]int{{1, 2}, {5, 5, 5}, {2, 8, 32, 64}, {1, 1, 1, 1, 100}} {
		wg, ws, err := OptimalWeights(batches)
		if err != nil {
			t.Fatalf("batches %v: %v", batches, err)
		}
		sumG, sumS := 0.0, 0.0
		for i := range wg {
			sumG += wg[i]
			sumS += ws[i]
		}
		if math.Abs(sumG-1) > 1e-9 || math.Abs(sumS-1) > 1e-9 {
			t.Fatalf("batches %v: weight sums %v, %v", batches, sumG, sumS)
		}
	}
}

func TestOptimalWeightsEqualBatchesEqualWeights(t *testing.T) {
	wg, ws, err := OptimalWeights([]int{16, 16, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wg {
		if math.Abs(wg[i]-0.25) > 1e-9 || math.Abs(ws[i]-0.25) > 1e-9 {
			t.Fatalf("equal batches gave unequal weights: %v %v", wg, ws)
		}
	}
}

func TestCovarianceMatricesMatchPaperFormulas(t *testing.T) {
	batches := []int{10, 30}
	aG, aS, err := CovarianceMatrices(batches)
	if err != nil {
		t.Fatal(err)
	}
	B := 40.0
	b0, b1 := 10.0, 30.0
	if got, want := aG.At(0, 0), (B+2*b0)/(B*B-B*b0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("aG(0,0) = %v, want %v", got, want)
	}
	if got, want := aG.At(0, 1), (B*B-b0*b0-b1*b1)/(B*(B-b0)*(B-b1)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("aG(0,1) = %v, want %v", got, want)
	}
	if got, want := aS.At(1, 1), B*b1/(B-b1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("aS(1,1) = %v, want %v", got, want)
	}
	// n=2: B - b_i - b_j = 0, so S off-diagonals vanish.
	if aS.At(0, 1) != 0 {
		t.Fatalf("aS(0,1) = %v, want 0 for n=2", aS.At(0, 1))
	}
	// Symmetry.
	if aG.At(0, 1) != aG.At(1, 0) || aS.At(0, 1) != aS.At(1, 0) {
		t.Fatal("covariance matrices not symmetric")
	}
}

func TestEstimatorsUnbiasedOnRealGradients(t *testing.T) {
	// On real (synthetic Gaussian) gradients both combinations must be
	// unbiased, and the Theorem 4.1 weighting must reduce the variance of
	// the tr(Σ) estimate, which is where heterogeneity hurts most (the
	// per-node variance grows steeply with b_i). Tolerances are set from
	// the measured standard errors so the test is statistically sound.
	src := rng.New(23)
	batches := []int{2, 6, 24, 48} // strongly heterogeneous
	const (
		d     = 30
		mu    = 2.0
		sigma = 0.5
	)
	wantG := d * mu * mu
	wantS := d * sigma * sigma
	const trials = 6000
	var (
		optG, optS   stats.Welford
		naivG, naivS stats.Welford
	)
	for tr := 0; tr < trials; tr++ {
		s := synthSample(src, batches, d, mu, sigma)
		opt, err := EstimateOptimal(s)
		if err != nil {
			t.Fatal(err)
		}
		nv, err := EstimateNaive(s)
		if err != nil {
			t.Fatal(err)
		}
		optG.Add(opt.GradSq)
		optS.Add(opt.TraceVar)
		naivG.Add(nv.GradSq)
		naivS.Add(nv.TraceVar)
	}
	checkUnbiased := func(name string, w stats.Welford, want float64) {
		t.Helper()
		se := math.Sqrt(w.Var() / float64(w.N()))
		if math.Abs(w.Mean()-want) > 5*se+0.02*want {
			t.Errorf("%s mean = %v, want %v (se %v)", name, w.Mean(), want, se)
		}
	}
	checkUnbiased("optimal G", optG, wantG)
	checkUnbiased("naive G", naivG, wantG)
	checkUnbiased("optimal S", optS, wantS)
	checkUnbiased("naive S", naivS, wantS)
	// The tr(Σ) variance reduction is the practically important one.
	if optS.Var() >= naivS.Var() {
		t.Errorf("optimal S variance %v >= naive %v", optS.Var(), naivS.Var())
	}
	// The G_i estimators are dominated by the shared |g|² term
	// (correlation near 1), so naive averaging is already near-optimal for
	// |G|²; only require that the weighted estimator stays competitive.
	if optG.Var() > naivG.Var()*1.25 {
		t.Errorf("optimal G variance %v far above naive %v", optG.Var(), naivG.Var())
	}
}

func TestOptimalWeightsAreMinimumVarianceUnderPaperModel(t *testing.T) {
	// Theorem 4.1's guarantee is exact when the estimator covariances
	// equal the paper's A_G/A_S matrices. Draw correlated (G_1..G_n)
	// directly from that model and verify the weighted combination beats
	// plain averaging and a few arbitrary unbiased alternatives.
	batches := []int{2, 6, 24, 48}
	aG, aS, err := CovarianceMatrices(batches)
	if err != nil {
		t.Fatal(err)
	}
	for name, cov := range map[string]*covSampler{
		"A_G": newCovSampler(t, aG),
		"A_S": newCovSampler(t, aS),
	} {
		wOpt, wOptS, err := OptimalWeights(batches)
		if err != nil {
			t.Fatal(err)
		}
		w := wOpt
		if name == "A_S" {
			w = wOptS
		}
		n := len(batches)
		naive := make([]float64, n)
		lastOnly := make([]float64, n)
		for i := range naive {
			naive[i] = 1 / float64(n)
		}
		lastOnly[n-1] = 1
		src := rng.New(99)
		const trials = 30000
		var vOpt, vNaive, vLast stats.Welford
		for tr := 0; tr < trials; tr++ {
			x := cov.draw(src)
			vOpt.Add(dot(w, x))
			vNaive.Add(dot(naive, x))
			vLast.Add(dot(lastOnly, x))
		}
		if vOpt.Var() >= vNaive.Var() {
			t.Errorf("%s: optimal variance %v >= naive %v", name, vOpt.Var(), vNaive.Var())
		}
		if vOpt.Var() >= vLast.Var() {
			t.Errorf("%s: optimal variance %v >= single-node %v", name, vOpt.Var(), vLast.Var())
		}
	}
}

// covSampler draws zero-mean Gaussian vectors with a given covariance via
// its Cholesky factor.
type covSampler struct {
	l *linalg.Matrix
}

func newCovSampler(t *testing.T, m *linalg.Matrix) *covSampler {
	t.Helper()
	l, err := linalg.Cholesky(m)
	if err != nil {
		t.Fatalf("covariance not positive definite: %v", err)
	}
	return &covSampler{l: l}
}

func (c *covSampler) draw(src *rng.Source) []float64 {
	z := make([]float64, c.l.Rows())
	for i := range z {
		z[i] = src.Norm(0, 1)
	}
	return linalg.MulLowerVec(c.l, z)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestEstimateNoiseRatio(t *testing.T) {
	src := rng.New(31)
	batches := []int{8, 16, 24}
	const (
		d     = 50
		mu    = 1.0
		sigma = 2.0
	)
	wantNoise := (sigma * sigma) / (mu * mu) // (d sigma²)/(d mu²)
	tracker := NewTracker(0.05)
	for i := 0; i < 2000; i++ {
		s := synthSample(src, batches, d, mu, sigma)
		e, err := EstimateOptimal(s)
		if err != nil {
			t.Fatal(err)
		}
		tracker.Observe(e)
	}
	if stats.RelErr(tracker.Noise(), wantNoise) > 0.15 {
		t.Fatalf("smoothed noise = %v, want ~%v", tracker.Noise(), wantNoise)
	}
	if tracker.Steps() != 2000 {
		t.Fatalf("Steps = %d", tracker.Steps())
	}
}

func TestDegenerateInputs(t *testing.T) {
	cases := []Sample{
		{Batches: []int{10}, LocalSqNorms: []float64{1}, GlobalSqNorm: 1},
		{Batches: []int{10, 0}, LocalSqNorms: []float64{1, 1}, GlobalSqNorm: 1},
		{Batches: []int{10, -5}, LocalSqNorms: []float64{1, 1}, GlobalSqNorm: 1},
		{Batches: []int{10, 10}, LocalSqNorms: []float64{1}, GlobalSqNorm: 1},
	}
	for i, s := range cases {
		if _, _, err := LocalEstimates(s); !errors.Is(err, ErrDegenerate) {
			t.Errorf("case %d: err = %v, want ErrDegenerate", i, err)
		}
		if _, err := EstimateOptimal(s); !errors.Is(err, ErrDegenerate) {
			t.Errorf("case %d optimal: err = %v, want ErrDegenerate", i, err)
		}
	}
	if _, _, err := OptimalWeights([]int{7}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("OptimalWeights single node: %v", err)
	}
}

func TestTrackerEdgeCases(t *testing.T) {
	tr := NewTracker(0.5)
	if tr.Noise() != 0 {
		t.Fatal("fresh tracker noise not 0")
	}
	tr.Observe(Estimate{GradSq: -1, TraceVar: 5})
	if tr.Noise() != NoiseCeiling {
		t.Fatalf("non-positive smoothed |G|² should report the ceiling, got %v", tr.Noise())
	}
	tr2 := NewTracker(1)
	tr2.Observe(Estimate{GradSq: 2, TraceVar: -3})
	if tr2.Noise() != 0 {
		t.Fatalf("negative trace should clamp noise to 0, got %v", tr2.Noise())
	}
	tr3 := NewTracker(1)
	tr3.Observe(Estimate{GradSq: 2, TraceVar: 6})
	if tr3.Noise() != 3 {
		t.Fatalf("noise = %v, want 3", tr3.Noise())
	}
	if tr3.GradSq() != 2 || tr3.TraceVar() != 6 {
		t.Fatal("tracker accessors wrong")
	}
}

func TestWeightsFavorInformativeNodes(t *testing.T) {
	// For tr(Σ): larger local batches produce lower-variance S_i
	// (Var(S_i) ∝ B·b_i/(B−b_i) is *increasing* in b_i), so smaller
	// batches should get larger weight in w^S.
	_, ws, err := OptimalWeights([]int{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	if ws[0] <= ws[1] {
		t.Fatalf("w^S = %v; smaller batch should have larger weight", ws)
	}
	// For |G|²: Var(G_i) ∝ (B+2b_i)/(B²−B·b_i) also grows with b_i, so the
	// small-batch node is more informative there too.
	wg, _, err := OptimalWeights([]int{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	if wg[0] <= wg[1] {
		t.Fatalf("w^G = %v; smaller batch should have larger weight", wg)
	}
}
