package gns

import (
	"errors"
	"testing"

	"cannikin/internal/rng"
)

// TestEstimatorMatchesOneShot is the differential test for the reusable
// estimator: across a stream of samples whose batch vectors change
// mid-stream (invalidating the weight cache), every Estimate must be
// bitwise identical to the allocating one-shot functions.
func TestEstimatorMatchesOneShot(t *testing.T) {
	src := rng.New(11)
	batchSeqs := [][]int{
		{32, 32, 32, 32},
		{32, 32, 32, 32}, // cache hit
		{48, 16, 40, 24}, // cache invalidated
		{48, 16, 40, 24},
		{20, 30, 50}, // node count change
		{48, 16, 40, 24},
	}
	for _, naive := range []bool{false, true} {
		e := NewEstimator(naive)
		for step, batches := range batchSeqs {
			s := Sample{Batches: batches, LocalSqNorms: make([]float64, len(batches))}
			total := 0.0
			for i := range s.LocalSqNorms {
				s.LocalSqNorms[i] = 1 + src.Float64()
				total += s.LocalSqNorms[i]
			}
			s.GlobalSqNorm = total / float64(len(batches)) * (0.5 + 0.5*src.Float64())

			got, err := e.Estimate(s)
			if err != nil {
				t.Fatalf("naive=%v step %d: %v", naive, step, err)
			}
			var want Estimate
			if naive {
				want, err = EstimateNaive(s)
			} else {
				want, err = EstimateOptimal(s)
			}
			if err != nil {
				t.Fatalf("naive=%v step %d one-shot: %v", naive, step, err)
			}
			if got.GradSq != want.GradSq || got.TraceVar != want.TraceVar || got.Noise != want.Noise {
				t.Fatalf("naive=%v step %d: got %+v, want %+v", naive, step, got, want)
			}
			for i := range want.WeightsG {
				if got.WeightsG[i] != want.WeightsG[i] || got.WeightsS[i] != want.WeightsS[i] {
					t.Fatalf("naive=%v step %d weight %d differs", naive, step, i)
				}
			}
		}
	}
}

// TestEstimatorSteadyStateAllocs: with an unchanged batch vector, Estimate
// must not allocate after the first call.
func TestEstimatorSteadyStateAllocs(t *testing.T) {
	e := NewEstimator(false)
	s := Sample{
		Batches:      []int{48, 16, 40, 24},
		LocalSqNorms: []float64{1.5, 2.5, 1.1, 0.9},
		GlobalSqNorm: 1.2,
	}
	if _, err := e.Estimate(s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.Estimate(s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Estimate allocates %v times, want 0", allocs)
	}
}

// TestEstimatorErrors: degenerate samples error without poisoning the cache.
func TestEstimatorErrors(t *testing.T) {
	e := NewEstimator(false)
	good := Sample{Batches: []int{8, 8}, LocalSqNorms: []float64{1, 2}, GlobalSqNorm: 1.4}
	if _, err := e.Estimate(good); err != nil {
		t.Fatal(err)
	}
	bad := Sample{Batches: []int{8}, LocalSqNorms: []float64{1}, GlobalSqNorm: 1}
	if _, err := e.Estimate(bad); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("got %v, want ErrDegenerate", err)
	}
	got, err := e.Estimate(good)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := EstimateOptimal(good)
	if got.GradSq != want.GradSq || got.TraceVar != want.TraceVar {
		t.Fatalf("post-error estimate %+v != %+v", got, want)
	}
}
