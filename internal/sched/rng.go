package sched

import (
	"fmt"

	"cannikin/internal/rng"
)

// rngFor derives a deterministic per-job randomness source.
func rngFor(seed uint64, jobSeq int) *rng.Source {
	return rng.New(seed).Split(fmt.Sprintf("job/%d", jobSeq))
}
