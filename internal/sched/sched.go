// Package sched implements the small dynamic-resource job scheduler
// sketched in the paper's Discussion (Section 6): jobs queue for GPUs, the
// scheduler allocates a (possibly heterogeneous) subset, and the training
// system — Cannikin — runs the job efficiently on whatever mix it received.
//
// Existing schedulers restrict each job to homogeneous GPUs (Sia allocates
// heterogeneously across jobs but homogeneously within one); Cannikin
// removes that restriction. Both allocation policies are implemented so
// the utilization benefit can be measured.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"cannikin/internal/cluster"
	"cannikin/internal/gpu"
	"cannikin/internal/simnet"
	"cannikin/internal/simtime"
	"cannikin/internal/trainer"
	"cannikin/internal/workload"
)

// Policy selects the allocation constraint.
type Policy int

// Allocation policies.
const (
	// Heterogeneous lets a job span mixed GPU models (Cannikin).
	Heterogeneous Policy = iota + 1
	// HomogeneousOnly restricts each job to a single GPU model.
	HomogeneousOnly
)

// Job is one queued training job.
type Job struct {
	ID       string
	Workload workload.Workload
	// GPUs is the number of devices requested.
	GPUs int
	// SubmitAt is the submission instant.
	SubmitAt simtime.Time
}

// Record is a completed job's schedule entry.
type Record struct {
	ID       string
	Start    simtime.Time
	Finish   simtime.Time
	Wait     simtime.Duration
	Devices  []string
	Converge float64 // training time in seconds
}

// SystemFactory builds a fresh training system per job.
type SystemFactory func() trainer.System

// Scheduler runs queued jobs over a shared device pool on a simulated
// timeline.
type Scheduler struct {
	policy  Policy
	factory SystemFactory
	seed    uint64
	ctx     context.Context

	devices []*gpu.Device
	busy    []bool
	engine  *simtime.Engine
	queue   []Job
	records []Record
	failed  []error
	jobSeq  int
}

// New creates a scheduler over the device pool.
func New(devices []*gpu.Device, policy Policy, factory SystemFactory, seed uint64) (*Scheduler, error) {
	if len(devices) == 0 {
		return nil, errors.New("sched: empty device pool")
	}
	if policy != Heterogeneous && policy != HomogeneousOnly {
		return nil, fmt.Errorf("sched: invalid policy %d", policy)
	}
	if factory == nil {
		return nil, errors.New("sched: nil system factory")
	}
	return &Scheduler{
		policy:  policy,
		factory: factory,
		seed:    seed,
		ctx:     context.Background(),
		devices: devices,
		busy:    make([]bool, len(devices)),
		engine:  simtime.NewEngine(),
	}, nil
}

// SetContext installs the cancellation context checked by each job's
// training run. A nil ctx resets to the background context.
func (s *Scheduler) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.ctx = ctx
}

// Submit enqueues a job at its submission instant.
func (s *Scheduler) Submit(job Job) error {
	if job.GPUs < 1 || job.GPUs > len(s.devices) {
		return fmt.Errorf("sched: job %s requests %d of %d GPUs", job.ID, job.GPUs, len(s.devices))
	}
	if err := job.Workload.Validate(); err != nil {
		return err
	}
	s.engine.ScheduleAt(job.SubmitAt, func() {
		s.queue = append(s.queue, job)
		s.dispatch()
	})
	return nil
}

// Run drains the timeline and returns the completed job records sorted by
// finish time. It fails if any job could not run.
func (s *Scheduler) Run() ([]Record, error) {
	s.engine.Run()
	if len(s.queue) > 0 {
		return nil, fmt.Errorf("sched: %d jobs never allocated (pool too constrained)", len(s.queue))
	}
	if len(s.failed) > 0 {
		return nil, s.failed[0]
	}
	sort.Slice(s.records, func(i, j int) bool { return s.records[i].Finish < s.records[j].Finish })
	return s.records, nil
}

// Makespan returns the finish time of the last job (zero before Run).
func (s *Scheduler) Makespan() simtime.Time {
	var last simtime.Time
	for _, r := range s.records {
		if r.Finish > last {
			last = r.Finish
		}
	}
	return last
}

// dispatch starts every queue-head job that can be allocated (FIFO order,
// no backfilling: a blocked head blocks the queue, keeping things fair).
func (s *Scheduler) dispatch() {
	for len(s.queue) > 0 {
		job := s.queue[0]
		alloc, ok := s.allocate(job.GPUs)
		if !ok {
			return
		}
		s.queue = s.queue[1:]
		s.start(job, alloc)
	}
}

// allocate picks device indices for a job under the policy, preferring
// faster devices. It reports ok=false when the job cannot run now.
func (s *Scheduler) allocate(n int) ([]int, bool) {
	type cand struct {
		idx   int
		model string
		speed float64
	}
	var free []cand
	for i, d := range s.devices {
		if !s.busy[i] {
			free = append(free, cand{idx: i, model: d.Model.Name, speed: d.Model.EffTFLOPS * d.SpeedFraction})
		}
	}
	if len(free) < n {
		return nil, false
	}
	sort.Slice(free, func(i, j int) bool {
		if free[i].speed != free[j].speed {
			return free[i].speed > free[j].speed
		}
		return free[i].idx < free[j].idx
	})
	if s.policy == Heterogeneous {
		out := make([]int, n)
		for i := 0; i < n; i++ {
			out[i] = free[i].idx
		}
		return out, true
	}
	// Homogeneous-only: find the fastest model with n free devices.
	byModel := map[string][]int{}
	for _, c := range free {
		byModel[c.model] = append(byModel[c.model], c.idx)
	}
	bestModel, bestSpeed := "", -1.0
	for _, c := range free {
		if len(byModel[c.model]) >= n && c.speed > bestSpeed {
			bestModel, bestSpeed = c.model, c.speed
		}
	}
	if bestModel == "" {
		return nil, false
	}
	return byModel[bestModel][:n], true
}

// start marks devices busy, trains the job, and schedules its completion.
func (s *Scheduler) start(job Job, alloc []int) {
	devs := make([]*gpu.Device, len(alloc))
	names := make([]string, len(alloc))
	for i, idx := range alloc {
		s.busy[idx] = true
		devs[i] = s.devices[idx]
		names[i] = s.devices[idx].ID
	}
	s.jobSeq++
	ring := simnet.UniformRing(len(devs), 10, 20e-6)
	src := rngFor(s.seed, s.jobSeq)
	cl, err := cluster.New(fmt.Sprintf("job-%s", job.ID), devs, ring, src)
	if err != nil {
		s.fail(job, alloc, err)
		return
	}
	res, err := trainer.RunContext(s.ctx, trainer.Config{
		Cluster:  cl,
		Workload: job.Workload,
		System:   s.factory(),
		Seed:     s.seed + uint64(s.jobSeq),
	})
	if err != nil {
		s.fail(job, alloc, err)
		return
	}
	start := s.engine.Now()
	duration := simtime.FromSeconds(res.TotalTime)
	s.engine.Schedule(duration, func() {
		for _, idx := range alloc {
			s.busy[idx] = false
		}
		s.records = append(s.records, Record{
			ID:       job.ID,
			Start:    start,
			Finish:   s.engine.Now(),
			Wait:     start.Sub(job.SubmitAt),
			Devices:  names,
			Converge: res.TotalTime,
		})
		s.dispatch()
	})
}

func (s *Scheduler) fail(job Job, alloc []int, err error) {
	for _, idx := range alloc {
		s.busy[idx] = false
	}
	s.failed = append(s.failed, fmt.Errorf("sched: job %s: %w", job.ID, err))
}
