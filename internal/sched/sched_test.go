package sched

import (
	"strings"
	"testing"

	"cannikin/internal/gpu"
	"cannikin/internal/rng"
	"cannikin/internal/simtime"
	"cannikin/internal/trainer"
	"cannikin/internal/workload"
)

func testPool(t *testing.T) []*gpu.Device {
	t.Helper()
	src := rng.New(100)
	models := []string{"A100", "A100", "V100", "V100", "RTX6000", "RTX6000", "RTX6000", "RTX6000"}
	devices := make([]*gpu.Device, len(models))
	for i, m := range models {
		d, err := gpu.NewDevice(m+"-"+string(rune('a'+i)), m, src)
		if err != nil {
			t.Fatal(err)
		}
		devices[i] = d
	}
	return devices
}

func cifarJob(t *testing.T, id string, gpus int, at simtime.Time) Job {
	t.Helper()
	w, err := workload.Get("cifar10")
	if err != nil {
		t.Fatal(err)
	}
	return Job{ID: id, Workload: w, GPUs: gpus, SubmitAt: at}
}

func cannikinFactory() trainer.System { return trainer.NewCannikin() }

func TestNewValidation(t *testing.T) {
	pool := testPool(t)
	if _, err := New(nil, Heterogeneous, cannikinFactory, 1); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := New(pool, Policy(99), cannikinFactory, 1); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := New(pool, Heterogeneous, nil, 1); err == nil {
		t.Fatal("nil factory accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(testPool(t), Heterogeneous, cannikinFactory, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(cifarJob(t, "too-big", 99, 0)); err == nil {
		t.Fatal("oversized job accepted")
	}
	if err := s.Submit(cifarJob(t, "zero", 0, 0)); err == nil {
		t.Fatal("zero-GPU job accepted")
	}
}

func TestSingleJobRuns(t *testing.T) {
	s, err := New(testPool(t), Heterogeneous, cannikinFactory, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(cifarJob(t, "j1", 4, 0)); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	r := recs[0]
	if r.Wait != 0 {
		t.Fatalf("job waited %v on an empty pool", r.Wait)
	}
	if len(r.Devices) != 4 {
		t.Fatalf("allocated %d devices", len(r.Devices))
	}
	if r.Converge <= 0 || r.Finish <= r.Start {
		t.Fatalf("suspicious record %+v", r)
	}
	// Greedy heterogeneous allocation should grab the A100s first.
	joined := strings.Join(r.Devices, " ")
	if !strings.Contains(joined, "A100") {
		t.Fatalf("fastest GPUs not preferred: %v", r.Devices)
	}
}

func TestQueueingWhenPoolBusy(t *testing.T) {
	s, err := New(testPool(t), Heterogeneous, cannikinFactory, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two 6-GPU jobs cannot overlap on 8 GPUs.
	if err := s.Submit(cifarJob(t, "j1", 6, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(cifarJob(t, "j2", 6, 0)); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[1].Start < recs[0].Finish {
		t.Fatalf("jobs overlapped: %v starts before %v finishes", recs[1].Start, recs[0].Finish)
	}
	if recs[1].Wait <= 0 {
		t.Fatal("second job reports no wait")
	}
}

func TestParallelJobsWhenTheyFit(t *testing.T) {
	s, err := New(testPool(t), Heterogeneous, cannikinFactory, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(cifarJob(t, "j1", 4, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(cifarJob(t, "j2", 4, 0)); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Wait != 0 {
		t.Fatal("first job waited")
	}
	// Both should start immediately.
	for _, r := range recs {
		if r.Start != 0 {
			t.Fatalf("job %s started at %v, want 0", r.ID, r.Start)
		}
	}
}

func TestHomogeneousPolicyRestrictsModels(t *testing.T) {
	s, err := New(testPool(t), HomogeneousOnly, cannikinFactory, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(cifarJob(t, "j1", 4, 0)); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Only RTX6000 has 4 devices; all allocated devices share one model.
	prefix := recs[0].Devices[0][:4]
	for _, d := range recs[0].Devices {
		if d[:4] != prefix {
			t.Fatalf("mixed models under homogeneous policy: %v", recs[0].Devices)
		}
	}
}

func TestHeterogeneousPolicyImprovesUtilization(t *testing.T) {
	// A 6-GPU job cannot run homogeneously on this pool (max 4 of a kind)
	// but runs fine heterogeneously.
	het, err := New(testPool(t), Heterogeneous, cannikinFactory, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := het.Submit(cifarJob(t, "wide", 6, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := het.Run(); err != nil {
		t.Fatal(err)
	}

	hom, err := New(testPool(t), HomogeneousOnly, cannikinFactory, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := hom.Submit(cifarJob(t, "wide", 6, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := hom.Run(); err == nil {
		t.Fatal("homogeneous policy ran a 6-GPU job on a 4-per-model pool")
	}
}

func TestMakespan(t *testing.T) {
	s, err := New(testPool(t), Heterogeneous, cannikinFactory, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(cifarJob(t, "j1", 8, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() <= 0 {
		t.Fatal("zero makespan")
	}
}
