// Package perfmodel implements Cannikin's online performance-model
// learning (Section 4.5 "Parameter learning").
//
// During each epoch every node records, per executed batch, its local batch
// size b, the non-backprop time a (data loading + forward + parameter
// update), and the backpropagation time P. Two epochs with distinct local
// batch sizes suffice to fit the linear models a(b) = q·b + s and
// P(b) = k·b + m; further epochs refine the fit.
//
// The cluster-wide constants — the overlap ratio γ and the communication
// times T_o and T_u — are measured independently by every node with
// node-dependent precision. Cannikin combines those observations with
// inverse-variance weighting; Section 5.3 shows that without it the
// OptPerf prediction error grows from ~3-7% to up to 21%. Both modes are
// implemented so the ablation can be reproduced.
package perfmodel

import (
	"errors"
	"fmt"
	"math"

	"cannikin/internal/optperf"
	"cannikin/internal/stats"
)

// ErrNoModel is returned before enough distinct batch sizes were observed
// to fit a node's compute model.
var ErrNoModel = errors.New("perfmodel: not enough observations to fit model")

// driftThreshold is the relative error between an epoch's measured compute
// times and the fitted model beyond which the node's history is considered
// stale (the underlying resources changed) and discarded.
const driftThreshold = 0.15

// commDriftThreshold is the relative shift between an epoch's fresh
// communication-constant estimate and the accumulated one beyond which the
// comm history is considered stale (the network changed). It is far above
// the few-percent epoch-to-epoch measurement scatter, so only genuine
// bandwidth shifts trip it.
const commDriftThreshold = 0.4

// maxObservations bounds a node's stored measurement history.
const maxObservations = 4096

// NodeLearner accumulates one node's per-batch timing measurements and
// fits its linear compute-time model. When an epoch's measurements
// contradict the fitted model (dynamic resource changes — a co-located
// tenant appearing, a throttled GPU), the stale history is dropped so the
// model re-learns from current behaviour.
type NodeLearner struct {
	bs, as, ps []float64
	// epochStart indexes the first observation of the current epoch.
	epochStart int
	// lastEpochPerSample tracks t_compute / b over the most recent epoch
	// (used by the Eq. 8 bootstrap before models exist).
	lastEpochTime    float64
	lastEpochSamples float64
	// drifted reports whether the most recent EndEpoch discarded history.
	drifted bool
}

// Observe records one executed batch: size b, measured non-backprop time a,
// measured backprop time p. Invalid measurements are ignored.
func (l *NodeLearner) Observe(b int, a, p float64) {
	if b <= 0 || a <= 0 || p <= 0 {
		return
	}
	l.bs = append(l.bs, float64(b))
	l.as = append(l.as, a)
	l.ps = append(l.ps, p)
}

// EndEpoch marks an epoch boundary: it snapshots the epoch's per-sample
// compute time (for the Eq. 8 bootstrap), detects drift against the fitted
// model, and drops stale history when the node's behaviour changed.
func (l *NodeLearner) EndEpoch() {
	l.drifted = false
	start := l.epochStart
	if start >= len(l.bs) {
		// No observations this epoch; fall back to the trailing quarter.
		start = len(l.bs) * 3 / 4
		if start == len(l.bs) && len(l.bs) > 0 {
			start = len(l.bs) - 1
		}
	}
	l.lastEpochTime = 0
	l.lastEpochSamples = 0
	for i := start; i < len(l.bs); i++ {
		l.lastEpochTime += l.as[i] + l.ps[i]
		l.lastEpochSamples += l.bs[i]
	}

	// Drift detection: compare the epoch's measured compute times against
	// the model fitted on the *earlier* history — but only at batch sizes
	// comparable to what that model was fitted on. A large prediction
	// error far outside the observed range is extrapolation error, not a
	// resource change, and must refine the fit rather than reset it.
	if start > 0 && start < len(l.bs) {
		prev := &NodeLearner{bs: l.bs[:start], as: l.as[:start], ps: l.ps[:start]}
		if m, err := prev.Fit(); err == nil {
			minSeen, maxSeen := prev.bs[0], prev.bs[0]
			for _, b := range prev.bs {
				if b < minSeen {
					minSeen = b
				}
				if b > maxSeen {
					maxSeen = b
				}
			}
			var measured, predicted float64
			for i := start; i < len(l.bs); i++ {
				if l.bs[i] < minSeen/2 || l.bs[i] > maxSeen*2 {
					continue
				}
				measured += l.as[i] + l.ps[i]
				predicted += m.Compute(l.bs[i])
			}
			if predicted > 0 {
				rel := math.Abs(measured-predicted) / predicted
				if rel > driftThreshold {
					// Resources changed: only this epoch's measurements
					// describe the node now.
					l.bs = append([]float64(nil), l.bs[start:]...)
					l.as = append([]float64(nil), l.as[start:]...)
					l.ps = append([]float64(nil), l.ps[start:]...)
					l.drifted = true
				}
			}
		}
	}
	if len(l.bs) > maxObservations {
		cut := len(l.bs) - maxObservations
		l.bs = append([]float64(nil), l.bs[cut:]...)
		l.as = append([]float64(nil), l.as[cut:]...)
		l.ps = append([]float64(nil), l.ps[cut:]...)
	}
	l.epochStart = len(l.bs)
}

// Drifted reports whether the most recent EndEpoch discarded stale history
// because the node's measured behaviour no longer matched the model.
func (l *NodeLearner) Drifted() bool { return l.drifted }

// Observations returns the number of recorded batches.
func (l *NodeLearner) Observations() int { return len(l.bs) }

// DistinctBatches returns the number of distinct batch sizes observed.
func (l *NodeLearner) DistinctBatches() int {
	seen := make(map[float64]struct{}, len(l.bs))
	for _, b := range l.bs {
		seen[b] = struct{}{}
	}
	return len(seen)
}

// HasModel reports whether a compute-time model can be fitted.
func (l *NodeLearner) HasModel() bool { return l.DistinctBatches() >= 2 }

// SeenBatch reports whether the node has already trained at batch size b.
func (l *NodeLearner) SeenBatch(b int) bool {
	for _, v := range l.bs {
		if v == float64(b) {
			return true
		}
	}
	return false
}

// PerSampleTime returns the most recent per-sample compute time estimate
// (Eq. 8 bootstrap), or an error when nothing was observed yet.
func (l *NodeLearner) PerSampleTime() (float64, error) {
	if l.lastEpochSamples > 0 {
		return l.lastEpochTime / l.lastEpochSamples, nil
	}
	// Fall back to all observations when EndEpoch was not called yet.
	var tot, samples float64
	for i := range l.bs {
		tot += l.as[i] + l.ps[i]
		samples += l.bs[i]
	}
	if samples == 0 {
		return 0, ErrNoModel
	}
	return tot / samples, nil
}

// Fit returns the node's learned compute model (without a batch cap; the
// caller owns memory limits).
func (l *NodeLearner) Fit() (optperf.NodeModel, error) {
	if !l.HasModel() {
		return optperf.NodeModel{}, fmt.Errorf("%w: %d distinct batch sizes", ErrNoModel, l.DistinctBatches())
	}
	aFit, err := stats.FitLine(l.bs, l.as)
	if err != nil {
		return optperf.NodeModel{}, fmt.Errorf("perfmodel: fit a(b): %w", err)
	}
	pFit, err := stats.FitLine(l.bs, l.ps)
	if err != nil {
		return optperf.NodeModel{}, fmt.Errorf("perfmodel: fit P(b): %w", err)
	}
	m := optperf.NodeModel{
		Q: aFit.Slope, S: aFit.Intercept,
		K: pFit.Slope, M: pFit.Intercept,
	}
	// Noisy small-sample fits can produce slightly negative intercepts or
	// slopes; clamp to the physically meaningful region.
	if m.Q < 0 {
		m.Q = 0
	}
	if m.S < 0 {
		m.S = 0
	}
	if m.K <= 0 {
		m.K = 1e-9
	}
	if m.M < 0 {
		m.M = 0
	}
	return m, nil
}

// FitError returns the mean relative residual between the fitted compute
// model and the stored observations. It is the audit harness's confidence
// signal: a large fit error means plan audits judge the solver against a
// model that does not describe the node well, so equalization residuals
// say little about the real cluster. Returns ErrNoModel before a model can
// be fitted.
func (l *NodeLearner) FitError() (float64, error) {
	m, err := l.Fit()
	if err != nil {
		return 0, err
	}
	var sum float64
	var count int
	for i := range l.bs {
		pred := m.Compute(l.bs[i])
		if pred <= 0 {
			continue
		}
		sum += math.Abs(l.as[i]+l.ps[i]-pred) / pred
		count++
	}
	if count == 0 {
		return 0, nil
	}
	return sum / float64(count), nil
}

// CommObservation is one node's per-epoch measurement of the cluster
// communication constants, with the node's own variance estimates.
type CommObservation struct {
	Gamma, GammaVar float64
	To, ToVar       float64
	Tu, TuVar       float64
}

// ClusterLearner aggregates per-node learners and the cluster-wide
// communication constants.
type ClusterLearner struct {
	nodes []*NodeLearner
	gamma []stats.Observation
	to    []stats.Observation
	tu    []stats.Observation
	// commEpochStart indexes the first comm observation of the current
	// epoch; commDrifted reports whether the most recent EndEpoch dropped
	// stale comm history.
	commEpochStart int
	commDrifted    bool
	// UseIVW selects inverse-variance weighting (Cannikin) vs plain
	// averaging (the ablation of Section 5.3).
	UseIVW bool
}

// NewClusterLearner returns a learner for n nodes with IVW enabled.
func NewClusterLearner(n int) *ClusterLearner {
	c := &ClusterLearner{nodes: make([]*NodeLearner, n), UseIVW: true}
	for i := range c.nodes {
		c.nodes[i] = &NodeLearner{}
	}
	return c
}

// Node returns the learner for node i.
func (c *ClusterLearner) Node(i int) *NodeLearner { return c.nodes[i] }

// Nodes returns the node count.
func (c *ClusterLearner) Nodes() int { return len(c.nodes) }

// ObserveComm records one node's communication-constant measurements.
func (c *ClusterLearner) ObserveComm(obs CommObservation) {
	c.gamma = append(c.gamma, stats.Observation{Value: obs.Gamma, Variance: obs.GammaVar})
	c.to = append(c.to, stats.Observation{Value: obs.To, Variance: obs.ToVar})
	c.tu = append(c.tu, stats.Observation{Value: obs.Tu, Variance: obs.TuVar})
}

// EndEpoch marks an epoch boundary on every node learner and checks the
// epoch's communication observations against the accumulated estimate:
// a large shift means the network itself changed (a per-link bandwidth
// event), so the stale comm history is dropped and only the current
// epoch's measurements describe the cluster.
func (c *ClusterLearner) EndEpoch() {
	for _, n := range c.nodes {
		n.EndEpoch()
	}
	c.commDrifted = false
	if c.commEpochStart > 0 && c.commEpochStart < len(c.to) {
		oldTo, err1 := c.combine(c.to[:c.commEpochStart])
		oldTu, err2 := c.combine(c.tu[:c.commEpochStart])
		newTo, err3 := c.combine(c.to[c.commEpochStart:])
		newTu, err4 := c.combine(c.tu[c.commEpochStart:])
		if err1 == nil && err2 == nil && err3 == nil && err4 == nil {
			oldComm, newComm := oldTo+oldTu, newTo+newTu
			if oldComm > 0 && math.Abs(newComm-oldComm)/oldComm > commDriftThreshold {
				c.gamma = append([]stats.Observation(nil), c.gamma[c.commEpochStart:]...)
				c.to = append([]stats.Observation(nil), c.to[c.commEpochStart:]...)
				c.tu = append([]stats.Observation(nil), c.tu[c.commEpochStart:]...)
				c.commDrifted = true
			}
		}
	}
	c.commEpochStart = len(c.to)
}

// AnyDrifted reports whether the most recent epoch boundary discarded
// stale history — a node's compute resources changed, or the network's
// communication constants shifted; callers should invalidate plans derived
// from the old models.
func (c *ClusterLearner) AnyDrifted() bool {
	if c.commDrifted {
		return true
	}
	for _, n := range c.nodes {
		if n.Drifted() {
			return true
		}
	}
	return false
}

// CommDrifted reports whether the most recent EndEpoch dropped stale
// communication history (the network changed).
func (c *ClusterLearner) CommDrifted() bool { return c.commDrifted }

// DriftedNodes returns the indices of the nodes that discarded stale
// history at the most recent epoch boundary — the targets for
// re-profiling.
func (c *ClusterLearner) DriftedNodes() []int {
	var out []int
	for i, n := range c.nodes {
		if n.Drifted() {
			out = append(out, i)
		}
	}
	return out
}

// HasModel reports whether every node has a fitted compute model and the
// communication constants were observed.
func (c *ClusterLearner) HasModel() bool {
	for _, n := range c.nodes {
		if !n.HasModel() {
			return false
		}
	}
	return len(c.gamma) > 0
}

// PerSampleTimes returns the Eq. 8 bootstrap inputs for all nodes.
func (c *ClusterLearner) PerSampleTimes() ([]float64, error) {
	out := make([]float64, len(c.nodes))
	for i, n := range c.nodes {
		t, err := n.PerSampleTime()
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// Model fits the full cluster model. caps supplies per-node memory limits
// (nil for unlimited).
func (c *ClusterLearner) Model(caps []int) (optperf.ClusterModel, error) {
	if len(c.gamma) == 0 {
		return optperf.ClusterModel{}, fmt.Errorf("%w: no communication observations", ErrNoModel)
	}
	m := optperf.ClusterModel{Nodes: make([]optperf.NodeModel, len(c.nodes))}
	for i, n := range c.nodes {
		nm, err := n.Fit()
		if err != nil {
			return optperf.ClusterModel{}, fmt.Errorf("node %d: %w", i, err)
		}
		if caps != nil {
			nm.MaxBatch = caps[i]
		}
		m.Nodes[i] = nm
	}
	var err error
	if m.Gamma, err = c.combine(c.gamma); err != nil {
		return optperf.ClusterModel{}, err
	}
	if m.To, err = c.combine(c.to); err != nil {
		return optperf.ClusterModel{}, err
	}
	if m.Tu, err = c.combine(c.tu); err != nil {
		return optperf.ClusterModel{}, err
	}
	m.Gamma = stats.Clamp(m.Gamma, 1e-6, 1)
	if m.To < 0 {
		m.To = 0
	}
	if m.Tu < 0 {
		m.Tu = 0
	}
	return m, nil
}

// MaxFitError returns the worst per-node FitError across the cluster, or 0
// when no node has a fitted model yet.
func (c *ClusterLearner) MaxFitError() float64 {
	worst := 0.0
	for _, n := range c.nodes {
		if e, err := n.FitError(); err == nil && e > worst {
			worst = e
		}
	}
	return worst
}

// combine merges comm observations per the learner's weighting mode.
func (c *ClusterLearner) combine(obs []stats.Observation) (float64, error) {
	if c.UseIVW {
		o, err := stats.InverseVarianceMean(obs)
		return o.Value, err
	}
	vals := make([]float64, len(obs))
	for i, o := range obs {
		vals[i] = o.Value
	}
	return stats.Mean(vals), nil
}
