package perfmodel

import (
	"errors"
	"math"
	"testing"

	"cannikin/internal/gpu"
	"cannikin/internal/rng"
	"cannikin/internal/stats"
)

func TestNodeLearnerNeedsTwoDistinctBatches(t *testing.T) {
	var l NodeLearner
	if l.HasModel() {
		t.Fatal("empty learner claims model")
	}
	l.Observe(32, 0.01, 0.02)
	l.Observe(32, 0.011, 0.019)
	if l.HasModel() {
		t.Fatal("single batch size suffices for a line?")
	}
	if _, err := l.Fit(); !errors.Is(err, ErrNoModel) {
		t.Fatalf("Fit err = %v, want ErrNoModel", err)
	}
	l.Observe(64, 0.02, 0.04)
	if !l.HasModel() {
		t.Fatal("two distinct batch sizes should fit")
	}
	if _, err := l.Fit(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeLearnerIgnoresInvalid(t *testing.T) {
	var l NodeLearner
	l.Observe(0, 1, 1)
	l.Observe(-3, 1, 1)
	l.Observe(10, 0, 1)
	l.Observe(10, 1, -1)
	if l.Observations() != 0 {
		t.Fatalf("invalid observations recorded: %d", l.Observations())
	}
}

func TestNodeLearnerRecoversExactModel(t *testing.T) {
	var l NodeLearner
	// a(b) = 0.0005 b + 0.004 ; P(b) = 0.001 b + 0.002
	for _, b := range []int{8, 16, 32, 64} {
		l.Observe(b, 0.0005*float64(b)+0.004, 0.001*float64(b)+0.002)
	}
	m, err := l.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Q-0.0005) > 1e-12 || math.Abs(m.S-0.004) > 1e-12 ||
		math.Abs(m.K-0.001) > 1e-12 || math.Abs(m.M-0.002) > 1e-12 {
		t.Fatalf("fit = %+v", m)
	}
}

func TestNodeLearnerLearnsFromNoisyDevice(t *testing.T) {
	// End-to-end with the gpu substrate: learned coefficients must land
	// within a few percent of the device's ground truth.
	src := rng.New(3)
	dev, err := gpu.NewDevice("n0", "V100", src)
	if err != nil {
		t.Fatal(err)
	}
	profile := gpu.JobProfile{
		Name:              "test",
		FwdFLOPsPerSample: 4e9,
		BwdFLOPsPerSample: 8e9,
		BytesPerSample:    500e3,
		ParamBytes:        100e6,
		UpdateFLOPs:       1e8,
		MemPerSampleBytes: 20e6,
		ModelMemBytes:     300e6,
	}
	var l NodeLearner
	for _, b := range []int{16, 24, 32, 48, 64, 96} {
		for rep := 0; rep < 20; rep++ {
			meas := dev.MeasureCompute(profile, b)
			l.Observe(b, meas.A, meas.P)
		}
	}
	m, err := l.Fit()
	if err != nil {
		t.Fatal(err)
	}
	truth := dev.Coeffs(profile)
	if stats.RelErr(m.Q, truth.Q) > 0.05 || stats.RelErr(m.K, truth.K) > 0.05 {
		t.Fatalf("per-sample coefficients off: got Q=%v K=%v want Q=%v K=%v", m.Q, m.K, truth.Q, truth.K)
	}
	if stats.RelErr(m.Compute(64), truth.Compute(64)) > 0.03 {
		t.Fatalf("predicted compute(64) off: %v vs %v", m.Compute(64), truth.Compute(64))
	}
}

func TestPerSampleTime(t *testing.T) {
	var l NodeLearner
	if _, err := l.PerSampleTime(); !errors.Is(err, ErrNoModel) {
		t.Fatalf("err = %v", err)
	}
	l.Observe(10, 0.06, 0.04) // 0.01 s/sample
	got, err := l.PerSampleTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("PerSampleTime = %v, want 0.01", got)
	}
	l.EndEpoch()
	got, err = l.PerSampleTime()
	if err != nil || math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("after EndEpoch: %v, %v", got, err)
	}
}

func TestEndEpochSnapshotsRecentRate(t *testing.T) {
	var l NodeLearner
	// Epoch 0: slow (0.02 s/sample). Epoch 1: fast (0.01 s/sample).
	for i := 0; i < 30; i++ {
		l.Observe(10, 0.1, 0.1)
	}
	l.EndEpoch()
	for i := 0; i < 10; i++ {
		l.Observe(10, 0.06, 0.04)
	}
	l.EndEpoch()
	got, err := l.PerSampleTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("PerSampleTime = %v, want recent 0.01", got)
	}
}

func TestDriftDetectionDropsStaleHistory(t *testing.T) {
	var l NodeLearner
	// Two epochs of a stable model: a(b)=0.001b+0.004, P(b)=0.002b+0.002.
	for _, b := range []int{8, 16, 8, 16} {
		l.Observe(b, 0.001*float64(b)+0.004, 0.002*float64(b)+0.002)
	}
	l.EndEpoch()
	if l.Drifted() {
		t.Fatal("drift flagged on consistent history")
	}
	// A consistent epoch must not drop anything.
	l.Observe(12, 0.001*12+0.004, 0.002*12+0.002)
	l.EndEpoch()
	if l.Drifted() {
		t.Fatal("drift flagged on a consistent epoch")
	}
	kept := l.Observations()
	// The node halves in speed: the epoch contradicts the model.
	for _, b := range []int{8, 16} {
		l.Observe(b, 2*(0.001*float64(b)+0.004), 2*(0.002*float64(b)+0.002))
	}
	l.EndEpoch()
	if !l.Drifted() {
		t.Fatal("2x slowdown not flagged as drift")
	}
	if l.Observations() >= kept {
		t.Fatalf("stale history retained: %d observations", l.Observations())
	}
	// The surviving history reflects the new speed.
	m, err := l.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(m.Compute(16), 2*(0.001*16+0.004)+2*(0.002*16+0.002)) > 0.05 {
		t.Fatalf("refitted model wrong: compute(16) = %v", m.Compute(16))
	}
}

func TestClusterLearnerModel(t *testing.T) {
	c := NewClusterLearner(2)
	if c.Nodes() != 2 {
		t.Fatalf("Nodes = %d", c.Nodes())
	}
	if c.HasModel() {
		t.Fatal("fresh learner claims model")
	}
	for _, b := range []int{8, 16} {
		c.Node(0).Observe(b, 0.0005*float64(b)+0.004, 0.001*float64(b)+0.002)
		c.Node(1).Observe(b, 0.001*float64(b)+0.005, 0.002*float64(b)+0.003)
	}
	if c.HasModel() {
		t.Fatal("model without communication observations")
	}
	c.ObserveComm(CommObservation{Gamma: 0.25, GammaVar: 1e-4, To: 0.02, ToVar: 1e-6, Tu: 0.005, TuVar: 1e-7})
	c.ObserveComm(CommObservation{Gamma: 0.27, GammaVar: 1e-4, To: 0.021, ToVar: 1e-6, Tu: 0.0052, TuVar: 1e-7})
	if !c.HasModel() {
		t.Fatal("learner should have model now")
	}
	m, err := c.Model([]int{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes[0].MaxBatch != 100 || m.Nodes[1].MaxBatch != 200 {
		t.Fatal("caps not propagated")
	}
	if m.Gamma < 0.24 || m.Gamma > 0.28 {
		t.Fatalf("gamma = %v", m.Gamma)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("learned model invalid: %v", err)
	}
}

func TestClusterLearnerModelErrors(t *testing.T) {
	c := NewClusterLearner(2)
	if _, err := c.Model(nil); !errors.Is(err, ErrNoModel) {
		t.Fatalf("no comm obs: err = %v", err)
	}
	c.ObserveComm(CommObservation{Gamma: 0.25, To: 0.02, Tu: 0.005})
	if _, err := c.Model(nil); !errors.Is(err, ErrNoModel) {
		t.Fatalf("no node models: err = %v", err)
	}
}

func TestIVWBeatsPlainAveraging(t *testing.T) {
	// Nodes with heterogeneous measurement precision: the IVW-combined
	// gamma must be closer to truth than the plain mean when one noisy
	// node reports a wild value.
	build := func(useIVW bool) float64 {
		c := NewClusterLearner(3)
		c.UseIVW = useIVW
		for _, b := range []int{8, 16} {
			for i := 0; i < 3; i++ {
				c.Node(i).Observe(b, 0.001*float64(b)+0.004, 0.002*float64(b)+0.002)
			}
		}
		// Truth gamma = 0.25. Two precise nodes, one wildly wrong noisy node.
		c.ObserveComm(CommObservation{Gamma: 0.251, GammaVar: 1e-6, To: 0.02, ToVar: 1e-8, Tu: 0.005, TuVar: 1e-8})
		c.ObserveComm(CommObservation{Gamma: 0.249, GammaVar: 1e-6, To: 0.02, ToVar: 1e-8, Tu: 0.005, TuVar: 1e-8})
		c.ObserveComm(CommObservation{Gamma: 0.60, GammaVar: 0.04, To: 0.05, ToVar: 1e-3, Tu: 0.012, TuVar: 1e-4})
		m, err := c.Model(nil)
		if err != nil {
			t.Fatal(err)
		}
		return m.Gamma
	}
	ivw := build(true)
	plain := build(false)
	if math.Abs(ivw-0.25) >= math.Abs(plain-0.25) {
		t.Fatalf("IVW gamma %v not closer to 0.25 than plain %v", ivw, plain)
	}
	if math.Abs(ivw-0.25) > 0.01 {
		t.Fatalf("IVW gamma %v too far from truth", ivw)
	}
}

func TestPerSampleTimes(t *testing.T) {
	c := NewClusterLearner(2)
	c.Node(0).Observe(10, 0.05, 0.05) // 0.01/sample
	if _, err := c.PerSampleTimes(); err == nil {
		t.Fatal("missing node 1 data accepted")
	}
	c.Node(1).Observe(10, 0.1, 0.1) // 0.02/sample
	ts, err := c.PerSampleTimes()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ts[0]-0.01) > 1e-12 || math.Abs(ts[1]-0.02) > 1e-12 {
		t.Fatalf("PerSampleTimes = %v", ts)
	}
}

func TestFitClampsNonPhysical(t *testing.T) {
	var l NodeLearner
	// Observations implying a negative intercept for a(b).
	l.Observe(10, 0.001, 0.010)
	l.Observe(20, 0.004, 0.021)
	m, err := l.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if m.S < 0 || m.M < 0 || m.Q < 0 || m.K <= 0 {
		t.Fatalf("non-physical model: %+v", m)
	}
}

func TestFitError(t *testing.T) {
	var l NodeLearner
	if _, err := l.FitError(); err == nil {
		t.Fatal("FitError without a model must error")
	}
	// Exact linear data: fit error ~0.
	for _, b := range []int{8, 16, 32, 64} {
		l.Observe(b, 0.0005*float64(b)+0.004, 0.001*float64(b)+0.002)
	}
	e, err := l.FitError()
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-9 {
		t.Fatalf("exact data fit error %v", e)
	}
	// Inject measurements far off the line: the residual must grow.
	l.Observe(16, 0.5, 0.5)
	l.Observe(32, 0.9, 0.9)
	e2, err := l.FitError()
	if err != nil {
		t.Fatal(err)
	}
	if e2 < 0.1 {
		t.Fatalf("noisy data fit error too small: %v", e2)
	}
}

func TestClusterMaxFitError(t *testing.T) {
	c := NewClusterLearner(2)
	if e := c.MaxFitError(); e != 0 {
		t.Fatalf("no models yet, want 0, got %v", e)
	}
	for _, b := range []int{8, 16} {
		c.Node(0).Observe(b, 0.0005*float64(b)+0.004, 0.001*float64(b)+0.002)
	}
	c.Node(1).Observe(8, 0.01, 0.01)
	c.Node(1).Observe(16, 0.5, 0.5)
	c.Node(1).Observe(8, 0.3, 0.3) // same b, wildly different time: bad fit
	e := c.MaxFitError()
	if e <= 0 {
		t.Fatalf("expected positive max fit error, got %v", e)
	}
}
