package perfmodel

import (
	"errors"
	"math"
	"testing"
)

// A noiseless profile generated from known constants must be recovered
// exactly (up to float rounding): the fit divides the line's slope and
// intercept by the hop count, so t(b) = hops·(α + β·b) round-trips.
func TestFitLinkRecoversConstants(t *testing.T) {
	const (
		alpha = 35e-6  // 35 us per hop
		beta  = 2.5e-9 // 0.4 GB/s
		hops  = 6      // 2(n-1), n = 4
	)
	bytesObs := []float64{1 << 10, 8 << 10, 64 << 10, 256 << 10, 1 << 20}
	secs := make([]float64, len(bytesObs))
	for i, b := range bytesObs {
		secs[i] = hops * (alpha + beta*b)
	}
	m, err := FitLink(bytesObs, secs, hops)
	if err != nil {
		t.Fatalf("FitLink: %v", err)
	}
	if !m.Valid() {
		t.Fatalf("fitted model invalid: %+v", m)
	}
	if got := m.Alpha; math.Abs(got-alpha) > 1e-9*alpha+1e-18 {
		t.Errorf("Alpha = %g, want %g", got, alpha)
	}
	if got := m.Beta; math.Abs(got-beta) > 1e-9*beta+1e-21 {
		t.Errorf("Beta = %g, want %g", got, beta)
	}
	// Cost must predict the single-hop line, not the whole collective.
	if got, want := m.Cost(64<<10), alpha+beta*(64<<10); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost(64KiB) = %g, want %g", got, want)
	}
}

func TestFitLinkDegenerateInputs(t *testing.T) {
	good := []float64{1024, 2048, 4096}
	secsFor := func(a, b float64) []float64 {
		out := make([]float64, len(good))
		for i, x := range good {
			out[i] = a + b*x
		}
		return out
	}

	if _, err := FitLink(good, secsFor(1e-5, 1e-9), 0); err == nil {
		t.Error("hops = 0: want error")
	}
	// A single payload size cannot pin down both constants.
	if _, err := FitLink([]float64{4096, 4096, 4096}, []float64{1e-4, 1e-4, 1e-4}, 2); err == nil {
		t.Error("single distinct payload: want error")
	}
	// Negative slope (timings shrink with size) is not a physical link:
	// callers must get ErrNoModel and keep the threshold fallback.
	if _, err := FitLink(good, secsFor(1e-3, -1e-7), 2); !errors.Is(err, ErrNoModel) {
		t.Errorf("negative beta: want ErrNoModel, got %v", err)
	}
	// Negative intercept likewise (e.g. two noisy points on a steep line).
	if _, err := FitLink(good, secsFor(-1e-3, 1e-6), 2); !errors.Is(err, ErrNoModel) {
		t.Errorf("negative alpha: want ErrNoModel, got %v", err)
	}
}
