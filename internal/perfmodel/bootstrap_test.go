package perfmodel

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// obs is one recorded probe batch of the bootstrap tables.
type obs struct {
	b    int
	a, p float64
}

// TestPerSampleTimeBootstrap pins the Eq. 8 bootstrap — the per-sample
// compute time a joining worker's admission probe produces before any
// model can be fitted — on the degenerate probe windows hot-join actually
// produces: a single batch, a handful of identical batches, a window with
// one outlier measurement, and windows polluted by invalid samples.
func TestPerSampleTimeBootstrap(t *testing.T) {
	cases := []struct {
		name     string
		probes   []obs
		endEpoch bool
		want     float64
		wantErr  bool
	}{
		{
			name:    "empty window",
			wantErr: true,
		},
		{
			name:   "single probe batch",
			probes: []obs{{b: 8, a: 1e-3, p: 3e-3}},
			want:   (1e-3 + 3e-3) / 8,
		},
		{
			name: "identical probe batches collapse to one estimate",
			probes: []obs{
				{b: 8, a: 1e-3, p: 3e-3},
				{b: 8, a: 1e-3, p: 3e-3},
				{b: 8, a: 1e-3, p: 3e-3},
			},
			want: (1e-3 + 3e-3) / 8,
		},
		{
			name: "estimate is the sample-weighted mean, so one outlier probe shifts it proportionally",
			probes: []obs{
				{b: 8, a: 1e-3, p: 3e-3},
				{b: 8, a: 1e-3, p: 3e-3},
				{b: 8, a: 1e-3, p: 19e-3}, // a straggler pass: 4x the others
			},
			want: (3*1e-3 + 3e-3 + 3e-3 + 19e-3) / 24,
		},
		{
			name: "mixed batch sizes weight by samples, not by batches",
			probes: []obs{
				{b: 16, a: 2e-3, p: 6e-3},
				{b: 4, a: 0.5e-3, p: 1.5e-3},
			},
			want: (2e-3 + 6e-3 + 0.5e-3 + 1.5e-3) / 20,
		},
		{
			name: "invalid probes are ignored",
			probes: []obs{
				{b: 0, a: 1e-3, p: 3e-3},
				{b: 8, a: -1, p: 3e-3},
				{b: 8, a: 1e-3, p: 0},
			},
			wantErr: true,
		},
		{
			name:     "epoch boundary snapshots the window",
			probes:   []obs{{b: 8, a: 1e-3, p: 3e-3}},
			endEpoch: true,
			want:     (1e-3 + 3e-3) / 8,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var l NodeLearner
			for _, o := range tc.probes {
				l.Observe(o.b, o.a, o.p)
			}
			if tc.endEpoch {
				l.EndEpoch()
			}
			got, err := l.PerSampleTime()
			if tc.wantErr {
				if !errors.Is(err, ErrNoModel) {
					t.Fatalf("PerSampleTime = %v, %v; want ErrNoModel", got, err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-15 {
				t.Fatalf("PerSampleTime = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestPerSampleTimeTracksCurrentEpoch: after an epoch boundary the Eq. 8
// estimate reflects only the most recent epoch's measurements — a probe
// window taken after a speed change must not be diluted by history.
func TestPerSampleTimeTracksCurrentEpoch(t *testing.T) {
	var l NodeLearner
	l.Observe(8, 1e-3, 3e-3) // slow epoch: 0.5 ms/sample
	l.EndEpoch()
	l.Observe(8, 0.5e-3, 1.5e-3) // fast epoch: 0.25 ms/sample
	l.EndEpoch()
	got, err := l.PerSampleTime()
	if err != nil {
		t.Fatal(err)
	}
	if want := (0.5e-3 + 1.5e-3) / 8; math.Abs(got-want) > 1e-15 {
		t.Fatalf("PerSampleTime = %v, want the fresh epoch's %v", got, want)
	}

	// An empty epoch falls back to the trailing window instead of failing:
	// the joiner keeps a usable estimate across an idle boundary.
	l.EndEpoch()
	got2, err := l.PerSampleTime()
	if err != nil {
		t.Fatal(err)
	}
	if got2 <= 0 {
		t.Fatalf("PerSampleTime after idle epoch = %v", got2)
	}
}

// TestPerSampleTimesNamesEmptyNode: the cluster-level bootstrap must say
// which node has no estimate, since a hot-join probes exactly one new node.
func TestPerSampleTimesNamesEmptyNode(t *testing.T) {
	c := NewClusterLearner(3)
	for i := 0; i < 2; i++ {
		c.Node(i).Observe(8, 1e-3, 3e-3)
	}
	if _, err := c.PerSampleTimes(); err == nil || !strings.Contains(err.Error(), "node 2") {
		t.Fatalf("PerSampleTimes err = %v, want node 2 named", err)
	}
	c.Node(2).Observe(4, 1e-3, 3e-3)
	ts, err := c.PerSampleTimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[2] != (1e-3+3e-3)/4 {
		t.Fatalf("PerSampleTimes = %v", ts)
	}
}
