package perfmodel

import (
	"fmt"

	"cannikin/internal/stats"
)

// LinkModel is the fitted point-to-point cost of one ring hop,
//
//	t(b) = Alpha + Beta·b
//
// with Alpha the per-message latency in seconds and Beta the per-byte cost
// (the inverse link bandwidth). It prices the collective-algorithm
// selection in internal/allreduce: ring, halving-doubling, and pipelined
// schedules trade the two constants differently, so fitting them from a
// measured profile lets the runtime pick the argmin schedule per gradient
// bucket instead of a hardcoded size threshold.
type LinkModel struct {
	Alpha float64 // per-hop latency, seconds
	Beta  float64 // per-byte cost, seconds
}

// Cost predicts one hop carrying b bytes.
func (m LinkModel) Cost(b float64) float64 { return m.Alpha + m.Beta*b }

// Valid reports whether the constants are physically meaningful (both
// strictly positive — the shape allreduce.Selector.Fitted requires).
func (m LinkModel) Valid() bool { return m.Alpha > 0 && m.Beta > 0 }

// FitLink fits the per-hop model from measured collectives: bytes[i] is
// the per-message payload of one observed collective, secs[i] its measured
// wall-clock time, and hops the number of serialized link traversals that
// collective performs (2(n-1) for a ring reduce of n ranks). A least-
// squares line through (bytes, secs) has slope hops·Beta and intercept
// hops·Alpha. The observations must span at least two distinct payload
// sizes, and the fitted constants must come out positive; otherwise
// ErrNoModel — callers then keep the calibrated threshold fallback.
func FitLink(bytes, secs []float64, hops float64) (LinkModel, error) {
	if hops <= 0 {
		return LinkModel{}, fmt.Errorf("perfmodel: link fit over %g hops", hops)
	}
	fit, err := stats.FitLine(bytes, secs)
	if err != nil {
		return LinkModel{}, fmt.Errorf("perfmodel: fit link: %w", err)
	}
	m := LinkModel{Alpha: fit.Intercept / hops, Beta: fit.Slope / hops}
	if !m.Valid() {
		return LinkModel{}, fmt.Errorf("%w: degenerate link fit (alpha=%g, beta=%g)", ErrNoModel, m.Alpha, m.Beta)
	}
	return m, nil
}
