package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("sequence diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("device-0")
	c2 := parent.Split("device-1")
	c1b := New(7).Split("device-0")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1b.Uint64() {
			t.Fatal("split with same label is not deterministic")
		}
	}
	// Distinct labels must produce distinct streams.
	c1 = New(7).Split("device-0")
	diff := false
	for i := 0; i < 10; i++ {
		if c1.Uint64() != c2.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("split streams with different labels are identical")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) visited only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(2.0, 3.0)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-2.0) > 0.05 {
		t.Fatalf("normal mean = %v, want ~2", mean)
	}
	if math.Abs(math.Sqrt(variance)-3.0) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormFactorMeanIsOne(t *testing.T) {
	s := New(17)
	const n = 500000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.LogNormFactor(0.05)
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.005 {
		t.Fatalf("lognormal factor mean = %v, want ~1", mean)
	}
}

func TestLogNormFactorZeroSigma(t *testing.T) {
	s := New(1)
	if got := s.LogNormFactor(0); got != 1 {
		t.Fatalf("LogNormFactor(0) = %v, want exactly 1", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + s.Intn(50)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}
