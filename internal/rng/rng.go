// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the simulator so that every experiment is
// bit-reproducible across runs and platforms.
//
// The generator is a small PCG-style 64-bit stream. Splitting derives an
// independent child stream from a parent stream and a label, so concurrent
// components (one per simulated device, for example) never contend on a
// shared source and never change results when scheduling order changes.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic random stream. The zero value is NOT usable;
// construct with New or Split.
type Source struct {
	state uint64
	inc   uint64
}

// New returns a stream seeded from seed. Two sources with the same seed
// yield identical sequences.
func New(seed uint64) *Source {
	s := &Source{inc: 0xda3e39cb94b95bdb}
	s.state = seed*0x9e3779b97f4a7c15 + 0x853c49e6748fea9b
	s.Uint64() // advance past the seed-correlated first output
	return s
}

// Split derives an independent child stream identified by label. Children
// with distinct labels produce uncorrelated sequences; the parent stream is
// not advanced.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	child := &Source{
		state: s.state ^ h.Sum64(),
		inc:   (h.Sum64() << 1) | 1,
	}
	child.Uint64()
	child.Uint64()
	return child
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	// xorshift64* step mixed with a Weyl sequence increment: simple, fast,
	// and statistically adequate for simulation noise (not cryptography).
	s.state += s.inc
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (s *Source) Norm(mean, stddev float64) float64 {
	// Draw u1 in (0, 1] to avoid log(0).
	u1 := 1.0 - s.Float64()
	u2 := s.Float64()
	z := math.Sqrt(-2.0*math.Log(u1)) * math.Cos(2.0*math.Pi*u2)
	return mean + stddev*z
}

// LogNormFactor returns a multiplicative noise factor exp(N(0, sigma))
// normalized to have mean 1. sigma is the log-space standard deviation.
func (s *Source) LogNormFactor(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return math.Exp(s.Norm(-sigma*sigma/2, sigma))
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
