// Package trace provides the small recording and rendering toolkit the
// experiment harness uses to print the paper's tables and figure series:
// named (x, y) series, aligned text tables, and CSV output.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Series is one named line of a figure: paired x/y values.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value at the largest x <= q (step interpolation), or
// the first y when q precedes the series.
func (s *Series) YAt(q float64) float64 {
	if len(s.X) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(s.X, q)
	if idx < len(s.X) && s.X[idx] == q {
		return s.Y[idx]
	}
	if idx == 0 {
		return s.Y[0]
	}
	return s.Y[idx-1]
}

// Last returns the final point; it panics on an empty series.
func (s *Series) Last() (x, y float64) {
	if len(s.X) == 0 {
		panic("trace: Last on empty series")
	}
	return s.X[len(s.X)-1], s.Y[len(s.Y)-1]
}

// Figure is a set of series sharing axes (one paper figure or panel).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries registers and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Get returns the named series, or nil.
func (f *Figure) Get(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Fprint renders the figure as aligned columns: x then one column per
// series, sampling each series at the union of x values.
func (f *Figure) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", f.Title); err != nil {
		return err
	}
	xs := map[float64]struct{}{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = struct{}{}
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	t := NewTable(append([]string{f.XLabel}, names(f.Series)...)...)
	for _, x := range sorted {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, formatFloat(x))
		for _, s := range f.Series {
			if s.Len() == 0 || x < s.X[0] {
				row = append(row, "-")
				continue
			}
			row = append(row, formatFloat(s.YAt(x)))
		}
		t.AddRow(row...)
	}
	return t.Fprint(w)
}

func names(ss []*Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// Table is an aligned text table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// AddRow appends one row; short rows are padded, long rows panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("trace: row has %d cells for %d headers", len(cells), len(t.Headers)))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowValues appends one row of formatted arbitrary values.
func (t *Table) AddRowValues(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = formatFloat(x)
		case string:
			cells[i] = x
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// FprintCSV renders the table as CSV.
func (t *Table) FprintCSV(w io.Writer) error {
	rows := append([][]string{t.Headers}, t.Rows...)
	for _, row := range rows {
		quoted := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			quoted[i] = c
		}
		if _, err := fmt.Fprintln(w, strings.Join(quoted, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case v == float64(int64(v)) && abs < 1e9:
		return strconv.FormatInt(int64(v), 10)
	case abs >= 0.01 && abs < 1e6:
		return strconv.FormatFloat(v, 'f', 4, 64)
	default:
		return strconv.FormatFloat(v, 'g', 5, 64)
	}
}
