package trace

import (
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("a|b", "1")
	var sb strings.Builder
	if err := tab.FprintMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if lines[0] != "| name | value |" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "| --- | --- |" {
		t.Fatalf("rule %q", lines[1])
	}
	if !strings.Contains(lines[2], `a\|b`) {
		t.Fatalf("pipe not escaped: %q", lines[2])
	}
}

func TestFigureMarkdown(t *testing.T) {
	f := NewFigure("a figure", "x", "y")
	s1 := f.AddSeries("s1")
	s1.Add(1, 10)
	s1.Add(2, 20)
	s2 := f.AddSeries("s2")
	s2.Add(2, 99) // starts later: x=1 cell must be a dash
	var sb strings.Builder
	if err := f.FprintMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "### a figure") {
		t.Fatalf("missing heading:\n%s", out)
	}
	if !strings.Contains(out, "| 1 | 10 | — |") {
		t.Fatalf("missing placeholder row:\n%s", out)
	}
	if !strings.Contains(out, "| 2 | 20 | 99 |") {
		t.Fatalf("missing data row:\n%s", out)
	}
}
