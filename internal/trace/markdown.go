package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// FprintMarkdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) FprintMarkdown(w io.Writer) error {
	esc := func(s string) string {
		return strings.ReplaceAll(s, "|", "\\|")
	}
	row := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
		return err
	}
	if err := row(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = "---"
	}
	if err := row(rule); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// FprintMarkdown renders the figure as a Markdown section with its data
// table (x column plus one column per series; cells before a series'
// first point are em-dashes).
func (f *Figure) FprintMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", f.Title); err != nil {
		return err
	}
	xs := map[float64]struct{}{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = struct{}{}
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	t := NewTable(append([]string{f.XLabel}, names(f.Series)...)...)
	for _, x := range sorted {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, formatFloat(x))
		for _, s := range f.Series {
			if s.Len() == 0 || x < s.X[0] {
				row = append(row, "—")
				continue
			}
			row = append(row, formatFloat(s.YAt(x)))
		}
		t.AddRow(row...)
	}
	if err := t.FprintMarkdown(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
