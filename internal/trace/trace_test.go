package trace

import (
	"strings"
	"testing"
)

func TestSeriesAddAndLast(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	x, y := s.Last()
	if x != 2 || y != 20 {
		t.Fatalf("Last = (%v, %v)", x, y)
	}
}

func TestSeriesLastPanicsWhenEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Last on empty did not panic")
		}
	}()
	(&Series{}).Last()
}

func TestSeriesYAt(t *testing.T) {
	s := Series{X: []float64{1, 3, 5}, Y: []float64{10, 30, 50}}
	tests := []struct{ q, want float64 }{
		{0, 10}, {1, 10}, {2, 10}, {3, 30}, {4, 30}, {5, 50}, {99, 50},
	}
	for _, tt := range tests {
		if got := s.YAt(tt.q); got != tt.want {
			t.Errorf("YAt(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if (&Series{}).YAt(1) != 0 {
		t.Error("empty YAt should be 0")
	}
}

func TestFigureSeries(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	a := f.AddSeries("a")
	a.Add(1, 2)
	if f.Get("a") != a {
		t.Fatal("Get returned wrong series")
	}
	if f.Get("missing") != nil {
		t.Fatal("Get on missing should be nil")
	}
}

func TestFigureFprint(t *testing.T) {
	f := NewFigure("convergence", "time", "acc")
	a := f.AddSeries("cannikin")
	a.Add(1, 0.5)
	a.Add(3, 0.9)
	b := f.AddSeries("ddp")
	b.Add(2, 0.4)
	var sb strings.Builder
	if err := f.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# convergence", "time", "cannikin", "ddp", "0.9000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Union of x values: 1, 2, 3 -> 3 data lines + header + rule + title.
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != 5 {
		t.Fatalf("unexpected line count %d:\n%s", lines, out)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("a", "1")
	tab.AddRow("longer-name", "22")
	var sb strings.Builder
	if err := tab.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	// The value column starts at the same offset on data rows.
	if strings.Index(lines[2], "1") == -1 || strings.Index(lines[3], "22") == -1 {
		t.Fatal("values missing")
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("missing rule line: %q", lines[1])
	}
}

func TestTableAddRowValidation(t *testing.T) {
	tab := NewTable("a")
	defer func() {
		if recover() == nil {
			t.Fatal("oversized row accepted")
		}
	}()
	tab.AddRow("1", "2")
}

func TestTableAddRowValues(t *testing.T) {
	tab := NewTable("s", "f", "i")
	tab.AddRowValues("x", 1.5, 7)
	if tab.Rows[0][0] != "x" || tab.Rows[0][1] != "1.5000" || tab.Rows[0][2] != "7" {
		t.Fatalf("row = %v", tab.Rows[0])
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("x,y", `say "hi"`)
	var sb strings.Builder
	if err := tab.FprintCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := map[float64]string{
		3:       "3",
		3.14159: "3.1416",
		1e-9:    "1e-09",
		2e9:     "2e+09",
	}
	for in, want := range tests {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
