package chaos

import (
	"fmt"
	"sort"

	"cannikin/internal/cluster"
)

// minShare and minLinkGBps floor the perturbed state so a chaotic run can
// always make progress: a node never drops below 2% compute or 50 MB/s.
const (
	minShare    = 0.02
	minLinkGBps = 0.05
)

// Applied records one perturbation (or automatic recovery) that took
// effect at an epoch boundary.
type Applied struct {
	Epoch int
	Node  int
	Kind  Kind
	// Value is the resulting setting: the node's new compute share
	// (KindComputeShare, KindStraggler) or its new link bandwidth in GB/s
	// (KindBandwidth).
	Value float64
	// Revert marks the automatic restoration at the end of a transient
	// event.
	Revert bool
}

// String renders the record for traces and logs.
func (a Applied) String() string {
	verb := "set"
	if a.Revert {
		verb = "restored"
	}
	unit := ""
	if a.Kind == KindBandwidth {
		unit = " GB/s"
	}
	return fmt.Sprintf("node %d %s %s %.3g%s", a.Node, a.Kind, verb, a.Value, unit)
}

// revert restores a pre-event setting at a scheduled epoch.
type revert struct {
	epoch int
	node  int
	kind  Kind
	value float64
	seq   int
}

// Injector binds a schedule to one cluster and replays it at epoch
// boundaries.
type Injector struct {
	c       *cluster.Cluster
	events  []Event
	next    int
	reverts []revert
	seq     int
}

// NewInjector validates the schedule against the cluster and prepares the
// replay.
func NewInjector(s Schedule, c *cluster.Cluster) (*Injector, error) {
	if c == nil {
		return nil, fmt.Errorf("chaos: nil cluster")
	}
	if err := s.Validate(c.N()); err != nil {
		return nil, err
	}
	return &Injector{c: c, events: s.sorted()}, nil
}

// BeginEpoch applies every event due at (or before) the given epoch and
// reverts expired transient events, returning what happened in
// deterministic order. Call it once per epoch, before planning, with
// non-decreasing epochs.
func (in *Injector) BeginEpoch(epoch int) ([]Applied, error) {
	var out []Applied

	// Expired transients first, so a new event at the same epoch wins.
	var due, keep []revert
	for _, r := range in.reverts {
		if r.epoch <= epoch {
			due = append(due, r)
		} else {
			keep = append(keep, r)
		}
	}
	in.reverts = keep
	sort.Slice(due, func(i, j int) bool { return due[i].seq < due[j].seq })
	for _, r := range due {
		val, err := in.restore(r)
		if err != nil {
			return nil, err
		}
		out = append(out, Applied{Epoch: epoch, Node: r.node, Kind: r.kind, Value: val, Revert: true})
	}

	for in.next < len(in.events) && in.events[in.next].Epoch <= epoch {
		e := in.events[in.next]
		in.next++
		rec, err := in.apply(epoch, e)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

func (in *Injector) apply(epoch int, e Event) (Applied, error) {
	switch e.Kind {
	case KindComputeShare, KindStraggler:
		prev, err := in.c.ComputeShare(e.Node)
		if err != nil {
			return Applied{}, err
		}
		share := e.Value
		duration := e.Duration
		if e.Kind == KindStraggler {
			share = clampMin(prev*e.Value, minShare)
			if duration <= 0 {
				duration = 1
			}
		} else {
			share = clampMin(share, minShare)
		}
		if err := in.c.SetComputeShare(e.Node, share); err != nil {
			return Applied{}, fmt.Errorf("chaos: epoch %d: %w", epoch, err)
		}
		in.scheduleRevert(epoch, duration, e.Node, e.Kind, prev)
		return Applied{Epoch: epoch, Node: e.Node, Kind: e.Kind, Value: share}, nil

	case KindBandwidth:
		prev, err := in.c.LinkBandwidth(e.Node)
		if err != nil {
			return Applied{}, err
		}
		gbps := clampMin(prev*e.Value, minLinkGBps)
		if err := in.c.SetLinkBandwidth(e.Node, gbps); err != nil {
			return Applied{}, fmt.Errorf("chaos: epoch %d: %w", epoch, err)
		}
		in.scheduleRevert(epoch, e.Duration, e.Node, e.Kind, prev)
		return Applied{Epoch: epoch, Node: e.Node, Kind: e.Kind, Value: gbps}, nil
	}
	return Applied{}, fmt.Errorf("chaos: unknown event kind %q", e.Kind)
}

func (in *Injector) scheduleRevert(epoch, duration, node int, kind Kind, value float64) {
	if duration <= 0 {
		return
	}
	in.seq++
	in.reverts = append(in.reverts, revert{
		epoch: epoch + duration,
		node:  node,
		kind:  kind,
		value: value,
		seq:   in.seq,
	})
}

func (in *Injector) restore(r revert) (float64, error) {
	switch r.kind {
	case KindComputeShare, KindStraggler:
		if err := in.c.SetComputeShare(r.node, r.value); err != nil {
			return 0, fmt.Errorf("chaos: revert: %w", err)
		}
	case KindBandwidth:
		if err := in.c.SetLinkBandwidth(r.node, r.value); err != nil {
			return 0, fmt.Errorf("chaos: revert: %w", err)
		}
	default:
		return 0, fmt.Errorf("chaos: unknown revert kind %q", r.kind)
	}
	return r.value, nil
}

func clampMin(v, floor float64) float64 {
	if v < floor {
		return floor
	}
	return v
}
