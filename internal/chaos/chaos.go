// Package chaos generates and injects dynamic-heterogeneity events into a
// simulated cluster mid-training: compute-share changes (GPU sharing
// churn), per-link bandwidth shifts, and transient stragglers that recover
// after a few epochs. These are the "sudden changes of resources" the
// paper's introduction motivates — clusters with dynamic resource
// allocation where a tenant arriving or leaving reshapes the performance
// landscape Cannikin has learned.
//
// A Schedule is a deterministic, epoch-ordered event plan: either written
// explicitly or generated from a seeded stream, so every chaotic run is
// exactly reproducible. An Injector binds a schedule to one cluster and
// applies the due events at each epoch boundary, automatically restoring
// the pre-event state when a transient event expires.
package chaos

import (
	"fmt"
	"sort"

	"cannikin/internal/rng"
)

// Kind names a perturbation type.
type Kind string

// Perturbation kinds.
const (
	// KindComputeShare sets a node's compute share to Value (absolute
	// fraction in (0, 1]) — a co-located tenant arriving or leaving.
	KindComputeShare Kind = "compute-share"
	// KindBandwidth multiplies a node's ring link bandwidth by Value (> 0)
	// — congestion or a routing change on that link.
	KindBandwidth Kind = "bandwidth"
	// KindStraggler multiplies a node's current compute share by Value
	// (in (0, 1)) for Duration epochs, then restores it — a transient
	// slowdown such as thermal throttling or a noisy neighbour burst.
	KindStraggler Kind = "straggler"
)

// Kinds lists the chaos vocabulary. It shares one namespace with
// internal/faultinject's kinds — the two sets must stay disjoint so the
// public API can surface both through one event-record type.
func Kinds() []Kind {
	return []Kind{KindComputeShare, KindBandwidth, KindStraggler}
}

// Event is one scheduled perturbation.
type Event struct {
	// Epoch is when the event takes effect (before that epoch is planned).
	Epoch int
	// Node is the affected node index.
	Node int
	Kind Kind
	// Value is interpreted per Kind: the new absolute compute share
	// (KindComputeShare), the link bandwidth multiplier (KindBandwidth),
	// or the transient compute-share multiplier (KindStraggler).
	Value float64
	// Duration, when positive, reverts the event after that many epochs.
	// Stragglers default to a single epoch; other kinds default to
	// permanent.
	Duration int
}

// Validate checks the event against a cluster of the given size.
func (e Event) Validate(nodes int) error {
	if e.Epoch < 0 {
		return fmt.Errorf("chaos: event epoch %d", e.Epoch)
	}
	if e.Node < 0 || e.Node >= nodes {
		return fmt.Errorf("chaos: event node %d of %d", e.Node, nodes)
	}
	if e.Duration < 0 {
		return fmt.Errorf("chaos: event duration %d", e.Duration)
	}
	switch e.Kind {
	case KindComputeShare:
		if e.Value <= 0 || e.Value > 1 {
			return fmt.Errorf("chaos: compute share %v outside (0, 1]", e.Value)
		}
	case KindBandwidth:
		if e.Value <= 0 {
			return fmt.Errorf("chaos: bandwidth factor %v", e.Value)
		}
	case KindStraggler:
		if e.Value <= 0 || e.Value >= 1 {
			return fmt.Errorf("chaos: straggler factor %v outside (0, 1)", e.Value)
		}
	default:
		return fmt.Errorf("chaos: unknown event kind %q", e.Kind)
	}
	return nil
}

// Schedule is an epoch-ordered perturbation plan.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule carries no events.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// Validate checks every event against a cluster of the given size.
func (s Schedule) Validate(nodes int) error {
	for i, e := range s.Events {
		if err := e.Validate(nodes); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// sorted returns the events ordered by epoch (stable, so same-epoch events
// keep their declaration order).
func (s Schedule) sorted() []Event {
	out := append([]Event(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// Profile tunes the seeded schedule generator.
type Profile struct {
	// Intensity is the per-epoch probability of one generated event,
	// in (0, 1].
	Intensity float64
	// FirstEpoch is the first epoch eligible for events (default 4, so the
	// run establishes a steady state before the churn starts).
	FirstEpoch int
	// Horizon is the last epoch eligible for events (default 32).
	Horizon int
}

func (p Profile) defaults() Profile {
	if p.FirstEpoch <= 0 {
		p.FirstEpoch = 4
	}
	if p.Horizon <= 0 {
		p.Horizon = 32
	}
	return p
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.Intensity <= 0 || p.Intensity > 1 {
		return fmt.Errorf("chaos: intensity %v outside (0, 1]", p.Intensity)
	}
	p = p.defaults()
	if p.Horizon < p.FirstEpoch {
		return fmt.Errorf("chaos: horizon %d before first epoch %d", p.Horizon, p.FirstEpoch)
	}
	return nil
}

// Generate builds a deterministic schedule for a cluster of the given size
// from the profile and a seeded stream: compute-share churn, bandwidth
// shifts, and transient stragglers, mixed roughly 2:1:1. The same source
// state always yields the same schedule.
func Generate(p Profile, nodes int, src *rng.Source) (Schedule, error) {
	if err := p.Validate(); err != nil {
		return Schedule{}, err
	}
	if nodes < 1 {
		return Schedule{}, fmt.Errorf("chaos: %d nodes", nodes)
	}
	p = p.defaults()
	gs := src.Split("chaos/generate")
	var s Schedule
	for epoch := p.FirstEpoch; epoch <= p.Horizon; epoch++ {
		if gs.Float64() >= p.Intensity {
			continue
		}
		e := Event{Epoch: epoch, Node: gs.Intn(nodes)}
		switch roll := gs.Float64(); {
		case roll < 0.5:
			e.Kind = KindComputeShare
			// Mostly losses (tenant arrives), occasionally back to full.
			if gs.Float64() < 0.25 {
				e.Value = 1.0
			} else {
				e.Value = 0.25 + 0.65*gs.Float64()
			}
		case roll < 0.75:
			e.Kind = KindBandwidth
			// Between a heavy squeeze and a modest improvement.
			e.Value = 0.3 + 1.0*gs.Float64()
		default:
			e.Kind = KindStraggler
			e.Value = 0.3 + 0.3*gs.Float64()
			e.Duration = 1 + gs.Intn(3)
		}
		s.Events = append(s.Events, e)
	}
	return s, nil
}
