package chaos

import (
	"math"
	"reflect"
	"testing"

	"cannikin/internal/cluster"
	"cannikin/internal/rng"
)

func newTestCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Preset("a", rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name string
		e    Event
		ok   bool
	}{
		{"share ok", Event{Epoch: 1, Node: 0, Kind: KindComputeShare, Value: 0.5}, true},
		{"share too big", Event{Kind: KindComputeShare, Value: 1.5}, false},
		{"share zero", Event{Kind: KindComputeShare, Value: 0}, false},
		{"bandwidth ok", Event{Kind: KindBandwidth, Value: 0.5}, true},
		{"bandwidth zero", Event{Kind: KindBandwidth, Value: 0}, false},
		{"straggler ok", Event{Kind: KindStraggler, Value: 0.5, Duration: 2}, true},
		{"straggler full", Event{Kind: KindStraggler, Value: 1}, false},
		{"bad node", Event{Node: 9, Kind: KindBandwidth, Value: 0.5}, false},
		{"bad epoch", Event{Epoch: -1, Kind: KindBandwidth, Value: 0.5}, false},
		{"bad duration", Event{Kind: KindBandwidth, Value: 0.5, Duration: -1}, false},
		{"bad kind", Event{Kind: "nonsense", Value: 0.5}, false},
	}
	for _, tc := range cases {
		err := tc.e.Validate(3)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid event accepted", tc.name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Intensity: 0.6, Horizon: 40}
	a, err := Generate(p, 4, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 4, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if a.Empty() {
		t.Fatal("intensity 0.6 over 36 epochs generated nothing")
	}
	if err := a.Validate(4); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].Epoch < a.Events[i-1].Epoch {
			t.Fatal("generated schedule not epoch-ordered")
		}
	}
	c, err := Generate(p, 4, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Profile{Intensity: 0}, 3, rng.New(1)); err == nil {
		t.Fatal("zero intensity accepted")
	}
	if _, err := Generate(Profile{Intensity: 2}, 3, rng.New(1)); err == nil {
		t.Fatal("intensity > 1 accepted")
	}
	if _, err := Generate(Profile{Intensity: 0.5, FirstEpoch: 10, Horizon: 5}, 3, rng.New(1)); err == nil {
		t.Fatal("horizon before first epoch accepted")
	}
	if _, err := Generate(Profile{Intensity: 0.5}, 0, rng.New(1)); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestInjectorComputeShare(t *testing.T) {
	c := newTestCluster(t)
	inj, err := NewInjector(Schedule{Events: []Event{
		{Epoch: 2, Node: 0, Kind: KindComputeShare, Value: 0.25},
	}}, c)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		applied, err := inj.BeginEpoch(epoch)
		if err != nil {
			t.Fatal(err)
		}
		if len(applied) != 0 {
			t.Fatalf("epoch %d: premature events %v", epoch, applied)
		}
	}
	applied, err := inj.BeginEpoch(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].Kind != KindComputeShare || applied[0].Value != 0.25 {
		t.Fatalf("applied %v", applied)
	}
	share, err := c.ComputeShare(0)
	if err != nil {
		t.Fatal(err)
	}
	if share != 0.25 {
		t.Fatalf("share %v after event", share)
	}
}

func TestInjectorStragglerReverts(t *testing.T) {
	c := newTestCluster(t)
	before, _ := c.ComputeShare(1)
	inj, err := NewInjector(Schedule{Events: []Event{
		{Epoch: 1, Node: 1, Kind: KindStraggler, Value: 0.5, Duration: 2},
	}}, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inj.BeginEpoch(0); err != nil {
		t.Fatal(err)
	}
	applied, err := inj.BeginEpoch(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].Revert {
		t.Fatalf("applied %v", applied)
	}
	mid, _ := c.ComputeShare(1)
	if math.Abs(mid-before*0.5) > 1e-12 {
		t.Fatalf("straggler share %v, want %v", mid, before*0.5)
	}
	if applied, err = inj.BeginEpoch(2); err != nil || len(applied) != 0 {
		t.Fatalf("epoch 2: %v %v", applied, err)
	}
	applied, err = inj.BeginEpoch(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || !applied[0].Revert {
		t.Fatalf("no revert at epoch 3: %v", applied)
	}
	after, _ := c.ComputeShare(1)
	if after != before {
		t.Fatalf("share %v after recovery, want %v", after, before)
	}
}

func TestInjectorBandwidth(t *testing.T) {
	c := newTestCluster(t)
	before, _ := c.LinkBandwidth(2)
	inj, err := NewInjector(Schedule{Events: []Event{
		{Epoch: 0, Node: 2, Kind: KindBandwidth, Value: 0.5, Duration: 1},
	}}, c)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := inj.BeginEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || math.Abs(applied[0].Value-before*0.5) > 1e-12 {
		t.Fatalf("applied %v", applied)
	}
	now, _ := c.LinkBandwidth(2)
	if math.Abs(now-before*0.5) > 1e-12 {
		t.Fatalf("bandwidth %v, want %v", now, before*0.5)
	}
	if _, err := inj.BeginEpoch(1); err != nil {
		t.Fatal(err)
	}
	restored, _ := c.LinkBandwidth(2)
	if restored != before {
		t.Fatalf("bandwidth %v after recovery, want %v", restored, before)
	}
}

func TestInjectorRejectsBadSchedule(t *testing.T) {
	c := newTestCluster(t)
	if _, err := NewInjector(Schedule{Events: []Event{{Node: 99, Kind: KindBandwidth, Value: 0.5}}}, c); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := NewInjector(Schedule{}, nil); err == nil {
		t.Fatal("nil cluster accepted")
	}
}

func TestAppliedString(t *testing.T) {
	a := Applied{Node: 1, Kind: KindBandwidth, Value: 5, Revert: true}
	if s := a.String(); s != "node 1 bandwidth restored 5 GB/s" {
		t.Fatalf("String() = %q", s)
	}
}
