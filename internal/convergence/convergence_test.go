package convergence

import (
	"math"
	"testing"

	"cannikin/internal/gns"
	"cannikin/internal/rng"
	"cannikin/internal/stats"
)

func testModel() Model {
	return Model{
		BaseBatch:     64,
		TargetSamples: 1e6,
		Phi0:          300,
		Phi1:          5000,
		MetricName:    "top1",
		MetricStart:   0.10,
		MetricTarget:  0.94,
		Direction:     HigherIsBetter,
		GradSq0:       10,
	}
}

func TestValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := map[string]func(*Model){
		"base batch":   func(m *Model) { m.BaseBatch = 0 },
		"target":       func(m *Model) { m.TargetSamples = 0 },
		"phi order":    func(m *Model) { m.Phi1 = m.Phi0 - 1 },
		"direction":    func(m *Model) { m.Direction = 0 },
		"grad norm":    func(m *Model) { m.GradSq0 = 0 },
		"phi negative": func(m *Model) { m.Phi0 = -1; m.Phi1 = 1 },
	}
	for name, mutate := range cases {
		m := testModel()
		mutate(&m)
		if m.Validate() == nil {
			t.Errorf("%s: invalid model accepted", name)
		}
	}
}

func TestProgressAndDone(t *testing.T) {
	s, err := NewState(testModel(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Progress() != 0 || s.Done() {
		t.Fatal("fresh state not at zero")
	}
	for !s.Done() {
		s.Advance(1024)
	}
	if s.Progress() != 1 {
		t.Fatalf("Progress = %v at completion", s.Progress())
	}
}

func TestAdvanceAtBaseBatchFullyEfficient(t *testing.T) {
	s, _ := NewState(testModel(), rng.New(1))
	eff := s.Advance(64)
	if eff != 1 {
		t.Fatalf("eff(B0) = %v, want 1", eff)
	}
	if s.EffectiveSamples() != 64 {
		t.Fatalf("effective = %v, want 64", s.EffectiveSamples())
	}
}

func TestLargerBatchLessEfficient(t *testing.T) {
	s, _ := NewState(testModel(), rng.New(1))
	eff := s.Advance(2048)
	if eff >= 1 || eff <= 0 {
		t.Fatalf("eff(2048) = %v", eff)
	}
}

func TestNoiseGrowsDuringTraining(t *testing.T) {
	s, _ := NewState(testModel(), rng.New(1))
	start := s.Noise()
	if start != 300 {
		t.Fatalf("initial noise %v", start)
	}
	for !s.Done() {
		s.Advance(4096)
	}
	if s.Noise() != 5000 {
		t.Fatalf("final noise %v, want 5000", s.Noise())
	}
}

func TestGradSqDecays(t *testing.T) {
	s, _ := NewState(testModel(), rng.New(1))
	g0 := s.GradSq()
	for !s.Done() {
		s.Advance(4096)
	}
	if s.GradSq() >= g0 {
		t.Fatal("gradient norm did not decay")
	}
	if s.GradSq() <= 0 {
		t.Fatal("gradient norm went non-positive")
	}
}

func TestMetricCurve(t *testing.T) {
	s, _ := NewState(testModel(), rng.New(1))
	if s.Metric() != 0.10 {
		t.Fatalf("initial metric %v", s.Metric())
	}
	prev := s.Metric()
	for !s.Done() {
		s.Advance(8192)
		if m := s.Metric(); m < prev-1e-12 {
			t.Fatalf("accuracy decreased: %v -> %v", prev, m)
		} else {
			prev = m
		}
	}
	if math.Abs(s.Metric()-0.94) > 1e-9 {
		t.Fatalf("final metric %v, want 0.94", s.Metric())
	}
}

func TestMetricLowerIsBetter(t *testing.T) {
	m := testModel()
	m.Direction = LowerIsBetter
	m.MetricStart = 1.0
	m.MetricTarget = 0.40
	s, err := NewState(m, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Metric() != 1.0 {
		t.Fatalf("initial WER %v", s.Metric())
	}
	for !s.Done() {
		s.Advance(4096)
	}
	if math.Abs(s.Metric()-0.40) > 1e-9 {
		t.Fatalf("final WER %v, want 0.40", s.Metric())
	}
}

func TestAdaptiveBatchConvergesFasterInWallTimeProxy(t *testing.T) {
	// With a fixed per-sample cost, adaptive batches should use fewer
	// steps than the base batch while spending modestly more raw samples.
	fixedSteps, fixedSamples := runToDone(t, func(s *State) int { return 64 })
	adaptSteps, adaptSamples := runToDone(t, func(s *State) int {
		// Use the true noise as an oracle: batch tracks phi.
		b := int(s.Noise() / 4)
		if b < 64 {
			b = 64
		}
		return b
	})
	if adaptSteps >= fixedSteps/3 {
		t.Fatalf("adaptive steps %d not clearly below fixed %d", adaptSteps, fixedSteps)
	}
	if adaptSamples > 3*fixedSamples {
		t.Fatalf("adaptive raw samples %v blew up vs fixed %v", adaptSamples, fixedSamples)
	}
}

func runToDone(t *testing.T, pick func(*State) int) (steps int, raw float64) {
	t.Helper()
	s, err := NewState(testModel(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		b := pick(s)
		s.Advance(b)
		raw += float64(b)
		steps++
		if steps > 1e7 {
			t.Fatal("did not converge")
		}
	}
	return steps, raw
}

func TestGradientNormsConsistentWithTruth(t *testing.T) {
	s, _ := NewState(testModel(), rng.New(7))
	batches := []int{8, 16, 32, 64}
	// The ratio estimator tr(Σ)/|G|² is biased when the smoothed |G|²
	// still carries variance (noted by McCandlish et al.), so use a wide
	// EMA window and a tolerance reflecting the residual bias.
	tracker := gns.NewTracker(0.005)
	for i := 0; i < 6000; i++ {
		sample := s.GradientNorms(batches)
		est, err := gns.EstimateOptimal(sample)
		if err != nil {
			t.Fatal(err)
		}
		tracker.Observe(est)
	}
	if stats.RelErr(tracker.Noise(), s.Noise()) > 0.15 {
		t.Fatalf("estimated noise %v vs truth %v", tracker.Noise(), s.Noise())
	}
	if stats.RelErr(tracker.GradSq(), s.GradSq()) > 0.1 {
		t.Fatalf("estimated |G|² %v vs truth %v", tracker.GradSq(), s.GradSq())
	}
}

func TestGradientNormsPositive(t *testing.T) {
	s, _ := NewState(testModel(), rng.New(11))
	for i := 0; i < 500; i++ {
		sample := s.GradientNorms([]int{2, 4})
		for _, v := range sample.LocalSqNorms {
			if v <= 0 {
				t.Fatal("non-positive local norm")
			}
		}
		if sample.GlobalSqNorm <= 0 {
			t.Fatal("non-positive global norm")
		}
	}
}

func TestNewStateRejectsInvalid(t *testing.T) {
	bad := testModel()
	bad.BaseBatch = 0
	if _, err := NewState(bad, rng.New(1)); err == nil {
		t.Fatal("invalid model accepted")
	}
}
