// Package convergence models the statistical training dynamics of the
// paper's workloads: how many effective samples reach the target metric,
// how the gradient noise scale grows as training proceeds, and what
// gradient-norm observations each node would measure.
//
// Real DNN training at ImageNet/BERT scale is impossible in this offline
// reproduction, so progress follows the McCandlish large-batch model that
// underpins the paper's own goodput objective: one step at total batch B
// advances training by B·eff(B) effective samples, where
// eff(B) = (φ + B0)/(φ + B) and φ is the current gradient noise scale.
// The GNS itself grows as training converges (as observed empirically by
// Pollux/McCandlish), which is exactly what makes adaptive batch sizing
// profitable: small early batches, large late batches (paper Figs. 5/6).
package convergence

import (
	"fmt"
	"math"

	"cannikin/internal/gns"
	"cannikin/internal/goodput"
	"cannikin/internal/rng"
)

// Direction says whether a workload's target metric improves upward
// (accuracy) or downward (word error rate).
type Direction int

// Metric directions.
const (
	HigherIsBetter Direction = iota + 1
	LowerIsBetter
)

// Model is the statistical convergence profile of one workload.
type Model struct {
	// BaseBatch is B0, the batch size at which eff = 1.
	BaseBatch int
	// TargetSamples is the effective-sample budget to reach the target.
	TargetSamples float64
	// Phi0 and Phi1 are the gradient noise scale at the start and end of
	// training (in samples). Phi grows during training.
	Phi0, Phi1 float64
	// MetricName, MetricStart, MetricTarget describe the reported metric
	// (e.g. top-1 accuracy from 10% to 94%).
	MetricName   string
	MetricStart  float64
	MetricTarget float64
	Direction    Direction
	// GradSq0 is the squared gradient norm at the start; it decays as the
	// model converges.
	GradSq0 float64
}

// Validate checks the model is usable.
func (m Model) Validate() error {
	switch {
	case m.BaseBatch <= 0:
		return fmt.Errorf("convergence: base batch %d", m.BaseBatch)
	case m.TargetSamples <= 0:
		return fmt.Errorf("convergence: target samples %v", m.TargetSamples)
	case m.Phi0 < 0 || m.Phi1 < m.Phi0:
		return fmt.Errorf("convergence: phi range [%v, %v]", m.Phi0, m.Phi1)
	case m.Direction != HigherIsBetter && m.Direction != LowerIsBetter:
		return fmt.Errorf("convergence: direction unset")
	case m.GradSq0 <= 0:
		return fmt.Errorf("convergence: GradSq0 %v", m.GradSq0)
	}
	return nil
}

// State tracks one training run's statistical progress.
type State struct {
	model Model
	// effective is the count of effective samples processed.
	effective float64
	src       *rng.Source
}

// NewState returns a fresh training state for the model.
func NewState(m Model, src *rng.Source) (*State, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &State{model: m, src: src.Split("convergence")}, nil
}

// Progress returns the fraction of the effective-sample budget consumed,
// capped at 1.
func (s *State) Progress() float64 {
	p := s.effective / s.model.TargetSamples
	if p > 1 {
		return 1
	}
	return p
}

// Done reports whether the target metric has been reached.
func (s *State) Done() bool { return s.effective >= s.model.TargetSamples }

// Noise returns the current true gradient noise scale φ, which grows
// linearly in progress from Phi0 to Phi1.
func (s *State) Noise() float64 {
	return s.model.Phi0 + (s.model.Phi1-s.model.Phi0)*s.Progress()
}

// GradSq returns the current true squared gradient norm |G|², decaying
// smoothly as the model converges.
func (s *State) GradSq() float64 {
	return s.model.GradSq0 * (1 - 0.95*s.Progress())
}

// TraceVar returns the current true gradient variance tr(Σ) = φ·|G|².
func (s *State) TraceVar() float64 { return s.Noise() * s.GradSq() }

// Advance processes one synchronized step at total batch size batch,
// crediting batch·eff(batch) effective samples, and returns the efficiency
// used.
func (s *State) Advance(batch int) float64 {
	eff := goodput.Efficiency(s.Noise(), batch, s.model.BaseBatch)
	s.effective += float64(batch) * eff
	return eff
}

// Metric returns the current value of the workload's reported metric. The
// curve saturates toward the target: fast early gains, slow tail — the
// canonical accuracy-vs-epochs shape.
func (s *State) Metric() float64 {
	p := s.Progress()
	const k = 4.0
	frac := (1 - math.Exp(-k*p)) / (1 - math.Exp(-k))
	switch s.model.Direction {
	case LowerIsBetter:
		return s.model.MetricStart - (s.model.MetricStart-s.model.MetricTarget)*frac
	default:
		return s.model.MetricStart + (s.model.MetricTarget-s.model.MetricStart)*frac
	}
}

// gnsProxyDim is the dimensionality of the synthesized gradient proxies.
// Real gradients have millions of coordinates but a small *effective*
// dimension; a few dozen reproduces the realistic noisiness of single-step
// GNS estimates.
const gnsProxyDim = 48

// GradientNorms synthesizes the per-node and global gradient-norm
// observations one synchronized step would produce at the given local
// batch sizes. It draws actual low-dimensional gradient proxies
// (g_i = G + noise/√b_i, g = Σ r_i g_i) so that E[|g_i|²] = |G|² + tr(Σ)/b_i
// holds with the exact cross-correlation structure the Eq. 10 estimators
// rely on.
func (s *State) GradientNorms(batches []int) gns.Sample {
	total := 0
	for _, b := range batches {
		total += b
	}
	gsq, trace := s.GradSq(), s.TraceVar()
	d := gnsProxyDim
	mu := math.Sqrt(gsq / float64(d))
	sigma := math.Sqrt(trace / float64(d))

	sample := gns.Sample{
		Batches:      append([]int(nil), batches...),
		LocalSqNorms: make([]float64, len(batches)),
	}
	global := make([]float64, d)
	for i, b := range batches {
		r := float64(b) / float64(total)
		perCoordSD := sigma / math.Sqrt(float64(b))
		sq := 0.0
		for j := 0; j < d; j++ {
			v := mu + s.src.Norm(0, perCoordSD)
			sq += v * v
			global[j] += r * v
		}
		sample.LocalSqNorms[i] = sq
	}
	for _, v := range global {
		sample.GlobalSqNorm += v * v
	}
	return sample
}

// Model returns the underlying convergence model.
func (s *State) Model() Model { return s.model }

// EffectiveSamples returns the raw effective-sample count processed.
func (s *State) EffectiveSamples() float64 { return s.effective }
