package simtime

import (
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now = %v, want 0", e.Now())
	}
}

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*Second, func() { order = append(order, 3) })
	e.Schedule(1*Second, func() { order = append(order, 1) })
	e.Schedule(2*Second, func() { order = append(order, 2) })
	end := e.Run()
	if end != Time(3*Second) {
		t.Fatalf("end = %v, want 3s", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events ran out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(Second, func() {
		hits = append(hits, e.Now())
		e.Schedule(2*Second, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run()
	if len(hits) != 2 || hits[0] != Time(Second) || hits[1] != Time(3*Second) {
		t.Fatalf("hits = %v", hits)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-5*Second, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay: ran=%v now=%v", ran, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []int
	e.Schedule(1*Second, func() { ran = append(ran, 1) })
	e.Schedule(5*Second, func() { ran = append(ran, 5) })
	n := e.RunUntil(Time(3 * Second))
	if n != 1 || len(ran) != 1 || ran[0] != 1 {
		t.Fatalf("RunUntil ran %d events: %v", n, ran)
	}
	if e.Now() != Time(3*Second) {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(ran) != 2 || e.Now() != Time(5*Second) {
		t.Fatalf("after Run: ran=%v now=%v", ran, e.Now())
	}
}

func TestAdvance(t *testing.T) {
	e := NewEngine()
	e.Advance(2 * Second)
	if e.Now() != Time(2*Second) {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestAdvancePanicsWhenSkippingEvents(t *testing.T) {
	e := NewEngine()
	e.Schedule(Second, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance skipped a pending event without panicking")
		}
	}()
	e.Advance(2 * Second)
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Advance(5 * Second)
	var at Time
	e.ScheduleAt(Time(Second), func() { at = e.Now() })
	e.Run()
	if at != Time(5*Second) {
		t.Fatalf("past event ran at %v, want clamped to 5s", at)
	}
}

func TestScheduleAtNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback accepted")
		}
	}()
	e.ScheduleAt(0, nil)
}

func TestDurationConversions(t *testing.T) {
	if FromSeconds(1.5) != Duration(1500*Millisecond) {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds = %v", got)
	}
	tm := Time(Second).Add(500 * Millisecond)
	if tm.Sub(Time(Second)) != 500*Millisecond {
		t.Fatal("Time arithmetic wrong")
	}
	if (2 * Second).String() != "2s" {
		t.Fatalf("String = %q", (2 * Second).String())
	}
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var times []Time
		for i := 0; i < 500; i++ {
			d := Duration((i * 7919) % 100 * int(Millisecond))
			e.Schedule(d, func() { times = append(times, e.Now()) })
		}
		e.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v != %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("time went backwards")
		}
	}
}
