// Package simtime provides the virtual clock and discrete-event engine that
// drives the cluster simulator. All batch-step and epoch timings in the
// reproduction are simulated durations, so experiments that take hours on a
// 16-GPU testbed replay in milliseconds, deterministically.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Duration is a span of simulated time. It reuses time.Duration semantics
// (nanosecond resolution) but is a distinct type so simulated and wall-clock
// durations cannot be mixed accidentally.
type Duration time.Duration

// Common duration units.
const (
	Nanosecond  = Duration(time.Nanosecond)
	Microsecond = Duration(time.Microsecond)
	Millisecond = Duration(time.Millisecond)
	Second      = Duration(time.Second)
	Minute      = Duration(time.Minute)
	Hour        = Duration(time.Hour)
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return time.Duration(d).Seconds() }

// String formats the duration like time.Duration.
func (d Duration) String() string { return time.Duration(d).String() }

// FromSeconds converts seconds to a Duration, saturating at the
// representable range.
func FromSeconds(s float64) Duration {
	return Duration(s * float64(time.Second))
}

// Time is an instant on the simulated timeline, measured from the start of
// the simulation.
type Time Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the instant as seconds since simulation start.
func (t Time) Seconds() float64 { return Duration(t).Seconds() }

// String formats the instant as an offset duration.
func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // FIFO tie-break for equal timestamps
	call func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use; the simulation is single-threaded by design so event order
// is fully deterministic.
type Engine struct {
	now   Time
	queue eventQueue
	seq   uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule enqueues fn to run after delay. Negative delays are treated as
// zero (run at the current instant, after already-queued events at that
// instant).
func (e *Engine) Schedule(delay Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now.Add(delay), fn)
}

// ScheduleAt enqueues fn to run at instant at. Instants in the past are
// clamped to now.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if fn == nil {
		panic("simtime: ScheduleAt with nil callback")
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, call: fn})
}

// Step runs the next pending event, advancing the clock to its timestamp.
// It reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.call()
	return true
}

// Run executes events until the queue empties and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, leaves later events
// queued, and advances the clock to min(deadline, final event time). It
// returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) int {
	n := 0
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Advance moves the clock forward by d without running events. It panics if
// an event would be skipped, which would indicate a simulation bug.
func (e *Engine) Advance(d Duration) {
	if d < 0 {
		panic("simtime: Advance with negative duration")
	}
	target := e.now.Add(d)
	if len(e.queue) > 0 && e.queue[0].at < target {
		panic(fmt.Sprintf("simtime: Advance(%v) would skip event at %v", d, e.queue[0].at))
	}
	e.now = target
}
