package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cannikin/internal/rng"
)

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1  => x = 2, y = 1.
	a := FromRows([][]float64{{2, 1}, {1, -1}})
	x, err := Solve(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("Solve = %v, want [2 1]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("Solve = %v, want [7 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("Solve singular err = %v, want ErrSingular", err)
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("Solve accepted a non-square matrix")
	}
	b := Identity(2)
	if _, err := Solve(b, []float64{1}); err == nil {
		t.Fatal("Solve accepted mismatched rhs length")
	}
}

func TestSolveResidualProperty(t *testing.T) {
	// Random well-conditioned systems: A x = b must reproduce b.
	src := rng.New(101)
	f := func(seedDelta uint8) bool {
		s := src.Split(string(rune(seedDelta)))
		n := 1 + s.Intn(12)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, s.Norm(0, 1))
			}
			// Diagonal dominance keeps conditioning sane.
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = s.Norm(0, 5)
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		got := a.MulVec(x)
		return MaxAbsDiff(got, b) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	s := rng.New(7)
	for trial := 0; trial < 25; trial++ {
		n := 1 + s.Intn(10)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, s.Norm(0, 1))
			}
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		prod := a.Mul(inv)
		id := Identity(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(prod.At(i, j)-id.At(i, j)) > 1e-8 {
					t.Fatalf("n=%d: A*A^-1 deviates at (%d,%d): %v", n, i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Inverse(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("Inverse singular err = %v, want ErrSingular", err)
	}
}

func TestSolveSPDWeightsSumToOne(t *testing.T) {
	s := rng.New(33)
	for trial := 0; trial < 20; trial++ {
		n := 2 + s.Intn(8)
		// Build SPD: A = M^T M + n*I.
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, s.Norm(0, 1))
			}
		}
		a := m.Transpose().Mul(m)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		w, err := SolveSPDWeights(a)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Fatalf("weights sum = %v, want 1", sum)
		}
	}
}

func TestSolveSPDWeightsMatchesInverseFormula(t *testing.T) {
	a := FromRows([][]float64{
		{4, 1, 0},
		{1, 3, 1},
		{0, 1, 5},
	})
	w, err := SolveSPDWeights(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	// w_j = sum_i inv[i][j] / sum_ij inv[i][j]
	n := a.Rows()
	want := make([]float64, n)
	total := 0.0
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			want[j] += inv.At(i, j)
		}
		total += want[j]
	}
	for j := range want {
		want[j] /= total
	}
	if MaxAbsDiff(w, want) > 1e-10 {
		t.Fatalf("weights = %v, want %v", w, want)
	}
}

func TestMulVecAndMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", got)
	}
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	p := a.Mul(b)
	want := FromRows([][]float64{{2, 1}, {4, 3}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := a.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("Transpose dims = %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatal("Transpose values wrong")
	}
}

func TestDotNorm2(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 25 {
		t.Fatal("Norm2 wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Identity(2)
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromRows accepted ragged input")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}
