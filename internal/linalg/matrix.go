// Package linalg implements the small dense linear-algebra kernel the
// Cannikin control plane needs: solving the (n+1)-variable OptPerf systems
// of Algorithm 1 and inverting the GNS covariance matrices of Theorem 4.1.
//
// Matrices are row-major dense float64. Sizes are tiny (n = cluster size,
// typically <= 64), so the package favors clarity and numerical robustness
// (partial pivoting) over blocking or SIMD.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a system has no unique solution at working
// precision.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-valued rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows requires a non-empty rectangular input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec returns m * x for a column vector x of length Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d != %d", len(x), m.cols))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %d != %d", m.cols, other.rows))
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.cols; j++ {
				out.data[i*out.cols+j] += a * other.At(k, j)
			}
		}
	}
	return out
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%10.5g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Solve solves A x = b by Gaussian elimination with partial pivoting.
// A must be square; b must have length A.Rows(). A and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("linalg: Solve requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	if len(b) != a.rows {
		return nil, fmt.Errorf("linalg: Solve rhs length %d != %d", len(b), a.rows)
	}
	n := a.rows
	// Work on an augmented copy.
	work := a.Clone()
	rhs := make([]float64, n)
	copy(rhs, b)

	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in col.
		pivot := col
		maxAbs := math.Abs(work.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(work.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			rhs[pivot], rhs[col] = rhs[col], rhs[pivot]
		}
		inv := 1.0 / work.At(col, col)
		for r := col + 1; r < n; r++ {
			f := work.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				work.Set(r, c, work.At(r, c)-f*work.At(col, c))
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= work.At(i, j) * x[j]
		}
		d := work.At(i, i)
		if math.Abs(d) < 1e-300 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// Inverse returns A^-1, or ErrSingular when A is not invertible.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("linalg: Inverse requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	inv := NewMatrix(n, n)
	// Solve A x = e_j column by column. Fine at these sizes.
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// SolveSPDWeights solves A x = 1 and normalizes x to sum to one. This is the
// minimum-variance unbiased weight computation of Theorem 4.1:
// w = 1^T A^-1 / (1^T A^-1 1), returned as a vector.
func SolveSPDWeights(a *Matrix) ([]float64, error) {
	n := a.rows
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	x, err := Solve(a, ones)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, v := range x {
		total += v
	}
	if math.Abs(total) < 1e-300 {
		return nil, ErrSingular
	}
	for i := range x {
		x[i] /= total
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return s
}

// MaxAbsDiff returns max_i |a_i - b_i|; it panics on length mismatch.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: MaxAbsDiff length mismatch %d != %d", len(a), len(b)))
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
