package linalg

import (
	"errors"
	"math"
	"testing"

	"cannikin/internal/rng"
)

func randomSPD(s *rng.Source, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, s.Norm(0, 1))
		}
	}
	a := m.Transpose().Mul(m)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	src := rng.New(31)
	for trial := 0; trial < 25; trial++ {
		n := 1 + src.Intn(10)
		a := randomSPD(src, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		recon := l.Mul(l.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(recon.At(i, j)-a.At(i, j)) > 1e-8 {
					t.Fatalf("n=%d: L L^T deviates at (%d,%d)", n, i, j)
				}
			}
		}
		// L is lower triangular with positive diagonal.
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				t.Fatal("non-positive diagonal")
			}
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatal("upper triangle not zero")
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestMulLowerVecMatchesFullMultiply(t *testing.T) {
	src := rng.New(37)
	a := randomSPD(src, 5)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	z := []float64{1, -2, 0.5, 3, -1}
	got := MulLowerVec(l, z)
	want := l.MulVec(z)
	if MaxAbsDiff(got, want) > 1e-12 {
		t.Fatalf("MulLowerVec %v != MulVec %v", got, want)
	}
}

func TestCholeskySamplerCovariance(t *testing.T) {
	// Drawing x = L z with z ~ N(0, I) gives Cov(x) = A; verify the
	// (0,1) entry empirically.
	src := rng.New(41)
	a := FromRows([][]float64{{2, 0.8}, {0.8, 1}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 200000
	var c01, m0, m1 float64
	for i := 0; i < trials; i++ {
		z := []float64{src.Norm(0, 1), src.Norm(0, 1)}
		x := MulLowerVec(l, z)
		m0 += x[0]
		m1 += x[1]
		c01 += x[0] * x[1]
	}
	m0 /= trials
	m1 /= trials
	cov := c01/trials - m0*m1
	if math.Abs(cov-0.8) > 0.02 {
		t.Fatalf("empirical covariance %v, want 0.8", cov)
	}
}
