package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the matrix has a
// non-positive pivot.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky returns the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite A. Only the lower triangle of A is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("%w: pivot %d is %v", ErrNotPositiveDefinite, i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// MulLowerVec returns L·z for a lower-triangular L — the standard way to
// draw a correlated Gaussian vector from iid standard normals z.
func MulLowerVec(l *Matrix, z []float64) []float64 {
	if l.rows != l.cols || len(z) != l.cols {
		panic(fmt.Sprintf("linalg: MulLowerVec dims %dx%d with %d", l.rows, l.cols, len(z)))
	}
	out := make([]float64, l.rows)
	for i := 0; i < l.rows; i++ {
		s := 0.0
		for j := 0; j <= i; j++ {
			s += l.At(i, j) * z[j]
		}
		out[i] = s
	}
	return out
}
