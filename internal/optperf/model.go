// Package optperf implements the paper's core contribution: OptPerf, the
// optimal batch processing time of a heterogeneous cluster under
// synchronized data-parallel training (Section 3), and the Algorithm 1
// solver that finds it together with the optimal local batch sizes
// (Section 4.2).
//
// Per-node timing follows the learned linear models
//
//	a_i(b) = Q_i·b + S_i        (data loading + forward + update)
//	P_i(b) = K_i·b + M_i        (backpropagation)
//	syncStart_i(b) = a_i + γ·P_i
//
// with cluster-wide constants γ (overlap ratio), T_o and T_u (gradient
// synchronization time of the overlappable buckets and the last bucket).
// A node is compute-bottleneck when (1−γ)P_i ≥ T_o, giving batch time
// t_compute_i + T_u, and communication-bottleneck otherwise, giving
// syncStart_i + T_comm. OptPerf equalizes the effective batch time across
// nodes (Appendix A).
package optperf

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned when no allocation can satisfy the request
// (e.g. the total batch exceeds the cluster's memory capacity).
var ErrInfeasible = errors.New("optperf: no feasible allocation")

// Bottleneck labels a node's overlap state at a given allocation.
type Bottleneck int

// Bottleneck states.
const (
	ComputeBound Bottleneck = iota + 1
	CommBound
)

// String implements fmt.Stringer.
func (b Bottleneck) String() string {
	switch b {
	case ComputeBound:
		return "compute"
	case CommBound:
		return "comm"
	default:
		return fmt.Sprintf("Bottleneck(%d)", int(b))
	}
}

// NodeModel is the learned compute-time model of one node.
type NodeModel struct {
	// Q, S parameterize a(b) = Q*b + S; K, M parameterize P(b) = K*b + M.
	Q, S, K, M float64
	// MaxBatch caps the local batch size (memory); 0 means unlimited.
	MaxBatch int
}

// A returns the non-backprop time at local batch b.
func (n NodeModel) A(b float64) float64 { return n.Q*b + n.S }

// P returns the backprop time at local batch b.
func (n NodeModel) P(b float64) float64 { return n.K*b + n.M }

// Compute returns the full local compute time at local batch b.
func (n NodeModel) Compute(b float64) float64 { return n.A(b) + n.P(b) }

// cap returns the node's cap as a float, +Inf when unlimited.
func (n NodeModel) cap() float64 {
	if n.MaxBatch <= 0 {
		return math.Inf(1)
	}
	return float64(n.MaxBatch)
}

// ClusterModel is the full learned performance model of a cluster.
type ClusterModel struct {
	Nodes []NodeModel
	// Gamma is the overlap ratio γ in (0, 1]: the fraction of
	// backpropagation before the first bucket is ready.
	Gamma float64
	// To and Tu decompose the per-batch synchronization time
	// TComm = To + Tu.
	To, Tu float64
}

// TComm returns the total per-batch gradient synchronization time.
func (c ClusterModel) TComm() float64 { return c.To + c.Tu }

// Validate checks the model is solvable.
func (c ClusterModel) Validate() error {
	if len(c.Nodes) == 0 {
		return errors.New("optperf: model has no nodes")
	}
	for i, n := range c.Nodes {
		if n.Q < 0 || n.K <= 0 || n.S < 0 || n.M < 0 {
			return fmt.Errorf("optperf: node %d has invalid coefficients %+v", i, n)
		}
	}
	if c.Gamma <= 0 || c.Gamma > 1 {
		return fmt.Errorf("optperf: gamma %v out of (0, 1]", c.Gamma)
	}
	if c.To < 0 || c.Tu < 0 {
		return fmt.Errorf("optperf: negative communication times To=%v Tu=%v", c.To, c.Tu)
	}
	return nil
}

// SyncStart returns node i's first-bucket-ready instant at local batch b
// (Eq. 4).
func (c ClusterModel) SyncStart(i int, b float64) float64 {
	n := c.Nodes[i]
	return n.A(b) + c.Gamma*n.P(b)
}

// NodeTime returns node i's batch processing time at local batch b,
// whichever overlap pattern applies (Eqs. 5 and 6).
func (c ClusterModel) NodeTime(i int, b float64) float64 {
	n := c.Nodes[i]
	compute := n.Compute(b) + c.Tu
	comm := c.SyncStart(i, b) + c.TComm()
	if compute >= comm {
		return compute
	}
	return comm
}

// NodeState returns node i's bottleneck state at local batch b:
// compute-bound when (1−γ)P_i(b) ≥ T_o.
func (c ClusterModel) NodeState(i int, b float64) Bottleneck {
	if (1-c.Gamma)*c.Nodes[i].P(b) >= c.To {
		return ComputeBound
	}
	return CommBound
}

// PredictTimeFloat evaluates Eq. 7 — the cluster batch processing time —
// at a (possibly fractional) allocation.
func (c ClusterModel) PredictTimeFloat(b []float64) float64 {
	worst := 0.0
	for i := range c.Nodes {
		if t := c.NodeTime(i, b[i]); t > worst {
			worst = t
		}
	}
	return worst
}

// PredictTime evaluates Eq. 7 at an integer allocation.
func (c ClusterModel) PredictTime(batches []int) float64 {
	worst := 0.0
	for i := range c.Nodes {
		if t := c.NodeTime(i, float64(batches[i])); t > worst {
			worst = t
		}
	}
	return worst
}

// Capacity returns the cluster's total local batch capacity and whether it
// is bounded.
func (c ClusterModel) Capacity() (int, bool) {
	total := 0
	for _, n := range c.Nodes {
		if n.MaxBatch <= 0 {
			return 0, false
		}
		total += n.MaxBatch
	}
	return total, true
}

// Plan is a solved allocation for one total batch size.
type Plan struct {
	// TotalBatch is the requested total batch size B.
	TotalBatch int
	// Batches are the integer local batch sizes (sum = TotalBatch).
	Batches []int
	// Ratios are Batches normalized by TotalBatch (the paper's r).
	Ratios []float64
	// Time is the predicted batch processing time at Batches.
	Time float64
	// ContinuousTime is the relaxed (fractional) OptPerf lower bound.
	ContinuousTime float64
	// States are the per-node bottleneck states at the solution.
	States []Bottleneck
}

// NumComputeBound returns how many nodes are compute-bottleneck.
func (p Plan) NumComputeBound() int {
	n := 0
	for _, s := range p.States {
		if s == ComputeBound {
			n++
		}
	}
	return n
}

// Throughput returns samples per second at the planned batch time.
func (p Plan) Throughput() float64 {
	if p.Time <= 0 {
		return 0
	}
	return float64(p.TotalBatch) / p.Time
}
