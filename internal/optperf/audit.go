package optperf

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrAuditFailed is returned (wrapped) when a strict-mode audit finds an
// invariant violation; test with errors.Is.
var ErrAuditFailed = errors.New("optperf: plan audit failed")

// AuditMode selects how much runtime verification a solve performs.
type AuditMode int

// Audit modes.
const (
	// AuditOff disables plan auditing (the default).
	AuditOff AuditMode = iota
	// AuditAdvisory audits every plan and records violations without
	// failing the solve.
	AuditAdvisory
	// AuditStrict audits every plan and turns any violation into an error
	// wrapping ErrAuditFailed.
	AuditStrict
)

// String implements fmt.Stringer.
func (m AuditMode) String() string {
	switch m {
	case AuditOff:
		return "off"
	case AuditAdvisory:
		return "advisory"
	case AuditStrict:
		return "strict"
	default:
		return fmt.Sprintf("AuditMode(%d)", int(m))
	}
}

// Invariant names one optimality or feasibility condition checked by the
// audit (the paper's Appendix A conditions plus solver-pipeline
// consistency).
type Invariant string

// Audited invariants.
const (
	// InvBatchSum: the local batches sum to the requested total batch.
	InvBatchSum Invariant = "batch-sum"
	// InvBox: every local batch respects minLocalBatch and the node cap.
	InvBox Invariant = "box-constraints"
	// InvComputeEqualized: unpinned compute-bottleneck nodes share
	// t_compute within integer-rounding slack (Appendix A.1).
	InvComputeEqualized Invariant = "compute-equalized"
	// InvCommEqualized: unpinned comm-bottleneck nodes share syncStart
	// within integer-rounding slack (Appendix A.2).
	InvCommEqualized Invariant = "comm-equalized"
	// InvTimeConsistent: Plan.Time, Ratios, and States match PredictTime
	// and NodeState at the recorded allocation.
	InvTimeConsistent Invariant = "time-consistent"
	// InvLowerBound: the continuous relaxation time never exceeds the
	// integer plan time (the relaxation is a lower bound).
	InvLowerBound Invariant = "continuous-lower-bound"
	// InvReferenceGap (differential): the continuous solution is no worse
	// than the waterfill reference solver on the same model.
	InvReferenceGap Invariant = "waterfill-reference-gap"
	// InvNeighborhood (differential): no integer allocation in a small
	// neighborhood of the plan beats it (brute-force cross-check on small
	// clusters).
	InvNeighborhood Invariant = "integer-neighborhood"
)

// Tolerances configure the audit's numeric slack. The zero value means
// "use defaults" everywhere (see DefaultTolerances).
type Tolerances struct {
	// EqualizeSamples is the equalization spread allowed inside a
	// bottleneck group, in units of the group's largest per-sample time
	// step — integer rounding shifts each node by at most a few samples.
	EqualizeSamples float64
	// TimeRel is the relative tolerance for recorded-vs-recomputed times.
	TimeRel float64
	// ReferenceRel is the allowed relative excess of the continuous
	// solution over the waterfill reference.
	ReferenceRel float64
	// NeighborhoodRel is the relative margin by which a neighboring
	// integer allocation must win before it counts as a violation.
	NeighborhoodRel float64
	// AbsTime is the absolute epsilon added to every time comparison.
	AbsTime float64
	// MaxBruteNodes bounds the cluster size for the brute-force
	// neighborhood search (its cost is exponential in n). 0 = default.
	MaxBruteNodes int
	// NeighborhoodRadius is how many samples each node may deviate in the
	// brute-force search. 0 = default.
	NeighborhoodRadius int
}

// DefaultTolerances returns the audit defaults.
func DefaultTolerances() Tolerances {
	return Tolerances{
		EqualizeSamples:    4,
		TimeRel:            1e-9,
		ReferenceRel:       1e-6,
		NeighborhoodRel:    1e-9,
		AbsTime:            1e-12,
		MaxBruteNodes:      6,
		NeighborhoodRadius: 2,
	}
}

// withDefaults fills zero fields with the defaults.
func (t Tolerances) withDefaults() Tolerances {
	d := DefaultTolerances()
	if t.EqualizeSamples <= 0 {
		t.EqualizeSamples = d.EqualizeSamples
	}
	if t.TimeRel <= 0 {
		t.TimeRel = d.TimeRel
	}
	if t.ReferenceRel <= 0 {
		t.ReferenceRel = d.ReferenceRel
	}
	if t.NeighborhoodRel <= 0 {
		t.NeighborhoodRel = d.NeighborhoodRel
	}
	if t.AbsTime <= 0 {
		t.AbsTime = d.AbsTime
	}
	if t.MaxBruteNodes <= 0 {
		t.MaxBruteNodes = d.MaxBruteNodes
	}
	if t.NeighborhoodRadius <= 0 {
		t.NeighborhoodRadius = d.NeighborhoodRadius
	}
	return t
}

// Violation is one failed invariant.
type Violation struct {
	Invariant Invariant
	// Node is the offending node, or -1 for a cluster-wide condition.
	Node int
	// Residual is the measured deviation; Limit is what the tolerances
	// allowed.
	Residual, Limit float64
	Detail          string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	where := "cluster"
	if v.Node >= 0 {
		where = fmt.Sprintf("node %d", v.Node)
	}
	return fmt.Sprintf("%s (%s): residual %.3g > limit %.3g: %s",
		v.Invariant, where, v.Residual, v.Limit, v.Detail)
}

// AuditReport is the structured outcome of auditing one plan: every
// invariant that was evaluated, its worst observed residual, and the
// violations (empty when the plan verifies).
type AuditReport struct {
	TotalBatch int
	// Checked lists the invariants that were evaluated (differential
	// checks are skipped when inapplicable, e.g. the brute-force search on
	// large clusters).
	Checked []Invariant
	// Residuals records the worst residual observed per checked invariant,
	// including passing ones.
	Residuals map[Invariant]float64
	// Violations lists every invariant breach.
	Violations []Violation
}

// OK reports whether the plan passed every checked invariant.
func (r AuditReport) OK() bool { return len(r.Violations) == 0 }

// MaxViolationRatio returns the worst residual/limit ratio across the
// violations (0 when the plan verifies).
func (r AuditReport) MaxViolationRatio() float64 {
	worst := 0.0
	for _, v := range r.Violations {
		if v.Limit > 0 {
			if ratio := v.Residual / v.Limit; ratio > worst {
				worst = ratio
			}
		} else if v.Residual > worst {
			worst = v.Residual
		}
	}
	return worst
}

// Err returns nil for a clean report, or an error wrapping ErrAuditFailed
// that lists the violations.
func (r AuditReport) Err() error {
	if r.OK() {
		return nil
	}
	msgs := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		msgs[i] = v.String()
	}
	return fmt.Errorf("%w: B=%d: %s", ErrAuditFailed, r.TotalBatch, strings.Join(msgs, "; "))
}

// auditor accumulates a report.
type auditor struct {
	report AuditReport
	tol    Tolerances
}

func (a *auditor) check(inv Invariant) { a.report.Checked = append(a.report.Checked, inv) }

func (a *auditor) residual(inv Invariant, r float64) {
	if a.report.Residuals == nil {
		a.report.Residuals = make(map[Invariant]float64)
	}
	if r > a.report.Residuals[inv] {
		a.report.Residuals[inv] = r
	} else if _, ok := a.report.Residuals[inv]; !ok {
		a.report.Residuals[inv] = r
	}
}

func (a *auditor) violate(inv Invariant, node int, residual, limit float64, format string, args ...any) {
	a.report.Violations = append(a.report.Violations, Violation{
		Invariant: inv,
		Node:      node,
		Residual:  residual,
		Limit:     limit,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// AuditPlan validates a returned Plan against the paper's optimality
// conditions and the solver pipeline's own bookkeeping: batch sums, box
// constraints, equal t_compute across unpinned compute-bottleneck nodes,
// equal syncStart across unpinned comm-bottleneck nodes, and Time/Ratios/
// States consistency with the model. It also runs the cheap differential
// checks (waterfill reference gap always; brute-force integer neighborhood
// on clusters up to tol.MaxBruteNodes nodes).
func AuditPlan(model ClusterModel, plan Plan, tol Tolerances) AuditReport {
	a := &auditor{report: AuditReport{TotalBatch: plan.TotalBatch}, tol: tol.withDefaults()}
	if err := model.Validate(); err != nil {
		a.check(InvTimeConsistent)
		a.violate(InvTimeConsistent, -1, math.Inf(1), 0, "model invalid: %v", err)
		return a.report
	}
	if len(plan.Batches) != len(model.Nodes) {
		a.check(InvBatchSum)
		a.violate(InvBatchSum, -1, math.Abs(float64(len(plan.Batches)-len(model.Nodes))), 0,
			"%d batches for %d nodes", len(plan.Batches), len(model.Nodes))
		return a.report
	}
	a.auditSum(plan)
	a.auditBox(model, plan)
	a.auditEqualization(model, plan)
	a.auditConsistency(model, plan)
	a.auditReferenceGap(model, plan)
	a.auditNeighborhood(model, plan)
	return a.report
}

// AuditAllocation audits a bare integer allocation (no performance model):
// batch sum and box constraints only. It covers plans produced by the
// bootstrap and re-profiling paths, which have no OptPerf optimality
// conditions to check.
func AuditAllocation(batches []int, totalBatch int, caps []int) AuditReport {
	a := &auditor{report: AuditReport{TotalBatch: totalBatch}, tol: DefaultTolerances()}
	a.check(InvBatchSum)
	sum := 0
	for _, b := range batches {
		sum += b
	}
	a.residual(InvBatchSum, math.Abs(float64(sum-totalBatch)))
	if sum != totalBatch {
		a.violate(InvBatchSum, -1, math.Abs(float64(sum-totalBatch)), 0,
			"batches sum %d != total %d", sum, totalBatch)
	}
	a.check(InvBox)
	worst := 0.0
	for i, b := range batches {
		if b < minLocalBatch {
			short := float64(minLocalBatch - b)
			a.violate(InvBox, i, short, 0, "batch %d below minimum %d", b, minLocalBatch)
			worst = math.Max(worst, short)
		}
		if caps != nil && i < len(caps) && caps[i] > 0 && b > caps[i] {
			over := float64(b - caps[i])
			a.violate(InvBox, i, over, 0, "batch %d above cap %d", b, caps[i])
			worst = math.Max(worst, over)
		}
	}
	a.residual(InvBox, worst)
	return a.report
}

func (a *auditor) auditSum(plan Plan) {
	a.check(InvBatchSum)
	sum := 0
	for _, b := range plan.Batches {
		sum += b
	}
	a.residual(InvBatchSum, math.Abs(float64(sum-plan.TotalBatch)))
	if sum != plan.TotalBatch {
		a.violate(InvBatchSum, -1, math.Abs(float64(sum-plan.TotalBatch)), 0,
			"batches sum %d != total %d", sum, plan.TotalBatch)
	}
}

func (a *auditor) auditBox(model ClusterModel, plan Plan) {
	a.check(InvBox)
	worst := 0.0
	for i, b := range plan.Batches {
		if b < minLocalBatch {
			short := float64(minLocalBatch - b)
			a.violate(InvBox, i, short, 0, "batch %d below minimum %d", b, minLocalBatch)
			worst = math.Max(worst, short)
		}
		if c := model.Nodes[i].cap(); float64(b) > c {
			over := float64(b) - c
			a.violate(InvBox, i, over, 0, "batch %d above cap %v", b, c)
			worst = math.Max(worst, over)
		}
	}
	a.residual(InvBox, worst)
}

// pinned reports whether node i sits on a box constraint, where the
// equalization conditions do not apply (the KKT multiplier absorbs the
// imbalance).
func pinned(model ClusterModel, b int, i int) bool {
	if b <= minLocalBatch {
		return true
	}
	return float64(b) >= model.Nodes[i].cap()
}

// nearStateBoundary reports whether node i's bottleneck state could flip
// within the integer-rounding slack: equalization group membership is
// ambiguous there.
func nearStateBoundary(model ClusterModel, i int, b float64, samples float64) bool {
	margin := (1 - model.Gamma) * model.Nodes[i].K * samples
	return math.Abs((1-model.Gamma)*model.Nodes[i].P(b)-model.To) <= margin
}

func (a *auditor) auditEqualization(model ClusterModel, plan Plan) {
	type member struct {
		node int
		t    float64
		step float64
	}
	var compute, comm []member
	for i, b := range plan.Batches {
		if pinned(model, b, i) || nearStateBoundary(model, i, float64(b), a.tol.EqualizeSamples) {
			continue
		}
		nm := model.Nodes[i]
		if model.NodeState(i, float64(b)) == ComputeBound {
			compute = append(compute, member{i, nm.Compute(float64(b)), nm.Q + nm.K})
		} else {
			comm = append(comm, member{i, model.SyncStart(i, float64(b)), nm.Q + model.Gamma*nm.K})
		}
	}
	groups := []struct {
		inv     Invariant
		members []member
	}{
		{InvComputeEqualized, compute},
		{InvCommEqualized, comm},
	}
	for _, g := range groups {
		if len(g.members) < 2 {
			continue
		}
		a.check(g.inv)
		lo, hi := g.members[0], g.members[0]
		maxStep := 0.0
		for _, m := range g.members {
			if m.t < lo.t {
				lo = m
			}
			if m.t > hi.t {
				hi = m
			}
			maxStep = math.Max(maxStep, m.step)
		}
		spread := hi.t - lo.t
		limit := a.tol.EqualizeSamples*maxStep + a.tol.AbsTime
		a.residual(g.inv, spread)
		if spread > limit {
			a.violate(g.inv, hi.node, spread, limit,
				"group spread %.4g (node %d at %.4g vs node %d at %.4g)",
				spread, hi.node, hi.t, lo.node, lo.t)
		}
	}
}

func (a *auditor) auditConsistency(model ClusterModel, plan Plan) {
	a.check(InvTimeConsistent)
	want := model.PredictTime(plan.Batches)
	diff := math.Abs(plan.Time - want)
	limit := a.tol.TimeRel*want + a.tol.AbsTime
	a.residual(InvTimeConsistent, diff)
	if diff > limit {
		a.violate(InvTimeConsistent, -1, diff, limit,
			"Plan.Time %.6g != PredictTime %.6g", plan.Time, want)
	}
	if len(plan.Ratios) == len(plan.Batches) {
		for i, r := range plan.Ratios {
			wantR := float64(plan.Batches[i]) / float64(plan.TotalBatch)
			if math.Abs(r-wantR) > 1e-12 {
				a.violate(InvTimeConsistent, i, math.Abs(r-wantR), 1e-12,
					"ratio %.6g != batch/total %.6g", r, wantR)
			}
		}
	}
	if len(plan.States) == len(plan.Batches) {
		for i, s := range plan.States {
			if want := model.NodeState(i, float64(plan.Batches[i])); s != want {
				a.violate(InvTimeConsistent, i, 1, 0, "state %v != %v at b=%d", s, want, plan.Batches[i])
			}
		}
	}
	if plan.ContinuousTime > 0 {
		a.check(InvLowerBound)
		excess := plan.ContinuousTime - plan.Time
		limit := a.tol.TimeRel*plan.Time + a.tol.AbsTime
		a.residual(InvLowerBound, math.Max(excess, 0))
		if excess > limit {
			a.violate(InvLowerBound, -1, excess, limit,
				"continuous relaxation %.6g above integer time %.6g", plan.ContinuousTime, plan.Time)
		}
	}
}

// auditReferenceGap differentially verifies the continuous layer: the
// waterfill reference solver is provably optimal on the unconstrained
// envelope, so whenever its solution is box-feasible the Algorithm 1
// pipeline must match it (within tolerance).
func (a *auditor) auditReferenceGap(model ClusterModel, plan Plan) {
	if plan.ContinuousTime <= 0 {
		return
	}
	n := len(model.Nodes)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	ref := waterfill(model, idx, float64(plan.TotalBatch))
	for i, v := range ref {
		if v < minLocalBatch-1e-9 || v > model.Nodes[i].cap()+1e-9 {
			return // reference solution infeasible under box constraints
		}
	}
	a.check(InvReferenceGap)
	refTime := model.PredictTimeFloat(ref)
	gap := plan.ContinuousTime - refTime
	limit := a.tol.ReferenceRel*refTime + a.tol.AbsTime
	a.residual(InvReferenceGap, math.Max(gap, 0))
	if gap > limit {
		a.violate(InvReferenceGap, -1, gap, limit,
			"continuous time %.6g worse than waterfill reference %.6g", plan.ContinuousTime, refTime)
	}
}

// auditNeighborhood brute-forces every integer allocation within
// NeighborhoodRadius samples of the plan (preserving the total and the box
// constraints) on clusters small enough to enumerate, and flags any
// neighbor that beats the plan beyond tolerance.
func (a *auditor) auditNeighborhood(model ClusterModel, plan Plan) {
	n := len(plan.Batches)
	if n < 2 || n > a.tol.MaxBruteNodes {
		return
	}
	a.check(InvNeighborhood)
	r := a.tol.NeighborhoodRadius
	limit := a.tol.NeighborhoodRel*plan.Time + a.tol.AbsTime
	trial := make([]int, n)
	deltas := make([]int, n-1)
	bestGain, worstResidual := 0.0, 0.0
	var bestAlloc []int
	var walk func(pos, sum int)
	walk = func(pos, sum int) {
		if pos == n-1 {
			last := -sum
			if last < -r || last > r {
				return
			}
			copy(trial, plan.Batches)
			for j, d := range deltas {
				trial[j] += d
			}
			trial[n-1] += last
			for i, b := range trial {
				if b < minLocalBatch || float64(b) > model.Nodes[i].cap() {
					return
				}
			}
			t := model.PredictTime(trial)
			if gain := plan.Time - t; gain > bestGain {
				bestGain = gain
				bestAlloc = append(bestAlloc[:0], trial...)
			}
			return
		}
		for d := -r; d <= r; d++ {
			deltas[pos] = d
			walk(pos+1, sum+d)
		}
	}
	walk(0, 0)
	worstResidual = math.Max(bestGain, 0)
	a.residual(InvNeighborhood, worstResidual)
	if bestGain > limit {
		a.violate(InvNeighborhood, -1, bestGain, limit,
			"neighbor %v beats plan %v by %.4g", bestAlloc, plan.Batches, bestGain)
	}
}
