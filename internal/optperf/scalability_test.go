package optperf

import (
	"testing"

	"cannikin/internal/rng"
)

// TestScalabilityLargeClusters exercises the solver at sizes far beyond
// the paper's 16-GPU testbed (the paper claims "high scalability"):
// solutions must stay optimal against random adversaries at n = 64 and
// n = 128.
func TestScalabilityLargeClusters(t *testing.T) {
	src := rng.New(71)
	for _, n := range []int{64, 128} {
		s := src.Split(string(rune(n)))
		m := randomModel(s, n)
		total := n * 24
		plan, err := mustAuditedSolve(t, m, total)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sum := 0
		for _, b := range plan.Batches {
			sum += b
		}
		if sum != total {
			t.Fatalf("n=%d: sum %d != %d", n, sum, total)
		}
		for r := 0; r < 25; r++ {
			alloc := randomAllocation(s, n, total)
			if tr := m.PredictTime(alloc); tr < plan.Time*(1-1e-9) {
				t.Fatalf("n=%d: random allocation beats solver: %v < %v", n, tr, plan.Time)
			}
		}
	}
}

// TestPlannerScalabilityCandidateSweep verifies a full candidate sweep on
// a 128-node model stays well-behaved (bounded solver work, all plans
// consistent).
func TestPlannerScalabilityCandidateSweep(t *testing.T) {
	src := rng.New(73)
	m := randomModel(src, 128)
	p, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	candidates := []int{256, 512, 1024, 2048, 4096, 8192}
	plans, err := p.PlanAll(candidates)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, plan := range plans {
		if plan.Time < prev {
			t.Fatalf("OptPerf decreased with batch size: %v after %v", plan.Time, prev)
		}
		prev = plan.Time
	}
	work := p.Stats().LinearSolves + p.Stats().BoundarySearchSteps
	// Bound: a handful of solves per candidate even at this scale.
	if work > 30*len(candidates) {
		t.Fatalf("solver work %d too high for %d candidates", work, len(candidates))
	}
}

func BenchmarkSolve64(b *testing.B) {
	m := randomModel(rng.New(75), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m, 64*24); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve128(b *testing.B) {
	m := randomModel(rng.New(76), 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m, 128*24); err != nil {
			b.Fatal(err)
		}
	}
}
