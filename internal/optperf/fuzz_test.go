package optperf

import (
	"math"
	"testing"
)

// FuzzSolve feeds arbitrary (clamped-to-valid) models and batch sizes into
// the solver: it must never panic, and every successful plan must satisfy
// the allocation invariants and never lose to the even split.
func FuzzSolve(f *testing.F) {
	f.Add(uint8(3), int64(48), 0.25, 0.01, 0.004, 1.0, 3.0)
	f.Add(uint8(16), int64(512), 0.05, 0.0, 0.0, 0.5, 10.0)
	f.Add(uint8(1), int64(1), 1.0, 0.5, 0.5, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, nRaw uint8, totalRaw int64, gamma, to, tu, speedLo, speedHi float64) {
		n := int(nRaw%32) + 1
		total := int(totalRaw % 100000)
		if total < 0 {
			total = -total
		}
		gamma = clampFinite(gamma, 1e-3, 1)
		to = clampFinite(to, 0, 1)
		tu = clampFinite(tu, 0, 1)
		speedLo = clampFinite(speedLo, 0.1, 100)
		speedHi = clampFinite(speedHi, speedLo, 200)

		nodes := make([]NodeModel, n)
		for i := range nodes {
			frac := float64(i+1) / float64(n)
			speed := speedLo + (speedHi-speedLo)*frac
			nodes[i] = NodeModel{
				Q: 1e-4 * speed,
				S: 1e-3 * frac,
				K: 2e-4 * speed,
				M: 1e-3 * (1 - frac/2),
			}
		}
		m := ClusterModel{Nodes: nodes, Gamma: gamma, To: to, Tu: tu}
		plan, err := mustAuditedSolve(t, m, total)
		if err != nil {
			return // infeasible inputs are fine; panics are not
		}
		sum := 0
		for _, b := range plan.Batches {
			if b < 1 {
				t.Fatalf("batch below minimum: %v", plan.Batches)
			}
			sum += b
		}
		if sum != total {
			t.Fatalf("sum %d != total %d", sum, total)
		}
		if plan.Time <= 0 || math.IsNaN(plan.Time) || math.IsInf(plan.Time, 0) {
			t.Fatalf("bad plan time %v", plan.Time)
		}
		// Never worse than the even split.
		even := make([]int, n)
		base, rem := total/n, total%n
		for i := range even {
			even[i] = base
			if i < rem {
				even[i]++
			}
		}
		if evenOK := even[n-1] >= 1; evenOK {
			if te := m.PredictTime(even); plan.Time > te*(1+1e-9) {
				t.Fatalf("plan %v worse than even split %v", plan.Time, te)
			}
		}
	})
}

func clampFinite(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
