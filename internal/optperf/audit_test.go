package optperf

import (
	"errors"
	"strings"
	"testing"
)

// mustAuditedSolve solves with strict auditing and fails the test on any
// invariant violation: it is the Solve every optperf test goes through, so
// the whole property/fuzz/scalability suite doubles as a continuous solver
// regression test.
func mustAuditedSolve(t testing.TB, m ClusterModel, total int) (Plan, error) {
	t.Helper()
	plan, report, err := SolveAudited(m, total, AuditStrict, Tolerances{})
	if errors.Is(err, ErrAuditFailed) {
		t.Fatalf("audit violation at B=%d: %v\nplan: %+v\nresiduals: %v", total, err, plan, report.Residuals)
	}
	return plan, err
}

func TestAuditPlanCleanSolve(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	plan, err := Solve(m, 120)
	if err != nil {
		t.Fatal(err)
	}
	report := AuditPlan(m, plan, Tolerances{})
	if !report.OK() {
		t.Fatalf("clean solve failed audit: %v", report.Err())
	}
	if report.Err() != nil {
		t.Fatal("OK report must have nil Err")
	}
	// All core invariants must have been evaluated with residuals recorded.
	for _, inv := range []Invariant{InvBatchSum, InvBox, InvTimeConsistent, InvLowerBound, InvNeighborhood} {
		found := false
		for _, c := range report.Checked {
			if c == inv {
				found = true
			}
		}
		if !found {
			t.Fatalf("invariant %s not checked (checked: %v)", inv, report.Checked)
		}
		if _, ok := report.Residuals[inv]; !ok {
			t.Fatalf("invariant %s has no recorded residual", inv)
		}
	}
}

func TestAuditPlanCatchesBadSum(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	plan, err := Solve(m, 120)
	if err != nil {
		t.Fatal(err)
	}
	plan.Batches[0]++ // corrupt: sum no longer matches
	report := AuditPlan(m, plan, Tolerances{})
	if report.OK() {
		t.Fatal("corrupted sum passed audit")
	}
	if !hasViolation(report, InvBatchSum) {
		t.Fatalf("missing %s violation: %v", InvBatchSum, report.Violations)
	}
	if err := report.Err(); !errors.Is(err, ErrAuditFailed) {
		t.Fatalf("Err must wrap ErrAuditFailed: %v", err)
	}
}

func TestAuditPlanCatchesCapBreach(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	m.Nodes[0].MaxBatch = 20
	plan, err := Solve(m, 90)
	if err != nil {
		t.Fatal(err)
	}
	plan.Batches[0] = 30 // above cap
	plan.Batches[1] -= 10
	report := AuditPlan(m, plan, Tolerances{})
	if !hasViolation(report, InvBox) {
		t.Fatalf("missing %s violation: %v", InvBox, report.Violations)
	}
}

func TestAuditPlanCatchesSkewedAllocation(t *testing.T) {
	// Move a big chunk of batch from the fast node to the slow node: the
	// equalization invariant (and the neighborhood search) must notice.
	m := threeNodeModel(0, 0.005, 0.25) // To=0: all compute-bottleneck
	plan, err := Solve(m, 300)
	if err != nil {
		t.Fatal(err)
	}
	plan.Batches[0] -= 40
	plan.Batches[2] += 40
	plan.Time = m.PredictTime(plan.Batches)
	for i, b := range plan.Batches {
		plan.States[i] = m.NodeState(i, float64(b))
		plan.Ratios[i] = float64(b) / float64(plan.TotalBatch)
	}
	report := AuditPlan(m, plan, Tolerances{})
	if report.OK() {
		t.Fatal("skewed allocation passed audit")
	}
	if !hasViolation(report, InvComputeEqualized) && !hasViolation(report, InvNeighborhood) {
		t.Fatalf("expected equalization or neighborhood violation: %v", report.Violations)
	}
}

func TestAuditPlanCatchesStaleTime(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	plan, err := Solve(m, 120)
	if err != nil {
		t.Fatal(err)
	}
	plan.Time *= 0.5 // stale/corrupted recorded time
	report := AuditPlan(m, plan, Tolerances{})
	if !hasViolation(report, InvTimeConsistent) {
		t.Fatalf("missing %s violation: %v", InvTimeConsistent, report.Violations)
	}
}

func TestAuditPlanCatchesInflatedContinuousTime(t *testing.T) {
	// A continuous "solution" above the integer time means the continuous
	// layer was suboptimal (e.g. the old waterfill residue dump).
	m := threeNodeModel(0.01, 0.005, 0.25)
	plan, err := Solve(m, 120)
	if err != nil {
		t.Fatal(err)
	}
	plan.ContinuousTime = plan.Time * 1.5
	report := AuditPlan(m, plan, Tolerances{})
	if !hasViolation(report, InvLowerBound) {
		t.Fatalf("missing %s violation: %v", InvLowerBound, report.Violations)
	}
}

func TestAuditAllocation(t *testing.T) {
	report := AuditAllocation([]int{4, 3, 3}, 10, []int{8, 8, 8})
	if !report.OK() {
		t.Fatalf("valid allocation failed: %v", report.Err())
	}
	report = AuditAllocation([]int{9, 0, 3}, 10, []int{8, 8, 8})
	if report.OK() {
		t.Fatal("bad allocation passed")
	}
	if !hasViolation(report, InvBatchSum) || !hasViolation(report, InvBox) {
		t.Fatalf("expected sum+box violations: %v", report.Violations)
	}
}

func TestAuditModeString(t *testing.T) {
	if AuditOff.String() != "off" || AuditAdvisory.String() != "advisory" || AuditStrict.String() != "strict" {
		t.Fatal("AuditMode strings wrong")
	}
	if AuditMode(42).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Invariant: InvBox, Node: 2, Residual: 3, Limit: 0, Detail: "batch 13 above cap 10"}
	s := v.String()
	for _, want := range []string{"box-constraints", "node 2", "batch 13"} {
		if !strings.Contains(s, want) {
			t.Fatalf("violation string %q missing %q", s, want)
		}
	}
}

func TestSolveAuditedModes(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	plan, report, err := SolveAudited(m, 120, AuditStrict, Tolerances{})
	if err != nil {
		t.Fatalf("strict audit of a correct solve must pass: %v", err)
	}
	if !report.OK() || plan.TotalBatch != 120 {
		t.Fatalf("unexpected report/plan: %+v", report)
	}
	// AuditOff returns an empty report.
	_, report, err = SolveAudited(m, 120, AuditOff, Tolerances{})
	if err != nil || len(report.Checked) != 0 {
		t.Fatalf("AuditOff must skip checks: %v %+v", err, report)
	}
}

func TestPlannerAuditAccumulates(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	p, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	p.Audit = AuditAdvisory
	if _, err := p.Plan(60); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PlanAll([]int{30, 90}); err != nil {
		t.Fatal(err)
	}
	sum := p.DrainAudit()
	if sum.Plans != 3 {
		t.Fatalf("audited %d plans, want 3", sum.Plans)
	}
	if sum.Violations != 0 || sum.MaxViolationRatio != 0 {
		t.Fatalf("clean model produced violations: %+v", sum)
	}
	// Cache hits are not re-audited.
	if _, err := p.Plan(60); err != nil {
		t.Fatal(err)
	}
	if sum := p.DrainAudit(); sum.Plans != 0 {
		t.Fatalf("cache hit re-audited: %+v", sum)
	}
}

func TestAuditSummaryMerge(t *testing.T) {
	var a, b AuditSummary
	a.Add(AuditReport{})
	bad := AuditReport{Violations: []Violation{{Invariant: InvBatchSum, Residual: 2, Limit: 1}}}
	b.Add(bad)
	b.Add(bad)
	a.Merge(b)
	if a.Plans != 3 || a.Violations != 2 || a.MaxViolationRatio != 2 || len(a.Failures) != 2 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func hasViolation(r AuditReport, inv Invariant) bool {
	for _, v := range r.Violations {
		if v.Invariant == inv {
			return true
		}
	}
	return false
}

// TestDifferentialWaterfillAgreement: on models where the unconstrained
// waterfill is box-feasible, the audit's reference-gap check must run and
// agree with the Algorithm 1 pipeline.
func TestDifferentialWaterfillAgreement(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	plan, report, err := SolveAudited(m, 150, AuditStrict, Tolerances{})
	if err != nil {
		t.Fatal(err)
	}
	checked := false
	for _, c := range report.Checked {
		if c == InvReferenceGap {
			checked = true
		}
	}
	if !checked {
		t.Fatalf("reference gap not checked on a feasible model (plan %v)", plan.Batches)
	}
	if report.Residuals[InvReferenceGap] > 1e-6*plan.ContinuousTime {
		t.Fatalf("continuous solution drifted from waterfill reference by %v", report.Residuals[InvReferenceGap])
	}
}
