package optperf

import (
	"math"
	"testing"
)

// Regression tests for the three allocation bugs surfaced by the audit
// harness. Each of these fails against the pre-fix solver.

// TestWaterfillResidueRespectsCaps: on extreme models the bisection in
// waterfill hits its range limit and leaves a large residue. The pre-fix
// code dumped the whole residue onto out[0], blowing through that node's
// MaxBatch cap; it must instead flow to nodes with slack.
func TestWaterfillResidueRespectsCaps(t *testing.T) {
	m := ClusterModel{
		Nodes: []NodeModel{
			// Both nodes are so slow (Q=1e10) that sumAt(1e12) is tiny and
			// the bisection upper bound caps out, leaving most of the total
			// as residue. Node 0 is capped; node 1 is unbounded.
			{Q: 1e10, S: 0.1, K: 1, M: 0.1, MaxBatch: 150},
			{Q: 1e10, S: 0.1, K: 1, M: 0.1},
		},
		Gamma: 0.5,
		To:    0.01,
		Tu:    0.01,
	}
	total := 1000.0
	out := waterfill(m, []int{0, 1}, total)
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-total) > 1e-6*total {
		t.Fatalf("waterfill lost batch: sum %v want %v (out %v)", sum, total, out)
	}
	if out[0] > float64(m.Nodes[0].MaxBatch)+1e-9 {
		t.Fatalf("residue pushed node 0 above its cap: %v > %d", out[0], m.Nodes[0].MaxBatch)
	}
	if out[1] < minLocalBatch {
		t.Fatalf("node 1 below min: %v", out[1])
	}
}

// TestRoundAllocationMinClampPriority: a node whose floor was clamped up to
// minLocalBatch already holds more than its continuous share. The pre-fix
// code still ranked it by the raw fractional part (here 0.9, the largest),
// so it also won the remainder unit that belonged to a faster node.
func TestRoundAllocationMinClampPriority(t *testing.T) {
	m := threeNodeModel(0.01, 0.005, 0.25)
	cont := []float64{0.9, 3.55, 3.55}
	batches, err := roundAllocation(m, cont, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := batches[0] + batches[1] + batches[2]; got != 8 {
		t.Fatalf("sum %d want 8 (%v)", got, batches)
	}
	if batches[0] != 1 {
		t.Fatalf("min-clamped node stole the remainder unit: %v (want batches[0]=1)", batches)
	}
}

// TestRoundAllocationCapClampPriority: a node clamped down to its cap wants
// far more than it holds and must be the last to lose a unit when the floors
// overshoot. The pre-fix code ranked it by the raw fractional part (0.0, the
// smallest), so it lost a unit below a cap it should stay pinned at.
func TestRoundAllocationCapClampPriority(t *testing.T) {
	m := ClusterModel{
		Nodes: []NodeModel{
			{Q: 0.0001, S: 0.004, K: 0.0002, M: 0.002, MaxBatch: 100},
			{Q: 0.0004, S: 0.005, K: 0.0008, M: 0.003},
			{Q: 0.0004, S: 0.005, K: 0.0008, M: 0.003},
			{Q: 0.0008, S: 0.006, K: 0.0016, M: 0.004},
		},
		Gamma: 0.25,
		To:    0.01,
		Tu:    0.005,
	}
	cont := []float64{250.0, 2.6, 2.7, 1.4}
	batches, err := roundAllocation(m, cont, 104)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, b := range batches {
		sum += b
	}
	if sum != 104 {
		t.Fatalf("sum %d want 104 (%v)", sum, batches)
	}
	if batches[0] != 100 {
		t.Fatalf("cap-clamped node lost a unit it was owed: %v (want batches[0]=100)", batches)
	}
}

// TestLocalSearchContinuesPastMinPinnedCritical: when the critical node is
// stuck at minLocalBatch its time is a fixed floor on the batch time, but
// the pre-fix early return also abandoned the rest of the cluster in a
// skewed state. The search must freeze the immovable node and keep
// equalizing the movable ones.
func TestLocalSearchContinuesPastMinPinnedCritical(t *testing.T) {
	m := ClusterModel{
		Nodes: []NodeModel{
			{Q: 1.0, S: 0.1, K: 0.1, M: 0.01}, // pathologically slow, pinned at min
			{Q: 0.001, S: 0.004, K: 0.001, M: 0.002},
			{Q: 0.001, S: 0.004, K: 0.001, M: 0.002},
		},
		Gamma: 0.25,
		To:    0.0001,
		Tu:    0.0001,
	}
	batches := []int{1, 10, 2}
	localSearch(m, batches)
	if batches[0] != 1 {
		t.Fatalf("min-pinned node moved: %v", batches)
	}
	if batches[0]+batches[1]+batches[2] != 13 {
		t.Fatalf("total changed: %v", batches)
	}
	// Nodes 1 and 2 are identical, so the healthy sub-cluster equalizes to
	// 6/6. Pre-fix the search aborted at the pinned critical node and left
	// the skewed 10/2 split untouched.
	if d := batches[1] - batches[2]; d < -1 || d > 1 {
		t.Fatalf("healthy nodes left unequalized: %v", batches)
	}
}

// TestWaterfillFallbackAudited forces the exhaustive scan and waterfill
// fallback path with an extreme coefficient spread, then checks the audited
// plan still respects the box constraints and is within tolerance of a full
// brute-force search over all integer allocations.
func TestWaterfillFallbackAudited(t *testing.T) {
	m := ClusterModel{
		Nodes: []NodeModel{
			{Q: 1, S: 0.1, K: 0.1, M: 1e-05},
			{Q: 1e-06, S: 0.01, K: 1e-4, M: 0.01},
			{Q: 1e-4, S: 1, K: 0.01, M: 1e-4},
		},
		Gamma: 0.010769,
		To:    0.0001,
		Tu:    0,
	}
	total := 177
	plan, stats, err := solveWithHint(m, total, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WaterfillFallbacks == 0 {
		t.Fatalf("model no longer exercises the waterfill fallback (stats %+v)", stats)
	}
	report := AuditPlan(m, plan, Tolerances{})
	if hasViolation(report, InvBatchSum) || hasViolation(report, InvBox) || hasViolation(report, InvTimeConsistent) {
		t.Fatalf("fallback plan violates hard invariants: %v", report.Violations)
	}
	// Full brute force: every split of 177 samples over 3 nodes.
	best := math.Inf(1)
	b := make([]int, 3)
	for b[0] = minLocalBatch; b[0] <= total-2*minLocalBatch; b[0]++ {
		for b[1] = minLocalBatch; b[1] <= total-b[0]-minLocalBatch; b[1]++ {
			b[2] = total - b[0] - b[1]
			if tm := m.PredictTime(b); tm < best {
				best = tm
			}
		}
	}
	if plan.Time > best*1.001 {
		t.Fatalf("fallback plan time %v exceeds brute-force optimum %v", plan.Time, best)
	}
}
