package optperf

import (
	"errors"
	"fmt"
	"sort"
)

// Planner implements Section 4.5's engineering around Algorithm 1:
//
//   - Total batch size selection: after the initial epoch, OptPerf_init is
//     computed once for every candidate total batch size; later epochs
//     reuse the cached values and only re-solve the chosen candidate.
//   - Overlap state searching: candidates are enumerated small-to-large so
//     each solve warm-starts from the previous candidate's overlap state,
//     and later epochs warm-start from the cached state.
//
// A Planner is bound to one cluster model revision; UpdateModel installs a
// newer learned model while retaining warm-start state.
type Planner struct {
	// Audit enables per-solve plan verification: every freshly solved plan
	// is checked against the OptPerf optimality conditions (cache hits were
	// audited when first solved). In AuditStrict mode a violation fails the
	// Plan/PlanAll call with an error wrapping ErrAuditFailed.
	Audit AuditMode
	// AuditTol overrides the audit tolerances; the zero value means
	// defaults.
	AuditTol Tolerances

	model ClusterModel
	cache map[int]cachedPlan
	stats SolveStats
	hits  int
	audit AuditSummary
}

// AuditSummary aggregates the audit outcomes of a batch of solves.
type AuditSummary struct {
	// Plans is how many freshly solved plans were audited.
	Plans int
	// Violations is the total invariant violations across those plans.
	Violations int
	// MaxViolationRatio is the worst residual/limit ratio observed.
	MaxViolationRatio float64
	// Failures retains the failing reports, capped at 4.
	Failures []AuditReport
}

// Add folds one audit report into the summary.
func (s *AuditSummary) Add(r AuditReport) {
	s.Plans++
	if r.OK() {
		return
	}
	s.Violations += len(r.Violations)
	if ratio := r.MaxViolationRatio(); ratio > s.MaxViolationRatio {
		s.MaxViolationRatio = ratio
	}
	if len(s.Failures) < 4 {
		s.Failures = append(s.Failures, r)
	}
}

// Merge folds another summary into s.
func (s *AuditSummary) Merge(o AuditSummary) {
	s.Plans += o.Plans
	s.Violations += o.Violations
	if o.MaxViolationRatio > s.MaxViolationRatio {
		s.MaxViolationRatio = o.MaxViolationRatio
	}
	for _, f := range o.Failures {
		if len(s.Failures) < 4 {
			s.Failures = append(s.Failures, f)
		}
	}
}

type cachedPlan struct {
	plan Plan
	// computeBound is the warm-start hint: how many boundary-search
	// outliers were assigned compute-bottleneck (approximated by the
	// solved state count).
	computeBound int
}

// NewPlanner returns a planner for the given model.
func NewPlanner(model ClusterModel) (*Planner, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Planner{model: model, cache: make(map[int]cachedPlan)}, nil
}

// Model returns the planner's current cluster model.
func (p *Planner) Model() ClusterModel { return p.model }

// UpdateModel installs a refreshed cluster model. Cached plans are kept as
// warm-start hints but their times are marked stale by re-solving on next
// use.
func (p *Planner) UpdateModel(model ClusterModel) error {
	if err := model.Validate(); err != nil {
		return err
	}
	p.model = model
	// Keep the cache only as hints: times must be recomputed lazily.
	for b, c := range p.cache {
		c.plan.Time = -1
		p.cache[b] = c
	}
	return nil
}

// Plan solves OptPerf for one total batch size, reusing cached results when
// the model has not changed since they were computed.
func (p *Planner) Plan(totalBatch int) (Plan, error) {
	if c, ok := p.cache[totalBatch]; ok && c.plan.Time >= 0 {
		p.hits++
		return c.plan, nil
	}
	var hint *int
	if c, ok := p.cache[totalBatch]; ok {
		h := c.computeBound
		hint = &h
	}
	plan, report, stats, err := solveWithHintAudited(p.model, totalBatch, hint, p.Audit, p.AuditTol)
	p.stats.add(stats)
	if p.Audit != AuditOff && (err == nil || errors.Is(err, ErrAuditFailed)) {
		p.audit.Add(report)
	}
	if err != nil {
		return Plan{}, err
	}
	p.cache[totalBatch] = cachedPlan{plan: plan, computeBound: plan.NumComputeBound()}
	return plan, nil
}

// PlanAll solves OptPerf for every candidate total batch size, enumerating
// small-to-large so each solve warm-starts from its predecessor's overlap
// state (larger batches only push nodes toward compute-bottleneck).
func (p *Planner) PlanAll(candidates []int) ([]Plan, error) {
	sorted := append([]int(nil), candidates...)
	sort.Ints(sorted)
	plans := make([]Plan, 0, len(sorted))
	var prevState *int
	for _, b := range sorted {
		if c, ok := p.cache[b]; ok && c.plan.Time >= 0 {
			p.hits++
			plans = append(plans, c.plan)
			h := c.computeBound
			prevState = &h
			continue
		}
		hint := prevState
		if c, ok := p.cache[b]; ok {
			h := c.computeBound
			hint = &h
		}
		plan, report, stats, err := solveWithHintAudited(p.model, b, hint, p.Audit, p.AuditTol)
		p.stats.add(stats)
		if p.Audit != AuditOff && (err == nil || errors.Is(err, ErrAuditFailed)) {
			p.audit.Add(report)
		}
		if err != nil {
			return nil, fmt.Errorf("candidate %d: %w", b, err)
		}
		p.cache[b] = cachedPlan{plan: plan, computeBound: plan.NumComputeBound()}
		plans = append(plans, plan)
		h := plan.NumComputeBound()
		prevState = &h
	}
	return plans, nil
}

// Stats returns cumulative solver work counters.
func (p *Planner) Stats() SolveStats { return p.stats }

// DrainAudit returns the audit outcomes accumulated since the last drain
// and resets the accumulator.
func (p *Planner) DrainAudit() AuditSummary {
	s := p.audit
	p.audit = AuditSummary{}
	return s
}

// CacheHits returns how many Plan/PlanAll requests were served from cache.
func (p *Planner) CacheHits() int { return p.hits }

// InvalidateCache drops all cached plans (used when the overlap pattern
// changed and Section 4.5 requires re-determining every candidate).
func (p *Planner) InvalidateCache() {
	p.cache = make(map[int]cachedPlan)
}
