package optperf

import (
	"math"
	"testing"
	"testing/quick"

	"cannikin/internal/rng"
)

func TestGaussianMatchesClosedForm(t *testing.T) {
	src := rng.New(21)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 1 + s.Intn(16)
		ds := make([]float64, n)
		cs := make([]float64, n)
		for i := range ds {
			ds[i] = 1e-4 + 1e-2*s.Float64()
			cs[i] = 1e-3 * s.Float64()
		}
		total := float64(n * (1 + s.Intn(100)))
		bG, muG, err := SolveEqualGaussian(ds, cs, total)
		if err != nil {
			return false
		}
		bC, muC := solveEqualClosedForm(ds, cs, total)
		if math.Abs(muG-muC) > 1e-8*math.Abs(muC) {
			return false
		}
		for i := range bG {
			if math.Abs(bG[i]-bC[i]) > 1e-6*(1+math.Abs(bC[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianSolutionSatisfiesSystem(t *testing.T) {
	ds := []float64{0.001, 0.002, 0.004}
	cs := []float64{0.01, 0.02, 0.03}
	b, mu, err := SolveEqualGaussian(ds, cs, 300)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := range b {
		if got := ds[i]*b[i] + cs[i]; math.Abs(got-mu) > 1e-10 {
			t.Fatalf("node %d equalization violated: %v != %v", i, got, mu)
		}
		sum += b[i]
	}
	if math.Abs(sum-300) > 1e-8 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestGaussianErrors(t *testing.T) {
	if _, _, err := SolveEqualGaussian(nil, nil, 10); err == nil {
		t.Fatal("empty system accepted")
	}
	if _, _, err := SolveEqualGaussian([]float64{1}, []float64{1, 2}, 10); err == nil {
		t.Fatal("mismatched system accepted")
	}
	// Singular: a zero slope makes the node's equation unsatisfiable in b.
	if _, _, err := SolveEqualGaussian([]float64{0, 0}, []float64{1, 1}, 10); err == nil {
		t.Fatal("singular system accepted")
	}
}
