package optperf

import (
	"math"
	"testing"
	"testing/quick"

	"cannikin/internal/rng"
)

// randomModel draws a well-formed heterogeneous cluster model.
func randomModel(s *rng.Source, n int) ClusterModel {
	nodes := make([]NodeModel, n)
	for i := range nodes {
		speed := 1 + 5*s.Float64()
		nodes[i] = NodeModel{
			Q: (0.0001 + 0.0004*s.Float64()) * speed,
			S: 0.001 + 0.006*s.Float64(),
			K: (0.0002 + 0.0008*s.Float64()) * speed,
			M: 0.001 + 0.004*s.Float64(),
		}
	}
	return ClusterModel{
		Nodes: nodes,
		Gamma: 0.05 + 0.9*s.Float64(),
		To:    0.05 * s.Float64(),
		Tu:    0.02 * s.Float64(),
	}
}

func TestPropertySolveMatchesWaterfill(t *testing.T) {
	// Algorithm 1 (with its check/boundary-search structure) and the
	// waterfill reference must agree on the continuous optimum.
	src := rng.New(1)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 2 + s.Intn(12)
		m := randomModel(s, n)
		total := float64(n * (2 + s.Intn(50)))

		var stats SolveStats
		b1, t1 := solveContinuous(m, total, nil, &stats)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		b2 := waterfill(m, idx, total)
		// Clamp waterfill to the minimum like the active-set loop does.
		feasible := true
		for _, v := range b2 {
			if v < minLocalBatch-1e-6 {
				feasible = false
			}
		}
		if !feasible {
			return true // waterfill reference unconstrained; skip
		}
		t2 := m.PredictTimeFloat(b2)
		_ = b1
		return t1 <= t2*(1+1e-6) && t2 <= t1*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRoundingPreservesInvariants(t *testing.T) {
	src := rng.New(2)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 2 + s.Intn(10)
		m := randomModel(s, n)
		for i := range m.Nodes {
			if s.Float64() < 0.5 {
				m.Nodes[i].MaxBatch = 2 + s.Intn(200)
			}
		}
		capTotal, bounded := m.Capacity()
		total := n * (1 + s.Intn(60))
		if bounded && total > capTotal {
			total = capTotal
		}
		if total < n {
			return true
		}
		plan, err := mustAuditedSolve(t, m, total)
		if err != nil {
			return false
		}
		sum := 0
		for i, b := range plan.Batches {
			if b < minLocalBatch {
				return false
			}
			if c := m.Nodes[i].MaxBatch; c > 0 && b > c {
				return false
			}
			sum += b
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPredictTimeMonotoneInLoad(t *testing.T) {
	// Adding a sample to any node never decreases the predicted batch time
	// for that node's own contribution, hence never decreases Eq. 7 when
	// all other nodes are unchanged.
	src := rng.New(3)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 2 + s.Intn(8)
		m := randomModel(s, n)
		batches := make([]int, n)
		for i := range batches {
			batches[i] = 1 + s.Intn(100)
		}
		before := m.PredictTime(batches)
		i := s.Intn(n)
		batches[i]++
		after := m.PredictTime(batches)
		return after >= before-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOptPerfMonotoneInTotalBatch(t *testing.T) {
	// The optimal batch time never decreases when the total batch grows.
	src := rng.New(4)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 2 + s.Intn(8)
		m := randomModel(s, n)
		b := n * (1 + s.Intn(40))
		p1, err1 := mustAuditedSolve(t, m, b)
		p2, err2 := mustAuditedSolve(t, m, b+n)
		if err1 != nil || err2 != nil {
			return false
		}
		return p2.Time >= p1.Time-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyProportionalAllocation(t *testing.T) {
	src := rng.New(5)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 1 + s.Intn(12)
		times := make([]float64, n)
		for i := range times {
			times[i] = 0.001 + 0.02*s.Float64()
		}
		total := n * (1 + s.Intn(50))
		alloc, err := ProportionalAllocation(times, total, nil)
		if err != nil {
			return false
		}
		sum := 0
		for _, b := range alloc {
			if b < 1 {
				return false
			}
			sum += b
		}
		if sum != total {
			return false
		}
		// Faster nodes (smaller per-sample time) never get *fewer* samples
		// than slower ones (within rounding slack of 1).
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if times[i] < times[j] && alloc[i]+1 < alloc[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySolveScaleInvariance(t *testing.T) {
	// Scaling every time coefficient by a constant scales OptPerf by the
	// same constant and leaves the allocation unchanged.
	src := rng.New(6)
	f := func(seed uint16) bool {
		s := src.Split(string(rune(seed)))
		n := 2 + s.Intn(6)
		m := randomModel(s, n)
		total := n * (2 + s.Intn(30))
		p1, err := mustAuditedSolve(t, m, total)
		if err != nil {
			return false
		}
		const scale = 3.5
		m2 := m
		m2.Nodes = append([]NodeModel(nil), m.Nodes...)
		for i := range m2.Nodes {
			m2.Nodes[i].Q *= scale
			m2.Nodes[i].S *= scale
			m2.Nodes[i].K *= scale
			m2.Nodes[i].M *= scale
		}
		m2.To *= scale
		m2.Tu *= scale
		p2, err := mustAuditedSolve(t, m2, total)
		if err != nil {
			return false
		}
		if math.Abs(p2.Time-scale*p1.Time) > 1e-9*p2.Time {
			return false
		}
		for i := range p1.Batches {
			if p1.Batches[i] != p2.Batches[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
