package optperf

import (
	"math"
	"testing"
)

func TestPlannerCaching(t *testing.T) {
	m := threeNodeModel(0.012, 0.004, 0.2)
	p, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	plan1, err := p.Plan(120)
	if err != nil {
		t.Fatal(err)
	}
	solvesAfterFirst := p.Stats().LinearSolves
	plan2, err := p.Plan(120)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats().LinearSolves != solvesAfterFirst {
		t.Fatal("cached plan re-solved")
	}
	if p.CacheHits() != 1 {
		t.Fatalf("CacheHits = %d, want 1", p.CacheHits())
	}
	if plan1.Time != plan2.Time {
		t.Fatal("cache returned a different plan")
	}
}

func TestPlannerRejectsBadModel(t *testing.T) {
	bad := threeNodeModel(0.01, 0.004, 0.2)
	bad.Gamma = 0
	if _, err := NewPlanner(bad); err == nil {
		t.Fatal("invalid model accepted")
	}
	p, err := NewPlanner(threeNodeModel(0.01, 0.004, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UpdateModel(bad); err == nil {
		t.Fatal("UpdateModel accepted invalid model")
	}
}

func TestPlannerUpdateModelInvalidatesTimes(t *testing.T) {
	m := threeNodeModel(0.012, 0.004, 0.2)
	p, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Plan(120)
	if err != nil {
		t.Fatal(err)
	}
	// Slow down node 0 by 2x; the plan must change.
	m2 := threeNodeModel(0.012, 0.004, 0.2)
	m2.Nodes[0].Q *= 2
	m2.Nodes[0].K *= 2
	if err := p.UpdateModel(m2); err != nil {
		t.Fatal(err)
	}
	after, err := p.Plan(120)
	if err != nil {
		t.Fatal(err)
	}
	if after.Time <= before.Time {
		t.Fatalf("slower node should increase OptPerf: %v <= %v", after.Time, before.Time)
	}
	if after.Batches[0] >= before.Batches[0] {
		t.Fatalf("slower node should lose batch share: %v -> %v", before.Batches, after.Batches)
	}
}

func TestPlanAllMatchesIndividualSolves(t *testing.T) {
	m := threeNodeModel(0.012, 0.004, 0.2)
	candidates := []int{24, 48, 96, 192, 384}

	warm, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := warm.PlanAll(candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(candidates) {
		t.Fatalf("PlanAll returned %d plans", len(plans))
	}
	for i, plan := range plans {
		cold, err := Solve(m, candidates[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plan.Time-cold.Time) > 1e-12 {
			t.Fatalf("candidate %d: warm plan %v != cold plan %v", candidates[i], plan.Time, cold.Time)
		}
	}
	// Plans must come back sorted by candidate size.
	for i := 1; i < len(plans); i++ {
		if plans[i].TotalBatch <= plans[i-1].TotalBatch {
			t.Fatal("PlanAll output not sorted by batch size")
		}
	}
}

func TestPlanAllUsesCacheOnSecondCall(t *testing.T) {
	m := threeNodeModel(0.012, 0.004, 0.2)
	p, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	candidates := []int{24, 48, 96}
	if _, err := p.PlanAll(candidates); err != nil {
		t.Fatal(err)
	}
	solves := p.Stats().LinearSolves
	if _, err := p.PlanAll(candidates); err != nil {
		t.Fatal(err)
	}
	if p.Stats().LinearSolves != solves {
		t.Fatal("second PlanAll re-solved cached candidates")
	}
	if p.CacheHits() != len(candidates) {
		t.Fatalf("CacheHits = %d, want %d", p.CacheHits(), len(candidates))
	}
}

func TestInvalidateCache(t *testing.T) {
	m := threeNodeModel(0.012, 0.004, 0.2)
	p, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(48); err != nil {
		t.Fatal(err)
	}
	p.InvalidateCache()
	solves := p.Stats().LinearSolves
	if _, err := p.Plan(48); err != nil {
		t.Fatal(err)
	}
	if p.Stats().LinearSolves == solves {
		t.Fatal("invalidated cache still served the plan")
	}
}

func TestPlannerWarmStartCorrectAfterModelDrift(t *testing.T) {
	// Warm-start hints from a stale model must not change the result.
	m := threeNodeModel(0.012, 0.004, 0.2)
	p, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PlanAll([]int{24, 48, 96, 192}); err != nil {
		t.Fatal(err)
	}
	m2 := threeNodeModel(0.020, 0.006, 0.3) // quite different constants
	m2.Nodes[2].Q *= 1.5
	if err := p.UpdateModel(m2); err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{24, 48, 96, 192} {
		warmPlan, err := p.Plan(b)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Solve(m2, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(warmPlan.Time-cold.Time) > 1e-12 {
			t.Fatalf("B=%d: warm %v != cold %v", b, warmPlan.Time, cold.Time)
		}
	}
}

func TestModelAccessor(t *testing.T) {
	m := threeNodeModel(0.012, 0.004, 0.2)
	p, err := NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Model(); len(got.Nodes) != 3 || got.To != m.To {
		t.Fatal("Model accessor returned wrong model")
	}
}
